// Table 1: the 15 P4 programs implemented in P4runpro — lines of code
// (P4runpro vs conventional P4) and data-plane update delay, averaged over
// 50 repeated updates per program, compared against the paper's numbers
// and the ActiveRMT / FlyMon baselines where the paper reports them.
#include <cstdio>

#include "apps/program_library.h"
#include "baselines/activermt.h"
#include "baselines/flymon.h"
#include "bench_util.h"
#include "lang/lexer.h"

namespace {

using namespace p4runpro;

/// Instruction/memory shape of the baseline comparison workloads (the
/// three programs ActiveRMT's artifact implements).
baselines::ActiveRequest activermt_request(const std::string& key) {
  if (key == "cache") return {12, 1024, true};
  if (key == "lb") return {20, 2048, false};
  return {30, 4096, false};  // hh
}

}  // namespace

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  bench::heading("Table 1: programs implemented by P4runpro and update delay");
  std::printf("%-28s | %9s %7s | %12s %13s | %12s | %s\n", "Program", "LoC ours",
              "LoC P4", "update (ms)", "paper (ms)", "paper others", "others (model)");
  bench::rule(120);

  constexpr int kRepeats = 50;
  for (const auto& info : apps::program_catalog()) {
    // LoC of the minimal template instance (elastic case blocks carry no
    // program logic and are excluded, §6.1).
    const int loc = apps::template_loc(info.key);

    // Average update delay over 50 repeated link/revoke cycles on a fresh
    // switch (paper §6.2.1).
    bench::Testbed bed;
    double total_ms = 0.0;
    for (int i = 0; i < kRepeats; ++i) {
      apps::ProgramConfig config;
      config.instance_name = info.key;
      auto linked = bed.controller.link_single(
          apps::make_program_source(info.key, config));
      if (!linked.ok()) {
        std::fprintf(stderr, "link failed for %s: %s\n", info.key.c_str(),
                     linked.error().str().c_str());
        return 1;
      }
      total_ms += linked.value().stats.update_ms;
      if (!bed.controller.revoke(linked.value().id).ok()) return 1;
    }
    const double update_ms = total_ms / kRepeats;

    // Baseline models for the "Others" column.
    std::string others = "-";
    if (info.key == "cache" || info.key == "lb" || info.key == "hh") {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.2f (ActiveRMT)",
                    baselines::ActiveRmtAllocator::update_delay_ms(
                        activermt_request(info.key)));
      others = buf;
    } else if (auto task = baselines::Flymon::task_for(info.key)) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.2f (FlyMon)",
                    baselines::Flymon::update_delay_ms(task->attribute));
      others = buf;
    }

    std::printf("%-28s | %9d %7d | %12.2f %13.2f | %12s | %s\n",
                info.display.c_str(), loc, info.paper_loc_p4, update_ms,
                info.paper_update_ms,
                info.others_update.empty() ? "-" : info.others_update.c_str(),
                others.c_str());
  }

  std::printf("\nNotes: 'LoC ours' counts non-blank, non-comment lines of the minimal\n"
              "template; update delay is the simulated bfrt channel (per-entry cost\n"
              "calibrated once, see EXPERIMENTS.md); paper columns are Table 1 values.\n");
  return 0;
}
