// Ablation studies for the design choices DESIGN.md calls out:
//   (1) the alpha/beta parameter sweep behind f1's 0.7/0.3 default (the
//       paper's appendix-C pre-experiment, step 0.1, alpha + beta = 1);
//   (2) register count: why three PHV registers (§4.1.2);
//   (3) address translation: mask-based vs shift-based vs TCAM-based
//       (§4.1.2 / §7), including the internal fragmentation the power-of-
//       two round-up costs on the real catalog;
//   (4) trailing-primitive replication (DESIGN.md §2.3): the entry price
//       of the branch-rejoin semantics;
//   (5) recirculation vs multi-switch chains (§4.1.3).
#include <cstdio>

#include "analysis/throughput_model.h"
#include "baselines/activermt.h"
#include "bench_util.h"
#include "compiler/compiler.h"
#include "compiler/translate.h"
#include "traffic/workloads.h"

namespace {

using namespace p4runpro;

// ---------------------------------------------------------------------------
// (1) alpha/beta sweep.
// ---------------------------------------------------------------------------
void sweep_alpha_beta() {
  bench::heading("Ablation 1: f1 = a*xL - b*x1 parameter sweep (a + b = 1, all-mixed)");
  std::printf("%-12s | %9s | %10s | %10s\n", "a / b", "capacity", "mem util",
              "entry util");
  bench::rule(52);
  for (int step = 1; step <= 9; ++step) {
    const double alpha = step / 10.0;
    bench::Testbed bed(rp::Objective{rp::ObjectiveKind::F1, alpha, 1.0 - alpha});
    auto workload = traffic::WorkloadGenerator::all_mixed(256, 2, 99);
    int capacity = 0;
    while (capacity <= 20000) {
      if (!bed.controller.link_single(workload.next().source).ok()) break;
      ++capacity;
    }
    std::printf("%4.1f / %-4.1f | %9d | %9.1f%% | %9.1f%%\n", alpha, 1.0 - alpha,
                capacity,
                100.0 * bed.controller.resources().total_memory_utilization(),
                100.0 * bed.controller.resources().total_entry_utilization());
  }
  std::printf(
      "\nThe paper's pre-experiment picked a = 0.7, b = 0.3. In this\n"
      "reproduction the capacity knee sits at a ~ 0.4-0.5: our trailing-\n"
      "primitive replication makes ingress entries scarcer, so weighting the\n"
      "egress-push term (b, maximizing x1) harder pays off — the same\n"
      "workload-dependence the paper flags when it says the objective should\n"
      "be 'empirically adjusted according to the distribution of input\n"
      "programs' (§6.2.4).\n");
}

// ---------------------------------------------------------------------------
// (2) register count.
// ---------------------------------------------------------------------------
void register_count() {
  bench::heading("Ablation 2: PHV register count (atomic-operation blow-up)");
  std::printf("%-10s | %16s | %22s | %s\n", "registers", "ADD variants",
              "hdr-interaction ops", "note");
  bench::rule(90);
  constexpr int kFields = 23;  // supported header/metadata fields
  for (int n = 2; n <= 5; ++n) {
    const int add_variants = n * (n - 1);     // C(n,1) * C(n-1,1), §4.1.2
    const int hdr_ops = 2 * n * kFields;      // EXTRACT + MODIFY per reg per field
    const char* note = n == 2   ? "cannot express 2-operand ops + address + operand"
                       : n == 3 ? "<- chosen: flexible and fits the VLIW budget"
                                : "VLIW demand grows ~n^2, crowds out header ops";
    std::printf("%10d | %16d | %22d | %s\n", n, add_variants, hdr_ops, note);
  }
}

// ---------------------------------------------------------------------------
// (3) address translation mechanisms.
// ---------------------------------------------------------------------------
void address_translation() {
  bench::heading("Ablation 3: address translation mechanisms (per memory op)");
  std::printf("%-12s | %10s | %11s | %12s | %s\n", "mechanism", "VLIW ops",
              "TCAM blocks", "granularity", "source");
  bench::rule(84);
  std::printf("%-12s | %10d | %11d | %12s | %s\n", "mask-based", 1, 0, "2^k",
              "this system (mask merged into hash, offset one action)");
  std::printf("%-12s | %10d | %11d | %12s | %s\n", "shift-based", 3, 0, "2^k",
              "FlyMon: shift+mask+offset costs extra VLIW and a stage");
  std::printf("%-12s | %10d | %11d | %12s | %s\n", "TCAM-based", 2, 4, "arbitrary",
              "FlyMon: translation table burns TCAM per program");

  // Internal fragmentation of the power-of-two constraint on the catalog.
  double requested = 0;
  double granted = 0;
  for (std::uint32_t size : {10u, 100u, 256u, 300u, 1000u, 1024u, 5000u}) {
    requested += size;
    granted += rp::round_pow2(size);
  }
  std::printf("\nInternal fragmentation of 2^k rounding over representative\n"
              "requests (10..5000 buckets): %.1f%% memory overhead — the price\n"
              "of saving TCAM/VLIW relative to arbitrary-granularity schemes.\n",
              100.0 * (granted - requested) / requested);
}

// ---------------------------------------------------------------------------
// (4) trailing replication cost.
// ---------------------------------------------------------------------------
void replication_cost() {
  bench::heading("Ablation 4: trailing-primitive replication cost (entries per program)");
  std::printf("%-10s | %8s | %16s | %15s\n", "program", "elastic",
              "entries (repl.)", "lower bound*");
  bench::rule(60);
  for (const char* key : {"lb", "calculator"}) {
    for (int elastic : {2, 4, 8}) {
      apps::ProgramConfig config;
      config.instance_name = key;
      config.elastic_cases = elastic;
      auto ir = rp::compile_single(apps::make_program_source(key, config));
      if (!ir.ok()) continue;
      // Lower bound: count nodes deduplicated by (depth, op kind) — what a
      // rejoin-based encoding without replication would install.
      std::set<std::pair<int, int>> unique_slots;
      for (const auto& node : ir.value().nodes) {
        unique_slots.insert({node.depth, static_cast<int>(node.op.kind)});
      }
      std::printf("%-10s | %8d | %16d | %15zu\n", key, elastic,
                  ir.value().total_entries(), unique_slots.size());
    }
  }
  std::printf("\n* a branch-id-rejoin encoding would merge the replicas but needs\n"
              "per-entry rejoin actions; replication is why our lb capacity is\n"
              "~2.0K vs the paper's ~2.8K (EXPERIMENTS.md).\n");
}

// ---------------------------------------------------------------------------
// (5) recirculation vs chain.
// ---------------------------------------------------------------------------
void recirc_vs_chain() {
  bench::heading("Ablation 5: recirculation vs multi-switch chain (2-round programs)");
  const analysis::RecirculationModel model;
  std::printf("%-14s | %16s | %13s | %s\n", "deployment", "tput loss (128B)",
              "extra latency", "hardware");
  bench::rule(70);
  std::printf("%-14s | %15.1f%% | %10.2f ms | 1 switch\n", "recirculation",
              100.0 * analysis::throughput_loss(model, 128, 1),
              model.per_pass_latency_ms);
  std::printf("%-14s | %15.1f%% | %10.2f ms | 2 switches\n", "chain", 0.0,
              0.002 /*one extra line-rate pipeline traversal*/);
  std::printf("\nChains trade hardware for bandwidth: zero recirculation loss and\n"
              "negligible added latency, at the cost of one switch per extra round\n"
              "and no cross-round access to the same memory (constraint-(5)\n"
              "adjustment, see dataplane/switch_chain.h).\n");
}

// ---------------------------------------------------------------------------
// (6) end-host overhead: capsule goodput.
// ---------------------------------------------------------------------------
void goodput_overhead() {
  bench::heading("Ablation 6: end-host overhead (goodput fraction of wire bytes)");
  std::printf("%-10s | %12s | %22s | %22s\n", "payload", "P4runpro",
              "ActiveRMT (10 instr)", "ActiveRMT (30 instr)");
  bench::rule(76);
  for (int size : {64, 128, 256, 512, 1024, 1460}) {
    std::printf("%7d B  | %11.1f%% | %21.1f%% | %21.1f%%\n", size, 100.0,
                100.0 * baselines::ActiveRmtAllocator::goodput_fraction(size, 10),
                100.0 * baselines::ActiveRmtAllocator::goodput_fraction(size, 30));
  }
  std::printf("\nP4runpro makes no assumptions about incoming packets (no capsule\n"
              "header), so end hosts pay nothing; ActiveRMT's active headers cost\n"
              "up to ~60%% of small-packet goodput (§2.2/§6.3).\n");
}

}  // namespace

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  sweep_alpha_beta();
  register_count();
  address_translation();
  replication_cost();
  recirc_vs_chain();
  goodput_overhead();
  return 0;
}
