// Data-plane micro-benchmarks (google-benchmark): simulator packet rates
// for the main program shapes. These measure the SIMULATOR, not the
// switch — useful for knowing how much virtual traffic the case studies
// can afford — plus the per-entry install/remove cost of the table layer.
#include <benchmark/benchmark.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "traffic/workloads.h"

#include "bench_util.h"

namespace {

using namespace p4runpro;

struct Bed {
  SimClock clock;
  dp::RunproDataplane dataplane{dp::DataplaneSpec{},
                                rmt::ParserConfig{{7777, 9999}}};
  ctrl::Controller controller{dataplane, clock};
};

rmt::Packet cache_packet() {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{4000, 7777};
  pkt.app = rmt::AppHeader{1, 0x8888, 0, 0};
  pkt.ingress_port = 5;
  return pkt;
}

rmt::Packet hh_packet() {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000010, .dst = 0x0b000001, .proto = 17};
  pkt.udp = rmt::UdpHeader{5000, 6000};
  pkt.ingress_port = 1;
  return pkt;
}

void BM_InjectUnclaimed(benchmark::State& state) {
  Bed bed;
  const auto pkt = hh_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject(pkt));
  }
}
BENCHMARK(BM_InjectUnclaimed);

void BM_InjectCacheHit(benchmark::State& state) {
  Bed bed;
  apps::ProgramConfig config;
  config.instance_name = "cache";
  (void)bed.controller.link_single(apps::make_program_source("cache", config));
  const auto pkt = cache_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject(pkt));
  }
}
BENCHMARK(BM_InjectCacheHit);

void BM_InjectHhWithRecirculation(benchmark::State& state) {
  Bed bed;
  apps::ProgramConfig config;
  config.instance_name = "hh";
  (void)bed.controller.link_single(apps::make_program_source("hh", config));
  const auto pkt = hh_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject(pkt));
  }
}
BENCHMARK(BM_InjectHhWithRecirculation);

void BM_InjectWithManyPrograms(benchmark::State& state) {
  // Lookup cost with a populated switch (program-id indexed tables).
  Bed bed;
  auto workload = p4runpro::traffic::WorkloadGenerator::all_mixed(64, 2, 3);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    (void)bed.controller.link_single(workload.next().source);
  }
  const auto pkt = hh_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject(pkt));
  }
}
BENCHMARK(BM_InjectWithManyPrograms)->Arg(10)->Arg(100)->Arg(500);

void BM_LinkRevokeCycle(benchmark::State& state) {
  Bed bed;
  apps::ProgramConfig config;
  config.instance_name = "cache";
  const std::string source = apps::make_program_source("cache", config);
  for (auto _ : state) {
    auto linked = bed.controller.link_single(source);
    benchmark::DoNotOptimize(linked);
    (void)bed.controller.revoke(linked.value().id);
  }
}
BENCHMARK(BM_LinkRevokeCycle);

}  // namespace


int main(int argc, char** argv) {
  return p4runpro::bench::benchmark_main_with_telemetry(argc, argv);
}
