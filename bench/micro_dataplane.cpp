// Data-plane micro-benchmarks (google-benchmark): simulator packet rates
// for the main program shapes. These measure the SIMULATOR, not the
// switch — useful for knowing how much virtual traffic the case studies
// can afford — plus the per-entry install/remove cost of the table layer.
//
// Besides the google-benchmark table, the binary measures a fixed suite of
// packet-rate shapes and (with --bench-json-out=<path>) writes them as a
// machine-readable baseline; the committed BENCH_dataplane.json at the repo
// root is regenerated exactly this way (see docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <future>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "obs/telemetry.h"
#include "traffic/workloads.h"

#include "bench_util.h"

namespace {

using namespace p4runpro;

/// A bed with its own telemetry bundle so instances can run on thread-pool
/// workers without racing on the process-wide default registry.
struct Bed {
  obs::Telemetry telemetry;
  SimClock clock;
  dp::RunproDataplane dataplane{dp::DataplaneSpec{},
                                rmt::ParserConfig{{7777, 9999}}};
  ctrl::Controller controller{dataplane, clock, rp::Objective{},
                              ctrl::BfrtCostModel{}, &telemetry};
};

rmt::Packet cache_packet() {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{4000, 7777};
  pkt.app = rmt::AppHeader{1, 0x8888, 0, 0};
  pkt.ingress_port = 5;
  return pkt;
}

rmt::Packet hh_packet() {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000010, .dst = 0x0b000001, .proto = 17};
  pkt.udp = rmt::UdpHeader{5000, 6000};
  pkt.ingress_port = 1;
  return pkt;
}

void link_program(Bed& bed, const char* key) {
  apps::ProgramConfig config;
  config.instance_name = key;
  (void)bed.controller.link_single(apps::make_program_source(key, config));
}

void link_many(Bed& bed, int count) {
  auto workload = traffic::WorkloadGenerator::all_mixed(64, 2, 3);
  for (int i = 0; i < count; ++i) {
    (void)bed.controller.link_single(workload.next().source);
  }
}

constexpr std::size_t kBatch = 1024;

std::vector<rmt::Packet> batch_of(const rmt::Packet& pkt) {
  return std::vector<rmt::Packet>(kBatch, pkt);
}

// --- per-packet inject() shapes (health monitor attached, as in a live
// --- deployment: the controller wires its monitor as packet observer) -----

void BM_InjectUnclaimed(benchmark::State& state) {
  Bed bed;
  const auto pkt = hh_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject(pkt));
  }
}
BENCHMARK(BM_InjectUnclaimed);

void BM_InjectCacheHit(benchmark::State& state) {
  Bed bed;
  link_program(bed, "cache");
  const auto pkt = cache_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject(pkt));
  }
}
BENCHMARK(BM_InjectCacheHit);

void BM_InjectHhWithRecirculation(benchmark::State& state) {
  Bed bed;
  link_program(bed, "hh");
  const auto pkt = hh_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject(pkt));
  }
}
BENCHMARK(BM_InjectHhWithRecirculation);

void BM_InjectWithManyPrograms(benchmark::State& state) {
  // Lookup cost with a populated switch (program-id indexed tables).
  Bed bed;
  link_many(bed, static_cast<int>(state.range(0)));
  const auto pkt = hh_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject(pkt));
  }
}
BENCHMARK(BM_InjectWithManyPrograms)->Arg(10)->Arg(100)->Arg(500);

// --- batched fast-path shapes (observer detached: raw data-plane rate) ----

void BM_InjectBatchUnclaimed(benchmark::State& state) {
  Bed bed;
  bed.dataplane.pipeline().set_observer(nullptr);
  const auto pkts = batch_of(hh_packet());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject_batch(pkts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_InjectBatchUnclaimed);

void BM_InjectBatchCacheHit(benchmark::State& state) {
  Bed bed;
  link_program(bed, "cache");
  bed.dataplane.pipeline().set_observer(nullptr);
  const auto pkts = batch_of(cache_packet());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject_batch(pkts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_InjectBatchCacheHit);

void BM_InjectBatchHhWithRecirculation(benchmark::State& state) {
  Bed bed;
  link_program(bed, "hh");
  bed.dataplane.pipeline().set_observer(nullptr);
  const auto pkts = batch_of(hh_packet());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject_batch(pkts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_InjectBatchHhWithRecirculation);

void BM_InjectBatchWithManyPrograms(benchmark::State& state) {
  Bed bed;
  link_many(bed, static_cast<int>(state.range(0)));
  bed.dataplane.pipeline().set_observer(nullptr);
  const auto pkts = batch_of(hh_packet());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject_batch(pkts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_InjectBatchWithManyPrograms)->Arg(10)->Arg(100)->Arg(500);

// Workload sharded over independent Bed replicas, one per thread-pool
// worker (pipelines are stateful: shard by replica, never share one
// pipeline across threads).
void BM_InjectBatchShardedReplicas(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  std::vector<std::unique_ptr<Bed>> beds;
  for (int i = 0; i < shards; ++i) {
    auto bed = std::make_unique<Bed>();
    link_program(*bed, "cache");
    bed->dataplane.pipeline().set_observer(nullptr);
    beds.push_back(std::move(bed));
  }
  const auto pkts = batch_of(cache_packet());
  common::ThreadPool pool(static_cast<unsigned>(shards));
  for (auto _ : state) {
    std::vector<std::future<rmt::Pipeline::BatchResult>> results;
    results.reserve(beds.size());
    for (auto& bed : beds) {
      results.push_back(pool.submit(
          [&bed, &pkts] { return bed->dataplane.inject_batch(pkts); }));
    }
    for (auto& r : results) benchmark::DoNotOptimize(r.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch) * shards);
}
// Real time, not CPU time: the work happens on pool workers whose CPU the
// benchmark thread does not accumulate.
BENCHMARK(BM_InjectBatchShardedReplicas)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_LinkRevokeCycle(benchmark::State& state) {
  Bed bed;
  apps::ProgramConfig config;
  config.instance_name = "cache";
  const std::string source = apps::make_program_source("cache", config);
  for (auto _ : state) {
    auto linked = bed.controller.link_single(source);
    benchmark::DoNotOptimize(linked);
    (void)bed.controller.revoke(linked.value().id);
  }
}
BENCHMARK(BM_LinkRevokeCycle);

// --- packet-rate baseline suite (BENCH_dataplane.json) --------------------

struct RateSample {
  std::string name;    ///< program shape, e.g. "cache_hit"
  double batch_pps;    ///< inject_batch() fast path, observer detached
  double inject_pps;   ///< per-packet inject() with the monitor attached
};

/// Packets/sec of repeatedly pushing `pkts` through `fn` for >= `budget`.
template <typename F>
double measure_pps(F&& fn, std::size_t pkts_per_call,
                   std::chrono::milliseconds budget) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up (fills caches, faults in tables)
  std::uint64_t pkts = 0;
  const auto start = clock::now();
  auto now = start;
  do {
    fn();
    pkts += pkts_per_call;
    now = clock::now();
  } while (now - start < budget);
  const double secs = std::chrono::duration<double>(now - start).count();
  return static_cast<double>(pkts) / secs;
}

std::vector<RateSample> run_rate_suite(std::chrono::milliseconds budget) {
  struct Shape {
    const char* name;
    const char* program;  // nullptr = no program linked
    int extra_programs;
    rmt::Packet pkt;
  };
  const Shape kShapes[] = {
      {"unclaimed", nullptr, 0, hh_packet()},
      {"cache_hit", "cache", 0, cache_packet()},
      {"hh_recirc", "hh", 0, hh_packet()},
      {"many_programs_100", nullptr, 100, hh_packet()},
  };

  std::vector<RateSample> samples;
  for (const Shape& shape : kShapes) {
    Bed bed;
    if (shape.program != nullptr) link_program(bed, shape.program);
    if (shape.extra_programs > 0) link_many(bed, shape.extra_programs);
    const auto pkts = batch_of(shape.pkt);

    RateSample sample;
    sample.name = shape.name;
    sample.inject_pps = measure_pps(
        [&] {
          for (const auto& p : pkts) benchmark::DoNotOptimize(bed.dataplane.inject(p));
        },
        pkts.size(), budget);
    bed.dataplane.pipeline().set_observer(nullptr);
    sample.batch_pps = measure_pps(
        [&] { benchmark::DoNotOptimize(bed.dataplane.inject_batch(pkts)); },
        pkts.size(), budget);
    samples.push_back(std::move(sample));
  }
  return samples;
}

// --- sharded multi-pipe suite (one shared switch state, N pipes) ----------

struct ShardedSample {
  std::string name;     ///< program shape, e.g. "cache_hit"
  int shards;           ///< pipe count
  double capacity_pps;  ///< CPU-time-normalized: pkts / (busy_cpu / shards)
  double wall_pps;      ///< wall-clock rate (machine-dependent; see docs)
};

double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// The snapshot-data-plane scaling measurement: ONE bed (one shared set of
/// master tables and one snapshot hub), N shard workers hammering
/// inject_batch_on concurrently. capacity_pps divides total packets by the
/// average busy CPU time per shard — the throughput of N hardware pipes —
/// so the committed numbers are meaningful on any host core count (CI runs
/// on 1-2 cores where wall_pps cannot scale; see docs/PERFORMANCE.md).
std::vector<ShardedSample> run_sharded_suite(std::chrono::milliseconds budget,
                                             const std::vector<int>& counts) {
  struct Shape {
    const char* name;
    const char* program;  // nullptr = no program linked
    rmt::Packet pkt;
  };
  const Shape kShapes[] = {
      {"unclaimed", nullptr, hh_packet()},
      {"cache_hit", "cache", cache_packet()},
  };

  std::vector<ShardedSample> samples;
  for (const Shape& shape : kShapes) {
    Bed bed;
    if (shape.program != nullptr) link_program(bed, shape.program);
    bed.dataplane.pipeline().set_observer(nullptr);
    const auto pkts = batch_of(shape.pkt);

    for (const int shards : counts) {
      bed.dataplane.enable_sharding(shards);
      std::atomic<bool> stop{false};
      std::atomic<std::uint64_t> total_pkts{0};
      std::vector<double> busy(static_cast<std::size_t>(shards), 0.0);

      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(shards));
      const auto start = std::chrono::steady_clock::now();
      for (int s = 0; s < shards; ++s) {
        workers.emplace_back([&, s] {
          const double cpu0 = thread_cpu_seconds();
          std::uint64_t local = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            benchmark::DoNotOptimize(bed.dataplane.inject_batch_on(s, pkts));
            local += pkts.size();
          }
          busy[static_cast<std::size_t>(s)] = thread_cpu_seconds() - cpu0;
          total_pkts.fetch_add(local, std::memory_order_relaxed);
        });
      }
      std::this_thread::sleep_for(budget);
      stop.store(true, std::memory_order_relaxed);
      for (auto& worker : workers) worker.join();
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      const double busy_total = std::accumulate(busy.begin(), busy.end(), 0.0);

      ShardedSample sample;
      sample.name = shape.name;
      sample.shards = shards;
      const double pkts_total = static_cast<double>(total_pkts.load());
      sample.capacity_pps =
          busy_total > 0.0 ? pkts_total / (busy_total / shards) : 0.0;
      sample.wall_pps = wall > 0.0 ? pkts_total / wall : 0.0;
      samples.push_back(std::move(sample));
      bed.dataplane.disable_sharding();
    }
  }
  return samples;
}

void print_sharded_suite(const std::vector<ShardedSample>& samples) {
  bench::heading("Sharded multi-pipe rate (pkts/sec, one shared switch)");
  std::printf("%-20s | %6s | %14s | %14s\n", "shape", "shards", "capacity",
              "wall-clock");
  bench::rule(64);
  for (const auto& s : samples) {
    std::printf("%-20s | %6d | %14.0f | %14.0f\n", s.name.c_str(), s.shards,
                s.capacity_pps, s.wall_pps);
  }
}

/// Comma-separated --shards list ("1,2,4"); the default when absent/empty.
std::vector<int> parse_shard_counts(const std::string& csv) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const int value = std::atoi(csv.substr(pos, comma - pos).c_str());
    if (value > 0) out.push_back(value);
    pos = comma + 1;
  }
  if (out.empty()) out = {1, 2, 4};
  return out;
}

void print_rate_suite(const std::vector<RateSample>& samples) {
  bench::heading("Packet-rate baseline (pkts/sec)");
  std::printf("%-20s | %14s | %14s\n", "shape", "batch fastpath", "inject+monitor");
  bench::rule(56);
  for (const auto& s : samples) {
    std::printf("%-20s | %14.0f | %14.0f\n", s.name.c_str(), s.batch_pps,
                s.inject_pps);
  }
}

void write_rate_json(const std::vector<RateSample>& samples,
                     const std::vector<ShardedSample>& sharded,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"micro_dataplane\",\n"
      << "  \"unit\": \"packets_per_second\",\n  \"shapes\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"batch_pps\": %.0f, "
                  "\"inject_pps\": %.0f}%s\n",
                  s.name.c_str(), s.batch_pps, s.inject_pps,
                  i + 1 < samples.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"sharded\": [\n";
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    const auto& s = sharded[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"shards\": %d, "
                  "\"capacity_pps\": %.0f, \"wall_pps\": %.0f}%s\n",
                  s.name.c_str(), s.shards, s.capacity_pps, s.wall_pps,
                  i + 1 < sharded.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace


int main(int argc, char** argv) {
  // Quick mode for CI smoke runs: tiny measurement budget per shape.
  bool quick = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--rate-quick") {
      quick = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());

  p4runpro::bench::TelemetryScope telemetry_scope(filtered_argc, args.data());
  std::vector<char*> bench_args;
  for (int i = 0; i < filtered_argc; ++i) {
    if (telemetry_scope.flags().consumed[static_cast<std::size_t>(i)]) continue;
    bench_args.push_back(args[static_cast<std::size_t>(i)]);
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto budget = std::chrono::milliseconds(quick ? 20 : 300);
  const auto samples = run_rate_suite(budget);
  print_rate_suite(samples);
  const auto shard_counts =
      parse_shard_counts(telemetry_scope.flags().shards);
  // The sharded rows feed a CI scaling gate, and their workers contend
  // for cores with each other (and whatever else the runner schedules),
  // so a 20 ms window can catch one shard mid-preemption and skew the
  // busy-CPU normalization. Give them a longer floor even in quick mode;
  // the suite is only shapes x shard-counts rows, so this stays cheap.
  const auto shard_budget =
      std::max(budget, std::chrono::milliseconds(100));
  const auto sharded = run_sharded_suite(shard_budget, shard_counts);
  print_sharded_suite(sharded);
  if (!telemetry_scope.flags().bench_json_path.empty()) {
    write_rate_json(samples, sharded, telemetry_scope.flags().bench_json_path);
  }
  return 0;
}
