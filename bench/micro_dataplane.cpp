// Data-plane micro-benchmarks (google-benchmark): simulator packet rates
// for the main program shapes. These measure the SIMULATOR, not the
// switch — useful for knowing how much virtual traffic the case studies
// can afford — plus the per-entry install/remove cost of the table layer.
//
// Besides the google-benchmark table, the binary measures a fixed suite of
// packet-rate shapes and (with --bench-json-out=<path>) writes them as a
// machine-readable baseline; the committed BENCH_dataplane.json at the repo
// root is regenerated exactly this way (see docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "obs/telemetry.h"
#include "traffic/workloads.h"

#include "bench_util.h"

namespace {

using namespace p4runpro;

/// A bed with its own telemetry bundle so instances can run on thread-pool
/// workers without racing on the process-wide default registry.
struct Bed {
  obs::Telemetry telemetry;
  SimClock clock;
  dp::RunproDataplane dataplane{dp::DataplaneSpec{},
                                rmt::ParserConfig{{7777, 9999}}};
  ctrl::Controller controller{dataplane, clock, rp::Objective{},
                              ctrl::BfrtCostModel{}, &telemetry};
};

rmt::Packet cache_packet() {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{4000, 7777};
  pkt.app = rmt::AppHeader{1, 0x8888, 0, 0};
  pkt.ingress_port = 5;
  return pkt;
}

rmt::Packet hh_packet() {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000010, .dst = 0x0b000001, .proto = 17};
  pkt.udp = rmt::UdpHeader{5000, 6000};
  pkt.ingress_port = 1;
  return pkt;
}

void link_program(Bed& bed, const char* key) {
  apps::ProgramConfig config;
  config.instance_name = key;
  (void)bed.controller.link_single(apps::make_program_source(key, config));
}

void link_many(Bed& bed, int count) {
  auto workload = traffic::WorkloadGenerator::all_mixed(64, 2, 3);
  for (int i = 0; i < count; ++i) {
    (void)bed.controller.link_single(workload.next().source);
  }
}

constexpr std::size_t kBatch = 1024;

std::vector<rmt::Packet> batch_of(const rmt::Packet& pkt) {
  return std::vector<rmt::Packet>(kBatch, pkt);
}

// --- per-packet inject() shapes (health monitor attached, as in a live
// --- deployment: the controller wires its monitor as packet observer) -----

void BM_InjectUnclaimed(benchmark::State& state) {
  Bed bed;
  const auto pkt = hh_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject(pkt));
  }
}
BENCHMARK(BM_InjectUnclaimed);

void BM_InjectCacheHit(benchmark::State& state) {
  Bed bed;
  link_program(bed, "cache");
  const auto pkt = cache_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject(pkt));
  }
}
BENCHMARK(BM_InjectCacheHit);

void BM_InjectHhWithRecirculation(benchmark::State& state) {
  Bed bed;
  link_program(bed, "hh");
  const auto pkt = hh_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject(pkt));
  }
}
BENCHMARK(BM_InjectHhWithRecirculation);

void BM_InjectWithManyPrograms(benchmark::State& state) {
  // Lookup cost with a populated switch (program-id indexed tables).
  Bed bed;
  link_many(bed, static_cast<int>(state.range(0)));
  const auto pkt = hh_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject(pkt));
  }
}
BENCHMARK(BM_InjectWithManyPrograms)->Arg(10)->Arg(100)->Arg(500);

// --- batched fast-path shapes (observer detached: raw data-plane rate) ----

void BM_InjectBatchUnclaimed(benchmark::State& state) {
  Bed bed;
  bed.dataplane.pipeline().set_observer(nullptr);
  const auto pkts = batch_of(hh_packet());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject_batch(pkts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_InjectBatchUnclaimed);

void BM_InjectBatchCacheHit(benchmark::State& state) {
  Bed bed;
  link_program(bed, "cache");
  bed.dataplane.pipeline().set_observer(nullptr);
  const auto pkts = batch_of(cache_packet());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject_batch(pkts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_InjectBatchCacheHit);

void BM_InjectBatchHhWithRecirculation(benchmark::State& state) {
  Bed bed;
  link_program(bed, "hh");
  bed.dataplane.pipeline().set_observer(nullptr);
  const auto pkts = batch_of(hh_packet());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject_batch(pkts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_InjectBatchHhWithRecirculation);

void BM_InjectBatchWithManyPrograms(benchmark::State& state) {
  Bed bed;
  link_many(bed, static_cast<int>(state.range(0)));
  bed.dataplane.pipeline().set_observer(nullptr);
  const auto pkts = batch_of(hh_packet());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.dataplane.inject_batch(pkts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_InjectBatchWithManyPrograms)->Arg(10)->Arg(100)->Arg(500);

// Workload sharded over independent Bed replicas, one per thread-pool
// worker (pipelines are stateful: shard by replica, never share one
// pipeline across threads).
void BM_InjectBatchShardedReplicas(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  std::vector<std::unique_ptr<Bed>> beds;
  for (int i = 0; i < shards; ++i) {
    auto bed = std::make_unique<Bed>();
    link_program(*bed, "cache");
    bed->dataplane.pipeline().set_observer(nullptr);
    beds.push_back(std::move(bed));
  }
  const auto pkts = batch_of(cache_packet());
  common::ThreadPool pool(static_cast<unsigned>(shards));
  for (auto _ : state) {
    std::vector<std::future<rmt::Pipeline::BatchResult>> results;
    results.reserve(beds.size());
    for (auto& bed : beds) {
      results.push_back(pool.submit(
          [&bed, &pkts] { return bed->dataplane.inject_batch(pkts); }));
    }
    for (auto& r : results) benchmark::DoNotOptimize(r.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch) * shards);
}
// Real time, not CPU time: the work happens on pool workers whose CPU the
// benchmark thread does not accumulate.
BENCHMARK(BM_InjectBatchShardedReplicas)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_LinkRevokeCycle(benchmark::State& state) {
  Bed bed;
  apps::ProgramConfig config;
  config.instance_name = "cache";
  const std::string source = apps::make_program_source("cache", config);
  for (auto _ : state) {
    auto linked = bed.controller.link_single(source);
    benchmark::DoNotOptimize(linked);
    (void)bed.controller.revoke(linked.value().id);
  }
}
BENCHMARK(BM_LinkRevokeCycle);

// --- packet-rate baseline suite (BENCH_dataplane.json) --------------------

struct RateSample {
  std::string name;    ///< program shape, e.g. "cache_hit"
  double batch_pps;    ///< inject_batch() fast path, observer detached
  double inject_pps;   ///< per-packet inject() with the monitor attached
};

/// Packets/sec of repeatedly pushing `pkts` through `fn` for >= `budget`.
template <typename F>
double measure_pps(F&& fn, std::size_t pkts_per_call,
                   std::chrono::milliseconds budget) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up (fills caches, faults in tables)
  std::uint64_t pkts = 0;
  const auto start = clock::now();
  auto now = start;
  do {
    fn();
    pkts += pkts_per_call;
    now = clock::now();
  } while (now - start < budget);
  const double secs = std::chrono::duration<double>(now - start).count();
  return static_cast<double>(pkts) / secs;
}

std::vector<RateSample> run_rate_suite(std::chrono::milliseconds budget) {
  struct Shape {
    const char* name;
    const char* program;  // nullptr = no program linked
    int extra_programs;
    rmt::Packet pkt;
  };
  const Shape kShapes[] = {
      {"unclaimed", nullptr, 0, hh_packet()},
      {"cache_hit", "cache", 0, cache_packet()},
      {"hh_recirc", "hh", 0, hh_packet()},
      {"many_programs_100", nullptr, 100, hh_packet()},
  };

  std::vector<RateSample> samples;
  for (const Shape& shape : kShapes) {
    Bed bed;
    if (shape.program != nullptr) link_program(bed, shape.program);
    if (shape.extra_programs > 0) link_many(bed, shape.extra_programs);
    const auto pkts = batch_of(shape.pkt);

    RateSample sample;
    sample.name = shape.name;
    sample.inject_pps = measure_pps(
        [&] {
          for (const auto& p : pkts) benchmark::DoNotOptimize(bed.dataplane.inject(p));
        },
        pkts.size(), budget);
    bed.dataplane.pipeline().set_observer(nullptr);
    sample.batch_pps = measure_pps(
        [&] { benchmark::DoNotOptimize(bed.dataplane.inject_batch(pkts)); },
        pkts.size(), budget);
    samples.push_back(std::move(sample));
  }
  return samples;
}

void print_rate_suite(const std::vector<RateSample>& samples) {
  bench::heading("Packet-rate baseline (pkts/sec)");
  std::printf("%-20s | %14s | %14s\n", "shape", "batch fastpath", "inject+monitor");
  bench::rule(56);
  for (const auto& s : samples) {
    std::printf("%-20s | %14.0f | %14.0f\n", s.name.c_str(), s.batch_pps,
                s.inject_pps);
  }
}

void write_rate_json(const std::vector<RateSample>& samples,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"micro_dataplane\",\n"
      << "  \"unit\": \"packets_per_second\",\n  \"shapes\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"batch_pps\": %.0f, "
                  "\"inject_pps\": %.0f}%s\n",
                  s.name.c_str(), s.batch_pps, s.inject_pps,
                  i + 1 < samples.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace


int main(int argc, char** argv) {
  // Quick mode for CI smoke runs: tiny measurement budget per shape.
  bool quick = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--rate-quick") {
      quick = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());

  p4runpro::bench::TelemetryScope telemetry_scope(filtered_argc, args.data());
  std::vector<char*> bench_args;
  for (int i = 0; i < filtered_argc; ++i) {
    if (telemetry_scope.flags().consumed[static_cast<std::size_t>(i)]) continue;
    bench_args.push_back(args[static_cast<std::size_t>(i)]);
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto budget = std::chrono::milliseconds(quick ? 20 : 300);
  const auto samples = run_rate_suite(budget);
  print_rate_suite(samples);
  if (!telemetry_scope.flags().bench_json_path.empty()) {
    write_rate_json(samples, telemetry_scope.flags().bench_json_path);
  }
  return 0;
}
