// Chain deploy cost: virtual-time cost of chain-wide two-phase deploy /
// revoke transactions as the chain grows (2..4 hops), in both channel
// modes. Phase 1 stages every hop with zero dataplane writes; phase 2
// pushes each hop's op-log through its control channel. Serially that cost
// is linear in the hop count — the price of mirroring a program across the
// chain instead of recirculating (§4.1.3/§5). With the async channel the
// hops' op-logs are submitted up front and drain concurrently, so the
// pipelined commit collapses to max-of-hops: flat in chain length.
//
// Virtual time is charged by the per-write BfrtCostModel plus a fixed
// allocation charge, so the reported ms/deploy are deterministic and make a
// committable baseline (BENCH_chain.json via --bench-json-out=<path>).
// JSON schema: per shape, `link_ms`/`revoke_ms` are the PIPELINED headline
// numbers; `serial_link_ms`/`serial_revoke_ms` keep the serial-channel
// baseline for the sub-linearity gate in CI.
//
//   --programs=<N>   programs linked per wave (default 6)
//   --waves=<W>      link/revoke waves per chain length (default 4)
//   --hops=<H>       bench a single chain length instead of the 2..4 sweep
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "apps/program_library.h"
#include "bench_util.h"
#include "common/clock.h"
#include "control/chain_controller.h"
#include "dataplane/switch_chain.h"
#include "obs/telemetry.h"

namespace {

using namespace p4runpro;

struct ModeSample {
  double link_virtual_ms = 0;    // per deploy, deterministic
  double revoke_virtual_ms = 0;  // per revoke, deterministic
  double link_wall_us = 0;       // per deploy, host-dependent
};

struct ChainSample {
  int hops = 0;
  ModeSample serial;
  ModeSample pipelined;
};

dp::DataplaneSpec bench_spec(int hops) {
  dp::DataplaneSpec spec;
  spec.max_recirculations = hops - 1;
  return spec;
}

/// Chain-compatible workload: templates whose allocations fit the shortest
/// chain in the sweep (rounds <= 2).
std::vector<std::string> workload(int programs) {
  const std::vector<std::string> templates = {"cache", "hh"};
  std::vector<std::string> sources;
  sources.reserve(static_cast<std::size_t>(programs));
  for (int i = 0; i < programs; ++i) {
    apps::ProgramConfig config;
    config.instance_name = templates[static_cast<std::size_t>(i) % templates.size()] +
                           std::to_string(i);
    config.mem_buckets = 32;
    sources.push_back(apps::make_program_source(
        templates[static_cast<std::size_t>(i) % templates.size()], config));
  }
  return sources;
}

ModeSample run_chain(int hops, const std::vector<std::string>& sources,
                     int waves, bool pipelined) {
  SimClock clock;
  dp::SwitchChain chain(hops, bench_spec(hops), rmt::ParserConfig{{7777}});
  // Null telemetry = the process-wide default bundle, so the sidecar flags
  // (--trace-out etc.) see the chain_txn.* spans. Safe single-threaded: the
  // controller's internal solve pool never touches telemetry off-thread.
  ctrl::ChainController controller(chain, clock, {}, {}, nullptr);
  // Fix the allocation charge so virtual time does not depend on host speed.
  controller.set_fixed_alloc_charge_ms(5.0);
  controller.set_async_writes(pipelined);

  double link_ms = 0;
  double revoke_ms = 0;
  double link_wall_ms = 0;
  for (int wave = 0; wave < waves; ++wave) {
    const double link_start = clock.now_ms();
    const auto wall_start = std::chrono::steady_clock::now();
    for (const auto& source : sources) {
      if (!controller.link(source).ok()) std::abort();
    }
    link_wall_ms += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
    const double revoke_start = clock.now_ms();
    link_ms += revoke_start - link_start;
    for (const ProgramId id : controller.running_programs()) {
      if (!controller.revoke(id).ok()) std::abort();
    }
    revoke_ms += clock.now_ms() - revoke_start;
  }

  const double deploys = static_cast<double>(waves) *
                         static_cast<double>(sources.size());
  ModeSample sample;
  sample.link_virtual_ms = link_ms / deploys;
  sample.revoke_virtual_ms = revoke_ms / deploys;
  sample.link_wall_us = link_wall_ms * 1000.0 / deploys;
  return sample;
}

void write_chain_json(const std::vector<ChainSample>& samples,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"chain_deploy\",\n"
      << "  \"unit\": \"virtual_ms_per_op\",\n  \"shapes\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"chain_%d\", \"hops\": %d, "
                  "\"link_ms\": %.3f, \"revoke_ms\": %.3f, "
                  "\"serial_link_ms\": %.3f, \"serial_revoke_ms\": %.3f}%s\n",
                  s.hops, s.hops, s.pipelined.link_virtual_ms,
                  s.pipelined.revoke_virtual_ms, s.serial.link_virtual_ms,
                  s.serial.revoke_virtual_ms,
                  i + 1 < samples.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

int int_flag(int argc, char** argv, const std::string& name, int fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::atoi(arg.c_str() + prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  const int programs = int_flag(argc, argv, "programs", 6);
  const int waves = int_flag(argc, argv, "waves", 4);
  const int fixed_hops = int_flag(argc, argv, "hops", 0);

  const auto sources = workload(programs);
  bench::heading("Chain deploy: two-phase transaction cost vs chain length");
  std::printf("workload: %d programs/wave x %d waves (5 ms fixed alloc charge)\n\n",
              programs, waves);
  std::printf("%-10s | %14s | %14s | %14s | %14s\n", "chain",
              "serial link ms", "piped link ms", "piped revoke", "link us (wall)");
  bench::rule(78);

  std::vector<int> lengths;
  if (fixed_hops > 0) {
    lengths.push_back(fixed_hops);
  } else {
    lengths = {2, 3, 4};
  }
  std::vector<ChainSample> samples;
  for (const int hops : lengths) {
    ChainSample sample;
    sample.hops = hops;
    sample.serial = run_chain(hops, sources, waves, /*pipelined=*/false);
    sample.pipelined = run_chain(hops, sources, waves, /*pipelined=*/true);
    samples.push_back(sample);
    std::printf("%-10s | %14.3f | %14.3f | %14.3f | %14.1f\n",
                ("chain_" + std::to_string(hops)).c_str(),
                sample.serial.link_virtual_ms, sample.pipelined.link_virtual_ms,
                sample.pipelined.revoke_virtual_ms,
                sample.pipelined.link_wall_us);
  }

  std::printf(
      "\nShape check: the serial link/revoke cost grows ~linearly in the hop\n"
      "count (each hop replays the same op-log through its own channel); the\n"
      "pipelined commit submits every hop up front so its cost is flat —\n"
      "max-of-hops plus the once-per-deploy parse and allocation charges.\n");
  if (!telemetry_scope.flags().bench_json_path.empty()) {
    write_chain_json(samples, telemetry_scope.flags().bench_json_path);
  }
  return 0;
}
