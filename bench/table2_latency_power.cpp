// Table 2: pipeline latency (clock cycles, ingress/egress/total),
// worst-case power, and the traffic-limit load the 40 W power budget
// imposes, for P4runpro / ActiveRMT / FlyMon (the paper's numbers come
// from P4C's simulation + P4 Insight).
#include <cstdio>

#include "analysis/static_analyzer.h"
#include "bench_util.h"
#include "dataplane/dataplane_spec.h"

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  using namespace p4runpro;
  bench::heading("Table 2: latency, worst-case power, traffic-limit load");

  struct Row {
    analysis::SystemProfile profile;
    const char* paper_latency;
    const char* paper_power;
    const char* paper_load;
  };
  const Row rows[] = {
      {analysis::profile_p4runpro(dp::DataplaneSpec{}), "306/316/622",
       "19.32/21.42/40.74", "98%"},
      {analysis::profile_activermt(), "312/308/620", "23.36/20.34/43.7", "91%"},
      {analysis::profile_flymon(), "54/282/336", "0/34.05/34.05", "100%"},
  };

  std::printf("%-10s | %-20s %-14s | %-22s %-19s | %-5s %-6s\n", "system",
              "latency (in/eg/total)", "paper", "power W (in/eg/total)", "paper",
              "load", "paper");
  bench::rule(120);
  for (const auto& row : rows) {
    const auto lp = analysis::analyze(row.profile);
    char latency[32];
    std::snprintf(latency, sizeof latency, "%.0f/%.0f/%.0f", lp.ingress_cycles,
                  lp.egress_cycles, lp.total_cycles);
    char power[40];
    std::snprintf(power, sizeof power, "%.2f/%.2f/%.2f", lp.ingress_power_w,
                  lp.egress_power_w, lp.total_power_w);
    std::printf("%-10s | %-20s %-14s | %-22s %-19s | %3d%%  %-6s\n",
                row.profile.name.c_str(), latency, row.paper_latency, power,
                row.paper_power, lp.traffic_limit_load_pct, row.paper_load);
  }

  std::printf(
      "\nShape check: P4runpro and ActiveRMT add comparable pipeline latency;\n"
      "ActiveRMT's per-stage capsule activity pushes it over the 40 W budget\n"
      "(forwarding limited to ~91%%), P4runpro stays at ~98%%, FlyMon at 100%%\n"
      "with near-zero ingress latency.\n");
  return 0;
}
