// Fig. 13: case studies on campus-like traffic, comparing runtime
// programming (P4runpro) against the conventional P4 workflow (recompile +
// switch reprovisioning, which blacks out ALL traffic while the switch
// restarts).
//   (a) runtime deploy/delete churn must not disturb running traffic;
//   (b) in-network cache: function equivalence + deployment delay;
//   (c) stateless load balancer: load-imbalance rate;
//   (d) heavy hitter detector: F1 score over time.
#include <algorithm>
#include <cstdio>
#include <deque>
#include <set>

#include "analysis/metrics.h"
#include "apps/program_library.h"
#include "bench_util.h"
#include "p4baseline/fixed_function.h"
#include "traffic/flowgen.h"
#include "traffic/replay.h"

namespace {

using namespace p4runpro;

/// Provisioning blackout of the conventional workflow: the binary is
/// assumed pre-compiled (compile itself takes minutes, §6.2.1); loading it
/// and re-enabling ports stalls the switch for several seconds.
constexpr double kReprovisionSeconds = 8.0;
constexpr double kDeployAtSeconds = 5.0;

std::vector<double> sampled(const std::vector<traffic::RateSample>& samples,
                            double step_s, double (*get)(const traffic::RateSample&)) {
  std::vector<double> out;
  double next = 0.0;
  for (const auto& s : samples) {
    if (s.t_s + 1e-9 >= next) {
      out.push_back(get(s));
      next += step_s;
    }
  }
  return out;
}

void print_row(const char* name, const std::vector<double>& values, const char* fmt) {
  std::printf("%-22s", name);
  for (double v : values) std::printf(fmt, v);
  std::printf("\n");
}

void print_time_header(double duration_s, double step_s) {
  std::printf("%-22s", "t (s) ->");
  for (double t = 0; t < duration_s; t += step_s) std::printf(" %6.1f", t);
  std::printf("\n");
  bench::rule(110);
}

// ---------------------------------------------------------------------------
// (a) Impact of runtime deployment churn on running traffic.
// ---------------------------------------------------------------------------
void case_a() {
  bench::heading("Fig. 13(a): RX rate under deploy/delete churn (Mbps)");
  traffic::CampusTraceConfig trace_config;
  trace_config.duration_s = 20.0;
  const auto trace = traffic::make_campus_trace(trace_config);

  bench::Testbed bed;
  traffic::Replayer replayer(bed.dataplane, bed.clock);

  // Deploy and delete a random program every 0.5 s from t = 5 s, with
  // filters independent of the traffic (UDP ports >= 20000, 11.0.0.0/16
  // prefixes) so only the churn itself could disturb it.
  const std::vector<std::string> kChurnKeys = {"cache", "nc",  "dqacc", "calculator",
                                               "lb",    "hh",  "cms",   "bf",
                                               "sumax", "hll"};
  Rng rng(13);
  std::deque<ProgramId> running;
  int epoch = 0;
  double next_action_s = kDeployAtSeconds;

  traffic::Replayer::Options options;
  options.on_bucket = [&](double t_s) {
    if (t_s + 1e-9 < next_action_s) return;
    next_action_s += 0.5;
    const bool remove = !running.empty() && rng.uniform01() < 0.4;
    if (remove) {
      (void)bed.controller.revoke(running.front());
      running.pop_front();
      return;
    }
    const auto& key = kChurnKeys[rng.uniform(kChurnKeys.size())];
    apps::ProgramConfig config;
    config.instance_name = key + "_churn_" + std::to_string(epoch);
    const bool udp_keyed = key == "cache" || key == "nc" || key == "dqacc" ||
                           key == "calculator";
    config.filter_value = udp_keyed
                              ? 20000u + static_cast<Word>(epoch)
                              : (11u << 24) | (static_cast<Word>(epoch % 256) << 16);
    ++epoch;
    auto linked = bed.controller.link_single(apps::make_program_source(key, config));
    if (linked.ok()) running.push_back(linked.value().id);
  };

  const auto samples = replayer.run(trace, options);
  print_time_header(trace_config.duration_s, 1.0);
  print_row("RX (churn)", sampled(samples, 1.0,
                                  [](const traffic::RateSample& s) { return s.rx_mbps; }),
            " %6.1f");

  // Contrast run without any churn.
  bench::Testbed contrast;
  traffic::Replayer contrast_replayer(contrast.dataplane, contrast.clock);
  const auto contrast_samples = contrast_replayer.run(trace, {});
  print_row("RX (no churn)",
            sampled(contrast_samples, 1.0,
                    [](const traffic::RateSample& s) { return s.rx_mbps; }),
            " %6.1f");

  // What the conventional workflow would do to the same churn: every
  // program change is a reprovision, and each reprovision blacks the
  // switch out. Even a (generously short) 1 s blackout per change at the
  // 0.5 s change cadence keeps the switch permanently down.
  SimClock conv_clock;
  p4fix::ConventionalSwitch conventional(conv_clock);
  conventional.provision(std::make_unique<p4fix::FixedForward>(0), 0.0);
  traffic::Replayer conv_replayer(
      [&conventional](const rmt::Packet& pkt) { return conventional.inject(pkt); },
      conv_clock);
  double conv_next_action_s = kDeployAtSeconds;
  traffic::Replayer::Options conv_options;
  conv_options.on_bucket = [&](double t_s) {
    if (t_s + 1e-9 < conv_next_action_s) return;
    conv_next_action_s += 0.5;
    conventional.provision(std::make_unique<p4fix::FixedForward>(0), 1.0);
  };
  const auto conv_samples = conv_replayer.run(trace, conv_options);
  print_row("RX (conventional)",
            sampled(conv_samples, 1.0,
                    [](const traffic::RateSample& s) { return s.rx_mbps; }),
            " %6.1f");

  double max_delta = 0.0;
  for (std::size_t i = 0; i < samples.size() && i < contrast_samples.size(); ++i) {
    max_delta = std::max(max_delta,
                         std::abs(samples[i].rx_mbps - contrast_samples[i].rx_mbps));
  }
  std::printf("\nDeployed/deleted %d programs during replay; max per-bucket RX\n"
              "difference vs the unchurned run: %.3f Mbps (expected: 0 — runtime\n"
              "updates never touch unrelated traffic; curve spikes are the trace's\n"
              "large TCP transfers).\n", epoch, max_delta);
}

// ---------------------------------------------------------------------------
// (b) In-network cache.
// ---------------------------------------------------------------------------
void case_b() {
  bench::heading("Fig. 13(b): in-network cache deployment (server-bound RX, Mbps)");
  traffic::CacheWorkloadConfig config;
  config.duration_s = 20.0;
  const auto workload = traffic::make_cache_workload(config);
  std::printf("cached keys: %zu, expected hit rate: %.2f\n",
              workload.cached_keys.size(), workload.expected_hit_rate);

  auto deploy_cache = [&](bench::Testbed& bed) {
    apps::ProgramConfig pc;
    pc.instance_name = "cache";
    pc.elastic_cases = 2 * static_cast<int>(workload.cached_keys.size());
    auto linked = bed.controller.link_single(apps::make_program_source("cache", pc));
    if (linked.ok()) {
      for (std::size_t k = 0; k < workload.cached_keys.size(); ++k) {
        (void)bed.controller.write_memory(linked.value().id, "mem1",
                                    static_cast<MemAddr>(k), 0xCAFE0000u + static_cast<Word>(k));
      }
    }
  };

  // P4runpro run: deploy at t = 5 s, live within milliseconds.
  bench::Testbed runpro;
  traffic::Replayer runpro_replayer(runpro.dataplane, runpro.clock);
  bool deployed = false;
  traffic::Replayer::Options runpro_options;
  runpro_options.on_bucket = [&](double t_s) {
    if (!deployed && t_s >= kDeployAtSeconds) {
      deploy_cache(runpro);
      deployed = true;
    }
  };
  const auto runpro_samples = runpro_replayer.run(workload.trace, runpro_options);

  // Conventional P4 run: an actual fixed-function switch. At t = 5 s the
  // operator swaps the forwarding image for the (pre-compiled) cache
  // image; the switch drops everything until reprovisioning completes,
  // then runs the genuinely equivalent standalone program.
  SimClock conv_clock;
  p4fix::ConventionalSwitch conventional(conv_clock);
  conventional.provision(std::make_unique<p4fix::FixedForward>(32), 0.0);
  traffic::Replayer conv_replayer(
      [&conventional](const rmt::Packet& pkt) { return conventional.inject(pkt); },
      conv_clock);
  bool conv_deployed = false;
  traffic::Replayer::Options conv_options;
  conv_options.on_bucket = [&](double t_s) {
    if (!conv_deployed && t_s >= kDeployAtSeconds) {
      auto cache = std::make_unique<p4fix::FixedCache>();
      for (std::size_t k = 0; k < workload.cached_keys.size(); ++k) {
        cache->insert(workload.cached_keys[k], 0xCAFE0000u + static_cast<Word>(k));
      }
      conventional.provision(std::move(cache), kReprovisionSeconds);
      conv_deployed = true;
    }
  };
  const auto conv_samples = conv_replayer.run(workload.trace, conv_options);

  print_time_header(config.duration_s, 1.0);
  print_row("P4runpro", sampled(runpro_samples, 1.0,
                                [](const traffic::RateSample& s) { return s.fwd_mbps; }),
            " %6.1f");
  print_row("conventional P4",
            sampled(conv_samples, 1.0,
                    [](const traffic::RateSample& s) { return s.fwd_mbps; }),
            " %6.1f");
  std::printf("\nShape check: both settle at ~40%% of the offered load (hit rate 0.6\n"
              "reflects 60%% back to clients); the conventional workflow blacks out\n"
              "traffic for %.0f s while reprovisioning, P4runpro switches within one\n"
              "bucket. Functions are identical afterwards.\n", kReprovisionSeconds);
}

// ---------------------------------------------------------------------------
// (c) Stateless load balancer.
// ---------------------------------------------------------------------------
void case_c() {
  bench::heading("Fig. 13(c): stateless load balancer (load-imbalance rate)");
  traffic::CampusTraceConfig trace_config;
  trace_config.duration_s = 20.0;
  trace_config.seed = 4;
  // The campus VIP traffic aggregates many comparable flows; a flatter
  // popularity curve than the full campus mix (no single flow dominates a
  // hash bucket, as in the paper's two-port DIP pool measurement).
  trace_config.zipf_skew = 0.5;
  const auto trace = traffic::make_campus_trace(trace_config);

  auto deploy_lb = [](bench::Testbed& bed) {
    apps::ProgramConfig pc;
    pc.instance_name = "lb";
    auto linked = bed.controller.link_single(apps::make_program_source("lb", pc));
    if (linked.ok()) {
      for (std::uint32_t b = 0; b < 256; ++b) {
        (void)bed.controller.write_memory(linked.value().id, "port_pool", b, b % 2);
        (void)bed.controller.write_memory(linked.value().id, "dip_pool", b, 0xac100000u + b);
      }
    }
  };

  bench::Testbed runpro;
  traffic::Replayer runpro_replayer(runpro.dataplane, runpro.clock);
  bool deployed = false;
  traffic::Replayer::Options options;
  options.on_bucket = [&](double t_s) {
    if (!deployed && t_s >= kDeployAtSeconds) {
      deploy_lb(runpro);
      deployed = true;
    }
  };
  const auto samples = runpro_replayer.run(trace, options);

  // Conventional P4: a real fixed-function load balancer behind a
  // reprovisioning blackout.
  SimClock conv_clock;
  p4fix::ConventionalSwitch conventional(conv_clock);
  conventional.provision(std::make_unique<p4fix::FixedForward>(0), 0.0);
  traffic::Replayer conv_replayer(
      [&conventional](const rmt::Packet& pkt) { return conventional.inject(pkt); },
      conv_clock);
  bool conv_deployed = false;
  traffic::Replayer::Options conv_options;
  conv_options.on_bucket = [&](double t_s) {
    if (!conv_deployed && t_s >= kDeployAtSeconds) {
      auto lb = std::make_unique<p4fix::FixedLoadBalancer>(256, 0x0a000000,
                                                           0xffff0000);
      for (std::uint32_t b = 0; b < 256; ++b) {
        lb->set_bucket(b, static_cast<Port>(b % 2), 0xac100000u + b);
      }
      conventional.provision(std::move(lb), kReprovisionSeconds);
      conv_deployed = true;
    }
  };
  const auto conv_samples = conv_replayer.run(trace, conv_options);

  auto imbalance_series = [](const std::vector<traffic::RateSample>& input) {
    std::vector<double> out;
    double next = 0.0;
    for (const auto& s : input) {
      if (s.t_s + 1e-9 >= next) {
        out.push_back(analysis::load_imbalance(s.port_mbps[0], s.port_mbps[1]));
        next += 1.0;
      }
    }
    return out;
  };

  print_time_header(trace_config.duration_s, 1.0);
  print_row("imbalance (P4runpro)", imbalance_series(samples), " %6.2f");
  print_row("imbalance (P4 prog.)", imbalance_series(conv_samples), " %6.2f");
  std::printf("\nShape check: imbalance is 1.0 before deployment (everything on the\n"
              "default port) and drops to ~0 once either implementation hashes flows\n"
              "over both DIP ports; the conventional program needs the %.0f s\n"
              "reprovisioning blackout first (imbalance undefined -> 0 while down).\n",
              kReprovisionSeconds);
}

// ---------------------------------------------------------------------------
// (d) Heavy hitter detector.
// ---------------------------------------------------------------------------
void case_d() {
  bench::heading("Fig. 13(d): heavy hitter detector (F1 score over time)");
  traffic::CampusTraceConfig trace_config;
  trace_config.duration_s = 30.0;
  trace_config.zipf_skew = 1.0;
  trace_config.seed = 5;
  const auto trace = traffic::make_campus_trace(trace_config);

  constexpr std::uint64_t kThreshold = 1024;
  const auto truth_list = traffic::heavy_hitters(trace, kThreshold);
  const std::set<rmt::FiveTuple> truth(truth_list.begin(), truth_list.end());
  std::printf("ground truth: %zu flows over %llu packets (threshold %llu)\n",
              truth.size(), static_cast<unsigned long long>(trace.packets.size()),
              static_cast<unsigned long long>(kThreshold));

  bench::Testbed bed;
  traffic::Replayer replayer(bed.dataplane, bed.clock);
  bool deployed = false;
  std::vector<std::pair<double, double>> f1_series;
  traffic::Replayer::Options options;
  options.collect_reports = true;
  options.on_bucket = [&](double t_s) {
    if (!deployed && t_s >= 1.0) {
      apps::ProgramConfig pc;
      pc.instance_name = "hh";
      pc.mem_buckets = 4096;  // CMS/BF rows (see EXPERIMENTS.md on sizing)
      pc.threshold = kThreshold;
      deployed = bed.controller.link_single(apps::make_program_source("hh", pc)).ok();
    }
    if (static_cast<int>(t_s * 20) % 40 == 0) {  // every 2 s
      const auto acc = analysis::f1_score(replayer.reported_flows(), truth);
      f1_series.emplace_back(t_s, acc.f1);
    }
  };
  const auto samples = replayer.run(trace, options);
  (void)samples;

  // The standalone P4 heavy-hitter program on the same trace.
  SimClock conv_clock;
  p4fix::FixedHeavyHitter fixed(4096, kThreshold);
  std::set<rmt::FiveTuple> fixed_reported;
  std::vector<std::pair<double, double>> fixed_f1;
  {
    std::size_t next_mark = 0;
    for (const auto& tp : trace.packets) {
      if (fixed.process(tp.pkt).fate == rmt::PacketFate::Reported) {
        fixed_reported.insert(tp.pkt.five_tuple());
      }
      const double t_s = static_cast<double>(tp.t_ns) / 1e9;
      if (t_s >= static_cast<double>(next_mark) * 2.0 && next_mark > 0) {
        fixed_f1.emplace_back(t_s, analysis::f1_score(fixed_reported, truth).f1);
        ++next_mark;
      } else if (next_mark == 0 && t_s >= 2.0) {
        fixed_f1.emplace_back(t_s, analysis::f1_score(fixed_reported, truth).f1);
        next_mark = 2;
      }
    }
  }

  std::printf("%-16s", "t (s)");
  for (const auto& [t, f1] : f1_series) std::printf(" %6.1f", t);
  std::printf("\n");
  bench::rule(120);
  std::printf("%-16s", "F1 (P4runpro)");
  for (const auto& [t, f1] : f1_series) std::printf(" %6.3f", f1);
  std::printf("\n");
  std::printf("%-16s", "F1 (P4 program)");
  for (std::size_t i = 0; i < f1_series.size() && i < fixed_f1.size(); ++i) {
    std::printf(" %6.3f", fixed_f1[i].second);
  }
  std::printf("\n");

  const auto final_acc = analysis::f1_score(replayer.reported_flows(), truth);
  std::printf("\nfinal precision %.3f, recall %.3f, F1 %.3f\n", final_acc.precision,
              final_acc.recall, final_acc.f1);
  std::printf("Shape check: F1 climbs as flows cross the threshold and rapidly\n"
              "approaches 1 — every heavy flow is detected and reported exactly\n"
              "once (BF dedup); truncated CRC16 addressing behaves like a native\n"
              "lower-width hash (paper §6.4).\n");
}

}  // namespace

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  case_a();
  case_b();
  case_c();
  case_d();
  return 0;
}
