// Fig. 11: impact of recirculation — maximum lossless throughput loss and
// normalized zero-queue RTT versus the recirculation iteration number, for
// packet sizes 128 B to 1,500 B on a 100G port pair. The paper measures
// 1-10% loss at one iteration (packet-size dependent) and only 2.2-7.2%
// RTT growth even at 6 iterations.
#include <cstdio>

#include "analysis/throughput_model.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  using namespace p4runpro;
  const analysis::RecirculationModel model;

  bench::heading("Fig. 11(a): throughput loss vs recirculation iterations");
  const int kSizes[] = {128, 256, 512, 1024, 1500};
  std::printf("%-10s", "pkt size");
  for (int it = 0; it <= 6; ++it) std::printf(" | iter %d", it);
  std::printf("\n");
  bench::rule(80);
  for (int size : kSizes) {
    std::printf("%7d B ", size);
    for (int it = 0; it <= 6; ++it) {
      std::printf(" | %5.1f%%", 100.0 * analysis::throughput_loss(model, size, it));
    }
    std::printf("\n");
  }

  bench::heading("Fig. 11(b): normalized zero-queue RTT vs recirculation iterations");
  std::printf("%-10s", "");
  for (int it = 0; it <= 6; ++it) std::printf(" | iter %d", it);
  std::printf("\n");
  bench::rule(80);
  std::printf("%-10s", "norm. RTT");
  for (int it = 0; it <= 6; ++it) {
    std::printf(" | %6.3f", analysis::normalized_rtt(model, it));
  }
  std::printf("\n");
  const double growth6 = 100.0 * (analysis::normalized_rtt(model, 6) - 1.0);
  std::printf("\nRTT growth at 6 iterations: %.1f%% (paper: 2.2-7.2%%).\n", growth6);

  std::printf("Shape check: one iteration costs 1-10%% throughput depending on\n"
              "packet size (worst for small packets); latency growth stays minimal.\n"
              "With R = 1 (the prototype default) the overhead is manageable while\n"
              "all 15 programs fit; 13 of 15 need no recirculation at all.\n");
  return 0;
}
