// Fig. 7: allocation delay.
//  (a) Delay per deployment epoch during 500 sequential program arrivals
//      (10 runs, moving average window 31) for the cache / lb / hh / mixed
//      workloads, P4runpro vs the ActiveRMT baseline allocator. Failed
//      allocations record 0 (as in the paper).
//  (b) Allocation delay vs requested memory granularity (128 B - 1,024 B)
//      under the mixed workload: P4runpro is insensitive, ActiveRMT's
//      fixed-granularity model degrades with finer granules.
#include <cstdio>
#include <vector>

#include "analysis/metrics.h"
#include "baselines/activermt.h"
#include "bench_util.h"
#include "traffic/workloads.h"

namespace {

using namespace p4runpro;

constexpr int kEpochs = 500;
constexpr int kRuns = 10;
constexpr int kWindow = 31;

/// One P4runpro run: returns per-epoch allocation delay (ms), 0 on failure.
std::vector<double> run_p4runpro(traffic::WorkloadGenerator workload) {
  bench::Testbed bed;
  std::vector<double> delays;
  delays.reserve(kEpochs);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const auto request = workload.next();
    auto linked = bed.controller.link_single(request.source);
    delays.push_back(linked.ok() ? linked.value().stats.alloc_ms : 0.0);
  }
  return delays;
}

std::vector<double> run_activermt(std::uint32_t granularity) {
  baselines::ActiveRmtConfig config;
  config.granularity = granularity;
  baselines::ActiveRmtAllocator allocator(config);
  Rng rng(7);
  std::vector<double> delays;
  delays.reserve(kEpochs);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    baselines::ActiveRequest request;
    switch (rng.uniform(3)) {
      case 0: request = {12, 256, true}; break;   // cache (elastic)
      case 1: request = {20, 256, false}; break;  // lb
      default: request = {30, 256, false}; break; // hh
    }
    WallTimer timer;
    auto r = allocator.allocate(request);
    delays.push_back(r.ok() ? timer.elapsed_ms() : 0.0);
  }
  return delays;
}

std::vector<double> average_runs(const std::vector<std::vector<double>>& runs) {
  std::vector<double> avg(runs[0].size(), 0.0);
  for (const auto& run : runs) {
    for (std::size_t i = 0; i < avg.size(); ++i) avg[i] += run[i];
  }
  for (auto& v : avg) v /= static_cast<double>(runs.size());
  return avg;
}

void print_series(const char* name, const std::vector<double>& series) {
  std::printf("%-18s", name);
  for (std::size_t i = 0; i < series.size(); i += 50) {
    std::printf(" %8.4f", series[i]);
  }
  std::printf(" %8.4f\n", series.back());
}

}  // namespace

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  bench::heading("Fig. 7(a): allocation delay during continuous deployment (ms)");
  std::printf("%-18s", "epoch ->");
  for (int e = 0; e < kEpochs; e += 50) std::printf(" %8d", e);
  std::printf(" %8d\n", kEpochs - 1);
  bench::rule(120);

  for (const char* key : {"cache", "lb", "hh"}) {
    std::vector<std::vector<double>> runs;
    for (int run = 0; run < kRuns; ++run) {
      runs.push_back(run_p4runpro(
          traffic::WorkloadGenerator::single(key, 256, 2, 7 + run)));
    }
    print_series(key, analysis::moving_average(average_runs(runs), kWindow));
  }
  {
    std::vector<std::vector<double>> runs;
    for (int run = 0; run < kRuns; ++run) {
      runs.push_back(run_p4runpro(traffic::WorkloadGenerator::mixed(256, 2, 7 + run)));
    }
    print_series("mixed", analysis::moving_average(average_runs(runs), kWindow));
  }
  {
    std::vector<std::vector<double>> runs;
    for (int run = 0; run < kRuns; ++run) runs.push_back(run_activermt(256));
    print_series("ActiveRMT(mixed)",
                 analysis::moving_average(average_runs(runs), kWindow));
  }
  std::printf("\nShape check: P4runpro delay is flat per workload; ActiveRMT's grows\n"
              "with the number of installed programs (global fair-remap model).\n");

  bench::heading("Fig. 7(b): allocation delay vs memory granularity (mixed workload)");
  std::printf("%-14s | %18s | %18s\n", "granularity", "P4runpro mean (ms)",
              "ActiveRMT mean (ms)");
  bench::rule(60);
  for (std::uint32_t buckets : {32u, 64u, 128u, 256u}) {  // 128 B .. 1,024 B
    double p4_sum = 0.0;
    int p4_count = 0;
    auto delays = run_p4runpro(traffic::WorkloadGenerator::mixed(buckets, 2, 11));
    for (double d : delays) {
      if (d > 0) {
        p4_sum += d;
        ++p4_count;
      }
    }
    auto armt = run_activermt(buckets);
    double armt_sum = 0.0;
    int armt_count = 0;
    for (double d : armt) {
      if (d > 0) {
        armt_sum += d;
        ++armt_count;
      }
    }
    std::printf("%10u B   | %18.4f | %18.4f\n", buckets * 4,
                p4_count ? p4_sum / p4_count : 0.0,
                armt_count ? armt_sum / armt_count : 0.0);
  }
  std::printf("\nShape check: the requested memory size does not affect P4runpro's\n"
              "allocation time (paper §6.2.1); finer granularity slows ActiveRMT.\n");
  return 0;
}
