// Shared helpers for the benchmark harnesses: canonical experiment setup
// (provisioned data plane + controller), table printing, and the sidecar
// telemetry artifacts every bench binary can emit.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "obs/telemetry.h"

namespace p4runpro::bench {

/// Command-line sidecar flags shared by the bench binaries. Each flag is
/// accepted in both spellings: `--flag=path` and `--flag path`. Consumed
/// argv slots are marked so callers can strip exactly the recognized
/// arguments before handing argv to pickier parsers (benchmark::Initialize).
struct SidecarFlags {
  std::string metrics_path;  ///< --telemetry-out: JSONL metric dump
  std::string trace_path;    ///< --trace-out: Chrome trace_event span dump
  std::string alerts_path;   ///< --alerts-out: monitor event/alert JSONL
  std::string flight_path;   ///< --flight-out: flight-recorder journey JSONL
  std::string bench_json_path;  ///< --bench-json-out: machine-readable rates
  /// --telemetry-every: periodic time-series sampling cadence in *virtual*
  /// milliseconds ("" = disabled). Enables the default bundle's
  /// TimeSeriesStore; the sampled series are appended to the
  /// --telemetry-out JSONL as {"type":"series",...} lines.
  std::string telemetry_every_ms;
  /// --shards: shard counts for the binaries with a sharded mode
  /// (micro_dataplane rate suite, fig9_capacity trial pool). "" = binary
  /// default. micro_dataplane accepts a comma list ("1,2,4").
  std::string shards;
  std::vector<bool> consumed;  ///< per-argv index, true = ours

  [[nodiscard]] static SidecarFlags parse(int argc, char** argv) {
    SidecarFlags flags;
    flags.consumed.assign(static_cast<std::size_t>(argc), false);
    const auto match = [&](int& i, std::string_view name, std::string& out) {
      const std::string_view arg = argv[i];
      if (arg.rfind(name, 0) != 0) return false;
      const std::string_view rest = arg.substr(name.size());
      if (rest.size() > 1 && rest.front() == '=') {
        out = rest.substr(1);
        flags.consumed[static_cast<std::size_t>(i)] = true;
        return true;
      }
      // Space-separated form: the path is the next argv slot.
      if (rest.empty() && i + 1 < argc) {
        out = argv[i + 1];
        flags.consumed[static_cast<std::size_t>(i)] = true;
        flags.consumed[static_cast<std::size_t>(i + 1)] = true;
        ++i;
        return true;
      }
      return false;
    };
    for (int i = 1; i < argc; ++i) {
      if (match(i, "--telemetry-out", flags.metrics_path)) continue;
      if (match(i, "--telemetry-every", flags.telemetry_every_ms)) continue;
      if (match(i, "--trace-out", flags.trace_path)) continue;
      if (match(i, "--alerts-out", flags.alerts_path)) continue;
      if (match(i, "--flight-out", flags.flight_path)) continue;
      if (match(i, "--bench-json-out", flags.bench_json_path)) continue;
      if (match(i, "--shards", flags.shards)) continue;
    }
    return flags;
  }
};

/// Sidecar telemetry artifact for bench binaries. Construct first thing in
/// main(); recognizes (each also in the space-separated spelling)
///   --telemetry-out=<path>   JSON-lines metric dump of the default registry
///   --trace-out=<path>       Chrome trace_event span dump (Perfetto-loadable)
///   --alerts-out=<path>      health-monitor event stream (deploys + alerts)
///   --flight-out=<path>      flight-recorder journey dump (enables 1-in-64
///                            packet sampling for the whole run)
///   --bench-json-out=<path>  machine-readable packet-rate baseline (written
///                            by the binaries that measure rates, e.g.
///                            micro_dataplane -> BENCH_dataplane.json)
///   --telemetry-every=<ms>   periodic time-series flush: sample the default
///                            registry every <ms> virtual milliseconds into
///                            the bundle's TimeSeriesStore; the series are
///                            appended to the --telemetry-out JSONL
/// and writes the files when the scope dies, after the benchmark printed its
/// regular stdout tables (which stay byte-for-byte unchanged). Unknown
/// arguments are ignored so harness runners can pass extra flags through
/// (but benchmark::Initialize still rejects unknown --flags, so typos like
/// --telemetry-everyy fail loudly instead of silently disabling sampling).
class TelemetryScope {
 public:
  TelemetryScope(int argc, char** argv) : flags_(SidecarFlags::parse(argc, argv)) {
    if (!flags_.flight_path.empty()) {
      // Journey capture is off by default (it forces per-packet tracing);
      // asking for the dump opts into sampling.
      obs::default_telemetry().flight.set_sample_every(64);
    }
    if (!flags_.telemetry_every_ms.empty()) {
      const double every_ms = std::strtod(flags_.telemetry_every_ms.c_str(), nullptr);
      if (every_ms > 0.0) {
        obs::default_telemetry().series.set_cadence(
            static_cast<SimClock::Nanos>(every_ms * 1e6));
      }
    }
  }

  ~TelemetryScope() {
    const auto& telemetry = obs::default_telemetry();
    if (!flags_.metrics_path.empty()) {
      std::ofstream out(flags_.metrics_path);
      if (out) {
        export_metrics_jsonl(telemetry.metrics, out);
        // Periodic-flush series ride in the same JSONL (one valid JSON
        // object per line, so line-wise consumers are unaffected).
        if (telemetry.series.samples_taken() > 0) {
          export_series_jsonl(telemetry.series, out);
        }
      }
    }
    if (!flags_.trace_path.empty()) {
      std::ofstream out(flags_.trace_path);
      if (out) export_chrome_trace(telemetry.tracer, out, /*include_wall=*/true);
    }
    if (!flags_.alerts_path.empty()) {
      std::ofstream out(flags_.alerts_path);
      if (out) export_alerts_jsonl(telemetry.monitor, out);
    }
    if (!flags_.flight_path.empty()) {
      std::ofstream out(flags_.flight_path);
      if (out) export_flight_jsonl(telemetry.flight, out);
    }
  }

  [[nodiscard]] const SidecarFlags& flags() const noexcept { return flags_; }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  SidecarFlags flags_;
};

/// main() body for google-benchmark binaries (replaces BENCHMARK_MAIN so the
/// telemetry sidecar flags work there too). benchmark::Initialize rejects
/// flags it does not know, so every argv slot the sidecar parser consumed is
/// stripped before handing argv over.
inline int benchmark_main_with_telemetry(int argc, char** argv) {
  TelemetryScope telemetry_scope(argc, argv);
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (telemetry_scope.flags().consumed[static_cast<std::size_t>(i)]) continue;
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// A freshly provisioned switch with the paper's prototype geometry and the
/// default parser configuration (application headers on the catalog ports).
/// Pass `telemetry` to isolate this bed's observations from the process-wide
/// default bundle — REQUIRED when beds run on thread-pool workers (the
/// default bundle is not thread-safe; see docs/PERFORMANCE.md).
struct Testbed {
  SimClock clock;
  dp::RunproDataplane dataplane;
  ctrl::Controller controller;

  explicit Testbed(rp::Objective objective = {},
                   obs::Telemetry* telemetry = nullptr)
      : dataplane(dp::DataplaneSpec{},
                  rmt::ParserConfig{{7777, 7788, 9999, 5555}}),
        controller(dataplane, clock, objective, ctrl::BfrtCostModel{}, telemetry) {}
};

/// A Testbed plus the private telemetry bundle it reports into: the shard
/// unit for parallel trials (one IsolatedTestbed per thread-pool task).
struct IsolatedTestbed {
  obs::Telemetry telemetry;  // must outlive the controller construction
  Testbed bed;

  explicit IsolatedTestbed(rp::Objective objective = {})
      : bed(objective, &telemetry) {}
};

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule(int width = 96) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace p4runpro::bench
