// Shared helpers for the benchmark harnesses: canonical experiment setup
// (provisioned data plane + controller) and table printing.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro::bench {

/// A freshly provisioned switch with the paper's prototype geometry and the
/// default parser configuration (application headers on the catalog ports).
struct Testbed {
  SimClock clock;
  dp::RunproDataplane dataplane;
  ctrl::Controller controller;

  explicit Testbed(rp::Objective objective = {})
      : dataplane(dp::DataplaneSpec{},
                  rmt::ParserConfig{{7777, 7788, 9999, 5555}}),
        controller(dataplane, clock, objective) {}
};

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule(int width = 96) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace p4runpro::bench
