// Shared helpers for the benchmark harnesses: canonical experiment setup
// (provisioned data plane + controller), table printing, and the sidecar
// telemetry artifact every bench binary can emit.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "obs/telemetry.h"

namespace p4runpro::bench {

/// Sidecar telemetry artifact for bench binaries. Construct first thing in
/// main(); recognizes
///   --telemetry-out=<path>   JSON-lines metric dump of the default registry
///   --trace-out=<path>       Chrome trace_event span dump (Perfetto-loadable)
/// and writes the files when the scope dies, after the benchmark printed its
/// regular stdout tables (which stay byte-for-byte unchanged). Unknown
/// arguments are ignored so harness runners can pass extra flags through.
class TelemetryScope {
 public:
  TelemetryScope(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (constexpr std::string_view kMetrics = "--telemetry-out=";
          arg.rfind(kMetrics, 0) == 0) {
        metrics_path_ = arg.substr(kMetrics.size());
      } else if (constexpr std::string_view kTrace = "--trace-out=";
                 arg.rfind(kTrace, 0) == 0) {
        trace_path_ = arg.substr(kTrace.size());
      }
    }
  }

  ~TelemetryScope() {
    const auto& telemetry = obs::default_telemetry();
    if (!metrics_path_.empty()) {
      std::ofstream out(metrics_path_);
      if (out) export_metrics_jsonl(telemetry.metrics, out);
    }
    if (!trace_path_.empty()) {
      std::ofstream out(trace_path_);
      if (out) export_chrome_trace(telemetry.tracer, out, /*include_wall=*/true);
    }
  }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

/// main() body for google-benchmark binaries (replaces BENCHMARK_MAIN so the
/// telemetry sidecar flags work there too). benchmark::Initialize rejects
/// flags it does not know, so the telemetry arguments are stripped before
/// handing argv over.
inline int benchmark_main_with_telemetry(int argc, char** argv) {
  TelemetryScope telemetry_scope(argc, argv);
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--telemetry-out=", 0) == 0 || arg.rfind("--trace-out=", 0) == 0) {
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// A freshly provisioned switch with the paper's prototype geometry and the
/// default parser configuration (application headers on the catalog ports).
struct Testbed {
  SimClock clock;
  dp::RunproDataplane dataplane;
  ctrl::Controller controller;

  explicit Testbed(rp::Objective objective = {})
      : dataplane(dp::DataplaneSpec{},
                  rmt::ParserConfig{{7777, 7788, 9999, 5555}}),
        controller(dataplane, clock, objective) {}
};

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule(int width = 96) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace p4runpro::bench
