// Tables 3 & 4 (appendix A): the primitive / pseudo-primitive reference,
// generated FROM THE IMPLEMENTATION — each pseudo primitive is compiled
// through the real translator and its expansion printed, which both
// documents and verifies the Fig. 14 translations.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "compiler/compiler.h"
#include "dataplane/atomic_op.h"

namespace {

using namespace p4runpro;

void show_expansion(const char* pseudo, const char* body, const char* note = "") {
  const std::string source =
      std::string("@ m 64\nprogram p(<hdr.ipv4.src, 1, 0xff>) {\n") + body + "}\n";
  auto ir = rp::compile_single(source);
  if (!ir.ok()) {
    std::printf("%-22s -> COMPILE ERROR: %s\n", pseudo, ir.error().str().c_str());
    return;
  }
  std::printf("%-22s ->", pseudo);
  for (const auto& node : ir.value().nodes) {
    dp::AtomicOp op;
    op.kind = node.op.kind;
    op.field = node.op.field;
    op.reg0 = node.op.reg0;
    op.reg1 = node.op.reg1;
    op.imm = node.op.imm;
    op.salu = node.op.salu;
    std::string text = op.str();
    if (!node.op.vmem.empty()) text += "[" + node.op.vmem + "]";
    std::printf(" %s;", text.c_str());
  }
  if (*note) std::printf("   (%s)", note);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  bench::heading("Table 3: primitive set (kinds implemented by every RPB)");
  std::printf(
      "  header interaction : EXTRACT(field, reg)   MODIFY(field, reg)\n"
      "  hash               : HASH_5_TUPLE  HASH  HASH_5_TUPLE_MEM(mem)  HASH_MEM(mem)\n"
      "  conditional branch : BRANCH + case blocks on <reg, value, mask>\n"
      "  memory             : MEMADD MEMSUB MEMAND MEMOR MEMREAD MEMWRITE MEMMAX\n"
      "  arithmetic & logic : LOADI(reg, i)  ADD AND OR MAX MIN XOR (reg0, reg1)\n"
      "  forwarding         : FORWARD(port) DROP RETURN REPORT MULTICAST(group)\n");

  bench::heading("Fig. 14: pseudo-primitive translations (compiled live)");
  show_expansion("MOVE(har, sar)", "  MOVE(har, sar);\n");
  show_expansion("NOT(har)", "  NOT(har);\n");
  show_expansion("ADDI(har, 5)", "  ADDI(har, 5);\n");
  show_expansion("ANDI(har, 0xff)", "  ANDI(har, 0xff);\n");
  show_expansion("XORI(har, 0xff)", "  XORI(har, 0xff);\n");
  show_expansion("SUBI(har, 7)", "  SUBI(har, 7);\n",
                 "loads 2^32-7, the two's complement");
  show_expansion("EQUAL(har, sar)", "  EQUAL(har, sar);\n", "har == 0 iff equal");
  show_expansion("SGT(har, sar)", "  SGT(har, sar);\n", "har == 0 iff har >= sar");
  show_expansion("SLT(har, sar)", "  SLT(har, sar);\n", "har == 0 iff har <= sar");
  show_expansion("SUB(har, sar)", "  SUB(har, sar);\n",
                 "corrected 6-op a + ~b + 1; the paper's listing omits the +1");

  bench::heading("Supportive-register liveness (register-lifetime optimization)");
  show_expansion("ADDI, support dead", "  ADDI(har, 5);\n",
                 "no BACKUP/RESTORE: sar/mar never read again");
  show_expansion("ADDI, support live",
                 "  EXTRACT(hdr.ipv4.src, sar);\n  EXTRACT(hdr.ipv4.dst, mar);\n"
                 "  ADDI(har, 5);\n  ADD(sar, mar);\n",
                 "BACKUP/RESTORE wrap the clobbered register");

  bench::heading("Address translation (mask + offset steps)");
  show_expansion("MEMADD via hash", "  HASH_5_TUPLE_MEM(m);\n  MEMADD(m);\n",
                 "mask merged into the hash, OFFSET as its own depth");

  std::printf("\nTable 4 argument kinds: FIELD (hdr.*/meta.*), IDENTIFIER (memory),\n"
              "REGISTER (har/sar/mar), and 32-bit INT (dec/hex/bin/IPv4 literal).\n");
  return 0;
}
