// Fig. 9: program capacity — how many program instances can run
// concurrently — for the cache / lb / hh / nc / all-mixed workloads, under
// the baseline configuration (1,024 B memory, 2 elastic case blocks) and
// with doubled/quadrupled memory or 16/256 elastic case blocks. The paper
// reports ~2.8K (lb) down to ~0.6K (nc), 77-1351 for all-mixed, and that
// elastic-block growth hurts capacity more than memory growth (TCAM is the
// scarcer resource).
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iterator>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "traffic/workloads.h"

namespace {

using namespace p4runpro;

int capacity(traffic::WorkloadGenerator workload) {
  // One isolated bed (own telemetry bundle) per trial: trials run
  // concurrently on thread-pool workers and must not share state.
  bench::IsolatedTestbed shard;
  int count = 0;
  for (;;) {
    const auto request = workload.next();
    auto linked = shard.bed.controller.link_single(request.source);
    if (!linked.ok()) break;
    if (++count > 20000) break;  // safety cap
  }
  return count;
}

traffic::WorkloadGenerator make(const std::string& key, std::uint32_t mem,
                                int elastic) {
  if (key == "all-mixed") return traffic::WorkloadGenerator::all_mixed(mem, elastic);
  return traffic::WorkloadGenerator::single(key, mem, elastic);
}

}  // namespace

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  // --shards N: width of the trial pool (how many capacity trials run
  // concurrently). Default: the hardware thread count.
  unsigned pool_width = common::ThreadPool::default_thread_count();
  if (!telemetry_scope.flags().shards.empty()) {
    const int parsed = std::atoi(telemetry_scope.flags().shards.c_str());
    if (parsed > 0) pool_width = static_cast<unsigned>(parsed);
  }
  bench::heading("Fig. 9: program capacity");
  std::printf("%-10s | %9s | %9s | %9s | %11s | %11s\n", "workload",
              "base", "mem 2KB", "mem 4KB", "elastic 16", "elastic 256");
  bench::rule(80);

  // Every (workload, configuration) capacity trial is independent: fan them
  // all out over the thread pool and collect in print order.
  const char* kWorkloads[] = {"cache", "lb", "hh", "nc", "all-mixed"};
  const struct {
    std::uint32_t mem;
    int elastic;
  } kConfigs[] = {{256, 2}, {512, 2}, {1024, 2}, {256, 16}, {256, 256}};

  common::ThreadPool pool(pool_width);
  std::vector<std::vector<std::future<int>>> trials;
  for (const char* key : kWorkloads) {
    auto& row = trials.emplace_back();
    for (const auto& config : kConfigs) {
      row.push_back(pool.submit([key, config] {
        return capacity(make(key, config.mem, config.elastic));
      }));
    }
  }
  for (std::size_t w = 0; w < std::size(kWorkloads); ++w) {
    std::printf("%-10s | %9d | %9d | %9d | %11d | %11d\n", kWorkloads[w],
                trials[w][0].get(), trials[w][1].get(), trials[w][2].get(),
                trials[w][3].get(), trials[w][4].get());
  }

  std::printf("\nShape check (paper §6.2.3): lb tops out near ~2.8K, nc near ~0.6K;\n"
              "doubling memory does NOT halve capacity, while raising the elastic\n"
              "case-block count collapses it (table entries are the scarce resource).\n"
              "Note: programs without elastic case blocks (e.g. hh) ignore the\n"
              "elastic columns.\n");
  return 0;
}
