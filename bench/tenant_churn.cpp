// Multi-tenant churn benchmark: sustained link/revoke churn against a
// switch held at >= 90% stage-memory occupancy, with the free space
// deliberately fragmented (many 8-word holes, no larger contiguous block)
// so that every 16-word request depends on defragmentation. Two scenario
// rows measure the admission rate and the p99 session latency with
// auto-defrag off vs on — the acceptance property is that the
// defrag-enabled row's admit rate strictly exceeds the defrag-disabled
// row's at the same occupancy. A third scenario drives an oversubscribed
// admission controller (inflight cap 1, queue bound 0) with barrier-
// released sessions and checks every rejected session carries
// ErrorCode::AdmissionShed — shed, not retry-spun.
//
//   ./tenant_churn [--churn-waves=N] [--churn-width=N] [--shed-sessions=N]
//                  [--bench-json-out=BENCH_tenant.json] [telemetry flags]
//
// The JSON artifact (BENCH_tenant.json) is the machine-readable baseline
// CI gates on (admit-rate ordering, occupancy floor, shed coding).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/program_library.h"
#include "bench_util.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "obs/telemetry.h"

namespace {

using namespace p4runpro;

int int_flag(int argc, char** argv, const char* name, int fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::atoi(argv[i] + len + 1);
    }
  }
  return fallback;
}

[[noreturn]] void die(const std::string& what) {
  std::fprintf(stderr, "tenant_churn: %s\n", what.c_str());
  std::exit(1);
}

/// The paper's prototype geometry with small stage memories: ~190 mixed
/// programs saturate the switch, so the fill phase stays fast while the
/// free-space geometry after hole punching is exact.
dp::DataplaneSpec churn_spec() {
  dp::DataplaneSpec spec;
  spec.memory_per_rpb = 256;
  return spec;
}

std::string program_source(const std::string& app, const std::string& name,
                           std::uint32_t mem_buckets) {
  apps::ProgramConfig config;
  config.instance_name = name;
  config.mem_buckets = mem_buckets;
  return apps::make_program_source(app, config);
}

/// One isolated switch + controller per scenario (sequential scenarios must
/// not share the process-wide bundle: the controller registers occupancy
/// probes under fixed names).
struct Bed {
  obs::Telemetry telemetry;
  SimClock clock;
  dp::RunproDataplane dataplane{churn_spec(),
                                rmt::ParserConfig{{7777, 7788, 9999, 5555}}};
  ctrl::Controller controller{dataplane, clock, rp::Objective{},
                              ctrl::BfrtCostModel{}, &telemetry};
};

struct Baseline {
  std::size_t fill_count = 0;
  std::size_t holes = 0;
  double occupancy = 0.0;        ///< used / capacity after punching holes
  std::uint64_t frag_words = 0;  ///< fragmentation metric at churn start
};

/// Saturate the switch, then fragment it while keeping occupancy >= 90%.
///
/// Fill: round-robin over the three catalog apps (cache / lb / hh — their
/// different depth structures pin memory to different stages, which is what
/// reaches every RPB), retiring an app once it no longer fits, then top off
/// with progressively smaller programs until nothing fits at all.
///
/// Fragment: revoke single-vmem 8-word cache programs at stride 3 of their
/// per-RPB placement order — every hole is 8 words with live blocks on both
/// sides, so no free block anywhere exceeds 8 words — bounded by a 9%
/// free-words budget so occupancy stays above the 90% floor.
Baseline fill_and_fragment(Bed& bed) {
  Baseline baseline;
  int next = 0;
  std::vector<ProgramId> cache8;
  for (const std::uint32_t buckets : {8u, 4u, 2u, 1u}) {
    std::vector<std::string> live = {"cache", "lb", "hh"};
    while (!live.empty()) {
      for (auto it = live.begin(); it != live.end();) {
        auto linked = bed.controller.link_single(
            program_source(*it, "fill" + std::to_string(next++), buckets));
        if (!linked.ok()) {
          if (linked.error().code != ErrorCode::AllocFailed) {
            die("fill failed with unexpected error: " + linked.error().str());
          }
          it = live.erase(it);
          continue;
        }
        if (*it == "cache" && buckets == 8) cache8.push_back(linked.value().id);
        ++baseline.fill_count;
        ++it;
      }
    }
  }
  if (cache8.size() < 16) die("fill phase produced too few 8-word cache programs");

  std::map<int, std::vector<std::pair<std::uint32_t, ProgramId>>> by_rpb;
  for (const ProgramId id : cache8) {
    const auto* program = bed.controller.program(id);
    if (program == nullptr) die("installed program vanished during fill");
    const auto& placement = program->placements.at("mem1");
    by_rpb[placement.rpb].emplace_back(placement.block.base, id);
  }
  const auto& spec = bed.dataplane.spec();
  const auto capacity =
      static_cast<std::uint64_t>(spec.total_rpbs()) * spec.memory_per_rpb;
  const std::uint64_t hole_budget_words = (capacity * 9) / 100;
  std::vector<ProgramId> punch_order;  // round-robin over RPBs: holes spread
  for (std::size_t pass = 0; true; ++pass) {
    bool any = false;
    for (auto& [rpb, blocks] : by_rpb) {
      (void)rpb;
      if (pass == 0) std::sort(blocks.begin(), blocks.end());
      const std::size_t index = pass * 3;  // stride 3: live blocks between holes
      if (index >= blocks.size()) continue;
      punch_order.push_back(blocks[index].second);
      any = true;
    }
    if (!any) break;
  }
  for (const ProgramId id : punch_order) {
    if ((baseline.holes + 1) * 8 > hole_budget_words) break;
    auto revoked = bed.controller.revoke(id);
    if (!revoked.ok()) die("hole punch revoke failed: " + revoked.error().str());
    ++baseline.holes;
  }

  std::uint64_t used = 0;
  for (int rpb = 1; rpb <= spec.total_rpbs(); ++rpb) {
    used += bed.controller.resources().memory_used(rpb);
  }
  baseline.occupancy =
      static_cast<double>(used) / static_cast<double>(capacity);
  baseline.frag_words = bed.controller.resources().total_fragmentation_words();
  return baseline;
}

struct ChurnRow {
  std::string name;
  Baseline baseline;
  int attempts = 0;
  int admitted = 0;
  double admit_rate = 0.0;
  double p99_session_ms = 0.0;
  std::uint64_t frag_words_end = 0;
  std::uint64_t defrag_moves = 0;
  std::uint64_t link_retries = 0;
};

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank =
      static_cast<std::size_t>(p * static_cast<double>(samples.size() - 1));
  return samples[rank];
}

/// Sustained churn at the fragmented baseline: waves of concurrent link
/// sessions, alternating 8-word programs (fit the holes) and 16-word
/// programs (need compaction), each wave revoked before the next so the
/// occupancy stays pinned. Sessions are spread over four weighted tenants
/// to exercise the fair-queued admission path.
ChurnRow run_churn(bool defrag_on, int waves, int width) {
  Bed bed;
  ChurnRow row;
  row.name = defrag_on ? "defrag_on" : "defrag_off";
  row.baseline = fill_and_fragment(bed);
  bed.controller.set_auto_defrag(defrag_on);
  const double tenant_weights[4] = {4.0, 2.0, 1.0, 1.0};
  for (ctrl::TenantId tenant = 1; tenant <= 4; ++tenant) {
    bed.controller.tenants().register_tenant(
        tenant, ctrl::TenantQuota{.weight = tenant_weights[tenant - 1]});
  }

  struct Outcome {
    std::string name;
    bool ok = false;
    std::string error;
    ErrorCode code = ErrorCode::AllocFailed;
    double wall_ms = 0.0;
  };

  common::ThreadPool pool(4);
  std::vector<double> latencies;
  int next_name = 0;
  for (int wave = 0; wave < waves; ++wave) {
    std::vector<std::future<Outcome>> sessions;
    sessions.reserve(static_cast<std::size_t>(width));
    for (int s = 0; s < width; ++s) {
      const std::uint32_t buckets = (s % 2 == 0) ? 8u : 16u;
      const ctrl::TenantId tenant = 1u + static_cast<ctrl::TenantId>(s % 4);
      std::string name = "churn" + std::to_string(next_name++);
      sessions.push_back(pool.submit([&bed, name, buckets, tenant] {
        Outcome outcome;
        outcome.name = name;
        const auto start = std::chrono::steady_clock::now();
        auto linked = bed.controller.link_session(
            ctrl::SessionSpec{program_source("cache", name, buckets), tenant});
        outcome.wall_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
        outcome.ok = linked.ok();
        if (!linked.ok()) {
          outcome.code = linked.error().code;
          outcome.error = linked.error().str();
        }
        return outcome;
      }));
    }
    for (auto& session : sessions) {
      Outcome outcome = session.get();
      ++row.attempts;
      latencies.push_back(outcome.wall_ms);
      if (outcome.ok) {
        ++row.admitted;
        auto revoked = bed.controller.revoke_by_name(outcome.name);
        if (!revoked.ok()) die("churn revoke failed: " + revoked.error().str());
      } else if (outcome.code != ErrorCode::AllocFailed) {
        // The only legitimate failure at this occupancy is an allocation
        // miss; anything else (quota, shed, compile) is a bench bug.
        die("churn session failed with unexpected error: " + outcome.error);
      }
    }
  }

  row.admit_rate =
      row.attempts == 0 ? 0.0 : static_cast<double>(row.admitted) / row.attempts;
  row.p99_session_ms = percentile(latencies, 0.99);
  row.frag_words_end = bed.controller.resources().total_fragmentation_words();
  row.defrag_moves = bed.telemetry.metrics.counter("ctrl.defrag.moves").value();
  row.link_retries = bed.telemetry.metrics.counter("ctrl.link.retries").value();
  return row;
}

struct ShedRow {
  int sessions = 0;
  int committed = 0;
  int shed = 0;
  int other_failures = 0;
  int rounds = 0;
  std::uint64_t sheds_counted = 0;
  std::uint64_t grants_counted = 0;
};

/// Oversubscribed admission: one in-flight slot, no queue, `session_count`
/// sessions released through a start barrier so they slam the admission
/// gate together. Everything past the bound must shed with AdmissionShed
/// (the dedicated error code), and the controller's shed accounting must
/// agree with the per-session results exactly. Overlap at a capacity-1
/// slot is a scheduling race, so the round repeats (fresh sessions, same
/// bed) until at least one shed is observed.
ShedRow run_shed(int session_count) {
  Bed bed;
  bed.controller.set_admission_config(
      ctrl::AdmissionConfig{.max_inflight = 1, .max_queued = 0});

  ShedRow row;
  row.sessions = 0;
  int next_name = 0;
  for (int round = 0; round < 10 && row.shed == 0; ++round) {
    ++row.rounds;
    row.sessions += session_count;
    struct Outcome {
      std::string name;
      bool ok = false;
      ErrorCode code = ErrorCode::AdmissionShed;
      std::string error;
    };
    std::vector<Outcome> outcomes(static_cast<std::size_t>(session_count));
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(session_count));
    for (int i = 0; i < session_count; ++i) {
      const std::string name = "shed" + std::to_string(next_name++);
      outcomes[static_cast<std::size_t>(i)].name = name;
      threads.emplace_back([&bed, &go, &outcomes, i, name] {
        // hh is the heaviest catalog program (4 vmems): its solve holds
        // the single slot long enough that barrier-released peers overlap.
        const std::string source = program_source("hh", name, 8);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        auto linked = bed.controller.link_session(ctrl::SessionSpec{
            source, 1u + static_cast<ctrl::TenantId>(i % 4)});
        auto& outcome = outcomes[static_cast<std::size_t>(i)];
        outcome.ok = linked.ok();
        if (!linked.ok()) {
          outcome.code = linked.error().code;
          outcome.error = linked.error().str();
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& thread : threads) thread.join();
    for (const auto& outcome : outcomes) {
      if (outcome.ok) {
        ++row.committed;
        // Keep the bed near-empty so later rounds never hit AllocFailed.
        auto revoked = bed.controller.revoke_by_name(outcome.name);
        if (!revoked.ok()) die("shed-round revoke failed: " + revoked.error().str());
      } else if (outcome.code == ErrorCode::AdmissionShed) {
        ++row.shed;
      } else {
        ++row.other_failures;
      }
    }
  }
  row.sheds_counted = bed.controller.admission().sheds();
  row.grants_counted = bed.controller.admission().grants();
  return row;
}

void write_json(const std::string& path, const ChurnRow& off, const ChurnRow& on,
                const ShedRow& shed) {
  std::ofstream out(path);
  if (!out) die("cannot open --bench-json-out path: " + path);
  char line[512];
  out << "{\n";
  out << "  \"bench\": \"tenant_churn\",\n";
  out << "  \"unit\": \"admit_rate\",\n";
  out << "  \"rows\": [\n";
  const ChurnRow* rows[2] = {&off, &on};
  for (int i = 0; i < 2; ++i) {
    const ChurnRow& row = *rows[i];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"occupancy\": %.4f, "
                  "\"frag_words_start\": %llu, \"frag_words_end\": %llu, "
                  "\"attempts\": %d, \"admitted\": %d, \"admit_rate\": %.4f, "
                  "\"p99_session_ms\": %.3f, \"defrag_moves\": %llu, "
                  "\"link_retries\": %llu}%s\n",
                  row.name.c_str(), row.baseline.occupancy,
                  static_cast<unsigned long long>(row.baseline.frag_words),
                  static_cast<unsigned long long>(row.frag_words_end),
                  row.attempts, row.admitted, row.admit_rate, row.p99_session_ms,
                  static_cast<unsigned long long>(row.defrag_moves),
                  static_cast<unsigned long long>(row.link_retries),
                  i == 0 ? "," : "");
    out << line;
  }
  out << "  ],\n";
  std::snprintf(line, sizeof(line),
                "  \"shed\": {\"sessions\": %d, \"rounds\": %d, "
                "\"committed\": %d, \"shed\": %d, \"other_failures\": %d, "
                "\"sheds_counted\": %llu, \"grants_counted\": %llu, "
                "\"all_sheds_admission_coded\": %s}\n",
                shed.sessions, shed.rounds, shed.committed, shed.shed,
                shed.other_failures,
                static_cast<unsigned long long>(shed.sheds_counted),
                static_cast<unsigned long long>(shed.grants_counted),
                shed.other_failures == 0 && shed.shed > 0 ? "true" : "false");
  out << line;
  out << "}\n";
}

void print_row(const ChurnRow& row) {
  std::printf(
      "%-12s occupancy %.1f%%  frag %4llu -> %-4llu  admit %3d/%-3d (%.0f%%)  "
      "p99 %7.3f ms  moves %llu  retries %llu\n",
      row.name.c_str(), 100.0 * row.baseline.occupancy,
      static_cast<unsigned long long>(row.baseline.frag_words),
      static_cast<unsigned long long>(row.frag_words_end), row.admitted,
      row.attempts, 100.0 * row.admit_rate, row.p99_session_ms,
      static_cast<unsigned long long>(row.defrag_moves),
      static_cast<unsigned long long>(row.link_retries));
}

}  // namespace

int main(int argc, char** argv) {
  bench::TelemetryScope telemetry_scope(argc, argv);
  const int waves = int_flag(argc, argv, "--churn-waves", 8);
  const int width = int_flag(argc, argv, "--churn-width", 8);
  const int shed_sessions = int_flag(argc, argv, "--shed-sessions", 48);

  bench::heading("tenant churn at >=90% occupancy (fragmented free space)");
  std::printf("waves=%d width=%d (alternating 8-word / 16-word sessions, "
              "4 weighted tenants)\n", waves, width);
  bench::rule();
  const ChurnRow off = run_churn(/*defrag_on=*/false, waves, width);
  print_row(off);
  const ChurnRow on = run_churn(/*defrag_on=*/true, waves, width);
  print_row(on);

  bench::heading("oversubscribed admission (inflight cap 1, queue bound 0)");
  const ShedRow shed = run_shed(shed_sessions);
  std::printf("sessions %d over %d round(s): committed %d, shed %d, other "
              "failures %d (controller counted %llu sheds / %llu grants)\n",
              shed.sessions, shed.rounds, shed.committed, shed.shed,
              shed.other_failures,
              static_cast<unsigned long long>(shed.sheds_counted),
              static_cast<unsigned long long>(shed.grants_counted));

  if (!telemetry_scope.flags().bench_json_path.empty()) {
    write_json(telemetry_scope.flags().bench_json_path, off, on, shed);
    std::printf("\nwrote %s\n", telemetry_scope.flags().bench_json_path.c_str());
  }
  return 0;
}
