// Fig. 12: performance of the four allocation objective functions under
// the all-mixed workload deployed until failure —
//   f1 = a*xL - b*x1 (a=0.7, b=0.3, the prototype default),
//   f2 = xL,
//   f3 = xL / x1 (non-linear),
//   hierarchical (min xL then max x1).
// Reports per-scheme program capacity, final memory / entry utilization,
// and the allocation-delay profile. The paper finds f3 best on capacity
// but an order of magnitude slower, f2/hierarchical worst on capacity, and
// f1 the best balance — hence the prototype default.
#include <cstdio>
#include <future>
#include <iterator>
#include <vector>

#include "analysis/metrics.h"
#include "bench_util.h"
#include "common/thread_pool.h"
#include "compiler/solver.h"
#include "traffic/workloads.h"

namespace {

using namespace p4runpro;

struct SchemeResult {
  int capacity = 0;
  double mem_util = 0.0;
  double entry_util = 0.0;
  double mean_delay_ms = 0.0;
  double max_delay_ms = 0.0;
  std::uint64_t mean_nodes = 0;
};

SchemeResult run(rp::Objective objective) {
  // Isolated bed (own telemetry bundle): the four scheme trials — thousands
  // of independent per-program solves each — run concurrently.
  bench::IsolatedTestbed shard(objective);
  auto& bed = shard.bed;
  auto workload = traffic::WorkloadGenerator::all_mixed(256, 2, 99);
  SchemeResult out;
  double delay_sum = 0.0;
  std::uint64_t node_sum = 0;
  for (;;) {
    const auto request = workload.next();
    auto linked = bed.controller.link_single(request.source);
    if (!linked.ok()) break;
    ++out.capacity;
    delay_sum += linked.value().stats.alloc_ms;
    out.max_delay_ms = std::max(out.max_delay_ms, linked.value().stats.alloc_ms);
    const auto* installed = bed.controller.program(linked.value().id);
    if (installed != nullptr) node_sum += installed->alloc.nodes_explored;
    if (out.capacity > 20000) break;
  }
  out.mem_util = bed.controller.resources().total_memory_utilization();
  out.entry_util = bed.controller.resources().total_entry_utilization();
  out.mean_delay_ms = out.capacity ? delay_sum / out.capacity : 0.0;
  out.mean_nodes = out.capacity ? node_sum / static_cast<std::uint64_t>(out.capacity) : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  bench::heading("Fig. 12: objective-function comparison (all-mixed workload to failure)");
  std::printf("%-30s | %8s | %9s | %9s | %12s | %12s | %10s\n", "objective",
              "capacity", "mem util", "ent util", "mean alloc ms",
              "max alloc ms", "mean nodes");
  bench::rule(110);

  const struct {
    const char* name;
    rp::Objective objective;
  } kSchemes[] = {
      {"f1 = 0.7*xL - 0.3*x1", {rp::ObjectiveKind::F1, 0.7, 0.3}},
      {"f2 = xL", {rp::ObjectiveKind::F2}},
      {"f3 = xL / x1", {rp::ObjectiveKind::F3}},
      {"hierarchical", {rp::ObjectiveKind::Hierarchical}},
  };
  // The four scheme trials are independent deploy-to-failure runs: fan out
  // over the thread pool, print in order. Note: alloc delays are measured
  // wall time, so concurrent trials can inflate them under core contention
  // (relative ordering between schemes is preserved).
  common::ThreadPool pool;
  std::vector<std::future<SchemeResult>> results;
  for (const auto& scheme : kSchemes) {
    results.push_back(
        pool.submit([objective = scheme.objective] { return run(objective); }));
  }
  for (std::size_t i = 0; i < std::size(kSchemes); ++i) {
    const SchemeResult r = results[i].get();
    std::printf("%-30s | %8d | %8.1f%% | %8.1f%% | %12.4f | %12.4f | %10llu\n",
                kSchemes[i].name, r.capacity, 100.0 * r.mem_util,
                100.0 * r.entry_util, r.mean_delay_ms, r.max_delay_ms,
                static_cast<unsigned long long>(r.mean_nodes));
  }

  std::printf(
      "\nShape check (paper §6.2.4): f2 and hierarchical stack everything onto\n"
      "the earliest RPBs and run out of ingress entries first (lowest capacity\n"
      "and utilization); f3 spreads programs best (highest capacity) but its\n"
      "non-linear objective costs by far the most search effort; f1 balances\n"
      "both, which is why the prototype ships with it.\n");
  return 0;
}
