// Concurrent link sessions (deploy-transaction refactor): wall-clock
// speedup of link_many's parallel compile/solve over the serial baseline
// for a multi-program workload. Reservation + commit stay serialized under
// the session lock, so the speedup bounds how much of a deployment burst is
// parallelizable compute (parse, translate, allocation solving).
//
//   --parallel-link=<K>   run the parallel mode with K workers only
//                         (default: sweep 2, 4 and the hardware count)
//   --programs=<N>        workload size per wave (default 12)
//   --waves=<W>           link/revoke waves per timed run (default 8)
//   --objective=<f1|f2|f3|hier>  allocation objective (default f3 — the
//                         ratio objective's branch-and-bound blowup, Fig. 12,
//                         makes the parallelizable solve dominate, as real
//                         multi-program deployment bursts do)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/program_library.h"
#include "bench_util.h"
#include "common/thread_pool.h"

namespace {

using p4runpro::bench::Testbed;

std::vector<std::string> workload(int programs) {
  const auto catalog = p4runpro::apps::program_catalog();
  std::vector<std::string> sources;
  sources.reserve(static_cast<std::size_t>(programs));
  for (int i = 0; i < programs; ++i) {
    const auto& info = catalog[static_cast<std::size_t>(i) % catalog.size()];
    p4runpro::apps::ProgramConfig config;
    config.instance_name = info.key + std::to_string(i);
    config.mem_buckets = 32;
    sources.push_back(p4runpro::apps::make_program_source(info.key, config));
  }
  return sources;
}

double wall_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void revoke_all(Testbed& bed) {
  for (const auto id : bed.controller.running_programs()) {
    if (!bed.controller.revoke(id).ok()) std::abort();
  }
}

/// Serial baseline: one link_single per source, same waves.
double run_serial(const std::vector<std::string>& sources, int waves,
                  p4runpro::rp::Objective objective) {
  Testbed bed(objective);
  const auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < waves; ++w) {
    for (const auto& source : sources) {
      if (!bed.controller.link_single(source).ok()) std::abort();
    }
    revoke_all(bed);
  }
  return wall_ms(start);
}

double run_parallel(const std::vector<std::string>& sources, int waves,
                    p4runpro::rp::Objective objective, unsigned threads,
                    bool async_writes = false) {
  Testbed bed(objective);
  bed.controller.set_async_writes(async_writes);
  p4runpro::common::ThreadPool pool(threads);
  const auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < waves; ++w) {
    for (const auto& result : bed.controller.link_many(sources, pool)) {
      if (!result.ok()) std::abort();
    }
    revoke_all(bed);
  }
  return wall_ms(start);
}

int int_flag(int argc, char** argv, const std::string& name, int fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::atoi(arg.c_str() + prefix.size());
  }
  return fallback;
}

p4runpro::rp::Objective objective_flag(int argc, char** argv) {
  using p4runpro::rp::ObjectiveKind;
  std::string name = "f3";
  const std::string prefix = "--objective=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) name = arg.substr(prefix.size());
  }
  if (name == "f1") return {ObjectiveKind::F1};
  if (name == "f2") return {ObjectiveKind::F2};
  if (name == "hier") return {ObjectiveKind::Hierarchical};
  return {ObjectiveKind::F3};
}

}  // namespace

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  const int programs = int_flag(argc, argv, "programs", 12);
  const int waves = int_flag(argc, argv, "waves", 8);
  const int fixed_threads = int_flag(argc, argv, "parallel-link", 0);
  const auto objective = objective_flag(argc, argv);

  const auto sources = workload(programs);
  p4runpro::bench::heading("Concurrent link sessions: wall-clock speedup");
  std::printf(
      "workload: %d programs/wave x %d waves (catalog templates, objective %s)\n\n",
      programs, waves, p4runpro::rp::objective_name(objective.kind));

  // Warm-up (first-touch allocations, lazy tables), then the baseline.
  (void)run_serial(sources, 1, objective);
  const double serial_ms = run_serial(sources, waves, objective);
  std::printf("%-24s | %10s | %8s\n", "mode", "wall ms", "speedup");
  p4runpro::bench::rule(50);
  std::printf("%-24s | %10.2f | %8s\n", "serial link_single", serial_ms, "1.00x");

  std::vector<unsigned> thread_counts;
  if (fixed_threads > 0) {
    thread_counts.push_back(static_cast<unsigned>(fixed_threads));
  } else {
    thread_counts = {2, 4, p4runpro::common::ThreadPool::default_thread_count()};
  }
  for (const unsigned threads : thread_counts) {
    const double parallel_ms = run_parallel(sources, waves, objective, threads);
    const std::string label = "link_many x" + std::to_string(threads);
    std::printf("%-24s | %10.2f | %7.2fx\n", label.c_str(), parallel_ms,
                serial_ms / parallel_ms);
    // Async channel: sessions submit their write program and release the
    // session lock while the writer thread drains it, shrinking the
    // serialized commit section to the submit + settle slivers.
    const double async_ms =
        run_parallel(sources, waves, objective, threads, /*async_writes=*/true);
    const std::string async_label = "link_many x" + std::to_string(threads) +
                                    " async";
    std::printf("%-24s | %10.2f | %7.2fx\n", async_label.c_str(), async_ms,
                serial_ms / async_ms);
  }

  std::printf(
      "\nShape check: compile+solve parallelize across sessions; reserve and\n"
      "commit serialize under the session lock, so the speedup saturates once\n"
      "the serialized section dominates (Amdahl on the commit section). The\n"
      "async rows park commits off-lock while the writer drains the channel,\n"
      "so their serialized section is smaller. On a single-core host\n"
      "(hardware concurrency = %u here) the parallel modes only measure the\n"
      "session-dispatch overhead.\n",
      p4runpro::common::ThreadPool::default_thread_count());
  return 0;
}
