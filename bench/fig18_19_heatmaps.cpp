// Figs. 18 & 19 (appendix C): per-RPB memory and table-entry utilization
// heatmaps over the deployment epochs of the all-mixed workload, one map
// per objective function. Rows are the 22 RPBs (1-10 ingress, 11-22
// egress); columns are 100-epoch segments; cells are the average
// utilization within the segment, rendered as a coarse percentage.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "compiler/solver.h"
#include "traffic/workloads.h"

namespace {

using namespace p4runpro;

constexpr int kSegmentEpochs = 100;

struct Heatmaps {
  // [segment][rpb-1] average utilization in [0,1].
  std::vector<std::vector<double>> memory;
  std::vector<std::vector<double>> entries;
};

Heatmaps run(rp::Objective objective) {
  bench::Testbed bed(objective);
  auto workload = traffic::WorkloadGenerator::all_mixed(256, 2, 99);
  const auto& spec = bed.dataplane.spec();
  const int rpbs = spec.total_rpbs();

  Heatmaps maps;
  std::vector<double> mem_acc(static_cast<std::size_t>(rpbs), 0.0);
  std::vector<double> entry_acc(static_cast<std::size_t>(rpbs), 0.0);
  int in_segment = 0;

  auto flush = [&] {
    if (in_segment < kSegmentEpochs) return;  // discard short final segment
    std::vector<double> mem_row, entry_row;
    for (int r = 0; r < rpbs; ++r) {
      mem_row.push_back(mem_acc[static_cast<std::size_t>(r)] / in_segment);
      entry_row.push_back(entry_acc[static_cast<std::size_t>(r)] / in_segment);
    }
    maps.memory.push_back(std::move(mem_row));
    maps.entries.push_back(std::move(entry_row));
    std::fill(mem_acc.begin(), mem_acc.end(), 0.0);
    std::fill(entry_acc.begin(), entry_acc.end(), 0.0);
    in_segment = 0;
  };

  for (;;) {
    const auto request = workload.next();
    auto linked = bed.controller.link_single(request.source);
    if (!linked.ok()) break;
    for (int r = 1; r <= rpbs; ++r) {
      mem_acc[static_cast<std::size_t>(r - 1)] +=
          static_cast<double>(bed.controller.resources().memory_used(r)) /
          spec.memory_per_rpb;
      entry_acc[static_cast<std::size_t>(r - 1)] +=
          static_cast<double>(bed.controller.resources().entries_used(r)) /
          spec.entries_per_rpb;
    }
    if (++in_segment == kSegmentEpochs) flush();
  }
  flush();
  return maps;
}

void print_map(const char* title, const std::vector<std::vector<double>>& map) {
  std::printf("\n%s (rows = RPB 1..22, cols = %d-epoch segments, cell = %%)\n",
              title, kSegmentEpochs);
  if (map.empty()) {
    std::printf("  (fewer than %d successful epochs)\n", kSegmentEpochs);
    return;
  }
  const int rpbs = static_cast<int>(map[0].size());
  for (int r = 0; r < rpbs; ++r) {
    std::printf("  RPB%-3d%s |", r + 1, r < 10 ? " (in)" : " (eg)");
    for (const auto& segment : map) {
      std::printf(" %3.0f", 100.0 * segment[static_cast<std::size_t>(r)]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  bench::heading("Figs. 18/19: per-RPB utilization heatmaps (all-mixed workload)");

  const struct {
    const char* name;
    rp::Objective objective;
  } kSchemes[] = {
      {"f1 = 0.7*xL - 0.3*x1", {rp::ObjectiveKind::F1, 0.7, 0.3}},
      {"f2 = xL", {rp::ObjectiveKind::F2}},
      {"f3 = xL / x1", {rp::ObjectiveKind::F3}},
      {"hierarchical", {rp::ObjectiveKind::Hierarchical}},
  };

  for (const auto& scheme : kSchemes) {
    std::printf("\n######## objective: %s ########\n", scheme.name);
    const Heatmaps maps = run(scheme.objective);
    print_map("Fig. 18: memory utilization per RPB", maps.memory);
    print_map("Fig. 19: table-entry utilization per RPB", maps.entries);
  }

  std::printf(
      "\nShape check (appendix C): f2/hierarchical exhaust the early ingress\n"
      "RPBs' entries while egress RPBs idle; f3 spreads most uniformly; f1 is\n"
      "in between. Memory fills non-uniformly (first-fit + non-uniform demand).\n");
  return 0;
}
