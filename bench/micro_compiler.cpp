// Micro-benchmarks (google-benchmark) of the compiler pipeline stages:
// lexing, parsing, translation, allocation solving per objective, and the
// full link path. These quantify the "allocation delay is insensitive to
// allocated resources but grows with AST depth" claim (§6.2.1).
#include <benchmark/benchmark.h>

#include "apps/program_library.h"
#include "compiler/compiler.h"
#include "compiler/solver.h"
#include "control/resource_manager.h"
#include "lang/lexer.h"
#include "lang/parser.h"

#include "bench_util.h"

namespace {

using namespace p4runpro;

std::string source_for(const std::string& key) {
  apps::ProgramConfig config;
  config.instance_name = key;
  return apps::make_program_source(key, config);
}

void BM_Lex(benchmark::State& state) {
  const std::string src = source_for("cache");
  for (auto _ : state) {
    auto tokens = lang::lex(src);
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  const std::string src = source_for("hh");
  for (auto _ : state) {
    auto unit = lang::parse(src);
    benchmark::DoNotOptimize(unit);
  }
}
BENCHMARK(BM_Parse);

void BM_Translate(benchmark::State& state) {
  const char* kKeys[] = {"l3", "cache", "hh", "hll"};
  const std::string src = source_for(kKeys[state.range(0)]);
  for (auto _ : state) {
    auto program = rp::compile_source(src, &obs::default_telemetry());
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_Translate)->DenseRange(0, 3)
    ->ArgNames({"program(l3/cache/hh/hll)"});

void BM_Solve(benchmark::State& state) {
  const char* kKeys[] = {"l3", "cache", "hh", "hll"};
  auto program = rp::compile_single(source_for(kKeys[state.range(1)]));
  const dp::DataplaneSpec spec;
  ctrl::ResourceManager resources(spec);
  const auto snapshot = resources.snapshot();
  const rp::ObjectiveKind kinds[] = {rp::ObjectiveKind::F1, rp::ObjectiveKind::F2,
                                     rp::ObjectiveKind::F3,
                                     rp::ObjectiveKind::Hierarchical};
  rp::Objective objective{kinds[state.range(0)], 0.7, 0.3};
  for (auto _ : state) {
    auto alloc = rp::solve_allocation(program.value(), spec, snapshot, objective,
                                      &obs::default_telemetry());
    benchmark::DoNotOptimize(alloc);
  }
}
BENCHMARK(BM_Solve)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2, 3}})
    ->ArgNames({"objective(f1/f2/f3/hier)", "program(l3/cache/hh/hll)"});

void BM_SnapshotUnderLoad(benchmark::State& state) {
  // Snapshot cost with fragmented free lists.
  const dp::DataplaneSpec spec;
  ctrl::ResourceManager resources(spec);
  std::vector<std::pair<int, ctrl::MemBlock>> held;
  for (int rpb = 1; rpb <= spec.total_rpbs(); ++rpb) {
    for (int i = 0; i < 64; ++i) {
      auto block = resources.allocate_memory(rpb, 256);
      if (block.ok()) held.emplace_back(rpb, block.value());
    }
  }
  for (std::size_t i = 0; i < held.size(); i += 2) {
    resources.free_memory(held[i].first, held[i].second);
  }
  for (auto _ : state) {
    auto snapshot = resources.snapshot();
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_SnapshotUnderLoad);

}  // namespace

int main(int argc, char** argv) {
  return p4runpro::bench::benchmark_main_with_telemetry(argc, argv);
}
