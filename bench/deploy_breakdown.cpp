// Deployment-delay breakdown (§6.2.1: deployment delay = allocation delay
// + update delay, parsing negligible at ~2 ms): the per-phase cost of
// linking each catalog program to a fresh switch, plus the revoke cost.
#include <cstdio>

#include "apps/program_library.h"
#include "bench_util.h"

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  using namespace p4runpro;
  bench::heading("Deployment-delay breakdown per program (ms)");
  std::printf("%-28s | %8s | %8s | %8s | %8s | %8s\n", "program", "parse",
              "alloc", "update", "deploy", "revoke");
  bench::rule(90);

  for (const auto& info : apps::program_catalog()) {
    bench::Testbed bed;
    apps::ProgramConfig config;
    config.instance_name = info.key;
    auto linked = bed.controller.link_single(
        apps::make_program_source(info.key, config));
    if (!linked.ok()) {
      std::fprintf(stderr, "link failed for %s\n", info.key.c_str());
      return 1;
    }
    const auto& stats = linked.value().stats;
    const double before_revoke = bed.clock.now_ms();
    if (!bed.controller.revoke(linked.value().id).ok()) return 1;
    const double revoke_ms = bed.clock.now_ms() - before_revoke;
    std::printf("%-28s | %8.2f | %8.3f | %8.2f | %8.2f | %8.2f\n",
                info.display.c_str(), stats.parse_ms, stats.alloc_ms,
                stats.update_ms, stats.deploy_ms(), revoke_ms);
  }

  std::printf("\nShape check: the update (bfrt writes) dominates; allocation is\n"
              "microseconds (vs the paper's Z3 at hundreds of ms — same rank,\n"
              "different solver); parsing is the flat ~2 ms the paper reports.\n"
              "Compare with the conventional workflow: minutes of P4 compilation\n"
              "plus seconds of reprovisioning blackout.\n");
  return 0;
}
