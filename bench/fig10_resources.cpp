// Fig. 10: hardware resource overhead of the provisioned data planes —
// PHV, hash units, SRAM, TCAM, VLIW, SALU and logical table IDs — for
// P4runpro, ActiveRMT and FlyMon, as percentages of a Tofino-class chip
// budget (the paper computes these with P4C + P4 Insight).
#include <cstdio>

#include "analysis/static_analyzer.h"
#include "bench_util.h"
#include "dataplane/dataplane_spec.h"

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  using namespace p4runpro;
  bench::heading("Fig. 10: resource usage (% of chip budget)");

  const analysis::SystemProfile profiles[] = {
      analysis::profile_p4runpro(dp::DataplaneSpec{}),
      analysis::profile_activermt(),
      analysis::profile_flymon(),
  };

  std::printf("%-10s", "resource");
  for (const auto& p : profiles) std::printf(" | %9s", p.name.c_str());
  std::printf("\n");
  bench::rule(50);
  for (int r = 0; r < rmt::kNumResources; ++r) {
    const auto resource = static_cast<rmt::Resource>(r);
    std::printf("%-10s", std::string(rmt::resource_name(resource)).c_str());
    for (const auto& p : profiles) {
      std::printf(" | %8.1f%%", p.usage.percent(resource, p.budget));
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape check (paper §6.3): P4runpro uses almost all VLIW (atomic\n"
      "operations), TCAM is its scalability limit, SRAM stays moderate\n"
      "(free SRAM can scale memory), hash/SALU exceed ActiveRMT's (22 vs 20\n"
      "execution stages), and the one-big-table design keeps LTID low where\n"
      "ActiveRMT burns many logical tables. FlyMon stays small everywhere\n"
      "(measurement-only scope).\n");
  return 0;
}
