// Telemetry self-overhead benchmark (BENCH_obs.json): packet rate of the
// per-packet inject() path with observability OFF (no pipeline observer, no
// time-series cadence) versus ON in the production configuration (health
// monitor attached, TimeSeriesStore sampling on a 1-virtual-ms cadence).
// The ratio off/on is the price of watching — CI gates it (the obs smoke
// step fails when cache_hit exceeds a generous 1.5x) so telemetry hooks can
// never silently become the bottleneck of the simulator.
//
// A separate short phase enables hot-path overhead accounting to measure
// the monitor's hook cost per packet (obs.self.monitor_hook_ns / calls) and
// the store's sampling cost — kept out of the ratio phase because the
// accounting's own clock reads would dominate it for cheap packets, which
// is exactly why accounting defaults to off (docs/OBSERVABILITY.md).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"

#include "bench_util.h"

namespace {

using namespace p4runpro;

struct Bed {
  obs::Telemetry telemetry;
  SimClock clock;
  dp::RunproDataplane dataplane{dp::DataplaneSpec{},
                                rmt::ParserConfig{{7777, 9999}}};
  ctrl::Controller controller{dataplane, clock, rp::Objective{},
                              ctrl::BfrtCostModel{}, &telemetry};
};

rmt::Packet cache_packet() {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{4000, 7777};
  pkt.app = rmt::AppHeader{1, 0x8888, 0, 0};
  pkt.ingress_port = 5;
  return pkt;
}

rmt::Packet hh_packet() {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000010, .dst = 0x0b000001, .proto = 17};
  pkt.udp = rmt::UdpHeader{5000, 6000};
  pkt.ingress_port = 1;
  return pkt;
}

void link_program(Bed& bed, const char* key) {
  apps::ProgramConfig config;
  config.instance_name = key;
  (void)bed.controller.link_single(apps::make_program_source(key, config));
}

constexpr std::size_t kBatch = 1024;
/// Virtual nanoseconds charged per injected packet so the SimClock-driven
/// sampling cadence actually fires during the measurement (1 us/pkt -> a
/// 1 ms cadence samples every ~1000 packets).
constexpr SimClock::Nanos kVirtualNsPerPacket = 1000;

template <typename F>
double measure_pps(F&& fn, std::size_t pkts_per_call,
                   std::chrono::milliseconds budget) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up
  std::uint64_t pkts = 0;
  const auto start = clock::now();
  auto now = start;
  do {
    fn();
    pkts += pkts_per_call;
    now = clock::now();
  } while (now - start < budget);
  const double secs = std::chrono::duration<double>(now - start).count();
  return static_cast<double>(pkts) / secs;
}

struct OverheadSample {
  std::string name;        ///< program shape, e.g. "cache_hit"
  double off_pps = 0.0;    ///< observer detached, no sampling
  double on_pps = 0.0;     ///< monitor + overhead accounting + series cadence
  double ratio = 0.0;      ///< off_pps / on_pps (1.0 = free telemetry)
  double hook_ns_per_packet = 0.0;   ///< measured monitor hook cost
  std::uint64_t series_samples = 0;  ///< sampling ticks during the ON phase
  std::uint64_t sample_ns_total = 0; ///< wall ns spent inside sample()
};

std::vector<OverheadSample> run_overhead_suite(std::chrono::milliseconds budget) {
  struct Shape {
    const char* name;
    const char* program;  // nullptr = no program linked
    rmt::Packet pkt;
  };
  const Shape kShapes[] = {
      {"unclaimed", nullptr, hh_packet()},
      {"cache_hit", "cache", cache_packet()},
  };

  std::vector<OverheadSample> samples;
  for (const Shape& shape : kShapes) {
    Bed bed;
    if (shape.program != nullptr) link_program(bed, shape.program);
    const std::vector<rmt::Packet> pkts(kBatch, shape.pkt);
    const auto inject_all = [&] {
      for (const auto& p : pkts) {
        benchmark::DoNotOptimize(bed.dataplane.inject(p));
      }
      bed.clock.advance_ns(kVirtualNsPerPacket * pkts.size());
    };

    OverheadSample sample;
    sample.name = shape.name;

    // OFF: no observer, no cadence — the bare simulator packet rate.
    bed.dataplane.pipeline().set_observer(nullptr);
    bed.telemetry.series.set_cadence(0);
    sample.off_pps = measure_pps(inject_all, pkts.size(), budget);

    // ON: the production telemetry config — monitor observing every packet
    // and the time-series store sampling the registry every virtual
    // millisecond. Hot-path overhead accounting stays OFF here, as in
    // production (its two clock reads per packet are themselves overhead
    // and would dominate the ratio for cheap packets).
    bed.dataplane.pipeline().set_observer(&bed.telemetry.monitor);
    bed.telemetry.series.set_cadence(1'000'000);
    sample.on_pps = measure_pps(inject_all, pkts.size(), budget);

    sample.ratio = sample.on_pps > 0.0 ? sample.off_pps / sample.on_pps : 0.0;

    // Separate short accounting phase: measure the monitor hook's own cost
    // (obs.self.monitor_hook_ns / calls) without letting the measurement
    // pollute the off/on ratio above.
    bed.telemetry.monitor.set_overhead_accounting(true);
    (void)measure_pps(inject_all, pkts.size(), budget / 4);
    bed.telemetry.monitor.set_overhead_accounting(false);
    const std::uint64_t calls = bed.telemetry.monitor.hook_calls();
    sample.hook_ns_per_packet =
        calls == 0 ? 0.0
                   : static_cast<double>(bed.telemetry.monitor.hook_ns()) /
                         static_cast<double>(calls);
    sample.series_samples = bed.telemetry.series.samples_taken();
    sample.sample_ns_total = bed.telemetry.series.self_sample_ns();
    samples.push_back(std::move(sample));
  }
  return samples;
}

void print_overhead_suite(const std::vector<OverheadSample>& samples) {
  bench::heading("Telemetry overhead (per-packet inject, pkts/sec)");
  std::printf("%-14s | %12s | %12s | %6s | %10s | %8s\n", "shape", "telemetry off",
              "telemetry on", "ratio", "hook ns/pkt", "samples");
  bench::rule(78);
  for (const auto& s : samples) {
    std::printf("%-14s | %12.0f | %12.0f | %6.3f | %10.1f | %8llu\n",
                s.name.c_str(), s.off_pps, s.on_pps, s.ratio,
                s.hook_ns_per_packet,
                static_cast<unsigned long long>(s.series_samples));
  }
}

void write_overhead_json(const std::vector<OverheadSample>& samples,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"obs_overhead\",\n"
      << "  \"unit\": \"packets_per_second\",\n  \"shapes\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"off_pps\": %.0f, \"on_pps\": %.0f, "
                  "\"ratio\": %.4f, \"hook_ns_per_packet\": %.1f, "
                  "\"series_samples\": %llu, \"sample_ns_total\": %llu}%s\n",
                  s.name.c_str(), s.off_pps, s.on_pps, s.ratio,
                  s.hook_ns_per_packet,
                  static_cast<unsigned long long>(s.series_samples),
                  static_cast<unsigned long long>(s.sample_ns_total),
                  i + 1 < samples.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Quick mode for CI smoke runs: tiny measurement budget per shape.
  bool quick = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--obs-quick") {
      quick = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());

  p4runpro::bench::TelemetryScope telemetry_scope(filtered_argc, args.data());

  const auto budget = std::chrono::milliseconds(quick ? 50 : 400);
  const auto samples = run_overhead_suite(budget);
  print_overhead_suite(samples);
  if (!telemetry_scope.flags().bench_json_path.empty()) {
    write_overhead_json(samples, telemetry_scope.flags().bench_json_path);
  }
  return 0;
}
