// Fig. 8: memory and table-entry utilization when programs are deployed
// continuously until the first allocation failure, for the cache / lb / hh
// / mixed workloads (P4runpro) and the ActiveRMT baseline (memory only).
// The paper reports 60-80% typical utilization, with lb reaching 100%
// memory and cache/hh capped by primitive dependencies (ingress entries).
#include <cstdio>

#include "baselines/activermt.h"
#include "bench_util.h"
#include "traffic/workloads.h"

namespace {

using namespace p4runpro;

struct Outcome {
  int programs = 0;
  double mem_util = 0.0;
  double entry_util = 0.0;
  std::string reason;
};

Outcome run_until_failure(traffic::WorkloadGenerator workload) {
  bench::Testbed bed;
  Outcome out;
  for (;;) {
    const auto request = workload.next();
    auto linked = bed.controller.link_single(request.source);
    if (!linked.ok()) {
      out.reason = linked.error().message;
      break;
    }
    ++out.programs;
    if (out.programs > 20000) {
      out.reason = "stopped (safety cap)";
      break;
    }
  }
  out.mem_util = bed.controller.resources().total_memory_utilization();
  out.entry_util = bed.controller.resources().total_entry_utilization();
  return out;
}

double activermt_until_failure(bool elastic, int instructions) {
  baselines::ActiveRmtAllocator allocator;
  for (;;) {
    baselines::ActiveRequest request{instructions, 256, elastic};
    if (!allocator.allocate(request).ok()) break;
    if (allocator.program_count() > 20000) break;
  }
  return allocator.memory_utilization();
}

}  // namespace

int main(int argc, char** argv) {
  p4runpro::bench::TelemetryScope telemetry_scope(argc, argv);
  bench::heading("Fig. 8: resource utilization at first allocation failure");
  std::printf("%-10s | %9s | %12s | %12s | %s\n", "workload", "programs",
              "memory util", "entry util", "failure cause");
  bench::rule(110);

  const struct {
    const char* name;
    traffic::WorkloadGenerator workload;
  } kWorkloads[] = {
      {"cache", traffic::WorkloadGenerator::single("cache")},
      {"lb", traffic::WorkloadGenerator::single("lb")},
      {"hh", traffic::WorkloadGenerator::single("hh")},
      {"mixed", traffic::WorkloadGenerator::mixed()},
  };
  for (const auto& w : kWorkloads) {
    const Outcome out = run_until_failure(w.workload);
    std::printf("%-10s | %9d | %11.1f%% | %11.1f%% | %s\n", w.name, out.programs,
                100.0 * out.mem_util, 100.0 * out.entry_util, out.reason.c_str());
  }

  bench::heading("ActiveRMT baseline (memory utilization at failure)");
  std::printf("cache (elastic): %5.1f%%\n",
              100.0 * activermt_until_failure(true, 12));
  std::printf("lb:              %5.1f%%\n",
              100.0 * activermt_until_failure(false, 20));
  std::printf("hh:              %5.1f%%\n",
              100.0 * activermt_until_failure(false, 30));

  std::printf("\nShape check (paper §6.2.2): utilization lands in the 60-80%% band;\n"
              "lb exhausts memory (highest memory util); cache/hh are limited by\n"
              "ingress table entries (forwarding primitives), leaving memory free;\n"
              "ActiveRMT's elastic cache reaches ~100%% by shrinking programs.\n");
  return 0;
}
