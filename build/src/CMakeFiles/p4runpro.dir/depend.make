# Empty dependencies file for p4runpro.
# This may be replaced when dependencies are built.
