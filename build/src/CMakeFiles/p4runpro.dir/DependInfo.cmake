
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/metrics.cpp" "src/CMakeFiles/p4runpro.dir/analysis/metrics.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/analysis/metrics.cpp.o.d"
  "/root/repo/src/analysis/sketches.cpp" "src/CMakeFiles/p4runpro.dir/analysis/sketches.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/analysis/sketches.cpp.o.d"
  "/root/repo/src/analysis/static_analyzer.cpp" "src/CMakeFiles/p4runpro.dir/analysis/static_analyzer.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/analysis/static_analyzer.cpp.o.d"
  "/root/repo/src/analysis/throughput_model.cpp" "src/CMakeFiles/p4runpro.dir/analysis/throughput_model.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/analysis/throughput_model.cpp.o.d"
  "/root/repo/src/apps/program_library.cpp" "src/CMakeFiles/p4runpro.dir/apps/program_library.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/apps/program_library.cpp.o.d"
  "/root/repo/src/baselines/activermt.cpp" "src/CMakeFiles/p4runpro.dir/baselines/activermt.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/baselines/activermt.cpp.o.d"
  "/root/repo/src/baselines/flymon.cpp" "src/CMakeFiles/p4runpro.dir/baselines/flymon.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/baselines/flymon.cpp.o.d"
  "/root/repo/src/baselines/netvrm.cpp" "src/CMakeFiles/p4runpro.dir/baselines/netvrm.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/baselines/netvrm.cpp.o.d"
  "/root/repo/src/common/clock.cpp" "src/CMakeFiles/p4runpro.dir/common/clock.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/common/clock.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/p4runpro.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/common/rng.cpp.o.d"
  "/root/repo/src/compiler/compiler.cpp" "src/CMakeFiles/p4runpro.dir/compiler/compiler.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/compiler/compiler.cpp.o.d"
  "/root/repo/src/compiler/entrygen.cpp" "src/CMakeFiles/p4runpro.dir/compiler/entrygen.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/compiler/entrygen.cpp.o.d"
  "/root/repo/src/compiler/p4lite.cpp" "src/CMakeFiles/p4runpro.dir/compiler/p4lite.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/compiler/p4lite.cpp.o.d"
  "/root/repo/src/compiler/semcheck.cpp" "src/CMakeFiles/p4runpro.dir/compiler/semcheck.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/compiler/semcheck.cpp.o.d"
  "/root/repo/src/compiler/solver.cpp" "src/CMakeFiles/p4runpro.dir/compiler/solver.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/compiler/solver.cpp.o.d"
  "/root/repo/src/compiler/translate.cpp" "src/CMakeFiles/p4runpro.dir/compiler/translate.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/compiler/translate.cpp.o.d"
  "/root/repo/src/control/controller.cpp" "src/CMakeFiles/p4runpro.dir/control/controller.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/control/controller.cpp.o.d"
  "/root/repo/src/control/inspect.cpp" "src/CMakeFiles/p4runpro.dir/control/inspect.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/control/inspect.cpp.o.d"
  "/root/repo/src/control/resource_manager.cpp" "src/CMakeFiles/p4runpro.dir/control/resource_manager.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/control/resource_manager.cpp.o.d"
  "/root/repo/src/control/update_engine.cpp" "src/CMakeFiles/p4runpro.dir/control/update_engine.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/control/update_engine.cpp.o.d"
  "/root/repo/src/dataplane/atomic_op.cpp" "src/CMakeFiles/p4runpro.dir/dataplane/atomic_op.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/dataplane/atomic_op.cpp.o.d"
  "/root/repo/src/dataplane/init_block.cpp" "src/CMakeFiles/p4runpro.dir/dataplane/init_block.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/dataplane/init_block.cpp.o.d"
  "/root/repo/src/dataplane/recirc_block.cpp" "src/CMakeFiles/p4runpro.dir/dataplane/recirc_block.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/dataplane/recirc_block.cpp.o.d"
  "/root/repo/src/dataplane/rpb.cpp" "src/CMakeFiles/p4runpro.dir/dataplane/rpb.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/dataplane/rpb.cpp.o.d"
  "/root/repo/src/dataplane/runpro_dataplane.cpp" "src/CMakeFiles/p4runpro.dir/dataplane/runpro_dataplane.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/dataplane/runpro_dataplane.cpp.o.d"
  "/root/repo/src/dataplane/switch_chain.cpp" "src/CMakeFiles/p4runpro.dir/dataplane/switch_chain.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/dataplane/switch_chain.cpp.o.d"
  "/root/repo/src/lang/ast.cpp" "src/CMakeFiles/p4runpro.dir/lang/ast.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/lang/ast.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/CMakeFiles/p4runpro.dir/lang/lexer.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/lang/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/CMakeFiles/p4runpro.dir/lang/parser.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/lang/parser.cpp.o.d"
  "/root/repo/src/lang/token.cpp" "src/CMakeFiles/p4runpro.dir/lang/token.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/lang/token.cpp.o.d"
  "/root/repo/src/p4baseline/fixed_function.cpp" "src/CMakeFiles/p4runpro.dir/p4baseline/fixed_function.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/p4baseline/fixed_function.cpp.o.d"
  "/root/repo/src/rmt/crc.cpp" "src/CMakeFiles/p4runpro.dir/rmt/crc.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/rmt/crc.cpp.o.d"
  "/root/repo/src/rmt/memory.cpp" "src/CMakeFiles/p4runpro.dir/rmt/memory.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/rmt/memory.cpp.o.d"
  "/root/repo/src/rmt/packet.cpp" "src/CMakeFiles/p4runpro.dir/rmt/packet.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/rmt/packet.cpp.o.d"
  "/root/repo/src/rmt/parser.cpp" "src/CMakeFiles/p4runpro.dir/rmt/parser.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/rmt/parser.cpp.o.d"
  "/root/repo/src/rmt/pipeline.cpp" "src/CMakeFiles/p4runpro.dir/rmt/pipeline.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/rmt/pipeline.cpp.o.d"
  "/root/repo/src/rmt/resources.cpp" "src/CMakeFiles/p4runpro.dir/rmt/resources.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/rmt/resources.cpp.o.d"
  "/root/repo/src/rmt/tables.cpp" "src/CMakeFiles/p4runpro.dir/rmt/tables.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/rmt/tables.cpp.o.d"
  "/root/repo/src/rmt/wire.cpp" "src/CMakeFiles/p4runpro.dir/rmt/wire.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/rmt/wire.cpp.o.d"
  "/root/repo/src/traffic/flowgen.cpp" "src/CMakeFiles/p4runpro.dir/traffic/flowgen.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/traffic/flowgen.cpp.o.d"
  "/root/repo/src/traffic/pcap.cpp" "src/CMakeFiles/p4runpro.dir/traffic/pcap.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/traffic/pcap.cpp.o.d"
  "/root/repo/src/traffic/replay.cpp" "src/CMakeFiles/p4runpro.dir/traffic/replay.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/traffic/replay.cpp.o.d"
  "/root/repo/src/traffic/workloads.cpp" "src/CMakeFiles/p4runpro.dir/traffic/workloads.cpp.o" "gcc" "src/CMakeFiles/p4runpro.dir/traffic/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
