file(REMOVE_RECURSE
  "libp4runpro.a"
)
