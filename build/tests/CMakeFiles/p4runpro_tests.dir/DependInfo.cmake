
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/blocks_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/blocks_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/blocks_test.cpp.o.d"
  "/root/repo/tests/chain_sweep_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/chain_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/chain_sweep_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/consistency_negative_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/consistency_negative_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/consistency_negative_test.cpp.o.d"
  "/root/repo/tests/consistency_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/consistency_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/consistency_test.cpp.o.d"
  "/root/repo/tests/corpus_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/corpus_test.cpp.o.d"
  "/root/repo/tests/crc_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/crc_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/crc_test.cpp.o.d"
  "/root/repo/tests/differential_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/differential_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/differential_test.cpp.o.d"
  "/root/repo/tests/edge_cases_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/entrygen_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/entrygen_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/entrygen_test.cpp.o.d"
  "/root/repo/tests/events_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/events_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/events_test.cpp.o.d"
  "/root/repo/tests/failure_injection_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/failure_injection_test.cpp.o.d"
  "/root/repo/tests/features_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/features_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/features_test.cpp.o.d"
  "/root/repo/tests/fuzz_lifecycle_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/fuzz_lifecycle_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/fuzz_lifecycle_test.cpp.o.d"
  "/root/repo/tests/hash_truncation_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/hash_truncation_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/hash_truncation_test.cpp.o.d"
  "/root/repo/tests/inspect_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/inspect_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/inspect_test.cpp.o.d"
  "/root/repo/tests/integration_cache_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/integration_cache_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/integration_cache_test.cpp.o.d"
  "/root/repo/tests/integration_programs_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/integration_programs_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/integration_programs_test.cpp.o.d"
  "/root/repo/tests/isolation_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/isolation_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/isolation_test.cpp.o.d"
  "/root/repo/tests/lang_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/lang_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/lang_test.cpp.o.d"
  "/root/repo/tests/multi_program_differential_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/multi_program_differential_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/multi_program_differential_test.cpp.o.d"
  "/root/repo/tests/multicast_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/multicast_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/multicast_test.cpp.o.d"
  "/root/repo/tests/netvrm_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/netvrm_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/netvrm_test.cpp.o.d"
  "/root/repo/tests/p4baseline_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/p4baseline_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/p4baseline_test.cpp.o.d"
  "/root/repo/tests/p4lite_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/p4lite_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/p4lite_test.cpp.o.d"
  "/root/repo/tests/pcap_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/pcap_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/pcap_test.cpp.o.d"
  "/root/repo/tests/program_sweep_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/program_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/program_sweep_test.cpp.o.d"
  "/root/repo/tests/pseudo_semantics_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/pseudo_semantics_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/pseudo_semantics_test.cpp.o.d"
  "/root/repo/tests/random_program_fuzz_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/random_program_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/random_program_fuzz_test.cpp.o.d"
  "/root/repo/tests/resource_manager_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/resource_manager_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/resource_manager_test.cpp.o.d"
  "/root/repo/tests/rmt_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/rmt_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/rmt_test.cpp.o.d"
  "/root/repo/tests/sketches_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/sketches_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/sketches_test.cpp.o.d"
  "/root/repo/tests/smoke_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/smoke_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/smoke_test.cpp.o.d"
  "/root/repo/tests/solver_optimality_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/solver_optimality_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/solver_optimality_test.cpp.o.d"
  "/root/repo/tests/solver_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/solver_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/solver_test.cpp.o.d"
  "/root/repo/tests/tracing_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/tracing_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/tracing_test.cpp.o.d"
  "/root/repo/tests/traffic_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/traffic_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/traffic_test.cpp.o.d"
  "/root/repo/tests/translate_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/translate_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/translate_test.cpp.o.d"
  "/root/repo/tests/update_cost_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/update_cost_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/update_cost_test.cpp.o.d"
  "/root/repo/tests/wire_test.cpp" "tests/CMakeFiles/p4runpro_tests.dir/wire_test.cpp.o" "gcc" "tests/CMakeFiles/p4runpro_tests.dir/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/p4runpro.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
