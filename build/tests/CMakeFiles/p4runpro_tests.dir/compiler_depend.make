# Empty compiler generated dependencies file for p4runpro_tests.
# This may be replaced when dependencies are built.
