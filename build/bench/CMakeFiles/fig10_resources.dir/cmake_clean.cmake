file(REMOVE_RECURSE
  "CMakeFiles/fig10_resources.dir/fig10_resources.cpp.o"
  "CMakeFiles/fig10_resources.dir/fig10_resources.cpp.o.d"
  "fig10_resources"
  "fig10_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
