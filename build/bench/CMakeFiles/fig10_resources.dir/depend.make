# Empty dependencies file for fig10_resources.
# This may be replaced when dependencies are built.
