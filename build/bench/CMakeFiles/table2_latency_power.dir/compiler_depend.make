# Empty compiler generated dependencies file for table2_latency_power.
# This may be replaced when dependencies are built.
