# Empty dependencies file for fig18_19_heatmaps.
# This may be replaced when dependencies are built.
