file(REMOVE_RECURSE
  "CMakeFiles/fig18_19_heatmaps.dir/fig18_19_heatmaps.cpp.o"
  "CMakeFiles/fig18_19_heatmaps.dir/fig18_19_heatmaps.cpp.o.d"
  "fig18_19_heatmaps"
  "fig18_19_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_19_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
