# Empty compiler generated dependencies file for fig7_allocation_delay.
# This may be replaced when dependencies are built.
