# Empty compiler generated dependencies file for fig11_recirculation.
# This may be replaced when dependencies are built.
