file(REMOVE_RECURSE
  "CMakeFiles/fig11_recirculation.dir/fig11_recirculation.cpp.o"
  "CMakeFiles/fig11_recirculation.dir/fig11_recirculation.cpp.o.d"
  "fig11_recirculation"
  "fig11_recirculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_recirculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
