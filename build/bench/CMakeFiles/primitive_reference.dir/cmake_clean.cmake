file(REMOVE_RECURSE
  "CMakeFiles/primitive_reference.dir/primitive_reference.cpp.o"
  "CMakeFiles/primitive_reference.dir/primitive_reference.cpp.o.d"
  "primitive_reference"
  "primitive_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primitive_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
