# Empty dependencies file for primitive_reference.
# This may be replaced when dependencies are built.
