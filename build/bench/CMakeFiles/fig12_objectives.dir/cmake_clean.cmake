file(REMOVE_RECURSE
  "CMakeFiles/fig12_objectives.dir/fig12_objectives.cpp.o"
  "CMakeFiles/fig12_objectives.dir/fig12_objectives.cpp.o.d"
  "fig12_objectives"
  "fig12_objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
