# Empty compiler generated dependencies file for fig12_objectives.
# This may be replaced when dependencies are built.
