file(REMOVE_RECURSE
  "CMakeFiles/fig13_case_studies.dir/fig13_case_studies.cpp.o"
  "CMakeFiles/fig13_case_studies.dir/fig13_case_studies.cpp.o.d"
  "fig13_case_studies"
  "fig13_case_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_case_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
