# Empty dependencies file for fig13_case_studies.
# This may be replaced when dependencies are built.
