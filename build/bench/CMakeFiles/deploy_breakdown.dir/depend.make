# Empty dependencies file for deploy_breakdown.
# This may be replaced when dependencies are built.
