file(REMOVE_RECURSE
  "CMakeFiles/deploy_breakdown.dir/deploy_breakdown.cpp.o"
  "CMakeFiles/deploy_breakdown.dir/deploy_breakdown.cpp.o.d"
  "deploy_breakdown"
  "deploy_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
