file(REMOVE_RECURSE
  "CMakeFiles/example_in_network_cache.dir/in_network_cache.cpp.o"
  "CMakeFiles/example_in_network_cache.dir/in_network_cache.cpp.o.d"
  "example_in_network_cache"
  "example_in_network_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_in_network_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
