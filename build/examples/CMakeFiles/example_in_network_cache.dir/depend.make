# Empty dependencies file for example_in_network_cache.
# This may be replaced when dependencies are built.
