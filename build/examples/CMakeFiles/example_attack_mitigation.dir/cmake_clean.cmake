file(REMOVE_RECURSE
  "CMakeFiles/example_attack_mitigation.dir/attack_mitigation.cpp.o"
  "CMakeFiles/example_attack_mitigation.dir/attack_mitigation.cpp.o.d"
  "example_attack_mitigation"
  "example_attack_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_attack_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
