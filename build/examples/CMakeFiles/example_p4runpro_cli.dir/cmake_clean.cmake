file(REMOVE_RECURSE
  "CMakeFiles/example_p4runpro_cli.dir/p4runpro_cli.cpp.o"
  "CMakeFiles/example_p4runpro_cli.dir/p4runpro_cli.cpp.o.d"
  "example_p4runpro_cli"
  "example_p4runpro_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_p4runpro_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
