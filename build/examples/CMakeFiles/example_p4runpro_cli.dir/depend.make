# Empty dependencies file for example_p4runpro_cli.
# This may be replaced when dependencies are built.
