file(REMOVE_RECURSE
  "CMakeFiles/example_load_balancer_reconfig.dir/load_balancer_reconfig.cpp.o"
  "CMakeFiles/example_load_balancer_reconfig.dir/load_balancer_reconfig.cpp.o.d"
  "example_load_balancer_reconfig"
  "example_load_balancer_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_load_balancer_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
