# Empty dependencies file for example_load_balancer_reconfig.
# This may be replaced when dependencies are built.
