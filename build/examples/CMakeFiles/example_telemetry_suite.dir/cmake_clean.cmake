file(REMOVE_RECURSE
  "CMakeFiles/example_telemetry_suite.dir/telemetry_suite.cpp.o"
  "CMakeFiles/example_telemetry_suite.dir/telemetry_suite.cpp.o.d"
  "example_telemetry_suite"
  "example_telemetry_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_telemetry_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
