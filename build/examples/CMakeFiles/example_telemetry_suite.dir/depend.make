# Empty dependencies file for example_telemetry_suite.
# This may be replaced when dependencies are built.
