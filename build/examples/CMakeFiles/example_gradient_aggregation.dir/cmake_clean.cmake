file(REMOVE_RECURSE
  "CMakeFiles/example_gradient_aggregation.dir/gradient_aggregation.cpp.o"
  "CMakeFiles/example_gradient_aggregation.dir/gradient_aggregation.cpp.o.d"
  "example_gradient_aggregation"
  "example_gradient_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gradient_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
