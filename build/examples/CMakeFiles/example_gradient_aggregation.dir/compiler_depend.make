# Empty compiler generated dependencies file for example_gradient_aggregation.
# This may be replaced when dependencies are built.
