file(REMOVE_RECURSE
  "CMakeFiles/example_pcap_replay.dir/pcap_replay.cpp.o"
  "CMakeFiles/example_pcap_replay.dir/pcap_replay.cpp.o.d"
  "example_pcap_replay"
  "example_pcap_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pcap_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
