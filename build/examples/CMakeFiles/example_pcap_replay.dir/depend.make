# Empty dependencies file for example_pcap_replay.
# This may be replaced when dependencies are built.
