// pcap workflow (the tcpreplay/libpcap story of §5): synthesize a campus
// trace, write it to a real pcap file (openable in Wireshark), read it
// back, and replay it through a runtime-linked measurement program —
// exactly how the paper's case studies consumed their anonymized capture.
#include <cstdio>
#include <filesystem>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "traffic/pcap.h"
#include "traffic/replay.h"

using namespace p4runpro;

int main() {
  const std::string path =
      (std::filesystem::temp_directory_path() / "p4runpro_campus.pcap").string();

  // 1. Synthesize and export (stand-in for the campus capture).
  traffic::CampusTraceConfig config;
  config.duration_s = 5.0;
  const auto trace = traffic::make_campus_trace(config);
  if (!traffic::write_pcap(path, trace).ok()) {
    std::fprintf(stderr, "pcap write failed\n");
    return 1;
  }
  std::printf("wrote %zu packets (%llu bytes) to %s\n", trace.packets.size(),
              static_cast<unsigned long long>(trace.total_bytes), path.c_str());

  // 2. Read it back the way an operator would load a capture.
  auto loaded = traffic::read_pcap(path, rmt::ParserConfig{});
  if (!loaded.ok()) {
    std::fprintf(stderr, "pcap read failed: %s\n", loaded.error().str().c_str());
    return 1;
  }
  std::printf("reloaded %zu packets spanning %.1f s\n", loaded.value().packets.size(),
              static_cast<double>(loaded.value().duration_ns) / 1e9);

  // 3. Provision a switch, link a heavy-hitter detector, replay the file.
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  apps::ProgramConfig hh;
  hh.instance_name = "hh";
  hh.mem_buckets = 4096;
  hh.threshold = 512;
  auto linked = controller.link_single(apps::make_program_source("hh", hh));
  if (!linked.ok()) {
    std::fprintf(stderr, "link failed: %s\n", linked.error().str().c_str());
    return 1;
  }

  traffic::Replayer replayer(dataplane, clock);
  traffic::Replayer::Options options;
  options.collect_reports = true;
  const auto samples = replayer.run(loaded.value(), options);
  double mean_rx = 0;
  for (const auto& s : samples) mean_rx += s.rx_mbps;
  mean_rx /= static_cast<double>(samples.size());

  const auto truth = traffic::heavy_hitters(loaded.value(), 512);
  std::printf("replayed at %.1f Mbps mean RX; detector reported %zu flows "
              "(%zu above the threshold in the capture)\n",
              mean_rx, replayer.reported_flows().size(), truth.size());

  std::remove(path.c_str());
  return 0;
}
