// In-network cache scenario (the NetCache motivation from the paper's
// introduction): a key-value service behind the switch, with the hottest
// keys cached in stage memory at runtime. Replays a Zipf-skewed read
// workload and reports the achieved hit rate and server offload.
#include <cstdio>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "traffic/flowgen.h"
#include "traffic/replay.h"

using namespace p4runpro;

int main() {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock);

  // Build the workload first so we know which keys deserve caching.
  traffic::CacheWorkloadConfig workload_config;
  workload_config.duration_s = 10.0;
  workload_config.target_hit_rate = 0.6;
  const auto workload = traffic::make_cache_workload(workload_config);
  std::printf("workload: %zu packets, hottest %zu keys cover %.0f%% of reads\n",
              workload.trace.packets.size(), workload.cached_keys.size(),
              100.0 * workload.expected_hit_rate);

  // Generate a cache program instance sized for those keys and link it.
  apps::ProgramConfig config;
  config.instance_name = "kv_cache";
  config.elastic_cases = 2 * static_cast<int>(workload.cached_keys.size());
  auto linked = controller.link_single(apps::make_program_source("cache", config));
  if (!linked.ok()) {
    std::fprintf(stderr, "link failed: %s\n", linked.error().str().c_str());
    return 1;
  }
  std::printf("cache linked in %.2f ms (deployment delay incl. allocation)\n",
              linked.value().stats.deploy_ms());

  // Populate the cached values (one bucket per hot key).
  for (std::size_t k = 0; k < workload.cached_keys.size(); ++k) {
    if (!controller
             .write_memory(linked.value().id, "mem1", static_cast<MemAddr>(k),
                           0xC0DE0000u + static_cast<Word>(k))
             .ok()) {
      return 1;
    }
  }

  // Replay: hits are RETURNED to the client, misses FORWARDED to the server.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const auto& tp : workload.trace.packets) {
    const auto result = dataplane.inject(tp.pkt);
    if (result.fate == rmt::PacketFate::Returned) {
      ++hits;
    } else {
      ++misses;
    }
  }
  const double hit_rate =
      static_cast<double>(hits) / static_cast<double>(hits + misses);
  std::printf("replayed %llu reads: %llu hits, %llu misses -> hit rate %.3f\n",
              static_cast<unsigned long long>(hits + misses),
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses), hit_rate);
  std::printf("server offload: %.0f%% of reads never reached the server\n",
              100.0 * hit_rate);

  // Runtime cache update: the control plane rotates a value in place.
  if (!controller.write_memory(linked.value().id, "mem1", 0, 0xFEEDF00Du).ok()) return 1;
  auto probe = workload.trace.packets.front().pkt;
  probe.app->op = 1;
  probe.app->key1 = workload.cached_keys.front();
  const auto refreshed = dataplane.inject(probe);
  std::printf("after control-plane value update, key 0x%x now returns 0x%x\n",
              workload.cached_keys.front(), refreshed.packet.app->value);
  return 0;
}
