// Runtime load-balancer reconfiguration: a stateless L4 load balancer is
// linked at runtime; when a backend is drained for maintenance, the
// operator reassigns its buckets through control-plane memory writes —
// no relink, no traffic disturbance (the "just-in-time optimization"
// story of §2.1).
#include <cstdio>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "traffic/flowgen.h"

using namespace p4runpro;

namespace {

void measure(dp::RunproDataplane& dataplane, const traffic::Trace& trace,
             const char* label) {
  std::uint64_t port_pkts[3] = {0, 0, 0};
  for (const auto& tp : trace.packets) {
    const auto result = dataplane.inject(tp.pkt);
    if (result.fate == rmt::PacketFate::Forwarded && result.egress_port < 3) {
      ++port_pkts[result.egress_port];
    }
  }
  const auto total = port_pkts[0] + port_pkts[1] + port_pkts[2];
  std::printf("%-28s port0 %5.1f%%  port1 %5.1f%%  port2 %5.1f%%\n", label,
              100.0 * port_pkts[0] / total, 100.0 * port_pkts[1] / total,
              100.0 * port_pkts[2] / total);
}

}  // namespace

int main() {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);

  // Link a 3-backend load balancer (elastic FORWARD cases 0..2).
  apps::ProgramConfig config;
  config.instance_name = "vip_lb";
  config.elastic_cases = 3;
  auto linked = controller.link_single(apps::make_program_source("lb", config));
  if (!linked.ok()) {
    std::fprintf(stderr, "link failed: %s\n", linked.error().str().c_str());
    return 1;
  }
  const ProgramId id = linked.value().id;

  // Spread the 256 hash buckets over three DIPs/ports.
  const auto* placements = controller.resources().program_placements(id);
  const std::uint32_t buckets = placements->at("port_pool").block.size;
  for (std::uint32_t b = 0; b < buckets; ++b) {
    if (!controller.write_memory(id, "port_pool", b, b % 3).ok()) return 1;
    if (!controller.write_memory(id, "dip_pool", b, 0xac100000u + b % 3).ok()) return 1;
  }

  traffic::CampusTraceConfig trace_config;
  trace_config.duration_s = 3.0;
  trace_config.zipf_skew = 0.5;
  const auto trace = traffic::make_campus_trace(trace_config);

  measure(dataplane, trace, "3 backends:");

  // Backend 2 goes into maintenance: reassign its buckets to 0/1 with raw
  // memory writes — the running program is never touched.
  for (std::uint32_t b = 0; b < buckets; ++b) {
    if (b % 3 == 2) {
      if (!controller.write_memory(id, "port_pool", b, b % 2).ok()) return 1;
      if (!controller.write_memory(id, "dip_pool", b, 0xac100000u + b % 2).ok()) return 1;
    }
  }
  measure(dataplane, trace, "backend 2 drained:");

  // Backend 2 returns.
  for (std::uint32_t b = 0; b < buckets; ++b) {
    if (b % 3 == 2) {
      if (!controller.write_memory(id, "port_pool", b, 2).ok()) return 1;
      if (!controller.write_memory(id, "dip_pool", b, 0xac100002u).ok()) return 1;
    }
  }
  measure(dataplane, trace, "backend 2 restored:");

  std::printf("\nAll reconfiguration happened through virtual-memory writes on the\n"
              "running program (resource manager address translation) — zero\n"
              "entry updates, zero disturbance.\n");
  return 0;
}
