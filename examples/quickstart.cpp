// Quickstart: provision a P4runpro switch once, then link the paper's
// in-network cache program (Fig. 2) at runtime, exercise it with a few
// packets, inspect it from the control plane, and revoke it — all without
// touching the data-plane image.
#include <cstdio>

#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

using namespace p4runpro;

namespace {

// The example program of Fig. 2, written in the P4runpro DSL.
constexpr const char* kCacheProgram = R"(
@ mem1 1024
program cache(
    /*filtering traffic*/
    <hdr.udp.dst_port, 7777, 0xffff>) {
  EXTRACT(hdr.nc.op, har);   //get opcode
  EXTRACT(hdr.nc.key1, sar); //get key[0:31]
  EXTRACT(hdr.nc.key2, mar); //get key[32:63]
  BRANCH:
  /*cache hit and cache read*/
  case(<har, 1, 0xff>, <sar, 0x8888, 0xffffffff>, <mar, 0, 0xffffffff>) {
    RETURN;                  //return to client
    LOADI(mar, 512);         //load address
    MEMREAD(mem1);           //read cache
    MODIFY(hdr.nc.value, sar);
  };
  /*cache hit and cache write*/
  case(<har, 2, 0xff>, <sar, 0x8888, 0xffffffff>, <mar, 0, 0xffffffff>) {
    DROP;                    //drop the packet
    LOADI(mar, 512);         //load address
    EXTRACT(hdr.nc.val, sar); //get value
    MEMWRITE(mem1);          //write cache
  };
  FORWARD(32); //cache miss
}
)";

rmt::Packet cache_packet(Word op, Word key, Word value) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{.src_port = 4000, .dst_port = 7777};
  pkt.app = rmt::AppHeader{.op = op, .key1 = key, .key2 = 0, .value = value};
  pkt.ingress_port = 5;
  return pkt;
}

const char* fate_name(rmt::PacketFate fate) {
  switch (fate) {
    case rmt::PacketFate::Forwarded: return "forwarded";
    case rmt::PacketFate::Returned: return "returned";
    case rmt::PacketFate::Dropped: return "dropped";
    case rmt::PacketFate::Reported: return "reported to CPU";
    case rmt::PacketFate::RecircLimit: return "recirculation limit";
    case rmt::PacketFate::Multicasted: return "multicasted";
  }
  return "?";
}

}  // namespace

int main() {
  // 1. Provision the switch exactly once: the fixed P4runpro data plane
  //    (init block, 10 ingress + 12 egress RPBs, recirculation block).
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock);
  std::printf("provisioned: %d RPBs, %u buckets and %u entries per RPB\n",
              dataplane.spec().total_rpbs(), dataplane.spec().memory_per_rpb,
              dataplane.spec().entries_per_rpb);

  // 2. Link the cache program at runtime.
  auto linked = controller.link_single(kCacheProgram);
  if (!linked.ok()) {
    std::fprintf(stderr, "link failed: %s\n", linked.error().str().c_str());
    return 1;
  }
  const ProgramId id = linked.value().id;
  std::printf("linked '%s' as program %u (parse %.2f ms, alloc %.3f ms, update %.2f ms)\n",
              linked.value().name.c_str(), id, linked.value().stats.parse_ms,
              linked.value().stats.alloc_ms, linked.value().stats.update_ms);

  // 3. Warm the cache from the control plane (virtual address 512).
  if (!controller.write_memory(id, "mem1", 512, 0x1234).ok()) return 1;

  // 4. Send traffic.
  auto read = dataplane.inject(cache_packet(1, 0x8888, 0));
  std::printf("cache read hit:  %s with value 0x%x\n", fate_name(read.fate),
              read.packet.app->value);

  auto write = dataplane.inject(cache_packet(2, 0x8888, 0xBEEF));
  std::printf("cache write:     %s; memory now 0x%x\n", fate_name(write.fate),
              controller.read_memory(id, "mem1", 512).value());

  auto miss = dataplane.inject(cache_packet(1, 0x9999, 0));
  std::printf("cache miss:      %s to port %u (the server)\n", fate_name(miss.fate),
              miss.egress_port);

  // 5. Monitor and revoke.
  const auto* program = controller.program(id);
  std::printf("program '%s': %d AST depths over %d rounds, %zu RPB entries\n",
              program->name.c_str(), program->ir.depth, program->alloc.rounds,
              program->rpb_handles.size());
  if (!controller.revoke(id).ok()) return 1;
  std::printf("revoked; memory utilization back to %.0f%%\n",
              100.0 * controller.resources().total_memory_utilization());
  return 0;
}
