// On-demand telemetry suite (§2.1: "when the network fails or its
// performance decreases, the operator can deploy measurement ... tasks in
// a timely manner"): CMS frequencies, SuMax per-flow maxima and
// HyperLogLog cardinality are deployed over the SAME traffic. Because all
// three filter the same flows and one packet runs one program (§7's
// parallel-execution limitation: merge with BRANCH or execute
// sequentially), the suite runs them in sequential epochs — deploy,
// observe, query via the sketch estimators, revoke, next program.
#include <algorithm>
#include <cstdio>

#include "analysis/sketches.h"
#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "rmt/crc.h"
#include "traffic/flowgen.h"

using namespace p4runpro;

int main() {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);

  // The shared traffic epoch and its ground truth.
  traffic::CampusTraceConfig trace_config;
  trace_config.duration_s = 5.0;
  trace_config.flows = 3000;
  const auto trace = traffic::make_campus_trace(trace_config);
  const auto counts = traffic::flow_counts(trace);
  const auto top = std::max_element(
      counts.begin(), counts.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  const auto tuple_bytes = top->first.bytes();
  std::printf("epoch: %zu packets over %zu flows\n", trace.packets.size(),
              counts.size());

  auto replay = [&] {
    for (const auto& tp : trace.packets) (void)dataplane.inject(tp.pkt);
  };

  // --- Epoch 1: CMS frequencies ------------------------------------------
  {
    apps::ProgramConfig config;
    config.instance_name = "tele_cms";
    config.mem_buckets = 2048;
    auto linked = controller.link_single(apps::make_program_source("cms", config));
    if (!linked.ok()) return 1;
    replay();
    auto row1 = controller.dump_memory(linked.value().id, "cms_row1");
    auto row2 = controller.dump_memory(linked.value().id, "cms_row2");
    auto algo1 = controller.hash_algo_for(linked.value().id, "cms_row1");
    auto algo2 = controller.hash_algo_for(linked.value().id, "cms_row2");
    if (!row1.ok() || !row2.ok() || !algo1.ok() || !algo2.ok()) return 1;
    const auto mask = static_cast<std::uint32_t>(row1.value().size() - 1);
    const Word estimate = analysis::cms_point_query(
        row1.value(), row2.value(),
        rmt::run_hash(algo1.value(), tuple_bytes) & mask,
        rmt::run_hash(algo2.value(), tuple_bytes) & mask);
    std::printf("CMS:   top flow estimated %u packets (ground truth %llu)\n",
                estimate, static_cast<unsigned long long>(top->second));
    if (!controller.revoke(linked.value().id).ok()) return 1;
  }

  // --- Epoch 2: SuMax per-flow maxima --------------------------------------
  {
    apps::ProgramConfig config;
    config.instance_name = "tele_sumax";
    config.mem_buckets = 2048;
    auto linked = controller.link_single(apps::make_program_source("sumax", config));
    if (!linked.ok()) return 1;
    replay();
    auto max_row = controller.dump_memory(linked.value().id, "sm_max1");
    auto max_algo = controller.hash_algo_for(linked.value().id, "sm_max1");
    if (!max_row.ok() || !max_algo.ok()) return 1;
    const Word peak =
        max_row.value()[rmt::run_hash(max_algo.value(), tuple_bytes) &
                        (max_row.value().size() - 1)];
    std::printf("SuMax: top flow's largest IPv4 length %u bytes\n", peak);
    if (!controller.revoke(linked.value().id).ok()) return 1;
  }

  // --- Epoch 3: HLL cardinality --------------------------------------------
  {
    apps::ProgramConfig config;
    config.instance_name = "tele_hll";
    config.mem_buckets = 512;
    auto linked = controller.link_single(apps::make_program_source("hll", config));
    if (!linked.ok()) return 1;
    replay();
    auto regs = controller.dump_memory(linked.value().id, "hll_regs");
    if (!regs.ok()) return 1;
    std::printf("HLL:   %.0f distinct flows estimated (ground truth %zu)\n",
                analysis::hll_estimate(regs.value()), counts.size());
    if (!controller.revoke(linked.value().id).ok()) return 1;
  }

  std::printf("suite finished; memory utilization %.0f%%, entries %.0f%%\n",
              100.0 * controller.resources().total_memory_utilization(),
              100.0 * controller.resources().total_entry_utilization());
  return 0;
}
