// Runtime CLI — the interactive control-plane front end of the prototype
// (paper §5: "We implement a runtime CLI to interact with the P4runpro
// data plane"). Reads commands from stdin; try:
//
//   help
//   catalog
//   link cache
//   programs
//   write cache mem1 0 4919
//   cache-read 0x8888
//   resources
//   revoke cache
//   quit
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "compiler/p4lite.h"
#include "control/inspect.h"
#include "dataplane/runpro_dataplane.h"

using namespace p4runpro;

namespace {

void print_help() {
  std::printf(
      "commands:\n"
      "  catalog                          list the 15 program templates\n"
      "  link <key> [mem] [elastic]       link a template instance (name = key)\n"
      "  link-file <path>                 link programs from a .p4rp source file\n"
      "  link-lite <path>                 compile a P4lite file and link it\n"
      "  relink <name> <key> [mem] [el]   incremental update of a running program\n"
      "  revoke <name>                    remove a running program\n"
      "  programs                         list running programs\n"
      "  show <name>                      disassemble a running program\n"
      "  resources                        memory / entry utilization\n"
      "  events                           control-plane audit log\n"
      "  read <name> <vmem> <addr>        read program memory (virtual address)\n"
      "  write <name> <vmem> <addr> <v>   write program memory\n"
      "  cache-read <key>                 inject a cache-read packet (UDP 7777)\n"
      "  trace <key>                      cache-read with a full execution trace\n"
      "  help | quit\n");
}

Word parse_word(const std::string& text) {
  return static_cast<Word>(std::stoul(text, nullptr, 0));
}

}  // namespace

int main() {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{},
                                rmt::ParserConfig{{7777, 7788, 9999, 5555}});
  ctrl::Controller controller(dataplane, clock);
  std::printf("P4runpro runtime CLI — switch provisioned (%d RPBs). Type 'help'.\n",
              dataplane.spec().total_rpbs());

  std::string line;
  while (std::printf("p4runpro> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    try {
      if (cmd == "quit" || cmd == "exit") break;
      if (cmd == "help") {
        print_help();
      } else if (cmd == "catalog") {
        for (const auto& info : apps::program_catalog()) {
          std::printf("  %-12s %-28s (%d LoC, paper update %.2f ms)\n",
                      info.key.c_str(), info.display.c_str(),
                      apps::template_loc(info.key), info.paper_update_ms);
        }
      } else if (cmd == "link" || cmd == "relink") {
        std::string name;
        if (cmd == "relink" && !(in >> name)) {
          std::printf("usage: relink <name> <key> [mem] [elastic]\n");
          continue;
        }
        std::string key;
        if (!(in >> key)) {
          std::printf("usage: %s <key> [mem_buckets] [elastic_cases]\n", cmd.c_str());
          continue;
        }
        apps::ProgramConfig config;
        config.instance_name = cmd == "relink" ? name : key;
        if (std::string v; in >> v) config.mem_buckets = parse_word(v);
        if (std::string v; in >> v) config.elastic_cases = static_cast<int>(parse_word(v));
        if (apps::find_program(key) == nullptr) {
          std::printf("unknown template '%s' (see 'catalog')\n", key.c_str());
          continue;
        }
        const std::string source = apps::make_program_source(key, config);
        auto result = cmd == "relink"
                          ? [&] {
                              const auto* old = controller.program_by_name(name);
                              return old ? controller.relink(old->id, source)
                                         : Result<ctrl::LinkResult>(Error{
                                               "no program named '" + name + "'",
                                               "cli"});
                            }()
                          : controller.link_single(source);
        if (!result.ok()) {
          std::printf("error: %s\n", result.error().str().c_str());
        } else {
          std::printf("%s '%s' as program %u (alloc %.3f ms, update %.2f ms)\n",
                      cmd == "relink" ? "relinked" : "linked",
                      result.value().name.c_str(), result.value().id,
                      result.value().stats.alloc_ms, result.value().stats.update_ms);
        }
      } else if (cmd == "link-file" || cmd == "link-lite") {
        std::string path;
        in >> path;
        std::ifstream file(path);
        if (!file) {
          std::printf("cannot open '%s'\n", path.c_str());
          continue;
        }
        std::stringstream buffer;
        buffer << file.rdbuf();
        std::string source = buffer.str();
        if (cmd == "link-lite") {
          auto dsl = rp::compile_p4lite(source);
          if (!dsl.ok()) {
            std::printf("error: %s\n", dsl.error().str().c_str());
            continue;
          }
          source = dsl.value();
        }
        auto results = controller.link(source);
        if (!results.ok()) {
          std::printf("error: %s\n", results.error().str().c_str());
        } else {
          for (const auto& r : results.value()) {
            std::printf("linked '%s' as program %u (alloc %.3f ms, update %.2f ms)\n",
                        r.name.c_str(), r.id, r.stats.alloc_ms, r.stats.update_ms);
          }
        }
      } else if (cmd == "revoke") {
        std::string name;
        in >> name;
        auto s = controller.revoke_by_name(name);
        std::printf("%s\n", s.ok() ? "revoked" : s.error().str().c_str());
      } else if (cmd == "show") {
        std::string name;
        in >> name;
        const auto* p = controller.program_by_name(name);
        if (p == nullptr) {
          std::printf("no program named '%s'\n", name.c_str());
        } else {
          std::printf("%s  claimed packets: %llu\n",
                      ctrl::disassemble(*p, dataplane.spec()).c_str(),
                      static_cast<unsigned long long>(
                          controller.program_packets(p->id)));
        }
      } else if (cmd == "programs") {
        for (ProgramId id : controller.running_programs()) {
          const auto* p = controller.program(id);
          std::printf("  %3u %-16s depth %2d, rounds %d, %zu RPB entries\n", id,
                      p->name.c_str(), p->ir.depth, p->alloc.rounds,
                      p->rpb_handles.size());
        }
        if (controller.program_count() == 0) std::printf("  (none)\n");
      } else if (cmd == "events") {
        for (const auto& e : controller.events()) {
          const char* kind = e.kind == ctrl::ControlEvent::Kind::Link     ? "link"
                             : e.kind == ctrl::ControlEvent::Kind::Relink ? "relink"
                             : e.kind == ctrl::ControlEvent::Kind::Revoke ? "revoke"
                                                                          : "FAILED";
          std::printf("  %10.2f ms  %-7s %-16s (id %u) %s\n", e.t_ms, kind,
                      e.name.c_str(), e.id, e.detail.c_str());
        }
        if (controller.events().empty()) std::printf("  (none)\n");
      } else if (cmd == "resources") {
        std::printf("memory %.1f%%, table entries %.1f%% (virtual time %.1f ms)\n",
                    100.0 * controller.resources().total_memory_utilization(),
                    100.0 * controller.resources().total_entry_utilization(),
                    clock.now_ms());
      } else if (cmd == "read" || cmd == "write") {
        std::string name, vmem, addr_text;
        in >> name >> vmem >> addr_text;
        const auto* p = controller.program_by_name(name);
        if (p == nullptr) {
          std::printf("no program named '%s'\n", name.c_str());
          continue;
        }
        const MemAddr addr = parse_word(addr_text);
        if (cmd == "read") {
          auto v = controller.read_memory(p->id, vmem, addr);
          if (v.ok()) {
            std::printf("%s[%u] = 0x%x\n", vmem.c_str(), addr, v.value());
          } else {
            std::printf("error: %s\n", v.error().str().c_str());
          }
        } else {
          std::string value_text;
          in >> value_text;
          auto s = controller.write_memory(p->id, vmem, addr, parse_word(value_text));
          std::printf("%s\n", s.ok() ? "ok" : s.error().str().c_str());
        }
      } else if (cmd == "cache-read" || cmd == "trace") {
        std::string key_text;
        in >> key_text;
        if (cmd == "trace") dataplane.pipeline().set_tracing(true);
        rmt::Packet pkt;
        pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
        pkt.udp = rmt::UdpHeader{.src_port = 4000, .dst_port = 7777};
        pkt.app = rmt::AppHeader{.op = 1, .key1 = parse_word(key_text), .key2 = 0,
                                 .value = 0};
        pkt.ingress_port = 5;
        const auto result = dataplane.inject(pkt);
        const char* fate = result.fate == rmt::PacketFate::Returned    ? "returned"
                           : result.fate == rmt::PacketFate::Forwarded ? "forwarded"
                           : result.fate == rmt::PacketFate::Dropped   ? "dropped"
                                                                       : "reported";
        std::printf("%s (port %u), value 0x%x\n", fate, result.egress_port,
                    result.packet.app ? result.packet.app->value : 0);
        if (cmd == "trace") {
          for (const auto& line : dataplane.pipeline().last_trace()) {
            std::printf("  %s\n", line.c_str());
          }
          dataplane.pipeline().set_tracing(false);
        }
      } else {
        std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("bad arguments: %s\n", e.what());
    }
  }
  std::printf("\nbye\n");
  return 0;
}
