// Just-in-time attack mitigation (§2.1: "when the network fails or its
// performance decreases, the operator can deploy measurement and attack
// detection tasks in a timely manner"): a volumetric attacker appears; the
// operator links a heavy-hitter detector at runtime, learns the offender
// from the CPU reports, then links a Bloom-filter blacklist and inserts
// the attacker — all while regular traffic keeps flowing.
#include <cstdio>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "rmt/crc.h"

using namespace p4runpro;

namespace {

rmt::Packet udp_packet(std::uint32_t src, std::uint32_t dst, std::uint16_t sport,
                       std::uint16_t dport) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = src, .dst = dst, .proto = 17};
  pkt.udp = rmt::UdpHeader{sport, dport};
  pkt.payload_len = 512;
  pkt.ingress_port = 1;
  return pkt;
}

}  // namespace

int main() {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);

  const auto attacker = udp_packet(0x0a00002a, 0x0a010001, 53, 53);
  const auto victim_user = udp_packet(0x0a000001, 0x0a010001, 2000, 80);

  // Phase 1: attack traffic flows unhindered (no program installed).
  std::printf("phase 1: no defenses — attacker %s\n",
              dataplane.inject(attacker).fate == rmt::PacketFate::Forwarded
                  ? "forwarded"
                  : "blocked");

  // Phase 2: operator links a heavy-hitter detector at runtime.
  apps::ProgramConfig hh;
  hh.instance_name = "detector";
  hh.threshold = 50;
  auto detector = controller.link_single(apps::make_program_source("hh", hh));
  if (!detector.ok()) return 1;
  std::printf("phase 2: detector deployed in %.1f ms without disturbing traffic\n",
              detector.value().stats.deploy_ms());

  rmt::FiveTuple offender{};
  for (int i = 0; i < 100; ++i) {
    const auto result = dataplane.inject(attacker);
    if (result.fate == rmt::PacketFate::Reported) {
      offender = result.packet.five_tuple();
      std::printf("         heavy hitter reported after %d packets: src 10.0.0.%u\n",
                  i + 1, offender.src_ip & 0xff);
    }
  }

  // Phase 3: link the Bloom-filter blacklist and insert the offender. The
  // controller computes the bucket indices with the hash units that the
  // blacklist program's HASH_5_TUPLE_MEM landed on.
  apps::ProgramConfig bf;
  bf.instance_name = "blacklist";
  auto blacklist = controller.link_single(apps::make_program_source("bf", bf));
  if (!blacklist.ok()) return 1;
  const auto tuple_bytes = offender.bytes();
  for (const char* row : {"bf_row1", "bf_row2"}) {
    const auto algo = controller.hash_algo_for(blacklist.value().id, row);
    const auto* placements =
        controller.resources().program_placements(blacklist.value().id);
    if (!algo.ok() || placements == nullptr) return 1;
    const Word index = rmt::run_hash(algo.value(), tuple_bytes) &
                       (placements->at(row).block.size - 1);
    if (!controller.write_memory(blacklist.value().id, row, index, 1).ok()) return 1;
  }
  std::printf("phase 3: blacklist deployed and offender inserted\n");

  std::printf("         attacker now %s; legitimate user still %s\n",
              dataplane.inject(attacker).fate == rmt::PacketFate::Dropped
                  ? "DROPPED"
                  : "forwarded",
              dataplane.inject(victim_user).fate == rmt::PacketFate::Forwarded
                  ? "forwarded"
                  : "blocked");

  // Phase 4: attack over — tear the defenses down, freeing all resources.
  if (!controller.revoke(detector.value().id).ok()) return 1;
  if (!controller.revoke(blacklist.value().id).ok()) return 1;
  std::printf("phase 4: defenses revoked; attacker traffic %s again (memory %.0f%%)\n",
              dataplane.inject(attacker).fate == rmt::PacketFate::Forwarded
                  ? "forwarded"
                  : "blocked",
              100.0 * controller.resources().total_memory_utilization());
  return 0;
}
