// SwitchML-style in-network gradient aggregation (the §7 extension enabled
// by MULTICAST): four training workers push gradient chunks; the switch
// folds them in stateful memory and multicasts each completed chunk back
// to the worker group, cutting the all-reduce traffic at the host NICs
// from N*(N-1) flows to N.
#include <cstdio>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/rng.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

using namespace p4runpro;

namespace {

constexpr int kWorkers = 4;
constexpr int kChunks = 16;

rmt::Packet gradient(int worker, Word chunk, Word value) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001u + static_cast<Word>(worker),
                             .dst = 0x0a0000ff, .proto = 17};
  pkt.udp = rmt::UdpHeader{static_cast<std::uint16_t>(9000 + worker), 4242};
  pkt.app = rmt::AppHeader{.op = 0, .key1 = chunk, .key2 = 0, .value = value};
  pkt.ingress_port = static_cast<Port>(10 + worker);
  return pkt;
}

}  // namespace

int main() {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{4242}});
  ctrl::Controller controller(dataplane, clock);

  // PRE programming: multicast group 1 = the worker-facing ports.
  dataplane.pipeline().set_multicast_group(1, {10, 11, 12, 13});

  apps::ProgramConfig config;
  config.instance_name = "allreduce";
  config.workers = kWorkers;
  config.mem_buckets = kChunks;
  auto linked = controller.link_single(apps::make_program_source("agg", config));
  if (!linked.ok()) {
    std::fprintf(stderr, "link failed: %s\n", linked.error().str().c_str());
    return 1;
  }
  std::printf("aggregation program linked at runtime (%.2f ms deployment)\n",
              linked.value().stats.deploy_ms());

  // One training step: every worker contributes a value per chunk;
  // the switch broadcasts each completed chunk exactly once.
  Rng rng(3);
  std::vector<Word> expected(kChunks, 0);
  std::vector<std::vector<Word>> contributions(
      static_cast<std::size_t>(kWorkers), std::vector<Word>(kChunks));
  for (int w = 0; w < kWorkers; ++w) {
    for (int c = 0; c < kChunks; ++c) {
      const Word v = static_cast<Word>(rng.uniform(1000));
      contributions[static_cast<std::size_t>(w)][static_cast<std::size_t>(c)] = v;
      expected[static_cast<std::size_t>(c)] += v;
    }
  }

  int broadcasts = 0;
  int absorbed = 0;
  int correct = 0;
  for (int c = 0; c < kChunks; ++c) {
    for (int w = 0; w < kWorkers; ++w) {
      const auto result = dataplane.inject(gradient(
          w, static_cast<Word>(c),
          contributions[static_cast<std::size_t>(w)][static_cast<std::size_t>(c)]));
      if (result.fate == rmt::PacketFate::Multicasted) {
        ++broadcasts;
        if (result.packet.app->value == expected[static_cast<std::size_t>(c)] &&
            result.multicast_ports.size() == kWorkers) {
          ++correct;
        }
      } else {
        ++absorbed;
      }
    }
  }

  std::printf("%d gradient packets sent: %d absorbed in-switch, %d broadcasts\n",
              kWorkers * kChunks, absorbed, broadcasts);
  std::printf("%d/%d chunks aggregated correctly and delivered to all %d workers\n",
              correct, kChunks, kWorkers);
  std::printf("host traffic reduction: %d packets on the wire instead of %d\n",
              kWorkers * kChunks + broadcasts * kWorkers,
              kWorkers * (kWorkers - 1) * kChunks);

  // Next training round: the control plane resets the accumulators.
  for (int c = 0; c < kChunks; ++c) {
    if (!controller.write_memory(linked.value().id, "agg_val", static_cast<MemAddr>(c), 0).ok() ||
        !controller.write_memory(linked.value().id, "agg_cnt", static_cast<MemAddr>(c), 0).ok()) {
      return 1;
    }
  }
  std::printf("accumulators reset for the next round via the control plane\n");
  return correct == kChunks ? 0 : 1;
}
