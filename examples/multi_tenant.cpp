// Multi-tenant scenario (§2.1: runtime programmability makes the switch
// cloud-native): three tenants offload unrelated network functions —
// a stateful firewall, a heavy-hitter detector and an in-network
// calculator — to the same switch at runtime. Each is isolated by its
// program id; revoking one tenant leaves the others untouched.
#include <cstdio>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

using namespace p4runpro;

namespace {

rmt::Packet tcp_packet(std::uint32_t src, std::uint32_t dst, std::uint16_t sport,
                       std::uint16_t dport) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = src, .dst = dst, .proto = 6};
  pkt.tcp = rmt::TcpHeader{sport, dport, 0x10};
  pkt.payload_len = 256;
  pkt.ingress_port = 1;
  return pkt;
}

rmt::Packet calc_packet(Word op, Word a, Word b) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000009, .dst = 0x0a0000ff, .proto = 17};
  pkt.udp = rmt::UdpHeader{.src_port = 1111, .dst_port = 9999};
  pkt.app = rmt::AppHeader{op, a, b, 0};
  pkt.ingress_port = 2;
  return pkt;
}

}  // namespace

int main() {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{9999}});
  ctrl::Controller controller(dataplane, clock);

  // Tenant A: stateful firewall for the 10.0.0.0/16 enterprise prefix.
  apps::ProgramConfig fw;
  fw.instance_name = "tenantA_firewall";
  auto firewall = controller.link_single(apps::make_program_source("firewall", fw));
  // Tenant B: heavy hitter detection over its own traffic (11.7.0.0/16).
  apps::ProgramConfig hh;
  hh.instance_name = "tenantB_hh";
  hh.filter_value = 0x0b070000;
  hh.threshold = 5;
  auto hitter = controller.link_single(apps::make_program_source("hh", hh));
  // Tenant C: in-network calculator on UDP port 9999.
  apps::ProgramConfig calc;
  calc.instance_name = "tenantC_calc";
  auto calculator = controller.link_single(apps::make_program_source("calculator", calc));

  if (!firewall.ok() || !hitter.ok() || !calculator.ok()) {
    std::fprintf(stderr, "tenant deployment failed\n");
    return 1;
  }
  std::printf("3 tenants running concurrently (%zu programs total)\n",
              controller.program_count());
  std::printf("resource usage: memory %.1f%%, table entries %.1f%%\n",
              100.0 * controller.resources().total_memory_utilization(),
              100.0 * controller.resources().total_entry_utilization());

  // Tenant A's firewall at work: outbound opens a pinhole, inbound passes.
  (void)dataplane.inject(tcp_packet(0x0a000001, 0x0b070001, 4000, 80));
  const auto inbound = dataplane.inject(tcp_packet(0x0a000001, 0x0b070001, 4000, 80));
  std::printf("tenant A: established inbound flow %s\n",
              inbound.fate == rmt::PacketFate::Dropped ? "DROPPED" : "admitted");

  // Tenant B sees a burst from its prefix and gets a heavy-hitter report.
  int reports = 0;
  for (int i = 0; i < 20; ++i) {
    if (dataplane.inject(tcp_packet(0x0b070042, 0x0c000001, 999, 80)).fate ==
        rmt::PacketFate::Reported) {
      ++reports;
    }
  }
  std::printf("tenant B: heavy flow reported %d time(s)\n", reports);

  // Tenant C computes.
  const auto sum = dataplane.inject(calc_packet(1, 40, 2));
  std::printf("tenant C: 40 + 2 = %u\n", sum.packet.app->value);

  // Tenant B leaves; A and C keep working, untouched, mid-traffic.
  if (!controller.revoke(hitter.value().id).ok()) return 1;
  std::printf("tenant B revoked; %zu programs remain\n", controller.program_count());
  const auto still_inbound =
      dataplane.inject(tcp_packet(0x0a000001, 0x0b070001, 4000, 80));
  const auto still_calc = dataplane.inject(calc_packet(7, 40, 2));
  std::printf("tenant A still %s, tenant C still computes min(40,2) = %u\n",
              still_inbound.fate == rmt::PacketFate::Dropped ? "DROPPING" : "admitting",
              still_calc.packet.app->value);
  return 0;
}
