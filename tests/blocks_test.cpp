// Data-plane block unit tests: initialization block (parse-path routing,
// filter compatibility, rollback), recirculation block, logical/physical
// RPB mapping helpers, and atomic-op plumbing.
#include <gtest/gtest.h>

#include "dataplane/atomic_op.h"
#include "dataplane/dataplane_spec.h"
#include "dataplane/init_block.h"
#include "dataplane/recirc_block.h"
#include "rmt/parser.h"

namespace p4runpro::dp {
namespace {

// --- logical / physical mapping --------------------------------------------

TEST(DataplaneSpec, LogicalPhysicalMapping) {
  const DataplaneSpec spec;
  EXPECT_EQ(spec.total_rpbs(), 22);
  EXPECT_EQ(spec.logical_rpbs(), 44);  // R = 1

  EXPECT_EQ(physical_rpb(1, 22), 1);
  EXPECT_EQ(physical_rpb(22, 22), 22);
  EXPECT_EQ(physical_rpb(23, 22), 1);
  EXPECT_EQ(physical_rpb(44, 22), 22);
  EXPECT_EQ(recirc_round(1, 22), 0);
  EXPECT_EQ(recirc_round(22, 22), 0);
  EXPECT_EQ(recirc_round(23, 22), 1);
  EXPECT_EQ(recirc_round(44, 22), 1);

  EXPECT_TRUE(is_ingress_rpb(1, 10));
  EXPECT_TRUE(is_ingress_rpb(10, 10));
  EXPECT_FALSE(is_ingress_rpb(11, 10));
  EXPECT_FALSE(is_ingress_rpb(0, 10));
}

// --- initialization block ----------------------------------------------------

TEST(InitBlock, FilterKeySlots) {
  EXPECT_EQ(filter_key_slot(rmt::FieldId::MetaIngressPort), kFilterIngressPort);
  EXPECT_EQ(filter_key_slot(rmt::FieldId::Ipv4Src), kFilterIpv4Src);
  EXPECT_EQ(filter_key_slot(rmt::FieldId::TcpDstPort), kFilterL4Dst);
  EXPECT_EQ(filter_key_slot(rmt::FieldId::UdpDstPort), kFilterL4Dst);
  EXPECT_EQ(filter_key_slot(rmt::FieldId::EthType), kFilterEthType);
  // Non-filterable fields.
  EXPECT_EQ(filter_key_slot(rmt::FieldId::AppOp), std::nullopt);
  EXPECT_EQ(filter_key_slot(rmt::FieldId::Ipv4Ttl), std::nullopt);
}

TEST(InitBlock, CompatiblePaths) {
  // A UDP-port filter matches the UDP and App paths.
  const auto udp = compatible_paths({{rmt::FieldId::UdpDstPort, 7777, 0xffff}});
  EXPECT_EQ(udp, (std::vector<ParsePath>{ParsePath::Udp, ParsePath::App}));
  // A TCP filter only the TCP path.
  const auto tcp = compatible_paths({{rmt::FieldId::TcpDstPort, 80, 0xffff}});
  EXPECT_EQ(tcp, (std::vector<ParsePath>{ParsePath::Tcp}));
  // An IPv4 filter matches every IPv4-bearing path.
  const auto ip = compatible_paths({{rmt::FieldId::Ipv4Src, 1, 0xff}});
  EXPECT_EQ(ip, (std::vector<ParsePath>{ParsePath::Ipv4, ParsePath::Tcp,
                                        ParsePath::Udp, ParsePath::App}));
  // Port / ethertype filters match all five paths.
  const auto port = compatible_paths({{rmt::FieldId::MetaIngressPort, 3, 0xffff}});
  EXPECT_EQ(port.size(), 5u);
  // Conflicting TCP+UDP requirements match nothing.
  const auto none = compatible_paths({{rmt::FieldId::TcpDstPort, 80, 0xffff},
                                      {rmt::FieldId::UdpDstPort, 53, 0xffff}});
  EXPECT_TRUE(none.empty());
}

TEST(InitBlock, AssignsProgramIdByPath) {
  InitBlock block(64);
  auto handles =
      block.install(7, {{rmt::FieldId::UdpDstPort, 7777, 0xffff}}, /*priority=*/1);
  ASSERT_TRUE(handles.ok());
  EXPECT_EQ(handles.value().size(), 2u);  // UDP + App paths
  EXPECT_EQ(block.total_entries(), 2u);

  rmt::Parser parser(rmt::ParserConfig{{7777}});
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.proto = 17};
  pkt.udp = rmt::UdpHeader{1000, 7777};
  auto phv = parser.parse(pkt);
  block.process(phv);
  EXPECT_EQ(phv.program_id, 7);

  // Wrong port: untouched.
  pkt.udp->dst_port = 7778;
  phv = parser.parse(pkt);
  block.process(phv);
  EXPECT_EQ(phv.program_id, 0);

  // TCP packet never hits a UDP filter.
  rmt::Packet tcp;
  tcp.ipv4 = rmt::Ipv4Header{.proto = 6};
  tcp.tcp = rmt::TcpHeader{1000, 7777, 0};
  phv = parser.parse(tcp);
  block.process(phv);
  EXPECT_EQ(phv.program_id, 0);

  block.remove(handles.value());
  EXPECT_EQ(block.total_entries(), 0u);
}

TEST(InitBlock, RecirculatedPacketsBypassFiltering) {
  InitBlock block(64);
  ASSERT_TRUE(block.install(9, {{rmt::FieldId::Ipv4Src, 0x0a000000, 0xff000000}}, 1).ok());
  rmt::Parser parser(rmt::ParserConfig{});
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .proto = 17};
  pkt.udp = rmt::UdpHeader{1, 2};
  auto phv = parser.parse(pkt);
  phv.recirc_id = 1;
  phv.program_id = 3;  // carried in the P4runpro header
  block.process(phv);
  EXPECT_EQ(phv.program_id, 3);  // unchanged
}

TEST(InitBlock, HigherPriorityWinsOnOverlap) {
  InitBlock block(64);
  ASSERT_TRUE(block.install(1, {{rmt::FieldId::Ipv4Src, 0x0a000000, 0xff000000}}, 1).ok());
  ASSERT_TRUE(block.install(2, {{rmt::FieldId::Ipv4Src, 0x0a000000, 0xffff0000}}, 2).ok());
  rmt::Parser parser(rmt::ParserConfig{});
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000005, .proto = 17};
  pkt.udp = rmt::UdpHeader{1, 2};
  auto phv = parser.parse(pkt);
  block.process(phv);
  EXPECT_EQ(phv.program_id, 2);
}

TEST(InitBlock, UnfilterableFieldRejected) {
  InitBlock block(64);
  auto r = block.install(1, {{rmt::FieldId::AppValue, 1, 0xff}}, 1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(block.total_entries(), 0u);
}

// --- recirculation block -------------------------------------------------------

TEST(RecircBlock, FlagsNonFinalRounds) {
  RecircBlock block(64);
  auto handles = block.install(5, /*rounds=*/3);
  ASSERT_TRUE(handles.ok());
  EXPECT_EQ(handles.value().size(), 2u);  // rounds 0 and 1 recirculate

  rmt::Phv phv;
  phv.program_id = 5;
  phv.recirc_id = 0;
  block.process(phv);
  EXPECT_TRUE(phv.recirculate);

  phv.recirculate = false;
  phv.recirc_id = 1;
  block.process(phv);
  EXPECT_TRUE(phv.recirculate);

  phv.recirculate = false;
  phv.recirc_id = 2;  // final round
  block.process(phv);
  EXPECT_FALSE(phv.recirculate);

  // Other programs unaffected.
  phv.program_id = 6;
  phv.recirc_id = 0;
  phv.recirculate = false;
  block.process(phv);
  EXPECT_FALSE(phv.recirculate);

  block.remove(handles.value());
  EXPECT_EQ(block.entries(), 0u);
}

TEST(RecircBlock, SingleRoundProgramsInstallNothing) {
  RecircBlock block(64);
  auto handles = block.install(5, 1);
  ASSERT_TRUE(handles.ok());
  EXPECT_TRUE(handles.value().empty());
}

// --- atomic ops ------------------------------------------------------------------

TEST(AtomicOp, ClassifiersAndNames) {
  EXPECT_TRUE(is_forwarding(OpKind::Forward));
  EXPECT_TRUE(is_forwarding(OpKind::Drop));
  EXPECT_TRUE(is_forwarding(OpKind::Return));
  EXPECT_TRUE(is_forwarding(OpKind::Report));
  EXPECT_FALSE(is_forwarding(OpKind::Mem));
  EXPECT_TRUE(is_memory(OpKind::Mem));
  EXPECT_FALSE(is_memory(OpKind::Offset));
  EXPECT_TRUE(is_hash(OpKind::Hash5TupleMem));
  EXPECT_FALSE(is_hash(OpKind::Loadi));

  EXPECT_EQ(AtomicOp::loadi(Reg::Sar, 9).str(), "LOADI(sar, 9)");
  EXPECT_EQ(AtomicOp::forward(3).str(), "FORWARD(3)");
  EXPECT_EQ(AtomicOp::alu(OpKind::Add, Reg::Har, Reg::Mar).str(), "ADD(har, mar)");
}

}  // namespace
}  // namespace p4runpro::dp
