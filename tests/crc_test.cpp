// Hash-unit tests: the named CRC algorithms against their published check
// values, and structural properties the data plane relies on.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <set>

#include "rmt/crc.h"

namespace p4runpro::rmt {
namespace {

std::span<const std::uint8_t> check_input() {
  static const std::uint8_t kData[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  return kData;
}

TEST(Crc, Buypass) { EXPECT_EQ(crc16_buypass(check_input()), 0xFEE8); }
TEST(Crc, Mcrf4xx) { EXPECT_EQ(crc16_mcrf4xx(check_input()), 0x6F91); }
TEST(Crc, AugCcitt) { EXPECT_EQ(crc16_aug_ccitt(check_input()), 0xE5CC); }
TEST(Crc, Dds110) { EXPECT_EQ(crc16_dds110(check_input()), 0x9ECF); }
TEST(Crc, Crc32IsoHdlc) { EXPECT_EQ(crc32_iso_hdlc(check_input()), 0xCBF43926u); }

TEST(Crc, EmptyInputIsDefined) {
  const std::span<const std::uint8_t> empty;
  // init ^ xorout for straight algorithms.
  EXPECT_EQ(crc16_buypass(empty), 0x0000);
  EXPECT_EQ(crc16_aug_ccitt(empty), 0x1D0F);
}

TEST(Crc, DifferentAlgorithmsDisagree) {
  // The four 16-bit variants must behave as independent hash functions:
  // on a set of inputs they should almost never all coincide.
  std::set<std::array<std::uint16_t, 4>> signatures;
  for (std::uint32_t i = 0; i < 64; ++i) {
    std::uint8_t buf[4];
    std::memcpy(buf, &i, sizeof buf);
    signatures.insert({crc16_buypass(buf), crc16_mcrf4xx(buf),
                       crc16_aug_ccitt(buf), crc16_dds110(buf)});
  }
  EXPECT_EQ(signatures.size(), 64u);
}

TEST(Crc, RunHashDispatch) {
  EXPECT_EQ(run_hash(HashAlgo::Crc16Buypass, check_input()), 0xFEE8u);
  EXPECT_EQ(run_hash(HashAlgo::Crc32, check_input()), 0xCBF43926u);
}

TEST(Crc, Deterministic) {
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(crc16_mcrf4xx(check_input()), crc16_mcrf4xx(check_input()));
  }
}

}  // namespace
}  // namespace p4runpro::rmt
