// Tests for the §7 extension features: incremental update (relink with
// state carry-over) and the multi-switch chain replacing recirculation.
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "common/rng.h"
#include "dataplane/switch_chain.h"

namespace p4runpro {
namespace {

rmt::Packet cache_packet(Word op, Word key, Word value = 0) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{.src_port = 4000, .dst_port = 7777};
  pkt.app = rmt::AppHeader{.op = op, .key1 = key, .key2 = 0, .value = value};
  pkt.ingress_port = 5;
  return pkt;
}

rmt::Packet hh_packet(std::uint32_t src) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = src, .dst = 0x0b000001, .proto = 17};
  pkt.udp = rmt::UdpHeader{5000, 6000};
  pkt.ingress_port = 1;
  return pkt;
}

// --------------------------------------------------------------------------
// Incremental update (relink).
// --------------------------------------------------------------------------

class RelinkTest : public ::testing::Test {
 protected:
  RelinkTest()
      : dataplane_(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}}),
        controller_(dataplane_, clock_) {}

  SimClock clock_;
  dp::RunproDataplane dataplane_;
  ctrl::Controller controller_;
};

TEST_F(RelinkTest, GrowsElasticCasesAndKeepsMemory) {
  // v1: cache with one key (2 elastic cases).
  apps::ProgramConfig v1;
  v1.instance_name = "cache";
  v1.elastic_cases = 2;
  auto linked = controller_.link_single(apps::make_program_source("cache", v1));
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  ASSERT_TRUE(controller_.write_memory(linked.value().id, "mem1", 0, 0xAAAA).ok());

  // The paper's incremental-update scenario: add a key-value pair ->
  // two additional case blocks, relinked through the compiler.
  apps::ProgramConfig v2 = v1;
  v2.elastic_cases = 4;  // keys 0x8888 and 0x8889
  auto relinked =
      controller_.relink(linked.value().id, apps::make_program_source("cache", v2));
  ASSERT_TRUE(relinked.ok()) << relinked.error().str();
  EXPECT_NE(relinked.value().id, linked.value().id);
  EXPECT_EQ(controller_.program_count(), 1u);

  // Old key still served with the carried-over value; new key live too.
  auto old_key = dataplane_.inject(cache_packet(1, 0x8888));
  EXPECT_EQ(old_key.fate, rmt::PacketFate::Returned);
  EXPECT_EQ(old_key.packet.app->value, 0xAAAAu);
  ASSERT_TRUE(controller_.write_memory(relinked.value().id, "mem1", 1, 0xBBBB).ok());
  auto new_key = dataplane_.inject(cache_packet(1, 0x8889));
  EXPECT_EQ(new_key.fate, rmt::PacketFate::Returned);
  EXPECT_EQ(new_key.packet.app->value, 0xBBBBu);
}

TEST_F(RelinkTest, NoPacketSeesAMixedVersion) {
  apps::ProgramConfig v1;
  v1.instance_name = "cache";
  auto linked = controller_.link_single(apps::make_program_source("cache", v1));
  ASSERT_TRUE(linked.ok());
  ASSERT_TRUE(controller_.write_memory(linked.value().id, "mem1", 0, 7).ok());

  // At every intermediate step of the relink, a hit packet must be served
  // by one complete version: always Returned (both versions cache the key)
  // and never the miss path.
  controller_.updates().set_step_observer([&] {
    const auto result = dataplane_.inject(cache_packet(1, 0x8888));
    ASSERT_EQ(result.fate, rmt::PacketFate::Returned);
  });
  apps::ProgramConfig v2 = v1;
  v2.elastic_cases = 6;
  auto relinked =
      controller_.relink(linked.value().id, apps::make_program_source("cache", v2));
  ASSERT_TRUE(relinked.ok()) << relinked.error().str();
}

TEST_F(RelinkTest, FailedRelinkKeepsOldVersionRunning) {
  apps::ProgramConfig v1;
  v1.instance_name = "cache";
  auto linked = controller_.link_single(apps::make_program_source("cache", v1));
  ASSERT_TRUE(linked.ok());

  // Invalid source: relink must fail and leave v1 untouched.
  auto bad = controller_.relink(linked.value().id, "program broken { NOT_A_PRIM; }");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(controller_.program_count(), 1u);
  EXPECT_EQ(dataplane_.inject(cache_packet(1, 0x8888)).fate, rmt::PacketFate::Returned);

  // Unknown id.
  EXPECT_FALSE(controller_.relink(999, apps::make_program_source("cache", v1)).ok());
}

TEST_F(RelinkTest, MemoryCarryOverTruncatesToNewSize) {
  apps::ProgramConfig v1;
  v1.instance_name = "cache";
  v1.mem_buckets = 256;
  auto linked = controller_.link_single(apps::make_program_source("cache", v1));
  ASSERT_TRUE(linked.ok());
  ASSERT_TRUE(controller_.write_memory(linked.value().id, "mem1", 100, 42).ok());

  apps::ProgramConfig v2 = v1;
  v2.mem_buckets = 64;  // shrink
  auto relinked =
      controller_.relink(linked.value().id, apps::make_program_source("cache", v2));
  ASSERT_TRUE(relinked.ok()) << relinked.error().str();
  // Address 100 no longer exists; address range shrank cleanly.
  EXPECT_FALSE(controller_.read_memory(relinked.value().id, "mem1", 100).ok());
  EXPECT_TRUE(controller_.read_memory(relinked.value().id, "mem1", 63).ok());
}

// --------------------------------------------------------------------------
// Multi-switch chain.
// --------------------------------------------------------------------------

TEST(SwitchChain, LongProgramRunsAcrossTwoSwitchesWithoutRecirculation) {
  // hh needs two rounds; on a 2-switch chain, round-1 executes on the
  // second switch instead of recirculating.
  dp::SwitchChain chain(2, dp::DataplaneSpec{}, rmt::ParserConfig{});
  SimClock clock0, clock1;
  ctrl::Controller c0(chain.switch_at(0), clock0);
  ctrl::Controller c1(chain.switch_at(1), clock1);

  apps::ProgramConfig config;
  config.instance_name = "hh";
  config.threshold = 5;
  const std::string source = apps::make_program_source("hh", config);
  ASSERT_TRUE(c0.link_single(source).ok());
  ASSERT_TRUE(c1.link_single(source).ok());

  int reported = 0;
  for (int i = 0; i < 20; ++i) {
    const auto result = chain.inject(hh_packet(0x0a000010));
    // One hop to the second switch per packet, zero recirculation passes
    // on either switch.
    EXPECT_EQ(result.recirc_passes, 1);
    if (result.fate == rmt::PacketFate::Reported) ++reported;
  }
  EXPECT_EQ(reported, 1);
  EXPECT_EQ(chain.switch_at(0).pipeline().total_recirc_passes(), 20u);

  // Behavior identical to a single switch with recirculation.
  SimClock clock;
  dp::RunproDataplane single(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller cs(single, clock);
  ASSERT_TRUE(cs.link_single(source).ok());
  int single_reported = 0;
  for (int i = 0; i < 20; ++i) {
    if (single.inject(hh_packet(0x0a000010)).fate == rmt::PacketFate::Reported) {
      ++single_reported;
    }
  }
  EXPECT_EQ(single_reported, reported);
}

TEST(SwitchChain, ShortProgramsExitAtTheFirstSwitch) {
  dp::SwitchChain chain(2, dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  SimClock clock0, clock1;
  ctrl::Controller c0(chain.switch_at(0), clock0);
  ctrl::Controller c1(chain.switch_at(1), clock1);
  apps::ProgramConfig config;
  config.instance_name = "cache";
  const std::string source = apps::make_program_source("cache", config);
  ASSERT_TRUE(c0.link_single(source).ok());
  ASSERT_TRUE(c1.link_single(source).ok());

  const auto result = chain.inject(cache_packet(1, 0x9999));
  EXPECT_EQ(result.fate, rmt::PacketFate::Forwarded);
  EXPECT_EQ(result.egress_port, 32);
  EXPECT_EQ(result.recirc_passes, 0);
  // The second switch never saw the packet.
  EXPECT_EQ(chain.switch_at(1).pipeline().packets_in(), 0u);
}

TEST(SwitchChain, RunsOffTheEndWhenTooShort) {
  // A 1-switch "chain" cannot host hh's second round.
  dp::SwitchChain chain(1, dp::DataplaneSpec{}, rmt::ParserConfig{});
  SimClock clock;
  ctrl::Controller c0(chain.switch_at(0), clock);
  apps::ProgramConfig config;
  config.instance_name = "hh";
  ASSERT_TRUE(c0.link_single(apps::make_program_source("hh", config)).ok());
  EXPECT_EQ(chain.inject(hh_packet(0x0a000010)).fate, rmt::PacketFate::RecircLimit);
}

TEST(SwitchChain, ChainCompatibilityCheck) {
  // hh touches each vmem in exactly one round: compatible.
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  apps::ProgramConfig config;
  config.instance_name = "hh";
  auto linked = controller.link_single(apps::make_program_source("hh", config));
  ASSERT_TRUE(linked.ok());
  const auto* installed = controller.program(linked.value().id);
  EXPECT_TRUE(dp::SwitchChain::chain_compatible(installed->ir.vmem_depths,
                                                installed->alloc.x,
                                                dataplane.spec().total_rpbs()));

  // A program with sequential access to one vmem is NOT chain-compatible
  // (constraint-(5) adjustment, DESIGN.md): the two rounds would live on
  // different switches' memories.
  auto rw = controller.link_single(
      "@ m 64\n"
      "program rw(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  LOADI(mar, 0);\n"
      "  MEMREAD(m);\n"
      "  LOADI(mar, 1);\n"
      "  MEMWRITE(m);\n"
      "}\n");
  ASSERT_TRUE(rw.ok()) << rw.error().str();
  const auto* rw_installed = controller.program(rw.value().id);
  EXPECT_FALSE(dp::SwitchChain::chain_compatible(rw_installed->ir.vmem_depths,
                                                 rw_installed->alloc.x,
                                                 dataplane.spec().total_rpbs()));
}

TEST(SwitchChain, RelinkOnChainSwitchesMidTraffic) {
  // Incremental update composes with chains: re-link the hh program (new
  // threshold) on both switches; traffic keeps flowing and the new
  // threshold takes effect.
  dp::SwitchChain chain(2, dp::DataplaneSpec{}, rmt::ParserConfig{});
  SimClock clock0, clock1;
  ctrl::Controller c0(chain.switch_at(0), clock0);
  ctrl::Controller c1(chain.switch_at(1), clock1);

  apps::ProgramConfig v1;
  v1.instance_name = "hh";
  v1.threshold = 1000;  // effectively never fires
  const std::string source_v1 = apps::make_program_source("hh", v1);
  auto id0 = c0.link_single(source_v1);
  auto id1 = c1.link_single(source_v1);
  ASSERT_TRUE(id0.ok());
  ASSERT_TRUE(id1.ok());

  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(chain.inject(hh_packet(0x0a000021)).fate, rmt::PacketFate::Reported);
  }

  apps::ProgramConfig v2 = v1;
  v2.threshold = 3;
  const std::string source_v2 = apps::make_program_source("hh", v2);
  ASSERT_TRUE(c0.relink(id0.value().id, source_v2).ok());
  ASSERT_TRUE(c1.relink(id1.value().id, source_v2).ok());

  int reported = 0;
  for (int i = 0; i < 10; ++i) {
    if (chain.inject(hh_packet(0x0a000022)).fate == rmt::PacketFate::Reported) {
      ++reported;
    }
  }
  EXPECT_EQ(reported, 1);
}

// Long-running soak (excluded from the default run; enable with
// --gtest_also_run_disabled_tests): thousands of random lifecycle
// operations with traffic interleaved.
TEST(Soak, DISABLED_LongLifecycleWithTraffic) {
  dp::RunproDataplane dataplane(dp::DataplaneSpec{},
                                rmt::ParserConfig{{7777, 7788, 9999, 5555}});
  SimClock clock;
  ctrl::Controller controller(dataplane, clock);
  Rng rng(99);
  std::vector<ProgramId> live;
  const auto& catalog = apps::program_catalog();
  for (int step = 0; step < 5000; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.5 || live.empty()) {
      const auto& info = catalog[rng.uniform(catalog.size())];
      apps::ProgramConfig config;
      config.instance_name = info.key + "_s" + std::to_string(step);
      config.mem_buckets = 32u << rng.uniform(4);
      auto linked = controller.link_single(apps::make_program_source(info.key, config));
      if (linked.ok()) live.push_back(linked.value().id);
    } else {
      const std::size_t pick = rng.uniform(live.size());
      ASSERT_TRUE(controller.revoke(live[pick]).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    // A little traffic between operations.
    rmt::Packet pkt;
    pkt.ipv4 = rmt::Ipv4Header{.src = rng.next_u32(), .dst = rng.next_u32(), .proto = 17};
    pkt.udp = rmt::UdpHeader{static_cast<std::uint16_t>(rng.uniform(65536)), 7777};
    (void)dataplane.inject(pkt);
  }
  for (ProgramId id : live) ASSERT_TRUE(controller.revoke(id).ok());
  EXPECT_DOUBLE_EQ(controller.resources().total_memory_utilization(), 0.0);
}

}  // namespace
}  // namespace p4runpro
