// Async control channel: the per-engine writer thread must reproduce the
// serial channel's virtual-time charges and dataplane state byte-for-byte
// on clean runs, coalesce adjacent same-kind batches into one submission
// (skipping the per-batch sync overhead), surface its queue depth and the
// session-lock hold time in the metrics registry / report / time-series
// store, and stamp retrospectively recorded bfrt spans with the trace id
// captured at submit time. (The fault-path guarantees live in the
// DeployTxn/ChainFaultMatrix async sweeps; the TSan stress lives in
// concurrent_link_test.cpp.)
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/result.h"
#include "control/controller.h"
#include "control/inspect.h"
#include "control/resource_manager.h"
#include "control/update_engine.h"
#include "dataplane/runpro_dataplane.h"
#include "dataplane/write_op.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace p4runpro {
namespace {

std::string cache_source() {
  apps::ProgramConfig config;
  config.instance_name = "cache";
  config.mem_buckets = 64;
  return apps::make_program_source("cache", config);
}

std::string hh_source() {
  apps::ProgramConfig config;
  config.instance_name = "hh";
  config.mem_buckets = 64;
  return apps::make_program_source("hh", config);
}

struct Bed {
  SimClock clock;
  obs::Telemetry telemetry;
  dp::RunproDataplane dataplane{dp::DataplaneSpec{}, rmt::ParserConfig{{7777}}};
  ctrl::Controller controller{dataplane, clock, {}, {}, &telemetry};

  Bed() { controller.set_fixed_alloc_charge_ms(3.0); }
};

/// Full physical dataplane state, for serial-vs-async parity checks.
struct PlaneState {
  std::vector<std::size_t> table_sizes;
  std::vector<std::vector<Word>> memory;
  std::size_t recirc_entries = 0;

  friend bool operator==(const PlaneState&, const PlaneState&) = default;
};

PlaneState plane_state(dp::RunproDataplane& dataplane) {
  PlaneState state;
  for (int rpb = 1; rpb <= dataplane.spec().total_rpbs(); ++rpb) {
    state.table_sizes.push_back(dataplane.rpb(rpb).table().size());
    std::vector<Word> words;
    words.reserve(dataplane.spec().memory_per_rpb);
    for (std::uint32_t a = 0; a < dataplane.spec().memory_per_rpb; ++a) {
      words.push_back(dataplane.rpb(rpb).memory().read(a));
    }
    state.memory.push_back(std::move(words));
  }
  state.recirc_entries = dataplane.recirc_block().entries();
  return state;
}

TEST(AsyncChannel, CleanRunsMatchSerialVirtualTimeAndState) {
  // Same workload, two channel modes: normal install layouts never split a
  // charged batch group, so the async channel's charge sequence — and with
  // it the deployment's virtual-time cost — is byte-identical to serial.
  Bed serial;
  Bed async;
  async.controller.set_async_writes(true);
  ASSERT_TRUE(async.controller.async_writes());

  auto s1 = serial.controller.link_single(cache_source());
  auto a1 = async.controller.link_single(cache_source());
  ASSERT_TRUE(s1.ok()) << s1.error().str();
  ASSERT_TRUE(a1.ok()) << a1.error().str();
  EXPECT_DOUBLE_EQ(s1.value().stats.update_ms, a1.value().stats.update_ms);
  EXPECT_DOUBLE_EQ(s1.value().stats.deploy_ms(), a1.value().stats.deploy_ms());

  auto s2 = serial.controller.link_single(hh_source());
  auto a2 = async.controller.link_single(hh_source());
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(a2.ok());
  EXPECT_DOUBLE_EQ(s2.value().stats.update_ms, a2.value().stats.update_ms);

  EXPECT_EQ(serial.clock.now_ns(), async.clock.now_ns());
  EXPECT_TRUE(plane_state(serial.dataplane) == plane_state(async.dataplane));

  // Revoke (memory reset + deferred frees on the async side) keeps parity.
  ASSERT_TRUE(serial.controller.revoke(s2.value().id).ok());
  ASSERT_TRUE(async.controller.revoke(a2.value().id).ok());
  EXPECT_EQ(serial.clock.now_ns(), async.clock.now_ns());
  EXPECT_TRUE(plane_state(serial.dataplane) == plane_state(async.dataplane));
  EXPECT_EQ(serial.controller.resources().total_memory_utilization(),
            async.controller.resources().total_memory_utilization());
}

TEST(AsyncChannel, CoalescesAdjacentSameKindBatchesOnTheChannel) {
  // A hand-built op-log that splits one charged kind around an uncharged
  // carry-over write: [AddRecirc][WriteMemRange][AddRecirc]. The serial
  // channel pays the per-batch sync twice; the async channel folds the
  // trailing group into the predecessor's submission (same kind, no idle
  // gap) and skips one 500 us overhead — state stays identical.
  auto make_batch = [] {
    dp::WriteBatch batch;
    batch.add_recirc(1, 2);
    batch.write_mem_range(1, 0, std::vector<Word>{11, 22, 33}, "m1");
    batch.add_recirc(2, 2);
    return batch;
  };

  SimClock serial_clock;
  obs::Telemetry serial_telemetry;
  dp::RunproDataplane serial_plane{dp::DataplaneSpec{}, rmt::ParserConfig{{7777}}};
  ctrl::ResourceManager serial_resources{serial_plane.spec()};
  ctrl::UpdateEngine serial_engine{serial_plane, serial_resources, serial_clock,
                                   ctrl::BfrtCostModel{}};
  serial_engine.set_telemetry(&serial_telemetry);
  const auto serial_batch = make_batch();
  ASSERT_TRUE(serial_engine.execute_install(serial_batch).ok());
  const double serial_ms = serial_clock.now_ms();

  SimClock async_clock;
  obs::Telemetry async_telemetry;
  dp::RunproDataplane async_plane{dp::DataplaneSpec{}, rmt::ParserConfig{{7777}}};
  ctrl::ResourceManager async_resources{async_plane.spec()};
  ctrl::UpdateEngine async_engine{async_plane, async_resources, async_clock,
                                  ctrl::BfrtCostModel{}};
  async_engine.set_telemetry(&async_telemetry);
  async_engine.set_async(true);
  const auto async_batch = make_batch();
  ASSERT_TRUE(async_engine.execute_install(async_batch).ok());
  const double async_ms = async_clock.now_ms();

  // Two batches of one entry each: serial = 2 x (500 + 500) us; coalesced
  // = (500 + 500) + 500 us. Exactly one per-batch overhead amortized away.
  EXPECT_DOUBLE_EQ(serial_ms, 2.0);
  EXPECT_DOUBLE_EQ(async_ms, 1.5);
  EXPECT_TRUE(plane_state(serial_plane) == plane_state(async_plane));

  EXPECT_EQ(
      async_telemetry.metrics.counter("ctrl.bfrt.coalesced_batches").value(), 1u);
  EXPECT_EQ(async_telemetry.metrics.counter("ctrl.bfrt.batches").value(), 2u);
  EXPECT_EQ(serial_telemetry.metrics.find_counter("ctrl.bfrt.coalesced_batches"),
            nullptr);

  // The replayed spans mark the coalesced submission.
  int batch_spans = 0;
  int coalesced_spans = 0;
  for (const auto& span : async_telemetry.tracer.spans()) {
    if (span.name != "bfrt.batch") continue;
    ++batch_spans;
    for (const auto& [key, value] : span.args) {
      if (key == "coalesced" && value == "1") ++coalesced_spans;
    }
  }
  EXPECT_EQ(batch_spans, 2);
  EXPECT_EQ(coalesced_spans, 1);
}

TEST(AsyncChannel, LockHoldAndQueueDepthSurfaceInReportAndSeries) {
  Bed bed;
  bed.controller.set_async_writes(true);
  ASSERT_TRUE(bed.controller.link_single(cache_source()).ok());

  // Both session-lock occupancy and the channel's queue depth are live
  // registry citizens...
  const auto& metrics = bed.telemetry.metrics;
  const auto* hold = metrics.find_histogram("ctrl.commit.lock_hold_ms");
  ASSERT_NE(hold, nullptr);
  EXPECT_GT(hold->count(), 0u);
  EXPECT_GT(hold->sum(), 0.0);

  const std::string report = ctrl::telemetry_report(bed.telemetry);
  EXPECT_NE(report.find("ctrl.commit.lock_hold_ms"), std::string::npos);
  EXPECT_NE(report.find("ctrl.channel.queue_depth"), std::string::npos);

  // ...and land in the time-series store on the next sampling tick.
  bed.telemetry.series.sample(bed.telemetry.metrics, bed.clock.now_ns());
  EXPECT_NE(bed.telemetry.series.series("ctrl.channel.queue_depth"), nullptr);
  EXPECT_NE(bed.telemetry.series.series("ctrl.commit.lock_hold_ms.p50"), nullptr);
}

TEST(AsyncChannel, ReplayedBfrtSpansCarryTheSubmitTimeTraceId) {
  Bed bed;
  bed.controller.set_async_writes(true);
  auto linked = bed.controller.link_single(cache_source());
  ASSERT_TRUE(linked.ok());
  ASSERT_NE(linked.value().trace, 0u);

  // The writer runs outside any trace scope; the spans it replays at settle
  // time must still carry the link operation's trace id, closed and
  // charge-accurate in virtual time.
  int bfrt_spans = 0;
  for (const auto& span : bed.telemetry.tracer.spans()) {
    if (span.cat != "bfrt") continue;
    ++bfrt_spans;
    EXPECT_EQ(span.trace, linked.value().trace) << span.name;
    EXPECT_FALSE(span.open);
    EXPECT_GT(span.end_vns, span.start_vns);
  }
  EXPECT_GT(bfrt_spans, 0);
}

TEST(AsyncChannel, TogglingTheChannelDrainsAndRestoresSerialBehaviour) {
  Bed bed;
  bed.controller.set_async_writes(true);
  ASSERT_TRUE(bed.controller.link_single(cache_source()).ok());
  bed.controller.set_async_writes(false);
  EXPECT_FALSE(bed.controller.async_writes());

  // Back in serial mode the next deploy runs inline — and the drained
  // channel left a zeroed queue-depth gauge behind.
  auto linked = bed.controller.link_single(hh_source());
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  for (const auto& [name, value] : bed.telemetry.metrics.sampled_gauges()) {
    if (name == "ctrl.channel.queue_depth") {
      EXPECT_EQ(value, 0.0);
    }
  }
  EXPECT_EQ(bed.controller.program_count(), 2u);
}

}  // namespace
}  // namespace p4runpro
