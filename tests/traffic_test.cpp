// Traffic-generation and replay tests: determinism, rate accuracy, flow
// structure (Zipf heavy tail), cache-workload hit-rate engineering, and
// the replayer's metering.
#include <gtest/gtest.h>

#include "common/clock.h"
#include "dataplane/runpro_dataplane.h"
#include "traffic/flowgen.h"
#include "traffic/replay.h"
#include "traffic/workloads.h"

namespace p4runpro::traffic {
namespace {

TEST(FlowGen, TraceIsDeterministic) {
  CampusTraceConfig config;
  config.duration_s = 0.5;
  const auto a = make_campus_trace(config);
  const auto b = make_campus_trace(config);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  for (std::size_t i = 0; i < a.packets.size(); i += 97) {
    EXPECT_EQ(a.packets[i].t_ns, b.packets[i].t_ns);
    EXPECT_EQ(a.packets[i].pkt.five_tuple(), b.packets[i].pkt.five_tuple());
  }
}

TEST(FlowGen, RateMatchesConfig) {
  CampusTraceConfig config;
  config.duration_s = 2.0;
  config.rate_mbps = 100.0;
  const auto trace = make_campus_trace(config);
  // Offered rate (wire bytes + preamble/IPG are charged in spacing, so the
  // payload-only rate is slightly below the configured one).
  const double mbps = static_cast<double>(trace.total_bytes) * 8.0 /
                      (config.duration_s * 1e6);
  EXPECT_GT(mbps, 80.0);
  EXPECT_LE(mbps, 101.0);
}

TEST(FlowGen, TimestampsMonotone) {
  CampusTraceConfig config;
  config.duration_s = 0.3;
  const auto trace = make_campus_trace(config);
  for (std::size_t i = 1; i < trace.packets.size(); ++i) {
    EXPECT_GE(trace.packets[i].t_ns, trace.packets[i - 1].t_ns);
  }
}

TEST(FlowGen, ZipfHeavyTail) {
  CampusTraceConfig config;
  config.duration_s = 3.0;
  const auto trace = make_campus_trace(config);
  const auto counts = flow_counts(trace);
  std::uint64_t max_count = 0;
  std::uint64_t total = 0;
  for (const auto& [tuple, count] : counts) {
    max_count = std::max(max_count, count);
    total += count;
  }
  // The top flow dominates (skew 1.1) but does not monopolize.
  EXPECT_GT(static_cast<double>(max_count) / static_cast<double>(total), 0.02);
  EXPECT_LT(static_cast<double>(max_count) / static_cast<double>(total), 0.5);
  // Plenty of distinct flows appear.
  EXPECT_GT(counts.size(), 1000u);
}

TEST(FlowGen, FlowsMatchMeasurementFilters) {
  CampusTraceConfig config;
  config.duration_s = 0.2;
  const auto trace = make_campus_trace(config);
  for (const auto& tp : trace.packets) {
    ASSERT_TRUE(tp.pkt.ipv4.has_value());
    EXPECT_EQ(tp.pkt.ipv4->src & 0xffff0000u, 0x0a000000u);
    EXPECT_EQ(tp.pkt.ipv4->dst & 0xffff0000u, 0x0a000000u);
    EXPECT_TRUE(tp.pkt.tcp.has_value() || tp.pkt.udp.has_value());
  }
}

TEST(FlowGen, HeavyHittersThresholdConsistent) {
  CampusTraceConfig config;
  config.duration_s = 2.0;
  const auto trace = make_campus_trace(config);
  const auto counts = flow_counts(trace);
  const auto heavy = heavy_hitters(trace, 100);
  for (const auto& tuple : heavy) {
    EXPECT_GT(counts.at(tuple), 100u);
  }
  // Everything above the threshold is in the list.
  std::size_t above = 0;
  for (const auto& [tuple, count] : counts) {
    if (count > 100) ++above;
  }
  EXPECT_EQ(heavy.size(), above);
}

TEST(CacheWorkload, HitRateEngineering) {
  CacheWorkloadConfig config;
  config.duration_s = 3.0;
  const auto workload = make_cache_workload(config);
  EXPECT_GE(workload.expected_hit_rate, 0.6);
  EXPECT_LT(workload.expected_hit_rate, 0.85);
  ASSERT_FALSE(workload.cached_keys.empty());

  // Empirical hit rate of the trace against the cached key set.
  std::uint64_t hits = 0;
  for (const auto& tp : workload.trace.packets) {
    ASSERT_TRUE(tp.pkt.app.has_value());
    const Word key = tp.pkt.app->key1;
    if (key >= 0x8888u &&
        key < 0x8888u + workload.cached_keys.size()) {
      ++hits;
    }
  }
  const double rate = static_cast<double>(hits) /
                      static_cast<double>(workload.trace.packets.size());
  EXPECT_NEAR(rate, workload.expected_hit_rate, 0.05);
}

TEST(Replayer, MetersOfferedAndReceivedRates) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  Replayer replayer(dataplane, clock);
  CampusTraceConfig config;
  config.duration_s = 1.0;
  const auto trace = make_campus_trace(config);

  const auto samples = replayer.run(trace, {});
  ASSERT_GE(samples.size(), 19u);  // 50 ms buckets over 1 s
  for (const auto& s : samples) {
    // Everything is default-forwarded: RX == TX, all on port 0.
    EXPECT_NEAR(s.rx_mbps, s.tx_mbps, 1e-6);
    EXPECT_NEAR(s.port_mbps[0], s.rx_mbps, 1e-6);
    EXPECT_EQ(s.dropped, 0u);
  }
  // The virtual clock advanced by the trace duration.
  EXPECT_NEAR(clock.now_s(), 1.0, 0.05);
}

TEST(Replayer, BucketCallbackFiresInOrder) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  Replayer replayer(dataplane, clock);
  CampusTraceConfig config;
  config.duration_s = 0.5;
  const auto trace = make_campus_trace(config);

  std::vector<double> ticks;
  Replayer::Options options;
  options.on_bucket = [&ticks](double t) { ticks.push_back(t); };
  (void)replayer.run(trace, options);
  ASSERT_GE(ticks.size(), 9u);
  for (std::size_t i = 1; i < ticks.size(); ++i) EXPECT_GT(ticks[i], ticks[i - 1]);
}

TEST(Workloads, UniqueInstanceNames) {
  auto workload = WorkloadGenerator::all_mixed();
  std::set<std::string> names;
  for (int i = 0; i < 200; ++i) {
    const auto request = workload.next();
    EXPECT_TRUE(names.insert(request.config.instance_name).second);
    EXPECT_FALSE(request.source.empty());
  }
}

TEST(Workloads, SingleGeneratorYieldsOneKey) {
  auto workload = WorkloadGenerator::single("lb", 128, 4);
  for (int i = 0; i < 10; ++i) {
    const auto request = workload.next();
    EXPECT_EQ(request.key, "lb");
    EXPECT_EQ(request.config.mem_buckets, 128u);
    EXPECT_EQ(request.config.elastic_cases, 4);
  }
}

TEST(Workloads, MixedDrawsFromThreePrograms) {
  auto workload = WorkloadGenerator::mixed();
  std::set<std::string> seen;
  for (int i = 0; i < 60; ++i) seen.insert(workload.next().key);
  EXPECT_EQ(seen, (std::set<std::string>{"cache", "lb", "hh"}));
}

}  // namespace
}  // namespace p4runpro::traffic
