// Hash-truncation property (paper §6.4 / FlyMon): "if the hash algorithms
// are perfectly uniform, truncating the hash algorithm with a high output
// width has the same collision probability as one with the same lower
// output width". The mask step of the address translation relies on this:
// masked CRC16 outputs must spread keys uniformly over any power-of-two
// bucket count.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "rmt/crc.h"

namespace p4runpro::rmt {
namespace {

class HashTruncation : public ::testing::TestWithParam<std::tuple<HashAlgo, int>> {};

TEST_P(HashTruncation, MaskedOutputIsUniform) {
  const auto [algo, bits] = GetParam();
  const std::uint32_t buckets = 1u << bits;
  std::vector<std::uint32_t> counts(buckets, 0);
  constexpr int kSamples = 1 << 15;
  for (std::uint32_t i = 0; i < kSamples; ++i) {
    // 13-byte keys shaped like 5-tuples.
    std::array<std::uint8_t, 13> key{};
    std::memcpy(key.data(), &i, sizeof i);
    key[12] = static_cast<std::uint8_t>(i * 7);
    ++counts[run_hash(algo, key) & (buckets - 1)];
  }
  // Chi-square statistic against the uniform expectation; df = buckets-1.
  const double expected = static_cast<double>(kSamples) / buckets;
  double chi2 = 0.0;
  for (auto c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  // Very generous bound: mean of the chi-square distribution is df; allow
  // 1.5x (a broken truncation blows this up by orders of magnitude).
  EXPECT_LT(chi2, 1.5 * static_cast<double>(buckets - 1))
      << "algo " << static_cast<int>(algo) << " bits " << bits;
  // Every bucket gets hit.
  for (std::uint32_t b = 0; b < buckets; ++b) {
    EXPECT_GT(counts[b], 0u) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgosByWidth, HashTruncation,
    ::testing::Combine(::testing::Values(HashAlgo::Crc16Buypass,
                                         HashAlgo::Crc16Mcrf4xx,
                                         HashAlgo::Crc16AugCcitt,
                                         HashAlgo::Crc16Dds110),
                       ::testing::Values(4, 8, 10)),
    [](const ::testing::TestParamInfo<std::tuple<HashAlgo, int>>& info) {
      return "algo" + std::to_string(static_cast<int>(std::get<0>(info.param))) +
             "_bits" + std::to_string(std::get<1>(info.param));
    });

TEST(HashTruncation, TruncationPreservesCollisionRate) {
  // Empirically compare collisions of (CRC16 & 0x3ff) against an ideal
  // 10-bit spread: the birthday-bound collision count over N samples must
  // be within a factor of ~1.3 of the expectation N - B(1 - (1-1/B)^N).
  constexpr std::uint32_t kBuckets = 1024;
  constexpr int kSamples = 2048;
  std::vector<bool> seen(kBuckets, false);
  int collisions = 0;
  for (std::uint32_t i = 0; i < kSamples; ++i) {
    std::array<std::uint8_t, 13> key{};
    std::memcpy(key.data(), &i, sizeof i);
    const auto bucket = run_hash(HashAlgo::Crc16Mcrf4xx, key) & (kBuckets - 1);
    if (seen[bucket]) {
      ++collisions;
    } else {
      seen[bucket] = true;
    }
  }
  const double expected =
      kSamples - kBuckets * (1.0 - std::pow(1.0 - 1.0 / kBuckets, kSamples));
  EXPECT_GT(collisions, expected * 0.7);
  EXPECT_LT(collisions, expected * 1.3);
}

}  // namespace
}  // namespace p4runpro::rmt
