// pcap I/O tests: write a synthetic trace, read it back, verify structure
// and timestamps survive, and reject malformed files.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "traffic/flowgen.h"
#include "traffic/pcap.h"

namespace p4runpro::traffic {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("p4runpro_pcap_test_" + std::to_string(::getpid()) + ".pcap"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(PcapTest, RoundTripCampusTrace) {
  CampusTraceConfig config;
  config.duration_s = 0.2;
  const auto trace = make_campus_trace(config);
  ASSERT_TRUE(write_pcap(path_, trace).ok());

  auto back = read_pcap(path_, rmt::ParserConfig{});
  ASSERT_TRUE(back.ok()) << back.error().str();
  ASSERT_EQ(back.value().packets.size(), trace.packets.size());
  for (std::size_t i = 0; i < trace.packets.size(); i += 37) {
    const auto& a = trace.packets[i];
    const auto& b = back.value().packets[i];
    EXPECT_EQ(a.pkt.five_tuple(), b.pkt.five_tuple()) << i;
    EXPECT_EQ(a.pkt.wire_len(), b.pkt.wire_len()) << i;
    // Timestamps survive at microsecond resolution.
    EXPECT_NEAR(static_cast<double>(a.t_ns), static_cast<double>(b.t_ns), 1000.0) << i;
  }
}

TEST_F(PcapTest, AppHeaderSurvivesWithParserConfig) {
  CacheWorkloadConfig config;
  config.duration_s = 0.05;
  const auto workload = make_cache_workload(config);
  ASSERT_TRUE(write_pcap(path_, workload.trace).ok());

  auto back = read_pcap(path_, rmt::ParserConfig{{7777}});
  ASSERT_TRUE(back.ok());
  ASSERT_FALSE(back.value().packets.empty());
  for (const auto& tp : back.value().packets) {
    ASSERT_TRUE(tp.pkt.app.has_value());
    EXPECT_EQ(tp.pkt.app->op, 1u);
    EXPECT_GE(tp.pkt.app->key1, 0x8888u);
  }

  // Without the app port configured, the same bytes are plain UDP payload.
  auto plain = read_pcap(path_, rmt::ParserConfig{});
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value().packets.front().pkt.app.has_value());
}

TEST_F(PcapTest, FileIsWiresharkShaped) {
  CampusTraceConfig config;
  config.duration_s = 0.01;
  ASSERT_TRUE(write_pcap(path_, make_campus_trace(config)).ok());
  std::ifstream in(path_, std::ios::binary);
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), 4);
  EXPECT_EQ(magic, 0xa1b2c3d4u);
  std::uint16_t version = 0;
  in.read(reinterpret_cast<char*>(&version), 2);
  EXPECT_EQ(version, 2);
}

TEST_F(PcapTest, RejectsGarbage) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a pcap file at all, sorry";
  }
  EXPECT_FALSE(read_pcap(path_, rmt::ParserConfig{}).ok());
  EXPECT_FALSE(read_pcap("/no/such/file.pcap", rmt::ParserConfig{}).ok());
}

TEST_F(PcapTest, EmptyTraceRoundTrips) {
  ASSERT_TRUE(write_pcap(path_, Trace{}).ok());
  auto back = read_pcap(path_, rmt::ParserConfig{});
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().packets.empty());
}

}  // namespace
}  // namespace p4runpro::traffic
