// Translation-pass tests: pseudo-primitive expansion, offset-step
// insertion, memory alignment across branches, trailing replication, and
// the paper's depth results (L = 10 for the cache program, Fig. 5).
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/program_library.h"
#include "compiler/compiler.h"
#include "compiler/translate.h"

namespace p4runpro::rp {
namespace {

TranslatedProgram must_compile(const std::string& source) {
  auto r = compile_single(source);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().str());
  return r.ok() ? std::move(r).take() : TranslatedProgram{};
}

TranslatedProgram compile_app(const std::string& key, int elastic = 2) {
  apps::ProgramConfig config;
  config.instance_name = key;
  config.elastic_cases = elastic;
  return must_compile(apps::make_program_source(key, config));
}

int count_kind(const TranslatedProgram& p, dp::OpKind kind) {
  return static_cast<int>(
      std::count_if(p.nodes.begin(), p.nodes.end(),
                    [kind](const IrNode& n) { return n.op.kind == kind; }));
}

std::vector<int> depths_of(const TranslatedProgram& p, dp::OpKind kind) {
  std::vector<int> out;
  for (const auto& n : p.nodes) {
    if (n.op.kind == kind) out.push_back(n.depth);
  }
  return out;
}

TEST(Translate, RoundPow2) {
  EXPECT_EQ(round_pow2(1), 1u);
  EXPECT_EQ(round_pow2(2), 2u);
  EXPECT_EQ(round_pow2(3), 4u);
  EXPECT_EQ(round_pow2(10), 16u);  // the paper's "@ port_pool 10"
  EXPECT_EQ(round_pow2(1024), 1024u);
  EXPECT_EQ(round_pow2(1025), 2048u);
}

TEST(Translate, CacheDepthMatchesPaper) {
  // Fig. 5(b): the translated cache AST has L = 10 — offset steps inserted
  // before MEMREAD/MEMWRITE, and the memory ops aligned to one depth.
  const auto p = compile_app("cache");
  EXPECT_EQ(p.depth, 10);

  // Both memory ops (read + write branch) aligned at the same depth.
  const auto mem_depths = depths_of(p, dp::OpKind::Mem);
  ASSERT_EQ(mem_depths.size(), 2u);
  EXPECT_EQ(mem_depths[0], mem_depths[1]);
  EXPECT_EQ(mem_depths[0], 9);

  // The miss-path FORWARD sits parallel to the case bodies at depth 5.
  const auto fwd_depths = depths_of(p, dp::OpKind::Forward);
  ASSERT_EQ(fwd_depths.size(), 1u);
  EXPECT_EQ(fwd_depths[0], 5);
}

TEST(Translate, CacheBranchStructure) {
  const auto p = compile_app("cache");
  // One BRANCH with 2 elastic cases -> 2 entries; 3 branch ids (root + 2).
  const auto branch_it =
      std::find_if(p.nodes.begin(), p.nodes.end(),
                   [](const IrNode& n) { return n.op.kind == dp::OpKind::Branch; });
  ASSERT_NE(branch_it, p.nodes.end());
  EXPECT_EQ(branch_it->op.cases.size(), 2u);
  EXPECT_EQ(branch_it->op.entry_count(), 2);
  EXPECT_EQ(p.num_branches, 3);
  EXPECT_EQ(branch_it->depth, 4);
}

TEST(Translate, OffsetPrecedesEveryMemOp) {
  for (const auto& key : {"cache", "lb", "hh", "cms", "bf", "sumax", "hll"}) {
    const auto p = compile_app(key);
    EXPECT_EQ(count_kind(p, dp::OpKind::Offset), count_kind(p, dp::OpKind::Mem))
        << key;
    // Each Mem node's (only) predecessor chain contains its offset at a
    // strictly smaller depth.
    for (const auto& n : p.nodes) {
      if (n.op.kind != dp::OpKind::Mem) continue;
      ASSERT_EQ(n.preds.size(), 1u);
      const auto& pred = p.nodes[static_cast<std::size_t>(n.preds[0])];
      EXPECT_EQ(pred.op.kind, dp::OpKind::Offset) << key;
      EXPECT_EQ(pred.op.vmem, n.op.vmem) << key;
      EXPECT_LT(pred.depth, n.depth) << key;
    }
  }
}

TEST(Translate, LbTrailingReplicatedIntoForwardCases) {
  // Fig. 16: the DIP rewrite must execute for packets that matched a
  // FORWARD case, so the trailing MEMREAD/MODIFY is replicated under each
  // case branch plus the miss path: 3 copies with 2 elastic cases.
  const auto p = compile_app("lb", 2);
  EXPECT_EQ(count_kind(p, dp::OpKind::Modify), 3);
  // dip_pool is read in 3 parallel branches -> one aligned depth.
  std::vector<int> dip_depths;
  for (const auto& n : p.nodes) {
    if (n.op.kind == dp::OpKind::Mem && n.op.vmem == "dip_pool") {
      dip_depths.push_back(n.depth);
    }
  }
  ASSERT_EQ(dip_depths.size(), 3u);
  EXPECT_EQ(dip_depths[0], dip_depths[1]);
  EXPECT_EQ(dip_depths[1], dip_depths[2]);
}

TEST(Translate, CacheTerminalCasesDoNotReplicateTrailing) {
  // The hit branches end in RETURN/DROP; the trailing FORWARD must exist
  // exactly once (miss path only).
  const auto p = compile_app("cache");
  EXPECT_EQ(count_kind(p, dp::OpKind::Forward), 1);
}

TEST(Translate, PseudoMove) {
  const auto p = must_compile(
      "program p(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  MOVE(har, sar);\n"
      "}\n");
  ASSERT_EQ(p.nodes.size(), 2u);
  EXPECT_EQ(p.nodes[0].op.kind, dp::OpKind::Loadi);
  EXPECT_EQ(p.nodes[0].op.reg0, Reg::Har);
  EXPECT_EQ(p.nodes[0].op.imm, 0u);
  EXPECT_EQ(p.nodes[1].op.kind, dp::OpKind::Add);
}

TEST(Translate, PseudoAddiDeadSupportSkipsBackup) {
  // mar is never used again -> supportive register needs no backup.
  const auto p = must_compile(
      "program p(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  ADDI(har, 5);\n"
      "  MODIFY(hdr.ipv4.ttl, har);\n"
      "}\n");
  EXPECT_EQ(count_kind(p, dp::OpKind::Backup), 0);
  EXPECT_EQ(count_kind(p, dp::OpKind::Restore), 0);
  // LOADI(C, 5); ADD(har, C); MODIFY
  ASSERT_EQ(p.nodes.size(), 3u);
  EXPECT_EQ(p.nodes[0].op.kind, dp::OpKind::Loadi);
  EXPECT_EQ(p.nodes[0].op.imm, 5u);
}

TEST(Translate, PseudoAddiLiveSupportGetsBackup) {
  // Both sar and mar are read after the ADDI, so whichever supportive
  // register is chosen must be backed up and restored (Fig. 4b).
  const auto p = must_compile(
      "program p(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  EXTRACT(hdr.ipv4.src, sar);\n"
      "  EXTRACT(hdr.ipv4.dst, mar);\n"
      "  ADDI(har, 5);\n"
      "  ADD(sar, mar);\n"
      "  MODIFY(hdr.ipv4.ttl, sar);\n"
      "}\n");
  EXPECT_EQ(count_kind(p, dp::OpKind::Backup), 1);
  EXPECT_EQ(count_kind(p, dp::OpKind::Restore), 1);
}

TEST(Translate, SubiUsesTwosComplement) {
  const auto p = must_compile(
      "program p(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  SUBI(har, 7);\n"
      "}\n");
  ASSERT_GE(p.nodes.size(), 2u);
  const auto loadi =
      std::find_if(p.nodes.begin(), p.nodes.end(),
                   [](const IrNode& n) { return n.op.kind == dp::OpKind::Loadi; });
  ASSERT_NE(loadi, p.nodes.end());
  EXPECT_EQ(loadi->op.imm, 0u - 7u);
}

TEST(Translate, DepthsStrictlyIncreaseAlongEdges) {
  for (const auto& info : apps::program_catalog()) {
    const auto p = compile_app(info.key);
    for (const auto& n : p.nodes) {
      for (int pred : n.preds) {
        EXPECT_LT(p.nodes[static_cast<std::size_t>(pred)].depth, n.depth)
            << info.key;
      }
    }
  }
}

TEST(Translate, DepthRequirementsConsistent) {
  for (const auto& info : apps::program_catalog()) {
    const auto p = compile_app(info.key);
    ASSERT_EQ(static_cast<int>(p.depth_reqs.size()), p.depth) << info.key;
    int entries = 0;
    for (const auto& req : p.depth_reqs) entries += req.entries;
    EXPECT_EQ(entries, p.total_entries()) << info.key;
    // Forwarding flags match the nodes.
    for (const auto& n : p.nodes) {
      if (dp::is_forwarding(n.op.kind)) {
        EXPECT_TRUE(p.depth_reqs[static_cast<std::size_t>(n.depth - 1)].forwarding)
            << info.key;
      }
    }
  }
}

TEST(Translate, VmemSizesRounded) {
  const auto p = must_compile(
      "@ m 100\n"
      "program p(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  HASH_5_TUPLE_MEM(m);\n"
      "  MEMADD(m);\n"
      "}\n");
  EXPECT_EQ(p.vmem_sizes.at("m"), 128u);
}

TEST(Translate, HllHasManyInelasticCases) {
  const auto p = compile_app("hll");
  const auto branch_it =
      std::find_if(p.nodes.begin(), p.nodes.end(),
                   [](const IrNode& n) { return n.op.kind == dp::OpKind::Branch; });
  ASSERT_NE(branch_it, p.nodes.end());
  EXPECT_EQ(branch_it->op.cases.size(), 33u);
  // All 33 MEMMAX ops on the same vmem align to a single depth.
  const auto mem_depths = depths_of(p, dp::OpKind::Mem);
  ASSERT_EQ(mem_depths.size(), 33u);
  EXPECT_TRUE(std::all_of(mem_depths.begin(), mem_depths.end(),
                          [&](int d) { return d == mem_depths[0]; }));
}

TEST(Translate, SemanticErrors) {
  // Undeclared memory.
  EXPECT_FALSE(compile_single("program p(<hdr.ipv4.src, 1, 0xff>) { MEMADD(nope); }").ok());
  // Wrong argument type.
  EXPECT_FALSE(compile_single("program p(<hdr.ipv4.src, 1, 0xff>) { LOADI(5, har); }").ok());
  // Unknown field.
  EXPECT_FALSE(compile_single("program p(<hdr.ipv4.src, 1, 0xff>) { EXTRACT(hdr.bogus.x, har); }").ok());
  // Read-only metadata modification.
  EXPECT_FALSE(compile_single("program p(<hdr.ipv4.src, 1, 0xff>) { MODIFY(meta.qdepth, har); }").ok());
  // Unfilterable field in the traffic filter.
  EXPECT_FALSE(compile_single("program p(<hdr.nc.op, 1, 0xff>) { DROP; }").ok());
}

}  // namespace
}  // namespace p4runpro::rp
