// Deploy-transaction rollback tests: a control-channel fault at ANY write
// index of a deploy, relink or revoke unwinds the rollback journal to a
// byte-identical pre-transaction state — dataplane tables, memory
// contents, resource occupancy and the installed-program map all included.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/result.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

std::string cache_source(std::uint32_t mem_buckets = 64) {
  apps::ProgramConfig config;
  config.instance_name = "cache";
  config.mem_buckets = mem_buckets;
  return apps::make_program_source("cache", config);
}

std::string hh_source() {
  apps::ProgramConfig config;
  config.instance_name = "hh";
  config.mem_buckets = 64;
  return apps::make_program_source("hh", config);
}

rmt::Packet cache_read(Word key) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{.src_port = 4000, .dst_port = 7777};
  pkt.app = rmt::AppHeader{.op = 1, .key1 = key, .key2 = 0, .value = 0};
  pkt.ingress_port = 5;
  return pkt;
}

/// Everything a rolled-back transaction must leave untouched.
struct StateSnapshot {
  std::vector<std::size_t> rpb_table_sizes;
  std::vector<std::vector<Word>> rpb_memory;  ///< full physical contents
  std::vector<std::size_t> filter_table_sizes;
  std::size_t recirc_entries = 0;
  std::vector<std::uint32_t> entries_free;
  std::vector<std::uint32_t> memory_used;
  std::vector<std::vector<ctrl::MemBlock>> free_mem;
  std::vector<ProgramId> running;

  friend bool operator==(const StateSnapshot&, const StateSnapshot&) = default;
};

StateSnapshot capture(dp::RunproDataplane& dataplane, const ctrl::Controller& ctrl) {
  StateSnapshot snap;
  const int total = dataplane.spec().total_rpbs();
  for (int rpb = 1; rpb <= total; ++rpb) {
    snap.rpb_table_sizes.push_back(dataplane.rpb(rpb).table().size());
    std::vector<Word> words;
    words.reserve(dataplane.spec().memory_per_rpb);
    for (std::uint32_t a = 0; a < dataplane.spec().memory_per_rpb; ++a) {
      words.push_back(dataplane.rpb(rpb).memory().read(a));
    }
    snap.rpb_memory.push_back(std::move(words));
    snap.memory_used.push_back(ctrl.resources().memory_used(rpb));
  }
  for (int p = 0; p < dp::kNumParsePaths; ++p) {
    snap.filter_table_sizes.push_back(
        dataplane.init_block().table(static_cast<dp::ParsePath>(p)).size());
  }
  snap.recirc_entries = dataplane.recirc_block().entries();
  const auto resources = ctrl.resources().snapshot();
  snap.entries_free = resources.free_entries;
  snap.free_mem = resources.free_mem;
  snap.running = ctrl.running_programs();
  return snap;
}

struct Testbed {
  SimClock clock;
  dp::RunproDataplane dataplane{dp::DataplaneSpec{}, rmt::ParserConfig{{7777}}};
  ctrl::Controller controller{dataplane, clock};
};

/// Every fault sweep runs twice: once through the serial channel (fault
/// raised on the caller's thread, unwound in place) and once through the
/// async writer (fault raised on the writer thread, reported at settle
/// time, unwound by the same journal). Both must restore byte-identical
/// state at every write index.
class DeployTxnFaults : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { bed.controller.set_async_writes(GetParam()); }
  Testbed bed;
};

INSTANTIATE_TEST_SUITE_P(Channels, DeployTxnFaults, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "async" : "serial";
                         });

TEST_P(DeployTxnFaults, FaultSweepRestoresStateByteIdentically) {
  Testbed& bed = this->bed;
  auto cache = bed.controller.link_single(cache_source());
  ASSERT_TRUE(cache.ok()) << cache.error().str();
  // Populate the running program's memory so a sloppy rollback that resets
  // or leaks writes into neighbouring blocks shows up as a byte diff.
  for (MemAddr a = 0; a < 16; ++a) {
    ASSERT_TRUE(bed.controller.write_memory(cache.value().id, "mem1", a, 100 + a).ok());
  }
  const StateSnapshot before = capture(bed.dataplane, bed.controller);

  // Deploy once per write index; every faulted attempt must leave the
  // switch exactly as it was, and eventually the fault lands beyond the
  // batch and the deploy goes through.
  int fault = 0;
  for (;; ++fault) {
    ASSERT_LT(fault, 10'000) << "fault index never exceeded the write count";
    bed.controller.updates().set_fault_after_writes(fault);
    auto linked = bed.controller.link_single(hh_source());
    if (linked.ok()) break;
    EXPECT_EQ(linked.error().code, ErrorCode::ChannelError);
    EXPECT_NE(linked.error().str().find("[ChannelError]"), std::string::npos)
        << linked.error().str();
    EXPECT_TRUE(capture(bed.dataplane, bed.controller) == before)
        << "state diverged after a fault at write index " << fault;
  }
  // The hh program has recirc + RPB + filter writes: the sweep exercised
  // a rollback from inside every batch, not just the first.
  EXPECT_GT(fault, 3);
  bed.controller.updates().set_fault_after_writes(-1);

  // And a full revoke of the new program restores the same state again.
  ASSERT_TRUE(bed.controller.revoke_by_name("hh").ok());
  EXPECT_TRUE(capture(bed.dataplane, bed.controller) == before);
}

TEST_P(DeployTxnFaults, RelinkFaultSweepKeepsOldVersionIntact) {
  Testbed& bed = this->bed;
  auto cache = bed.controller.link_single(cache_source());
  ASSERT_TRUE(cache.ok()) << cache.error().str();
  const ProgramId old_id = cache.value().id;
  for (MemAddr a = 0; a < 16; ++a) {
    ASSERT_TRUE(bed.controller.write_memory(old_id, "mem1", a, 7000 + a).ok());
  }
  const StateSnapshot before = capture(bed.dataplane, bed.controller);
  const auto before_mem = bed.controller.dump_memory(old_id, "mem1");
  ASSERT_TRUE(before_mem.ok());

  // Relink faults hit two windows: installing the new version (including
  // the staged carry-over memory writes) and retiring the old one. In both
  // the old version must come back byte-identical and keep running.
  int fault = 0;
  ProgramId new_id = 0;
  for (;; ++fault) {
    ASSERT_LT(fault, 10'000);
    bed.controller.updates().set_fault_after_writes(fault);
    auto relinked = bed.controller.relink(old_id, cache_source());
    if (relinked.ok()) {
      new_id = relinked.value().id;
      break;
    }
    EXPECT_EQ(relinked.error().code, ErrorCode::ChannelError);
    ASSERT_NE(bed.controller.program(old_id), nullptr);
    EXPECT_EQ(bed.controller.program_count(), 1u);
    EXPECT_TRUE(capture(bed.dataplane, bed.controller) == before)
        << "state diverged after a relink fault at write index " << fault;
    const auto mem = bed.controller.dump_memory(old_id, "mem1");
    ASSERT_TRUE(mem.ok());
    EXPECT_EQ(mem.value(), before_mem.value());
  }

  // The successful relink carried the memory contents over.
  EXPECT_GT(fault, 3);
  bed.controller.updates().set_fault_after_writes(-1);
  const auto carried = bed.controller.dump_memory(new_id, "mem1");
  ASSERT_TRUE(carried.ok());
  EXPECT_EQ(carried.value(), before_mem.value());
  EXPECT_EQ(bed.controller.program_count(), 1u);
}

TEST_P(DeployTxnFaults, RevokeFaultRestoresTheProgram) {
  Testbed& bed = this->bed;
  auto cache = bed.controller.link_single(cache_source());
  ASSERT_TRUE(cache.ok());
  const ProgramId id = cache.value().id;
  for (MemAddr a = 0; a < 8; ++a) {
    ASSERT_TRUE(bed.controller.write_memory(id, "mem1", a, 42 + a).ok());
  }
  const StateSnapshot before = capture(bed.dataplane, bed.controller);

  int fault = 0;
  for (;; ++fault) {
    ASSERT_LT(fault, 10'000);
    bed.controller.updates().set_fault_after_writes(fault);
    const Status s = bed.controller.revoke(id);
    if (s.ok()) break;
    EXPECT_EQ(s.error().code, ErrorCode::ChannelError);
    // The program survived its failed removal with all its state.
    ASSERT_NE(bed.controller.program(id), nullptr);
    EXPECT_TRUE(capture(bed.dataplane, bed.controller) == before)
        << "state diverged after a revoke fault at write index " << fault;
    ASSERT_EQ(bed.controller.events().back().kind,
              ctrl::ControlEvent::Kind::RevokeFailed);
    EXPECT_NE(bed.controller.events().back().detail.find("[ChannelError]"),
              std::string::npos);
    // ...and still claims its traffic (fresh handles, same behaviour).
    const std::uint64_t claimed = bed.controller.program_packets(id);
    EXPECT_EQ(bed.dataplane.inject(cache_read(0x8888)).fate,
              rmt::PacketFate::Returned);
    EXPECT_EQ(bed.controller.program_packets(id), claimed + 1);
  }
  EXPECT_GT(fault, 2);
  bed.controller.updates().set_fault_after_writes(-1);
  EXPECT_EQ(bed.controller.program_count(), 0u);
}

TEST(DeployTxn, FailedDeploysDoNotBurnProgramIds) {
  Testbed bed;
  // A faulted first deploy rolls back; the id it briefly held is reissued
  // to the next session instead of leaking.
  bed.controller.updates().set_fault_after_writes(0);
  ASSERT_FALSE(bed.controller.link_single(cache_source()).ok());
  auto cache = bed.controller.link_single(cache_source());
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ(cache.value().id, 1u);

  bed.controller.updates().set_fault_after_writes(1);
  ASSERT_FALSE(bed.controller.link_single(hh_source()).ok());
  auto hh = bed.controller.link_single(hh_source());
  ASSERT_TRUE(hh.ok());
  EXPECT_EQ(hh.value().id, 2u);

  // Only a successful revoke feeds the recycle pool.
  ASSERT_TRUE(bed.controller.revoke(cache.value().id).ok());
  auto cache2 = bed.controller.link_single(cache_source());
  ASSERT_TRUE(cache2.ok());
  EXPECT_EQ(cache2.value().id, 1u);

  // Every rollback was audited with the coded error.
  int link_failed = 0;
  for (const auto& event : bed.controller.events()) {
    if (event.kind != ctrl::ControlEvent::Kind::LinkFailed) continue;
    ++link_failed;
    EXPECT_NE(event.detail.find("[ChannelError]"), std::string::npos);
    EXPECT_NE(event.id, 0u);  // the attempted id is part of the audit trail
  }
  EXPECT_EQ(link_failed, 2);
}

TEST(DeployTxn, ControlPlaneErrorsCarryCodes) {
  Testbed bed;
  auto parse = bed.controller.link_single("program broken { @@@ }");
  ASSERT_FALSE(parse.ok());
  EXPECT_EQ(parse.error().code, ErrorCode::ParseError);

  ASSERT_TRUE(bed.controller.link_single(cache_source()).ok());
  auto dup = bed.controller.link_single(cache_source());
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, ErrorCode::Conflict);
  EXPECT_NE(dup.error().str().find("[Conflict]"), std::string::npos);

  auto missing = bed.controller.revoke(99);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::NotFound);

  // A program whose memory request exceeds a stage fails allocation.
  apps::ProgramConfig huge;
  huge.instance_name = "huge";
  huge.mem_buckets = bed.dataplane.spec().memory_per_rpb * 2;
  auto alloc = bed.controller.link_single(apps::make_program_source("cache", huge));
  ASSERT_FALSE(alloc.ok());
  EXPECT_EQ(alloc.error().code, ErrorCode::AllocFailed);
}

}  // namespace
}  // namespace p4runpro
