// Tests for the common utilities: Result/Status, the virtual clock, the
// deterministic RNG and the Zipf sampler.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"

namespace p4runpro {
namespace {

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> err(Error{"boom", "here"});
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().str(), "here: boom");
  EXPECT_EQ((Error{"boom", ""}).str(), "boom");
}

TEST(Result, ErrorCodesPrefixTheMessage) {
  // Tagged errors render their failure class so operators and tests can
  // branch on what went wrong; the legacy Unknown default stays unprefixed.
  const Error tagged{"write failed", "bfrt", ErrorCode::ChannelError};
  EXPECT_EQ(tagged.code, ErrorCode::ChannelError);
  EXPECT_EQ(tagged.str(), "[ChannelError] bfrt: write failed");
  EXPECT_EQ((Error{"no fit", "", ErrorCode::AllocFailed}).str(),
            "[AllocFailed] no fit");
  EXPECT_EQ((Error{"boom", "here"}).code, ErrorCode::Unknown);
  EXPECT_EQ((Error{"boom", "here"}).str(), "here: boom");

  EXPECT_STREQ(error_code_name(ErrorCode::NotFound), "NotFound");
  EXPECT_STREQ(error_code_name(ErrorCode::Unknown), "Unknown");
}

TEST(Result, TakeMoves) {
  Result<std::string> r(std::string(100, 'x'));
  const std::string taken = std::move(r).take();
  EXPECT_EQ(taken.size(), 100u);
}

TEST(Status, DefaultIsOk) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  Status bad = Error{"nope", ""};
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.advance_us(1.5);
  EXPECT_EQ(clock.now_ns(), 1500u);
  clock.advance_ms(2.0);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 2.0015);
  clock.advance_to_ns(1000);  // already past: no-op
  EXPECT_DOUBLE_EQ(clock.now_ms(), 2.0015);
  clock.advance_to_ns(10000000);
  EXPECT_DOUBLE_EQ(clock.now_ms(), 10.0);
  clock.reset();
  EXPECT_EQ(clock.now_ns(), 0u);
}

volatile double benchmark_guard_ = 0;  // defeat optimization of the busy loop

TEST(WallTimer, MeasuresSomething) {
  WallTimer timer;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  benchmark_guard_ = sink;
  EXPECT_GT(timer.elapsed_ms(), 0.0);
  timer.restart();
  EXPECT_LT(timer.elapsed_ms(), 100.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(8);
  EXPECT_NE(Rng(7).next_u64(), c.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
  EXPECT_EQ(rng.uniform(0), 0u);
  EXPECT_EQ(rng.uniform(1), 0u);
  const double u = rng.uniform01();
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
}

TEST(Rng, Uniform01Distribution) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Zipf, RanksAreMonotone) {
  Rng rng(5);
  ZipfSampler sampler(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler.sample(rng)];
  // Rank 0 dominates, and the head is monotone-ish (allow sampling noise
  // by comparing rank 0 vs 3 vs 30).
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[3], counts[30]);
  // Rank-0 share approximates 1 / (1^s * H_100(s)).
  double h = 0;
  for (int k = 1; k <= 100; ++k) h += 1.0 / std::pow(k, 1.2);
  EXPECT_NEAR(static_cast<double>(counts[0]) / 50000.0, 1.0 / h, 0.02);
}

TEST(Zipf, SkewZeroIsUniform) {
  Rng rng(6);
  ZipfSampler sampler(8, 0.0);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 16000; ++i) ++counts[sampler.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 250);
}

}  // namespace
}  // namespace p4runpro
