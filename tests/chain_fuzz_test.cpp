// Chain lifecycle fuzz: seeded random link/relink/revoke/memory-write
// interleavings against a 3-hop chain, with a random fault schedule arming
// one hop's control channel per operation. After EVERY operation the three
// hops' free-resource books must agree exactly (mirror deployments evolve
// in lockstep), the running-program registry must match the shadow model,
// and at the end of every round a full teardown must return each hop to
// zero occupancy — any leak, double-free or half-committed hop shows up as
// a books divergence with the seed in the failure trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "control/chain_controller.h"
#include "dataplane/switch_chain.h"
#include "obs/telemetry.h"

namespace p4runpro {
namespace {

constexpr int kHops = 3;
constexpr int kOpsPerRound = 30;

dp::DataplaneSpec fuzz_spec() {
  dp::DataplaneSpec spec;
  spec.memory_per_rpb = 4096;
  spec.entries_per_rpb = 256;
  spec.max_recirculations = kHops - 1;
  return spec;
}

struct FuzzBed {
  SimClock clock;
  obs::Telemetry telemetry;
  dp::SwitchChain chain{kHops, fuzz_spec(), rmt::ParserConfig{{7777}}};
  ctrl::ChainController controller{chain, clock, {}, {}, &telemetry};
};

struct ShadowProgram {
  ProgramId id = 0;
  std::string key;  // catalog key ("cache" / "hh")
};

std::string program_source(const std::string& key, int instance) {
  apps::ProgramConfig config;
  config.instance_name = key + "_p" + std::to_string(instance);
  config.mem_buckets = 64;
  return apps::make_program_source(key, config);
}

/// The three hops' free-resource books must be identical after every
/// chain-wide operation — committed or rolled back.
void expect_books_in_lockstep(FuzzBed& bed) {
  const auto reference = bed.controller.resources(0).snapshot();
  for (int h = 1; h < kHops; ++h) {
    const auto snap = bed.controller.resources(h).snapshot();
    EXPECT_EQ(snap.free_entries, reference.free_entries)
        << "hop " << h << " entry books diverged from hop 0";
    EXPECT_EQ(snap.free_mem, reference.free_mem)
        << "hop " << h << " memory books diverged from hop 0";
  }
}

void expect_registry_matches(FuzzBed& bed,
                             const std::vector<ShadowProgram>& shadow) {
  ASSERT_EQ(bed.controller.program_count(), shadow.size());
  for (const auto& prog : shadow) {
    for (int h = 0; h < kHops; ++h) {
      ASSERT_NE(bed.controller.program_at(h, prog.id), nullptr)
          << "program " << prog.id << " missing on hop " << h;
    }
  }
}

void run_round(std::uint32_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  FuzzBed bed;
  Rng rng(seed);
  std::vector<ShadowProgram> shadow;
  int instances = 0;

  for (int op = 0; op < kOpsPerRound; ++op) {
    SCOPED_TRACE("op " + std::to_string(op));

    // Fault schedule: one in three operations runs with a random hop's
    // channel armed to fail at a random write index.
    const bool armed = rng.uniform(3) == 0;
    const int armed_hop = static_cast<int>(rng.uniform(kHops));
    if (armed) {
      bed.controller.updates(armed_hop).set_fault_after_writes(
          static_cast<int>(rng.uniform(15)));
    }

    const std::uint32_t action = rng.uniform(4);
    if (action == 0 || shadow.empty()) {
      const std::string key = rng.uniform(2) == 0 ? "cache" : "hh";
      auto linked = bed.controller.link(program_source(key, instances++));
      if (linked.ok()) {
        shadow.push_back(ShadowProgram{linked.value().id, key});
      } else {
        EXPECT_TRUE(linked.error().code == ErrorCode::ChannelError ||
                    linked.error().code == ErrorCode::AllocFailed)
            << linked.error().str();
      }
    } else if (action == 1) {
      const std::size_t victim = rng.uniform(static_cast<std::uint32_t>(shadow.size()));
      const Status s = bed.controller.revoke(shadow[victim].id);
      if (s.ok()) {
        shadow.erase(shadow.begin() + static_cast<std::ptrdiff_t>(victim));
      } else {
        EXPECT_EQ(s.error().code, ErrorCode::ChannelError) << s.error().str();
      }
    } else if (action == 2) {
      const std::size_t victim = rng.uniform(static_cast<std::uint32_t>(shadow.size()));
      // New version of the same instance (same name, fresh id on success).
      auto relinked = bed.controller.relink(
          shadow[victim].id, program_source(shadow[victim].key, instances++));
      if (relinked.ok()) {
        shadow[victim].id = relinked.value().id;
      } else {
        EXPECT_TRUE(relinked.error().code == ErrorCode::ChannelError ||
                    relinked.error().code == ErrorCode::AllocFailed)
            << relinked.error().str();
      }
    } else {
      const std::size_t victim = rng.uniform(static_cast<std::uint32_t>(shadow.size()));
      if (shadow[victim].key == "cache") {
        const Status s = bed.controller.write_memory(
            shadow[victim].id, "mem1", rng.uniform(16), rng.next_u32());
        EXPECT_TRUE(s.ok()) << s.error().str();
      }
    }

    for (int h = 0; h < kHops; ++h) {
      bed.controller.updates(h).set_fault_after_writes(-1);
    }
    expect_books_in_lockstep(bed);
    expect_registry_matches(bed, shadow);
    if (::testing::Test::HasFailure()) return;  // seed + op already traced
  }

  // Full teardown: every hop must return to zero occupancy — the leak
  // check the whole round builds up to.
  for (const auto& prog : shadow) {
    ASSERT_TRUE(bed.controller.revoke(prog.id).ok());
  }
  EXPECT_EQ(bed.controller.program_count(), 0u);
  for (int h = 0; h < kHops; ++h) {
    EXPECT_EQ(bed.controller.resources(h).total_entry_utilization(), 0.0)
        << "hop " << h << " leaked table entries";
    EXPECT_EQ(bed.controller.resources(h).total_memory_utilization(), 0.0)
        << "hop " << h << " leaked memory";
    const auto snap = bed.controller.resources(h).snapshot();
    for (std::size_t i = 0; i < snap.free_entries.size(); ++i) {
      EXPECT_EQ(snap.free_entries[i], fuzz_spec().entries_per_rpb)
          << "hop " << h << " rpb " << i + 1 << " entries not fully returned";
      ASSERT_EQ(snap.free_mem[i].size(), 1u)
          << "hop " << h << " rpb " << i + 1 << " free list fragmented";
      EXPECT_EQ(snap.free_mem[i].front().size, fuzz_spec().memory_per_rpb);
    }
  }
}

TEST(ChainFuzz, SeededLifecycleInterleavingsLeakNothing) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    run_round(seed);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(ChainFuzz, HeavyChurnSingleSeedDeepRound) {
  // One deeper round with a denser fault schedule: every second op armed.
  SCOPED_TRACE("deep round, seed 99");
  FuzzBed bed;
  Rng rng(99);
  std::vector<ProgramId> live;
  int instances = 0;
  for (int op = 0; op < 80; ++op) {
    SCOPED_TRACE("op " + std::to_string(op));
    if (rng.uniform(2) == 0) {
      bed.controller.updates(static_cast<int>(rng.uniform(kHops)))
          .set_fault_after_writes(static_cast<int>(rng.uniform(10)));
    }
    if (live.size() < 3 || rng.uniform(2) == 0) {
      auto linked = bed.controller.link(program_source("cache", instances++));
      if (linked.ok()) live.push_back(linked.value().id);
    } else {
      const std::size_t victim = rng.uniform(static_cast<std::uint32_t>(live.size()));
      if (bed.controller.revoke(live[victim]).ok()) {
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
    }
    for (int h = 0; h < kHops; ++h) {
      bed.controller.updates(h).set_fault_after_writes(-1);
    }
    expect_books_in_lockstep(bed);
    if (::testing::Test::HasFailure()) return;
  }
  for (const ProgramId id : live) ASSERT_TRUE(bed.controller.revoke(id).ok());
  for (int h = 0; h < kHops; ++h) {
    EXPECT_EQ(bed.controller.resources(h).total_entry_utilization(), 0.0);
    EXPECT_EQ(bed.controller.resources(h).total_memory_utilization(), 0.0);
  }
}

}  // namespace
}  // namespace p4runpro
