// Failure-injection tests: a control-channel fault at ANY point during a
// program install must leave the switch exactly as it was — no residual
// entries, no leaked memory, no half-visible program — and the controller
// must stay usable afterwards.
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

rmt::Packet cache_read(Word key) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{.src_port = 4000, .dst_port = 7777};
  pkt.app = rmt::AppHeader{.op = 1, .key1 = key, .key2 = 0, .value = 0};
  pkt.ingress_port = 5;
  return pkt;
}

class FailureInjection : public ::testing::TestWithParam<int> {
 protected:
  FailureInjection()
      : dataplane_(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}}),
        controller_(dataplane_, clock_) {}

  void expect_pristine() {
    EXPECT_EQ(controller_.program_count(), 0u);
    EXPECT_DOUBLE_EQ(controller_.resources().total_memory_utilization(), 0.0);
    EXPECT_DOUBLE_EQ(controller_.resources().total_entry_utilization(), 0.0);
    EXPECT_EQ(dataplane_.init_block().total_entries(), 0u);
    EXPECT_EQ(dataplane_.recirc_block().entries(), 0u);
    for (int rpb = 1; rpb <= dataplane_.spec().total_rpbs(); ++rpb) {
      EXPECT_EQ(dataplane_.rpb(rpb).table().size(), 0u) << "rpb " << rpb;
    }
  }

  SimClock clock_;
  dp::RunproDataplane dataplane_;
  ctrl::Controller controller_;
};

TEST_P(FailureInjection, FaultDuringInstallRollsBackCompletely) {
  apps::ProgramConfig config;
  config.instance_name = "cache";
  const std::string source = apps::make_program_source("cache", config);

  controller_.updates().set_fault_after_writes(GetParam());
  auto linked = controller_.link_single(source);
  ASSERT_FALSE(linked.ok());
  EXPECT_NE(linked.error().str().find("injected"), std::string::npos);
  expect_pristine();

  // Traffic is unaffected: default forwarding only.
  EXPECT_EQ(dataplane_.inject(cache_read(0x8888)).egress_port, 0);

  // The controller recovers: disabling the fault lets the same program
  // link normally (including the id that was tentatively consumed).
  controller_.updates().set_fault_after_writes(-1);
  auto retry = controller_.link_single(source);
  ASSERT_TRUE(retry.ok()) << retry.error().str();
  EXPECT_EQ(dataplane_.inject(cache_read(0x8888)).fate, rmt::PacketFate::Returned);
}

// Fault positions: 0 = before the recirculation entries, small values land
// inside the RPB-entry batch, 16+ hits the final filter install.
INSTANTIATE_TEST_SUITE_P(FaultPositions, FailureInjection,
                         ::testing::Values(0, 1, 5, 10, 15, 16));

TEST(FailureInjectionMulti, FaultDuringSecondProgramLeavesFirstIntact) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock);

  apps::ProgramConfig a;
  a.instance_name = "cache";
  auto first = controller.link_single(apps::make_program_source("cache", a));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(controller.write_memory(first.value().id, "mem1", 0, 42).ok());

  apps::ProgramConfig b;
  b.instance_name = "lb";
  controller.updates().set_fault_after_writes(4);
  ASSERT_FALSE(controller.link_single(apps::make_program_source("lb", b)).ok());
  controller.updates().set_fault_after_writes(-1);

  // The first program is untouched and functional.
  EXPECT_EQ(controller.program_count(), 1u);
  const auto read = dataplane.inject(cache_read(0x8888));
  EXPECT_EQ(read.fate, rmt::PacketFate::Returned);
  EXPECT_EQ(read.packet.app->value, 42u);
}

TEST(FailureInjectionMulti, FaultDuringRelinkKeepsOldVersion) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock);

  apps::ProgramConfig v1;
  v1.instance_name = "cache";
  auto linked = controller.link_single(apps::make_program_source("cache", v1));
  ASSERT_TRUE(linked.ok());
  ASSERT_TRUE(controller.write_memory(linked.value().id, "mem1", 0, 7).ok());

  apps::ProgramConfig v2 = v1;
  v2.elastic_cases = 8;
  controller.updates().set_fault_after_writes(6);
  ASSERT_FALSE(
      controller.relink(linked.value().id, apps::make_program_source("cache", v2)).ok());
  controller.updates().set_fault_after_writes(-1);

  // v1 still running with its state.
  EXPECT_EQ(controller.program_count(), 1u);
  const auto read = dataplane.inject(cache_read(0x8888));
  EXPECT_EQ(read.fate, rmt::PacketFate::Returned);
  EXPECT_EQ(read.packet.app->value, 7u);
}

TEST(GeometryVariants, Tofino2ClassSpecRunsLongProgramsWithoutRecirculation) {
  // More stages per pipe (Tofino2-style, §5: "utilizing other ASICs with
  // more pipeline stages can achieve higher performance"). Note the split
  // matters: hh ends in REPORT, which must execute in an ingress RPB, so
  // the operator provisions an ingress-heavy geometry and the 23-deep hh
  // fits in a single pass.
  dp::DataplaneSpec spec;
  spec.ingress_rpbs = 24;
  spec.egress_rpbs = 12;
  dp::RunproDataplane dataplane(spec, rmt::ParserConfig{});
  SimClock clock;
  ctrl::Controller controller(dataplane, clock);

  apps::ProgramConfig config;
  config.instance_name = "hh";
  config.threshold = 5;
  auto linked = controller.link_single(apps::make_program_source("hh", config));
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  EXPECT_EQ(controller.program(linked.value().id)->alloc.rounds, 1);

  rmt::Packet heavy;
  heavy.ipv4 = rmt::Ipv4Header{.src = 0x0a000010, .dst = 0x0b000001, .proto = 17};
  heavy.udp = rmt::UdpHeader{5000, 6000};
  heavy.ingress_port = 1;
  int reported = 0;
  for (int i = 0; i < 20; ++i) {
    const auto result = dataplane.inject(heavy);
    EXPECT_EQ(result.recirc_passes, 0);
    if (result.fate == rmt::PacketFate::Reported) ++reported;
  }
  EXPECT_EQ(reported, 1);
}

}  // namespace
}  // namespace p4runpro
