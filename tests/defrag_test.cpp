// Defragmentation invariants: randomized fragment-then-compact sweeps must
// (1) keep every surviving program's virtual memory byte-identical and its
// traffic claims working, (2) never increase the fragmentation metric — per
// executed move and per pass, (3) keep the resource books balanced, and
// (4) leave a fully compacted switch untouched (defrag on a compact state
// is a strict no-op, checked with a full state snapshot). Both control
// channels (serial / async writer) run the same sweeps. Run under TSan in
// CI (suite name is in the concurrency filter).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/result.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "obs/telemetry.h"

namespace p4runpro {
namespace {

/// Small stage memories so a handful of programs fragments the switch.
dp::DataplaneSpec small_spec() {
  dp::DataplaneSpec spec;
  spec.memory_per_rpb = 256;
  return spec;
}

std::string cache_source(const std::string& name, std::uint32_t mem_buckets) {
  apps::ProgramConfig config;
  config.instance_name = name;
  config.mem_buckets = mem_buckets;
  return apps::make_program_source("cache", config);
}

struct Testbed {
  SimClock clock;
  dp::RunproDataplane dataplane{small_spec(), rmt::ParserConfig{{7777}}};
  ctrl::Controller controller{dataplane, clock};
};

/// Full machine state, for the strict no-op check (same shape as the
/// deploy_txn_test snapshot: dataplane tables + memory bytes + books).
struct StateSnapshot {
  std::vector<std::size_t> rpb_table_sizes;
  std::vector<std::vector<Word>> rpb_memory;
  std::vector<std::uint32_t> entries_free;
  std::vector<std::uint32_t> memory_used;
  std::vector<std::vector<ctrl::MemBlock>> free_mem;
  std::vector<ProgramId> running;

  friend bool operator==(const StateSnapshot&, const StateSnapshot&) = default;
};

StateSnapshot capture(dp::RunproDataplane& dataplane, const ctrl::Controller& ctrl) {
  StateSnapshot snap;
  for (int rpb = 1; rpb <= dataplane.spec().total_rpbs(); ++rpb) {
    snap.rpb_table_sizes.push_back(dataplane.rpb(rpb).table().size());
    std::vector<Word> words;
    words.reserve(dataplane.spec().memory_per_rpb);
    for (std::uint32_t a = 0; a < dataplane.spec().memory_per_rpb; ++a) {
      words.push_back(dataplane.rpb(rpb).memory().read(a));
    }
    snap.rpb_memory.push_back(std::move(words));
    snap.memory_used.push_back(ctrl.resources().memory_used(rpb));
  }
  const auto resources = ctrl.resources().snapshot();
  snap.entries_free = resources.free_entries;
  snap.free_mem = resources.free_mem;
  snap.running = ctrl.running_programs();
  return snap;
}

/// Virtual contents of every vmem of every running program, keyed by
/// program NAME (ids change across a defrag move; names and bytes must not).
using VirtualImage = std::map<std::string, std::map<std::string, std::vector<Word>>>;

VirtualImage virtual_image(ctrl::Controller& ctrl) {
  VirtualImage image;
  for (const ProgramId id : ctrl.running_programs()) {
    const auto* program = ctrl.program(id);
    EXPECT_NE(program, nullptr);
    if (program == nullptr) continue;
    for (const auto& [vmem, placement] : program->placements) {
      (void)placement;
      auto dump = ctrl.dump_memory(id, vmem);
      EXPECT_TRUE(dump.ok()) << dump.error().str();
      if (dump.ok()) image[program->name][vmem] = std::move(dump).take();
    }
  }
  return image;
}

void expect_books_balance(const Testbed& bed) {
  const auto& resources = bed.controller.resources();
  std::map<int, std::uint32_t> entries;
  std::map<int, std::uint32_t> memory;
  for (const ProgramId id : bed.controller.running_programs()) {
    const auto* program = bed.controller.program(id);
    ASSERT_NE(program, nullptr);
    for (const auto& [rpb, handle] : program->rpb_handles) {
      (void)handle;
      ++entries[rpb];
    }
    for (const auto& [vmem, placement] : program->placements) {
      (void)vmem;
      memory[placement.rpb] += placement.block.size;
    }
  }
  for (int rpb = 1; rpb <= bed.dataplane.spec().total_rpbs(); ++rpb) {
    EXPECT_EQ(resources.entries_used(rpb), entries[rpb]) << "rpb " << rpb;
    EXPECT_EQ(resources.memory_used(rpb), memory[rpb]) << "rpb " << rpb;
  }
}

class DefragSweep : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override { bed.controller.set_async_writes(GetParam()); }
  Testbed bed;
};

INSTANTIATE_TEST_SUITE_P(Channels, DefragSweep, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "async" : "serial";
                         });

TEST_P(DefragSweep, RandomizedFragmentThenCompactPreservesProgramsExactly) {
  Testbed& bed = this->bed;
  std::mt19937 rng(7);
  int next_name = 0;
  std::size_t total_moves = 0;

  for (int round = 0; round < 3; ++round) {
    // Link a batch of random-sized programs (until one no longer fits).
    for (int i = 0; i < 10; ++i) {
      const std::uint32_t buckets = 16u << (rng() % 3);  // 16 / 32 / 64
      auto linked = bed.controller.link_single(
          cache_source("p" + std::to_string(next_name++), buckets));
      if (!linked.ok()) {
        EXPECT_EQ(linked.error().code, ErrorCode::AllocFailed)
            << linked.error().str();
        break;
      }
      // Distinct bytes per program: a move that writes the wrong block or
      // drops the carry-over shows up as a dump diff.
      for (MemAddr a = 0; a < 8; ++a) {
        ASSERT_TRUE(bed.controller
                        .write_memory(linked.value().id, "mem1", a,
                                      1000u * linked.value().id + a)
                        .ok());
      }
    }

    // Revoke a random subset to punch holes.
    for (const ProgramId id : bed.controller.running_programs()) {
      if (rng() % 2 == 0) {
        ASSERT_TRUE(bed.controller.revoke(id).ok());
      }
    }

    const VirtualImage before = virtual_image(bed.controller);
    const std::uint64_t frag_before =
        bed.controller.resources().total_fragmentation_words();

    auto report = bed.controller.defragment(ctrl::DefragOptions{.max_moves = 64});
    ASSERT_TRUE(report.ok());

    // Monotone per pass and per executed move.
    EXPECT_EQ(report.value().frag_start, frag_before);
    EXPECT_LE(report.value().frag_end, report.value().frag_start);
    EXPECT_EQ(report.value().failed_moves, 0u);
    std::uint64_t last = frag_before;
    for (const auto& move : report.value().moves) {
      EXPECT_EQ(move.frag_before, last) << "move " << move.name;
      EXPECT_LT(move.frag_after, move.frag_before) << "move " << move.name;
      last = move.frag_after;
    }
    EXPECT_EQ(last, report.value().frag_end);
    EXPECT_EQ(bed.controller.resources().total_fragmentation_words(),
              report.value().frag_end);

    // Programs survived the moves byte-identically (names, vmems, bytes).
    EXPECT_EQ(virtual_image(bed.controller), before) << "round " << round;
    expect_books_balance(bed);
    total_moves += report.value().moves.size();
  }
  // The sweep is only meaningful if it actually compacted something.
  EXPECT_GT(total_moves, 0u);

  // The moves were audited: one DefragMove monitor event per move.
  std::size_t move_events = 0;
  for (const auto& event : bed.controller.monitor().events()) {
    move_events += event.kind == obs::MonitorEvent::Kind::DefragMove ? 1 : 0;
  }
  EXPECT_EQ(move_events,
            bed.controller.telemetry().metrics.counter("ctrl.defrag.moves").value());
}

TEST_P(DefragSweep, DefragOnCompactStateIsAStrictNoOp) {
  Testbed& bed = this->bed;
  // Back-to-back links with no revokes: memory is compact by construction
  // (first-fit never leaves a hole without a free).
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        bed.controller.link_single(cache_source("c" + std::to_string(i), 32)).ok());
  }
  const StateSnapshot before = capture(bed.dataplane, bed.controller);

  auto report = bed.controller.defragment();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().moves.empty());
  EXPECT_EQ(report.value().frag_start, report.value().frag_end);
  EXPECT_TRUE(capture(bed.dataplane, bed.controller) == before)
      << "a no-op defrag pass mutated machine state";
}

TEST_P(DefragSweep, AutoDefragUnblocksAllocationThatFragmentationDenied) {
  Testbed& bed = this->bed;

  // Fill the switch with 64-word programs until one no longer fits.
  std::vector<ProgramId> filled;
  for (int i = 0; i < 200; ++i) {
    auto linked =
        bed.controller.link_single(cache_source("f" + std::to_string(i), 64));
    if (!linked.ok()) {
      EXPECT_EQ(linked.error().code, ErrorCode::AllocFailed);
      break;
    }
    filled.push_back(linked.value().id);
  }
  ASSERT_GT(filled.size(), 8u);

  // Punch alternating 64-word holes: within every RPB, revoke every other
  // program in placement order. Total free memory is now large, but no
  // single free block exceeds 64 words.
  std::map<int, std::vector<std::pair<std::uint32_t, ProgramId>>> by_rpb;
  for (const ProgramId id : filled) {
    const auto* program = bed.controller.program(id);
    ASSERT_NE(program, nullptr);
    const auto& placement = program->placements.at("mem1");
    by_rpb[placement.rpb].emplace_back(placement.block.base, id);
  }
  for (auto& [rpb, blocks] : by_rpb) {
    (void)rpb;
    std::sort(blocks.begin(), blocks.end());
    for (std::size_t i = 0; i < blocks.size(); i += 2) {
      ASSERT_TRUE(bed.controller.revoke(blocks[i].second).ok());
    }
  }
  EXPECT_GT(bed.controller.resources().total_fragmentation_words(), 0u);

  // A 128-word program needs a contiguous block no RPB has.
  auto denied = bed.controller.link_session(
      ctrl::SessionSpec{cache_source("big", 128), 0});
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.error().code, ErrorCode::AllocFailed);

  // With auto-defrag, the failed reservation triggers a bounded compaction
  // pass inside the session's retry budget and the same request commits.
  bed.controller.set_auto_defrag(true);
  auto granted = bed.controller.link_session(
      ctrl::SessionSpec{cache_source("big", 128), 0});
  ASSERT_TRUE(granted.ok()) << granted.error().str();
  expect_books_balance(bed);

  // The fix for the retry loop is observable: bounded retries surfaced as
  // a counter, and the defrag pass as moves.
  auto& metrics = bed.controller.telemetry().metrics;
  EXPECT_GE(metrics.counter("ctrl.link.retries").value(), 1u);
  EXPECT_GE(metrics.counter("ctrl.defrag.moves").value(), 1u);
}

}  // namespace
}  // namespace p4runpro
