// Wire-format tests: serialize/parse round-trips for every header
// combination, IPv4 checksum correctness, malformed-input handling, and a
// pipeline-level check that byte-parsed packets behave like structured
// ones.
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/rng.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "rmt/wire.h"

namespace p4runpro::rmt {
namespace {

const std::uint16_t kAppPorts[] = {7777};

Packet roundtrip(const Packet& pkt) {
  const auto bytes = serialize(pkt);
  auto parsed = parse_bytes(bytes, kAppPorts);
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().str());
  return parsed.ok() ? parsed.value() : Packet{};
}

TEST(Wire, UdpAppRoundTrip) {
  Packet pkt;
  pkt.eth.dst_mac = 0x0a0b0c0d0e0full;
  pkt.eth.src_mac = 0x102030405060ull;
  pkt.ipv4 = Ipv4Header{.src = 0x0a000001, .dst = 0x0b000002, .proto = 17,
                        .ttl = 63, .dscp = 10, .ecn = 1, .total_len = 0};
  pkt.udp = UdpHeader{1234, 7777};
  pkt.app = AppHeader{1, 0x8888, 0x77, 0xdeadbeef};
  pkt.payload_len = 33;

  const Packet back = roundtrip(pkt);
  EXPECT_EQ(back.eth.dst_mac, pkt.eth.dst_mac);
  EXPECT_EQ(back.eth.src_mac, pkt.eth.src_mac);
  ASSERT_TRUE(back.ipv4.has_value());
  EXPECT_EQ(back.ipv4->src, pkt.ipv4->src);
  EXPECT_EQ(back.ipv4->dst, pkt.ipv4->dst);
  EXPECT_EQ(back.ipv4->ttl, 63);
  EXPECT_EQ(back.ipv4->dscp, 10);
  EXPECT_EQ(back.ipv4->ecn, 1);
  ASSERT_TRUE(back.udp.has_value());
  EXPECT_EQ(back.udp->dst_port, 7777);
  ASSERT_TRUE(back.app.has_value());
  EXPECT_EQ(back.app->op, 1u);
  EXPECT_EQ(back.app->key1, 0x8888u);
  EXPECT_EQ(back.app->value, 0xdeadbeefu);
  EXPECT_EQ(back.payload_len, 33u);
  EXPECT_EQ(back.five_tuple(), pkt.five_tuple());
}

TEST(Wire, TcpRoundTrip) {
  Packet pkt;
  pkt.ipv4 = Ipv4Header{.src = 1, .dst = 2, .proto = 6};
  pkt.tcp = TcpHeader{80, 443, 0x12};
  pkt.payload_len = 100;
  const Packet back = roundtrip(pkt);
  ASSERT_TRUE(back.tcp.has_value());
  EXPECT_EQ(back.tcp->src_port, 80);
  EXPECT_EQ(back.tcp->dst_port, 443);
  EXPECT_EQ(back.tcp->flags, 0x12);
  EXPECT_EQ(back.payload_len, 100u);
  EXPECT_FALSE(back.udp.has_value());
  EXPECT_FALSE(back.app.has_value());
}

TEST(Wire, NonAppPortSkipsAppHeader) {
  Packet pkt;
  pkt.ipv4 = Ipv4Header{.src = 1, .dst = 2, .proto = 17};
  pkt.udp = UdpHeader{1, 9000};  // not an app port
  pkt.app = AppHeader{1, 2, 3, 4};
  const Packet back = roundtrip(pkt);
  EXPECT_FALSE(back.app.has_value());
  // The app bytes count as payload instead.
  EXPECT_EQ(back.payload_len, 16u);
}

TEST(Wire, L2OnlyFrame) {
  Packet pkt;
  pkt.eth.ether_type = 0x0806;  // ARP
  pkt.payload_len = 28;
  const Packet back = roundtrip(pkt);
  EXPECT_FALSE(back.ipv4.has_value());
  EXPECT_EQ(back.payload_len, 28u);
}

TEST(Wire, Ipv4ChecksumValid) {
  Packet pkt;
  pkt.ipv4 = Ipv4Header{.src = 0xc0a80101, .dst = 0x08080808, .proto = 17};
  pkt.udp = UdpHeader{53, 53};
  const auto bytes = serialize(pkt);
  // Checksum over the emitted header must verify to zero.
  std::uint32_t sum = 0;
  for (std::size_t i = 14; i + 1 < 34; i += 2) {
    sum += static_cast<std::uint32_t>(bytes[i] << 8) | bytes[i + 1];
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  EXPECT_EQ(static_cast<std::uint16_t>(~sum), 0);
}

TEST(Wire, TruncatedInputsRejected) {
  Packet pkt;
  pkt.ipv4 = Ipv4Header{.src = 1, .dst = 2, .proto = 6};
  pkt.tcp = TcpHeader{1, 2, 0};
  const auto bytes = serialize(pkt);
  for (std::size_t cut : {1u, 10u, 20u, 30u, 50u}) {
    if (cut >= bytes.size()) continue;
    auto r = parse_bytes(std::span(bytes).first(cut), kAppPorts);
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
}

TEST(Wire, WireLenMatchesSerializedSize) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    Packet pkt;
    pkt.ipv4 = Ipv4Header{.src = rng.next_u32(), .dst = rng.next_u32(), .proto = 17};
    pkt.udp = UdpHeader{static_cast<std::uint16_t>(rng.uniform(65536)), 7777};
    if (rng.uniform01() < 0.5) pkt.app = AppHeader{1, 2, 3, 4};
    pkt.payload_len = static_cast<std::uint32_t>(rng.uniform(1000));
    EXPECT_EQ(serialize(pkt).size(), pkt.wire_len());
  }
}

TEST(Wire, ByteParsedPacketDrivesThePipeline) {
  // A cache-read arriving as raw bytes must behave exactly like the
  // structured equivalent.
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock);
  apps::ProgramConfig config;
  config.instance_name = "cache";
  auto linked = controller.link_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(linked.ok());
  ASSERT_TRUE(controller.write_memory(linked.value().id, "mem1", 0, 0xFACE).ok());

  Packet pkt;
  pkt.ipv4 = Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = UdpHeader{4000, 7777};
  pkt.app = AppHeader{1, 0x8888, 0, 0};
  pkt.ingress_port = 5;

  auto parsed = parse_bytes(serialize(pkt), kAppPorts);
  ASSERT_TRUE(parsed.ok());
  parsed.value().ingress_port = 5;  // port is link-level, not in the bytes

  const auto direct = dataplane.inject(pkt);
  const auto from_bytes = dataplane.inject(parsed.value());
  EXPECT_EQ(from_bytes.fate, direct.fate);
  EXPECT_EQ(from_bytes.packet.app->value, 0xFACEu);
}

}  // namespace
}  // namespace p4runpro::rmt
