// Controller audit-log tests: every lifecycle operation leaves a timestamped
// event, failures included; the log is bounded.
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

TEST(Events, LifecycleIsAudited) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock);

  apps::ProgramConfig config;
  config.instance_name = "cache";
  auto linked = controller.link_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(linked.ok());
  auto relinked =
      controller.relink(linked.value().id, apps::make_program_source("cache", config));
  ASSERT_TRUE(relinked.ok());
  ASSERT_TRUE(controller.revoke(relinked.value().id).ok());
  // A failed link is audited too.
  ASSERT_FALSE(controller.link_single("program broken { NOPE; }").ok());

  const auto& events = controller.events();
  // link, relink(+revoke of the old version), revoke, link-failed.
  ASSERT_GE(events.size(), 5u);
  EXPECT_EQ(events[0].kind, ctrl::ControlEvent::Kind::Link);
  EXPECT_EQ(events[0].name, "cache");
  EXPECT_EQ(events[1].kind, ctrl::ControlEvent::Kind::Relink);
  EXPECT_EQ(events[2].kind, ctrl::ControlEvent::Kind::Revoke);  // old version
  EXPECT_EQ(events[3].kind, ctrl::ControlEvent::Kind::Revoke);  // explicit revoke
  EXPECT_EQ(events.back().kind, ctrl::ControlEvent::Kind::LinkFailed);
  EXPECT_FALSE(events.back().detail.empty());

  // Timestamps are monotone virtual time.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t_ms, events[i - 1].t_ms);
  }
}

TEST(Events, LogIsBounded) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock);
  apps::ProgramConfig config;
  config.instance_name = "l3";
  const std::string source = apps::make_program_source("l3", config);
  for (int i = 0; i < 600; ++i) {
    auto linked = controller.link_single(source);
    ASSERT_TRUE(linked.ok());
    ASSERT_TRUE(controller.revoke(linked.value().id).ok());
  }
  EXPECT_LE(controller.events().size(), 1024u);
}

}  // namespace
}  // namespace p4runpro
