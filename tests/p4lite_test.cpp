// P4lite front-end tests: the imperative mini-language compiles to valid
// P4runpro DSL, links, and behaves correctly end-to-end (the paper's
// "P4C back end" future-work direction, §8).
#include <gtest/gtest.h>

#include "common/clock.h"
#include "compiler/p4lite.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

rmt::Packet udp(std::uint32_t src, std::uint16_t dport, std::uint8_t ttl = 64) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = src, .dst = 0x0b000001, .proto = 17, .ttl = ttl};
  pkt.udp = rmt::UdpHeader{1000, dport};
  pkt.ingress_port = 1;
  return pkt;
}

class P4liteTest : public ::testing::Test {
 protected:
  P4liteTest()
      : dataplane_(dp::DataplaneSpec{}, rmt::ParserConfig{}),
        controller_(dataplane_, clock_) {}

  ProgramId link_p4lite(const std::string& source) {
    auto dsl = rp::compile_p4lite(source);
    EXPECT_TRUE(dsl.ok()) << (dsl.ok() ? "" : dsl.error().str());
    if (!dsl.ok()) return 0;
    auto linked = controller_.link_single(dsl.value());
    EXPECT_TRUE(linked.ok()) << (linked.ok() ? "" : linked.error().str())
                             << "\ngenerated DSL:\n" << dsl.value();
    return linked.ok() ? linked.value().id : 0;
  }

  SimClock clock_;
  dp::RunproDataplane dataplane_;
  ctrl::Controller controller_;
};

TEST_F(P4liteTest, GeneratesDslText) {
  auto dsl = rp::compile_p4lite(
      "memory counts[256];\n"
      "program watch on udp.dst_port == 5353 {\n"
      "  sar = 1;\n"
      "  mar = hash5(counts);\n"
      "  counts[mar] += sar;\n"
      "  forward(3);\n"
      "}\n");
  ASSERT_TRUE(dsl.ok()) << dsl.error().str();
  EXPECT_NE(dsl.value().find("@ counts 256"), std::string::npos);
  EXPECT_NE(dsl.value().find("<hdr.udp.dst_port, 5353, 0xffffffff>"), std::string::npos);
  EXPECT_NE(dsl.value().find("LOADI(sar, 1);"), std::string::npos);
  EXPECT_NE(dsl.value().find("HASH_5_TUPLE_MEM(counts);"), std::string::npos);
  EXPECT_NE(dsl.value().find("MEMADD(counts);"), std::string::npos);
  EXPECT_NE(dsl.value().find("FORWARD(3);"), std::string::npos);
}

TEST_F(P4liteTest, CounterProgramEndToEnd) {
  const ProgramId id = link_p4lite(
      "memory counts[64];\n"
      "program count on udp.dst_port == 5353 {\n"
      "  sar = 1;\n"
      "  mar = hash5(counts);\n"
      "  counts[mar] += sar;\n"
      "  forward(7);\n"
      "}\n");
  ASSERT_NE(id, 0);

  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(dataplane_.inject(udp(0x0a000001, 5353)).egress_port, 7);
  }
  EXPECT_EQ(dataplane_.inject(udp(0x0a000001, 9999)).egress_port, 0);  // unclaimed

  auto dump = controller_.dump_memory(id, "counts");
  ASSERT_TRUE(dump.ok());
  Word total = 0;
  for (Word v : dump.value()) total += v;
  EXPECT_EQ(total, 5u);
}

TEST_F(P4liteTest, IfElseCompilesToBranchWithWildcardElse) {
  const ProgramId id = link_p4lite(
      "program classify on ipv4.proto == 17 {\n"
      "  har = hdr.ipv4.ttl;\n"
      "  if (har == 64) {\n"
      "    forward(1);\n"
      "  } else if (har == 32) {\n"
      "    forward(2);\n"
      "  } else {\n"
      "    drop();\n"
      "  }\n"
      "}\n");
  ASSERT_NE(id, 0);
  EXPECT_EQ(dataplane_.inject(udp(1, 2, 64)).egress_port, 1);
  EXPECT_EQ(dataplane_.inject(udp(1, 2, 32)).egress_port, 2);
  EXPECT_EQ(dataplane_.inject(udp(1, 2, 17)).fate, rmt::PacketFate::Dropped);
}

TEST_F(P4liteTest, JoinAfterIfRunsForAllArms) {
  // Statements after the conditional execute for every non-terminal arm —
  // the trailing-replication rule handles the join automatically.
  const ProgramId id = link_p4lite(
      "program mark on ipv4.proto == 17 {\n"
      "  har = hdr.ipv4.ttl;\n"
      "  if (har == 64) {\n"
      "    sar = 1;\n"
      "  } else {\n"
      "    sar = 2;\n"
      "  }\n"
      "  hdr.ipv4.dscp = sar;\n"
      "  forward(4);\n"
      "}\n");
  ASSERT_NE(id, 0);
  const auto a = dataplane_.inject(udp(1, 2, 64));
  const auto b = dataplane_.inject(udp(1, 2, 10));
  EXPECT_EQ(a.packet.ipv4->dscp, 1);
  EXPECT_EQ(b.packet.ipv4->dscp, 2);
  EXPECT_EQ(a.egress_port, 4);
  EXPECT_EQ(b.egress_port, 4);
}

TEST_F(P4liteTest, ArithmeticAndHeaderRewrites) {
  const ProgramId id = link_p4lite(
      "program math on udp.dst_port == 4000 {\n"
      "  har = hdr.ipv4.src;\n"
      "  sar = har;\n"      // MOVE
      "  sar += 10;\n"      // ADDI
      "  sar -= 3;\n"       // SUBI
      "  sar ^= har;\n"     // XOR
      "  hdr.ipv4.dst = sar;\n"
      "  forward(9);\n"
      "}\n");
  ASSERT_NE(id, 0);
  const Word src = 1000;
  const auto result = dataplane_.inject(udp(src, 4000));
  EXPECT_EQ(result.egress_port, 9);
  EXPECT_EQ(result.packet.ipv4->dst, (src + 10 - 3) ^ src);
}

TEST_F(P4liteTest, MemMaxAndRead) {
  const ProgramId id = link_p4lite(
      "memory peaks[32];\n"
      "program peak on udp.dst_port == 4001 {\n"
      "  sar = hdr.ipv4.len;\n"
      "  mar = hash5(peaks);\n"
      "  peaks[mar] = max(peaks[mar], sar);\n"
      "  forward(2);\n"
      "}\n");
  ASSERT_NE(id, 0);
  auto big = udp(5, 4001);
  big.ipv4->total_len = 900;
  auto small = udp(5, 4001);
  small.ipv4->total_len = 100;
  (void)dataplane_.inject(small);
  (void)dataplane_.inject(big);
  (void)dataplane_.inject(small);
  auto dump = controller_.dump_memory(id, "peaks");
  ASSERT_TRUE(dump.ok());
  Word max_seen = 0;
  for (Word v : dump.value()) max_seen = std::max(max_seen, v);
  EXPECT_EQ(max_seen, 900u);
}

TEST_F(P4liteTest, Diagnostics) {
  // Unknown memory.
  EXPECT_FALSE(rp::compile_p4lite("program p on ipv4.proto == 17 { mar = hash5(nope); }").ok());
  // Comparison outside if.
  EXPECT_FALSE(rp::compile_p4lite("program p on ipv4.proto == 17 { sar == 4; }").ok());
  // Memory reads land in sar only.
  EXPECT_FALSE(rp::compile_p4lite(
      "memory m[8];\nprogram p on ipv4.proto == 17 { har = m[mar]; }").ok());
  // No programs.
  EXPECT_FALSE(rp::compile_p4lite("memory m[8];").ok());
  // Errors carry line numbers.
  auto bad = rp::compile_p4lite("program p on ipv4.proto == 17 {\n  sar = @;\n}");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().str().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace p4runpro
