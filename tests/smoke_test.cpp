#include <gtest/gtest.h>
TEST(Smoke, BuildWorks) { EXPECT_TRUE(true); }
