// Solver optimality: on a small data plane the whole assignment space can
// be enumerated, so the branch-and-bound result must equal the brute-force
// optimum for every objective — not just a feasible solution.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "compiler/compiler.h"
#include "compiler/solver.h"
#include "control/resource_manager.h"

namespace p4runpro::rp {
namespace {

/// Small geometry: 3 ingress + 3 egress RPBs, R = 1 -> 12 logical slots.
dp::DataplaneSpec small_spec() {
  dp::DataplaneSpec spec;
  spec.ingress_rpbs = 3;
  spec.egress_rpbs = 3;
  spec.memory_per_rpb = 1024;
  spec.entries_per_rpb = 16;
  spec.max_recirculations = 1;
  return spec;
}

/// Brute-force: enumerate every strictly increasing x over the logical
/// slots, check all constraints exactly as the model defines them, and
/// track the best objective.
struct BruteForce {
  const TranslatedProgram& program;
  const dp::DataplaneSpec& spec;
  const ctrl::ResourceManager::Snapshot& snapshot;

  double best = std::numeric_limits<double>::infinity();
  int best_x1 = 0;
  int best_xl = 0;
  int feasible_count = 0;

  void run(const Objective& objective) {
    std::vector<int> x(static_cast<std::size_t>(program.depth));
    recurse(x, 0, 0, objective);
  }

  void recurse(std::vector<int>& x, std::size_t d, int prev, const Objective& objective) {
    if (d == x.size()) {
      if (!feasible(x)) return;
      ++feasible_count;
      double obj = 0;
      switch (objective.kind) {
        case ObjectiveKind::F1:
          obj = objective.alpha * x.back() - objective.beta * x.front();
          break;
        case ObjectiveKind::F2:
          obj = x.back();
          break;
        case ObjectiveKind::F3:
          obj = static_cast<double>(x.back()) / x.front();
          break;
        case ObjectiveKind::Hierarchical:
          // encoded as min xL then max x1: lexicographic pair
          obj = x.back() * 1000.0 - x.front();
          break;
      }
      if (obj < best) {
        best = obj;
        best_x1 = x.front();
        best_xl = x.back();
      }
      return;
    }
    for (int v = prev + 1; v <= spec.logical_rpbs(); ++v) {
      x[d] = v;
      recurse(x, d + 1, v, objective);
    }
  }

  [[nodiscard]] bool feasible(const std::vector<int>& x) const {
    const int total = spec.total_rpbs();
    std::vector<std::uint32_t> entries(static_cast<std::size_t>(total), 0);
    std::map<std::string, int> pins;
    std::map<int, std::vector<std::uint32_t>> mem_per_stage;
    for (std::size_t d = 0; d < x.size(); ++d) {
      const auto& req = program.depth_reqs[d];
      const int phys = dp::physical_rpb(x[d], total);
      if (req.forwarding && !dp::is_ingress_rpb(phys, spec.ingress_rpbs)) return false;
      entries[static_cast<std::size_t>(phys - 1)] += static_cast<std::uint32_t>(req.entries);
      if (entries[static_cast<std::size_t>(phys - 1)] >
          snapshot.free_entries[static_cast<std::size_t>(phys - 1)]) {
        return false;
      }
      for (const auto& vmem : req.vmems) {
        const auto it = pins.find(vmem);
        if (it != pins.end()) {
          if (it->second != phys) return false;
        } else {
          pins.emplace(vmem, phys);
          mem_per_stage[phys].push_back(program.vmem_sizes.at(vmem));
        }
      }
    }
    for (const auto& [phys, sizes] : mem_per_stage) {
      if (!snapshot.can_allocate(phys, sizes)) return false;
    }
    return true;
  }
};

class SolverOptimality : public ::testing::TestWithParam<int> {};

TEST_P(SolverOptimality, MatchesBruteForceOnSmallModels) {
  const char* kPrograms[] = {
      // Plain ALU chain with a trailing forward.
      "program a(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  EXTRACT(hdr.ipv4.ttl, har);\n"
      "  ADD(har, har);\n"
      "  FORWARD(1);\n"
      "}\n",
      // Memory pinning.
      "@ m 64\n"
      "program b(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  HASH_5_TUPLE_MEM(m);\n"
      "  MEMADD(m);\n"
      "}\n",
      // Branch + case bodies.
      "program c(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  EXTRACT(hdr.ipv4.ttl, har);\n"
      "  BRANCH:\n"
      "  case(<har, 1, 0xff>) { DROP; };\n"
      "  FORWARD(2);\n"
      "}\n",
      // Sequential same-memory (constraint 5).
      "@ m 64\n"
      "program d(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  LOADI(mar, 0);\n"
      "  MEMREAD(m);\n"
      "  LOADI(mar, 1);\n"
      "  MEMWRITE(m);\n"
      "}\n",
  };
  const auto spec = small_spec();
  ctrl::ResourceManager resources(spec);
  // Perturb the snapshot: eat entries from RPB 2 to make it interesting.
  ASSERT_TRUE(resources.reserve_entries(2, 15).ok());
  const auto snapshot = resources.snapshot();

  for (const char* source : kPrograms) {
    auto ir = compile_single(source);
    ASSERT_TRUE(ir.ok()) << ir.error().str();
    const Objective objectives[] = {
        {ObjectiveKind::F1, 0.7, 0.3},
        {ObjectiveKind::F2, 0, 0},
        {ObjectiveKind::F3, 0, 0},
    };
    const Objective& objective = objectives[GetParam()];

    BruteForce brute{ir.value(), spec, snapshot};
    brute.run(objective);

    auto solved = solve_allocation(ir.value(), spec, snapshot, objective);
    if (brute.feasible_count == 0) {
      EXPECT_FALSE(solved.ok()) << source;
      continue;
    }
    ASSERT_TRUE(solved.ok()) << source << ": " << solved.error().str();
    double solver_obj = 0;
    switch (objective.kind) {
      case ObjectiveKind::F1:
        solver_obj = 0.7 * solved.value().x.back() - 0.3 * solved.value().x.front();
        break;
      case ObjectiveKind::F2:
        solver_obj = solved.value().x.back();
        break;
      case ObjectiveKind::F3:
        solver_obj = static_cast<double>(solved.value().x.back()) /
                     solved.value().x.front();
        break;
      default:
        break;
    }
    EXPECT_NEAR(solver_obj, brute.best, 1e-9)
        << source << "objective " << GetParam() << ": solver found x1="
        << solved.value().x.front() << " xL=" << solved.value().x.back()
        << ", brute force x1=" << brute.best_x1 << " xL=" << brute.best_xl;
  }
}

INSTANTIATE_TEST_SUITE_P(Objectives, SolverOptimality, ::testing::Values(0, 1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(info.param == 0   ? "f1"
                                              : info.param == 1 ? "f2"
                                                                : "f3");
                         });

TEST(SolverOptimalityHierarchical, MinLastThenMaxFirst) {
  const auto spec = small_spec();
  ctrl::ResourceManager resources(spec);
  const auto snapshot = resources.snapshot();
  auto ir = compile_single(
      "program h(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  EXTRACT(hdr.ipv4.ttl, har);\n"
      "  ADD(har, har);\n"
      "  XOR(har, har);\n"
      "}\n");
  ASSERT_TRUE(ir.ok());

  BruteForce brute{ir.value(), spec, snapshot};
  brute.run(Objective{ObjectiveKind::Hierarchical});
  auto solved = solve_allocation(ir.value(), spec, snapshot,
                                 Objective{ObjectiveKind::Hierarchical});
  ASSERT_TRUE(solved.ok());
  EXPECT_EQ(solved.value().x.back(), brute.best_xl);
  EXPECT_EQ(solved.value().x.front(), brute.best_x1);
}

}  // namespace
}  // namespace p4runpro::rp
