// The on-disk program corpus (programs/*.p4rp — the paper's published
// listings) must lex, parse, compile, allocate and link on a fresh switch.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/clock.h"
#include "control/controller.h"
#include "compiler/p4lite.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << path;
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

std::filesystem::path corpus_dir() {
  // Tests run from the build tree; the corpus lives in the source tree.
  for (auto dir = std::filesystem::current_path();
       dir != dir.root_path(); dir = dir.parent_path()) {
    if (std::filesystem::exists(dir / "programs" / "cache.p4rp")) {
      return dir / "programs";
    }
  }
  return "programs";
}

class CorpusTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CorpusTest, FileLinksOnFreshSwitch) {
  const auto path = corpus_dir() / GetParam();
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  const std::string source = read_file(path);
  ASSERT_FALSE(source.empty());

  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock);
  auto results = controller.link(source);
  ASSERT_TRUE(results.ok()) << GetParam() << ": " << results.error().str();
  ASSERT_EQ(results.value().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(PaperListings, CorpusTest,
                         ::testing::Values("cache.p4rp", "lb.p4rp", "hh.p4rp"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           return name.substr(0, name.find('.'));
                         });

TEST(CorpusTest, PaperCacheListingHasPaperDepth) {
  const std::string source = read_file(corpus_dir() / "cache.p4rp");
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock);
  auto results = controller.link(source);
  ASSERT_TRUE(results.ok());
  const auto* installed = controller.program(results.value()[0].id);
  EXPECT_EQ(installed->ir.depth, 10);  // Fig. 5(b): L = 10
}

TEST(CorpusTest, ReportSinkReceivesHeavyHitterNotifications) {
  const std::string source = read_file(corpus_dir() / "hh.p4rp");
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  ASSERT_TRUE(controller.link(source).ok());

  rmt::Packet heavy;
  heavy.ipv4 = rmt::Ipv4Header{.src = 0x0a000033, .dst = 0x0b000001, .proto = 17};
  heavy.udp = rmt::UdpHeader{5000, 6000};
  heavy.ingress_port = 1;
  for (int i = 0; i < 1100; ++i) (void)dataplane.inject(heavy);

  // The controller drains the CPU queue and sees exactly one report with
  // the offending 5-tuple.
  const auto reports = controller.drain_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].five_tuple(), heavy.five_tuple());
  EXPECT_TRUE(controller.drain_reports().empty());  // drained
}

TEST(CorpusTest, P4liteListingCompilesLinksAndDetects) {
  const auto path = corpus_dir() / "syn_guard.p4l";
  ASSERT_TRUE(std::filesystem::exists(path)) << path;
  auto dsl = rp::compile_p4lite(read_file(path));
  ASSERT_TRUE(dsl.ok()) << dsl.error().str();

  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  ASSERT_TRUE(controller.link(dsl.value()).ok());

  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0b000001, .proto = 6};
  pkt.tcp = rmt::TcpHeader{4000, 80, 0x02};
  pkt.ingress_port = 1;

  int reported = 0;
  for (int i = 0; i < 80; ++i) {
    const auto result = dataplane.inject(pkt);
    if (result.fate == rmt::PacketFate::Reported) ++reported;
  }
  // Reported exactly once, after crossing the 50-packet threshold.
  EXPECT_EQ(reported, 1);
}

}  // namespace
}  // namespace p4runpro
