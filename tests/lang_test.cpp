// Lexer and parser tests for the P4runpro DSL, including the paper's
// literal programs (Fig. 2, Fig. 16, Fig. 17).
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "lang/lexer.h"
#include "lang/parser.h"

namespace p4runpro::lang {
namespace {

TEST(Lexer, IntegerBases) {
  auto tokens = lex("10 0x1f 0b1101");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens.value().size(), 4u);  // three ints + End
  EXPECT_EQ(tokens.value()[0].value, 10u);
  EXPECT_EQ(tokens.value()[1].value, 0x1fu);
  EXPECT_EQ(tokens.value()[2].value, 0b1101u);
}

TEST(Lexer, Ipv4Literal) {
  auto tokens = lex("10.0.0.0 192.168.1.255");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].value, 0x0a000000u);
  EXPECT_EQ(tokens.value()[1].value, 0xc0a801ffu);
}

TEST(Lexer, BadIpv4Rejected) {
  EXPECT_FALSE(lex("10.0.0").ok());
  EXPECT_FALSE(lex("10.0.0.256").ok());
  EXPECT_FALSE(lex("1.2.3.4.5").ok());
}

TEST(Lexer, DottedFieldIsIdentifier) {
  auto tokens = lex("hdr.udp.dst_port");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens.value()[0].text, "hdr.udp.dst_port");
}

TEST(Lexer, Comments) {
  auto tokens = lex("LOADI // line comment\n/* block\ncomment */ 5");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens.value().size(), 3u);
  EXPECT_EQ(tokens.value()[0].text, "LOADI");
  EXPECT_EQ(tokens.value()[1].value, 5u);
}

TEST(Lexer, UnterminatedBlockCommentFails) {
  EXPECT_FALSE(lex("/* never closed").ok());
}

TEST(Lexer, OutOfRangeIntegerFails) {
  EXPECT_FALSE(lex("0x100000000").ok());
  EXPECT_TRUE(lex("0xffffffff").ok());
}

TEST(Lexer, TracksLineNumbers) {
  auto tokens = lex("a\nb\n  c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].line, 1);
  EXPECT_EQ(tokens.value()[1].line, 2);
  EXPECT_EQ(tokens.value()[2].line, 3);
  EXPECT_EQ(tokens.value()[2].column, 3);
}

TEST(CountLoc, SkipsBlanksAndComments) {
  EXPECT_EQ(count_loc("a;\n\n// comment only\nb;\n/* multi\nline */\nc;\n"), 3);
  EXPECT_EQ(count_loc(""), 0);
  EXPECT_EQ(count_loc("x /* inline */ y\n"), 1);
}

TEST(Parser, CacheProgramStructure) {
  apps::ProgramConfig config;
  config.instance_name = "cache";
  const std::string source = apps::make_program_source("cache", config);
  auto unit = parse(source);
  ASSERT_TRUE(unit.ok()) << unit.error().str();
  ASSERT_EQ(unit.value().annotations.size(), 1u);
  EXPECT_EQ(unit.value().annotations[0].name, "mem1");
  EXPECT_EQ(unit.value().annotations[0].size, 256u);
  ASSERT_EQ(unit.value().programs.size(), 1u);
  const auto& prog = unit.value().programs[0];
  EXPECT_EQ(prog.name, "cache");
  ASSERT_EQ(prog.filters.size(), 1u);
  EXPECT_EQ(prog.filters[0].field, "hdr.udp.dst_port");
  EXPECT_EQ(prog.filters[0].value, 7777u);
  // Body: 3 EXTRACT, BRANCH (2 cases), trailing FORWARD.
  ASSERT_EQ(prog.body.size(), 5u);
  EXPECT_EQ(prog.body[3].kind, PrimKind::Branch);
  EXPECT_EQ(prog.body[3].cases.size(), 2u);
  EXPECT_EQ(prog.body[3].cases[0].conditions.size(), 3u);
  EXPECT_EQ(prog.body[4].kind, PrimKind::Forward);
}

TEST(Parser, AllCatalogProgramsParse) {
  for (const auto& info : apps::program_catalog()) {
    apps::ProgramConfig config;
    config.instance_name = info.key;
    const std::string source = apps::make_program_source(info.key, config);
    auto unit = parse(source);
    EXPECT_TRUE(unit.ok()) << info.key << ": "
                           << (unit.ok() ? "" : unit.error().str());
  }
}

TEST(Parser, NestedBranches) {
  apps::ProgramConfig config;
  config.instance_name = "hh";
  auto unit = parse(apps::make_program_source("hh", config));
  ASSERT_TRUE(unit.ok()) << unit.error().str();
  const auto& branch = unit.value().programs[0].body.back();
  ASSERT_EQ(branch.kind, PrimKind::Branch);
  ASSERT_EQ(branch.cases.size(), 1u);
  const auto& inner = branch.cases[0].body.back();
  EXPECT_EQ(inner.kind, PrimKind::Branch);
  EXPECT_EQ(inner.cases.size(), 2u);
}

TEST(Parser, ErrorsCarryLocation) {
  auto r = parse("program p(<hdr.ipv4.src, 1, 0xff>) { BOGUS; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().str().find("BOGUS"), std::string::npos);
  EXPECT_NE(r.error().str().find("line 1"), std::string::npos);
}

TEST(Parser, RequiresFilter) {
  EXPECT_FALSE(parse("program p() { DROP; }").ok());
}

TEST(Parser, RequiresProgram) {
  EXPECT_FALSE(parse("@ mem 64").ok());
}

TEST(Parser, ConditionMustNameRegister) {
  auto r = parse(
      "program p(<hdr.ipv4.src, 1, 0xff>) { BRANCH: case(<foo, 1, 0xff>) { DROP; }; }");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, MultiplePrograms) {
  auto r = parse(
      "@ m 64\n"
      "program a(<hdr.ipv4.src, 1, 0xff>) { DROP; }\n"
      "program b(<hdr.ipv4.src, 2, 0xff>) { FORWARD(3); }\n");
  ASSERT_TRUE(r.ok()) << r.error().str();
  EXPECT_EQ(r.value().programs.size(), 2u);
}

}  // namespace
}  // namespace p4runpro::lang
