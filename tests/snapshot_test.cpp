// Snapshot data plane: RCU-style table snapshots published through the
// SnapshotHub, consumed lock-free by shard pipes (docs/ARCHITECTURE.md
// "Snapshot data plane").
//
//  - publish/read parity: a randomized op sequence drives a serial master
//    bed and a single-shard snapshot bed in lockstep; every batch must see
//    identical fates and the claim books must agree.
//  - grace period: a held ReadGuard defers reclamation of retired
//    snapshots; reads through it stay valid (ASan guards the UAF).
//  - rollback: a faulted install never publishes — the epoch stands still
//    and shard traffic keeps matching the last good snapshot.
//  - deploy under fire (TSan): shard workers batch packets while the
//    control plane churns installs/removes; batches never stall and never
//    tear across a snapshot boundary.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "dataplane/snapshot_hub.h"
#include "dataplane/table_snapshot.h"
#include "rmt/packet.h"

namespace p4runpro {
namespace {

rmt::Packet udp_packet(Word op, Word key, std::uint16_t dst_port,
                       Port ingress = 5, Word value = 0) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{.src_port = 4000, .dst_port = dst_port};
  pkt.app = rmt::AppHeader{.op = op, .key1 = key, .key2 = 0, .value = value};
  pkt.ingress_port = ingress;
  return pkt;
}

std::string program_source(const std::string& tmpl, const std::string& name,
                           Word filter_value = 0, std::uint32_t buckets = 32) {
  apps::ProgramConfig config;
  config.instance_name = name;
  config.mem_buckets = buckets;
  config.filter_value = filter_value;
  return apps::make_program_source(tmpl, config);
}

struct Bed {
  SimClock clock;
  dp::RunproDataplane dataplane{dp::DataplaneSpec{},
                                rmt::ParserConfig{{7777, 9999}}};
  ctrl::Controller controller{dataplane, clock};
};

void expect_batches_equal(const rmt::Pipeline::BatchResult& serial,
                          const rmt::Pipeline::BatchResult& sharded,
                          int step) {
  EXPECT_EQ(serial.packets, sharded.packets) << "step " << step;
  EXPECT_EQ(serial.forwarded, sharded.forwarded) << "step " << step;
  EXPECT_EQ(serial.returned, sharded.returned) << "step " << step;
  EXPECT_EQ(serial.dropped, sharded.dropped) << "step " << step;
  EXPECT_EQ(serial.reported, sharded.reported) << "step " << step;
  EXPECT_EQ(serial.multicasted, sharded.multicasted) << "step " << step;
  EXPECT_EQ(serial.recirc_limited, sharded.recirc_limited) << "step " << step;
  EXPECT_EQ(serial.recirc_passes, sharded.recirc_passes) << "step " << step;
}

// Randomized differential: the same control-op and traffic sequence runs on
// a serial master bed and on shard 0 of a snapshot bed. The shard starts
// from zeroed pipe-local state just like the master, control writes
// broadcast to it, and every batch binds the latest published snapshot — so
// fates, recirculations and claim counts must evolve identically.
TEST(Snapshot, PublishReadParityRandomizedDifferential) {
  Bed serial;
  Bed sharded;
  sharded.dataplane.enable_sharding(1);

  std::mt19937 rng(20260809);
  std::vector<ProgramId> live;  // ids match across beds (same assignment order)
  int created = 0;

  const auto random_batch = [&rng](int n) {
    const std::uint16_t ports[] = {7777, 9999, 1234};
    std::vector<rmt::Packet> pkts;
    pkts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      pkts.push_back(udp_packet(1 + rng() % 2, 0x8880 + rng() % 16,
                                ports[rng() % 3], 5 + rng() % 2, rng() % 100));
    }
    return pkts;
  };

  for (int step = 0; step < 120; ++step) {
    switch (rng() % 4) {
      case 0: {  // link a program on both beds
        if (live.size() >= 6) break;
        const bool hh = created % 2 == 0;
        const std::string src =
            program_source(hh ? "hh" : "cache", "p" + std::to_string(created));
        ++created;
        auto a = serial.controller.link_single(src);
        auto b = sharded.controller.link_single(src);
        ASSERT_TRUE(a.ok()) << a.error().str();
        ASSERT_TRUE(b.ok()) << b.error().str();
        ASSERT_EQ(a.value().id, b.value().id) << "beds diverged on id";
        live.push_back(a.value().id);
        break;
      }
      case 1: {  // revoke one
        if (live.empty()) break;
        const std::size_t victim = rng() % live.size();
        const ProgramId id = live[victim];
        ASSERT_TRUE(serial.controller.revoke(id).ok());
        ASSERT_TRUE(sharded.controller.revoke(id).ok());
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
        break;
      }
      case 2: {  // control-plane memory write (broadcasts to the shard)
        if (live.empty()) break;
        const ProgramId id = live[rng() % live.size()];
        const Word value = rng();
        // Not every template names a "mem1" pool; a rejected write must be
        // rejected identically on both beds.
        auto a = serial.controller.write_memory(id, "mem1", 0, value);
        auto b = sharded.controller.write_memory(id, "mem1", 0, value);
        ASSERT_EQ(a.ok(), b.ok());
        break;
      }
      default: {  // traffic
        const auto pkts = random_batch(64);
        const auto a = serial.dataplane.inject_batch(pkts);
        const auto b = sharded.dataplane.inject_batch_on(0, pkts);
        expect_batches_equal(a, b, step);
        // The sharded batch names the snapshot it matched.
        EXPECT_GT(b.snapshot_epoch, 0u);
        EXPECT_EQ(b.table_generation, a.table_generation);
        break;
      }
    }
  }

  for (const ProgramId id : live) {
    EXPECT_EQ(serial.dataplane.claimed_packets(id),
              sharded.dataplane.claimed_packets(id))
        << "claim books diverged for program " << id;
  }
  sharded.dataplane.disable_sharding();
}

// A reader holding a snapshot across publishes keeps it alive: retirement
// is deferred until the guard drops, and reads through the guard stay valid
// the whole time (ASan would flag the use-after-free otherwise).
TEST(Snapshot, GracePeriodDefersReclaimUntilReadersDrain) {
  Bed bed;
  bed.dataplane.enable_sharding(2);
  dp::SnapshotHub* hub = bed.dataplane.snapshot_hub();
  ASSERT_NE(hub, nullptr);
  const std::uint64_t initial_epoch = hub->epoch();

  {
    auto guard = hub->acquire(0);
    const std::uint64_t held_epoch = guard->epoch;
    const std::size_t held_tables = guard->rpb_tables.size();

    // Two commits while the guard is held: each publishes a new snapshot
    // and retires the previous one, but nothing may be freed yet.
    ASSERT_TRUE(bed.controller.link_single(program_source("cache", "a")).ok());
    ASSERT_TRUE(bed.controller.link_single(program_source("cache", "b")).ok());
    EXPECT_EQ(hub->epoch(), initial_epoch + 2);
    EXPECT_GE(hub->retired_pending(), 2u);

    // The held snapshot is still fully readable.
    EXPECT_EQ(guard->epoch, held_epoch);
    EXPECT_EQ(guard->rpb_tables.size(), held_tables);
    for (const auto& table : guard->rpb_tables) (void)table.size();
  }

  // Reader gone: the grace period ends and everything retired reclaims.
  hub->try_reclaim();
  EXPECT_EQ(hub->retired_pending(), 0u);
  EXPECT_GE(hub->reclaimed(), 2u);

  // A fresh acquire sees the newest snapshot.
  auto guard = hub->acquire(1);
  EXPECT_EQ(guard->epoch, initial_epoch + 2);
}

// A faulted install rolls back without publishing: the epoch stands still,
// and shard traffic is byte-identically unaffected. Re-running the install
// without the fault publishes exactly one new snapshot.
TEST(Snapshot, RollbackNeverPublishes) {
  Bed bed;
  bed.dataplane.enable_sharding(1);
  dp::SnapshotHub* hub = bed.dataplane.snapshot_hub();

  ASSERT_TRUE(bed.controller.link_single(program_source("cache", "base")).ok());
  const std::uint64_t epoch_before = hub->epoch();
  const std::uint64_t publishes_before = hub->publishes();

  std::vector<rmt::Packet> probe;
  for (int i = 0; i < 32; ++i) probe.push_back(udp_packet(1, 0x8888, 7777));
  const auto before = bed.dataplane.inject_batch_on(0, probe);

  bed.controller.updates().set_fault_after_writes(2);
  auto faulted = bed.controller.link_single(program_source("cache", "doomed"));
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.error().code, ErrorCode::ChannelError);

  // No publish happened; traffic still matches the pre-fault snapshot.
  EXPECT_EQ(hub->epoch(), epoch_before);
  EXPECT_EQ(hub->publishes(), publishes_before);
  const auto after = bed.dataplane.inject_batch_on(0, probe);
  expect_batches_equal(before, after, /*step=*/0);
  EXPECT_EQ(before.snapshot_epoch, after.snapshot_epoch);
  EXPECT_EQ(before.table_generation, after.table_generation);

  // The retry (no fault armed) publishes exactly once.
  auto retried = bed.controller.link_single(program_source("cache", "doomed"));
  ASSERT_TRUE(retried.ok()) << retried.error().str();
  EXPECT_EQ(hub->epoch(), epoch_before + 1);
  EXPECT_EQ(hub->publishes(), publishes_before + 1);
}

// Deploy under fire: shard workers inject batches nonstop while the control
// plane churns installs and removes through the async writer. Every batch
// must complete against exactly one snapshot — all of its packets claimed
// by the marker program or none of them — with per-shard epochs monotone.
// Runs under TSan in CI.
TEST(SnapshotDeployUnderFire, BatchesNeverStallOrTearAcrossCommits) {
  constexpr int kShards = 2;
  constexpr int kBatch = 64;
  constexpr int kRounds = 6;

  Bed bed;
  bed.dataplane.enable_sharding(kShards);
  bed.controller.set_async_writes(true);

  const std::string marker_source = program_source("cache", "marker");
  std::vector<rmt::Packet> pkts;
  for (int i = 0; i < kBatch; ++i) pkts.push_back(udp_packet(1, 0x8888, 7777));

  struct ShardStats {
    std::uint64_t batches = 0;
    std::uint64_t claimed_batches = 0;    // all kBatch packets returned
    std::uint64_t unclaimed_batches = 0;  // all kBatch packets forwarded
    std::uint64_t torn_batches = 0;       // anything in between
    std::uint64_t epoch_regressions = 0;
  };
  std::vector<ShardStats> stats(kShards);
  std::atomic<bool> stop{false};
  // Live tallies so the churn loop can hold each phase until the workers
  // actually observed it (on a loaded 1-core host a fixed-length phase can
  // pass without any worker getting a scheduler slot).
  std::atomic<std::uint64_t> live_claimed{0};
  std::atomic<std::uint64_t> live_unclaimed{0};

  std::vector<std::thread> workers;
  workers.reserve(kShards);
  for (int s = 0; s < kShards; ++s) {
    workers.emplace_back([&, s] {
      ShardStats local;
      std::uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto r = bed.dataplane.inject_batch_on(s, pkts);
        ++local.batches;
        if (r.returned == kBatch) {
          ++local.claimed_batches;
          live_claimed.fetch_add(1, std::memory_order_relaxed);
        } else if (r.forwarded == kBatch) {
          ++local.unclaimed_batches;
          live_unclaimed.fetch_add(1, std::memory_order_relaxed);
        } else {
          ++local.torn_batches;  // a batch split across two snapshots
        }
        if (r.snapshot_epoch < last_epoch) ++local.epoch_regressions;
        last_epoch = r.snapshot_epoch;
      }
      stats[static_cast<std::size_t>(s)] = local;
    });
  }

  // Yield until `tally` grows past `floor`, bounded so a genuine stall
  // cannot hang the test (the final EXPECTs then report what was missed).
  const auto await_observation = [](const std::atomic<std::uint64_t>& tally,
                                    std::uint64_t floor) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (tally.load(std::memory_order_relaxed) <= floor &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  };

  // Control churn: the marker program comes and goes every round while
  // filler programs (on ports the marker traffic never hits) keep the
  // writer busy with installs and removes. Failures only break the loop —
  // the workers must be joined before any ASSERT can end the test body.
  std::string churn_error;
  for (int round = 0; round < kRounds && churn_error.empty(); ++round) {
    auto marker = bed.controller.link_single(marker_source);
    if (!marker.ok()) {
      churn_error = marker.error().str();
      break;
    }
    await_observation(live_claimed, live_claimed.load());
    std::vector<ProgramId> fillers;
    for (int i = 0; i < 4; ++i) {
      auto filler = bed.controller.link_single(program_source(
          "cache", "filler" + std::to_string(i),
          static_cast<Word>(6001 + i)));
      if (!filler.ok()) {
        churn_error = filler.error().str();
        break;
      }
      fillers.push_back(filler.value().id);
    }
    for (const ProgramId id : fillers) {
      if (!bed.controller.revoke(id).ok()) churn_error = "filler revoke failed";
    }
    if (!bed.controller.revoke(marker.value().id).ok()) {
      churn_error = "marker revoke failed";
    }
    await_observation(live_unclaimed, live_unclaimed.load());
  }

  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();
  ASSERT_TRUE(churn_error.empty()) << churn_error;

  std::uint64_t batches = 0, claimed = 0, unclaimed = 0;
  for (const auto& s : stats) {
    EXPECT_EQ(s.torn_batches, 0u) << "a batch saw two snapshots";
    EXPECT_EQ(s.epoch_regressions, 0u) << "snapshot epochs went backwards";
    EXPECT_GT(s.batches, 0u) << "a shard stalled";
    batches += s.batches;
    claimed += s.claimed_batches;
    unclaimed += s.unclaimed_batches;
  }
  EXPECT_EQ(batches, claimed + unclaimed);
  // Traffic flowed during the churn and observed both sides of a commit
  // boundary: snapshots with the marker live and snapshots without it.
  EXPECT_GT(claimed, 0u);
  EXPECT_GT(unclaimed, 0u);

  bed.dataplane.disable_sharding();

  // The books balance once quiesced: no program left behind.
  EXPECT_EQ(bed.controller.program_count(), 0u);
}

}  // namespace
}  // namespace p4runpro
