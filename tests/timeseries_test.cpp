// Time-series telemetry store: ring-buffer retention, the query API
// (last_n / delta / rate), cadence-gated sampling, histogram rollups, and
// the EWMA/z-score anomaly detector. The detector test is the acceptance
// scenario for the causal-observability work: a synthetic rate step must
// trip exactly one edge-triggered alert, visible in the alerts JSONL with
// the offending series name and the active trace id.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "common/clock.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"
#include "obs/trace_context.h"

namespace p4runpro {
namespace {

constexpr SimClock::Nanos kMs = 1'000'000;

TEST(TimeSeries, RingEvictsOldestWhenFull) {
  obs::TimeSeries s(4);
  for (int i = 0; i < 6; ++i) {
    s.push(static_cast<SimClock::Nanos>(i) * kMs, static_cast<double>(i * 10));
  }
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.capacity(), 4u);
  EXPECT_EQ(s.total(), 6u);  // evicted samples still count
  EXPECT_DOUBLE_EQ(s.at(0).value, 20.0);  // 0 and 10 were evicted
  EXPECT_DOUBLE_EQ(s.at(3).value, 50.0);
  EXPECT_DOUBLE_EQ(s.newest().value, 50.0);
  EXPECT_EQ(s.newest().t_ns, 5 * kMs);
}

TEST(TimeSeries, QueriesOverTheRetainedWindow) {
  obs::TimeSeries s(8);
  for (int i = 0; i < 5; ++i) {
    s.push(static_cast<SimClock::Nanos>(i) * kMs, static_cast<double>(100 * i));
  }
  const auto last2 = s.last_n(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_DOUBLE_EQ(last2[0].value, 300.0);  // oldest first
  EXPECT_DOUBLE_EQ(last2[1].value, 400.0);
  // Asking for more than retained returns what exists.
  EXPECT_EQ(s.last_n(99).size(), 5u);

  EXPECT_DOUBLE_EQ(s.delta(1), 100.0);
  EXPECT_DOUBLE_EQ(s.delta(4), 400.0);
  EXPECT_DOUBLE_EQ(s.delta(5), 0.0);  // not enough samples

  // 400 units over 4 ms of virtual time = 100'000 per second.
  EXPECT_DOUBLE_EQ(s.rate_per_s(), 100'000.0);
}

TEST(TimeSeries, RateNeedsTwoSamples) {
  obs::TimeSeries s(4);
  EXPECT_DOUBLE_EQ(s.rate_per_s(), 0.0);
  s.push(kMs, 5.0);
  EXPECT_DOUBLE_EQ(s.rate_per_s(), 0.0);
}

TEST(TimeSeriesStore, SamplesCountersGaugesAndQueryApi) {
  obs::MetricsRegistry registry;
  obs::TimeSeriesStore store;
  auto& pkts = registry.counter("ctrl.links");
  registry.gauge("rmt.occupancy").set(0.25);

  pkts.inc(10);
  store.sample(registry, 1 * kMs);
  pkts.inc(30);
  store.sample(registry, 2 * kMs);

  const auto* series = store.series("ctrl.links");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 2u);
  // Counters are recorded cumulatively; rates fall out of the query API.
  EXPECT_DOUBLE_EQ(store.delta("ctrl.links"), 30.0);
  EXPECT_DOUBLE_EQ(store.rate("ctrl.links"), 30'000.0);
  ASSERT_EQ(store.last_n("ctrl.links", 1).size(), 1u);
  EXPECT_DOUBLE_EQ(store.last_n("ctrl.links", 1)[0].value, 40.0);

  const auto* gauge_series = store.series("rmt.occupancy");
  ASSERT_NE(gauge_series, nullptr);
  EXPECT_DOUBLE_EQ(gauge_series->newest().value, 0.25);

  // Unknown series: empty results, not crashes.
  EXPECT_EQ(store.series("nope"), nullptr);
  EXPECT_TRUE(store.last_n("nope", 3).empty());
  EXPECT_DOUBLE_EQ(store.rate("nope"), 0.0);
  EXPECT_DOUBLE_EQ(store.delta("nope"), 0.0);

  const auto names = store.series_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "ctrl.links");  // sorted
  EXPECT_EQ(names[1], "rmt.occupancy");
}

TEST(TimeSeriesStore, CadenceGatesMaybeSample) {
  obs::MetricsRegistry registry;
  registry.counter("c").inc();
  obs::TimeSeriesStore store;

  // Cadence 0 (default): maybe_sample is a no-op.
  store.maybe_sample(registry, 50 * kMs);
  EXPECT_EQ(store.samples_taken(), 0u);

  store.set_cadence(10 * kMs);
  store.maybe_sample(registry, 0);  // first tick is immediately due
  store.maybe_sample(registry, 5 * kMs);
  store.maybe_sample(registry, 9 * kMs);
  EXPECT_EQ(store.samples_taken(), 1u);
  store.maybe_sample(registry, 10 * kMs);
  EXPECT_EQ(store.samples_taken(), 2u);
  store.maybe_sample(registry, 11 * kMs);
  EXPECT_EQ(store.samples_taken(), 2u);
}

TEST(TimeSeriesStore, HistogramRollupsSkipEmptyHistograms) {
  obs::MetricsRegistry registry;
  auto& lat = registry.histogram("ctrl.link_ms");
  obs::TimeSeriesStore store;

  // Empty histogram: no quantile series — a 0-valued p50 would read as a
  // measurement when it is really "no data" (Histogram::quantile sentinel).
  store.sample(registry, 1 * kMs);
  EXPECT_EQ(store.series("ctrl.link_ms.p50"), nullptr);

  lat.observe(1.0);
  lat.observe(2.0);
  lat.observe(100.0);
  store.sample(registry, 2 * kMs);
  const auto* p50 = store.series("ctrl.link_ms.p50");
  const auto* p99 = store.series("ctrl.link_ms.p99");
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p99, nullptr);
  EXPECT_EQ(p50->size(), 1u);  // only the tick after data arrived
  EXPECT_GT(p99->newest().value, 0.0);
}

// The acceptance scenario: a synthetic rate step trips the EWMA/z-score
// watch exactly once (edge-triggered), the alert lands in the monitor's
// stream and the JSONL export carries the series and trace metadata.
TEST(TimeSeriesStore, RateStepFiresExactlyOneAnomalyAlert) {
  obs::Telemetry telemetry;
  SimClock clock;
  telemetry.monitor.set_clock(&clock);

  auto& pkts = telemetry.metrics.counter("rmt.packets");
  obs::AnomalyConfig config;
  config.warmup_samples = 4;
  telemetry.series.watch_rate("rmt.packets", config);

  SimClock::Nanos t = 0;
  // Steady state: 100 packets per 1 ms tick, well past warmup.
  for (int i = 0; i < 20; ++i) {
    pkts.inc(100);
    t += kMs;
    telemetry.series.sample(telemetry.metrics, t);
  }
  EXPECT_EQ(telemetry.series.anomalies_fired(), 0u);
  EXPECT_EQ(telemetry.monitor.alerts_fired(), 0u);

  // A 100x rate step, sustained. The detector must fire on the step edge
  // and then adapt (the EWMA estimate converges to the new level, |z|
  // falls, the watch re-arms) without firing again.
  {
    // Sampling here runs under an active control trace, as it would when
    // the step is observed during a traced operation; the alert inherits
    // the id.
    obs::TraceScope scope(&telemetry);
    for (int i = 0; i < 30; ++i) {
      pkts.inc(10'000);
      t += kMs;
      telemetry.series.sample(telemetry.metrics, t);
    }
    EXPECT_EQ(scope.trace_id(), 1u);
  }
  EXPECT_EQ(telemetry.series.anomalies_fired(), 1u);
  EXPECT_EQ(telemetry.monitor.alerts_fired(), 1u);

  const obs::MonitorEvent* alert = nullptr;
  for (const auto& event : telemetry.monitor.events()) {
    if (event.kind == obs::MonitorEvent::Kind::Alert) {
      EXPECT_EQ(alert, nullptr) << "second alert from one sustained step";
      alert = &event;
    }
  }
  ASSERT_NE(alert, nullptr);
  EXPECT_EQ(alert->rule, "anomaly.z_score");
  EXPECT_EQ(alert->series, "rmt.packets.rate");
  EXPECT_GT(alert->value, alert->threshold);
  EXPECT_EQ(alert->trace, 1u);

  // The alert froze the flight recorder so the journeys leading up to the
  // anomaly survive.
  EXPECT_TRUE(telemetry.flight.frozen());
  EXPECT_EQ(telemetry.flight.freeze_reason(), "anomaly.z_score");

  // JSONL export carries the series and trace metadata.
  std::ostringstream out;
  obs::export_alerts_jsonl(telemetry.monitor, out);
  const std::string jsonl = out.str();
  EXPECT_NE(jsonl.find("\"kind\":\"alert\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"rule\":\"anomaly.z_score\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"series\":\"rmt.packets.rate\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"trace\":\"0000000000000001\""), std::string::npos);
}

TEST(TimeSeriesStore, ValueWatchAndRearmOnNextStep) {
  obs::Telemetry telemetry;
  auto& depth = telemetry.metrics.gauge("ctrl.queue_depth");
  obs::AnomalyConfig config;
  config.warmup_samples = 4;
  telemetry.series.watch_value("ctrl.queue_depth", config);

  SimClock::Nanos t = 0;
  for (int i = 0; i < 12; ++i) {
    depth.set(10.0);
    t += kMs;
    telemetry.series.sample(telemetry.metrics, t);
  }
  EXPECT_EQ(telemetry.series.anomalies_fired(), 0u);

  // First step fires once, then the estimate adapts and the watch re-arms.
  for (int i = 0; i < 30; ++i) {
    depth.set(500.0);
    t += kMs;
    telemetry.series.sample(telemetry.metrics, t);
  }
  EXPECT_EQ(telemetry.series.anomalies_fired(), 1u);

  // A second, later step is a new anomaly: the re-armed watch fires again.
  for (int i = 0; i < 30; ++i) {
    depth.set(20'000.0);
    t += kMs;
    telemetry.series.sample(telemetry.metrics, t);
  }
  EXPECT_EQ(telemetry.series.anomalies_fired(), 2u);
}

TEST(TimeSeriesStore, SelfOverheadProbesBecomeSeries) {
  obs::Telemetry telemetry;
  telemetry.metrics.counter("c").inc();
  telemetry.series.sample(telemetry.metrics, 1 * kMs);
  telemetry.series.sample(telemetry.metrics, 2 * kMs);

  // The bundle attaches the store's obs.self.* probes to its registry, so
  // the store's own cost shows up as series on later ticks.
  const auto* samples = telemetry.series.series("obs.self.series_samples");
  ASSERT_NE(samples, nullptr);
  // The second tick observed the count as of its own sampling pass.
  EXPECT_GE(samples->newest().value, 1.0);
  EXPECT_NE(telemetry.series.series("obs.self.series_count"), nullptr);
  EXPECT_GE(telemetry.series.samples_taken(), 2u);
}

TEST(TimeSeriesStore, ClearDropsSeriesButKeepsCadenceAndWatches) {
  obs::Telemetry telemetry;
  auto& pkts = telemetry.metrics.counter("rmt.packets");
  telemetry.series.set_cadence(10 * kMs);
  obs::AnomalyConfig config;
  config.warmup_samples = 2;
  telemetry.series.watch_rate("rmt.packets", config);

  pkts.inc(5);
  telemetry.series.sample(telemetry.metrics, kMs);
  EXPECT_NE(telemetry.series.series("rmt.packets"), nullptr);

  telemetry.series.clear();
  EXPECT_EQ(telemetry.series.series("rmt.packets"), nullptr);
  EXPECT_EQ(telemetry.series.samples_taken(), 0u);
  EXPECT_EQ(telemetry.series.cadence(), 10 * kMs);

  // The watch survives the clear and detects again after a fresh warmup.
  SimClock::Nanos t = 0;
  for (int i = 0; i < 10; ++i) {
    pkts.inc(100);
    t += kMs;
    telemetry.series.sample(telemetry.metrics, t);
  }
  for (int i = 0; i < 5; ++i) {
    pkts.inc(50'000);
    t += kMs;
    telemetry.series.sample(telemetry.metrics, t);
  }
  EXPECT_EQ(telemetry.series.anomalies_fired(), 1u);
}

TEST(TimeSeriesStore, SeriesJsonlIsDeterministicAndSorted) {
  obs::MetricsRegistry registry;
  registry.counter("b.second").inc(2);
  registry.counter("a.first").inc(1);
  obs::TimeSeriesStore store;
  store.sample(registry, 1 * kMs);
  store.sample(registry, 2 * kMs);

  std::ostringstream out1, out2;
  obs::export_series_jsonl(store, out1);
  obs::export_series_jsonl(store, out2);
  EXPECT_EQ(out1.str(), out2.str());

  const std::string jsonl = out1.str();
  const auto first = jsonl.find("\"name\":\"a.first\"");
  const auto second = jsonl.find("\"name\":\"b.second\"");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_NE(jsonl.find("\"type\":\"series\""), std::string::npos);
  // Samples are [t_ms, value] pairs; t=1ms value=1 for a.first.
  EXPECT_NE(jsonl.find("\"samples\":[[1,1],[2,1]]"), std::string::npos) << jsonl;
}

}  // namespace
}  // namespace p4runpro
