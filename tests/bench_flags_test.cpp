// The bench binaries share one sidecar-flag parser (bench_util.h): it must
// accept both `--flag=path` and `--flag path` spellings, mark exactly the
// argv slots it consumed (so benchmark::Initialize never sees them), and
// leave unknown flags unconsumed so the google-benchmark layer still
// rejects typos with a clean error instead of silently ignoring them.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using p4runpro::bench::SidecarFlags;

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  return argv;
}

TEST(BenchFlags, EqualsFormIsParsedAndConsumed) {
  std::vector<std::string> args = {"bench", "--bench-json-out=/tmp/x.json",
                                   "--telemetry-out=/tmp/m.jsonl"};
  auto argv = argv_of(args);
  const auto flags = SidecarFlags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.bench_json_path, "/tmp/x.json");
  EXPECT_EQ(flags.metrics_path, "/tmp/m.jsonl");
  ASSERT_EQ(flags.consumed.size(), 3u);
  EXPECT_FALSE(flags.consumed[0]);  // argv[0] is never consumed
  EXPECT_TRUE(flags.consumed[1]);
  EXPECT_TRUE(flags.consumed[2]);
}

TEST(BenchFlags, SpaceFormConsumesBothSlots) {
  std::vector<std::string> args = {"bench", "--bench-json-out", "out.json",
                                   "--benchmark_filter=BM_Inject"};
  auto argv = argv_of(args);
  const auto flags = SidecarFlags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.bench_json_path, "out.json");
  EXPECT_TRUE(flags.consumed[1]);
  EXPECT_TRUE(flags.consumed[2]);
  // Benchmark-library flags pass through untouched.
  EXPECT_FALSE(flags.consumed[3]);
}

TEST(BenchFlags, UnknownFlagsStayUnconsumed) {
  // The smoke contract behind CI's unknown-flag check: the sidecar parser
  // must not swallow a typo like --bench-json-outt, so the benchmark
  // argument parser still sees it and errors out (nonzero exit).
  std::vector<std::string> args = {"bench", "--bench-json-outt=x",
                                   "--no-such-flag", "value"};
  auto argv = argv_of(args);
  const auto flags = SidecarFlags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.bench_json_path.empty());
  EXPECT_FALSE(flags.consumed[1]);
  EXPECT_FALSE(flags.consumed[2]);
  EXPECT_FALSE(flags.consumed[3]);
}

TEST(BenchFlags, AllSidecarFlagsParse) {
  std::vector<std::string> args = {
      "bench",           "--telemetry-out=m", "--trace-out", "t",
      "--alerts-out=a",  "--flight-out", "f", "--bench-json-out=b",
      "--shards=1,2,4"};
  auto argv = argv_of(args);
  const auto flags = SidecarFlags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.metrics_path, "m");
  EXPECT_EQ(flags.trace_path, "t");
  EXPECT_EQ(flags.alerts_path, "a");
  EXPECT_EQ(flags.flight_path, "f");
  EXPECT_EQ(flags.bench_json_path, "b");
  EXPECT_EQ(flags.shards, "1,2,4");
  for (std::size_t i = 1; i < flags.consumed.size(); ++i) {
    EXPECT_TRUE(flags.consumed[i]) << i;
  }
}

TEST(BenchFlags, ShardsParsesBothSpellings) {
  std::vector<std::string> eq = {"bench", "--shards=4"};
  auto eq_argv = argv_of(eq);
  const auto eq_flags =
      SidecarFlags::parse(static_cast<int>(eq_argv.size()), eq_argv.data());
  EXPECT_EQ(eq_flags.shards, "4");
  EXPECT_TRUE(eq_flags.consumed[1]);

  std::vector<std::string> sp = {"bench", "--shards", "1,2"};
  auto sp_argv = argv_of(sp);
  const auto sp_flags =
      SidecarFlags::parse(static_cast<int>(sp_argv.size()), sp_argv.data());
  EXPECT_EQ(sp_flags.shards, "1,2");
  EXPECT_TRUE(sp_flags.consumed[1]);
  EXPECT_TRUE(sp_flags.consumed[2]);
}

TEST(BenchFlags, TelemetryEveryParsesBothSpellings) {
  std::vector<std::string> eq = {"bench", "--telemetry-every=5"};
  auto eq_argv = argv_of(eq);
  const auto eq_flags =
      SidecarFlags::parse(static_cast<int>(eq_argv.size()), eq_argv.data());
  EXPECT_EQ(eq_flags.telemetry_every_ms, "5");
  EXPECT_TRUE(eq_flags.consumed[1]);

  std::vector<std::string> sp = {"bench", "--telemetry-every", "2.5"};
  auto sp_argv = argv_of(sp);
  const auto sp_flags =
      SidecarFlags::parse(static_cast<int>(sp_argv.size()), sp_argv.data());
  EXPECT_EQ(sp_flags.telemetry_every_ms, "2.5");
  EXPECT_TRUE(sp_flags.consumed[1]);
  EXPECT_TRUE(sp_flags.consumed[2]);
}

TEST(BenchFlags, TelemetryEveryDoesNotShadowTelemetryOut) {
  // Both flags share the "--telemetry-" prefix; each must bind its own
  // value regardless of order.
  std::vector<std::string> args = {"bench", "--telemetry-every=7",
                                   "--telemetry-out=m.jsonl"};
  auto argv = argv_of(args);
  const auto flags = SidecarFlags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.telemetry_every_ms, "7");
  EXPECT_EQ(flags.metrics_path, "m.jsonl");
}

TEST(BenchFlags, TelemetryEveryTypoStaysUnconsumed) {
  // --telemetry-everyy must NOT be swallowed by the --telemetry-every
  // prefix match: the leftover "y=5" is neither "=" nor empty. The slot
  // reaches benchmark::Initialize, which rejects the unknown flag loudly
  // instead of silently disabling periodic sampling.
  std::vector<std::string> args = {"bench", "--telemetry-everyy=5"};
  auto argv = argv_of(args);
  const auto flags = SidecarFlags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.telemetry_every_ms.empty());
  EXPECT_FALSE(flags.consumed[1]);
}

TEST(BenchFlags, DanglingSpaceFormFlagIsNotConsumed) {
  // `--bench-json-out` as the last token has no path to bind to; leaving it
  // unconsumed lets the downstream parser report it instead of a silent
  // half-parse.
  std::vector<std::string> args = {"bench", "--bench-json-out"};
  auto argv = argv_of(args);
  const auto flags = SidecarFlags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.bench_json_path.empty());
  EXPECT_FALSE(flags.consumed[1]);
}

}  // namespace
