// The bench binaries share one sidecar-flag parser (bench_util.h): it must
// accept both `--flag=path` and `--flag path` spellings, mark exactly the
// argv slots it consumed (so benchmark::Initialize never sees them), and
// leave unknown flags unconsumed so the google-benchmark layer still
// rejects typos with a clean error instead of silently ignoring them.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using p4runpro::bench::SidecarFlags;

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  return argv;
}

TEST(BenchFlags, EqualsFormIsParsedAndConsumed) {
  std::vector<std::string> args = {"bench", "--bench-json-out=/tmp/x.json",
                                   "--telemetry-out=/tmp/m.jsonl"};
  auto argv = argv_of(args);
  const auto flags = SidecarFlags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.bench_json_path, "/tmp/x.json");
  EXPECT_EQ(flags.metrics_path, "/tmp/m.jsonl");
  ASSERT_EQ(flags.consumed.size(), 3u);
  EXPECT_FALSE(flags.consumed[0]);  // argv[0] is never consumed
  EXPECT_TRUE(flags.consumed[1]);
  EXPECT_TRUE(flags.consumed[2]);
}

TEST(BenchFlags, SpaceFormConsumesBothSlots) {
  std::vector<std::string> args = {"bench", "--bench-json-out", "out.json",
                                   "--benchmark_filter=BM_Inject"};
  auto argv = argv_of(args);
  const auto flags = SidecarFlags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.bench_json_path, "out.json");
  EXPECT_TRUE(flags.consumed[1]);
  EXPECT_TRUE(flags.consumed[2]);
  // Benchmark-library flags pass through untouched.
  EXPECT_FALSE(flags.consumed[3]);
}

TEST(BenchFlags, UnknownFlagsStayUnconsumed) {
  // The smoke contract behind CI's unknown-flag check: the sidecar parser
  // must not swallow a typo like --bench-json-outt, so the benchmark
  // argument parser still sees it and errors out (nonzero exit).
  std::vector<std::string> args = {"bench", "--bench-json-outt=x",
                                   "--no-such-flag", "value"};
  auto argv = argv_of(args);
  const auto flags = SidecarFlags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.bench_json_path.empty());
  EXPECT_FALSE(flags.consumed[1]);
  EXPECT_FALSE(flags.consumed[2]);
  EXPECT_FALSE(flags.consumed[3]);
}

TEST(BenchFlags, AllSidecarFlagsParse) {
  std::vector<std::string> args = {
      "bench",           "--telemetry-out=m", "--trace-out", "t",
      "--alerts-out=a",  "--flight-out", "f", "--bench-json-out=b"};
  auto argv = argv_of(args);
  const auto flags = SidecarFlags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.metrics_path, "m");
  EXPECT_EQ(flags.trace_path, "t");
  EXPECT_EQ(flags.alerts_path, "a");
  EXPECT_EQ(flags.flight_path, "f");
  EXPECT_EQ(flags.bench_json_path, "b");
  for (std::size_t i = 1; i < flags.consumed.size(); ++i) {
    EXPECT_TRUE(flags.consumed[i]) << i;
  }
}

TEST(BenchFlags, DanglingSpaceFormFlagIsNotConsumed) {
  // `--bench-json-out` as the last token has no path to bind to; leaving it
  // unconsumed lets the downstream parser report it instead of a silent
  // half-parse.
  std::vector<std::string> args = {"bench", "--bench-json-out"};
  auto argv = argv_of(args);
  const auto flags = SidecarFlags::parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.bench_json_path.empty());
  EXPECT_FALSE(flags.consumed[1]);
}

}  // namespace
