// Fairness properties of the admission controller, driven directly (the
// class is a leaf component, so the scheduler can be exercised with exact
// control over arrival order and slot occupancy):
//   - under synthetic starvation load (all tenants backlogged behind one
//     slot), every tenant's k-th grant lands within the weighted-fair
//     position bound k * (total_weight / weight_t) + slack — no tenant
//     starves, heavy tenants cannot monopolize;
//   - an idle tenant re-enters at the CURRENT virtual time (no banked
//     credit): its backlog interleaves 1:1 with an equally-weighted tenant
//     that has been busy all along, instead of flushing first;
//   - shed accounting is exact at the queue bound: arrivals past the bound
//     fail synchronously with AdmissionShed, are counted exactly once, and
//     grants + sheds always equals arrivals.
// Run under TSan in CI (suite name is in the concurrency filter).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "control/admission.h"

namespace p4runpro {
namespace {

TEST(TenantFairness, BackloggedTenantsGrantWithinWeightedFairBound) {
  ctrl::AdmissionController admission(
      ctrl::AdmissionConfig{.max_inflight = 1, .max_queued = 256});

  // Occupy the single slot so every worker below queues.
  auto blocker = admission.acquire(99, 1.0);
  ASSERT_TRUE(blocker.ok());

  const std::map<ctrl::TenantId, double> weights = {{1, 4.0}, {2, 2.0}, {3, 1.0}};
  constexpr int kPerTenant = 8;
  const double total_weight = 7.0;

  std::mutex mu;
  std::vector<std::pair<ctrl::TenantId, std::uint64_t>> grants;  // (tenant, seq)
  std::vector<std::thread> workers;
  for (const auto& [tenant, weight] : weights) {
    for (int k = 0; k < kPerTenant; ++k) {
      workers.emplace_back([&admission, &mu, &grants, tenant = tenant,
                            weight = weight] {
        auto grant = admission.acquire(tenant, weight);
        EXPECT_TRUE(grant.ok());
        if (grant.ok()) {
          {
            std::lock_guard<std::mutex> lock(mu);
            grants.emplace_back(tenant, grant.value().seq);
          }
          admission.release();
        }
      });
    }
  }
  // Everyone queued -> the fair order is computed over the full backlog.
  while (admission.queue_depth() <
         static_cast<std::size_t>(weights.size()) * kPerTenant) {
    std::this_thread::yield();
  }
  admission.release();  // open the slot; grants cascade in fair order
  for (auto& worker : workers) worker.join();

  ASSERT_EQ(grants.size(), weights.size() * kPerTenant);
  std::sort(grants.begin(), grants.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  // Position of each tenant's k-th grant vs the start-time-fair-queuing
  // bound. Slack of one grant per tenant covers virtual-time ties (broken
  // by racy arrival order).
  std::map<ctrl::TenantId, int> seen;
  for (std::size_t pos = 0; pos < grants.size(); ++pos) {
    const ctrl::TenantId tenant = grants[pos].first;
    const int k = ++seen[tenant];
    const double bound =
        k * (total_weight / weights.at(tenant)) + static_cast<double>(weights.size());
    EXPECT_LE(static_cast<double>(pos + 1), bound)
        << "tenant " << tenant << " grant " << k << " at position " << pos + 1;
  }

  // Proportional share in the oversubscribed prefix: of the first 8 grants
  // the weight-4 tenant holds at least half, the weight-1 tenant at most 2.
  std::map<ctrl::TenantId, int> prefix;
  for (std::size_t pos = 0; pos < 8; ++pos) ++prefix[grants[pos].first];
  EXPECT_GE(prefix[1], 4);
  EXPECT_LE(prefix[3], 2);

  // Exactly-once grant accounting.
  EXPECT_EQ(admission.grants(), 1u + weights.size() * kPerTenant);
  EXPECT_EQ(admission.sheds(), 0u);
  EXPECT_EQ(admission.inflight(), 0);
  EXPECT_EQ(admission.queue_depth(), 0u);
  for (const auto& [tenant, weight] : weights) {
    (void)weight;
    EXPECT_EQ(admission.tenant_grants(tenant),
              static_cast<std::uint64_t>(kPerTenant));
  }
}

TEST(TenantFairness, IdleTenantReentersAtCurrentVirtualTimeWithoutCredit) {
  ctrl::AdmissionController admission(
      ctrl::AdmissionConfig{.max_inflight = 1, .max_queued = 64});

  // Tenant 1 is busy for a while; tenant 2 stays idle. If idleness banked
  // credit, tenant 2's backlog would flush before tenant 1's.
  for (int i = 0; i < 10; ++i) {
    auto grant = admission.acquire(1, 1.0);
    ASSERT_TRUE(grant.ok());
    admission.release();
  }

  auto blocker = admission.acquire(99, 1.0);
  ASSERT_TRUE(blocker.ok());

  // Queue tenant 1's backlog first, then tenant 2's, with deterministic
  // arrival order (each worker is observed queued before the next starts).
  std::mutex mu;
  std::vector<ctrl::TenantId> order;
  std::vector<std::thread> workers;
  const std::vector<ctrl::TenantId> arrivals = {1, 1, 1, 1, 2, 2, 2, 2};
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    workers.emplace_back([&admission, &mu, &order, tenant = arrivals[i]] {
      auto grant = admission.acquire(tenant, 1.0);
      EXPECT_TRUE(grant.ok());
      if (grant.ok()) {
        {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(tenant);
        }
        admission.release();
      }
    });
    while (admission.queue_depth() < i + 1) std::this_thread::yield();
  }
  admission.release();
  for (auto& worker : workers) worker.join();

  // No banked credit: both tenants' stamps chain from the same virtual
  // time, so equal weights interleave 1:1 (ties fall back to arrival
  // order) — NOT tenant 2 first despite its 10-grant "deficit".
  const std::vector<ctrl::TenantId> expected = {1, 2, 1, 2, 1, 2, 1, 2};
  EXPECT_EQ(order, expected);
}

TEST(TenantFairness, ShedAccountingIsExactAtTheQueueBound) {
  ctrl::AdmissionController admission(
      ctrl::AdmissionConfig{.max_inflight = 1, .max_queued = 4});

  auto blocker = admission.acquire(0, 1.0);
  ASSERT_TRUE(blocker.ok());

  std::vector<std::thread> queued;
  for (int i = 0; i < 4; ++i) {
    queued.emplace_back([&admission] {
      auto grant = admission.acquire(5, 1.0);
      EXPECT_TRUE(grant.ok());
      if (grant.ok()) admission.release();
    });
    while (admission.queue_depth() < static_cast<std::size_t>(i) + 1) {
      std::this_thread::yield();
    }
  }

  // The queue is at its bound: every further arrival sheds synchronously,
  // without blocking and without perturbing the queue.
  for (int i = 0; i < 6; ++i) {
    auto shed = admission.acquire(7, 1.0);
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.error().code, ErrorCode::AdmissionShed);
    EXPECT_NE(shed.error().str().find("[AdmissionShed]"), std::string::npos);
  }
  EXPECT_EQ(admission.sheds(), 6u);
  EXPECT_EQ(admission.tenant_sheds(7), 6u);
  EXPECT_EQ(admission.tenant_sheds(5), 0u);
  EXPECT_EQ(admission.queue_depth(), 4u);

  admission.release();
  for (auto& worker : queued) worker.join();

  // Exactly once, both directions: grants + sheds == arrivals, counters
  // unchanged by the drain, nothing left in flight.
  EXPECT_EQ(admission.grants(), 5u);
  EXPECT_EQ(admission.sheds(), 6u);
  EXPECT_EQ(admission.tenant_grants(5), 4u);
  EXPECT_EQ(admission.inflight(), 0);
  EXPECT_EQ(admission.queue_depth(), 0u);
}

}  // namespace
}  // namespace p4runpro
