// NetVRM baseline tests: utility-driven reallocation beats static
// partitioning for heterogeneous applications but cannot express runtime
// program addition (the generality gap P4runpro fills, §2.2).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/netvrm.h"

namespace p4runpro::baselines {
namespace {

NetvrmApp make_app(const std::string& name, double scale, double knee) {
  NetvrmApp app;
  app.name = name;
  // Concave accuracy curve: scale * (1 - exp(-pages / knee)).
  app.utility = [scale, knee](std::uint32_t pages) {
    return scale * (1.0 - std::exp(-static_cast<double>(pages) / knee));
  };
  app.min_pages = 1;
  return app;
}

TEST(Netvrm, ReallocationBeatsStaticPartitioning) {
  NetvrmManager dynamic(128);
  NetvrmManager statically(128);
  for (auto* mgr : {&dynamic, &statically}) {
    mgr->add_app(make_app("hungry_sketch", 10.0, 100.0));  // wants lots of memory
    mgr->add_app(make_app("small_filter", 5.0, 4.0));      // saturates early
    mgr->add_app(make_app("tiny_counter", 2.0, 2.0));
  }
  dynamic.reallocate();
  statically.partition_statically();
  EXPECT_GT(dynamic.total_utility(), statically.total_utility());

  // The hungry application received the bulk of the pool.
  const auto& apps = dynamic.apps();
  EXPECT_GT(apps[0].pages, apps[1].pages);
  EXPECT_GT(apps[0].pages, 64u);
  // Everyone keeps at least the minimum.
  for (const auto& app : apps) EXPECT_GE(app.pages, app.min_pages);
}

TEST(Netvrm, PagesNeverExceedThePool) {
  NetvrmManager mgr(32);
  mgr.add_app(make_app("a", 3.0, 10.0));
  mgr.add_app(make_app("b", 3.0, 10.0));
  mgr.reallocate();
  std::uint32_t used = 0;
  for (const auto& app : mgr.apps()) used += app.pages;
  EXPECT_LE(used, mgr.total_pages());
}

TEST(Netvrm, WaterFillingIsGreedyOptimalForConcaveCurves) {
  // Two identical concave apps: the optimum splits the pool evenly.
  NetvrmManager mgr(100);
  mgr.add_app(make_app("a", 5.0, 20.0));
  mgr.add_app(make_app("b", 5.0, 20.0));
  mgr.reallocate();
  EXPECT_NEAR(static_cast<double>(mgr.apps()[0].pages),
              static_cast<double>(mgr.apps()[1].pages), 1.0);
}

TEST(Netvrm, SaturatedUtilityLeavesPagesUnused) {
  // An app whose utility flattens to zero marginal gain stops absorbing
  // pages (the manager does not force-allocate useless memory).
  NetvrmManager mgr(1000);
  NetvrmApp flat;
  flat.name = "flat";
  flat.utility = [](std::uint32_t pages) {
    return pages >= 10 ? 1.0 : pages / 10.0;
  };
  flat.min_pages = 1;
  mgr.add_app(std::move(flat));
  mgr.reallocate();
  EXPECT_LE(mgr.apps()[0].pages, 11u);
}

}  // namespace
}  // namespace p4runpro::baselines
