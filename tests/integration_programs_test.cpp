// Packet-level behaviour of the catalog programs beyond the cache:
// load balancer, calculator (full ALU incl. the pseudo primitives),
// heavy hitter (recirculation + report), firewall, ECN, Bloom filter,
// HyperLogLog rank cases, DQAcc.
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

rmt::Packet udp_packet(std::uint32_t src, std::uint32_t dst, std::uint16_t sport,
                       std::uint16_t dport) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = src, .dst = dst, .proto = 17};
  pkt.udp = rmt::UdpHeader{sport, dport};
  pkt.payload_len = 64;
  pkt.ingress_port = 1;
  return pkt;
}

rmt::Packet tcp_packet(std::uint32_t src, std::uint32_t dst, std::uint16_t sport,
                       std::uint16_t dport) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = src, .dst = dst, .proto = 6};
  pkt.tcp = rmt::TcpHeader{sport, dport, 0x10};
  pkt.payload_len = 128;
  pkt.ingress_port = 1;
  return pkt;
}

rmt::Packet app_packet(Word op, Word a, Word b, std::uint16_t dport) {
  rmt::Packet pkt = udp_packet(0x0a000001, 0x0a000002, 3333, dport);
  pkt.app = rmt::AppHeader{op, a, b, 0};
  return pkt;
}

class ProgramIntegration : public ::testing::Test {
 protected:
  ProgramIntegration()
      : dataplane_(dp::DataplaneSpec{}, rmt::ParserConfig{{7777, 9999, 5555}}),
        controller_(dataplane_, clock_) {}

  ProgramId link(const std::string& key, apps::ProgramConfig config = {}) {
    if (config.instance_name.empty()) config.instance_name = key;
    auto r = controller_.link_single(apps::make_program_source(key, config));
    EXPECT_TRUE(r.ok()) << key << ": " << (r.ok() ? "" : r.error().str());
    return r.ok() ? r.value().id : 0;
  }

  SimClock clock_;
  dp::RunproDataplane dataplane_;
  ctrl::Controller controller_;
};

TEST_F(ProgramIntegration, LoadBalancerRewritesDipAndForwards) {
  const ProgramId id = link("lb");
  // Program the pools: bucket b -> port (b % 2), DIP 172.16.0.b.
  const auto* placements = controller_.resources().program_placements(id);
  ASSERT_NE(placements, nullptr);
  const std::uint32_t pool = placements->at("port_pool").block.size;
  for (std::uint32_t b = 0; b < pool; ++b) {
    ASSERT_TRUE(controller_.write_memory(id, "port_pool", b, b % 2).ok());
    ASSERT_TRUE(controller_.write_memory(id, "dip_pool", b, 0xac100000u + b).ok());
  }

  // VIP traffic (dst 10.0/16) must leave on port 0 or 1 with a rewritten
  // destination from the DIP pool.
  int port_hits[2] = {0, 0};
  for (std::uint16_t i = 0; i < 64; ++i) {
    auto result = dataplane_.inject(
        udp_packet(0x0b000000u + i, 0x0a000005u, static_cast<std::uint16_t>(1000 + i), 80));
    ASSERT_EQ(result.fate, rmt::PacketFate::Forwarded);
    ASSERT_LT(result.egress_port, 2);
    ++port_hits[result.egress_port];
    ASSERT_TRUE(result.packet.ipv4.has_value());
    EXPECT_EQ(result.packet.ipv4->dst & 0xffff0000u, 0xac100000u);
    // DIP consistent with the chosen port (same bucket).
    EXPECT_EQ((result.packet.ipv4->dst & 0xffffu) % 2, result.egress_port);
  }
  // Hashing should spread flows over both ports.
  EXPECT_GT(port_hits[0], 8);
  EXPECT_GT(port_hits[1], 8);
}

TEST_F(ProgramIntegration, CalculatorComputesAllOps) {
  link("calculator");
  const Word a = 1000;
  const Word b = 77;
  const struct {
    Word op;
    Word expect;
  } kCases[] = {
      {1, a + b}, {2, a - b}, {3, a & b}, {4, a | b},
      {5, a ^ b}, {6, std::max(a, b)}, {7, std::min(a, b)},
  };
  for (const auto& c : kCases) {
    auto result = dataplane_.inject(app_packet(c.op, a, b, 9999));
    EXPECT_EQ(result.fate, rmt::PacketFate::Returned) << "op " << c.op;
    ASSERT_TRUE(result.packet.app.has_value());
    EXPECT_EQ(result.packet.app->value, c.expect) << "op " << c.op;
  }
}

TEST_F(ProgramIntegration, CalculatorSubtractionWrapsLikeHardware) {
  link("calculator");
  auto result = dataplane_.inject(app_packet(2, 5, 7, 9999));
  ASSERT_TRUE(result.packet.app.has_value());
  EXPECT_EQ(result.packet.app->value, static_cast<Word>(5 - 7));
}

TEST_F(ProgramIntegration, HeavyHitterReportsOncePerFlow) {
  apps::ProgramConfig config;
  config.threshold = 10;
  config.instance_name = "hh";
  const ProgramId id = link("hh", config);
  (void)id;

  const auto heavy = udp_packet(0x0a000010u, 0x0b000001u, 5000, 6000);
  int reported = 0;
  for (int i = 0; i < 30; ++i) {
    auto result = dataplane_.inject(heavy);
    // hh spans two rounds (recirculation).
    EXPECT_EQ(result.recirc_passes, 1) << "packet " << i;
    if (result.fate == rmt::PacketFate::Reported) ++reported;
  }
  // Reported exactly once: the Bloom filter suppresses duplicates.
  EXPECT_EQ(reported, 1);

  // A mouse flow is never reported.
  const auto mouse = udp_packet(0x0a000011u, 0x0b000002u, 5001, 6001);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(dataplane_.inject(mouse).fate, rmt::PacketFate::Reported);
  }
}

TEST_F(ProgramIntegration, FirewallAdmitsOnlyEstablishedFlows) {
  link("firewall");
  // Inbound before any outbound traffic: dropped.
  auto blocked = dataplane_.inject(tcp_packet(0x0b000001u, 0x0a000001u, 80, 4000));
  EXPECT_EQ(blocked.fate, rmt::PacketFate::Dropped);

  // Outbound packet from the internal prefix: forwarded and remembered.
  auto outbound = dataplane_.inject(tcp_packet(0x0a000001u, 0x0b000001u, 4000, 80));
  EXPECT_EQ(outbound.fate, rmt::PacketFate::Forwarded);
  EXPECT_EQ(outbound.egress_port, 1);

  // The same 5-tuple now passes inbound (the data-plane model hashes the
  // tuple as-is, so replay the exact tuple).
  auto established = dataplane_.inject(tcp_packet(0x0a000001u, 0x0b000001u, 4000, 80));
  EXPECT_EQ(established.fate, rmt::PacketFate::Forwarded);
}

TEST_F(ProgramIntegration, EcnMarksOnlyUnderCongestion) {
  apps::ProgramConfig config;
  config.threshold = 100;
  config.instance_name = "ecn";
  link("ecn", config);

  dataplane_.pipeline().set_qdepth(10);
  auto calm = dataplane_.inject(tcp_packet(0x0a000001u, 0x0b000001u, 1, 2));
  ASSERT_TRUE(calm.packet.ipv4.has_value());
  EXPECT_EQ(calm.packet.ipv4->ecn, 0);

  dataplane_.pipeline().set_qdepth(500);
  auto congested = dataplane_.inject(tcp_packet(0x0a000001u, 0x0b000001u, 1, 2));
  EXPECT_EQ(congested.packet.ipv4->ecn, 3);
}

TEST_F(ProgramIntegration, BloomFilterDropsBlacklistedFlows) {
  const ProgramId id = link("bf");
  const auto pkt = udp_packet(0x0a000042u, 0x0b000001u, 1234, 5678);
  // Initially forwarded.
  EXPECT_EQ(dataplane_.inject(pkt).fate, rmt::PacketFate::Forwarded);

  // Blacklist the flow: set its buckets in both rows via the control
  // plane. The bucket indices use the per-stage CRC16 of the 5-tuple, so
  // compute them through the placements' RPB hash configuration.
  const auto* placements = controller_.resources().program_placements(id);
  ASSERT_NE(placements, nullptr);
  const auto tuple_bytes = pkt.five_tuple().bytes();
  for (const auto& row : {"bf_row1", "bf_row2"}) {
    const auto& placement = placements->at(row);
    // The bucket index is produced by the hash unit of the stage running
    // HASH_5_TUPLE_MEM, which is not the stage holding the memory.
    auto algo = controller_.hash_algo_for(id, row);
    ASSERT_TRUE(algo.ok());
    const Word index =
        rmt::run_hash(algo.value(), tuple_bytes) & (placement.block.size - 1);
    ASSERT_TRUE(controller_.write_memory(id, row, index, 1).ok());
  }
  EXPECT_EQ(dataplane_.inject(pkt).fate, rmt::PacketFate::Dropped);

  // Other flows unaffected (almost surely different buckets).
  const auto other = udp_packet(0x0a000043u, 0x0b000009u, 999, 888);
  EXPECT_EQ(dataplane_.inject(other).fate, rmt::PacketFate::Forwarded);
}

TEST_F(ProgramIntegration, DqaccAggregates) {
  const ProgramId id = link("dqacc");
  // Three partial aggregates into bucket 5.
  for (Word v : {10u, 20u, 30u}) {
    auto p = app_packet(1, 5, 0, 5555);
    p.app->value = v;
    auto r = dataplane_.inject(p);
    EXPECT_EQ(r.fate, rmt::PacketFate::Returned);
  }
  auto total = controller_.read_memory(id, "agg_pool", 5);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value(), 60u);

  // Read-aggregate packet returns the total in the value field.
  auto read = dataplane_.inject(app_packet(2, 5, 0, 5555));
  EXPECT_EQ(read.fate, rmt::PacketFate::Returned);
  EXPECT_EQ(read.packet.app->value, 60u);
}

TEST_F(ProgramIntegration, HllRecordsRanks) {
  const ProgramId id = link("hll");
  // Feed distinct flows; every HLL register must hold a plausible rank
  // (1..33) and at least one register must be non-zero.
  for (std::uint32_t i = 0; i < 200; ++i) {
    dataplane_.inject(udp_packet(0x0a000000u + i, 0x0b000001u, 1000, 2000));
  }
  const auto* placements = controller_.resources().program_placements(id);
  ASSERT_NE(placements, nullptr);
  const std::uint32_t size = placements->at("hll_regs").block.size;
  int nonzero = 0;
  for (std::uint32_t b = 0; b < size; ++b) {
    auto v = controller_.read_memory(id, "hll_regs", b);
    ASSERT_TRUE(v.ok());
    EXPECT_LE(v.value(), 33u);
    if (v.value() > 0) ++nonzero;
  }
  EXPECT_GT(nonzero, 50);
}

TEST_F(ProgramIntegration, AllCatalogProgramsLinkAndRevoke) {
  std::vector<ProgramId> ids;
  for (const auto& info : apps::program_catalog()) {
    apps::ProgramConfig config;
    config.instance_name = "prog_" + info.key;
    auto r = controller_.link_single(apps::make_program_source(info.key, config));
    ASSERT_TRUE(r.ok()) << info.key << ": " << (r.ok() ? "" : r.error().str());
    ids.push_back(r.value().id);
  }
  EXPECT_EQ(controller_.program_count(), apps::program_catalog().size());
  for (ProgramId id : ids) EXPECT_TRUE(controller_.revoke(id).ok());
  EXPECT_EQ(controller_.program_count(), 0u);
  // Everything released.
  EXPECT_DOUBLE_EQ(controller_.resources().total_memory_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(controller_.resources().total_entry_utilization(), 0.0);
}

}  // namespace
}  // namespace p4runpro
