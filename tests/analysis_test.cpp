// Analysis-module tests: metrics (F1, imbalance, moving average), the
// recirculation throughput/latency model (Fig. 11 invariants), and the
// static resource/latency/power analyzer (Fig. 10 / Table 2 shape).
#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "analysis/static_analyzer.h"
#include "analysis/throughput_model.h"
#include "dataplane/dataplane_spec.h"

namespace p4runpro::analysis {
namespace {

// --- metrics ---------------------------------------------------------------

TEST(Metrics, F1Score) {
  const std::set<int> truth{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(f1_score(std::set<int>{1, 2, 3, 4}, truth).f1, 1.0);
  const auto half = f1_score(std::set<int>{1, 2}, truth);
  EXPECT_DOUBLE_EQ(half.precision, 1.0);
  EXPECT_DOUBLE_EQ(half.recall, 0.5);
  EXPECT_NEAR(half.f1, 2.0 / 3.0, 1e-12);
  const auto noisy = f1_score(std::set<int>{1, 2, 9, 10}, truth);
  EXPECT_DOUBLE_EQ(noisy.precision, 0.5);
  EXPECT_DOUBLE_EQ(noisy.recall, 0.5);
  EXPECT_DOUBLE_EQ(f1_score(std::set<int>{}, truth).f1, 0.0);
  EXPECT_DOUBLE_EQ(f1_score(std::set<int>{}, std::set<int>{}).precision, 1.0);
}

TEST(Metrics, LoadImbalance) {
  EXPECT_DOUBLE_EQ(load_imbalance(50, 50), 0.0);
  EXPECT_DOUBLE_EQ(load_imbalance(100, 0), 1.0);
  EXPECT_DOUBLE_EQ(load_imbalance(75, 25), 0.5);
  EXPECT_DOUBLE_EQ(load_imbalance(0, 0), 0.0);
}

TEST(Metrics, MovingAverage) {
  const std::vector<double> series{0, 0, 0, 10, 0, 0, 0};
  const auto smoothed = moving_average(series, 3);
  ASSERT_EQ(smoothed.size(), series.size());
  EXPECT_NEAR(smoothed[3], 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(smoothed[2], 10.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(smoothed[0], 0.0);
  // Window 1 is the identity.
  EXPECT_EQ(moving_average(series, 1), series);
}

// --- recirculation model -----------------------------------------------------

TEST(Recirculation, NoIterationsNoLoss) {
  const RecirculationModel model;
  for (int size : {128, 512, 1500}) {
    EXPECT_DOUBLE_EQ(throughput_loss(model, size, 0), 0.0);
  }
}

TEST(Recirculation, LossGrowsWithIterations) {
  const RecirculationModel model;
  for (int size : {128, 512, 1500}) {
    double prev = 0.0;
    for (int it = 1; it <= 6; ++it) {
      const double loss = throughput_loss(model, size, it);
      EXPECT_GT(loss, prev) << size << " " << it;
      EXPECT_LE(loss, 1.0);
      prev = loss;
    }
  }
}

TEST(Recirculation, SmallPacketsSufferMore) {
  const RecirculationModel model;
  for (int it = 1; it <= 6; ++it) {
    EXPECT_GT(throughput_loss(model, 128, it), throughput_loss(model, 1500, it));
  }
}

TEST(Recirculation, OneIterationWithinPaperBand) {
  // Paper: 1-10% loss at one iteration, depending on packet size.
  const RecirculationModel model;
  for (int size : {128, 256, 512, 1024, 1500}) {
    const double loss = throughput_loss(model, size, 1);
    EXPECT_GE(loss, 0.005) << size;
    EXPECT_LE(loss, 0.105) << size;
  }
}

TEST(Recirculation, RttGrowthWithinPaperBand) {
  const RecirculationModel model;
  EXPECT_DOUBLE_EQ(normalized_rtt(model, 0), 1.0);
  const double growth = normalized_rtt(model, 6) - 1.0;
  EXPECT_GE(growth, 0.022);
  EXPECT_LE(growth, 0.072);
  for (int it = 1; it <= 6; ++it) {
    EXPECT_GT(normalized_rtt(model, it), normalized_rtt(model, it - 1));
  }
}

// --- static analyzer ----------------------------------------------------------

TEST(StaticAnalyzer, UsageWithinBudgets) {
  for (const auto& profile : {profile_p4runpro(dp::DataplaneSpec{}),
                              profile_activermt(), profile_flymon()}) {
    for (int r = 0; r < rmt::kNumResources; ++r) {
      const auto resource = static_cast<rmt::Resource>(r);
      const double pct = profile.usage.percent(resource, profile.budget);
      EXPECT_GE(pct, 0.0) << profile.name;
      EXPECT_LE(pct, 100.0) << profile.name;
    }
  }
}

TEST(StaticAnalyzer, P4runproShapeClaims) {
  const auto p4 = profile_p4runpro(dp::DataplaneSpec{});
  const auto armt = profile_activermt();
  const auto flymon = profile_flymon();
  auto pct = [](const SystemProfile& p, rmt::Resource r) {
    return p.usage.percent(r, p.budget);
  };
  // "P4runpro uses almost all the VLIW".
  EXPECT_GT(pct(p4, rmt::Resource::Vliw), 85.0);
  // "TCAM usage limits the scalability of the table size per RPB".
  EXPECT_GT(pct(p4, rmt::Resource::Tcam), 80.0);
  // "does not heavily rely on SRAM".
  EXPECT_LT(pct(p4, rmt::Resource::Sram), 60.0);
  // "hash unit and SALU exceed ActiveRMT (two extra RPB stages)".
  EXPECT_GT(pct(p4, rmt::Resource::Hash), pct(armt, rmt::Resource::Hash));
  EXPECT_GT(pct(p4, rmt::Resource::Salu), pct(armt, rmt::Resource::Salu));
  // One big table per RPB keeps LTID low; ActiveRMT burns many tables.
  EXPECT_LT(pct(p4, rmt::Resource::Ltid), 30.0);
  EXPECT_GT(pct(armt, rmt::Resource::Ltid), 60.0);
  // FlyMon small everywhere.
  for (int r = 0; r < rmt::kNumResources; ++r) {
    EXPECT_LT(pct(flymon, static_cast<rmt::Resource>(r)), 40.0);
  }
}

TEST(StaticAnalyzer, LatencyPowerShape) {
  const auto p4 = analyze(profile_p4runpro(dp::DataplaneSpec{}));
  const auto armt = analyze(profile_activermt());
  const auto flymon = analyze(profile_flymon());

  // Latency within a few cycles of the paper's Table 2.
  EXPECT_NEAR(p4.total_cycles, 622, 15);
  EXPECT_NEAR(armt.total_cycles, 620, 15);
  EXPECT_NEAR(flymon.total_cycles, 336, 15);
  EXPECT_LT(flymon.ingress_cycles, 60);

  // Power ordering and the 40 W budget consequence.
  EXPECT_GT(armt.total_power_w, p4.total_power_w);
  EXPECT_GT(p4.total_power_w, flymon.total_power_w);
  EXPECT_GT(armt.total_power_w, 40.0);
  EXPECT_LT(armt.traffic_limit_load_pct, 95);
  EXPECT_GE(p4.traffic_limit_load_pct, 93);
  EXPECT_EQ(flymon.traffic_limit_load_pct, 100);
}

TEST(StaticAnalyzer, PowerBudgetParameter) {
  const auto profile = profile_activermt();
  // A generous budget removes the traffic limit.
  EXPECT_EQ(analyze(profile, 100.0).traffic_limit_load_pct, 100);
  // A tight one throttles harder.
  EXPECT_LT(analyze(profile, 30.0).traffic_limit_load_pct,
            analyze(profile, 40.0).traffic_limit_load_pct);
}

}  // namespace
}  // namespace p4runpro::analysis
