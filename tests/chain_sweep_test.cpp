// Chain-vs-recirculation differential sweep: every chain-compatible
// catalog program must behave identically on a 2-switch chain (mirror
// deployment) and on a single recirculating switch, across a shared random
// packet stream.
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/rng.h"
#include "control/controller.h"
#include "dataplane/switch_chain.h"

namespace p4runpro {
namespace {

rmt::Packet random_packet(Rng& rng) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{
      .src = 0x0a000000u | static_cast<Word>(rng.uniform(1 << 10)),
      .dst = 0x0a000000u | static_cast<Word>(rng.uniform(1 << 10)),
      .proto = 17,
      .ttl = 64,
      .dscp = 0,
      .ecn = 0,
      .total_len = 100};
  pkt.udp = rmt::UdpHeader{static_cast<std::uint16_t>(rng.uniform(65536)),
                           static_cast<std::uint16_t>(rng.uniform(8) == 0
                                                          ? 7777
                                                          : rng.uniform(65536))};
  if (pkt.udp->dst_port == 7777) {
    pkt.app = rmt::AppHeader{static_cast<Word>(rng.uniform(3)),
                             0x8888u + static_cast<Word>(rng.uniform(3)), 0,
                             rng.next_u32()};
  }
  pkt.ingress_port = static_cast<Port>(rng.uniform(4));
  return pkt;
}

class ChainSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ChainSweep, ChainMatchesRecirculatingSwitch) {
  const std::string key = GetParam();
  const rmt::ParserConfig parser{{7777, 7788, 9999, 5555}};

  apps::ProgramConfig config;
  config.instance_name = key;
  config.threshold = 6;
  const std::string source = apps::make_program_source(key, config);

  // Reference: one switch with recirculation.
  SimClock clock_single;
  dp::RunproDataplane single(dp::DataplaneSpec{}, parser);
  ctrl::Controller controller_single(single, clock_single);
  auto ref = controller_single.link_single(source);
  ASSERT_TRUE(ref.ok()) << ref.error().str();

  const auto* installed = controller_single.program(ref.value().id);
  if (!dp::SwitchChain::chain_compatible(installed->ir.vmem_depths,
                                         installed->alloc.x,
                                         single.spec().total_rpbs())) {
    GTEST_SKIP() << key << " is not chain-compatible";
  }

  // Chain: two switches, same program mirrored on both.
  dp::SwitchChain chain(2, dp::DataplaneSpec{}, parser);
  SimClock clock_a, clock_b;
  ctrl::Controller ca(chain.switch_at(0), clock_a);
  ctrl::Controller cb(chain.switch_at(1), clock_b);
  ASSERT_TRUE(ca.link_single(source).ok());
  ASSERT_TRUE(cb.link_single(source).ok());

  Rng rng(key.size() * 1237);
  for (int i = 0; i < 200; ++i) {
    const rmt::Packet pkt = random_packet(rng);
    const auto expect = single.inject(pkt);
    const auto actual = chain.inject(pkt);
    EXPECT_EQ(actual.fate, expect.fate) << key << " pkt " << i;
    EXPECT_EQ(actual.egress_port, expect.egress_port) << key << " pkt " << i;
    if (expect.packet.ipv4 && actual.packet.ipv4) {
      EXPECT_EQ(actual.packet.ipv4->dst, expect.packet.ipv4->dst) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ChainCompatible, ChainSweep,
                         ::testing::Values("cache", "hh", "cms", "bf", "sumax",
                                           "hll", "firewall", "ecn",
                                           "calculator", "l2", "l3", "tunnel"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace p4runpro
