// Program-isolation tests (paper §4.1.1): flow- and port-granular
// filtering, register reuse across programs, and the HASH / HASH_MEM
// double-hashing path.
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

rmt::Packet udp_from_port(Port ingress, std::uint32_t src = 0x0a000001) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = src, .dst = 0x0b000001, .proto = 17};
  pkt.udp = rmt::UdpHeader{1000, 2000};
  pkt.ingress_port = ingress;
  return pkt;
}

class IsolationTest : public ::testing::Test {
 protected:
  IsolationTest()
      : dataplane_(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}}),
        controller_(dataplane_, clock_) {}

  SimClock clock_;
  dp::RunproDataplane dataplane_;
  ctrl::Controller controller_;
};

TEST_F(IsolationTest, PortGranularIsolation) {
  // A program claiming only ingress port 3 (exact match on the intrinsic
  // metadata) must not see port-5 traffic.
  auto linked = controller_.link_single(
      "program port3(<meta.ingress_port, 3, 0xffff>) {\n"
      "  FORWARD(9);\n"
      "}\n");
  ASSERT_TRUE(linked.ok()) << linked.error().str();

  EXPECT_EQ(dataplane_.inject(udp_from_port(3)).egress_port, 9);
  EXPECT_EQ(dataplane_.inject(udp_from_port(5)).egress_port, 0);
}

TEST_F(IsolationTest, FlowGranularFiveTupleIsolation) {
  // Exact 5-tuple filter: src+dst+proto(+ports via L4 slots).
  auto linked = controller_.link_single(
      "program flow(<hdr.ipv4.src, 10.0.0.1, 0xffffffff>,\n"
      "             <hdr.ipv4.dst, 11.0.0.1, 0xffffffff>,\n"
      "             <hdr.ipv4.proto, 17, 0xff>,\n"
      "             <hdr.udp.src_port, 1000, 0xffff>,\n"
      "             <hdr.udp.dst_port, 2000, 0xffff>) {\n"
      "  DROP;\n"
      "}\n");
  ASSERT_TRUE(linked.ok()) << linked.error().str();

  EXPECT_EQ(dataplane_.inject(udp_from_port(1, 0x0a000001)).fate,
            rmt::PacketFate::Dropped);
  // Different source: untouched.
  EXPECT_EQ(dataplane_.inject(udp_from_port(1, 0x0a000002)).fate,
            rmt::PacketFate::Forwarded);
  // Different dst port: untouched.
  auto other = udp_from_port(1);
  other.udp->dst_port = 2001;
  EXPECT_EQ(dataplane_.inject(other).fate, rmt::PacketFate::Forwarded);
}

TEST_F(IsolationTest, RegistersAreReusedNotShared) {
  // Two programs both use sar heavily; a packet of program B must never
  // observe program A's register values (registers are per-packet PHV
  // fields, reused across programs by design §4.1.2).
  auto a = controller_.link_single(
      "program a(<hdr.udp.dst_port, 1111, 0xffff>) {\n"
      "  LOADI(sar, 0xAAAA);\n"
      "  MODIFY(hdr.ipv4.ttl, sar);  //writes low bits\n"
      "  RETURN;\n"
      "}\n");
  auto b = controller_.link_single(
      "program b(<hdr.udp.dst_port, 2222, 0xffff>) {\n"
      "  ADDI(sar, 1);               //sar starts at 0, not A's 0xAAAA\n"
      "  MODIFY(hdr.ipv4.ttl, sar);\n"
      "  RETURN;\n"
      "}\n");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  auto pkt_a = udp_from_port(1);
  pkt_a.udp->dst_port = 1111;
  auto pkt_b = udp_from_port(1);
  pkt_b.udp->dst_port = 2222;

  (void)dataplane_.inject(pkt_a);
  const auto rb = dataplane_.inject(pkt_b);
  ASSERT_TRUE(rb.packet.ipv4.has_value());
  EXPECT_EQ(rb.packet.ipv4->ttl, 1);  // sar = 0 + 1, unpolluted
}

TEST_F(IsolationTest, HashAndHashMemPrimitives) {
  // HASH re-hashes har; HASH_MEM addresses memory from har's hash: a
  // two-level hashing program (e.g. per-prefix sketches).
  auto linked = controller_.link_single(
      "@ sketch 128\n"
      "program twohash(<hdr.ipv4.proto, 17, 0xff>) {\n"
      "  EXTRACT(hdr.ipv4.src, har);\n"
      "  HASH;                 //har = crc32(har)\n"
      "  HASH_MEM(sketch);     //mar = crc16(har) & 127\n"
      "  LOADI(sar, 1);\n"
      "  MEMADD(sketch);\n"
      "  FORWARD(4);\n"
      "}\n");
  ASSERT_TRUE(linked.ok()) << linked.error().str();

  // Same source always lands in the same bucket; different sources spread.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(dataplane_.inject(udp_from_port(1, 0x0a000042)).egress_port, 4);
  }
  auto dump = controller_.dump_memory(linked.value().id, "sketch");
  ASSERT_TRUE(dump.ok());
  Word max_bucket = 0;
  int nonzero = 0;
  for (Word v : dump.value()) {
    max_bucket = std::max(max_bucket, v);
    if (v != 0) ++nonzero;
  }
  EXPECT_EQ(max_bucket, 5u);  // all five hits in one bucket
  EXPECT_EQ(nonzero, 1);

  for (std::uint32_t s = 0; s < 64; ++s) {
    (void)dataplane_.inject(udp_from_port(1, 0x0a000100u + s));
  }
  dump = controller_.dump_memory(linked.value().id, "sketch");
  ASSERT_TRUE(dump.ok());
  nonzero = 0;
  for (Word v : dump.value()) {
    if (v != 0) ++nonzero;
  }
  // 64 sources spread over 128 buckets. CRC16-over-CRC32 composition can
  // alias in the masked low bits for some CRC variants (both are linear
  // codes), so require a conservative spread rather than the birthday
  // expectation.
  EXPECT_GT(nonzero, 12);
}

TEST_F(IsolationTest, DumpMemoryMatchesReads) {
  auto linked = controller_.link_single(
      "@ m 64\n"
      "program d(<hdr.ipv4.proto, 17, 0xff>) {\n"
      "  LOADI(mar, 0);\n"
      "  MEMREAD(m);\n"
      "}\n");
  ASSERT_TRUE(linked.ok());
  for (Word a = 0; a < 64; ++a) {
    ASSERT_TRUE(controller_.write_memory(linked.value().id, "m", a, a * 3).ok());
  }
  auto dump = controller_.dump_memory(linked.value().id, "m");
  ASSERT_TRUE(dump.ok());
  ASSERT_EQ(dump.value().size(), 64u);
  for (Word a = 0; a < 64; ++a) EXPECT_EQ(dump.value()[a], a * 3);
  EXPECT_FALSE(controller_.dump_memory(linked.value().id, "nope").ok());
  EXPECT_FALSE(controller_.dump_memory(999, "m").ok());
}

}  // namespace
}  // namespace p4runpro
