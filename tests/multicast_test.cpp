// MULTICAST primitive and the SwitchML-style aggregation extension (§7):
// traffic-manager group replication, end-to-end gradient aggregation with
// fan-in counting, and the broadcast of the final aggregate.
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

rmt::Packet gradient(Word chunk, Word value, std::uint16_t worker_port) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000000u + worker_port,
                             .dst = 0x0a0000ff, .proto = 17};
  pkt.udp = rmt::UdpHeader{worker_port, 4242};
  pkt.app = rmt::AppHeader{.op = 0, .key1 = chunk, .key2 = 0, .value = value};
  pkt.ingress_port = 1;
  return pkt;
}

class AggregationTest : public ::testing::Test {
 protected:
  AggregationTest()
      : dataplane_(dp::DataplaneSpec{}, rmt::ParserConfig{{4242}}),
        controller_(dataplane_, clock_) {
    // PRE programming: group 1 = the four worker-facing ports.
    dataplane_.pipeline().set_multicast_group(1, {10, 11, 12, 13});
  }

  ProgramId link_agg(int workers = 4) {
    apps::ProgramConfig config;
    config.instance_name = "agg";
    config.workers = workers;
    config.mem_buckets = 64;
    auto linked = controller_.link_single(apps::make_program_source("agg", config));
    EXPECT_TRUE(linked.ok()) << (linked.ok() ? "" : linked.error().str());
    return linked.ok() ? linked.value().id : 0;
  }

  SimClock clock_;
  dp::RunproDataplane dataplane_;
  ctrl::Controller controller_;
};

TEST_F(AggregationTest, AggregatesAndBroadcastsOnLastWorker) {
  const ProgramId id = link_agg(4);

  // Workers 1-3 are absorbed (dropped) while the fold accumulates.
  EXPECT_EQ(dataplane_.inject(gradient(5, 10, 9001)).fate, rmt::PacketFate::Dropped);
  EXPECT_EQ(dataplane_.inject(gradient(5, 20, 9002)).fate, rmt::PacketFate::Dropped);
  EXPECT_EQ(dataplane_.inject(gradient(5, 30, 9003)).fate, rmt::PacketFate::Dropped);
  EXPECT_EQ(controller_.read_memory(id, "agg_val", 5).value(), 60u);
  EXPECT_EQ(controller_.read_memory(id, "agg_cnt", 5).value(), 3u);

  // Worker 4 completes the chunk: the aggregate is multicast to the group.
  const auto last = dataplane_.inject(gradient(5, 40, 9004));
  EXPECT_EQ(last.fate, rmt::PacketFate::Multicasted);
  EXPECT_EQ(last.multicast_ports, (std::vector<Port>{10, 11, 12, 13}));
  ASSERT_TRUE(last.packet.app.has_value());
  EXPECT_EQ(last.packet.app->value, 100u);  // 10+20+30+40

  // Each group port saw one copy.
  for (Port port : {10, 11, 12, 13}) {
    EXPECT_EQ(dataplane_.pipeline().port_counters(port).packets, 1u) << port;
  }
}

TEST_F(AggregationTest, ChunksAreIndependent) {
  link_agg(2);
  EXPECT_EQ(dataplane_.inject(gradient(1, 100, 9001)).fate, rmt::PacketFate::Dropped);
  EXPECT_EQ(dataplane_.inject(gradient(2, 5, 9001)).fate, rmt::PacketFate::Dropped);
  // Chunk 1 completes without touching chunk 2.
  const auto done = dataplane_.inject(gradient(1, 11, 9002));
  EXPECT_EQ(done.fate, rmt::PacketFate::Multicasted);
  EXPECT_EQ(done.packet.app->value, 111u);
  // Chunk 2 still waiting.
  const auto pending = dataplane_.inject(gradient(2, 6, 9002));
  EXPECT_EQ(pending.fate, rmt::PacketFate::Multicasted);
  EXPECT_EQ(pending.packet.app->value, 11u);
}

TEST_F(AggregationTest, ControlPlaneResetsBetweenRounds) {
  const ProgramId id = link_agg(2);
  (void)dataplane_.inject(gradient(0, 1, 9001));
  (void)dataplane_.inject(gradient(0, 2, 9002));  // round 1 complete
  // Reset the accumulators for the next training round.
  ASSERT_TRUE(controller_.write_memory(id, "agg_val", 0, 0).ok());
  ASSERT_TRUE(controller_.write_memory(id, "agg_cnt", 0, 0).ok());
  (void)dataplane_.inject(gradient(0, 7, 9001));
  const auto done = dataplane_.inject(gradient(0, 8, 9002));
  EXPECT_EQ(done.fate, rmt::PacketFate::Multicasted);
  EXPECT_EQ(done.packet.app->value, 15u);
}

TEST_F(AggregationTest, UnconfiguredGroupReplicatesToNobody) {
  apps::ProgramConfig config;
  config.instance_name = "agg2";
  config.workers = 1;
  config.mcast_group = 99;  // never programmed into the PRE
  config.filter_value = 4242;
  ASSERT_TRUE(controller_.link_single(apps::make_program_source("agg", config)).ok());
  const auto result = dataplane_.inject(gradient(3, 1, 9001));
  EXPECT_EQ(result.fate, rmt::PacketFate::Multicasted);
  EXPECT_TRUE(result.multicast_ports.empty());
}

TEST(MulticastPrimitive, IsTerminalForTrailingPrimitives) {
  // The trailing DROP must not execute in the MULTICAST case branch
  // (terminal-op rule); otherwise the broadcast would be overridden.
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  dataplane.pipeline().set_multicast_group(7, {2, 3});
  auto linked = controller.link_single(
      "program m(<hdr.ipv4.proto, 17, 0xff>) {\n"
      "  EXTRACT(hdr.ipv4.ttl, har);\n"
      "  BRANCH:\n"
      "  case(<har, 64, 0xff>) {\n"
      "    MULTICAST(7);\n"
      "  };\n"
      "  DROP;\n"
      "}\n");
  ASSERT_TRUE(linked.ok()) << linked.error().str();

  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 1, .dst = 2, .proto = 17, .ttl = 64};
  pkt.udp = rmt::UdpHeader{1, 2};
  EXPECT_EQ(dataplane.inject(pkt).fate, rmt::PacketFate::Multicasted);
  pkt.ipv4->ttl = 63;  // miss path -> trailing DROP
  EXPECT_EQ(dataplane.inject(pkt).fate, rmt::PacketFate::Dropped);
}

}  // namespace
}  // namespace p4runpro
