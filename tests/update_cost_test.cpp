// Update-engine cost model tests: the virtual-clock charges must follow
// the documented bfrt model exactly — per-entry writes, per-batch
// overheads, and the memory-reset charge on termination.
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

TEST(UpdateCost, InstallChargeMatchesTheModel) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::BfrtCostModel cost;  // defaults
  ctrl::Controller controller(dataplane, clock, rp::Objective{}, cost);

  apps::ProgramConfig config;
  config.instance_name = "cache";
  auto linked = controller.link_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(linked.ok());
  const auto* installed = controller.program(linked.value().id);
  ASSERT_NE(installed, nullptr);

  const auto rpb_entries = installed->rpb_handles.size();
  const auto recirc_entries = installed->recirc_handles.size();
  const auto filter_entries = installed->filter_handles.size();
  // Three batches (recirc, RPB, filters), one write per entry.
  const double expected_us =
      3 * cost.per_batch_overhead_us +
      cost.per_entry_write_us *
          static_cast<double>(rpb_entries + recirc_entries + filter_entries);
  EXPECT_NEAR(linked.value().stats.update_ms, expected_us / 1000.0, 1e-6);
}

TEST(UpdateCost, RevokeChargesEntriesAndMemoryReset) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::BfrtCostModel cost;
  ctrl::Controller controller(dataplane, clock, rp::Objective{}, cost);

  apps::ProgramConfig config;
  config.instance_name = "cache";
  config.mem_buckets = 256;  // 1 KB to reset
  auto linked = controller.link_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(linked.ok());
  const auto* installed = controller.program(linked.value().id);
  const auto total_entries = installed->rpb_handles.size() +
                             installed->recirc_handles.size() +
                             installed->filter_handles.size();

  const double before_ms = clock.now_ms();
  ASSERT_TRUE(controller.revoke(linked.value().id).ok());
  const double revoke_ms = clock.now_ms() - before_ms;
  const double expected_us = 3 * cost.per_batch_overhead_us +
                             cost.per_entry_write_us * static_cast<double>(total_entries) +
                             cost.memory_reset_us_per_kb * 1.0 /*1 KB*/;
  EXPECT_NEAR(revoke_ms, expected_us / 1000.0, 1e-6);
}

TEST(UpdateCost, DelayScalesWithEntryCount) {
  // More elastic cases -> more entries -> strictly larger update delay
  // (the Table-1 complexity correlation).
  double previous = 0.0;
  for (int elastic : {2, 8, 32, 128}) {
    SimClock clock;
    dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
    ctrl::Controller controller(dataplane, clock);
    apps::ProgramConfig config;
    config.instance_name = "cache";
    config.elastic_cases = elastic;
    auto linked = controller.link_single(apps::make_program_source("cache", config));
    ASSERT_TRUE(linked.ok()) << elastic;
    EXPECT_GT(linked.value().stats.update_ms, previous) << elastic;
    previous = linked.value().stats.update_ms;
  }
}

}  // namespace
}  // namespace p4runpro
