// Negative consistency test: demonstrate WHY the Fig.-6 ordering matters.
// Installing the init filter FIRST (the wrong order) exposes an
// intermediate state where a cache-hit packet is claimed by the program id
// but finds no BRANCH entry yet — it falls onto the already-installed
// miss-path FORWARD and is sent to the server, the exact misprocessing the
// paper's example describes ("all cache hit packets will be forwarded to
// the server").
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "compiler/compiler.h"
#include "compiler/entrygen.h"
#include "compiler/solver.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

rmt::Packet cache_hit_read() {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{.src_port = 4000, .dst_port = 7777};
  pkt.app = rmt::AppHeader{.op = 1, .key1 = 0x8888, .key2 = 0, .value = 0};
  pkt.ingress_port = 5;
  return pkt;
}

TEST(ConsistencyNegative, FilterFirstOrderExposesMisprocessing) {
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::ResourceManager resources(dataplane.spec());

  // Compile and allocate the cache program by hand so we control the
  // installation order.
  apps::ProgramConfig config;
  config.instance_name = "cache";
  auto ir = rp::compile_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(ir.ok());
  auto alloc = rp::solve_allocation(ir.value(), dataplane.spec(),
                                    resources.snapshot(), rp::Objective{});
  ASSERT_TRUE(alloc.ok());
  std::map<std::string, ctrl::VmemPlacement> placements;
  for (const auto& [vmem, rpb] : alloc.value().vmem_rpb) {
    placements[vmem] =
        ctrl::VmemPlacement{rpb, resources.allocate_memory(rpb, ir.value().vmem_sizes.at(vmem)).take()};
  }
  const ProgramId id = 1;
  auto plan = rp::generate_entries(ir.value(), alloc.value(), id, placements,
                                   dataplane.spec());

  // WRONG order: activate the program id first, then install the entries
  // in reverse plan order (FORWARD before BRANCH — the paper's example of
  // a harmful intermediate state).
  ASSERT_TRUE(dataplane.init_block().install(id, plan.filters, 1).ok());

  bool saw_misprocessing = false;
  std::vector<rp::RpbEntrySpec> reversed(plan.rpb_entries.rbegin(),
                                         plan.rpb_entries.rend());
  for (const auto& spec_entry : reversed) {
    const auto result = dataplane.inject(cache_hit_read());
    if (result.fate == rmt::PacketFate::Forwarded && result.egress_port == 32) {
      // Is the BRANCH already installed? If not, this is the bug.
      saw_misprocessing = true;
    }
    ASSERT_TRUE(dataplane.rpb(spec_entry.rpb)
                    .table()
                    .insert(spec_entry.keys, spec_entry.priority, spec_entry.action)
                    .ok());
  }
  EXPECT_TRUE(saw_misprocessing)
      << "installing the filter first should expose the partial program";

  // Fully installed: behaves correctly again.
  EXPECT_EQ(dataplane.inject(cache_hit_read()).fate, rmt::PacketFate::Returned);
}

TEST(ConsistencyNegative, CorrectOrderNeverMisprocesses) {
  // Same manual walk with the Fig.-6 order (filter last): the hit packet
  // is default-forwarded to port 0 until the instant the program becomes
  // fully live.
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::ResourceManager resources(dataplane.spec());
  apps::ProgramConfig config;
  config.instance_name = "cache";
  auto ir = rp::compile_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(ir.ok());
  auto alloc = rp::solve_allocation(ir.value(), dataplane.spec(),
                                    resources.snapshot(), rp::Objective{});
  ASSERT_TRUE(alloc.ok());
  std::map<std::string, ctrl::VmemPlacement> placements;
  for (const auto& [vmem, rpb] : alloc.value().vmem_rpb) {
    placements[vmem] =
        ctrl::VmemPlacement{rpb, resources.allocate_memory(rpb, ir.value().vmem_sizes.at(vmem)).take()};
  }
  auto plan = rp::generate_entries(ir.value(), alloc.value(), 1, placements,
                                   dataplane.spec());

  for (const auto& spec_entry : plan.rpb_entries) {
    const auto result = dataplane.inject(cache_hit_read());
    EXPECT_EQ(result.fate, rmt::PacketFate::Forwarded);
    EXPECT_EQ(result.egress_port, 0);  // old configuration, never port 32
    ASSERT_TRUE(dataplane.rpb(spec_entry.rpb)
                    .table()
                    .insert(spec_entry.keys, spec_entry.priority, spec_entry.action)
                    .ok());
  }
  ASSERT_TRUE(dataplane.init_block().install(1, plan.filters, 1).ok());
  EXPECT_EQ(dataplane.inject(cache_hit_read()).fate, rmt::PacketFate::Returned);
}

}  // namespace
}  // namespace p4runpro
