// Multi-program differential: several catalog programs run CONCURRENTLY on
// one switch with disjoint filters; each program's independent IR
// interpreter must agree with the shared table-driven pipeline on every
// packet — cross-program isolation of the table machinery under load.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/rng.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

#include "ir_interpreter.h"

namespace p4runpro {
namespace {

struct Tenant {
  std::string key;
  ProgramId id = 0;
  std::unique_ptr<testutil::IrInterpreter> interpreter;
};

TEST(MultiProgramDifferential, FiveConcurrentProgramsStayIsolated) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{},
                                rmt::ParserConfig{{7001, 7002, 7003}});
  ctrl::Controller controller(dataplane, clock);

  // Five programs with pairwise-disjoint filters.
  struct Spec {
    const char* key;
    Word filter_value;
  };
  const Spec kSpecs[] = {
      {"cache", 7001},       // UDP port 7001
      {"calculator", 7002},  // UDP port 7002
      {"dqacc", 7003},       // UDP port 7003
      {"cms", 0x0c000000},   // src 12.0.0.0/16
      {"bf", 0x0d000000},    // src 13.0.0.0/16
  };
  std::vector<Tenant> tenants;
  for (const auto& spec : kSpecs) {
    apps::ProgramConfig config;
    config.instance_name = std::string("t_") + spec.key;
    config.filter_value = spec.filter_value;
    auto linked = controller.link_single(apps::make_program_source(spec.key, config));
    ASSERT_TRUE(linked.ok()) << spec.key << ": " << linked.error().str();
    Tenant tenant;
    tenant.key = spec.key;
    tenant.id = linked.value().id;
    tenant.interpreter = std::make_unique<testutil::IrInterpreter>(
        *controller.program(tenant.id), dataplane.spec());
    tenants.push_back(std::move(tenant));
  }

  Rng rng(2024);
  int claimed_packets = 0;
  for (int i = 0; i < 600; ++i) {
    // Random packet, biased to hit the various filters.
    rmt::Packet pkt;
    const auto pick = rng.uniform(6);
    pkt.ipv4 = rmt::Ipv4Header{
        .src = (pick == 3   ? 0x0c000000u
                : pick == 4 ? 0x0d000000u
                            : 0x0a000000u) |
               static_cast<Word>(rng.uniform(1 << 10)),
        .dst = 0x0b000001,
        .proto = 17,
        .ttl = 64,
        .dscp = 0,
        .ecn = 0,
        .total_len = 100};
    const std::uint16_t ports[] = {7001, 7002, 7003, 2000, 2000, 9999};
    pkt.udp = rmt::UdpHeader{static_cast<std::uint16_t>(rng.uniform(60000)),
                             ports[pick]};
    if (pick < 3) {
      pkt.app = rmt::AppHeader{1 + static_cast<Word>(rng.uniform(3)),
                               rng.uniform01() < 0.5 ? 0x8888u
                                                     : static_cast<Word>(rng.uniform(64)),
                               0, rng.next_u32()};
    }
    pkt.ingress_port = 1;

    // Exactly one (or zero) tenant claims the packet.
    Tenant* owner = nullptr;
    for (auto& tenant : tenants) {
      if (tenant.interpreter->filter_matches(pkt)) {
        ASSERT_EQ(owner, nullptr) << "filters must be disjoint";
        owner = &tenant;
      }
    }

    const auto actual = dataplane.inject(pkt);
    if (owner == nullptr) {
      EXPECT_EQ(actual.fate, rmt::PacketFate::Forwarded);
      EXPECT_EQ(actual.egress_port, 0);
      continue;
    }
    ++claimed_packets;
    const auto expect = owner->interpreter->run(pkt, 0);
    switch (expect.decision) {
      case rmt::FwdDecision::Drop:
        EXPECT_EQ(actual.fate, rmt::PacketFate::Dropped) << owner->key;
        break;
      case rmt::FwdDecision::Return:
        EXPECT_EQ(actual.fate, rmt::PacketFate::Returned) << owner->key;
        break;
      case rmt::FwdDecision::Report:
        EXPECT_EQ(actual.fate, rmt::PacketFate::Reported) << owner->key;
        break;
      case rmt::FwdDecision::Forward:
        EXPECT_EQ(actual.fate, rmt::PacketFate::Forwarded) << owner->key;
        EXPECT_EQ(actual.egress_port, expect.egress_port) << owner->key;
        break;
      default:
        EXPECT_EQ(actual.egress_port, 0) << owner->key;
        break;
    }
    if (actual.packet.app && expect.packet.app) {
      EXPECT_EQ(actual.packet.app->value, expect.packet.app->value) << owner->key;
    }
  }
  EXPECT_GT(claimed_packets, 300);  // the stream exercised the programs

  // Every tenant's memory matches its shadow at the end.
  for (const auto& tenant : tenants) {
    for (const auto& [vmem, shadow] : tenant.interpreter->shadows()) {
      for (MemAddr a = 0; a < shadow.size(); a += 7) {
        auto value = controller.read_memory(tenant.id, vmem, a);
        ASSERT_TRUE(value.ok());
        ASSERT_EQ(value.value(), shadow.read(a)) << tenant.key << " " << vmem;
      }
    }
  }
}

}  // namespace
}  // namespace p4runpro
