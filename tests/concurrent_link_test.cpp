// Concurrent link sessions: link_many compiles and solves programs in
// parallel on a thread pool while reservation + staged commit serialize
// under the controller's session lock. Deployments must stay all-or-nothing
// per session, allocations must never overlap, and the resource books must
// balance afterwards. Run under TSan in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "control/chain_controller.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "dataplane/switch_chain.h"
#include "obs/telemetry.h"

namespace p4runpro {
namespace {

/// A workload of `n` single-program units with unique instance names,
/// rotating over the catalog's memory-using templates.
std::vector<std::string> workload(int n, std::uint32_t mem_buckets = 32) {
  const std::vector<std::string> templates = {"cache", "lb", "hh"};
  std::vector<std::string> sources;
  sources.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    apps::ProgramConfig config;
    config.instance_name = templates[i % templates.size()] + std::to_string(i);
    config.mem_buckets = mem_buckets;
    sources.push_back(
        apps::make_program_source(templates[i % templates.size()], config));
  }
  return sources;
}

struct Testbed {
  SimClock clock;
  dp::RunproDataplane dataplane{dp::DataplaneSpec{}, rmt::ParserConfig{{7777}}};
  ctrl::Controller controller{dataplane, clock};
};

/// Do the committed programs' placements and entry counts exactly account
/// for the resource manager's occupancy?
void expect_books_balance(const Testbed& bed) {
  const auto& resources = bed.controller.resources();
  std::map<int, std::uint32_t> entries;
  std::map<int, std::uint32_t> memory;
  // Per RPB: every program's memory blocks, for the overlap check.
  std::map<int, std::vector<std::pair<std::uint32_t, std::uint32_t>>> blocks;
  for (const ProgramId id : bed.controller.running_programs()) {
    const auto* program = bed.controller.program(id);
    ASSERT_NE(program, nullptr);
    for (const auto& [rpb, handle] : program->rpb_handles) {
      (void)handle;
      ++entries[rpb];
    }
    for (const auto& [vmem, placement] : program->placements) {
      (void)vmem;
      memory[placement.rpb] += placement.block.size;
      blocks[placement.rpb].emplace_back(placement.block.base,
                                         placement.block.size);
    }
  }
  for (int rpb = 1; rpb <= bed.dataplane.spec().total_rpbs(); ++rpb) {
    EXPECT_EQ(resources.entries_used(rpb), entries[rpb]) << "rpb " << rpb;
    EXPECT_EQ(resources.memory_used(rpb), memory[rpb]) << "rpb " << rpb;
    // No two programs' blocks overlap.
    auto& ranges = blocks[rpb];
    std::sort(ranges.begin(), ranges.end());
    for (std::size_t i = 1; i < ranges.size(); ++i) {
      EXPECT_LE(ranges[i - 1].first + ranges[i - 1].second, ranges[i].first)
          << "overlapping memory blocks on rpb " << rpb;
    }
  }
}

TEST(ConcurrentLink, ManySessionsAllCommitWithDisjointResources) {
  Testbed bed;
  common::ThreadPool pool(4);
  const auto sources = workload(8);

  const auto results = bed.controller.link_many(sources, pool);
  ASSERT_EQ(results.size(), sources.size());

  std::set<ProgramId> ids;
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok())
        << "source " << i << ": " << results[i].error().str();
    EXPECT_TRUE(ids.insert(results[i].value().id).second)
        << "duplicate program id";
    // Results are positional: result i names source i's program.
    EXPECT_NE(sources[i].find("program " + results[i].value().name),
              std::string::npos);
  }
  EXPECT_EQ(bed.controller.program_count(), sources.size());
  expect_books_balance(bed);

  // Every session left a commit audit trail.
  std::size_t links = 0;
  for (const auto& event : bed.controller.events()) {
    links += event.kind == ctrl::ControlEvent::Kind::Link ? 1 : 0;
  }
  EXPECT_EQ(links, sources.size());
}

TEST(ConcurrentLink, OneFaultedSessionRollsBackAloneAndOthersCommit) {
  Testbed bed;
  common::ThreadPool pool(4);
  const auto sources = workload(6);

  // The injected fault fires exactly once, so exactly one session (commit
  // order is nondeterministic) rolls back; the rest must be unaffected.
  bed.controller.updates().set_fault_after_writes(2);
  const auto results = bed.controller.link_many(sources, pool);
  ASSERT_EQ(results.size(), sources.size());

  int failed = 0;
  for (const auto& result : results) {
    if (result.ok()) continue;
    ++failed;
    EXPECT_EQ(result.error().code, ErrorCode::ChannelError);
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(bed.controller.program_count(), sources.size() - 1);
  expect_books_balance(bed);

  // The failed session's name is free again: a retry commits.
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok()) continue;
    auto retry = bed.controller.link_single(sources[i]);
    ASSERT_TRUE(retry.ok()) << retry.error().str();
  }
  EXPECT_EQ(bed.controller.program_count(), sources.size());
  expect_books_balance(bed);
}

TEST(ConcurrentLink, WavesOfLinkAndRevokeLeaveNoResidue) {
  Testbed bed;
  common::ThreadPool pool(common::ThreadPool::default_thread_count());
  for (int wave = 0; wave < 3; ++wave) {
    const auto results = bed.controller.link_many(workload(9), pool);
    for (const auto& result : results) {
      ASSERT_TRUE(result.ok()) << result.error().str();
    }
    expect_books_balance(bed);
    for (const ProgramId id : bed.controller.running_programs()) {
      ASSERT_TRUE(bed.controller.revoke(id).ok());
    }
    EXPECT_EQ(bed.controller.program_count(), 0u);
    for (int rpb = 1; rpb <= bed.dataplane.spec().total_rpbs(); ++rpb) {
      EXPECT_EQ(bed.controller.resources().entries_used(rpb), 0u);
      EXPECT_EQ(bed.controller.resources().memory_used(rpb), 0u);
    }
  }
}

// --- async-channel stress: sessions park off-lock while the writer thread
// drains their batches. Exercises the submit/park/settle dance, the
// pending-name guard and the writer's fault reporting under real
// concurrency; runs under TSan in CI alongside the rest of this file.

TEST(ConcurrentLink, AsyncSessionsOverlapWriterAndCommit) {
  Testbed bed;
  bed.controller.set_async_writes(true);
  common::ThreadPool pool(4);
  const auto sources = workload(8);

  const auto results = bed.controller.link_many(sources, pool);
  ASSERT_EQ(results.size(), sources.size());
  std::set<ProgramId> ids;
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok())
        << "source " << i << ": " << results[i].error().str();
    EXPECT_TRUE(ids.insert(results[i].value().id).second)
        << "duplicate program id";
  }
  EXPECT_EQ(bed.controller.program_count(), sources.size());
  expect_books_balance(bed);

  // Monitoring queries quiesce the channel: safe concurrently with nothing
  // in flight and consistent afterwards.
  EXPECT_EQ(bed.controller.running_programs().size(), sources.size());
}

TEST(ConcurrentLink, AsyncFaultedSessionRollsBackAloneAndOthersCommit) {
  Testbed bed;
  bed.controller.set_async_writes(true);
  common::ThreadPool pool(4);
  const auto sources = workload(6);

  // The fault fires once, on the WRITER thread, and surfaces when the
  // victim session settles; its rollback runs on the session thread while
  // other sessions keep submitting.
  bed.controller.updates().set_fault_after_writes(2);
  const auto results = bed.controller.link_many(sources, pool);
  ASSERT_EQ(results.size(), sources.size());

  int failed = 0;
  for (const auto& result : results) {
    if (result.ok()) continue;
    ++failed;
    EXPECT_EQ(result.error().code, ErrorCode::ChannelError);
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(bed.controller.program_count(), sources.size() - 1);
  expect_books_balance(bed);

  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok()) continue;
    auto retry = bed.controller.link_single(sources[i]);
    ASSERT_TRUE(retry.ok()) << retry.error().str();
  }
  EXPECT_EQ(bed.controller.program_count(), sources.size());
  expect_books_balance(bed);
}

TEST(ConcurrentLink, AsyncWavesOfLinkAndRevokeLeaveNoResidue) {
  Testbed bed;
  bed.controller.set_async_writes(true);
  common::ThreadPool pool(common::ThreadPool::default_thread_count());
  for (int wave = 0; wave < 3; ++wave) {
    const auto results = bed.controller.link_many(workload(9), pool);
    for (const auto& result : results) {
      ASSERT_TRUE(result.ok()) << result.error().str();
    }
    expect_books_balance(bed);
    // Async revokes defer their memory frees to settle time; after the
    // wave every book must still drain to zero.
    for (const ProgramId id : bed.controller.running_programs()) {
      ASSERT_TRUE(bed.controller.revoke(id).ok());
    }
    EXPECT_EQ(bed.controller.program_count(), 0u);
    for (int rpb = 1; rpb <= bed.dataplane.spec().total_rpbs(); ++rpb) {
      EXPECT_EQ(bed.controller.resources().entries_used(rpb), 0u);
      EXPECT_EQ(bed.controller.resources().memory_used(rpb), 0u);
    }
  }
}

TEST(ConcurrentLink, SerialAndParallelReachTheSameOccupancy) {
  const auto sources = workload(6);

  Testbed serial;
  for (const auto& source : sources) {
    ASSERT_TRUE(serial.controller.link_single(source).ok());
  }

  Testbed parallel;
  common::ThreadPool pool(3);
  const auto results = parallel.controller.link_many(sources, pool);
  for (const auto& result : results) ASSERT_TRUE(result.ok());

  // Totals match even though per-program placements may differ by commit
  // order: the same workload consumes the same amount of switch resources.
  EXPECT_EQ(serial.controller.resources().total_entry_utilization(),
            parallel.controller.resources().total_entry_utilization());
  EXPECT_EQ(serial.controller.resources().total_memory_utilization(),
            parallel.controller.resources().total_memory_utilization());
}

// --- chain variant: concurrent sessions against a ChainController --------
// Same session discipline, but every commit is a chain-wide two-phase
// transaction; the invariant sharpens to "all hops' books stay identical".
// The suite name keeps the ConcurrentLink stem so the TSan CI gate
// (-R "ConcurrentLink|DeployTxn") picks it up.

constexpr int kChainHops = 3;

dp::DataplaneSpec chain_spec() {
  dp::DataplaneSpec spec;
  spec.memory_per_rpb = 4096;
  spec.entries_per_rpb = 256;
  spec.max_recirculations = kChainHops - 1;
  return spec;
}

struct ChainTestbed {
  SimClock clock;
  obs::Telemetry telemetry;
  dp::SwitchChain chain{kChainHops, chain_spec(), rmt::ParserConfig{{7777}}};
  ctrl::ChainController controller{chain, clock, {}, {}, &telemetry};
};

/// Every hop's occupancy must exactly account for the committed programs,
/// and all hops must agree (mirror deployments evolve in lockstep).
void expect_chain_books_balance(ChainTestbed& bed) {
  const auto reference = bed.controller.resources(0).snapshot();
  for (int hop = 0; hop < kChainHops; ++hop) {
    std::map<int, std::uint32_t> entries;
    std::map<int, std::uint32_t> memory;
    for (const ProgramId id : bed.controller.running_programs()) {
      const auto* program = bed.controller.program_at(hop, id);
      ASSERT_NE(program, nullptr) << "program " << id << " missing on hop " << hop;
      for (const auto& [rpb, handle] : program->rpb_handles) {
        (void)handle;
        ++entries[rpb];
      }
      for (const auto& [vmem, placement] : program->placements) {
        (void)vmem;
        memory[placement.rpb] += placement.block.size;
      }
    }
    const auto& resources = bed.controller.resources(hop);
    for (int rpb = 1; rpb <= chain_spec().total_rpbs(); ++rpb) {
      EXPECT_EQ(resources.entries_used(rpb), entries[rpb])
          << "hop " << hop << " rpb " << rpb;
      EXPECT_EQ(resources.memory_used(rpb), memory[rpb])
          << "hop " << hop << " rpb " << rpb;
    }
    const auto snap = resources.snapshot();
    EXPECT_EQ(snap.free_entries, reference.free_entries) << "hop " << hop;
    EXPECT_EQ(snap.free_mem, reference.free_mem) << "hop " << hop;
  }
}

TEST(ChainConcurrentLink, ManySessionsCommitOnEveryHop) {
  ChainTestbed bed;
  common::ThreadPool pool(4);
  const auto sources = workload(6);

  const auto results = bed.controller.link_many(sources, pool);
  ASSERT_EQ(results.size(), sources.size());

  std::set<ProgramId> ids;
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok())
        << "source " << i << ": " << results[i].error().str();
    EXPECT_TRUE(ids.insert(results[i].value().id).second) << "duplicate id";
    EXPECT_NE(sources[i].find("program " + results[i].value().name),
              std::string::npos);
  }
  EXPECT_EQ(bed.controller.program_count(), sources.size());
  expect_chain_books_balance(bed);
}

TEST(ChainConcurrentLink, OneFaultedSessionRollsBackChainWideOthersCommit) {
  ChainTestbed bed;
  common::ThreadPool pool(4);
  const auto sources = workload(5);

  // A single fault on a MIDDLE hop: the victim session must unwind the
  // hops it already committed, and no other session may be perturbed.
  bed.controller.updates(1).set_fault_after_writes(2);
  const auto results = bed.controller.link_many(sources, pool);
  ASSERT_EQ(results.size(), sources.size());

  int failed = 0;
  for (const auto& result : results) {
    if (result.ok()) continue;
    ++failed;
    EXPECT_EQ(result.error().code, ErrorCode::ChannelError);
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(bed.controller.program_count(), sources.size() - 1);
  expect_chain_books_balance(bed);

  // The failed session's name is free chain-wide: a retry commits.
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok()) continue;
    auto retry = bed.controller.link(sources[i]);
    ASSERT_TRUE(retry.ok()) << retry.error().str();
  }
  EXPECT_EQ(bed.controller.program_count(), sources.size());
  expect_chain_books_balance(bed);
}

TEST(ChainConcurrentLink, AsyncPipelinedSessionsCommitOnEveryHop) {
  ChainTestbed bed;
  bed.controller.set_async_writes(true);
  common::ThreadPool pool(4);
  const auto sources = workload(6);

  const auto results = bed.controller.link_many(sources, pool);
  ASSERT_EQ(results.size(), sources.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok())
        << "source " << i << ": " << results[i].error().str();
  }
  EXPECT_EQ(bed.controller.program_count(), sources.size());
  expect_chain_books_balance(bed);

  // Pipelined chain revokes drain the books on every hop.
  for (const ProgramId id : bed.controller.running_programs()) {
    ASSERT_TRUE(bed.controller.revoke(id).ok());
  }
  EXPECT_EQ(bed.controller.program_count(), 0u);
  for (int hop = 0; hop < kChainHops; ++hop) {
    for (int rpb = 1; rpb <= chain_spec().total_rpbs(); ++rpb) {
      EXPECT_EQ(bed.controller.resources(hop).entries_used(rpb), 0u);
      EXPECT_EQ(bed.controller.resources(hop).memory_used(rpb), 0u);
    }
  }
}

TEST(ChainConcurrentLink, WavesOfChainLinkAndRevokeLeaveNoResidue) {
  ChainTestbed bed;
  common::ThreadPool pool(common::ThreadPool::default_thread_count());
  for (int wave = 0; wave < 3; ++wave) {
    const auto results = bed.controller.link_many(workload(6), pool);
    for (const auto& result : results) {
      ASSERT_TRUE(result.ok()) << result.error().str();
    }
    expect_chain_books_balance(bed);
    for (const ProgramId id : bed.controller.running_programs()) {
      ASSERT_TRUE(bed.controller.revoke(id).ok());
    }
    EXPECT_EQ(bed.controller.program_count(), 0u);
    for (int hop = 0; hop < kChainHops; ++hop) {
      for (int rpb = 1; rpb <= chain_spec().total_rpbs(); ++rpb) {
        EXPECT_EQ(bed.controller.resources(hop).entries_used(rpb), 0u)
            << "hop " << hop;
        EXPECT_EQ(bed.controller.resources(hop).memory_used(rpb), 0u)
            << "hop " << hop;
      }
    }
  }
}

}  // namespace
}  // namespace p4runpro
