// Differential property test: two independent executors must agree.
//
// Path A: the real thing — compiled entries installed in the table-driven
//         RPB pipeline (filters, ternary matching, recirculation, SALUs).
// Path B: a direct interpreter over the translated IR DAG built here, with
//         shadow memories, that never touches tables or the pipeline.
//
// For every catalog program we replay a randomized packet stream through
// both and require identical fates, egress ports, header rewrites and
// (at the end) identical memory contents. This catches disagreements
// between the compiler's entry generation and the intended semantics.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/rng.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "rmt/crc.h"

#include "ir_interpreter.h"

namespace p4runpro {
namespace {

/// Random packet generator biased to exercise each program's filter and
/// application header.
rmt::Packet random_packet(Rng& rng) {
  rmt::Packet pkt;
  pkt.eth.dst_mac = 0xaa0000000000ull + rng.uniform(1 << 18);
  pkt.eth.src_mac = 0xbb0000000000ull + rng.uniform(1 << 18);
  pkt.ipv4 = rmt::Ipv4Header{
      .src = (rng.uniform01() < 0.7 ? 0x0a000000u : 0x0b000000u) |
             static_cast<Word>(rng.uniform(1 << 12)),
      .dst = (rng.uniform01() < 0.7 ? 0x0a000000u : 0x0c000000u) |
             static_cast<Word>(rng.uniform(1 << 12)),
      .proto = 17,
      .ttl = 64,
      .dscp = 0,
      .ecn = 0,
      .total_len = static_cast<std::uint16_t>(64 + rng.uniform(1000))};
  const bool tcp = rng.uniform01() < 0.4;
  if (tcp) {
    pkt.ipv4->proto = 6;
    pkt.tcp = rmt::TcpHeader{static_cast<std::uint16_t>(rng.uniform(65536)),
                             static_cast<std::uint16_t>(rng.uniform(65536)), 0x10};
  } else {
    const std::uint16_t kPorts[] = {7777, 7788, 9999, 5555, 53,
                                    static_cast<std::uint16_t>(rng.uniform(65536))};
    pkt.udp = rmt::UdpHeader{static_cast<std::uint16_t>(rng.uniform(65536)),
                             kPorts[rng.uniform(6)]};
    pkt.app = rmt::AppHeader{
        static_cast<Word>(rng.uniform(4)),
        // Bias keys toward the cache/nc elastic keys to hit branches.
        rng.uniform01() < 0.5 ? 0x8888u + static_cast<Word>(rng.uniform(3))
                              : static_cast<Word>(rng.next_u32()),
        rng.uniform01() < 0.8 ? 0u : rng.next_u32(),
        rng.next_u32()};
    if (rng.uniform01() < 0.3) pkt.app->key1 = 0x7000u + static_cast<Word>(rng.uniform(3));
  }
  pkt.payload_len = static_cast<std::uint32_t>(rng.uniform(512));
  pkt.ingress_port = static_cast<Port>(rng.uniform(8));
  return pkt;
}

[[nodiscard]] rmt::FwdDecision fate_to_decision(rmt::PacketFate fate) {
  switch (fate) {
    case rmt::PacketFate::Forwarded: return rmt::FwdDecision::Forward;
    case rmt::PacketFate::Returned: return rmt::FwdDecision::Return;
    case rmt::PacketFate::Dropped: return rmt::FwdDecision::Drop;
    case rmt::PacketFate::Reported: return rmt::FwdDecision::Report;
    case rmt::PacketFate::RecircLimit: return rmt::FwdDecision::Drop;
    case rmt::PacketFate::Multicasted: return rmt::FwdDecision::Multicast;
  }
  return rmt::FwdDecision::None;
}

class Differential : public ::testing::TestWithParam<const char*> {};

TEST_P(Differential, PipelineAgreesWithIrInterpreter) {
  const std::string key = GetParam();
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{},
                                rmt::ParserConfig{{7777, 7788, 9999, 5555}});
  ctrl::Controller controller(dataplane, clock);

  apps::ProgramConfig config;
  config.instance_name = key;
  config.threshold = 8;  // keep hh/nc thresholds reachable by the stream
  auto linked = controller.link_single(apps::make_program_source(key, config));
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  const auto* installed = controller.program(linked.value().id);
  ASSERT_NE(installed, nullptr);

  testutil::IrInterpreter interpreter(*installed, dataplane.spec());

  // Mirror any control-plane seeding in both memories.
  if (key == "lb") {
    for (Word b = 0; b < 256; ++b) {
      ASSERT_TRUE(controller.write_memory(linked.value().id, "port_pool", b, b % 2).ok());
      ASSERT_TRUE(controller.write_memory(linked.value().id, "dip_pool", b, 0xac100000u + b).ok());
      interpreter.write("port_pool", b, b % 2);
      interpreter.write("dip_pool", b, 0xac100000u + b);
    }
  }

  Rng rng(0xD1FFu ^ static_cast<std::uint64_t>(key.size() * 131 + key[0]));
  const Word qdepth = 77;
  dataplane.pipeline().set_qdepth(qdepth);

  for (int i = 0; i < 300; ++i) {
    const rmt::Packet pkt = random_packet(rng);
    const bool claimed = interpreter.filter_matches(pkt) &&
                         // the App parse path requires a configured port
                         true;
    const auto expect = interpreter.run(pkt, qdepth);
    const auto actual = dataplane.inject(pkt);

    if (!claimed || expect.decision == rmt::FwdDecision::None) {
      // Unclaimed (or claimed but decision-less) packets take the default
      // path: forwarded to port 0 with the interpreter's header rewrites.
      EXPECT_EQ(actual.fate, rmt::PacketFate::Forwarded) << key << " pkt " << i;
      EXPECT_EQ(actual.egress_port, 0) << key << " pkt " << i;
    } else {
      EXPECT_EQ(fate_to_decision(actual.fate), expect.decision) << key << " pkt " << i;
      if (expect.decision == rmt::FwdDecision::Forward) {
        EXPECT_EQ(actual.egress_port, expect.egress_port) << key << " pkt " << i;
      }
    }
    // Header rewrites agree regardless of fate.
    ASSERT_EQ(actual.packet.ipv4.has_value(), expect.packet.ipv4.has_value());
    if (actual.packet.ipv4) {
      EXPECT_EQ(actual.packet.ipv4->dst, expect.packet.ipv4->dst) << key << " pkt " << i;
      EXPECT_EQ(actual.packet.ipv4->ecn, expect.packet.ipv4->ecn) << key << " pkt " << i;
    }
    if (actual.packet.app && expect.packet.app) {
      EXPECT_EQ(actual.packet.app->value, expect.packet.app->value) << key << " pkt " << i;
    }
  }

  // Memory contents agree bucket-for-bucket at the end of the stream.
  for (const auto& [vmem, shadow] : interpreter.shadows()) {
    for (MemAddr a = 0; a < shadow.size(); ++a) {
      auto actual = controller.read_memory(linked.value().id, vmem, a);
      ASSERT_TRUE(actual.ok());
      ASSERT_EQ(actual.value(), shadow.read(a))
          << key << " memory " << vmem << "[" << a << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, Differential,
                         ::testing::Values("cache", "lb", "hh", "nc", "dqacc",
                                           "firewall", "l2", "l3", "tunnel",
                                           "calculator", "ecn", "cms", "bf",
                                           "sumax", "hll"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace p4runpro
