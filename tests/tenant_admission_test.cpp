// Multi-tenant admission + quota tests. A serial reference model of the
// tenant registry's accounting is differentially checked against the real
// registry, and the concurrent link_many session path is checked against
// the model's deterministic per-tenant outcome counts: with ample switch
// resources, exactly min(sessions, quota) programs per tenant commit and
// the rest fail with QuotaExceeded — regardless of interleaving. Run under
// TSan in CI (suite name is in the concurrency filter).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "obs/telemetry.h"

namespace p4runpro {
namespace {

struct Testbed {
  SimClock clock;
  dp::RunproDataplane dataplane{dp::DataplaneSpec{}, rmt::ParserConfig{{7777}}};
  ctrl::Controller controller{dataplane, clock};
};

std::string source_for(const std::string& name, std::uint32_t mem_buckets = 32) {
  apps::ProgramConfig config;
  config.instance_name = name;
  config.mem_buckets = mem_buckets;
  return apps::make_program_source("cache", config);
}

/// Registry usage must exactly equal the sum of installed footprints for
/// every tenant — admitted-but-failed sessions refunded, revoked programs
/// released, nothing double-counted.
void expect_usage_matches_installed(const Testbed& bed,
                                    const std::vector<ctrl::TenantId>& tenants) {
  std::map<ctrl::TenantId, std::uint32_t> programs;
  std::map<ctrl::TenantId, std::uint64_t> words;
  std::map<ctrl::TenantId, std::uint64_t> entries;
  for (const ProgramId id : bed.controller.running_programs()) {
    const auto* program = bed.controller.program(id);
    ASSERT_NE(program, nullptr);
    ++programs[program->tenant];
    for (const auto& [vmem, placement] : program->placements) {
      (void)vmem;
      words[program->tenant] += placement.block.size;
    }
    entries[program->tenant] += program->rpb_handles.size();
  }
  for (const ctrl::TenantId tenant : tenants) {
    const auto usage = bed.controller.tenants().usage(tenant);
    EXPECT_EQ(usage.programs, programs[tenant]) << "tenant " << tenant;
    EXPECT_EQ(usage.memory_words, words[tenant]) << "tenant " << tenant;
    EXPECT_EQ(usage.entries, entries[tenant]) << "tenant " << tenant;
  }
}

// --- serial reference model ------------------------------------------------

/// The accounting the registry is specified to do, written the obvious way.
struct ModelTenant {
  ctrl::TenantQuota quota;
  std::uint32_t programs = 0;
  std::uint64_t words = 0;
  std::uint64_t entries = 0;

  [[nodiscard]] bool fits(std::uint64_t w, std::uint64_t e) const {
    if (quota.max_programs != 0 && programs + 1 > quota.max_programs) return false;
    if (quota.max_memory_words != 0 && words + w > quota.max_memory_words)
      return false;
    if (quota.max_entries != 0 && entries + e > quota.max_entries) return false;
    return true;
  }
};

TEST(TenantAdmission, RegistryMatchesSerialReferenceModel) {
  ctrl::TenantRegistry registry;
  std::map<ctrl::TenantId, ModelTenant> model;
  std::mt19937 rng(20240809);

  for (ctrl::TenantId t = 1; t <= 4; ++t) {
    ctrl::TenantQuota quota;
    quota.max_programs = (t % 2 == 0) ? 0 : 3 + t;
    quota.max_memory_words = (t % 3 == 0) ? 0 : 256 * t;
    quota.max_entries = (t == 4) ? 40 : 0;
    registry.register_tenant(t, quota);
    model[t].quota = quota;
  }
  model[0] = ModelTenant{};  // default tenant: unlimited

  // Random admit / refund / release churn, checked op by op.
  struct Held {
    ctrl::TenantId tenant;
    std::uint64_t words, entries;
  };
  std::vector<Held> held;
  for (int op = 0; op < 2000; ++op) {
    const auto tenant = static_cast<ctrl::TenantId>(rng() % 5);
    const bool do_admit = held.empty() || (rng() % 2 == 0);
    if (do_admit) {
      const std::uint64_t w = 1 + rng() % 96;
      const std::uint64_t e = 1 + rng() % 8;
      const bool expect_ok = model[tenant].fits(w, e);
      const Status s = registry.admit(tenant, w, e);
      ASSERT_EQ(s.ok(), expect_ok)
          << "op " << op << " tenant " << tenant << ": " << (s.ok() ? "admitted" : s.error().str());
      if (s.ok()) {
        model[tenant].programs += 1;
        model[tenant].words += w;
        model[tenant].entries += e;
        held.push_back(Held{tenant, w, e});
      } else {
        EXPECT_EQ(s.error().code, ErrorCode::QuotaExceeded);
      }
    } else {
      const std::size_t pick = rng() % held.size();
      const Held h = held[pick];
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
      // refund and release are the same accounting; alternate them.
      if (rng() % 2 == 0) {
        registry.refund(h.tenant, h.words, h.entries);
      } else {
        registry.release(h.tenant, h.words, h.entries);
      }
      model[h.tenant].programs -= 1;
      model[h.tenant].words -= h.words;
      model[h.tenant].entries -= h.entries;
    }
    const auto usage = registry.usage(tenant);
    EXPECT_EQ(usage.programs, model[tenant].programs) << "op " << op;
    EXPECT_EQ(usage.memory_words, model[tenant].words) << "op " << op;
    EXPECT_EQ(usage.entries, model[tenant].entries) << "op " << op;
  }
}

// --- concurrent session path ------------------------------------------------

TEST(TenantAdmission, ProgramQuotasHoldExactlyUnderConcurrentChurn) {
  Testbed bed;
  // Tenant 1 may hold 2 programs, tenant 2 may hold 3, tenant 3 unlimited.
  bed.controller.tenants().register_tenant(1, ctrl::TenantQuota{.max_programs = 2});
  bed.controller.tenants().register_tenant(2, ctrl::TenantQuota{.max_programs = 3});

  std::vector<ctrl::SessionSpec> sessions;
  std::map<ctrl::TenantId, int> offered;
  for (int i = 0; i < 15; ++i) {
    const auto tenant = static_cast<ctrl::TenantId>(1 + i % 3);
    sessions.push_back(
        ctrl::SessionSpec{source_for("p" + std::to_string(i)), tenant});
    ++offered[tenant];
  }

  common::ThreadPool pool(6);
  const auto results = bed.controller.link_many(sessions, pool);
  ASSERT_EQ(results.size(), sessions.size());

  // Deterministic per-tenant outcome counts: resources are ample, so the
  // ONLY failure mode is a quota rejection, and charge-at-admission makes
  // the counts independent of interleaving.
  std::map<ctrl::TenantId, int> committed;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok()) {
      ++committed[sessions[i].tenant];
    } else {
      EXPECT_EQ(results[i].error().code, ErrorCode::QuotaExceeded)
          << "session " << i << ": " << results[i].error().str();
    }
  }
  EXPECT_EQ(committed[1], 2);
  EXPECT_EQ(committed[2], 3);
  EXPECT_EQ(committed[3], offered[3]);
  EXPECT_EQ(bed.controller.program_count(), 2u + 3u + offered[3]);
  expect_usage_matches_installed(bed, {1, 2, 3});

  // Rejection counters: one per failed session, attributed to its tenant.
  EXPECT_EQ(bed.controller.tenants().usage(1).quota_rejected,
            static_cast<std::uint64_t>(offered[1] - 2));
  EXPECT_EQ(bed.controller.tenants().usage(2).quota_rejected,
            static_cast<std::uint64_t>(offered[2] - 3));
  EXPECT_EQ(bed.controller.tenants().usage(3).quota_rejected, 0u);

  // Revoking a tenant-1 program frees quota headroom: a retry commits.
  ProgramId victim = 0;
  for (const ProgramId id : bed.controller.running_programs()) {
    if (bed.controller.program(id)->tenant == 1) victim = id;
  }
  ASSERT_NE(victim, 0u);
  ASSERT_TRUE(bed.controller.revoke(victim).ok());
  auto retry = bed.controller.link_session(
      ctrl::SessionSpec{source_for("retry"), 1});
  ASSERT_TRUE(retry.ok()) << retry.error().str();
  expect_usage_matches_installed(bed, {1, 2, 3});

  // Full teardown drains every tenant's books to zero.
  for (const ProgramId id : bed.controller.running_programs()) {
    ASSERT_TRUE(bed.controller.revoke(id).ok());
  }
  for (ctrl::TenantId t = 1; t <= 3; ++t) {
    const auto usage = bed.controller.tenants().usage(t);
    EXPECT_EQ(usage.programs, 0u);
    EXPECT_EQ(usage.memory_words, 0u);
    EXPECT_EQ(usage.entries, 0u);
  }
}

TEST(TenantAdmission, MemoryQuotaBoundsTotalWordsNotProgramCount) {
  Testbed bed;
  // 3 * 32-bucket cache programs fit (each holds exactly 32 words); a 4th
  // would cross 96 words.
  bed.controller.tenants().register_tenant(
      7, ctrl::TenantQuota{.max_memory_words = 96});

  std::vector<ctrl::SessionSpec> sessions;
  for (int i = 0; i < 6; ++i) {
    sessions.push_back(
        ctrl::SessionSpec{source_for("m" + std::to_string(i), 32), 7});
  }
  common::ThreadPool pool(4);
  const auto results = bed.controller.link_many(sessions, pool);

  int committed = 0;
  for (const auto& result : results) {
    if (result.ok()) {
      ++committed;
    } else {
      EXPECT_EQ(result.error().code, ErrorCode::QuotaExceeded);
    }
  }
  EXPECT_EQ(committed, 3);
  EXPECT_EQ(bed.controller.tenants().usage(7).memory_words, 96u);
  expect_usage_matches_installed(bed, {7});
}

TEST(TenantAdmission, ConcurrentChurnOverSharedQuotaConservesBooks) {
  Testbed bed;
  bed.controller.tenants().register_tenant(1, ctrl::TenantQuota{.max_programs = 4});
  common::ThreadPool pool(6);

  // Waves of link / revoke churn against one small shared quota: every
  // wave's outcome counts are deterministic and the books re-balance.
  for (int wave = 0; wave < 3; ++wave) {
    std::vector<ctrl::SessionSpec> sessions;
    for (int i = 0; i < 8; ++i) {
      sessions.push_back(ctrl::SessionSpec{
          source_for("w" + std::to_string(wave) + "_" + std::to_string(i)), 1});
    }
    const auto results = bed.controller.link_many(sessions, pool);
    int committed = 0;
    for (const auto& result : results) {
      if (result.ok()) {
        ++committed;
      } else {
        EXPECT_EQ(result.error().code, ErrorCode::QuotaExceeded);
      }
    }
    EXPECT_EQ(committed, 4) << "wave " << wave;
    expect_usage_matches_installed(bed, {1});
    for (const ProgramId id : bed.controller.running_programs()) {
      ASSERT_TRUE(bed.controller.revoke(id).ok());
    }
    const auto usage = bed.controller.tenants().usage(1);
    EXPECT_EQ(usage.programs, 0u) << "wave " << wave;
    EXPECT_EQ(usage.memory_words, 0u) << "wave " << wave;
  }
}

TEST(TenantAdmission, OversubscribedSessionsShedWithDedicatedErrorCode) {
  Testbed bed;
  // Capacity 1 in flight, queue bound 0: any overlap between sessions is
  // shed immediately instead of queued. Sessions are released through a
  // start barrier so they slam the admission gate together, and they link
  // hh — the heaviest catalog program, whose allocation solve holds the
  // single slot long enough for barrier-released peers to overlap. Overlap
  // is still a scheduling race (a single-core box can serialize an entire
  // round), so rounds repeat with fresh session names until a shed is
  // observed; the assertions cover the CONTRACT of whatever sheds occur —
  // the dedicated error code, exactly-once shed accounting, and untouched
  // switch state for shed sessions.
  bed.controller.set_admission_config(ctrl::AdmissionConfig{
      .max_inflight = 1, .max_queued = 0});

  std::uint64_t shed = 0;
  std::uint64_t committed = 0;
  std::uint64_t launched = 0;
  for (int round = 0; round < 10 && shed == 0; ++round) {
    constexpr int kSessions = 48;
    struct Outcome {
      bool ok = false;
      ErrorCode code = ErrorCode::AdmissionShed;
      std::string error;
    };
    std::vector<Outcome> outcomes(kSessions);
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kSessions);
    for (int i = 0; i < kSessions; ++i) {
      const std::string name =
          "s" + std::to_string(round) + "_" + std::to_string(i);
      threads.emplace_back([&bed, &go, &outcomes, i, name] {
        apps::ProgramConfig config;
        config.instance_name = name;
        config.mem_buckets = 8;
        const std::string source = apps::make_program_source("hh", config);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        auto linked = bed.controller.link_session(ctrl::SessionSpec{source, 0});
        outcomes[static_cast<std::size_t>(i)].ok = linked.ok();
        if (!linked.ok()) {
          outcomes[static_cast<std::size_t>(i)].code = linked.error().code;
          outcomes[static_cast<std::size_t>(i)].error = linked.error().str();
        }
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& thread : threads) thread.join();
    launched += kSessions;
    for (const auto& outcome : outcomes) {
      if (outcome.ok) {
        ++committed;
        continue;
      }
      ++shed;
      EXPECT_EQ(outcome.code, ErrorCode::AdmissionShed) << outcome.error;
      EXPECT_NE(outcome.error.find("[AdmissionShed]"), std::string::npos);
    }
  }
  EXPECT_GT(shed, 0u) << "racing sessions never overlapped a capacity of 1";
  EXPECT_EQ(committed + shed, launched);
  // Exactly-once accounting: controller stats and outcomes agree.
  EXPECT_EQ(bed.controller.admission().sheds(), shed);
  EXPECT_EQ(bed.controller.admission().grants(), committed);
  EXPECT_EQ(bed.controller.admission().inflight(), 0);
  EXPECT_EQ(bed.controller.program_count(), committed);

  // Shed sessions left an audit + monitor trail.
  std::uint64_t shed_events = 0;
  for (const auto& event : bed.controller.monitor().events()) {
    shed_events += event.kind == obs::MonitorEvent::Kind::AdmissionShed ? 1 : 0;
  }
  EXPECT_EQ(shed_events, shed);
}

}  // namespace
}  // namespace p4runpro
