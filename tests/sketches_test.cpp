// Sketch-estimator tests: HyperLogLog cardinality from the hll program's
// dumped registers (end-to-end!) and CMS point queries.
#include <gtest/gtest.h>

#include "analysis/sketches.h"
#include "apps/program_library.h"
#include "common/rng.h"
#include "rmt/crc.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

TEST(Sketches, CmsPointQuery) {
  const Word row1[] = {5, 9, 2};
  const Word row2[] = {7, 1, 8};
  EXPECT_EQ(analysis::cms_point_query(row1, row2, 0, 0), 5u);
  EXPECT_EQ(analysis::cms_point_query(row1, row2, 1, 2), 8u);
  EXPECT_EQ(analysis::cms_point_query(row1, row2, 9, 0), 0u);  // out of range
}

TEST(Sketches, HllEstimatorOnSyntheticRegisters) {
  // All-empty -> 0.
  std::vector<Word> empty(1024, 0);
  EXPECT_NEAR(analysis::hll_estimate(empty), 0.0, 1e-6);

  // Linear-counting regime: k distinct registers set to rank 1 from k
  // distinct items (one per register) estimates ~k.
  std::vector<Word> sparse(1024, 0);
  for (int i = 0; i < 100; ++i) sparse[static_cast<std::size_t>(i * 7)] = 1;
  const double est = analysis::hll_estimate(sparse);
  EXPECT_GT(est, 70.0);
  EXPECT_LT(est, 140.0);
}

TEST(Sketches, HllEndToEndCardinality) {
  // Run the hll program over N distinct flows and estimate N from the
  // dumped registers; HLL's error is ~1.04/sqrt(m), use a generous band.
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  apps::ProgramConfig config;
  config.instance_name = "hll";
  config.mem_buckets = 256;
  auto linked = controller.link_single(apps::make_program_source("hll", config));
  ASSERT_TRUE(linked.ok());

  constexpr int kFlows = 5000;
  for (int i = 0; i < kFlows; ++i) {
    rmt::Packet pkt;
    pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000000u + static_cast<Word>(i),
                               .dst = 0x0b000001,
                               .proto = 17};
    pkt.udp = rmt::UdpHeader{static_cast<std::uint16_t>(1000 + (i % 5)), 2000};
    pkt.ingress_port = 1;
    // Duplicates must not change the estimate: send every flow twice.
    (void)dataplane.inject(pkt);
    (void)dataplane.inject(pkt);
  }

  auto dump = controller.dump_memory(linked.value().id, "hll_regs");
  ASSERT_TRUE(dump.ok());
  const double estimate = analysis::hll_estimate(dump.value());
  EXPECT_GT(estimate, kFlows * 0.75);
  EXPECT_LT(estimate, kFlows * 1.25);
}

TEST(Sketches, CmsNeverUnderestimates) {
  // End-to-end CMS property: for EVERY flow in a replay, the sketch
  // estimate is >= the true count (one-sided error of Count-Min).
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  apps::ProgramConfig config;
  config.instance_name = "cms";
  config.mem_buckets = 512;
  auto linked = controller.link_single(apps::make_program_source("cms", config));
  ASSERT_TRUE(linked.ok());

  std::map<rmt::FiveTuple, Word> truth;
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    rmt::Packet pkt;
    pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000000u + static_cast<Word>(rng.uniform(200)),
                               .dst = 0x0b000001,
                               .proto = 17};
    pkt.udp = rmt::UdpHeader{1000, 2000};
    pkt.ingress_port = 1;
    ++truth[pkt.five_tuple()];
    (void)dataplane.inject(pkt);
  }

  auto row1 = controller.dump_memory(linked.value().id, "cms_row1");
  auto row2 = controller.dump_memory(linked.value().id, "cms_row2");
  auto algo1 = controller.hash_algo_for(linked.value().id, "cms_row1");
  auto algo2 = controller.hash_algo_for(linked.value().id, "cms_row2");
  ASSERT_TRUE(row1.ok() && row2.ok() && algo1.ok() && algo2.ok());
  const auto mask = static_cast<std::uint32_t>(row1.value().size() - 1);
  for (const auto& [tuple, count] : truth) {
    const auto bytes = tuple.bytes();
    const Word estimate = analysis::cms_point_query(
        row1.value(), row2.value(), rmt::run_hash(algo1.value(), bytes) & mask,
        rmt::run_hash(algo2.value(), bytes) & mask);
    ASSERT_GE(estimate, count);
  }
}

}  // namespace
}  // namespace p4runpro
