// Entry-generation tests: keys, priorities, round assignment, and the
// binding of physical bases (offset step) and hash masks (mask step).
#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "compiler/entrygen.h"
#include "compiler/solver.h"
#include "control/resource_manager.h"

namespace p4runpro::rp {
namespace {

struct Compiled {
  TranslatedProgram ir;
  AllocationResult alloc;
  std::map<std::string, ctrl::VmemPlacement> placements;
  EntryPlan plan;
};

Compiled compile_and_plan(const std::string& source, ProgramId id = 3) {
  const dp::DataplaneSpec spec;
  ctrl::ResourceManager resources(spec);
  Compiled out;
  auto ir = compile_single(source);
  EXPECT_TRUE(ir.ok()) << (ir.ok() ? "" : ir.error().str());
  out.ir = std::move(ir).take();
  auto alloc = solve_allocation(out.ir, spec, resources.snapshot(), Objective{});
  EXPECT_TRUE(alloc.ok()) << (alloc.ok() ? "" : alloc.error().str());
  out.alloc = std::move(alloc).take();
  for (const auto& [vmem, rpb] : out.alloc.vmem_rpb) {
    auto block = resources.allocate_memory(rpb, out.ir.vmem_sizes.at(vmem));
    EXPECT_TRUE(block.ok());
    out.placements[vmem] = ctrl::VmemPlacement{rpb, block.value()};
  }
  out.plan = generate_entries(out.ir, out.alloc, id, out.placements, spec);
  return out;
}

TEST(EntryGen, EveryEntryKeyedOnProgramBranchRound) {
  const auto c = compile_and_plan(
      "@ m 64\n"
      "program p(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  HASH_5_TUPLE_MEM(m);\n"
      "  MEMADD(m);\n"
      "  FORWARD(2);\n"
      "}\n");
  ASSERT_FALSE(c.plan.rpb_entries.empty());
  for (const auto& entry : c.plan.rpb_entries) {
    ASSERT_EQ(entry.keys.size(), static_cast<std::size_t>(dp::kRpbKeyWidth));
    // Program id exact.
    EXPECT_EQ(entry.keys[dp::kKeyProgram].value, 3u);
    EXPECT_EQ(entry.keys[dp::kKeyProgram].mask, 0xffffffffu);
    // Recirculation id exact and consistent with the allocation round.
    EXPECT_EQ(entry.keys[dp::kKeyRecirc].mask, 0xffffffffu);
    EXPECT_LE(entry.keys[dp::kKeyRecirc].value, 1u);
    // Branch id exact.
    EXPECT_EQ(entry.keys[dp::kKeyBranch].mask, 0xffffffffu);
  }
  EXPECT_EQ(c.plan.program, 3);
  EXPECT_EQ(c.plan.rounds, c.alloc.rounds);
}

TEST(EntryGen, OffsetBindsPhysicalBaseAndHashBindsMask) {
  const auto c = compile_and_plan(
      "@ m 100\n"  // rounds up to 128
      "program p(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  HASH_5_TUPLE_MEM(m);\n"
      "  MEMADD(m);\n"
      "}\n");
  bool saw_offset = false;
  bool saw_hash = false;
  for (const auto& entry : c.plan.rpb_entries) {
    if (entry.action.op.kind == dp::OpKind::Offset) {
      saw_offset = true;
      EXPECT_EQ(entry.action.op.imm, c.placements.at("m").block.base);
    }
    if (entry.action.op.kind == dp::OpKind::Mem) {
      // The SALU entry must sit on the stage holding the memory block (the
      // offset step runs earlier; phys_addr persists in the PHV).
      EXPECT_EQ(entry.rpb, c.placements.at("m").rpb);
    }
    if (entry.action.op.kind == dp::OpKind::Hash5TupleMem) {
      saw_hash = true;
      EXPECT_EQ(entry.action.op.mask, 127u);  // size 128 - 1
    }
  }
  EXPECT_TRUE(saw_offset);
  EXPECT_TRUE(saw_hash);
}

TEST(EntryGen, BranchCasesGetDescendingPriorityAndTargets) {
  const auto c = compile_and_plan(
      "program p(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  EXTRACT(hdr.ipv4.ttl, har);\n"
      "  BRANCH:\n"
      "  case(<har, 1, 0xff>) { FORWARD(1); };\n"
      "  case(<har, 1, 0x0f>) { FORWARD(2); };\n"
      "  case(<har, 0, 0>) { FORWARD(3); };\n"
      "}\n");
  std::vector<const RpbEntrySpec*> cases;
  for (const auto& entry : c.plan.rpb_entries) {
    if (entry.action.op.kind == dp::OpKind::Branch) cases.push_back(&entry);
  }
  ASSERT_EQ(cases.size(), 3u);
  // Earlier case -> higher priority; each sets a distinct branch id.
  EXPECT_GT(cases[0]->priority, cases[1]->priority);
  EXPECT_GT(cases[1]->priority, cases[2]->priority);
  std::set<BranchId> targets;
  for (const auto* entry : cases) {
    ASSERT_TRUE(entry->action.next_branch.has_value());
    targets.insert(*entry->action.next_branch);
  }
  EXPECT_EQ(targets.size(), 3u);
  // Condition on har landed in the har key slot.
  EXPECT_EQ(cases[0]->keys[dp::kKeyHar].value, 1u);
  EXPECT_EQ(cases[0]->keys[dp::kKeyHar].mask, 0xffu);
  // The wildcard case matches anything in har.
  EXPECT_EQ(cases[2]->keys[dp::kKeyHar].mask, 0u);
}

TEST(EntryGen, EntryCountMatchesIrTotal) {
  const char* kPrograms[] = {
      "program a(<hdr.ipv4.src, 1, 0xff>) { DROP; }\n",
      "@ m 64\nprogram b(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  HASH_5_TUPLE_MEM(m);\n  MEMADD(m);\n  FORWARD(1);\n}\n",
  };
  for (const char* source : kPrograms) {
    const auto c = compile_and_plan(source);
    EXPECT_EQ(static_cast<int>(c.plan.rpb_entries.size()), c.ir.total_entries());
  }
}

TEST(EntryGen, MultiRoundEntriesLandOnLaterRoundKeys) {
  // Force a second round by filling early RPB entries is complex; instead
  // use a long program (hh-shaped) known to need two rounds.
  const auto c = compile_and_plan(
      "@ a 64\n@ b 64\n@ c 64\n@ d 64\n@ e 64\n"
      "program p(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  LOADI(sar, 1);\n"
      "  HASH_5_TUPLE_MEM(a);\n  MEMADD(a);\n"
      "  HASH_5_TUPLE_MEM(b);\n  MEMADD(b);\n"
      "  HASH_5_TUPLE_MEM(c);\n  MEMADD(c);\n"
      "  HASH_5_TUPLE_MEM(d);\n  MEMADD(d);\n"
      "  HASH_5_TUPLE_MEM(e);\n  MEMADD(e);\n"
      "  LOADI(har, 3);\n"
      "  MIN(har, sar);\n"
      "  ADD(sar, har);\n"
      "  XOR(sar, har);\n"
      "  OR(sar, har);\n"
      "  AND(sar, har);\n"
      "  MAX(sar, har);\n"
      "  MIN(sar, har);\n"
      "  ADD(har, sar);\n"
      "  XOR(har, sar);\n"
      "  OR(har, sar);\n"
      "  REPORT;\n"
      "}\n");
  EXPECT_EQ(c.alloc.rounds, 2);
  bool saw_round1 = false;
  for (const auto& entry : c.plan.rpb_entries) {
    if (entry.keys[dp::kKeyRecirc].value == 1) saw_round1 = true;
  }
  EXPECT_TRUE(saw_round1);
}

}  // namespace
}  // namespace p4runpro::rp
