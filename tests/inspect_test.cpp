// Introspection tests: the disassembler renders the compiled allocation,
// and per-program traffic counters track claimed packets.
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "control/inspect.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

class InspectTest : public ::testing::Test {
 protected:
  InspectTest()
      : dataplane_(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}}),
        controller_(dataplane_, clock_) {}

  SimClock clock_;
  dp::RunproDataplane dataplane_;
  ctrl::Controller controller_;
};

TEST_F(InspectTest, DisassemblyContainsTheProgramStructure) {
  apps::ProgramConfig config;
  config.instance_name = "cache";
  auto linked = controller_.link_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(linked.ok());
  const auto* installed = controller_.program(linked.value().id);
  ASSERT_NE(installed, nullptr);

  const std::string dump = ctrl::disassemble(*installed, dataplane_.spec());
  // Header line with identity and shape.
  EXPECT_NE(dump.find("program 'cache'"), std::string::npos);
  EXPECT_NE(dump.find("depth 10"), std::string::npos);
  EXPECT_NE(dump.find("1 round(s)"), std::string::npos);
  // Filter, memory map, and key operations all present.
  EXPECT_NE(dump.find("hdr.udp.dst_port"), std::string::npos);
  EXPECT_NE(dump.find("mem1: RPB"), std::string::npos);
  EXPECT_NE(dump.find("EXTRACT"), std::string::npos);
  EXPECT_NE(dump.find("BRANCH"), std::string::npos);
  EXPECT_NE(dump.find("MEM(salu="), std::string::npos);
  EXPECT_NE(dump.find("FORWARD(32)"), std::string::npos);
  // Branch entries carry their register conditions and targets.
  EXPECT_NE(dump.find("-> b"), std::string::npos);
  EXPECT_NE(dump.find("sar=0x8888"), std::string::npos);
}

TEST_F(InspectTest, DisassemblyShowsRoundsForLongPrograms) {
  apps::ProgramConfig config;
  config.instance_name = "hh";
  auto linked = controller_.link_single(apps::make_program_source("hh", config));
  ASSERT_TRUE(linked.ok());
  const std::string dump =
      ctrl::disassemble(*controller_.program(linked.value().id), dataplane_.spec());
  EXPECT_NE(dump.find("2 round(s)"), std::string::npos);
  EXPECT_NE(dump.find("r1 "), std::string::npos);  // round-1 entries rendered
}

TEST_F(InspectTest, ProgramPacketCounters) {
  apps::ProgramConfig config;
  config.instance_name = "cache";
  auto linked = controller_.link_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(linked.ok());
  const ProgramId id = linked.value().id;
  EXPECT_EQ(controller_.program_packets(id), 0u);

  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 1, .dst = 2, .proto = 17};
  pkt.udp = rmt::UdpHeader{1000, 7777};
  pkt.app = rmt::AppHeader{1, 0x8888, 0, 0};
  pkt.ingress_port = 1;
  for (int i = 0; i < 7; ++i) (void)dataplane_.inject(pkt);
  EXPECT_EQ(controller_.program_packets(id), 7u);

  // Unclaimed traffic does not count.
  pkt.udp->dst_port = 9000;
  (void)dataplane_.inject(pkt);
  EXPECT_EQ(controller_.program_packets(id), 7u);

  // Counter is retired with the program (and a recycled id starts fresh).
  ASSERT_TRUE(controller_.revoke(id).ok());
  EXPECT_EQ(controller_.program_packets(id), 0u);
}

}  // namespace
}  // namespace p4runpro
