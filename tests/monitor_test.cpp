// Tests for the per-program data-plane health monitor and the packet
// flight recorder: rolling-window semantics, alert edge-triggering,
// ring/freeze behavior, and the end-to-end multi-program scenario (two
// deployed programs, attributed traffic, a recirculation alert that fires
// for the offending program only and freezes the journey ring).
#include <gtest/gtest.h>

#include <sstream>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "control/inspect.h"
#include "dataplane/runpro_dataplane.h"
#include "obs/monitor.h"
#include "obs/telemetry.h"

namespace p4runpro {
namespace {

// ------------------------------------------------------------ RateWindow

TEST(RateWindow, SumCoversOnlyTheWindow) {
  // 10 ms buckets, 4 buckets -> 40 ms window.
  obs::RateWindow w(10'000'000, 4);
  SimClock::Nanos t = 0;
  w.add(t, 3);
  EXPECT_EQ(w.sum(t), 3u);

  t += 15'000'000;  // 15 ms: still inside the window
  w.add(t, 2);
  EXPECT_EQ(w.sum(t), 5u);

  t += 30'000'000;  // 45 ms: the first bucket has aged out
  EXPECT_EQ(w.sum(t), 2u);

  t += 100'000'000;  // far future: everything aged out
  EXPECT_EQ(w.sum(t), 0u);
}

TEST(RateWindow, SlotReuseDropsStaleCounts) {
  obs::RateWindow w(1'000'000, 2);  // 1 ms buckets, 2 slots
  w.add(0, 7);
  // 5 ms later the same physical slot is reused for a new bucket index;
  // the stale count must not leak into the new bucket.
  w.add(4'000'000, 1);
  EXPECT_EQ(w.sum(4'000'000), 1u);
}

TEST(RateWindow, PerSecondScalesBySpan) {
  obs::RateWindow w(10'000'000, 10);  // 100 ms window
  w.add(0, 50);
  EXPECT_DOUBLE_EQ(w.per_second(0), 500.0);  // 50 events / 0.1 s
}

// -------------------------------------------------------- FlightRecorder

obs::PacketJourney journey(std::uint64_t seq) {
  obs::PacketJourney j;
  j.seq = seq;
  return j;
}

TEST(FlightRecorder, RingEvictsOldestWhenFull) {
  obs::FlightRecorder rec(3);
  for (std::uint64_t i = 0; i < 5; ++i) rec.record(journey(i));
  ASSERT_EQ(rec.journeys().size(), 3u);
  EXPECT_EQ(rec.journeys().front().seq, 2u);
  EXPECT_EQ(rec.journeys().back().seq, 4u);
  EXPECT_EQ(rec.recorded(), 5u);
}

TEST(FlightRecorder, SamplingIsOneInN) {
  obs::FlightRecorder rec;
  rec.set_sample_every(3);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) sampled += rec.want_sample() ? 1 : 0;
  EXPECT_EQ(sampled, 3);

  // Disabled by default: a fresh recorder never samples.
  obs::FlightRecorder off;
  EXPECT_FALSE(off.want_sample());
}

TEST(FlightRecorder, FirstFreezeSticksAndThawResumes) {
  obs::FlightRecorder rec(4);
  rec.set_sample_every(1);
  rec.record(journey(1));
  rec.freeze("rule-a", 10.0);
  rec.freeze("rule-b", 20.0);  // ignored: the first anomaly wins
  EXPECT_TRUE(rec.frozen());
  EXPECT_EQ(rec.freeze_reason(), "rule-a");
  EXPECT_DOUBLE_EQ(rec.frozen_at_ms(), 10.0);

  // Frozen: no sampling, no recording.
  EXPECT_FALSE(rec.want_sample());
  rec.record(journey(2));
  EXPECT_EQ(rec.journeys().size(), 1u);

  rec.thaw();
  rec.record(journey(3));
  EXPECT_EQ(rec.journeys().size(), 2u);
}

// ------------------------------------------------- monitor unit behavior

rmt::PacketObservation observation(ProgramId program, rmt::PacketFate fate,
                                   int recirc = 0) {
  rmt::PacketObservation obs;
  obs.program = program;
  obs.fate = fate;
  obs.recirc_passes = recirc;
  return obs;
}

TEST(Monitor, LifecycleEventsAndCounterReset) {
  SimClock clock;
  obs::ProgramHealthMonitor monitor;
  monitor.set_clock(&clock);

  monitor.program_deployed(1, "alpha", 12);
  monitor.on_packet(observation(1, rmt::PacketFate::Forwarded));
  clock.advance_ms(5);
  monitor.program_revoked(1);

  const obs::ProgramHealth* h = monitor.health(1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->name, "alpha");
  EXPECT_FALSE(h->active);
  EXPECT_EQ(h->packets, 1u);
  EXPECT_DOUBLE_EQ(h->revoked_at_ms, 5.0);

  // Ids are recycled: a redeploy under the same id starts fresh.
  monitor.program_deployed(1, "beta", 7);
  EXPECT_EQ(monitor.health(1)->packets, 0u);
  EXPECT_EQ(monitor.health(1)->name, "beta");
  EXPECT_TRUE(monitor.health(1)->active);

  ASSERT_EQ(monitor.events().size(), 3u);
  EXPECT_EQ(monitor.events()[0].kind, obs::MonitorEvent::Kind::Deploy);
  EXPECT_EQ(monitor.events()[0].entries, 12u);
  EXPECT_EQ(monitor.events()[1].kind, obs::MonitorEvent::Kind::Revoke);
  EXPECT_DOUBLE_EQ(monitor.events()[1].t_ms, 5.0);
  EXPECT_EQ(monitor.events()[2].kind, obs::MonitorEvent::Kind::Deploy);
}

TEST(Monitor, AlertsAreEdgeTriggeredPerProgram) {
  SimClock clock;
  obs::ProgramHealthMonitor monitor;
  monitor.set_clock(&clock);
  monitor.program_deployed(1, "p", 1);
  monitor.add_rule({"high-drops", obs::AlertKind::DropFraction, 0.5});

  // First drop: fraction 1.0 >= 0.5 -> one alert.
  monitor.on_packet(observation(1, rmt::PacketFate::Dropped));
  EXPECT_EQ(monitor.alerts_fired(), 1u);
  // Fraction 0.5 stays at the threshold: still disarmed, no refire.
  monitor.on_packet(observation(1, rmt::PacketFate::Forwarded));
  EXPECT_EQ(monitor.alerts_fired(), 1u);
  // Fraction 1/3 < 0.5 rearms the rule ...
  monitor.on_packet(observation(1, rmt::PacketFate::Forwarded));
  // ... so crossing again fires a second alert (2 drops / 4 packets).
  monitor.on_packet(observation(1, rmt::PacketFate::Dropped));
  EXPECT_EQ(monitor.alerts_fired(), 2u);

  // A different program is independently armed.
  monitor.program_deployed(2, "q", 1);
  monitor.on_packet(observation(2, rmt::PacketFate::Dropped));
  EXPECT_EQ(monitor.alerts_fired(), 3u);
}

TEST(Monitor, ProgramScopedRuleIgnoresOtherPrograms) {
  obs::ProgramHealthMonitor monitor;
  monitor.program_deployed(1, "p", 1);
  monitor.program_deployed(2, "q", 1);
  obs::AlertRule rule{"p-only", obs::AlertKind::DropFraction, 0.5};
  rule.program = 1;
  monitor.add_rule(rule);

  monitor.on_packet(observation(2, rmt::PacketFate::Dropped));
  EXPECT_EQ(monitor.alerts_fired(), 0u);
  monitor.on_packet(observation(1, rmt::PacketFate::Dropped));
  EXPECT_EQ(monitor.alerts_fired(), 1u);
}

TEST(Monitor, StageOccupancyWatermark) {
  obs::ProgramHealthMonitor monitor;
  obs::AlertRule rule{"stage-full", obs::AlertKind::StageOccupancy, 0.8};
  monitor.add_rule(rule);

  monitor.on_stage_occupancy(3, 70, 100);
  EXPECT_EQ(monitor.alerts_fired(), 0u);
  monitor.on_stage_occupancy(3, 85, 100);
  EXPECT_EQ(monitor.alerts_fired(), 1u);
  monitor.on_stage_occupancy(3, 95, 100);  // still above: edge-triggered
  EXPECT_EQ(monitor.alerts_fired(), 1u);
  monitor.on_stage_occupancy(3, 10, 100);  // rearm
  monitor.on_stage_occupancy(3, 90, 100);
  EXPECT_EQ(monitor.alerts_fired(), 2u);

  const auto& alert = monitor.events().back();
  EXPECT_EQ(alert.kind, obs::MonitorEvent::Kind::Alert);
  EXPECT_EQ(alert.rpb, 3);
  EXPECT_DOUBLE_EQ(alert.value, 0.9);
}

TEST(Monitor, MetricHandlesStayLiveAcrossBundleClear) {
  obs::Telemetry telemetry;
  telemetry.monitor.on_packet(observation(0, rmt::PacketFate::Forwarded));
  EXPECT_EQ(telemetry.metrics.counter("obs.monitor.packets").value(), 1u);
  telemetry.clear();
  // The cached handle was re-resolved against the fresh registry.
  telemetry.monitor.on_packet(observation(0, rmt::PacketFate::Forwarded));
  EXPECT_EQ(telemetry.metrics.counter("obs.monitor.packets").value(), 1u);
}

// --------------------------------------------- causal trace attribution

TEST(Monitor, ControlPathEventsInheritTheActiveTraceContext) {
  obs::Telemetry telemetry;
  std::uint64_t minted = 0;
  {
    obs::TraceScope trace(&telemetry);
    minted = trace.trace_id();
    telemetry.monitor.program_deployed(1, "cache", 12);
    telemetry.monitor.txn_committed(1, "cache");
  }
  // Outside any scope: no trace to inherit.
  telemetry.monitor.program_revoked(1);

  const auto& events = telemetry.monitor.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].trace, minted);
  EXPECT_EQ(events[1].trace, minted);
  EXPECT_EQ(events[2].trace, 0u);

  std::ostringstream out;
  export_alerts_jsonl(telemetry.monitor, out);
  const std::string jsonl = out.str();
  EXPECT_NE(jsonl.find("\"trace\":\"" + obs::format_trace_id(minted) + "\""),
            std::string::npos)
      << jsonl;
}

TEST(Monitor, PacketPathAlertsInheritTheTableStateTrace) {
  obs::Telemetry telemetry;
  telemetry.monitor.add_rule(
      {"drop-storm", obs::AlertKind::DropFraction, 0.5});
  telemetry.monitor.program_deployed(1, "cache", 4);

  // The packet executed against table state installed by traced op 77; the
  // alert it trips is attributed to that operation, not to whatever control
  // context happens to be active.
  auto obs = observation(1, rmt::PacketFate::Dropped);
  obs.table_trace = 77;
  obs.table_generation = 3;
  telemetry.monitor.on_packet(obs);
  ASSERT_EQ(telemetry.monitor.alerts_fired(), 1u);

  const auto& events = telemetry.monitor.events();
  const auto& alert = events.back();
  ASSERT_EQ(alert.kind, obs::MonitorEvent::Kind::Alert);
  EXPECT_EQ(alert.trace, 77u);
  EXPECT_TRUE(alert.series.empty());  // threshold alert, not an anomaly

  std::ostringstream out;
  export_alerts_jsonl(telemetry.monitor, out);
  EXPECT_NE(out.str().find("\"trace\":\"" + obs::format_trace_id(77) + "\""),
            std::string::npos);
  // Non-anomaly alerts emit no empty "series" field.
  EXPECT_EQ(out.str().find("\"series\""), std::string::npos);
}

TEST(Monitor, SeriesAlertCarriesSeriesFreezesFlightAndExports) {
  obs::Telemetry telemetry;
  // A packet stamped the table-state trace; the later anomaly inherits it.
  auto obs = observation(0, rmt::PacketFate::Forwarded);
  obs.table_trace = 9;
  telemetry.monitor.on_packet(obs);

  telemetry.monitor.series_alert("rmt.packets.rate", "anomaly.z_score",
                                 120.5, 40.0);
  EXPECT_EQ(telemetry.monitor.alerts_fired(), 1u);
  EXPECT_TRUE(telemetry.flight.frozen());
  EXPECT_EQ(telemetry.flight.freeze_reason(), "anomaly.z_score");

  const auto& alert = telemetry.monitor.events().back();
  EXPECT_EQ(alert.kind, obs::MonitorEvent::Kind::Alert);
  EXPECT_EQ(alert.series, "rmt.packets.rate");
  EXPECT_EQ(alert.trace, 9u);
  EXPECT_DOUBLE_EQ(alert.value, 120.5);
  EXPECT_DOUBLE_EQ(alert.threshold, 40.0);

  std::ostringstream out;
  export_alerts_jsonl(telemetry.monitor, out);
  const std::string jsonl = out.str();
  EXPECT_NE(jsonl.find("\"rule\":\"anomaly.z_score\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"series\":\"rmt.packets.rate\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"trace\":\"" + obs::format_trace_id(9) + "\""),
            std::string::npos);
}

TEST(Monitor, OverheadAccountingCountsHookCalls) {
  obs::Telemetry telemetry;
  // Off by default: the two clock reads per packet are themselves overhead.
  telemetry.monitor.on_packet(observation(0, rmt::PacketFate::Forwarded));
  EXPECT_EQ(telemetry.monitor.hook_calls(), 0u);

  telemetry.monitor.set_overhead_accounting(true);
  for (int i = 0; i < 5; ++i) {
    telemetry.monitor.on_packet(observation(0, rmt::PacketFate::Forwarded));
  }
  EXPECT_EQ(telemetry.monitor.hook_calls(), 5u);
  // Wall time is machine-dependent; only its presence is asserted via the
  // self-probe the registry exposes.
  EXPECT_DOUBLE_EQ(telemetry.metrics.gauge_value("obs.self.monitor_hook_calls"),
                   5.0);
}

// ------------------------------------------- end-to-end scenario harness

rmt::Packet cache_packet() {
  rmt::Packet pkt;
  // src outside 10/8 so only the cache program's port filter matches.
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0b000001, .dst = 0x0b000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{4000, 7777};
  pkt.app = rmt::AppHeader{1, 0x8888, 0, 0};
  pkt.ingress_port = 5;
  return pkt;
}

rmt::Packet hh_packet() {
  rmt::Packet pkt;
  // src inside 10/8: claimed by the heavy-hitter program (which
  // recirculates every packet for its Bloom-filter walk).
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000010, .dst = 0x0b000001, .proto = 17};
  pkt.udp = rmt::UdpHeader{5000, 6000};
  pkt.ingress_port = 1;
  return pkt;
}

rmt::Packet unclaimed_packet() {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0c000001, .dst = 0x0c000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{1, 2};
  pkt.ingress_port = 9;
  return pkt;
}

/// One full run of the multi-program scenario against a private telemetry
/// bundle: deploy cache + hh, configure a recirculation alert, drive mixed
/// traffic. Returns the JSONL dumps so runs can be compared byte-for-byte.
struct ScenarioResult {
  ProgramId cache_id = 0;
  ProgramId hh_id = 0;
  std::uint64_t packets_in = 0;
  std::string alerts;
  std::string flight;
  std::string dashboard;
};

ScenarioResult run_scenario(obs::Telemetry& telemetry) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock, {}, {}, &telemetry);
  controller.set_fixed_alloc_charge_ms(1.0);  // virtual-time determinism

  telemetry.flight.set_sample_every(1);
  obs::AlertRule rule{"recirc-storm", obs::AlertKind::RecircPerPacket, 0.5};
  telemetry.monitor.add_rule(rule);

  apps::ProgramConfig cache_config;
  cache_config.instance_name = "cache";
  auto cache = controller.link_single(apps::make_program_source("cache", cache_config));
  EXPECT_TRUE(cache.ok()) << cache.error().message;
  apps::ProgramConfig hh_config;
  hh_config.instance_name = "hh";
  auto hh = controller.link_single(apps::make_program_source("hh", hh_config));
  EXPECT_TRUE(hh.ok()) << hh.error().message;

  // Cache traffic first (well-behaved, no recirculation), then the
  // recirculating heavy-hitter traffic that trips the alert, then traffic
  // no program claims.
  for (int i = 0; i < 10; ++i) (void)dataplane.inject(cache_packet());
  for (int i = 0; i < 6; ++i) (void)dataplane.inject(hh_packet());
  for (int i = 0; i < 4; ++i) (void)dataplane.inject(unclaimed_packet());

  ScenarioResult result;
  result.cache_id = cache.value().id;
  result.hh_id = hh.value().id;
  result.packets_in = dataplane.pipeline().packets_in();
  std::ostringstream alerts, flight;
  export_alerts_jsonl(telemetry.monitor, alerts);
  export_flight_jsonl(telemetry.flight, flight);
  result.alerts = alerts.str();
  result.flight = flight.str();
  result.dashboard = ctrl::health_report(telemetry);
  return result;
}

TEST(MonitorScenario, AttributionAlertAndFlightDump) {
  obs::Telemetry telemetry;
  const ScenarioResult result = run_scenario(telemetry);
  const obs::ProgramHealthMonitor& monitor = telemetry.monitor;

  // Every injected packet was observed and attributed to exactly one
  // program slot (slot 0 collects the unclaimed traffic).
  EXPECT_EQ(monitor.packets_observed(), result.packets_in);
  std::uint64_t attributed = 0;
  for (ProgramId id : monitor.known_programs()) {
    attributed += monitor.health(id)->packets;
  }
  EXPECT_EQ(attributed, result.packets_in);

  const obs::ProgramHealth* cache = monitor.health(result.cache_id);
  const obs::ProgramHealth* hh = monitor.health(result.hh_id);
  const obs::ProgramHealth* unclaimed = monitor.health(0);
  ASSERT_NE(cache, nullptr);
  ASSERT_NE(hh, nullptr);
  ASSERT_NE(unclaimed, nullptr);
  EXPECT_EQ(cache->packets, 10u);
  EXPECT_EQ(hh->packets, 6u);
  EXPECT_EQ(unclaimed->packets, 4u);
  // The claiming program's entries did the work: hits and stateful
  // updates land on the right slot, recirculation only on hh.
  EXPECT_GT(cache->table_hits, 0u);
  EXPECT_GT(cache->salu_updates, 0u);
  EXPECT_EQ(cache->recirc_passes, 0u);
  EXPECT_GE(hh->recirc_passes, hh->packets);
  EXPECT_EQ(unclaimed->table_hits, 0u);

  // The recirculation alert fired exactly once, for hh only.
  EXPECT_EQ(monitor.alerts_fired(), 1u);
  int alert_count = 0;
  for (const auto& event : monitor.events()) {
    if (event.kind != obs::MonitorEvent::Kind::Alert) continue;
    ++alert_count;
    EXPECT_EQ(event.program, result.hh_id);
    EXPECT_EQ(event.rule, "recirc-storm");
    EXPECT_GE(event.value, 0.5);
  }
  EXPECT_EQ(alert_count, 1);

  // The alert froze the flight recorder; the frozen ring holds the
  // journeys leading up to the anomaly, newest being the offender.
  const obs::FlightRecorder& flight = telemetry.flight;
  EXPECT_TRUE(flight.frozen());
  EXPECT_EQ(flight.freeze_reason(), "recirc-storm");
  ASSERT_FALSE(flight.journeys().empty());
  EXPECT_EQ(flight.journeys().back().program, result.hh_id);
  EXPECT_GT(flight.journeys().back().recirc_passes, 0);
  bool saw_hh_events = false;
  for (const auto& j : flight.journeys()) {
    if (j.program == result.hh_id && !j.events.empty()) saw_hh_events = true;
  }
  EXPECT_TRUE(saw_hh_events);

  // Dumps reflect the same story.
  EXPECT_NE(result.alerts.find("\"kind\":\"deploy\",\"program\":1,\"name\":\"cache\""),
            std::string::npos)
      << result.alerts;
  EXPECT_NE(result.alerts.find("\"rule\":\"recirc-storm\""), std::string::npos);
  EXPECT_NE(result.flight.find("\"frozen\":true"), std::string::npos);
  EXPECT_NE(result.flight.find("\"reason\":\"recirc-storm\""), std::string::npos);
  EXPECT_NE(result.flight.find("\"name\":\"hh\""), std::string::npos);

  // The operator dashboard renders all three rows and the freeze.
  EXPECT_NE(result.dashboard.find("cache"), std::string::npos) << result.dashboard;
  EXPECT_NE(result.dashboard.find("hh"), std::string::npos);
  EXPECT_NE(result.dashboard.find("(unclaimed)"), std::string::npos);
  EXPECT_NE(result.dashboard.find("FROZEN"), std::string::npos);
  EXPECT_NE(result.dashboard.find("ALERT"), std::string::npos);
}

TEST(MonitorScenario, IdenticalRunsProduceIdenticalDumps) {
  obs::Telemetry first_bundle, second_bundle;
  const ScenarioResult first = run_scenario(first_bundle);
  const ScenarioResult second = run_scenario(second_bundle);
  EXPECT_EQ(first.alerts, second.alerts);
  EXPECT_EQ(first.flight, second.flight);
  EXPECT_EQ(first.dashboard, second.dashboard);
  EXPECT_FALSE(first.alerts.empty());
  EXPECT_FALSE(first.flight.empty());
}

TEST(MonitorScenario, RevokeShowsUpInStreamAndHealth) {
  obs::Telemetry telemetry;
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock, {}, {}, &telemetry);

  apps::ProgramConfig config;
  config.instance_name = "cache";
  auto linked = controller.link_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(linked.ok());
  (void)dataplane.inject(cache_packet());
  ASSERT_TRUE(controller.revoke(linked.value().id).ok());

  const obs::ProgramHealth* h = telemetry.monitor.health(linked.value().id);
  ASSERT_NE(h, nullptr);
  EXPECT_FALSE(h->active);
  EXPECT_EQ(h->packets, 1u);  // history survives the revoke
  bool saw_revoke = false;
  for (const auto& event : telemetry.monitor.events()) {
    if (event.kind == obs::MonitorEvent::Kind::Revoke &&
        event.program == linked.value().id) {
      saw_revoke = true;
    }
  }
  EXPECT_TRUE(saw_revoke);

  // Traffic after the revoke is unclaimed again.
  (void)dataplane.inject(cache_packet());
  EXPECT_EQ(h->packets, 1u);
  EXPECT_EQ(telemetry.monitor.health(0)->packets, 1u);
}

}  // namespace
}  // namespace p4runpro
