// End-to-end telemetry tests: a deployment produces the paper's phase
// breakdown as a span tree, the exporters emit valid JSON, and identical
// runs (virtual time only) export byte-identical files.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "control/inspect.h"
#include "dataplane/runpro_dataplane.h"
#include "obs/telemetry.h"

namespace p4runpro {
namespace {

// Minimal recursive-descent JSON validator (objects, arrays, strings,
// numbers, literals) — enough to prove the exporters emit well-formed JSON
// without pulling in a JSON dependency.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  [[nodiscard]] bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  [[nodiscard]] bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  [[nodiscard]] bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  [[nodiscard]] bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  [[nodiscard]] bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string cache_source() {
  apps::ProgramConfig config;
  config.instance_name = "cache";
  return apps::make_program_source("cache", config);
}

TEST(Telemetry, LinkSingleProducesThePhaseSpanTree) {
  obs::Telemetry telemetry;
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock, {}, {}, &telemetry);
  ASSERT_TRUE(controller.link_single(cache_source()).ok());

  const auto& tracer = telemetry.tracer;
  const auto root_idx = tracer.find("link");
  ASSERT_NE(root_idx, obs::SpanTracer::kNoSpan);
  const auto& root = tracer.spans()[root_idx];
  EXPECT_EQ(root.parent, -1);
  EXPECT_FALSE(root.open);

  // The deployment phases of §6.2 appear as direct children of the link
  // span, in transaction order: compile (parse+translate), solve, then the
  // deploy-transaction phases reserve -> plan (entrygen) -> stage -> commit
  // (the "install" span wrapping txn.commit).
  const auto children = tracer.children_of(root_idx);
  std::vector<std::string> names;
  names.reserve(children.size());
  for (const auto idx : children) names.push_back(tracer.spans()[idx].name);
  const std::vector<std::string> expected = {
      "parse", "translate", "solve", "txn.reserve", "entrygen", "txn.stage",
      "install"};
  EXPECT_EQ(names, expected);

  // Children nest inside the root and their virtual durations sum to at
  // most the root's.
  SimClock::Nanos child_sum = 0;
  for (const auto idx : children) {
    const auto& child = tracer.spans()[idx];
    EXPECT_FALSE(child.open);
    EXPECT_GE(child.start_vns, root.start_vns);
    EXPECT_LE(child.end_vns, root.end_vns);
    child_sum += child.virtual_ns();
  }
  EXPECT_LE(child_sum, root.virtual_ns());

  // The install phase wraps the commit span, which contains the simulated
  // bfrt batches carrying the virtual cost of the update.
  const auto install_idx = tracer.find("install");
  const auto install_children = tracer.children_of(install_idx);
  ASSERT_EQ(install_children.size(), 1u);
  const auto commit_idx = install_children.front();
  EXPECT_EQ(tracer.spans()[commit_idx].name, "txn.commit");
  EXPECT_EQ(tracer.spans()[commit_idx].cat, "ctrl");
  const auto batches = tracer.children_of(commit_idx);
  EXPECT_FALSE(batches.empty());
  for (const auto idx : batches) {
    EXPECT_EQ(tracer.spans()[idx].name, "bfrt.batch");
    EXPECT_EQ(tracer.spans()[idx].cat, "bfrt");
  }
}

TEST(Telemetry, LinkRecordsMetrics) {
  obs::Telemetry telemetry;
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock, {}, {}, &telemetry);
  ASSERT_TRUE(controller.link_single(cache_source()).ok());

  const auto& m = telemetry.metrics;
  const auto* links = m.find_counter("ctrl.events.link");
  ASSERT_NE(links, nullptr);
  EXPECT_EQ(links->value(), 1u);
  EXPECT_EQ(m.find_counter("compiler.solver.calls")->value(), 1u);
  const auto* deploy = m.find_histogram("ctrl.link.deploy_ms");
  ASSERT_NE(deploy, nullptr);
  EXPECT_EQ(deploy->count(), 1u);
  EXPECT_GT(deploy->sum(), 0.0);
  // Per-stage occupancy probes report the linked program's footprint.
  EXPECT_GT(m.gauge_value("ctrl.resources.programs"), 0.0);
  EXPECT_GT(m.gauge_value("ctrl.resources.entry_utilization"), 0.0);

  // The operator-facing report renders all sections.
  const std::string report = ctrl::telemetry_report(telemetry);
  EXPECT_NE(report.find("counters:"), std::string::npos);
  EXPECT_NE(report.find("ctrl.events.link"), std::string::npos);
  EXPECT_NE(report.find("histograms:"), std::string::npos);
  EXPECT_NE(report.find("spans:"), std::string::npos);
}

TEST(Telemetry, ChromeTraceExportIsValidJson) {
  obs::Telemetry telemetry;
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock, {}, {}, &telemetry);
  ASSERT_TRUE(controller.link_single(cache_source()).ok());

  std::ostringstream trace;
  obs::export_chrome_trace(telemetry.tracer, trace, /*include_wall=*/true);
  EXPECT_TRUE(JsonValidator(trace.str()).valid()) << trace.str();
  EXPECT_NE(trace.str().find("\"traceEvents\":["), std::string::npos);

  std::ostringstream metrics;
  obs::export_metrics_jsonl(telemetry.metrics, metrics);
  std::istringstream lines(metrics.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonValidator(line).valid()) << line;
    ++count;
  }
  EXPECT_GT(count, 5);
}

TEST(Telemetry, IdenticalRunsExportByteIdenticalFiles) {
  // The solver's wall time is normally charged to the virtual clock, which
  // would make virtual timestamps run-dependent; fix the charge so two
  // identical runs are deterministic end to end.
  const auto run_once = [](std::string& metrics_out, std::string& trace_out) {
    obs::Telemetry telemetry;
    SimClock clock;
    dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
    ctrl::Controller controller(dataplane, clock, {}, {}, &telemetry);
    controller.set_fixed_alloc_charge_ms(1.25);
    ASSERT_TRUE(controller.link_single(cache_source()).ok());

    std::ostringstream metrics, trace;
    obs::export_metrics_jsonl(telemetry.metrics, metrics);
    obs::export_chrome_trace(telemetry.tracer, trace, /*include_wall=*/false);
    metrics_out = metrics.str();
    trace_out = trace.str();
  };

  std::string metrics_a, trace_a, metrics_b, trace_b;
  run_once(metrics_a, trace_a);
  run_once(metrics_b, trace_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_FALSE(trace_a.empty());
  // Metrics include wall-time histograms (parse_ms/alloc_ms measure real
  // computation), so compare everything except those histograms line by
  // line: every counter and gauge line must match exactly.
  std::istringstream lines_a(metrics_a), lines_b(metrics_b);
  std::string line_a, line_b;
  while (std::getline(lines_a, line_a) && std::getline(lines_b, line_b)) {
    if (line_a.find("\"type\":\"histogram\"") != std::string::npos &&
        line_a.find("_ms\"") != std::string::npos) {
      continue;  // wall-time measurement; values legitimately differ
    }
    EXPECT_EQ(line_a, line_b);
  }
}

}  // namespace
}  // namespace p4runpro
