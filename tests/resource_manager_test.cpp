// Resource-manager tests: first-fit free-list behaviour, coalescing,
// fragmentation, entry accounting and the allocator-facing snapshot.
#include <gtest/gtest.h>

#include "control/resource_manager.h"

namespace p4runpro::ctrl {
namespace {

class ResourceManagerTest : public ::testing::Test {
 protected:
  dp::DataplaneSpec spec_;
  ResourceManager rm_{spec_};
};

TEST_F(ResourceManagerTest, FirstFitAllocatesFromLowAddresses) {
  auto a = rm_.allocate_memory(1, 256);
  auto b = rm_.allocate_memory(1, 256);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().base, 0u);
  EXPECT_EQ(b.value().base, 256u);
}

TEST_F(ResourceManagerTest, FreeCoalescesNeighbours) {
  auto a = rm_.allocate_memory(1, 256).take();
  auto b = rm_.allocate_memory(1, 256).take();
  auto c = rm_.allocate_memory(1, 256).take();
  rm_.free_memory(1, a);
  rm_.free_memory(1, c);
  // Free list: [0,256) + [512, end) — two fragments.
  auto snap = rm_.snapshot();
  EXPECT_EQ(snap.free_mem[0].size(), 2u);
  rm_.free_memory(1, b);
  snap = rm_.snapshot();
  ASSERT_EQ(snap.free_mem[0].size(), 1u);
  EXPECT_EQ(snap.free_mem[0][0].base, 0u);
  EXPECT_EQ(snap.free_mem[0][0].size, spec_.memory_per_rpb);
}

TEST_F(ResourceManagerTest, ExternalFragmentationBlocksLargeRequests) {
  // Carve the stage into alternating used/free 8K blocks, then ask for a
  // block larger than any hole (continuous allocation only, §7).
  std::vector<MemBlock> held;
  for (int i = 0; i < 8; ++i) {
    held.push_back(rm_.allocate_memory(1, 8192).take());
  }
  for (int i = 0; i < 8; i += 2) rm_.free_memory(1, held[static_cast<std::size_t>(i)]);
  // 4 x 8K holes = 32K free, but no 16K hole.
  EXPECT_FALSE(rm_.allocate_memory(1, 16384).ok());
  EXPECT_TRUE(rm_.allocate_memory(1, 8192).ok());
}

TEST_F(ResourceManagerTest, SnapshotCanAllocateSimulatesFirstFit) {
  auto a = rm_.allocate_memory(1, 60000).take();
  (void)a;
  const auto snap = rm_.snapshot();
  const std::uint32_t small[] = {4096};
  const std::uint32_t big[] = {8192};
  EXPECT_TRUE(snap.can_allocate(1, small));
  EXPECT_FALSE(snap.can_allocate(1, big));
  // Multi-block requests are carved in order.
  const std::uint32_t multi[] = {2048, 2048};
  EXPECT_TRUE(snap.can_allocate(1, multi));
  const std::uint32_t too_much[] = {4096, 4096};
  EXPECT_FALSE(snap.can_allocate(1, too_much));
}

TEST_F(ResourceManagerTest, SnapshotIsIsolatedFromCommits) {
  const auto snap = rm_.snapshot();
  ASSERT_TRUE(rm_.allocate_memory(1, 1024).ok());
  const std::uint32_t whole[] = {spec_.memory_per_rpb};
  EXPECT_TRUE(snap.can_allocate(1, whole));  // old snapshot unchanged
  EXPECT_FALSE(rm_.snapshot().can_allocate(1, whole));
}

TEST_F(ResourceManagerTest, EntryAccounting) {
  EXPECT_TRUE(rm_.reserve_entries(3, 2000).ok());
  EXPECT_FALSE(rm_.reserve_entries(3, 100).ok());  // 2048 cap
  EXPECT_TRUE(rm_.reserve_entries(3, 48).ok());
  rm_.release_entries(3, 1000);
  EXPECT_EQ(rm_.entries_used(3), 1048u);
  EXPECT_TRUE(rm_.reserve_entries(3, 1000).ok());
}

TEST_F(ResourceManagerTest, UtilizationMetrics) {
  EXPECT_DOUBLE_EQ(rm_.total_memory_utilization(), 0.0);
  ASSERT_TRUE(rm_.allocate_memory(1, spec_.memory_per_rpb).ok());
  const double expected = 1.0 / static_cast<double>(spec_.total_rpbs());
  EXPECT_NEAR(rm_.total_memory_utilization(), expected, 1e-9);
  ASSERT_TRUE(rm_.reserve_entries(1, spec_.entries_per_rpb).ok());
  EXPECT_NEAR(rm_.total_entry_utilization(), expected, 1e-9);
}

TEST_F(ResourceManagerTest, PerProgramPlacementRecords) {
  auto block = rm_.allocate_memory(5, 512).take();
  rm_.record_program(42, {{"m", VmemPlacement{5, block}}});
  ASSERT_NE(rm_.program_placements(42), nullptr);
  EXPECT_EQ(rm_.program_placements(42)->at("m").rpb, 5);
  rm_.erase_program(42);
  EXPECT_EQ(rm_.program_placements(42), nullptr);
}

TEST_F(ResourceManagerTest, StagesAreIndependent) {
  ASSERT_TRUE(rm_.allocate_memory(1, spec_.memory_per_rpb).ok());
  EXPECT_FALSE(rm_.allocate_memory(1, 1).ok());
  EXPECT_TRUE(rm_.allocate_memory(2, spec_.memory_per_rpb).ok());
}

}  // namespace
}  // namespace p4runpro::ctrl
