// Shared test helper: a direct interpreter over the translated IR DAG,
// independent of the table-driven pipeline. Used by the differential tests
// and the random-program fuzzer to cross-check the compiler + data plane.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "control/update_engine.h"
#include "dataplane/dataplane_spec.h"
#include "rmt/crc.h"
#include "rmt/memory.h"
#include "rmt/packet.h"
#include "rmt/phv.h"

namespace p4runpro::testutil {

/// Shadow executor: walks the IR by depth and branch id, mirroring the
/// keying of the RPB tables without using them.
class IrInterpreter {
 public:
  IrInterpreter(const ctrl::InstalledProgram& program, const dp::DataplaneSpec& spec)
      : program_(program), spec_(spec) {
    for (const auto& [vmem, size] : program.ir.vmem_sizes) {
      shadow_.emplace(vmem, rmt::StageMemory(size));
    }
    // Depth -> nodes lookup.
    by_depth_.resize(static_cast<std::size_t>(program.ir.depth));
    for (const auto& node : program.ir.nodes) {
      by_depth_[static_cast<std::size_t>(node.depth - 1)].push_back(&node);
    }
  }

  struct Outcome {
    rmt::FwdDecision decision = rmt::FwdDecision::None;
    Port egress_port = 0;
    Word mcast_group = 0;
    rmt::Packet packet;
  };

  /// True iff the packet passes the program's traffic filter.
  [[nodiscard]] bool filter_matches(const rmt::Packet& pkt) const {
    for (const auto& f : program_.ir.filters) {
      const Word value = rmt::read_field(pkt, f.field, 0);
      if ((value & f.mask) != (f.value & f.mask)) return false;
    }
    return true;
  }

  Outcome run(const rmt::Packet& input, Word qdepth) {
    Outcome out;
    out.packet = input;
    if (!filter_matches(input)) return out;

    std::array<Word, kNumRegs> regs{};
    Word backup = 0;
    MemAddr phys_addr = 0;
    BranchId bid = 0;

    for (const auto& level : by_depth_) {
      const rp::IrNode* active = nullptr;
      for (const auto* node : level) {
        if (node->branch == bid) {
          active = node;
          break;
        }
      }
      if (active == nullptr) continue;  // nop gap at this depth

      const rp::IrOp& op = active->op;
      auto reg = [&regs](Reg r) -> Word& { return regs[static_cast<std::size_t>(r)]; };
      switch (op.kind) {
        case dp::OpKind::Nop:
          break;
        case dp::OpKind::Extract:
          reg(op.reg0) = rmt::read_field(out.packet, op.field, qdepth);
          break;
        case dp::OpKind::Modify:
          rmt::write_field(out.packet, op.field, reg(op.reg0));
          break;
        case dp::OpKind::Hash5Tuple:
          reg(Reg::Har) = rmt::run_hash(rmt::HashAlgo::Crc32,
                                        out.packet.five_tuple().bytes());
          break;
        case dp::OpKind::HashHar: {
          const Word h = reg(Reg::Har);
          const std::array<std::uint8_t, 4> bytes = {
              static_cast<std::uint8_t>(h >> 24), static_cast<std::uint8_t>(h >> 16),
              static_cast<std::uint8_t>(h >> 8), static_cast<std::uint8_t>(h)};
          reg(Reg::Har) = rmt::run_hash(rmt::HashAlgo::Crc32, bytes);
          break;
        }
        case dp::OpKind::Hash5TupleMem:
          reg(Reg::Mar) = rmt::run_hash(stage_algo(*active),
                                        out.packet.five_tuple().bytes()) &
                          (program_.ir.vmem_sizes.at(op.vmem) - 1);
          break;
        case dp::OpKind::HashHarMem: {
          const Word h = reg(Reg::Har);
          const std::array<std::uint8_t, 4> bytes = {
              static_cast<std::uint8_t>(h >> 24), static_cast<std::uint8_t>(h >> 16),
              static_cast<std::uint8_t>(h >> 8), static_cast<std::uint8_t>(h)};
          reg(Reg::Mar) = rmt::run_hash(stage_algo(*active), bytes) &
                          (program_.ir.vmem_sizes.at(op.vmem) - 1);
          break;
        }
        case dp::OpKind::Branch: {
          for (const auto& rule : op.cases) {
            bool hit = true;
            for (const auto& cond : rule.conditions) {
              if ((regs[static_cast<std::size_t>(cond.reg)] & cond.mask) !=
                  (cond.value & cond.mask)) {
                hit = false;
                break;
              }
            }
            if (hit) {
              bid = rule.target;
              break;
            }
          }
          break;
        }
        case dp::OpKind::Offset:
          phys_addr = reg(Reg::Mar);  // shadow memories are zero-based
          break;
        case dp::OpKind::Mem: {
          const auto result = shadow_.at(op.vmem).execute(op.salu, phys_addr,
                                                          reg(Reg::Sar));
          if (result.sar_set) reg(Reg::Sar) = result.sar_out;
          break;
        }
        case dp::OpKind::Loadi:
          reg(op.reg0) = op.imm;
          break;
        case dp::OpKind::Add:
          reg(op.reg0) += reg(op.reg1);
          break;
        case dp::OpKind::And:
          reg(op.reg0) &= reg(op.reg1);
          break;
        case dp::OpKind::Or:
          reg(op.reg0) |= reg(op.reg1);
          break;
        case dp::OpKind::Max:
          reg(op.reg0) = std::max(reg(op.reg0), reg(op.reg1));
          break;
        case dp::OpKind::Min:
          reg(op.reg0) = std::min(reg(op.reg0), reg(op.reg1));
          break;
        case dp::OpKind::Xor:
          reg(op.reg0) ^= reg(op.reg1);
          break;
        case dp::OpKind::Backup:
          backup = reg(op.reg0);
          break;
        case dp::OpKind::Restore:
          reg(op.reg0) = backup;
          break;
        case dp::OpKind::Forward:
          out.decision = rmt::FwdDecision::Forward;
          out.egress_port = static_cast<Port>(op.imm);
          break;
        case dp::OpKind::Drop:
          out.decision = rmt::FwdDecision::Drop;
          break;
        case dp::OpKind::Return:
          out.decision = rmt::FwdDecision::Return;
          break;
        case dp::OpKind::Report:
          out.decision = rmt::FwdDecision::Report;
          break;
        case dp::OpKind::Multicast:
          out.decision = rmt::FwdDecision::Multicast;
          out.mcast_group = op.imm;
          break;
      }
    }
    return out;
  }

  /// Shadow memory bucket (virtual addressing).
  [[nodiscard]] Word read(const std::string& vmem, MemAddr addr) const {
    return shadow_.at(vmem).read(addr);
  }
  void write(const std::string& vmem, MemAddr addr, Word value) {
    shadow_.at(vmem).write(addr, value);
  }
  [[nodiscard]] const std::map<std::string, rmt::StageMemory>& shadows() const {
    return shadow_;
  }

 private:
  /// The CRC16 variant of the physical stage this node landed on (mirrors
  /// Rpb's per-stage cycle without asking the Rpb).
  [[nodiscard]] rmt::HashAlgo stage_algo(const rp::IrNode& node) const {
    const int logical = program_.alloc.x[static_cast<std::size_t>(node.depth - 1)];
    const int phys = dp::physical_rpb(logical, spec_.total_rpbs());
    constexpr rmt::HashAlgo kCycle[] = {
        rmt::HashAlgo::Crc16Buypass, rmt::HashAlgo::Crc16Mcrf4xx,
        rmt::HashAlgo::Crc16AugCcitt, rmt::HashAlgo::Crc16Dds110};
    return kCycle[static_cast<std::size_t>(phys - 1) % 4];
  }

  const ctrl::InstalledProgram& program_;
  const dp::DataplaneSpec& spec_;
  std::map<std::string, rmt::StageMemory> shadow_;
  std::vector<std::vector<const rp::IrNode*>> by_depth_;
};


}  // namespace p4runpro::testutil
