// Conventional-P4 baseline tests: the fixed-function programs behave like
// their P4runpro counterparts (the §6.4 "same functionality" claim), and
// the conventional workflow's reprovisioning blackout drops all traffic.
#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"
#include "p4baseline/fixed_function.h"
#include "traffic/flowgen.h"

namespace p4runpro {
namespace {

rmt::Packet cache_read(Word key, std::uint16_t port = 7777) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{.src_port = 4000, .dst_port = port};
  pkt.app = rmt::AppHeader{.op = 1, .key1 = key, .key2 = 0, .value = 0};
  pkt.ingress_port = 5;
  return pkt;
}

TEST(FixedFunction, CacheEquivalentToP4runproCache) {
  // Same key set, same workload: identical fates and values per packet.
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock);
  apps::ProgramConfig config;
  config.instance_name = "cache";
  config.elastic_cases = 6;  // keys 0x8888..0x888a
  auto linked = controller.link_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(linked.ok());

  p4fix::FixedCache fixed;
  for (Word k = 0; k < 3; ++k) {
    ASSERT_TRUE(controller.write_memory(linked.value().id, "mem1", k, 0xC0DE + k).ok());
    fixed.insert(0x8888 + k, 0xC0DE + k);
  }

  for (Word key : {0x8888u, 0x8889u, 0x888au, 0x9999u, 0x1u}) {
    const auto runpro = dataplane.inject(cache_read(key));
    const auto conventional = fixed.process(cache_read(key));
    EXPECT_EQ(runpro.fate, conventional.fate) << key;
    EXPECT_EQ(runpro.egress_port, conventional.egress_port) << key;
    if (runpro.packet.app && conventional.packet.app) {
      EXPECT_EQ(runpro.packet.app->value, conventional.packet.app->value) << key;
    }
  }

  // Cache write: both drop and store.
  auto write = cache_read(0x8888);
  write.app->op = 2;
  write.app->value = 777;
  EXPECT_EQ(dataplane.inject(write).fate, rmt::PacketFate::Dropped);
  EXPECT_EQ(fixed.process(write).fate, rmt::PacketFate::Dropped);
  EXPECT_EQ(dataplane.inject(cache_read(0x8888)).packet.app->value,
            fixed.process(cache_read(0x8888)).packet.app->value);
}

TEST(FixedFunction, HeavyHitterSameAggregateBehaviour) {
  // Both detectors report each heavy flow exactly once and ignore mice.
  p4fix::FixedHeavyHitter fixed(1024, 10);

  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  apps::ProgramConfig config;
  config.instance_name = "hh";
  config.mem_buckets = 1024;
  config.threshold = 10;
  ASSERT_TRUE(controller.link_single(apps::make_program_source("hh", config)).ok());

  rmt::Packet heavy;
  heavy.ipv4 = rmt::Ipv4Header{.src = 0x0a000007, .dst = 0x0b000001, .proto = 17};
  heavy.udp = rmt::UdpHeader{5000, 6000};
  heavy.ingress_port = 1;

  int fixed_reports = 0;
  int runpro_reports = 0;
  for (int i = 0; i < 40; ++i) {
    if (fixed.process(heavy).fate == rmt::PacketFate::Reported) ++fixed_reports;
    if (dataplane.inject(heavy).fate == rmt::PacketFate::Reported) ++runpro_reports;
  }
  EXPECT_EQ(fixed_reports, 1);
  EXPECT_EQ(runpro_reports, 1);
}

TEST(FixedFunction, LoadBalancerBalancesComparably) {
  p4fix::FixedLoadBalancer fixed(256, 0x0a000000, 0xffff0000);
  for (std::uint32_t b = 0; b < 256; ++b) {
    fixed.set_bucket(b, static_cast<Port>(b % 2), 0xac100000u + (b % 2));
  }
  traffic::CampusTraceConfig config;
  config.duration_s = 2.0;
  config.zipf_skew = 0.5;
  const auto trace = traffic::make_campus_trace(config);
  std::uint64_t port_bytes[2] = {0, 0};
  for (const auto& tp : trace.packets) {
    const auto r = fixed.process(tp.pkt);
    if (r.fate == rmt::PacketFate::Forwarded && r.egress_port < 2) {
      port_bytes[r.egress_port] += r.packet.wire_len();
    }
  }
  EXPECT_LT(analysis::load_imbalance(static_cast<double>(port_bytes[0]),
                                     static_cast<double>(port_bytes[1])),
            0.1);
}

TEST(ConventionalSwitch, ReprovisioningBlacksOutAllTraffic) {
  SimClock clock;
  p4fix::ConventionalSwitch sw(clock);
  sw.provision(std::make_unique<p4fix::FixedForward>(), 0.0);
  EXPECT_EQ(sw.inject(cache_read(1)).fate, rmt::PacketFate::Forwarded);

  // Swap in the cache image: 8 s blackout.
  sw.provision(std::make_unique<p4fix::FixedCache>(), 8.0);
  EXPECT_TRUE(sw.provisioning());
  EXPECT_EQ(sw.inject(cache_read(1)).fate, rmt::PacketFate::Dropped);
  clock.advance_ms(7999.0);
  EXPECT_EQ(sw.inject(cache_read(1)).fate, rmt::PacketFate::Dropped);
  clock.advance_ms(2.0);
  EXPECT_FALSE(sw.provisioning());
  // Up again, running the new image (miss -> server port 32).
  EXPECT_EQ(sw.inject(cache_read(1)).egress_port, 32);
}

TEST(ConventionalSwitch, UnprovisionedSwitchDropsEverything) {
  SimClock clock;
  p4fix::ConventionalSwitch sw(clock);
  EXPECT_EQ(sw.inject(cache_read(1)).fate, rmt::PacketFate::Dropped);
}

}  // namespace
}  // namespace p4runpro
