// Differential tests for the compiled-bucket TernaryTable against a naive
// reference scan, plus regression tests for the fast-path machinery this
// table feeds: handle-indexed erase (touches only the owning bucket) and
// the RPB (program, branch, recirc) match cache with its two invalidation
// rules (table generation churn; register-keyed entries disable caching).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "dataplane/rpb.h"
#include "rmt/phv.h"
#include "rmt/tables.h"

namespace {

using namespace p4runpro;
using rmt::TernaryKey;
using rmt::TernaryTable;

// --- naive reference model ------------------------------------------------

struct RefEntry {
  std::vector<TernaryKey> keys;
  int priority = 0;
  std::uint64_t order = 0;  // insertion order; earlier wins priority ties
  int action = 0;
};

class ReferenceTable {
 public:
  explicit ReferenceTable(int width) : width_(width) {}

  std::uint64_t insert(std::vector<TernaryKey> keys, int priority, int action) {
    RefEntry e{std::move(keys), priority, next_order_++, action};
    entries_.push_back(std::move(e));
    return entries_.back().order;
  }

  bool erase(std::uint64_t order) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].order == order) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::optional<int> lookup(std::span<const Word> fields) const {
    const RefEntry* best = nullptr;
    for (const RefEntry& e : entries_) {
      bool hit = true;
      for (int i = 0; i < width_; ++i) {
        if (!e.keys[static_cast<std::size_t>(i)].matches(
                fields[static_cast<std::size_t>(i)])) {
          hit = false;
          break;
        }
      }
      if (!hit) continue;
      if (best == nullptr || e.priority > best->priority ||
          (e.priority == best->priority && e.order < best->order)) {
        best = &e;
      }
    }
    if (best == nullptr) return std::nullopt;
    return best->action;
  }

 private:
  int width_;
  std::vector<RefEntry> entries_;
  std::uint64_t next_order_ = 1;
};

// --- randomized differential ----------------------------------------------

TEST(TernaryEquiv, RandomizedDifferentialAgainstNaiveScan) {
  constexpr int kWidth = 3;
  TernaryTable<int, kWidth> table(kWidth, 100000);
  ReferenceTable ref(kWidth);
  std::mt19937 rng(20240807);

  // First-key values mix the dense-indexed range, the hash-map fallback
  // range (>= the dense limit of 4096), and wildcards; later components mix
  // exact, partial-mask and wildcard keys so priorities matter.
  const auto random_first_value = [&]() -> Word {
    switch (rng() % 3) {
      case 0: return rng() % 6;            // dense, heavy collisions
      case 1: return 40000 + rng() % 4;    // sparse, hash-map fallback
      default: return 1000 + rng() % 8;    // dense, light collisions
    }
  };
  const auto random_key = [&](bool first) -> TernaryKey {
    const Word v = first ? random_first_value() : rng() % 8;
    switch (rng() % 3) {
      case 0: return TernaryKey::any();
      case 1: return TernaryKey::exact(v);
      default: return TernaryKey{v, 0x7u};  // partial mask
    }
  };

  struct Live {
    rmt::EntryHandle handle;
    std::uint64_t order;
  };
  std::vector<Live> live;
  int next_action = 0;

  for (int op = 0; op < 6000; ++op) {
    const unsigned pick = rng() % 10;
    if (pick < 4) {  // insert
      std::vector<TernaryKey> keys;
      keys.push_back(random_key(/*first=*/true));
      for (int i = 1; i < kWidth; ++i) keys.push_back(random_key(false));
      const int priority = static_cast<int>(rng() % 4);  // few levels: ties abound
      const int action = next_action++;
      auto inserted = table.insert(keys, priority, action);
      ASSERT_TRUE(inserted.ok());
      const std::uint64_t order = ref.insert(std::move(keys), priority, action);
      live.push_back({inserted.value(), order});
    } else if (pick < 6 && !live.empty()) {  // erase
      const std::size_t victim = rng() % live.size();
      ASSERT_TRUE(table.erase(live[victim].handle));
      ASSERT_TRUE(ref.erase(live[victim].order));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {  // lookup
      std::array<Word, kWidth> fields;
      fields[0] = random_first_value();
      for (int i = 1; i < kWidth; ++i) fields[static_cast<std::size_t>(i)] = rng() % 8;
      const int* got = table.lookup(fields);
      const std::optional<int> want = ref.lookup(fields);
      if (want.has_value()) {
        ASSERT_NE(got, nullptr) << "op " << op;
        // Same winner, including priority ties resolved by insertion order.
        EXPECT_EQ(*got, *want) << "op " << op;
      } else {
        EXPECT_EQ(got, nullptr) << "op " << op;
      }
    }
  }
  EXPECT_EQ(table.size(), live.size());
}

TEST(TernaryEquiv, EraseOfUnknownHandleIsRejected) {
  TernaryTable<int, 2> table(2, 8);
  auto h = table.insert({TernaryKey::exact(1), TernaryKey::any()}, 0, 7);
  ASSERT_TRUE(h.ok());
  EXPECT_FALSE(table.erase(h.value() + 100));
  EXPECT_TRUE(table.erase(h.value()));
  EXPECT_FALSE(table.erase(h.value()));  // double-erase
  EXPECT_EQ(table.size(), 0u);
}

// --- erase locality (satellite: no O(buckets x entries) scan) -------------

TEST(TernaryEquiv, EraseTouchesOnlyTheOwningBucket) {
  TernaryTable<int, 2> table(2, 4096);
  // 64 buckets x 8 entries, plus a wildcard pool of 8.
  std::vector<rmt::EntryHandle> handles;
  for (Word bucket = 0; bucket < 64; ++bucket) {
    for (int i = 0; i < 8; ++i) {
      auto h = table.insert({TernaryKey::exact(bucket), TernaryKey::any()}, i,
                            static_cast<int>(bucket * 8) + i);
      ASSERT_TRUE(h.ok());
      handles.push_back(h.value());
    }
  }
  for (int i = 0; i < 8; ++i) {
    auto h = table.insert({TernaryKey::any(), TernaryKey::exact(Word(i))}, 0, 1000 + i);
    ASSERT_TRUE(h.ok());
  }

  table.reset_stats();
  // Erase one entry from bucket 17: the handle->bucket locator must route
  // the scan to that bucket alone — at most the 8 entries it holds, not the
  // 520 in the table.
  ASSERT_TRUE(table.erase(handles[17 * 8 + 3]));
  const auto& stats = table.stats();
  EXPECT_EQ(stats.erase_calls, 1u);
  EXPECT_LE(stats.erase_probes, 8u);
  EXPECT_GE(stats.erase_probes, 1u);

  // Erasing from the wildcard pool scans only the pool.
  table.reset_stats();
  auto wild = table.insert({TernaryKey::any(), TernaryKey::any()}, -1, 2000);
  ASSERT_TRUE(wild.ok());
  table.reset_stats();
  ASSERT_TRUE(table.erase(wild.value()));
  EXPECT_LE(table.stats().erase_probes, 9u);  // pool held 9 entries
}

// --- RPB match-cache validity ---------------------------------------------

rmt::Phv claimed_phv(ProgramId program, BranchId branch = 0, RecircId recirc = 0) {
  rmt::Phv phv;
  phv.program_id = program;
  phv.branch_id = branch;
  phv.recirc_id = recirc;
  return phv;
}

std::array<TernaryKey, dp::kRpbKeyWidth> rpb_keys(ProgramId program) {
  std::array<TernaryKey, dp::kRpbKeyWidth> keys;
  keys.fill(TernaryKey::any());
  keys[dp::kKeyProgram] = TernaryKey::exact(program);
  keys[dp::kKeyBranch] = TernaryKey::exact(0);
  keys[dp::kKeyRecirc] = TernaryKey::exact(0);
  return keys;
}

TEST(RpbMatchCache, RepeatLookupsAreServedFromTheCache) {
  dp::Rpb rpb(1, /*ingress=*/true, 64, 64);
  rmt::StageStats stats;
  rpb.set_stage_stats(&stats);
  auto keys = rpb_keys(1);
  ASSERT_TRUE(rpb.table().insert(keys, 0, dp::RpbAction{dp::AtomicOp::nop(), {}, 1}).ok());

  for (int i = 0; i < 5; ++i) {
    auto phv = claimed_phv(1);
    rpb.process(phv);
    EXPECT_EQ(phv.pkt_table_hits, 1u);
  }
  // First packet fills the slot, the next four hit it.
  EXPECT_EQ(rpb.match_cache_hits(), 4u);
  EXPECT_EQ(stats.match_cache_hits, 4u);
  EXPECT_EQ(stats.table_hits, 5u);
}

TEST(RpbMatchCache, InsertBetweenLookupsInvalidatesTheCache) {
  dp::Rpb rpb(1, /*ingress=*/true, 64, 64);
  ASSERT_TRUE(rpb.table().insert(rpb_keys(1), 0,
                                 dp::RpbAction{dp::AtomicOp::nop(), {}, 1}).ok());
  auto phv = claimed_phv(1);
  rpb.process(phv);  // fill

  // A higher-priority entry for the same triple lands between lookups: the
  // generation bump must force a re-lookup that sees the new winner.
  ASSERT_TRUE(rpb.table()
                  .insert(rpb_keys(1), 10,
                          dp::RpbAction{dp::AtomicOp::loadi(Reg::Har, 42), {}, 1})
                  .ok());
  auto phv2 = claimed_phv(1);
  rpb.process(phv2);
  EXPECT_EQ(phv2.reg(Reg::Har), 42u);       // new entry executed
  EXPECT_EQ(rpb.match_cache_hits(), 0u);    // both lookups went to the table
}

TEST(RpbMatchCache, EraseBetweenLookupsInvalidatesTheCache) {
  dp::Rpb rpb(1, /*ingress=*/true, 64, 64);
  auto inserted = rpb.table().insert(
      rpb_keys(1), 0, dp::RpbAction{dp::AtomicOp::loadi(Reg::Har, 7), {}, 1});
  ASSERT_TRUE(inserted.ok());
  auto phv = claimed_phv(1);
  rpb.process(phv);
  EXPECT_EQ(phv.reg(Reg::Har), 7u);

  ASSERT_TRUE(rpb.table().erase(inserted.value()));
  // A stale cache would replay the erased entry's action from a dangling
  // pointer; the generation check must turn this into a clean miss instead.
  auto phv2 = claimed_phv(1);
  rpb.process(phv2);
  EXPECT_EQ(phv2.reg(Reg::Har), 0u);
  EXPECT_EQ(phv2.pkt_table_hits, 0u);
  EXPECT_EQ(phv2.pkt_table_misses, 1u);
  EXPECT_EQ(rpb.match_cache_hits(), 0u);
}

TEST(RpbMatchCache, RegisterKeyedEntriesDisableTheCache) {
  dp::Rpb rpb(1, /*ingress=*/true, 64, 64);
  rmt::StageStats stats;
  rpb.set_stage_stats(&stats);
  // Branch-style entry keyed on the Sar register (nonzero mask on a
  // register component): the winner is a function of packet state, so the
  // (program, branch, recirc) cache must never serve it.
  auto keys = rpb_keys(1);
  keys[dp::kKeySar] = TernaryKey{1, 0x1u};
  ASSERT_TRUE(rpb.table()
                  .insert(keys, 0,
                          dp::RpbAction{dp::AtomicOp::loadi(Reg::Mar, 9), {}, 1})
                  .ok());

  for (int i = 0; i < 4; ++i) {
    auto phv = claimed_phv(1);
    phv.set_reg(Reg::Sar, static_cast<Word>(i));  // alternates match / miss
    rpb.process(phv);
    const bool should_match = (i & 1) == 1;
    EXPECT_EQ(phv.pkt_table_hits, should_match ? 1u : 0u) << i;
    EXPECT_EQ(phv.reg(Reg::Mar), should_match ? 9u : 0u) << i;
  }
  // Provably bypassed: every lookup went to the table.
  EXPECT_EQ(rpb.match_cache_hits(), 0u);
  EXPECT_EQ(stats.match_cache_hits, 0u);

  // And a register-keyed entry for one program must not poison another
  // program whose entries are cache-eligible.
  ASSERT_TRUE(rpb.table()
                  .insert(rpb_keys(2), 0,
                          dp::RpbAction{dp::AtomicOp::nop(), {}, 2})
                  .ok());
  for (int i = 0; i < 3; ++i) {
    auto phv = claimed_phv(2);
    rpb.process(phv);
    EXPECT_EQ(phv.pkt_table_hits, 1u);
  }
  EXPECT_EQ(rpb.match_cache_hits(), 2u);  // program 2 caches fine
}

TEST(RpbMatchCache, CachedMissIsInvalidatedByLaterInsert) {
  dp::Rpb rpb(1, /*ingress=*/true, 64, 64);
  // Table non-empty (so the empty-table fast-out does not trigger) but with
  // no entry for program 5: the miss gets cached.
  ASSERT_TRUE(rpb.table().insert(rpb_keys(9), 0,
                                 dp::RpbAction{dp::AtomicOp::nop(), {}, 9}).ok());
  auto phv = claimed_phv(5);
  rpb.process(phv);
  EXPECT_EQ(phv.pkt_table_misses, 1u);
  auto phv2 = claimed_phv(5);
  rpb.process(phv2);
  EXPECT_EQ(rpb.match_cache_hits(), 1u);  // miss served from cache

  // Entry for program 5 arrives: the cached miss must not shadow it.
  ASSERT_TRUE(rpb.table().insert(rpb_keys(5), 0,
                                 dp::RpbAction{dp::AtomicOp::nop(), {}, 5}).ok());
  auto phv3 = claimed_phv(5);
  rpb.process(phv3);
  EXPECT_EQ(phv3.pkt_table_hits, 1u);
}

}  // namespace
