// Parameterized semantics sweeps for the arithmetic & logic primitives and
// every pseudo primitive (Fig. 14 translations), executed END-TO-END on the
// data plane: each (op, a, b) case links a tiny program that loads the
// operands, applies the op, writes the result into the packet and returns
// it. This pins down the exact two's-complement/overflow behaviour the
// translations rely on.
#include <gtest/gtest.h>

#include <string>

#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

struct OpCase {
  const char* op;      // primitive spelling, e.g. "SUB(sar, mar)"
  bool immediate;      // second operand is an immediate
  Word (*expect)(Word a, Word b);
};

Word do_add(Word a, Word b) { return a + b; }
Word do_sub(Word a, Word b) { return a - b; }
Word do_and(Word a, Word b) { return a & b; }
Word do_or(Word a, Word b) { return a | b; }
Word do_xor(Word a, Word b) { return a ^ b; }
Word do_max(Word a, Word b) { return std::max(a, b); }
Word do_min(Word a, Word b) { return std::min(a, b); }
Word do_move(Word, Word b) { return b; }
Word do_not(Word a, Word) { return ~a; }
Word do_equal(Word a, Word b) { return a ^ b; }  // 0 iff equal
// SGT: 0 iff a >= b (min then xor); else nonzero.
Word do_sgt(Word a, Word b) { return std::min(a, b) ^ b; }
Word do_slt(Word a, Word b) { return std::max(a, b) ^ b; }

const OpCase kOps[] = {
    {"ADD(sar, mar)", false, do_add},
    {"SUB(sar, mar)", false, do_sub},
    {"AND(sar, mar)", false, do_and},
    {"OR(sar, mar)", false, do_or},
    {"XOR(sar, mar)", false, do_xor},
    {"MAX(sar, mar)", false, do_max},
    {"MIN(sar, mar)", false, do_min},
    {"MOVE(sar, mar)", false, do_move},
    {"NOT(sar)", false, do_not},
    {"EQUAL(sar, mar)", false, do_equal},
    {"SGT(sar, mar)", false, do_sgt},
    {"SLT(sar, mar)", false, do_slt},
    {"ADDI(sar, %b)", true, do_add},
    {"SUBI(sar, %b)", true, do_sub},
    {"ANDI(sar, %b)", true, do_and},
    {"XORI(sar, %b)", true, do_xor},
};

const std::pair<Word, Word> kOperands[] = {
    {0u, 0u},
    {1u, 1u},
    {5u, 7u},
    {7u, 5u},
    {0xffffffffu, 1u},          // overflow wrap
    {1u, 0xffffffffu},
    {0u, 0xffffffffu},
    {0x80000000u, 0x7fffffffu}, // signed boundary (ops are unsigned)
    {0xdeadbeefu, 0x12345678u},
    {42u, 42u},
};

class PseudoSemantics
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PseudoSemantics, EndToEndMatchesReference) {
  const auto& op_case = kOps[std::get<0>(GetParam())];
  const auto& [a, b] = kOperands[std::get<1>(GetParam())];

  std::string op_text = op_case.op;
  if (op_case.immediate) {
    const auto pos = op_text.find("%b");
    op_text.replace(pos, 2, std::to_string(b));
  }

  // sar = a, mar = b (from the app header), apply, return the result.
  const std::string source =
      "program t(<hdr.udp.dst_port, 7777, 0xffff>) {\n"
      "  EXTRACT(hdr.nc.key1, sar);\n"
      "  EXTRACT(hdr.nc.key2, mar);\n"
      "  " + op_text + ";\n"
      "  MODIFY(hdr.nc.val, sar);\n"
      "  RETURN;\n"
      "}\n";

  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock);
  auto linked = controller.link_single(source);
  ASSERT_TRUE(linked.ok()) << op_text << ": " << linked.error().str();

  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 1, .dst = 2, .proto = 17};
  pkt.udp = rmt::UdpHeader{1000, 7777};
  pkt.app = rmt::AppHeader{0, a, b, 0};
  pkt.ingress_port = 1;

  const auto result = dataplane.inject(pkt);
  ASSERT_EQ(result.fate, rmt::PacketFate::Returned) << op_text;
  ASSERT_TRUE(result.packet.app.has_value());
  EXPECT_EQ(result.packet.app->value, op_case.expect(a, b))
      << op_text << " a=0x" << std::hex << a << " b=0x" << b;
}

INSTANTIATE_TEST_SUITE_P(
    OpsByOperands, PseudoSemantics,
    ::testing::Combine(::testing::Range<std::size_t>(0, std::size(kOps)),
                       ::testing::Range<std::size_t>(0, std::size(kOperands))),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, std::size_t>>& info) {
      std::string name = kOps[std::get<0>(info.param)].op;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_v" + std::to_string(std::get<1>(info.param));
    });

// Comparison-flavoured checks of the SGT/SLT encodings: the zero/non-zero
// outcome must reflect the comparison itself.
TEST(PseudoSemanticsComparisons, SgtSltZeroEncoding) {
  for (const auto& [a, b] : kOperands) {
    EXPECT_EQ(do_sgt(a, b) == 0, a >= b) << a << " " << b;
    EXPECT_EQ(do_slt(a, b) == 0, a <= b) << a << " " << b;
    EXPECT_EQ(do_equal(a, b) == 0, a == b) << a << " " << b;
  }
}

}  // namespace
}  // namespace p4runpro
