// Random-program differential fuzzing: generate syntactically and
// semantically valid random P4runpro programs (covering all primitive
// classes, pseudo primitives, nested branches and memory), link them, and
// cross-check the table-driven pipeline against the independent IR
// interpreter on random traffic. This explores compiler + data-plane
// corners that no hand-written program hits.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

#include "ir_interpreter.h"

namespace p4runpro {
namespace {

/// Generates a valid random program. Memory addressing is always clamped
/// in-program (ANDI with size-1 right before each memory op) so the
/// programmer contract of §4.1.2 holds by construction.
class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    out_.str("");
    mem_count_ = 1 + static_cast<int>(rng_.uniform(2));
    for (int m = 0; m < mem_count_; ++m) {
      sizes_.push_back(16u << rng_.uniform(3));  // 16/32/64
      out_ << "@ m" << m << " " << sizes_.back() << "\n";
    }
    out_ << "program fuzz(<hdr.ipv4.proto, 17, 0xff>) {\n";
    emit_sequence(4 + static_cast<int>(rng_.uniform(6)), 0);
    out_ << "}\n";
    return out_.str();
  }

 private:
  const char* reg(int i) const { return i == 0 ? "har" : i == 1 ? "sar" : "mar"; }
  const char* random_reg() { return reg(static_cast<int>(rng_.uniform(3))); }

  void emit_sequence(int length, int depth) {
    for (int i = 0; i < length; ++i) {
      const double roll = rng_.uniform01();
      if (roll < 0.12 && depth < 2) {
        emit_branch(depth);
        return;  // trailing primitives after a branch end the sequence here
      }
      if (roll < 0.32) {
        emit_memory_op();
      } else {
        emit_stateless_op();
      }
    }
    if (depth == 0 && rng_.uniform01() < 0.6) {
      const char* kTerminal[] = {"DROP;", "RETURN;", "REPORT;", "FORWARD(3);",
                                 "MULTICAST(1);"};
      out_ << "  " << kTerminal[rng_.uniform(5)] << "\n";
    }
  }

  void emit_stateless_op() {
    switch (rng_.uniform(9)) {
      case 0:
        out_ << "  EXTRACT(hdr.ipv4.src, " << random_reg() << ");\n";
        break;
      case 1:
        out_ << "  EXTRACT(hdr.ipv4.len, " << random_reg() << ");\n";
        break;
      case 2:
        out_ << "  LOADI(" << random_reg() << ", " << rng_.uniform(1000) << ");\n";
        break;
      case 3: {
        const char* kAlu[] = {"ADD", "AND", "OR", "MAX", "MIN", "XOR"};
        out_ << "  " << kAlu[rng_.uniform(6)] << "(" << random_reg() << ", "
             << random_reg() << ");\n";
        break;
      }
      case 4: {
        const char* kPseudo[] = {"MOVE", "SUB", "EQUAL", "SGT", "SLT"};
        const int a = static_cast<int>(rng_.uniform(3));
        const int b = static_cast<int>(rng_.uniform(3));
        out_ << "  " << kPseudo[rng_.uniform(5)] << "(" << reg(a) << ", " << reg(b)
             << ");\n";
        break;
      }
      case 5: {
        const char* kImm[] = {"ADDI", "SUBI", "ANDI", "XORI"};
        out_ << "  " << kImm[rng_.uniform(4)] << "(" << random_reg() << ", "
             << rng_.uniform(5000) << ");\n";
        break;
      }
      case 6:
        out_ << "  NOT(" << random_reg() << ");\n";
        break;
      case 7:
        out_ << "  HASH_5_TUPLE;\n";
        break;
      default:
        out_ << "  MODIFY(hdr.ipv4.dscp, " << random_reg() << ");\n";
        break;
    }
  }

  void emit_memory_op() {
    const int m = static_cast<int>(rng_.uniform(static_cast<std::uint64_t>(mem_count_)));
    // Address setup: hashed or loaded, then clamped to the block.
    if (rng_.uniform01() < 0.5) {
      out_ << "  HASH_5_TUPLE_MEM(m" << m << ");\n";
    } else {
      out_ << "  LOADI(mar, " << rng_.uniform(sizes_[static_cast<std::size_t>(m)])
           << ");\n";
    }
    out_ << "  ANDI(mar, " << (sizes_[static_cast<std::size_t>(m)] - 1) << ");\n";
    const char* kMem[] = {"MEMADD", "MEMSUB", "MEMAND", "MEMOR",
                          "MEMREAD", "MEMWRITE", "MEMMAX"};
    out_ << "  " << kMem[rng_.uniform(7)] << "(m" << m << ");\n";
  }

  void emit_branch(int depth) {
    out_ << "  BRANCH:\n";
    const int cases = 1 + static_cast<int>(rng_.uniform(3));
    for (int c = 0; c < cases; ++c) {
      const Word value = static_cast<Word>(rng_.uniform(4));
      const Word mask = rng_.uniform01() < 0.5 ? 0x3u : 0xffffffffu;
      out_ << "  case(<" << random_reg() << ", " << value << ", 0x" << std::hex
           << mask << std::dec << ">) {\n";
      emit_sequence(1 + static_cast<int>(rng_.uniform(3)), depth + 1);
      out_ << "  };\n";
    }
    // Trailing primitives (replicated into non-terminal cases).
    emit_sequence(1 + static_cast<int>(rng_.uniform(2)), depth + 1);
  }

  Rng rng_;
  std::ostringstream out_;
  int mem_count_ = 0;
  std::vector<std::uint32_t> sizes_;
};

rmt::Packet random_udp(Rng& rng) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{
      .src = 0x0a000000u | static_cast<Word>(rng.uniform(64)),
      .dst = 0x0b000000u | static_cast<Word>(rng.uniform(64)),
      .proto = 17,
      .ttl = 64,
      .dscp = 0,
      .ecn = 0,
      .total_len = static_cast<std::uint16_t>(64 + rng.uniform(1000))};
  pkt.udp = rmt::UdpHeader{static_cast<std::uint16_t>(rng.uniform(8000)),
                           static_cast<std::uint16_t>(rng.uniform(8000))};
  pkt.ingress_port = static_cast<Port>(rng.uniform(8));
  return pkt;
}

class RandomProgramFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramFuzz, PipelineMatchesInterpreter) {
  int linked_count = 0;
  for (std::uint64_t variant = 0; variant < 16; ++variant) {
    ProgramGenerator generator(GetParam() * 1000 + variant);
    const std::string source = generator.generate();

    SimClock clock;
    dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
    dataplane.pipeline().set_multicast_group(1, {4, 5});
    ctrl::Controller controller(dataplane, clock);
    auto linked = controller.link_single(source);
    if (!linked.ok()) continue;  // e.g. too deep for the logical RPBs: fine
    ++linked_count;
    const auto* installed = controller.program(linked.value().id);
    ASSERT_NE(installed, nullptr);
    testutil::IrInterpreter interpreter(*installed, dataplane.spec());

    Rng traffic(GetParam() ^ (variant * 977));
    for (int i = 0; i < 60; ++i) {
      const rmt::Packet pkt = random_udp(traffic);
      const auto expect = interpreter.run(pkt, 0);
      const auto actual = dataplane.inject(pkt);

      if (expect.decision == rmt::FwdDecision::Multicast) {
        EXPECT_EQ(actual.fate, rmt::PacketFate::Multicasted) << source;
      } else if (expect.decision == rmt::FwdDecision::Drop) {
        EXPECT_EQ(actual.fate, rmt::PacketFate::Dropped) << source;
      } else if (expect.decision == rmt::FwdDecision::Report) {
        EXPECT_EQ(actual.fate, rmt::PacketFate::Reported) << source;
      } else if (expect.decision == rmt::FwdDecision::Return) {
        EXPECT_EQ(actual.fate, rmt::PacketFate::Returned) << source;
      } else {
        ASSERT_EQ(actual.fate, rmt::PacketFate::Forwarded) << source;
        if (expect.decision == rmt::FwdDecision::Forward) {
          EXPECT_EQ(actual.egress_port, expect.egress_port) << source;
        }
      }
      ASSERT_TRUE(actual.packet.ipv4.has_value());
      EXPECT_EQ(actual.packet.ipv4->dscp, expect.packet.ipv4->dscp) << source;
    }

    for (const auto& [vmem, shadow] : interpreter.shadows()) {
      for (MemAddr a = 0; a < shadow.size(); ++a) {
        auto actual = controller.read_memory(linked.value().id, vmem, a);
        ASSERT_TRUE(actual.ok());
        ASSERT_EQ(actual.value(), shadow.read(a))
            << source << "\nmemory " << vmem << "[" << a << "]";
      }
    }
  }
  // Most generated programs must be linkable (deep ones can legitimately
  // exceed the 44 logical RPBs and fail allocation).
  EXPECT_GE(linked_count, 6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramFuzz,
                         ::testing::Values(11ull, 222ull, 3333ull, 44444ull,
                                           555555ull));

}  // namespace
}  // namespace p4runpro
