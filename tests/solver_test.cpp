// Allocation-solver tests: the five constraint families of §4.3 and the
// behaviour of the four objective functions (§6.2.4).
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "compiler/compiler.h"
#include "compiler/solver.h"
#include "control/resource_manager.h"

namespace p4runpro::rp {
namespace {

class SolverTest : public ::testing::Test {
 protected:
  SolverTest() : resources_(spec_) {}

  TranslatedProgram compile_app(const std::string& key, int elastic = 2,
                                std::uint32_t mem = 256) {
    apps::ProgramConfig config;
    config.instance_name = key;
    config.elastic_cases = elastic;
    config.mem_buckets = mem;
    auto r = compile_single(apps::make_program_source(key, config));
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().str());
    return std::move(r).take();
  }

  AllocationResult solve(const TranslatedProgram& p,
                         Objective objective = {}) {
    auto r = solve_allocation(p, spec_, resources_.snapshot(), objective);
    EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().str());
    return r.ok() ? std::move(r).take() : AllocationResult{};
  }

  void check_constraints(const TranslatedProgram& p, const AllocationResult& a) {
    ASSERT_EQ(a.x.size(), static_cast<std::size_t>(p.depth));
    // (1) strictly increasing.
    for (std::size_t i = 1; i < a.x.size(); ++i) EXPECT_LT(a.x[i - 1], a.x[i]);
    const int total = spec_.total_rpbs();
    for (std::size_t d = 0; d < a.x.size(); ++d) {
      const int phys = dp::physical_rpb(a.x[d], total);
      // (4) forwarding depths in ingress RPBs.
      if (p.depth_reqs[d].forwarding) {
        EXPECT_TRUE(dp::is_ingress_rpb(phys, spec_.ingress_rpbs));
      }
      // (5) memory depths pinned to the vmem's physical RPB.
      for (const auto& vmem : p.depth_reqs[d].vmems) {
        EXPECT_EQ(a.vmem_rpb.at(vmem), phys);
      }
    }
    // logical bound.
    EXPECT_LE(a.x.back(), spec_.logical_rpbs());
  }

  dp::DataplaneSpec spec_;
  ctrl::ResourceManager resources_;
};

TEST_F(SolverTest, AllCatalogProgramsAllocateOnEmptySwitch) {
  for (const auto& info : apps::program_catalog()) {
    const auto p = compile_app(info.key);
    auto r = solve_allocation(p, spec_, resources_.snapshot(), Objective{});
    ASSERT_TRUE(r.ok()) << info.key << ": " << (r.ok() ? "" : r.error().str());
    check_constraints(p, r.value());
  }
}

TEST_F(SolverTest, CacheFitsWithoutRecirculation) {
  const auto p = compile_app("cache");
  const auto a = solve(p);
  EXPECT_EQ(a.rounds, 1);
  EXPECT_LE(a.x.back(), spec_.total_rpbs());
}

TEST_F(SolverTest, HeavyHitterNeedsRecirculation) {
  // hh translates to more depths than the 22 physical RPBs; with R = 1 it
  // must span two rounds (one of the 2-of-15 programs needing
  // recirculation, §6.3).
  const auto p = compile_app("hh");
  EXPECT_GT(p.depth, spec_.total_rpbs());
  const auto a = solve(p);
  EXPECT_EQ(a.rounds, 2);
}

TEST_F(SolverTest, ForwardingConstraintRespectedUnderPressure) {
  // Exhaust the entries of most ingress RPBs, then allocate a program with
  // a late forwarding primitive: the solver must still land every
  // forwarding depth on an ingress RPB (possibly in round 2).
  for (int rpb = 2; rpb <= spec_.ingress_rpbs; ++rpb) {
    ASSERT_TRUE(resources_.reserve_entries(rpb, spec_.entries_per_rpb).ok());
  }
  const auto p = compile_app("cache");
  auto r = solve_allocation(p, spec_, resources_.snapshot(), Objective{});
  ASSERT_TRUE(r.ok()) << r.error().str();
  check_constraints(p, r.value());
  EXPECT_EQ(r.value().rounds, 2);  // forced to wrap into the second round
}

TEST_F(SolverTest, FailsWhenMemoryExhausted) {
  // Fill all stage memory.
  for (int rpb = 1; rpb <= spec_.total_rpbs(); ++rpb) {
    ASSERT_TRUE(resources_.allocate_memory(rpb, spec_.memory_per_rpb).ok());
  }
  const auto p = compile_app("cache");
  EXPECT_FALSE(solve_allocation(p, spec_, resources_.snapshot(), Objective{}).ok());
}

TEST_F(SolverTest, FailsWhenEntriesExhausted) {
  for (int rpb = 1; rpb <= spec_.total_rpbs(); ++rpb) {
    ASSERT_TRUE(resources_.reserve_entries(rpb, spec_.entries_per_rpb - 1).ok());
  }
  const auto p = compile_app("cache");
  EXPECT_FALSE(solve_allocation(p, spec_, resources_.snapshot(), Objective{}).ok());
}

TEST_F(SolverTest, ObjectiveF2MinimizesLastRpb) {
  const auto p = compile_app("lb");
  const auto f2 = solve(p, Objective{ObjectiveKind::F2});
  // No other objective may find a smaller x_L than f2's optimum.
  for (auto kind : {ObjectiveKind::F1, ObjectiveKind::F3, ObjectiveKind::Hierarchical}) {
    const auto other = solve(p, Objective{kind});
    EXPECT_GE(other.x.back(), f2.x.back());
  }
}

TEST_F(SolverTest, HierarchicalMaximizesStartGivenMinLast) {
  const auto p = compile_app("lb");
  const auto f2 = solve(p, Objective{ObjectiveKind::F2});
  const auto h = solve(p, Objective{ObjectiveKind::Hierarchical});
  EXPECT_EQ(h.x.back(), f2.x.back());
  EXPECT_GE(h.x.front(), f2.x.front());
}

TEST_F(SolverTest, F1PushesProgramsTowardEgress) {
  // With a = 0.7, b = 0.3 the default objective should not start every
  // program at RPB 1 once ingress entries tighten: deplete ingress RPB 1's
  // entries and verify the start moves.
  ASSERT_TRUE(resources_.reserve_entries(1, spec_.entries_per_rpb).ok());
  const auto p = compile_app("cms");
  const auto a = solve(p, Objective{ObjectiveKind::F1, 0.7, 0.3});
  EXPECT_GT(a.x.front(), 1);
}

TEST_F(SolverTest, F3PrefersLargerStartThanF2) {
  // f3 = xL/x1 rewards large starts; for a program without forwarding
  // primitives it should start deeper in the pipeline than f2's solution.
  const auto p = compile_app("hll");
  const auto f2 = solve(p, Objective{ObjectiveKind::F2});
  const auto f3 = solve(p, Objective{ObjectiveKind::F3});
  EXPECT_GE(f3.x.front(), f2.x.front());
  EXPECT_GE(f3.objective, 1.0);
}

TEST_F(SolverTest, SequentialSameMemoryForcesSamePhysicalStage) {
  // A program reading then writing the same vmem in one path: constraint
  // (5) — both depths on the same physical RPB in different rounds.
  const char* source =
      "@ m 64\n"
      "program p(<hdr.ipv4.src, 1, 0xff>) {\n"
      "  LOADI(mar, 0);\n"
      "  MEMREAD(m);\n"
      "  ADD(sar, sar);\n"
      "  LOADI(mar, 1);\n"
      "  MEMWRITE(m);\n"
      "}\n";
  auto p = compile_single(source);
  ASSERT_TRUE(p.ok()) << p.error().str();
  ASSERT_EQ(p.value().vmem_depths.at("m").size(), 2u);
  const auto a = solve(p.value());
  const int total = spec_.total_rpbs();
  const auto& depths = p.value().vmem_depths.at("m");
  const int phys1 = dp::physical_rpb(a.x[static_cast<std::size_t>(depths[0] - 1)], total);
  const int phys2 = dp::physical_rpb(a.x[static_cast<std::size_t>(depths[1] - 1)], total);
  EXPECT_EQ(phys1, phys2);
  EXPECT_EQ(a.rounds, 2);
}

TEST_F(SolverTest, AggregateEntriesAcrossRoundsCounted) {
  // A physical RPB visited in both rounds must satisfy the SUM of the
  // entry demands. Leave exactly 1 free entry in every RPB and try a
  // program needing 2 entries somewhere across rounds.
  for (int rpb = 1; rpb <= spec_.total_rpbs(); ++rpb) {
    ASSERT_TRUE(resources_.reserve_entries(rpb, spec_.entries_per_rpb - 1).ok());
  }
  // 44 logical slots, 23+ depths: would need some physical RPB twice.
  const auto p = compile_app("hh");
  EXPECT_FALSE(solve_allocation(p, spec_, resources_.snapshot(), Objective{}).ok());
}

TEST_F(SolverTest, ReportsSearchEffort) {
  const auto p = compile_app("cache");
  const auto a = solve(p);
  EXPECT_GT(a.nodes_explored, 0u);
}

}  // namespace
}  // namespace p4runpro::rp
