// Targeted edge cases: depth limits, empty case bodies, branch-only
// programs, deep nesting, and the controller's all-or-nothing unit link.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/program_library.h"
#include "common/clock.h"
#include "compiler/compiler.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

rmt::Packet udp_ttl(std::uint8_t ttl) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 1, .dst = 2, .proto = 17, .ttl = ttl};
  pkt.udp = rmt::UdpHeader{1, 2};
  pkt.ingress_port = 1;
  return pkt;
}

TEST(EdgeCases, ProgramAtExactlyTheLogicalDepthLimit) {
  // 44 logical RPBs with R = 1: a 44-op dependency chain fits, 45 fails.
  auto make_chain = [](int ops) {
    std::ostringstream out;
    out << "program chain(<hdr.ipv4.proto, 17, 0xff>) {\n";
    for (int i = 0; i < ops; ++i) out << "  ADD(har, sar);\n";
    out << "}\n";
    return out.str();
  };
  const dp::DataplaneSpec spec;
  SimClock clock;
  dp::RunproDataplane dataplane(spec, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);

  auto fits = controller.link_single(make_chain(spec.logical_rpbs()));
  ASSERT_TRUE(fits.ok()) << fits.error().str();
  EXPECT_EQ(controller.program(fits.value().id)->ir.depth, spec.logical_rpbs());
  EXPECT_EQ(controller.program(fits.value().id)->alloc.rounds, 2);
  ASSERT_TRUE(controller.revoke(fits.value().id).ok());

  auto too_deep = controller.link_single(make_chain(spec.logical_rpbs() + 1));
  ASSERT_FALSE(too_deep.ok());
  EXPECT_NE(too_deep.error().str().find("too deep"), std::string::npos);
}

TEST(EdgeCases, EmptyNonTerminalCaseReceivesTrailingReplica) {
  // An empty case body is non-terminal, so the trailing primitives run for
  // packets matching it — the footgun DESIGN.md documents (put terminal
  // decisions inside the case to opt out).
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  auto linked = controller.link_single(
      "program e(<hdr.ipv4.proto, 17, 0xff>) {\n"
      "  EXTRACT(hdr.ipv4.ttl, har);\n"
      "  BRANCH:\n"
      "  case(<har, 64, 0xff>) { };\n"
      "  FORWARD(5);\n"
      "}\n");
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  EXPECT_EQ(dataplane.inject(udp_ttl(64)).egress_port, 5);  // replica fired
  EXPECT_EQ(dataplane.inject(udp_ttl(32)).egress_port, 5);  // miss path
}

TEST(EdgeCases, BranchOnlyProgram) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  auto linked = controller.link_single(
      "program b(<hdr.ipv4.proto, 17, 0xff>) {\n"
      "  BRANCH:\n"
      "  case(<har, 0, 0xffffffff>) { DROP; };\n"
      "}\n");
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  // Registers start at 0, so har == 0 matches: dropped.
  EXPECT_EQ(dataplane.inject(udp_ttl(64)).fate, rmt::PacketFate::Dropped);
}

TEST(EdgeCases, TrailingForwardOverridesCaseForwards) {
  // FORWARD is non-terminal, so a trailing FORWARD replicates into the
  // case branches and runs LAST — it overrides the per-case decision (the
  // idiom behind the lb program's DIP rewrite; use wildcard default cases
  // for dispatch instead).
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  auto linked = controller.link_single(
      "program o(<hdr.ipv4.proto, 17, 0xff>) {\n"
      "  EXTRACT(hdr.ipv4.ttl, har);\n"
      "  BRANCH:\n"
      "  case(<har, 64, 0xff>) { FORWARD(1); };\n"
      "  FORWARD(9);\n"
      "}\n");
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  EXPECT_EQ(dataplane.inject(udp_ttl(64)).egress_port, 9);  // overridden
  EXPECT_EQ(dataplane.inject(udp_ttl(32)).egress_port, 9);  // miss path
}

TEST(EdgeCases, TripleNestedBranchesWithWildcardDefaults) {
  // Correct dispatch idiom: every level ends in a wildcard default case,
  // so each packet takes exactly one arm.
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  auto linked = controller.link_single(
      "program n(<hdr.ipv4.proto, 17, 0xff>) {\n"
      "  EXTRACT(hdr.ipv4.ttl, har);\n"
      "  BRANCH:\n"
      "  case(<har, 0, 0x01>) {\n"
      "    BRANCH:\n"
      "    case(<har, 0, 0x02>) {\n"
      "      BRANCH:\n"
      "      case(<har, 0, 0x04>) { FORWARD(1); };\n"
      "      case(<har, 0, 0>) { FORWARD(2); };\n"
      "    };\n"
      "    case(<har, 0, 0>) { FORWARD(3); };\n"
      "  };\n"
      "  case(<har, 0, 0>) { FORWARD(4); };\n"
      "}\n");
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  EXPECT_EQ(dataplane.inject(udp_ttl(0b000)).egress_port, 1);
  EXPECT_EQ(dataplane.inject(udp_ttl(0b100)).egress_port, 2);
  EXPECT_EQ(dataplane.inject(udp_ttl(0b010)).egress_port, 3);
  EXPECT_EQ(dataplane.inject(udp_ttl(0b001)).egress_port, 4);
}

TEST(EdgeCases, UnitLinkIsAllOrNothing) {
  // A two-program unit whose second program cannot link (name collision
  // with a running program) must leave NEITHER program installed.
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);

  ASSERT_TRUE(controller
                  .link_single("program taken(<hdr.ipv4.proto, 6, 0xff>) { DROP; }")
                  .ok());
  const auto before = controller.resources().total_entry_utilization();

  auto unit = controller.link(
      "program fresh(<hdr.ipv4.proto, 17, 0xff>) { FORWARD(1); }\n"
      "program taken(<hdr.ipv4.proto, 1, 0xff>) { FORWARD(2); }\n");
  ASSERT_FALSE(unit.ok());
  EXPECT_EQ(controller.program_count(), 1u);  // only the original survives
  EXPECT_EQ(controller.program_by_name("fresh"), nullptr);
  EXPECT_DOUBLE_EQ(controller.resources().total_entry_utilization(), before);
  // The would-be program claims nothing.
  EXPECT_EQ(dataplane.inject(udp_ttl(64)).egress_port, 0);
}

TEST(EdgeCases, SameFilterTwoProgramsPriorityIsDeterministic) {
  // Overlapping filters: the later-linked program's filter wins (higher
  // install generation), and revoking it re-exposes the earlier one.
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  auto first = controller.link_single(
      "program a(<hdr.ipv4.proto, 17, 0xff>) { FORWARD(1); }");
  auto second = controller.link_single(
      "program b(<hdr.ipv4.proto, 17, 0xff>) { FORWARD(2); }");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(dataplane.inject(udp_ttl(64)).egress_port, 2);
  ASSERT_TRUE(controller.revoke(second.value().id).ok());
  EXPECT_EQ(dataplane.inject(udp_ttl(64)).egress_port, 1);
}

}  // namespace
}  // namespace p4runpro
