// Consistent-update property tests (paper §4.3, Fig. 6): at EVERY
// intermediate data-plane state during program addition and removal, an
// injected packet must be processed either entirely by the old
// configuration or entirely by the new one — never by a mixture. The
// update engine's step observer gives us every intermediate state.
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

rmt::Packet cache_read(Word key) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{.src_port = 4000, .dst_port = 7777};
  pkt.app = rmt::AppHeader{.op = 1, .key1 = key, .key2 = 0, .value = 0};
  pkt.ingress_port = 5;
  return pkt;
}

/// A cache-hit read packet must be either Returned (program active) or
/// default-forwarded to port 0 (program absent). Forwarding to port 32
/// (the program's miss path) would mean the packet saw the FORWARD entry
/// but not the BRANCH — the inconsistent intermediate state Fig. 6 rules
/// out.
void assert_consistent(const rmt::PipelineResult& result) {
  if (result.fate == rmt::PacketFate::Returned) return;  // new config
  ASSERT_EQ(result.fate, rmt::PacketFate::Forwarded);
  EXPECT_EQ(result.egress_port, 0) << "hit packet leaked into a partially "
                                      "installed program (miss-path port)";
}

TEST(ConsistentUpdate, NoMixedStateDuringAddAndRemove) {
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  SimClock clock;
  ctrl::Controller controller(dataplane, clock);

  int steps = 0;
  controller.updates().set_step_observer([&] {
    ++steps;
    assert_consistent(dataplane.inject(cache_read(0x8888)));
  });

  apps::ProgramConfig config;
  config.instance_name = "cache";
  auto linked = controller.link_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  EXPECT_GT(steps, 10);  // many intermediate states were actually probed

  // Fully active now.
  EXPECT_EQ(dataplane.inject(cache_read(0x8888)).fate, rmt::PacketFate::Returned);

  const int steps_after_add = steps;
  ASSERT_TRUE(controller.revoke(linked.value().id).ok());
  EXPECT_GT(steps, steps_after_add + 5);

  // Fully gone.
  EXPECT_EQ(dataplane.inject(cache_read(0x8888)).egress_port, 0);
}

TEST(ConsistentUpdate, OtherProgramsUndisturbedDuringUpdate) {
  // A running lb program must behave identically while a second program is
  // being added and removed (the paper's headline property: updates do not
  // disturb unrelated programs).
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  SimClock clock;
  ctrl::Controller controller(dataplane, clock);

  apps::ProgramConfig lb_config;
  lb_config.instance_name = "lb";
  auto lb = controller.link_single(apps::make_program_source("lb", lb_config));
  ASSERT_TRUE(lb.ok()) << lb.error().str();
  for (std::uint32_t b = 0; b < 256; ++b) {
    ASSERT_TRUE(controller.write_memory(lb.value().id, "port_pool", b, b % 2).ok());
    ASSERT_TRUE(controller.write_memory(lb.value().id, "dip_pool", b, 0xac100000u + b).ok());
  }

  rmt::Packet vip;
  vip.ipv4 = rmt::Ipv4Header{.src = 0x0b000001, .dst = 0x0a000005, .proto = 17};
  vip.udp = rmt::UdpHeader{.src_port = 1234, .dst_port = 80};
  vip.ingress_port = 1;

  const auto reference = dataplane.inject(vip);
  ASSERT_EQ(reference.fate, rmt::PacketFate::Forwarded);
  const Port ref_port = reference.egress_port;
  const Word ref_dip = reference.packet.ipv4->dst;

  controller.updates().set_step_observer([&] {
    const auto r = dataplane.inject(vip);
    ASSERT_EQ(r.fate, rmt::PacketFate::Forwarded);
    EXPECT_EQ(r.egress_port, ref_port);
    EXPECT_EQ(r.packet.ipv4->dst, ref_dip);
  });

  apps::ProgramConfig cache_config;
  cache_config.instance_name = "cache";
  auto cache = controller.link_single(apps::make_program_source("cache", cache_config));
  ASSERT_TRUE(cache.ok());
  ASSERT_TRUE(controller.revoke(cache.value().id).ok());
}

}  // namespace
}  // namespace p4runpro
