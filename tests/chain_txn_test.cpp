// Chain-transaction fault matrix: a control-channel fault at ANY
// (hop, write-index) pair of a chain-wide deploy, relink or revoke must
// unwind the whole chain — every hop's tables, memory contents, resource
// occupancy, free lists and running-program registry — back to a
// byte-identical pre-transaction state. The harness sweeps every fault
// point per hop over chain lengths 2..4 and compares full per-hop
// snapshots against the pre-transaction baseline after every faulted
// attempt.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/result.h"
#include "control/chain_controller.h"
#include "dataplane/switch_chain.h"
#include "obs/telemetry.h"

namespace p4runpro {
namespace {

// Small per-switch spec so full-memory chain snapshots stay cheap; the
// compiler's round bound matches the chain length (R = hops - 1).
dp::DataplaneSpec chain_spec(int length) {
  dp::DataplaneSpec spec;
  spec.memory_per_rpb = 4096;
  spec.entries_per_rpb = 256;
  spec.max_recirculations = length - 1;
  return spec;
}

std::string cache_source(std::uint32_t mem_buckets = 64) {
  apps::ProgramConfig config;
  config.instance_name = "cache";
  config.mem_buckets = mem_buckets;
  return apps::make_program_source("cache", config);
}

std::string hh_source() {
  apps::ProgramConfig config;
  config.instance_name = "hh";
  config.mem_buckets = 64;
  return apps::make_program_source("hh", config);
}

rmt::Packet cache_read(Word key) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{.src_port = 4000, .dst_port = 7777};
  pkt.app = rmt::AppHeader{.op = 1, .key1 = key, .key2 = 0, .value = 0};
  pkt.ingress_port = 5;
  return pkt;
}

struct ChainBed {
  SimClock clock;
  obs::Telemetry telemetry;
  dp::SwitchChain chain;
  ctrl::ChainController controller;

  explicit ChainBed(int length)
      : chain(length, chain_spec(length), rmt::ParserConfig{{7777}}),
        controller(chain, clock, {}, {}, &telemetry) {}
};

/// Everything a rolled-back chain transaction must leave untouched on one
/// hop.
struct HopSnapshot {
  std::vector<std::size_t> rpb_table_sizes;
  std::vector<std::vector<Word>> rpb_memory;  ///< full physical contents
  std::vector<std::size_t> filter_table_sizes;
  std::size_t recirc_entries = 0;
  std::vector<std::uint32_t> entries_free;
  std::vector<std::uint32_t> memory_used;
  std::vector<std::vector<ctrl::MemBlock>> free_mem;

  friend bool operator==(const HopSnapshot&, const HopSnapshot&) = default;
};

struct ChainSnapshot {
  std::vector<HopSnapshot> hops;
  std::vector<ProgramId> running;

  friend bool operator==(const ChainSnapshot&, const ChainSnapshot&) = default;
};

ChainSnapshot capture(ChainBed& bed) {
  ChainSnapshot snap;
  for (int hop = 0; hop < bed.chain.length(); ++hop) {
    dp::RunproDataplane& dataplane = bed.chain.switch_at(hop);
    HopSnapshot hs;
    const int total = dataplane.spec().total_rpbs();
    for (int rpb = 1; rpb <= total; ++rpb) {
      hs.rpb_table_sizes.push_back(dataplane.rpb(rpb).table().size());
      std::vector<Word> words;
      words.reserve(dataplane.spec().memory_per_rpb);
      for (std::uint32_t a = 0; a < dataplane.spec().memory_per_rpb; ++a) {
        words.push_back(dataplane.rpb(rpb).memory().read(a));
      }
      hs.rpb_memory.push_back(std::move(words));
      hs.memory_used.push_back(bed.controller.resources(hop).memory_used(rpb));
    }
    for (int p = 0; p < dp::kNumParsePaths; ++p) {
      hs.filter_table_sizes.push_back(
          dataplane.init_block().table(static_cast<dp::ParsePath>(p)).size());
    }
    hs.recirc_entries = dataplane.recirc_block().entries();
    const auto resources = bed.controller.resources(hop).snapshot();
    hs.entries_free = resources.free_entries;
    hs.free_mem = resources.free_mem;
    snap.hops.push_back(std::move(hs));
  }
  snap.running = bed.controller.running_programs();
  return snap;
}

void disarm_all(ChainBed& bed) {
  for (int hop = 0; hop < bed.chain.length(); ++hop) {
    bed.controller.updates(hop).set_fault_after_writes(-1);
  }
}

const obs::MonitorEvent* last_event(const ChainBed& bed,
                                    obs::MonitorEvent::Kind kind) {
  const auto& events = bed.telemetry.monitor.events();
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->kind == kind) return &*it;
  }
  return nullptr;
}

/// (chain length, async channel). The async rows drive every sweep through
/// the pipelined phase 2: faults surface on a hop's writer thread at settle
/// time, with later hops' writes already in flight — the unwind must still
/// restore every hop byte-identically.
class ChainFaultMatrix
    : public ::testing::TestWithParam<std::tuple<int, bool>> {
 protected:
  [[nodiscard]] int length() const { return std::get<0>(GetParam()); }
  [[nodiscard]] bool async() const { return std::get<1>(GetParam()); }
};

TEST_P(ChainFaultMatrix, DeployFaultSweepRestoresChainByteIdentically) {
  const int length = this->length();
  ChainBed bed(length);
  bed.controller.set_async_writes(async());
  auto cache = bed.controller.link(cache_source());
  ASSERT_TRUE(cache.ok()) << cache.error().str();
  for (MemAddr a = 0; a < 16; ++a) {
    ASSERT_TRUE(
        bed.controller.write_memory(cache.value().id, "mem1", a, 100 + a).ok());
  }
  const ChainSnapshot before = capture(bed);

  for (int hop = 0; hop < length; ++hop) {
    SCOPED_TRACE("faulted hop " + std::to_string(hop));
    int fault = 0;
    for (;; ++fault) {
      ASSERT_LT(fault, 10'000) << "fault index never exceeded the write count";
      bed.controller.updates(hop).set_fault_after_writes(fault);
      auto linked = bed.controller.link(hh_source());
      if (linked.ok()) {
        // The fault index landed beyond this hop's batch: the deploy went
        // through on every hop. Undo it to restore the sweep baseline.
        disarm_all(bed);
        ASSERT_TRUE(bed.controller.revoke(linked.value().id).ok());
        EXPECT_TRUE(capture(bed) == before)
            << "revoke of the successful control deploy diverged";
        break;
      }
      EXPECT_EQ(linked.error().code, ErrorCode::ChannelError);
      EXPECT_TRUE(capture(bed) == before)
          << "chain state diverged after a fault at hop " << hop
          << " write index " << fault;
      const auto* rollback =
          last_event(bed, obs::MonitorEvent::Kind::ChainTxnRollback);
      ASSERT_NE(rollback, nullptr);
      EXPECT_EQ(rollback->hops, length);
      EXPECT_EQ(rollback->faulted_hop, hop);
    }
    // The sweep faulted from inside every update batch of this hop, not
    // just the first write.
    EXPECT_GT(fault, 3);
  }
}

TEST_P(ChainFaultMatrix, RelinkFaultSweepKeepsOldVersionChainWide) {
  const int length = this->length();
  ChainBed bed(length);
  bed.controller.set_async_writes(async());
  auto cache = bed.controller.link(cache_source());
  ASSERT_TRUE(cache.ok()) << cache.error().str();
  ProgramId old_id = cache.value().id;
  for (MemAddr a = 0; a < 16; ++a) {
    ASSERT_TRUE(bed.controller.write_memory(old_id, "mem1", a, 7000 + a).ok());
  }
  ChainSnapshot before = capture(bed);
  auto before_mem = bed.controller.dump_memory(old_id, "mem1");
  ASSERT_TRUE(before_mem.ok());

  // Relink faults hit two windows on every hop: committing the new version
  // (chain transaction) and retiring the old one (chain-wide removal with
  // re-install unwind). Both must leave the old version running everywhere
  // with its memory intact.
  for (int hop = 0; hop < length; ++hop) {
    SCOPED_TRACE("faulted hop " + std::to_string(hop));
    int fault = 0;
    for (;; ++fault) {
      ASSERT_LT(fault, 10'000);
      bed.controller.updates(hop).set_fault_after_writes(fault);
      auto relinked = bed.controller.relink(old_id, cache_source());
      if (relinked.ok()) {
        // Baseline moves to the new version for the next hop's sweep.
        disarm_all(bed);
        old_id = relinked.value().id;
        const auto carried = bed.controller.dump_memory(old_id, "mem1");
        ASSERT_TRUE(carried.ok());
        EXPECT_EQ(carried.value(), before_mem.value())
            << "relink did not carry memory over chain-wide";
        before = capture(bed);
        before_mem = std::move(carried);
        break;
      }
      EXPECT_EQ(relinked.error().code, ErrorCode::ChannelError);
      for (int h = 0; h < length; ++h) {
        ASSERT_NE(bed.controller.program_at(h, old_id), nullptr)
            << "old version missing on hop " << h;
      }
      EXPECT_EQ(bed.controller.program_count(), 1u);
      EXPECT_TRUE(capture(bed) == before)
          << "chain state diverged after a relink fault at hop " << hop
          << " write index " << fault;
      const auto mem = bed.controller.dump_memory(old_id, "mem1");
      ASSERT_TRUE(mem.ok());
      EXPECT_EQ(mem.value(), before_mem.value());
    }
    EXPECT_GT(fault, 3);
  }
}

TEST_P(ChainFaultMatrix, RevokeFaultSweepRestoresProgramChainWide) {
  const int length = this->length();
  for (int hop = 0; hop < length; ++hop) {
    SCOPED_TRACE("faulted hop " + std::to_string(hop));
    ChainBed bed(length);
    bed.controller.set_async_writes(async());
    auto cache = bed.controller.link(cache_source());
    ASSERT_TRUE(cache.ok()) << cache.error().str();
    const ProgramId id = cache.value().id;
    for (MemAddr a = 0; a < 8; ++a) {
      ASSERT_TRUE(bed.controller.write_memory(id, "mem1", a, 42 + a).ok());
    }
    const ChainSnapshot before = capture(bed);

    int fault = 0;
    for (;; ++fault) {
      ASSERT_LT(fault, 10'000);
      bed.controller.updates(hop).set_fault_after_writes(fault);
      const Status s = bed.controller.revoke(id);
      if (s.ok()) break;
      EXPECT_EQ(s.error().code, ErrorCode::ChannelError);
      // The program survived its failed chain removal on every hop...
      for (int h = 0; h < length; ++h) {
        ASSERT_NE(bed.controller.program_at(h, id), nullptr)
            << "program missing on hop " << h;
      }
      EXPECT_TRUE(capture(bed) == before)
          << "chain state diverged after a revoke fault at hop " << hop
          << " write index " << fault;
      ASSERT_FALSE(bed.controller.events().empty());
      EXPECT_EQ(bed.controller.events().back().kind,
                ctrl::ControlEvent::Kind::RevokeFailed);
      // ...and still claims its traffic end to end (fresh handles on the
      // unwound hops, same behaviour).
      const std::uint64_t claimed = bed.controller.program_packets(id);
      EXPECT_EQ(bed.chain.inject(cache_read(0x8888)).fate,
                rmt::PacketFate::Returned);
      EXPECT_EQ(bed.controller.program_packets(id), claimed + 1);
    }
    EXPECT_GT(fault, 2);
    disarm_all(bed);
    EXPECT_EQ(bed.controller.program_count(), 0u);
    // Post-revoke: every hop's occupancy is back to empty.
    for (int h = 0; h < length; ++h) {
      EXPECT_EQ(bed.controller.resources(h).total_memory_utilization(), 0.0);
      EXPECT_EQ(bed.controller.resources(h).total_entry_utilization(), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, ChainFaultMatrix,
    ::testing::Combine(::testing::Values(2, 3, 4), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
      return "chain" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_async" : "_serial");
    });

TEST(ChainTxn, PipelinedCommitOverlapsHopChannels) {
  // Same deploy, same chain, two channel modes. The pipelined commit must
  // (a) leave every hop byte-identical to the serial commit and (b) cut the
  // chain's update delay from sum-of-hops to roughly max-of-hops.
  ChainBed serial(4);
  ChainBed pipelined(4);
  serial.controller.set_fixed_alloc_charge_ms(5.0);
  pipelined.controller.set_fixed_alloc_charge_ms(5.0);
  pipelined.controller.set_async_writes(true);

  auto serial_link = serial.controller.link(cache_source());
  ASSERT_TRUE(serial_link.ok()) << serial_link.error().str();
  auto pipelined_link = pipelined.controller.link(cache_source());
  ASSERT_TRUE(pipelined_link.ok()) << pipelined_link.error().str();

  // Byte-identical outcome: pipelining reorders channel traffic across
  // hops, never the per-hop write sequence (§4.3 ordering is per-hop).
  EXPECT_TRUE(capture(serial) == capture(pipelined))
      << "pipelined commit produced different chain state than serial";

  const double serial_update = serial_link.value().stats.update_ms;
  const double pipelined_update = pipelined_link.value().stats.update_ms;
  ASSERT_GT(serial_update, 0.0);
  ASSERT_GT(pipelined_update, 0.0);
  // 4 hops drain concurrently: the pipelined update delay collapses to one
  // hop's channel time (plus submit slivers), far below half the serial sum.
  EXPECT_LT(pipelined_update, serial_update / 2.0)
      << "pipelined=" << pipelined_update << " serial=" << serial_update;
  EXPECT_LT(pipelined_link.value().stats.deploy_ms(),
            serial_link.value().stats.deploy_ms());

  // The pipelined revoke overlaps the hop channels the same way.
  const double t0 = pipelined.clock.now_ms();
  ASSERT_TRUE(pipelined.controller.revoke(pipelined_link.value().id).ok());
  const double pipelined_revoke = pipelined.clock.now_ms() - t0;
  const double s0 = serial.clock.now_ms();
  ASSERT_TRUE(serial.controller.revoke(serial_link.value().id).ok());
  const double serial_revoke = serial.clock.now_ms() - s0;
  EXPECT_LT(pipelined_revoke, serial_revoke / 2.0)
      << "pipelined=" << pipelined_revoke << " serial=" << serial_revoke;
  EXPECT_TRUE(capture(serial) == capture(pipelined));
}

TEST(ChainTxn, PipelinedUpdateDelayIsFlatInChainLength) {
  // max-of-hops, not sum-of-hops: the pipelined update delay of a mirror
  // deploy must not grow with the number of hops.
  std::vector<double> update_ms;
  for (const int length : {2, 3, 4}) {
    ChainBed bed(length);
    bed.controller.set_fixed_alloc_charge_ms(5.0);
    bed.controller.set_async_writes(true);
    auto linked = bed.controller.link(cache_source());
    ASSERT_TRUE(linked.ok()) << linked.error().str();
    update_ms.push_back(linked.value().stats.update_ms);
  }
  EXPECT_DOUBLE_EQ(update_ms[0], update_ms[1]);
  EXPECT_DOUBLE_EQ(update_ms[1], update_ms[2]);
}

TEST(ChainTxn, StarvedHopAbortsTheWholeDeployBeforeAnyWrite) {
  ChainBed bed(3);
  ASSERT_TRUE(bed.controller.link(cache_source()).ok());

  // Exhaust hop 1's table entries: the per-hop solve sees the starved
  // snapshot and the deploy aborts with AllocFailed before a single
  // dataplane write lands on ANY hop.
  auto& starved = bed.controller.resources(1);
  const auto free_entries = starved.snapshot().free_entries;
  for (std::size_t i = 0; i < free_entries.size(); ++i) {
    ASSERT_TRUE(
        starved.reserve_entries(static_cast<int>(i) + 1, free_entries[i]).ok());
  }
  const ChainSnapshot before = capture(bed);
  std::vector<std::uint64_t> writes_before;
  for (int h = 0; h < 3; ++h) {
    writes_before.push_back(bed.controller.updates(h).writes_applied());
  }

  auto linked = bed.controller.link(hh_source());
  ASSERT_FALSE(linked.ok());
  EXPECT_EQ(linked.error().code, ErrorCode::AllocFailed);
  EXPECT_TRUE(capture(bed) == before);
  for (int h = 0; h < 3; ++h) {
    EXPECT_EQ(bed.controller.updates(h).writes_applied(), writes_before[h])
        << "hop " << h << " saw a write during an aborted deploy";
  }

  // Releasing the starved hop unblocks the very same deploy.
  for (std::size_t i = 0; i < free_entries.size(); ++i) {
    starved.release_entries(static_cast<int>(i) + 1, free_entries[i]);
  }
  EXPECT_TRUE(bed.controller.link(hh_source()).ok());
}

TEST(ChainTxn, ReserveFailureInPhaseOneRollsBackEveryHop) {
  // Drive ChainTransaction directly with allocations solved BEFORE hop 1 is
  // starved: phase 1 then reserves hops 0 fine, fails at hop 1's entry
  // reservation, and must return hop 0's reservations untouched — the
  // commit path is never reached.
  ChainBed bed(3);
  auto compiled = rp::compile_source(hh_source(), nullptr);
  ASSERT_TRUE(compiled.ok());
  const rp::TranslatedProgram& ir = compiled.value().front();

  std::vector<rp::AllocationResult> allocs;
  std::vector<ctrl::ChainHop> contexts;
  for (int h = 0; h < 3; ++h) {
    auto alloc = rp::solve_allocation(ir, bed.chain.spec_at(h),
                                      bed.controller.resources(h).snapshot(),
                                      rp::Objective{});
    ASSERT_TRUE(alloc.ok());
    allocs.push_back(std::move(alloc).take());
    contexts.push_back(ctrl::ChainHop{&bed.chain.switch_at(h),
                                      &bed.controller.resources(h),
                                      &bed.controller.updates(h)});
  }

  auto& starved = bed.controller.resources(1);
  const auto free_entries = starved.snapshot().free_entries;
  for (std::size_t i = 0; i < free_entries.size(); ++i) {
    ASSERT_TRUE(
        starved.reserve_entries(static_cast<int>(i) + 1, free_entries[i]).ok());
  }
  const ChainSnapshot before = capture(bed);

  ctrl::ChainTransaction txn(contexts, ir, std::move(allocs), 42, 1, 0, nullptr);
  const Status staged = txn.stage_all();
  ASSERT_FALSE(staged.ok());
  EXPECT_EQ(staged.error().code, ErrorCode::AllocFailed);
  EXPECT_EQ(txn.faulted_hop(), 1);
  EXPECT_EQ(txn.phase(), ctrl::ChainTransaction::Phase::RolledBack);
  EXPECT_TRUE(capture(bed) == before)
      << "an aborted phase 1 leaked reservations on some hop";
  for (int h = 0; h < 3; ++h) {
    EXPECT_EQ(bed.controller.updates(h).writes_applied(), 0u)
        << "hop " << h << " saw a write during an aborted phase 1";
  }
}

TEST(ChainTxn, DroppingAStagedTransactionRollsBackEveryHop) {
  // A transaction staged on every hop but never committed (e.g. the caller
  // errors out between the phases) must undo itself on destruction: no
  // reservations survive, no write ever reaches a dataplane.
  ChainBed bed(3);
  auto compiled = rp::compile_source(hh_source(), nullptr);
  ASSERT_TRUE(compiled.ok());
  const rp::TranslatedProgram& ir = compiled.value().front();
  const ChainSnapshot before = capture(bed);

  {
    std::vector<rp::AllocationResult> allocs;
    std::vector<ctrl::ChainHop> contexts;
    for (int h = 0; h < 3; ++h) {
      auto alloc = rp::solve_allocation(ir, bed.chain.spec_at(h),
                                        bed.controller.resources(h).snapshot(),
                                        rp::Objective{});
      ASSERT_TRUE(alloc.ok());
      allocs.push_back(std::move(alloc).take());
      contexts.push_back(ctrl::ChainHop{&bed.chain.switch_at(h),
                                        &bed.controller.resources(h),
                                        &bed.controller.updates(h)});
    }
    ctrl::ChainTransaction txn(contexts, ir, std::move(allocs), 42, 1, 0,
                               nullptr);
    ASSERT_TRUE(txn.stage_all().ok());
    ASSERT_EQ(txn.phase(), ctrl::ChainTransaction::Phase::Staged);
    EXPECT_GT(txn.total_staged_ops(), 0u);
    // Reservations ARE held while staged: hop books differ from baseline.
    EXPECT_FALSE(capture(bed) == before);
  }  // destructor rolls back

  EXPECT_TRUE(capture(bed) == before)
      << "a dropped staged transaction leaked reservations on some hop";
  for (int h = 0; h < 3; ++h) {
    EXPECT_EQ(bed.controller.updates(h).writes_applied(), 0u)
        << "hop " << h << " saw a write from a never-committed transaction";
  }
}

TEST(ChainTxn, FaultFreeDeployCommitsOnEveryHop) {
  ChainBed bed(3);
  auto linked = bed.controller.link(cache_source());
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  const ProgramId id = linked.value().id;

  // Mirror mode: the same program, the same id, the same placements on
  // every hop.
  const auto* hop0 = bed.controller.program_at(0, id);
  ASSERT_NE(hop0, nullptr);
  for (int h = 1; h < 3; ++h) {
    const auto* prog = bed.controller.program_at(h, id);
    ASSERT_NE(prog, nullptr) << "program missing on hop " << h;
    EXPECT_EQ(prog->id, id);
    EXPECT_EQ(prog->name, hop0->name);
    EXPECT_EQ(prog->placements, hop0->placements)
        << "hop " << h << " placed memory differently";
  }
  EXPECT_EQ(bed.controller.running_programs(), std::vector<ProgramId>{id});

  const auto* commit = last_event(bed, obs::MonitorEvent::Kind::ChainTxnCommit);
  ASSERT_NE(commit, nullptr);
  EXPECT_EQ(commit->hops, 3);
  EXPECT_EQ(commit->program, id);

  // Traffic flows through the chain and is attributed at the entry hop.
  EXPECT_EQ(bed.chain.inject(cache_read(0x8888)).fate,
            rmt::PacketFate::Returned);
  EXPECT_EQ(bed.controller.program_packets(id), 1u);
}

TEST(ChainTxn, MemoryAccessRoutesToTheOwningHop) {
  ChainBed bed(3);
  auto linked = bed.controller.link(cache_source());
  ASSERT_TRUE(linked.ok());
  const ProgramId id = linked.value().id;

  auto hop = bed.controller.owning_hop(id, "mem1");
  ASSERT_TRUE(hop.ok()) << hop.error().str();
  ASSERT_GE(hop.value(), 0);
  ASSERT_LT(hop.value(), 3);

  ASSERT_TRUE(bed.controller.write_memory(id, "mem1", 3, 0xabcd).ok());
  auto read = bed.controller.read_memory(id, "mem1", 3);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), 0xabcdu);

  auto dump = bed.controller.dump_memory(id, "mem1");
  ASSERT_TRUE(dump.ok());
  EXPECT_EQ(dump.value()[3], 0xabcdu);

  // The write landed on the owning hop's switch — and only there.
  const auto* prog = bed.controller.program_at(hop.value(), id);
  ASSERT_NE(prog, nullptr);
  const auto placement = prog->placements.at("mem1");
  EXPECT_EQ(bed.chain.switch_at(hop.value())
                .rpb(placement.rpb)
                .memory()
                .read(placement.block.base + 3),
            0xabcdu);
  for (int h = 0; h < 3; ++h) {
    if (h == hop.value()) continue;
    EXPECT_EQ(bed.chain.switch_at(h).rpb(placement.rpb).memory().read(
                  placement.block.base + 3),
              0u);
  }

  auto missing = bed.controller.read_memory(id, "nope", 0);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::NotFound);
}

TEST(ChainTxn, FailedChainDeploysDoNotBurnProgramIds) {
  ChainBed bed(2);
  // A faulted first deploy (fault on the far hop) rolls back chain-wide;
  // the id it briefly held is reissued instead of leaking.
  bed.controller.updates(1).set_fault_after_writes(0);
  ASSERT_FALSE(bed.controller.link(cache_source()).ok());
  disarm_all(bed);
  auto cache = bed.controller.link(cache_source());
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ(cache.value().id, 1u);

  bed.controller.updates(0).set_fault_after_writes(1);
  ASSERT_FALSE(bed.controller.link(hh_source()).ok());
  disarm_all(bed);
  auto hh = bed.controller.link(hh_source());
  ASSERT_TRUE(hh.ok());
  EXPECT_EQ(hh.value().id, 2u);

  // Only a successful chain revoke feeds the recycle pool.
  ASSERT_TRUE(bed.controller.revoke(cache.value().id).ok());
  auto cache2 = bed.controller.link(cache_source());
  ASSERT_TRUE(cache2.ok());
  EXPECT_EQ(cache2.value().id, 1u);

  int link_failed = 0;
  for (const auto& event : bed.controller.events()) {
    if (event.kind != ctrl::ControlEvent::Kind::LinkFailed) continue;
    ++link_failed;
    EXPECT_NE(event.detail.find("[ChannelError]"), std::string::npos);
    EXPECT_NE(event.id, 0u);
  }
  EXPECT_EQ(link_failed, 2);
}

TEST(ChainTxn, MonitorEventsCarryHopDetailAndExport) {
  ChainBed bed(2);
  auto linked = bed.controller.link(cache_source());
  ASSERT_TRUE(linked.ok());
  bed.controller.updates(1).set_fault_after_writes(0);
  ASSERT_FALSE(bed.controller.link(hh_source()).ok());
  disarm_all(bed);

  const auto* rollback =
      last_event(bed, obs::MonitorEvent::Kind::ChainTxnRollback);
  ASSERT_NE(rollback, nullptr);
  EXPECT_EQ(rollback->hops, 2);
  EXPECT_EQ(rollback->faulted_hop, 1);
  EXPECT_NE(rollback->detail.find("[ChannelError]"), std::string::npos);

  std::ostringstream out;
  obs::export_alerts_jsonl(bed.telemetry.monitor, out);
  const std::string jsonl = out.str();
  EXPECT_NE(jsonl.find("\"kind\":\"chain_txn_commit\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"chain_txn_rollback\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"hops\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"faulted_hop\":1"), std::string::npos);
}

TEST(ChainTxn, ChainErrorsCarryCodes) {
  ChainBed bed(2);
  auto parse = bed.controller.link("program broken { @@@ }");
  ASSERT_FALSE(parse.ok());
  EXPECT_EQ(parse.error().code, ErrorCode::ParseError);

  ASSERT_TRUE(bed.controller.link(cache_source()).ok());
  auto dup = bed.controller.link(cache_source());
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, ErrorCode::Conflict);

  auto missing = bed.controller.revoke(99);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::NotFound);
  EXPECT_FALSE(bed.controller.revoke_by_name("nope").ok());

  apps::ProgramConfig huge;
  huge.instance_name = "huge";
  huge.mem_buckets = chain_spec(2).memory_per_rpb * 2;
  auto alloc = bed.controller.link(apps::make_program_source("cache", huge));
  ASSERT_FALSE(alloc.ok());
  EXPECT_EQ(alloc.error().code, ErrorCode::AllocFailed);
}

// --- dp::SwitchChain diagnostics (uniform specs, chain compatibility) ----

TEST(SwitchChainDiagnostics, UniformSpecsNamesHopAndField) {
  const rmt::ParserConfig parser{{7777}};
  std::vector<dp::DataplaneSpec> specs(3, chain_spec(3));
  specs[2].memory_per_rpb = 8192;
  dp::SwitchChain chain(specs, parser);

  const Status s = chain.uniform_specs();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::InvalidArgument);
  EXPECT_NE(s.error().str().find("hop 2"), std::string::npos) << s.error().str();
  EXPECT_NE(s.error().str().find("memory_per_rpb"), std::string::npos)
      << s.error().str();

  // A uniform chain reports ok.
  dp::SwitchChain uniform(3, chain_spec(3), parser);
  EXPECT_TRUE(uniform.uniform_specs().ok());
}

TEST(SwitchChainDiagnostics, NonUniformChainRejectedByController) {
  const rmt::ParserConfig parser{{7777}};
  std::vector<dp::DataplaneSpec> specs(2, chain_spec(2));
  specs[1].entries_per_rpb = 128;
  dp::SwitchChain chain(specs, parser);
  SimClock clock;
  ctrl::ChainController controller(chain, clock);

  auto linked = controller.link(cache_source());
  ASSERT_FALSE(linked.ok());
  EXPECT_EQ(linked.error().code, ErrorCode::InvalidArgument);
  EXPECT_NE(linked.error().str().find("entries_per_rpb"), std::string::npos);
  ASSERT_FALSE(controller.events().empty());
  EXPECT_EQ(controller.events().back().kind,
            ctrl::ControlEvent::Kind::LinkFailed);
}

TEST(SwitchChainDiagnostics, ChainCompatibilityNamesVmemAndRounds) {
  // Synthetic allocation: "acc" is touched at depths 1 and 2, whose logical
  // RPBs land in rounds 0 and 1 — i.e. on different chain hops.
  const int total_rpbs = 4;
  std::map<std::string, std::vector<int>> vmem_depths{{"acc", {1, 2}}};
  const std::vector<int> split{1, total_rpbs + 1};

  EXPECT_FALSE(dp::SwitchChain::chain_compatible(vmem_depths, split, total_rpbs));
  const Status s =
      dp::SwitchChain::chain_compatibility(vmem_depths, split, total_rpbs);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::InvalidArgument);
  EXPECT_NE(s.error().str().find("'acc'"), std::string::npos) << s.error().str();
  EXPECT_NE(s.error().str().find("rounds 0, 1"), std::string::npos)
      << s.error().str();

  // Same rounds -> compatible, and the diagnostic agrees with the predicate.
  const std::vector<int> same{1, 2};
  EXPECT_TRUE(dp::SwitchChain::chain_compatible(vmem_depths, same, total_rpbs));
  EXPECT_TRUE(
      dp::SwitchChain::chain_compatibility(vmem_depths, same, total_rpbs).ok());
}

}  // namespace
}  // namespace p4runpro
