// RMT substrate unit tests: parser bitmap, SALU memory semantics, ternary
// table priority/index behaviour, packet field access, pipeline counters.
#include <gtest/gtest.h>

#include "obs/telemetry.h"
#include "rmt/memory.h"
#include "rmt/packet.h"
#include "rmt/parser.h"
#include "rmt/pipeline.h"
#include "rmt/tables.h"

namespace p4runpro::rmt {
namespace {

// --- parser ---------------------------------------------------------------

TEST(Parser, BitmapMatchesPaperExamples) {
  Parser parser(ParserConfig{{7777}});
  // L2-only packet -> 0b1000 (paper §4.1.1).
  Packet l2;
  EXPECT_EQ(parser.parse(l2).parse_bitmap, 0b1000);

  // UDP packet -> 0b1101.
  Packet udp;
  udp.ipv4 = Ipv4Header{.proto = 17};
  udp.udp = UdpHeader{100, 200};
  EXPECT_EQ(parser.parse(udp).parse_bitmap, 0b1101);

  // TCP packet -> 0b1110.
  Packet tcp;
  tcp.ipv4 = Ipv4Header{.proto = 6};
  tcp.tcp = TcpHeader{1, 2, 0};
  EXPECT_EQ(parser.parse(tcp).parse_bitmap, 0b1110);

  // Application header only on configured ports.
  Packet app;
  app.ipv4 = Ipv4Header{.proto = 17};
  app.udp = UdpHeader{1, 7777};
  app.app = AppHeader{};
  EXPECT_EQ(parser.parse(app).parse_bitmap, 0b11101);
  app.udp->dst_port = 7778;
  EXPECT_EQ(parser.parse(app).parse_bitmap, 0b1101);
}

// --- stage memory / SALU ---------------------------------------------------

TEST(StageMemory, SaluResultRegisterSemantics) {
  StageMemory mem(16);
  mem.write(3, 10);

  // MEMADD returns the NEW value.
  auto add = mem.execute(SaluOp::Add, 3, 5);
  EXPECT_TRUE(add.sar_set);
  EXPECT_EQ(add.sar_out, 15u);
  EXPECT_EQ(mem.read(3), 15u);

  // MEMOR returns the OLD value (Bloom-filter existence check).
  auto or1 = mem.execute(SaluOp::Or, 4, 1);
  EXPECT_EQ(or1.sar_out, 0u);
  EXPECT_EQ(mem.read(4), 1u);
  auto or2 = mem.execute(SaluOp::Or, 4, 1);
  EXPECT_EQ(or2.sar_out, 1u);

  // MEMWRITE leaves sar unchanged.
  auto wr = mem.execute(SaluOp::Write, 5, 42);
  EXPECT_FALSE(wr.sar_set);
  EXPECT_EQ(mem.read(5), 42u);

  // MEMMAX conditionally writes.
  auto mx1 = mem.execute(SaluOp::Max, 6, 7);
  EXPECT_FALSE(mx1.sar_set);
  EXPECT_EQ(mem.read(6), 7u);
  (void)mem.execute(SaluOp::Max, 6, 3);
  EXPECT_EQ(mem.read(6), 7u);

  // MEMSUB wraps like the hardware ALU.
  mem.write(7, 2);
  auto sub = mem.execute(SaluOp::Sub, 7, 5);
  EXPECT_EQ(sub.sar_out, static_cast<Word>(2 - 5));
}

TEST(StageMemory, OutOfRangeAccessIsInert) {
  StageMemory mem(8);
  auto r = mem.execute(SaluOp::Read, 100, 0);
  EXPECT_EQ(r.sar_out, 0u);
  auto w = mem.execute(SaluOp::Write, 100, 5);
  EXPECT_FALSE(w.sar_set);
  EXPECT_EQ(mem.read(100), 0u);
}

TEST(StageMemory, ResetRange) {
  StageMemory mem(64);
  for (MemAddr a = 0; a < 64; ++a) mem.write(a, a + 1);
  mem.reset_range(8, 16);
  EXPECT_EQ(mem.read(7), 8u);
  for (MemAddr a = 8; a < 24; ++a) EXPECT_EQ(mem.read(a), 0u);
  EXPECT_EQ(mem.read(24), 25u);
  mem.reset_range(60, 100);  // clipped at the end
  EXPECT_EQ(mem.read(63), 0u);
}

// --- ternary table ----------------------------------------------------------

TEST(TernaryTable, PriorityAndTernaryMatching) {
  TernaryTable<int> table(2, 16);
  ASSERT_TRUE(table.insert({TernaryKey::exact(1), TernaryKey{0x10, 0xf0}}, 1, 100).ok());
  ASSERT_TRUE(table.insert({TernaryKey::exact(1), TernaryKey::any()}, 0, 200).ok());

  const Word hit[] = {1, 0x15};
  ASSERT_NE(table.lookup(hit), nullptr);
  EXPECT_EQ(*table.lookup(hit), 100);  // higher priority wins

  const Word fallback[] = {1, 0x25};
  ASSERT_NE(table.lookup(fallback), nullptr);
  EXPECT_EQ(*table.lookup(fallback), 200);

  const Word miss[] = {2, 0x15};
  EXPECT_EQ(table.lookup(miss), nullptr);
}

TEST(TernaryTable, TieBreaksToEarlierInsertion) {
  TernaryTable<int> table(1, 4);
  ASSERT_TRUE(table.insert({TernaryKey::any()}, 0, 1).ok());
  ASSERT_TRUE(table.insert({TernaryKey::any()}, 0, 2).ok());
  const Word f[] = {9};
  EXPECT_EQ(*table.lookup(f), 1);
}

TEST(TernaryTable, IndexedAndWildcardFirstKeyCoexist) {
  TernaryTable<int> table(1, 8);
  ASSERT_TRUE(table.insert({TernaryKey::exact(7)}, 1, 10).ok());
  ASSERT_TRUE(table.insert({TernaryKey{0, 0}}, 0, 20).ok());
  const Word seven[] = {7};
  const Word eight[] = {8};
  EXPECT_EQ(*table.lookup(seven), 10);
  EXPECT_EQ(*table.lookup(eight), 20);
  // Wildcard with higher priority beats the indexed entry.
  ASSERT_TRUE(table.insert({TernaryKey{0, 0}}, 5, 30).ok());
  EXPECT_EQ(*table.lookup(seven), 30);
}

TEST(TernaryTable, CapacityEnforcedAndEraseWorks) {
  TernaryTable<int> table(1, 2);
  auto a = table.insert({TernaryKey::exact(1)}, 0, 1);
  auto b = table.insert({TernaryKey::exact(2)}, 0, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(table.insert({TernaryKey::exact(3)}, 0, 3).ok());
  EXPECT_TRUE(table.erase(a.value()));
  EXPECT_FALSE(table.erase(a.value()));  // double erase
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.insert({TernaryKey::exact(3)}, 0, 3).ok());
}

TEST(TernaryTable, KeyWidthValidated) {
  TernaryTable<int> table(2, 4);
  EXPECT_FALSE(table.insert({TernaryKey::exact(1)}, 0, 1).ok());
}

// --- packet fields -----------------------------------------------------------

TEST(PacketFields, RoundTrip) {
  Packet pkt;
  pkt.ipv4 = Ipv4Header{};
  pkt.udp = UdpHeader{};
  pkt.app = AppHeader{};
  write_field(pkt, FieldId::Ipv4Dst, 0xc0a80101);
  EXPECT_EQ(read_field(pkt, FieldId::Ipv4Dst, 0), 0xc0a80101u);
  write_field(pkt, FieldId::AppValue, 99);
  EXPECT_EQ(read_field(pkt, FieldId::AppValue, 0), 99u);
  // ECN clamps to 2 bits.
  write_field(pkt, FieldId::Ipv4Ecn, 0xff);
  EXPECT_EQ(read_field(pkt, FieldId::Ipv4Ecn, 0), 3u);
  // Absent header reads 0, writes dropped.
  Packet bare;
  write_field(bare, FieldId::TcpFlags, 1);
  EXPECT_EQ(read_field(bare, FieldId::TcpFlags, 0), 0u);
  // Field names resolve bidirectionally.
  EXPECT_EQ(field_from_name("hdr.ipv4.dst"), FieldId::Ipv4Dst);
  EXPECT_EQ(field_from_name("hdr.nc.val"), FieldId::AppValue);
  EXPECT_EQ(field_from_name("no.such.field"), std::nullopt);
  EXPECT_EQ(field_name(FieldId::UdpDstPort), "hdr.udp.dst_port");
}

TEST(PacketFields, MacSplitFields) {
  Packet pkt;
  pkt.eth.dst_mac = 0xaabbccddeeffull;
  EXPECT_EQ(read_field(pkt, FieldId::EthDstHi, 0), 0xaabbccddu);
  EXPECT_EQ(read_field(pkt, FieldId::EthDstLo, 0), 0xeeffu);
  write_field(pkt, FieldId::EthDstLo, 0x1122);
  EXPECT_EQ(pkt.eth.dst_mac, 0xaabbccdd1122ull);
}

TEST(PacketFields, FiveTupleBytesCanonical) {
  Packet pkt;
  pkt.ipv4 = Ipv4Header{.src = 0x01020304, .dst = 0x05060708, .proto = 17};
  pkt.udp = UdpHeader{0x0a0b, 0x0c0d};
  const auto bytes = pkt.five_tuple().bytes();
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[3], 0x04);
  EXPECT_EQ(bytes[8], 0x0a);
  EXPECT_EQ(bytes[12], 17);
}

// --- pipeline ---------------------------------------------------------------

TEST(Pipeline, CountersAndDefaultForwarding) {
  Pipeline pipeline(ParserConfig{}, 2);
  Packet pkt;
  pkt.ipv4 = Ipv4Header{.proto = 17};
  pkt.udp = UdpHeader{1, 2};
  pkt.payload_len = 100;

  const auto result = pipeline.inject(pkt);
  EXPECT_EQ(result.fate, PacketFate::Forwarded);
  EXPECT_EQ(result.egress_port, 0);
  EXPECT_EQ(pipeline.packets_in(), 1u);
  EXPECT_EQ(pipeline.port_counters(0).packets, 1u);
  EXPECT_EQ(pipeline.port_counters(0).bytes, result.packet.wire_len());

  pipeline.clear_counters();
  EXPECT_EQ(pipeline.packets_in(), 0u);
  EXPECT_EQ(pipeline.port_counters(0).packets, 0u);
}

/// A stage that always requests recirculation: exercises the recirc limit.
class AlwaysRecirc final : public PipelineStage {
 public:
  void process(Phv& phv) override {
    phv.program_id = 1;
    phv.recirculate = true;
  }
};

TEST(Pipeline, RecirculationLimitDropsRunaways) {
  Pipeline pipeline(ParserConfig{}, 3);
  pipeline.add_ingress_stage(std::make_shared<AlwaysRecirc>());
  const auto result = pipeline.inject(Packet{});
  EXPECT_EQ(result.fate, PacketFate::RecircLimit);
  EXPECT_EQ(result.recirc_passes, 4);  // 3 allowed + the one that hit the cap
  EXPECT_EQ(pipeline.packets_dropped(), 1u);
}

TEST(Pipeline, TelemetryProbesMatchInjectedPackets) {
  obs::Telemetry telemetry;
  {
    Pipeline pipeline(ParserConfig{}, 2);
    pipeline.attach_telemetry(&telemetry);

    Packet pkt;
    pkt.ipv4 = Ipv4Header{.proto = 17};
    pkt.udp = UdpHeader{1, 2};
    const int kInjected = 7;
    for (int i = 0; i < kInjected; ++i) (void)pipeline.inject(pkt);

    const auto& m = telemetry.metrics;
    EXPECT_EQ(m.gauge_value("rmt.pipeline.packets_in"),
              static_cast<double>(pipeline.packets_in()));
    EXPECT_EQ(m.gauge_value("rmt.pipeline.packets_in"), kInjected);
    EXPECT_EQ(m.gauge_value("rmt.pipeline.packets_dropped"),
              static_cast<double>(pipeline.packets_dropped()));
    EXPECT_EQ(m.gauge_value("rmt.pipeline.recirc_passes"),
              static_cast<double>(pipeline.total_recirc_passes()));
  }
  // The pipeline's destructor froze the final probe samples into owned
  // gauges, so a post-mortem export still reports them.
  EXPECT_EQ(telemetry.metrics.gauge_value("rmt.pipeline.packets_in"), 7.0);
}

}  // namespace
}  // namespace p4runpro::rmt
