// Baseline-model tests: ActiveRMT allocator behaviour (worst-fit spread,
// elastic shrinking, exhaustion, deallocation) and the FlyMon task model.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/activermt.h"
#include "baselines/flymon.h"
#include "common/clock.h"

namespace p4runpro::baselines {
namespace {

TEST(ActiveRmt, AllocatesAndTracksUtilization) {
  ActiveRmtAllocator allocator;
  EXPECT_DOUBLE_EQ(allocator.memory_utilization(), 0.0);
  auto a = allocator.allocate({10, 1024, false});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(allocator.program_count(), 1u);
  std::uint32_t granted = 0;
  for (const auto& [stage, share] : a.value().shares) granted += share;
  EXPECT_GE(granted, 1024u);
  EXPECT_GT(allocator.memory_utilization(), 0.0);
}

TEST(ActiveRmt, WorstFitSpreadsAcrossStages) {
  ActiveRmtAllocator allocator;
  // Two large programs should not land on the same stage while emptier
  // stages exist.
  auto a = allocator.allocate({10, 65536, false});
  auto b = allocator.allocate({10, 65536, false});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().shares.size(), 1u);
  ASSERT_EQ(b.value().shares.size(), 1u);
  EXPECT_NE(a.value().shares[0].first, b.value().shares[0].first);
}

TEST(ActiveRmt, ElasticProgramsShrinkForNewcomers) {
  ActiveRmtConfig config;
  config.stages = 2;
  config.mem_per_stage = 4096;
  config.granularity = 256;
  config.min_elastic = 256;
  ActiveRmtAllocator allocator(config);
  // One elastic program takes everything.
  ASSERT_TRUE(allocator.allocate({10, 8192, true}).ok());
  EXPECT_DOUBLE_EQ(allocator.memory_utilization(), 1.0);
  // A newcomer still fits: the elastic program is remapped down to its
  // fair share (half of 8,192 = 4,096 buckets), leaving room for the
  // 1,024-bucket newcomer.
  EXPECT_TRUE(allocator.allocate({10, 1024, false}).ok());
  EXPECT_DOUBLE_EQ(allocator.memory_utilization(), (4096.0 + 1024.0) / 8192.0);
}

TEST(ActiveRmt, InelasticExhaustionFails) {
  ActiveRmtConfig config;
  config.stages = 1;
  config.mem_per_stage = 1024;
  ActiveRmtAllocator allocator(config);
  ASSERT_TRUE(allocator.allocate({10, 1024, false}).ok());
  EXPECT_FALSE(allocator.allocate({10, 256, false}).ok());
}

TEST(ActiveRmt, DeallocateFreesMemory) {
  ActiveRmtAllocator allocator;
  auto a = allocator.allocate({10, 4096, false});
  ASSERT_TRUE(a.ok());
  const double used = allocator.memory_utilization();
  allocator.deallocate(a.value().id);
  EXPECT_LT(allocator.memory_utilization(), used);
  EXPECT_EQ(allocator.program_count(), 0u);
}

TEST(ActiveRmt, GoodputFractionShrinksWithInstructions) {
  // Capsule overhead: more instructions -> bigger active header -> less
  // goodput; smaller packets suffer more (§2.2 end-host overhead).
  const double small_few = ActiveRmtAllocator::goodput_fraction(128, 5);
  const double small_many = ActiveRmtAllocator::goodput_fraction(128, 30);
  const double big_many = ActiveRmtAllocator::goodput_fraction(1500, 30);
  EXPECT_GT(small_few, small_many);
  EXPECT_GT(big_many, small_many);
  EXPECT_LT(small_many, 1.0);
  EXPECT_GT(small_many, 0.0);
}

TEST(ActiveRmt, UpdateDelayInPaperRange) {
  // cache/lb/hh measured at 194.30 / 225.46 / 228.70 ms in Table 1.
  EXPECT_NEAR(ActiveRmtAllocator::update_delay_ms({12, 1024, true}), 194.3, 30.0);
  EXPECT_NEAR(ActiveRmtAllocator::update_delay_ms({30, 4096, false}), 228.7, 30.0);
}

TEST(Flymon, SupportsOnlyMeasurementTasks) {
  EXPECT_TRUE(Flymon::supports("cms"));
  EXPECT_TRUE(Flymon::supports("bf"));
  EXPECT_TRUE(Flymon::supports("sumax"));
  EXPECT_TRUE(Flymon::supports("hll"));
  // The generality gap: no forwarding, caching or compute tasks.
  EXPECT_FALSE(Flymon::supports("cache"));
  EXPECT_FALSE(Flymon::supports("lb"));
  EXPECT_FALSE(Flymon::supports("firewall"));
  EXPECT_FALSE(Flymon::supports("calculator"));
}

TEST(Flymon, UpdateDelaysMatchPaper) {
  EXPECT_DOUBLE_EQ(Flymon::update_delay_ms(FlymonAttribute::FrequencyCms), 27.46);
  EXPECT_DOUBLE_EQ(Flymon::update_delay_ms(FlymonAttribute::ExistenceBf), 32.09);
  EXPECT_DOUBLE_EQ(Flymon::update_delay_ms(FlymonAttribute::MaxSuMax), 22.88);
  EXPECT_DOUBLE_EQ(Flymon::update_delay_ms(FlymonAttribute::CardinalityHll), 17.37);
}

TEST(ActiveRmt, AllocationDelayGrowsWithPopulation) {
  // The Fig. 7a scaling property as a test: allocating the ~400th program
  // costs measurably more than the ~10th (global fair-remap evaluation).
  // Compare medians of wall-clock samples to be robust against scheduler
  // noise on the microsecond-scale early measurements.
  ActiveRmtAllocator allocator;
  auto time_one = [&allocator] {
    WallTimer timer;
    (void)allocator.allocate({10, 256, false});
    return timer.elapsed_ms();
  };
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  std::vector<double> early;
  for (int i = 0; i < 20; ++i) early.push_back(time_one());
  for (int i = 0; i < 2000; ++i) (void)allocator.allocate({10, 256, false});
  std::vector<double> late;
  for (int i = 0; i < 20; ++i) late.push_back(time_one());
  // With 2,000 installed programs the per-allocation population scan
  // dominates: demand a clear multiple, not a hair's breadth.
  EXPECT_GT(median(late), 1.5 * median(early));
}

}  // namespace
}  // namespace p4runpro::baselines
