// Cross-tier causal trace propagation: one trace id, minted at a
// controller entry point, must tie together the operation's tracer spans,
// its per-hop control-channel write batches, the monitor's txn events, and
// — through the data plane's table-generation stamp — the flight-recorder
// journeys of packets that executed against the tables it installed.
// ctrl::trace_report assembles that story; the acceptance scenario here
// reuses the chain fault-sweep setup (a faulted deploy that rolls back
// chain-wide, then a clean deploy plus post-commit packet injection) and
// asserts the whole causal chain resolves under single ids.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/chain_controller.h"
#include "control/controller.h"
#include "control/trace_report.h"
#include "dataplane/runpro_dataplane.h"
#include "dataplane/switch_chain.h"
#include "obs/telemetry.h"
#include "obs/trace_context.h"

namespace p4runpro {
namespace {

dp::DataplaneSpec chain_spec(int length) {
  dp::DataplaneSpec spec;
  spec.memory_per_rpb = 4096;
  spec.entries_per_rpb = 256;
  spec.max_recirculations = length - 1;
  return spec;
}

std::string cache_source() {
  apps::ProgramConfig config;
  config.instance_name = "cache";
  config.mem_buckets = 64;
  return apps::make_program_source("cache", config);
}

std::string hh_source() {
  apps::ProgramConfig config;
  config.instance_name = "hh";
  config.mem_buckets = 64;
  return apps::make_program_source("hh", config);
}

rmt::Packet cache_read(Word key) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{.src_port = 4000, .dst_port = 7777};
  pkt.app = rmt::AppHeader{.op = 1, .key1 = key, .key2 = 0, .value = 0};
  pkt.ingress_port = 5;
  return pkt;
}

struct ChainBed {
  SimClock clock;
  obs::Telemetry telemetry;
  dp::SwitchChain chain;
  ctrl::ChainController controller;

  explicit ChainBed(int length)
      : chain(length, chain_spec(length), rmt::ParserConfig{{7777}}),
        controller(chain, clock, {}, {}, &telemetry) {}
};

const obs::MonitorEvent* last_event(const obs::Telemetry& telemetry,
                                    obs::MonitorEvent::Kind kind) {
  const auto& events = telemetry.monitor.events();
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->kind == kind) return &*it;
  }
  return nullptr;
}

// The acceptance scenario: a faulted chain deploy (rolled back chain-wide)
// followed by a clean deploy and post-commit packet injection. Each
// operation's whole story — txn spans, per-hop writes, rollback/commit
// events, and the packet journey — resolves under its own single trace id.
TEST(TraceReport, FaultedAndCleanChainDeploysResolveUnderOneTraceIdEach) {
  constexpr int kLength = 3;
  ChainBed bed(kLength);

  // Faulted deploy: the first control-channel write on hop 1 fails, the
  // chain transaction unwinds everywhere.
  bed.controller.updates(1).set_fault_after_writes(0);
  auto faulted = bed.controller.link(cache_source());
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.error().code, ErrorCode::ChannelError);
  bed.controller.updates(1).set_fault_after_writes(-1);

  const auto* rollback =
      last_event(bed.telemetry, obs::MonitorEvent::Kind::ChainTxnRollback);
  ASSERT_NE(rollback, nullptr);
  const std::uint64_t faulted_trace = rollback->trace;
  EXPECT_EQ(faulted_trace, 1u) << "first minted id of the bundle";

  // Clean deploy: commits on every hop; the LinkResult hands the caller the
  // operation's trace id.
  auto linked = bed.controller.link(cache_source());
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  const std::uint64_t clean_trace = linked.value().trace;
  ASSERT_NE(clean_trace, 0u);
  EXPECT_NE(clean_trace, faulted_trace);

  // Post-commit traffic: inject at hop 0 with journey capture on. The hop
  // pipeline stamps the packet with the table trace/generation the clean
  // deploy installed. (ChainController does not attach the monitor as a
  // pipeline observer itself — single-switch Controller does — so the test
  // wires hop 0 explicitly, the way a chain harness would.)
  bed.telemetry.flight.set_sample_every(1);
  bed.chain.switch_at(0).pipeline().set_observer(&bed.telemetry.monitor);
  (void)bed.chain.switch_at(0).inject(cache_read(0x8888));
  ASSERT_EQ(bed.telemetry.flight.journeys().size(), 1u);
  EXPECT_EQ(bed.telemetry.flight.journeys().front().table_trace, clean_trace);
  EXPECT_GE(bed.telemetry.flight.journeys().front().table_generation, 1u);

  // --- the clean operation's structured report ---------------------------
  const auto clean = ctrl::collect_trace(bed.telemetry, clean_trace);
  EXPECT_TRUE(clean.found());
  EXPECT_EQ(clean.root_name(), "chain_link");

  // Per-hop write batches: every hop of the chain committed under this id.
  ASSERT_FALSE(clean.writes.empty());
  std::set<int> hops_written;
  for (const auto& write : clean.writes) {
    EXPECT_GE(write.hop, 0);
    EXPECT_LT(write.hop, kLength);
    EXPECT_FALSE(write.what.empty());
    hops_written.insert(write.hop);
  }
  EXPECT_EQ(hops_written.size(), static_cast<std::size_t>(kLength));

  // Lifecycle events: chain commit (plus per-hop deploys) under the id.
  bool saw_commit = false;
  for (const auto& event : clean.events) {
    if (event.kind == obs::MonitorEvent::Kind::ChainTxnCommit) {
      saw_commit = true;
      EXPECT_EQ(event.hops, kLength);
    }
    EXPECT_NE(event.kind, obs::MonitorEvent::Kind::ChainTxnRollback);
  }
  EXPECT_TRUE(saw_commit);

  // The packet journey is causally linked to this deploy — and only this
  // deploy.
  ASSERT_EQ(clean.journeys.size(), 1u);
  EXPECT_EQ(clean.journeys.front().table_trace, clean_trace);

  // --- the faulted operation's report ------------------------------------
  const auto bad = ctrl::collect_trace(bed.telemetry, faulted_trace);
  EXPECT_TRUE(bad.found());
  EXPECT_EQ(bad.root_name(), "chain_link");
  bool saw_rollback = false;
  for (const auto& event : bad.events) {
    if (event.kind == obs::MonitorEvent::Kind::ChainTxnRollback) {
      saw_rollback = true;
      EXPECT_EQ(event.faulted_hop, 1);
      EXPECT_NE(event.detail.find("[ChannelError]"), std::string::npos);
    }
    EXPECT_NE(event.kind, obs::MonitorEvent::Kind::ChainTxnCommit);
  }
  EXPECT_TRUE(saw_rollback);
  // Rolled-back tables never go live: no journey can reference this id.
  EXPECT_TRUE(bad.journeys.empty());

  // --- the rendered story -------------------------------------------------
  const std::string story = ctrl::trace_report(bed.telemetry, clean_trace);
  EXPECT_NE(story.find("trace " + obs::format_trace_id(clean_trace)),
            std::string::npos);
  EXPECT_NE(story.find("(chain_link)"), std::string::npos);
  EXPECT_NE(story.find("control-channel writes:"), std::string::npos);
  EXPECT_NE(story.find("hop 2"), std::string::npos);
  EXPECT_NE(story.find("chain txn commit"), std::string::npos);
  EXPECT_NE(story.find("packet journeys against this operation's tables:"),
            std::string::npos);

  const std::string bad_story = ctrl::trace_report(bed.telemetry, faulted_trace);
  EXPECT_NE(bad_story.find("chain txn rollback"), std::string::npos);
  EXPECT_NE(bad_story.find("faulted_hop=1"), std::string::npos);
  EXPECT_EQ(bad_story.find("packet journeys"), std::string::npos);
}

TEST(TraceReport, UnknownIdRendersNothingRecorded) {
  ChainBed bed(2);
  const auto report = ctrl::collect_trace(bed.telemetry, 12345);
  EXPECT_FALSE(report.found());
  EXPECT_TRUE(report.root_name().empty());

  const std::string story = ctrl::trace_report(bed.telemetry, 12345);
  EXPECT_NE(story.find("nothing recorded under this id"), std::string::npos);

  // Id 0 is the "no trace" sentinel and never matches anything, even
  // though untraced spans/events carry 0 in their trace field.
  EXPECT_FALSE(ctrl::collect_trace(bed.telemetry, 0).found());
}

TEST(TraceReport, IdsAreEpochLocalAndRecycleAcrossClear) {
  ChainBed bed(2);
  auto first = bed.controller.link(cache_source());
  ASSERT_TRUE(first.ok());
  const std::uint64_t old_trace = first.value().trace;
  EXPECT_EQ(old_trace, 1u);
  EXPECT_TRUE(ctrl::collect_trace(bed.telemetry, old_trace).found());

  // clear() starts a new epoch: the old id resolves to nothing...
  bed.telemetry.clear();
  EXPECT_FALSE(ctrl::collect_trace(bed.telemetry, old_trace).found());
  EXPECT_NE(ctrl::trace_report(bed.telemetry, old_trace)
                .find("nothing recorded under this id"),
            std::string::npos);

  // ...until minting restarts at 1 and recycles it: the recycled id now
  // resolves to the *new* epoch's operation, not the old one.
  auto second = bed.controller.link(hh_source());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().trace, old_trace);
  const auto recycled = ctrl::collect_trace(bed.telemetry, old_trace);
  ASSERT_TRUE(recycled.found());
  EXPECT_EQ(recycled.root_name(), "chain_link");
  bool names_hh = false;
  for (const auto& event : recycled.events) {
    if (event.program_name == "hh") names_hh = true;
    EXPECT_NE(event.program_name, "cache");
  }
  EXPECT_TRUE(names_hh);
}

TEST(TraceReport, SingleSwitchOperationsMintDistinctIds) {
  SimClock clock;
  obs::Telemetry telemetry;
  dp::RunproDataplane dataplane{dp::DataplaneSpec{}, rmt::ParserConfig{{7777}}};
  ctrl::Controller controller{dataplane, clock, rp::Objective{},
                              ctrl::BfrtCostModel{}, &telemetry};

  auto linked = controller.link_single(cache_source());
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  const std::uint64_t link_trace = linked.value().trace;
  ASSERT_NE(link_trace, 0u);

  // The data plane's table state is stamped with the installing operation.
  EXPECT_EQ(dataplane.pipeline().table_trace(), link_trace);
  EXPECT_GE(dataplane.pipeline().table_generation(), 1u);

  const auto report = ctrl::collect_trace(telemetry, link_trace);
  EXPECT_TRUE(report.found());
  EXPECT_EQ(report.root_name(), "link");
  ASSERT_FALSE(report.writes.empty());
  for (const auto& write : report.writes) {
    EXPECT_EQ(write.hop, -1) << "single-switch engine has no hop label";
  }

  // Revoking is a separate operation with its own id; its writes (table
  // removals) stamp the pipeline anew.
  ASSERT_TRUE(controller.revoke(linked.value().id).ok());
  const std::uint64_t revoke_trace = dataplane.pipeline().table_trace();
  EXPECT_NE(revoke_trace, link_trace);
  const auto revoke_report = ctrl::collect_trace(telemetry, revoke_trace);
  EXPECT_TRUE(revoke_report.found());
  EXPECT_EQ(revoke_report.root_name(), "revoke");
}

}  // namespace
}  // namespace p4runpro
