// Execution-tracing tests: a traced packet produces one line per executed
// operation, in pipeline order, across recirculation rounds.
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

std::string joined(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& line : lines) out += line + "\n";
  return out;
}

TEST(Tracing, CacheHitTraceShowsTheFigure3Walk) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}});
  ctrl::Controller controller(dataplane, clock);
  apps::ProgramConfig config;
  config.instance_name = "cache";
  auto linked = controller.link_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(linked.ok());
  ASSERT_TRUE(controller.write_memory(linked.value().id, "mem1", 0, 5).ok());

  dataplane.pipeline().set_tracing(true);
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 1, .dst = 2, .proto = 17};
  pkt.udp = rmt::UdpHeader{4000, 7777};
  pkt.app = rmt::AppHeader{1, 0x8888, 0, 0};
  pkt.ingress_port = 5;
  (void)dataplane.inject(pkt);

  const auto& trace = dataplane.pipeline().last_trace();
  const std::string text = joined(trace);
  // The Fig. 3 walk: parse, claim, extracts, branch to the read case,
  // address load, memory read, header modify.
  EXPECT_NE(text.find("parser: bitmap=0b11101"), std::string::npos) << text;
  EXPECT_NE(text.find("init: claimed by program"), std::string::npos);
  EXPECT_NE(text.find("EXTRACT(hdr.nc.op, har)"), std::string::npos);
  EXPECT_NE(text.find("BRANCH"), std::string::npos);
  EXPECT_NE(text.find("-> b1"), std::string::npos);
  EXPECT_NE(text.find("MEM(salu="), std::string::npos);
  EXPECT_NE(text.find("MODIFY(hdr.nc.val, sar)"), std::string::npos);
  // Order: claim before extract before branch before memory.
  EXPECT_LT(text.find("init:"), text.find("EXTRACT"));
  EXPECT_LT(text.find("EXTRACT"), text.find("BRANCH"));
  EXPECT_LT(text.find("BRANCH"), text.find("MEM(salu="));

  // Tracing off: the last trace stays as-is but new packets don't trace.
  dataplane.pipeline().set_tracing(false);
  (void)dataplane.inject(pkt);
  EXPECT_EQ(dataplane.pipeline().last_trace(), trace);
}

TEST(Tracing, RecirculatedProgramShowsBothRounds) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  ctrl::Controller controller(dataplane, clock);
  apps::ProgramConfig config;
  config.instance_name = "hh";
  config.threshold = 5;
  ASSERT_TRUE(controller.link_single(apps::make_program_source("hh", config)).ok());

  dataplane.pipeline().set_tracing(true);
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000010, .dst = 0x0b000001, .proto = 17};
  pkt.udp = rmt::UdpHeader{5000, 6000};
  pkt.ingress_port = 1;
  // Packet 5 crosses the threshold (count == 5): its trace shows the BF
  // walk and the round-1 REPORT.
  rmt::PipelineResult result;
  for (int i = 0; i < 5; ++i) result = dataplane.inject(pkt);
  EXPECT_EQ(result.fate, rmt::PacketFate::Reported);

  // Structured trace (last_trace_events): match on fields, not substrings.
  const auto& events = dataplane.pipeline().last_trace_events();
  ASSERT_FALSE(events.empty());
  bool saw_recirc = false, saw_r0 = false, saw_r1 = false, saw_report = false;
  for (const auto& event : events) {
    if (event.block == rmt::TraceEvent::Block::Recirc) {
      saw_recirc = true;
      EXPECT_EQ(event.value, 1u);  // recirculated into round 1
    }
    if (event.block == rmt::TraceEvent::Block::Rpb) {
      if (event.round == 0) saw_r0 = true;
      if (event.round == 1) {
        saw_r1 = true;
        if (event.op.rfind("REPORT", 0) == 0) saw_report = true;
      }
    }
  }
  EXPECT_TRUE(saw_recirc);
  EXPECT_TRUE(saw_r0);
  EXPECT_TRUE(saw_r1);
  EXPECT_TRUE(saw_report);
  // The structured stream mirrors the rendered one: round transitions are
  // monotonic in recording order.
  int last_round = 0;
  for (const auto& event : events) {
    EXPECT_GE(event.round, last_round);
    last_round = event.round;
  }
}

TEST(Tracing, UnclaimedPacketTracesOnlyTheParser) {
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{});
  dataplane.pipeline().set_tracing(true);
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 1, .dst = 2, .proto = 17};
  pkt.udp = rmt::UdpHeader{1, 2};
  (void)dataplane.inject(pkt);
  ASSERT_EQ(dataplane.pipeline().last_trace().size(), 1u);
  EXPECT_EQ(dataplane.pipeline().last_trace()[0].substr(0, 6), "parser");
}

}  // namespace
}  // namespace p4runpro
