// Unit tests for the telemetry layer (src/obs/): histogram bucket
// boundaries and quantile extraction, span nesting/ordering under SimClock
// virtual time, probe lifecycle, and exporter determinism at the
// registry level.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/monitor.h"
#include "obs/telemetry.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace p4runpro::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(Metrics, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  auto& c = registry.counter("a.count");
  c.inc();
  c.inc(4);
  EXPECT_EQ(registry.counter("a.count").value(), 5u);
  // Same name resolves to the same instance (stable references).
  EXPECT_EQ(&c, &registry.counter("a.count"));

  registry.gauge("a.gauge").set(2.5);
  registry.gauge("a.gauge").add(0.5);
  EXPECT_DOUBLE_EQ(registry.gauge_value("a.gauge"), 3.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("missing"), 0.0);
}

TEST(Metrics, HistogramBucketBoundaries) {
  const double bounds[] = {1.0, 2.0, 5.0};
  MetricsRegistry registry;
  auto& h = registry.histogram("h", bounds);

  // Upper bounds are inclusive: an observation equal to a bound lands in
  // that bound's bucket; the first value above the last bound overflows.
  h.observe(1.0);   // bucket le=1
  h.observe(1.5);   // bucket le=2
  h.observe(2.0);   // bucket le=2
  h.observe(5.0);   // bucket le=5
  h.observe(5.01);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 1.5 + 2.0 + 5.0 + 5.01);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.01);
}

TEST(Metrics, HistogramQuantiles) {
  const double bounds[] = {10.0, 20.0, 30.0, 40.0};
  MetricsRegistry registry;
  auto& h = registry.histogram("q", bounds);
  // 100 observations uniform over (0, 40]: quantiles interpolate inside
  // the crossing bucket and stay within one bucket width of exact.
  for (int i = 1; i <= 100; ++i) h.observe(i * 0.4);
  EXPECT_NEAR(h.quantile(0.5), 20.0, 10.0 + 1e-9);
  EXPECT_NEAR(h.quantile(0.9), 36.0, 10.0 + 1e-9);
  EXPECT_GE(h.quantile(0.9), h.quantile(0.5));
  EXPECT_GE(h.quantile(0.99), h.quantile(0.9));
  // Extremes clamp to the observed range.
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(1.0), h.max());
  // Empty histogram: all quantiles are 0.
  EXPECT_DOUBLE_EQ(registry.histogram("empty", bounds).quantile(0.5), 0.0);
}

TEST(Metrics, EmptyHistogramQuantileIsZeroSentinelNeverNaN) {
  MetricsRegistry registry;
  auto& h = registry.histogram("empty.lat");
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 0.0);
    EXPECT_FALSE(std::isnan(h.quantile(q)));
  }
  EXPECT_EQ(h.count(), 0u);  // the caller's cue that 0.0 means "no data"

  // The JSONL exporter skips empty histograms entirely — a 0-valued p50
  // would read as a measurement.
  registry.counter("keep").inc();
  std::ostringstream out;
  export_metrics_jsonl(registry, out);
  EXPECT_EQ(out.str().find("empty.lat"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("keep"), std::string::npos);

  // One observation and the histogram exports again.
  h.observe(2.5);
  std::ostringstream out2;
  export_metrics_jsonl(registry, out2);
  EXPECT_NE(out2.str().find("\"name\":\"empty.lat\",\"type\":\"histogram\""),
            std::string::npos);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.5);
}

TEST(Metrics, HistogramOverflowQuantileClampsToMax) {
  const double bounds[] = {1.0};
  MetricsRegistry registry;
  auto& h = registry.histogram("o", bounds);
  h.observe(100.0);
  h.observe(200.0);
  EXPECT_LE(h.quantile(0.99), 200.0);
  EXPECT_GE(h.quantile(0.99), 100.0);
}

TEST(Metrics, DefaultBoundsAreSane) {
  const auto time_bounds = Histogram::time_ms_bounds();
  ASSERT_FALSE(time_bounds.empty());
  EXPECT_DOUBLE_EQ(time_bounds.front(), 1e-3);  // 1 us in ms
  for (std::size_t i = 1; i < time_bounds.size(); ++i) {
    EXPECT_LT(time_bounds[i - 1], time_bounds[i]);
  }
  const auto count_bounds = Histogram::count_bounds();
  EXPECT_DOUBLE_EQ(count_bounds.front(), 1.0);
  EXPECT_DOUBLE_EQ(count_bounds.back(), 65536.0);
}

TEST(Metrics, ProbesSampleLiveAndFreezeOnUnregister) {
  MetricsRegistry registry;
  std::uint64_t packets = 0;
  const int owner = 0;
  registry.register_probe("p.packets", &owner,
                          [&] { return static_cast<double>(packets); });
  packets = 3;
  EXPECT_DOUBLE_EQ(registry.gauge_value("p.packets"), 3.0);
  packets = 9;
  EXPECT_DOUBLE_EQ(registry.gauge_value("p.packets"), 9.0);

  registry.unregister_probes(&owner);
  packets = 123;  // no longer sampled: the frozen gauge keeps the last value
  EXPECT_DOUBLE_EQ(registry.gauge_value("p.packets"), 9.0);
}

TEST(Metrics, ProbeReRegistrationIsLastOwnerWins) {
  MetricsRegistry registry;
  const int old_owner = 0, new_owner = 0;
  registry.register_probe("shared", &old_owner, [] { return 1.0; });
  registry.register_probe("shared", &new_owner, [] { return 2.0; });
  EXPECT_DOUBLE_EQ(registry.gauge_value("shared"), 2.0);
  // The old owner's teardown must not clobber the new registration.
  registry.unregister_probes(&old_owner);
  EXPECT_DOUBLE_EQ(registry.gauge_value("shared"), 2.0);
}

TEST(Metrics, JsonlExportIsValidAndDeterministic) {
  MetricsRegistry registry;
  registry.counter("z.counter").inc(2);
  registry.gauge("a.gauge").set(0.125);
  const double bounds[] = {1.0, 10.0};
  registry.histogram("m.hist", bounds).observe(0.5);
  registry.histogram("m.hist", bounds).observe(42.0);

  std::ostringstream first, second;
  export_metrics_jsonl(registry, first);
  export_metrics_jsonl(registry, second);
  EXPECT_EQ(first.str(), second.str());
  // One JSON object per line; counters come first, then gauges, then
  // histograms (each block sorted by name).
  EXPECT_NE(first.str().find("{\"name\":\"z.counter\",\"type\":\"counter\",\"value\":2}"),
            std::string::npos);
  EXPECT_NE(first.str().find("{\"name\":\"a.gauge\",\"type\":\"gauge\",\"value\":0.125}"),
            std::string::npos);
  EXPECT_NE(first.str().find("\"le\":\"+inf\",\"count\":1"), std::string::npos);
}

// ----------------------------------------------------------------- spans

TEST(Trace, NestingFollowsTheOpenSpanStack) {
  SimClock clock;
  SpanTracer tracer;
  tracer.set_clock(&clock);

  {
    auto root = tracer.span("link", "ctrl");
    clock.advance_ms(1);
    {
      auto child = tracer.span("solve", "ctrl");
      clock.advance_ms(2);
      auto grandchild = tracer.span("leaf");
      clock.advance_ms(1);
    }
    auto sibling = tracer.span("install", "ctrl");
    clock.advance_ms(3);
  }

  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  const auto root_idx = tracer.find("link");
  ASSERT_NE(root_idx, SpanTracer::kNoSpan);
  EXPECT_EQ(spans[root_idx].parent, -1);
  EXPECT_EQ(spans[root_idx].depth, 0);

  const auto solve_idx = tracer.find("solve");
  const auto leaf_idx = tracer.find("leaf");
  const auto install_idx = tracer.find("install");
  EXPECT_EQ(spans[solve_idx].parent, static_cast<std::ptrdiff_t>(root_idx));
  EXPECT_EQ(spans[leaf_idx].parent, static_cast<std::ptrdiff_t>(solve_idx));
  EXPECT_EQ(spans[leaf_idx].depth, 2);
  EXPECT_EQ(spans[install_idx].parent, static_cast<std::ptrdiff_t>(root_idx));

  const auto children = tracer.children_of(root_idx);
  ASSERT_EQ(children.size(), 2u);
  EXPECT_EQ(children[0], solve_idx);
  EXPECT_EQ(children[1], install_idx);

  // Virtual durations: leaf 1 ms inside solve 3 ms; children sum <= root.
  EXPECT_EQ(spans[leaf_idx].virtual_ns(), SimClock::Nanos{1'000'000});
  EXPECT_EQ(spans[solve_idx].virtual_ns(), SimClock::Nanos{3'000'000});
  EXPECT_EQ(spans[root_idx].virtual_ns(), SimClock::Nanos{7'000'000});
  EXPECT_LE(spans[solve_idx].virtual_ns() + spans[install_idx].virtual_ns(),
            spans[root_idx].virtual_ns());
  // Ordering: a child starts no earlier than its parent and ends no later.
  for (const auto idx : {solve_idx, leaf_idx, install_idx}) {
    const auto& child = spans[idx];
    const auto& parent = spans[static_cast<std::size_t>(child.parent)];
    EXPECT_GE(child.start_vns, parent.start_vns);
    EXPECT_LE(child.end_vns, parent.end_vns);
  }
}

TEST(Trace, OutOfOrderEndClosesOpenDescendants) {
  SimClock clock;
  SpanTracer tracer;
  tracer.set_clock(&clock);

  auto outer = tracer.span("outer");
  auto inner = tracer.span("inner");
  clock.advance_ms(1);
  outer.end();  // inner is still open: it gets closed at the same instant
  EXPECT_FALSE(tracer.spans()[tracer.find("inner")].open);
  EXPECT_EQ(tracer.spans()[tracer.find("inner")].end_vns,
            tracer.spans()[tracer.find("outer")].end_vns);
  inner.end();  // redundant end is a no-op
  EXPECT_EQ(tracer.spans().size(), 2u);
}

TEST(Trace, ScopeSurvivesTracerClear) {
  SimClock clock;
  SpanTracer tracer;
  tracer.set_clock(&clock);
  auto scope = tracer.span("stale");
  tracer.clear();
  scope.arg("k", std::uint64_t{1});  // must not touch the cleared vector
  scope.end();
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(Trace, CapacityCapCountsDrops) {
  SpanTracer tracer;
  tracer.set_capacity(2);
  auto a = tracer.span("a");
  auto b = tracer.span("b");
  auto c = tracer.span("c");  // dropped
  EXPECT_FALSE(c.active());
  c.end();
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
}

TEST(Trace, ChromeExportUsesIntegerMicrosOfVirtualTime) {
  SimClock clock;
  SpanTracer tracer;
  tracer.set_clock(&clock);
  clock.advance_ns(1500);  // 1.5 us
  {
    auto scope = tracer.span("phase", "ctrl");
    scope.arg("entries", std::uint64_t{12});
    clock.advance_ns(2'000'500);  // ~2 ms
  }
  std::ostringstream out;
  export_chrome_trace(tracer, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"ctrl\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":2000.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"entries\":\"12\""), std::string::npos) << json;

  std::ostringstream again;
  export_chrome_trace(tracer, again);
  EXPECT_EQ(json, again.str());  // deterministic without wall time
}

// ------------------------------------------------------- string escaping

TEST(Escaping, ChromeTraceEscapesNamesAndArgs) {
  SpanTracer tracer;
  {
    auto scope = tracer.span("quote\" back\\slash", "cat\nline");
    scope.arg("key\t", "value\r\n\"end\"");
  }
  std::ostringstream out;
  export_chrome_trace(tracer, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\":\"quote\\\" back\\\\slash\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"cat\":\"cat\\nline\""), std::string::npos);
  EXPECT_NE(json.find("\"key\\t\""), std::string::npos);
  EXPECT_NE(json.find("value\\r\\n\\\"end\\\""), std::string::npos);
  // No raw control characters survive into the output besides the
  // format's own line breaks between events.
  for (char c : json) {
    if (c == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(Escaping, MetricsJsonlEscapesNames) {
  MetricsRegistry registry;
  registry.counter("weird\"name\\with\nstuff").inc();
  std::ostringstream out;
  export_metrics_jsonl(registry, out);
  EXPECT_NE(out.str().find("\"name\":\"weird\\\"name\\\\with\\nstuff\""),
            std::string::npos)
      << out.str();
}

TEST(Escaping, ControlCharactersUseUnicodeEscapes) {
  MetricsRegistry registry;
  registry.counter(std::string("bell\x07gauge")).inc();
  std::ostringstream out;
  export_metrics_jsonl(registry, out);
  EXPECT_NE(out.str().find("bell\\u0007gauge"), std::string::npos) << out.str();
}

TEST(Escaping, NonAsciiUtf8PassesThroughUnchanged) {
  MetricsRegistry registry;
  registry.counter("greek.\xce\xbb.rate").inc();  // U+03BB
  std::ostringstream out;
  export_metrics_jsonl(registry, out);
  EXPECT_NE(out.str().find("greek.\xce\xbb.rate"), std::string::npos);
}

TEST(Escaping, AlertsJsonlEscapesProgramAndRuleNames) {
  ProgramHealthMonitor monitor;
  monitor.program_deployed(1, "prog \"quoted\"\nname", 3);
  monitor.add_rule({"rule\\one", AlertKind::DropFraction, 0.5});
  rmt::PacketObservation obs;
  obs.program = 1;
  obs.fate = rmt::PacketFate::Dropped;
  monitor.on_packet(obs);
  ASSERT_EQ(monitor.alerts_fired(), 1u);

  std::ostringstream out;
  export_alerts_jsonl(monitor, out);
  const std::string jsonl = out.str();
  EXPECT_NE(jsonl.find("\"name\":\"prog \\\"quoted\\\"\\nname\""), std::string::npos)
      << jsonl;
  EXPECT_NE(jsonl.find("\"rule\":\"rule\\\\one\""), std::string::npos);
}

TEST(Escaping, FlightJsonlEscapesJourneyStrings) {
  FlightRecorder recorder;
  PacketJourney journey;
  journey.program_name = "name\twith\"tabs\\";
  rmt::TraceEvent event;
  event.block = rmt::TraceEvent::Block::Rpb;
  event.op = "OP(\"arg\")\n";
  journey.events.push_back(std::move(event));
  recorder.record(std::move(journey));
  recorder.freeze("why \"so\"", 1.0);

  std::ostringstream out;
  export_flight_jsonl(recorder, out);
  const std::string jsonl = out.str();
  EXPECT_NE(jsonl.find("\"reason\":\"why \\\"so\\\"\""), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("name\\twith\\\"tabs\\\\"), std::string::npos);
  EXPECT_NE(jsonl.find("OP(\\\"arg\\\")\\n"), std::string::npos);
}

TEST(Escaping, TraceIdsRenderAsFixedWidthLowercaseHex) {
  EXPECT_EQ(format_trace_id(0), "0000000000000000");
  EXPECT_EQ(format_trace_id(1), "0000000000000001");
  EXPECT_EQ(format_trace_id(0xDEADBEEFull), "00000000deadbeef");
  EXPECT_EQ(format_trace_id(~0ull), "ffffffffffffffff");
}

TEST(Escaping, ChromeTraceEmitsTraceIdArg) {
  Telemetry telemetry;
  std::uint64_t minted = 0;
  {
    TraceScope trace(&telemetry);
    minted = trace.trace_id();
    auto scope = telemetry.tracer.span("op", "ctrl");
  }
  { auto untraced = telemetry.tracer.span("outside"); }
  std::ostringstream out;
  export_chrome_trace(telemetry.tracer, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"trace\":\"" + format_trace_id(minted) + "\""),
            std::string::npos)
      << json;
  // Untraced spans carry no trace arg at all (0 is not serialized).
  EXPECT_EQ(json.find(format_trace_id(0)), std::string::npos);
}

TEST(Escaping, SeriesJsonlEscapesNamesWithDotsAndQuotes) {
  MetricsRegistry registry;
  registry.counter("ctrl.weird\"series\\name").inc(4);
  TimeSeriesStore store;
  store.sample(registry, 1'000'000);

  std::ostringstream out;
  export_series_jsonl(store, out);
  const std::string jsonl = out.str();
  EXPECT_NE(jsonl.find("\"name\":\"ctrl.weird\\\"series\\\\name\""),
            std::string::npos)
      << jsonl;
  // Dots pass through unescaped — they are series-name structure, not JSON.
  EXPECT_NE(jsonl.find("ctrl.weird"), std::string::npos);
  for (char c : jsonl) {
    if (c == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(Escaping, AlertsJsonlEscapesSeriesNames) {
  Telemetry telemetry;
  telemetry.monitor.series_alert("series\"with\\escapes", "anomaly.z_score",
                                 9.0, 3.0);
  std::ostringstream out;
  export_alerts_jsonl(telemetry.monitor, out);
  EXPECT_NE(out.str().find("\"series\":\"series\\\"with\\\\escapes\""),
            std::string::npos)
      << out.str();
}

TEST(Telemetry, NullSafeSpanHelper) {
  auto scope = span(nullptr, "nothing");
  EXPECT_FALSE(scope.active());
  scope.arg("k", "v");
  scope.end();  // all no-ops

  Telemetry telemetry;
  auto live = span(&telemetry, "real", "cat");
  EXPECT_TRUE(live.active());
  live.end();
  EXPECT_EQ(telemetry.tracer.spans().size(), 1u);
}

}  // namespace
}  // namespace p4runpro::obs
