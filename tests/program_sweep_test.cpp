// Parameterized sweeps across the whole program catalog and its
// configuration space: every (program, memory size, elastic cases)
// combination must compile, allocate within the model's constraints, link,
// survive a packet burst without crashing the pipeline, and revoke
// cleanly.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/rng.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

using SweepParam = std::tuple<std::string, std::uint32_t, int>;

class ProgramSweep : public ::testing::TestWithParam<SweepParam> {};

rmt::Packet random_packet(Rng& rng) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{
      .src = 0x0a000000u | static_cast<Word>(rng.uniform(1 << 16)),
      .dst = 0x0a000000u | static_cast<Word>(rng.uniform(1 << 16)),
      .proto = 17,
      .ttl = 64,
      .dscp = 0,
      .ecn = 0,
      .total_len = 100};
  if (rng.uniform01() < 0.5) {
    pkt.ipv4->proto = 6;
    pkt.tcp = rmt::TcpHeader{static_cast<std::uint16_t>(rng.uniform(65536)),
                             static_cast<std::uint16_t>(rng.uniform(65536)), 0x10};
  } else {
    const std::uint16_t kPorts[] = {7777, 7788, 9999, 5555};
    pkt.udp = rmt::UdpHeader{static_cast<std::uint16_t>(rng.uniform(65536)),
                             kPorts[rng.uniform(4)]};
    pkt.app = rmt::AppHeader{static_cast<Word>(rng.uniform(3)),
                             0x8888u + static_cast<Word>(rng.uniform(260)),
                             0, rng.next_u32()};
  }
  pkt.payload_len = 64;
  pkt.ingress_port = static_cast<Port>(rng.uniform(4));
  return pkt;
}

TEST_P(ProgramSweep, CompileLinkRunRevoke) {
  const auto& [key, mem, elastic] = GetParam();
  SimClock clock;
  dp::RunproDataplane dataplane(dp::DataplaneSpec{},
                                rmt::ParserConfig{{7777, 7788, 9999, 5555}});
  ctrl::Controller controller(dataplane, clock);

  apps::ProgramConfig config;
  config.instance_name = "sweep";
  config.mem_buckets = mem;
  config.elastic_cases = elastic;
  auto linked = controller.link_single(apps::make_program_source(key, config));
  ASSERT_TRUE(linked.ok()) << key << " mem=" << mem << " elastic=" << elastic
                           << ": " << linked.error().str();

  const auto* installed = controller.program(linked.value().id);
  ASSERT_NE(installed, nullptr);

  // Allocation constraint audit on the linked result.
  const auto& spec = dataplane.spec();
  const auto& x = installed->alloc.x;
  ASSERT_EQ(static_cast<int>(x.size()), installed->ir.depth);
  for (std::size_t i = 1; i < x.size(); ++i) ASSERT_LT(x[i - 1], x[i]);
  for (std::size_t d = 0; d < x.size(); ++d) {
    const auto& req = installed->ir.depth_reqs[d];
    const int phys = dp::physical_rpb(x[d], spec.total_rpbs());
    if (req.forwarding) {
      EXPECT_TRUE(dp::is_ingress_rpb(phys, spec.ingress_rpbs)) << key;
    }
    for (const auto& vmem : req.vmems) {
      EXPECT_EQ(installed->alloc.vmem_rpb.at(vmem), phys) << key;
    }
  }
  EXPECT_LE(installed->alloc.rounds, spec.max_recirculations + 1);

  // Memory placements exist for every allocated vmem and have the rounded
  // sizes.
  for (const auto& [vmem, size] : installed->ir.vmem_sizes) {
    if (installed->alloc.vmem_rpb.count(vmem) == 0) continue;
    const auto& placement = installed->placements.at(vmem);
    EXPECT_EQ(placement.block.size, size) << key << " " << vmem;
  }

  // Burst of random traffic: nothing crashes, recirculation stays within
  // the program's round budget.
  Rng rng(static_cast<std::uint64_t>(mem) * 131 + static_cast<std::uint64_t>(elastic));
  for (int i = 0; i < 50; ++i) {
    const auto result = dataplane.inject(random_packet(rng));
    EXPECT_NE(result.fate, rmt::PacketFate::RecircLimit) << key;
    EXPECT_LE(result.recirc_passes, installed->alloc.rounds - 1) << key;
  }

  ASSERT_TRUE(controller.revoke(linked.value().id).ok());
  EXPECT_DOUBLE_EQ(controller.resources().total_memory_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(controller.resources().total_entry_utilization(), 0.0);
}

std::vector<SweepParam> sweep_space() {
  std::vector<SweepParam> out;
  for (const auto& info : apps::program_catalog()) {
    for (std::uint32_t mem : {64u, 256u, 1024u}) {
      for (int elastic : {1, 2, 8}) {
        out.emplace_back(info.key, mem, elastic);
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, ProgramSweep, ::testing::ValuesIn(sweep_space()),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::get<0>(info.param) + "_m" + std::to_string(std::get<1>(info.param)) +
             "_e" + std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace p4runpro
