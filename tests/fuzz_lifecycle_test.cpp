// Randomized lifecycle fuzzing: long random sequences of link / revoke /
// memory-write operations across the whole catalog, with global invariants
// checked throughout:
//   * the resource manager's accounting equals the data plane's tables,
//   * memory free lists stay disjoint, sorted and within bounds,
//   * revoking everything returns the switch to a pristine state,
//   * program ids never collide.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "apps/program_library.h"
#include "common/clock.h"
#include "common/rng.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

class LifecycleFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  LifecycleFuzz()
      : dataplane_(dp::DataplaneSpec{}, rmt::ParserConfig{{7777, 7788, 9999, 5555}}),
        controller_(dataplane_, clock_) {}

  void check_invariants() {
    const auto& spec = dataplane_.spec();
    std::size_t total_rpb_entries = 0;
    for (int rpb = 1; rpb <= spec.total_rpbs(); ++rpb) {
      // Accounting mirrors the actual tables.
      ASSERT_EQ(controller_.resources().entries_used(rpb),
                dataplane_.rpb(rpb).table().size())
          << "rpb " << rpb;
      total_rpb_entries += dataplane_.rpb(rpb).table().size();
    }
    (void)total_rpb_entries;

    // Free lists: sorted, disjoint, within bounds; free + used == total.
    const auto snap = controller_.resources().snapshot();
    for (int rpb = 1; rpb <= spec.total_rpbs(); ++rpb) {
      const auto& blocks = snap.free_mem[static_cast<std::size_t>(rpb - 1)];
      std::uint64_t free_total = 0;
      std::uint32_t prev_end = 0;
      for (std::size_t i = 0; i < blocks.size(); ++i) {
        ASSERT_GT(blocks[i].size, 0u);
        if (i > 0) {
          // Strictly after the previous block, not adjacent (coalesced).
          ASSERT_GT(blocks[i].base, prev_end) << "rpb " << rpb;
        }
        prev_end = blocks[i].base + blocks[i].size;
        ASSERT_LE(prev_end, spec.memory_per_rpb);
        free_total += blocks[i].size;
      }
      ASSERT_EQ(free_total + controller_.resources().memory_used(rpb),
                spec.memory_per_rpb)
          << "rpb " << rpb;
    }
  }

  SimClock clock_;
  dp::RunproDataplane dataplane_;
  ctrl::Controller controller_;
};

TEST_P(LifecycleFuzz, RandomLinkRevokeSequences) {
  Rng rng(GetParam());
  std::vector<ProgramId> live;
  std::set<ProgramId> live_set;
  const auto& catalog = apps::program_catalog();
  int epoch = 0;

  for (int step = 0; step < 400; ++step) {
    const double roll = rng.uniform01();
    if (roll < 0.55 || live.empty()) {
      const auto& info = catalog[rng.uniform(catalog.size())];
      apps::ProgramConfig config;
      config.instance_name = info.key + "_f" + std::to_string(epoch++);
      config.mem_buckets = 64u << rng.uniform(4);  // 64..512 buckets
      config.elastic_cases = 1 + static_cast<int>(rng.uniform(6));
      auto linked =
          controller_.link_single(apps::make_program_source(info.key, config));
      if (linked.ok()) {
        // Ids must be unique among live programs.
        ASSERT_TRUE(live_set.insert(linked.value().id).second);
        live.push_back(linked.value().id);
      }
    } else if (roll < 0.85) {
      const std::size_t pick = rng.uniform(live.size());
      ASSERT_TRUE(controller_.revoke(live[pick]).ok());
      live_set.erase(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (!live.empty()) {
      // Random memory write to a random program's first vmem (if any).
      const ProgramId id = live[rng.uniform(live.size())];
      const auto* placements = controller_.resources().program_placements(id);
      if (placements != nullptr && !placements->empty()) {
        const auto& [vmem, placement] = *placements->begin();
        const MemAddr addr = static_cast<MemAddr>(rng.uniform(placement.block.size));
        ASSERT_TRUE(controller_.write_memory(id, vmem, addr, rng.next_u32()).ok());
      }
    }
    if (step % 23 == 0) check_invariants();
  }
  check_invariants();

  // Tear everything down: the switch must be pristine.
  for (ProgramId id : live) ASSERT_TRUE(controller_.revoke(id).ok());
  check_invariants();
  EXPECT_EQ(controller_.program_count(), 0u);
  EXPECT_DOUBLE_EQ(controller_.resources().total_memory_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(controller_.resources().total_entry_utilization(), 0.0);
  EXPECT_EQ(dataplane_.init_block().total_entries(), 0u);
  EXPECT_EQ(dataplane_.recirc_block().entries(), 0u);
  // All stage memory zeroed (lock-and-reset on every termination).
  for (int rpb = 1; rpb <= dataplane_.spec().total_rpbs(); ++rpb) {
    const auto& mem = dataplane_.rpb(rpb).memory();
    for (MemAddr a = 0; a < 4096; a += 257) {
      ASSERT_EQ(mem.read(a), 0u) << "rpb " << rpb << " addr " << a;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LifecycleFuzz,
                         ::testing::Values(1ull, 42ull, 1337ull, 0xdeadbeefull));

}  // namespace
}  // namespace p4runpro
