// End-to-end integration: link the paper's in-network cache program (Fig. 2
// / Fig. 3) to a provisioned data plane and verify packet-level behaviour —
// cache read returns the stored value, cache write updates memory and drops,
// cache miss forwards to the server, unrelated traffic is untouched.
#include <gtest/gtest.h>

#include "apps/program_library.h"
#include "common/clock.h"
#include "control/controller.h"
#include "dataplane/runpro_dataplane.h"

namespace p4runpro {
namespace {

rmt::Packet cache_packet(Word op, Word key1, Word key2, Word value,
                         std::uint16_t port = 7777) {
  rmt::Packet pkt;
  pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000001, .dst = 0x0a000002, .proto = 17};
  pkt.udp = rmt::UdpHeader{.src_port = 4000, .dst_port = port};
  pkt.app = rmt::AppHeader{.op = op, .key1 = key1, .key2 = key2, .value = value};
  pkt.ingress_port = 5;
  return pkt;
}

class CacheIntegration : public ::testing::Test {
 protected:
  CacheIntegration()
      : dataplane_(dp::DataplaneSpec{}, rmt::ParserConfig{{7777}}),
        controller_(dataplane_, clock_) {}

  SimClock clock_;
  dp::RunproDataplane dataplane_;
  ctrl::Controller controller_;
};

TEST_F(CacheIntegration, FullCacheLifecycle) {
  apps::ProgramConfig config;
  config.instance_name = "cache";
  auto linked = controller_.link_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  const ProgramId id = linked.value().id;

  // Populate the cache value at virtual address 0 via the control plane
  // (virtual->physical translation in the resource manager).
  ASSERT_TRUE(controller_.write_memory(id, "mem1", 0, 0xDEADBEEFu).ok());

  // Cache read hit: reflected to the client with the value embedded.
  auto read = dataplane_.inject(cache_packet(1, 0x8888, 0, 0));
  EXPECT_EQ(read.fate, rmt::PacketFate::Returned);
  EXPECT_EQ(read.egress_port, 5);
  ASSERT_TRUE(read.packet.app.has_value());
  EXPECT_EQ(read.packet.app->value, 0xDEADBEEFu);

  // Cache write: dropped, and memory updated.
  auto write = dataplane_.inject(cache_packet(2, 0x8888, 0, 0x1234u));
  EXPECT_EQ(write.fate, rmt::PacketFate::Dropped);
  auto stored = controller_.read_memory(id, "mem1", 0);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored.value(), 0x1234u);

  // Subsequent read sees the written value.
  auto read2 = dataplane_.inject(cache_packet(1, 0x8888, 0, 0));
  EXPECT_EQ(read2.packet.app->value, 0x1234u);

  // Cache miss: forwarded to the server behind port 32.
  auto miss = dataplane_.inject(cache_packet(1, 0x9999, 0, 0));
  EXPECT_EQ(miss.fate, rmt::PacketFate::Forwarded);
  EXPECT_EQ(miss.egress_port, 32);

  // Unrelated traffic (different UDP port) is not claimed by the program.
  auto other = dataplane_.inject(cache_packet(1, 0x8888, 0, 0, 9000));
  EXPECT_EQ(other.fate, rmt::PacketFate::Forwarded);
  EXPECT_EQ(other.egress_port, 0);
}

TEST_F(CacheIntegration, RevokeRestoresCleanState) {
  apps::ProgramConfig config;
  config.instance_name = "cache";
  const std::string source = apps::make_program_source("cache", config);
  auto linked = controller_.link_single(source);
  ASSERT_TRUE(linked.ok()) << linked.error().str();
  ASSERT_TRUE(controller_.write_memory(linked.value().id, "mem1", 0, 77).ok());

  ASSERT_TRUE(controller_.revoke(linked.value().id).ok());
  EXPECT_EQ(controller_.program_count(), 0u);

  // The program no longer claims traffic.
  auto pkt = dataplane_.inject(cache_packet(1, 0x8888, 0, 0));
  EXPECT_EQ(pkt.fate, rmt::PacketFate::Forwarded);
  EXPECT_EQ(pkt.egress_port, 0);

  // All resources returned: memory fully free, no entries used.
  const auto snap = controller_.resources().snapshot();
  for (int rpb = 1; rpb <= dataplane_.spec().total_rpbs(); ++rpb) {
    EXPECT_EQ(snap.free_entries[static_cast<std::size_t>(rpb - 1)],
              dataplane_.spec().entries_per_rpb);
    ASSERT_EQ(snap.free_mem[static_cast<std::size_t>(rpb - 1)].size(), 1u);
    EXPECT_EQ(snap.free_mem[static_cast<std::size_t>(rpb - 1)][0].size,
              dataplane_.spec().memory_per_rpb);
  }

  // Memory was reset during termination (lock-and-reset, Fig. 6): relink
  // and confirm the old value is gone.
  auto relinked = controller_.link_single(source);
  ASSERT_TRUE(relinked.ok()) << relinked.error().str();
  auto value = controller_.read_memory(relinked.value().id, "mem1", 0);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 0u);
}

TEST_F(CacheIntegration, UpdateDelayInPaperRange) {
  apps::ProgramConfig config;
  config.instance_name = "cache";
  auto linked = controller_.link_single(apps::make_program_source("cache", config));
  ASSERT_TRUE(linked.ok());
  // Paper Table 1: 11.47 ms for the cache program. The simulated bfrt
  // channel should land in the same regime (same order of magnitude).
  EXPECT_GT(linked.value().stats.update_ms, 2.0);
  EXPECT_LT(linked.value().stats.update_ms, 40.0);
}

TEST_F(CacheIntegration, DuplicateNameRejected) {
  apps::ProgramConfig config;
  config.instance_name = "cache";
  const std::string source = apps::make_program_source("cache", config);
  ASSERT_TRUE(controller_.link_single(source).ok());
  EXPECT_FALSE(controller_.link_single(source).ok());
}

TEST_F(CacheIntegration, ManyInstancesAreIsolated) {
  // Two cache instances on different UDP ports must not interfere: distinct
  // program ids, distinct memory, independent values.
  apps::ProgramConfig a;
  a.instance_name = "cache_a";
  a.filter_value = 7001;
  apps::ProgramConfig b;
  b.instance_name = "cache_b";
  b.filter_value = 7002;

  // Both ports must be provisioned app ports for parsing.
  dp::RunproDataplane dataplane(dp::DataplaneSpec{}, rmt::ParserConfig{{7001, 7002}});
  SimClock clock;
  ctrl::Controller controller(dataplane, clock);

  auto la = controller.link_single(apps::make_program_source("cache", a));
  auto lb = controller.link_single(apps::make_program_source("cache", b));
  ASSERT_TRUE(la.ok()) << la.error().str();
  ASSERT_TRUE(lb.ok()) << lb.error().str();

  ASSERT_TRUE(controller.write_memory(la.value().id, "mem1", 0, 111).ok());
  ASSERT_TRUE(controller.write_memory(lb.value().id, "mem1", 0, 222).ok());

  auto ra = dataplane.inject(cache_packet(1, 0x8888, 0, 0, 7001));
  auto rb = dataplane.inject(cache_packet(1, 0x8888, 0, 0, 7002));
  EXPECT_EQ(ra.packet.app->value, 111u);
  EXPECT_EQ(rb.packet.app->value, 222u);
}

}  // namespace
}  // namespace p4runpro
