// Evaluation metrics used across the benchmarks: F1 score (heavy-hitter
// accuracy, Fig. 13d), load-imbalance rate (Fig. 13c) and the moving
// average used for the allocation-delay series (Fig. 7a, window 31).
#pragma once

#include <set>
#include <vector>

namespace p4runpro::analysis {

/// Precision/recall/F1 of a reported set against ground truth.
struct Accuracy {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

template <typename T>
[[nodiscard]] Accuracy f1_score(const std::set<T>& reported, const std::set<T>& truth) {
  if (reported.empty() || truth.empty()) {
    return {reported.empty() && truth.empty() ? 1.0 : 0.0,
            truth.empty() ? 1.0 : 0.0, 0.0};
  }
  std::size_t hits = 0;
  for (const auto& r : reported) {
    if (truth.count(r) != 0) ++hits;
  }
  Accuracy acc;
  acc.precision = static_cast<double>(hits) / static_cast<double>(reported.size());
  acc.recall = static_cast<double>(hits) / static_cast<double>(truth.size());
  acc.f1 = (acc.precision + acc.recall) > 0
               ? 2.0 * acc.precision * acc.recall / (acc.precision + acc.recall)
               : 0.0;
  return acc;
}

/// |rx_port1 - rx_port2| / total (paper §6.4, stateless load balancer).
[[nodiscard]] double load_imbalance(double rx_port1, double rx_port2);

/// Centered moving average with the given window (Fig. 7a uses 31); edges
/// use the available neighborhood.
[[nodiscard]] std::vector<double> moving_average(const std::vector<double>& series,
                                                 int window);

}  // namespace p4runpro::analysis
