// Recirculation impact model (paper §6.3, Fig. 11). Recirculated passes
// consume recirculation-port bandwidth and carry the P4runpro header, so
// the maximum lossless throughput drops with the iteration count and the
// relative header overhead (worst for small packets); added latency grows
// slowly thanks to the line-rate pipeline.
#pragma once

#include <vector>

namespace p4runpro::analysis {

struct RecirculationModel {
  double port_gbps = 100.0;        ///< tested port pair speed
  double recirc_gbps = 100.0;      ///< recirculation-path capacity
  int runpro_header_bytes = 16;    ///< registers/flags attached across passes
  int wire_overhead_bytes = 20;    ///< preamble + IPG per packet
  double base_rtt_ms = 20.8;       ///< zero-queue RTT incl. host stack (normalization base)
  double per_pass_latency_ms = 0.24;  ///< pipeline + recirc-port pass cost
};

/// Maximum lossless throughput (Gbps) at `iterations` recirculations for a
/// given packet size.
[[nodiscard]] double max_lossless_gbps(const RecirculationModel& model,
                                       int packet_bytes, int iterations);

/// Relative throughput loss in [0, 1] versus the no-recirculation case.
[[nodiscard]] double throughput_loss(const RecirculationModel& model,
                                     int packet_bytes, int iterations);

/// Normalized zero-queue RTT (relative to the minimum RTT) after
/// `iterations` recirculations.
[[nodiscard]] double normalized_rtt(const RecirculationModel& model, int iterations);

}  // namespace p4runpro::analysis
