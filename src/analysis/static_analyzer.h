// Static resource / latency / power analysis — the stand-in for P4C +
// P4 Insight (paper §6.3, Fig. 10 and Table 2). Resource usage is computed
// structurally from each system's data-plane geometry against a
// Tofino-class chip budget; latency and power use a linear stage/activity
// model whose coefficients are calibrated once (documented below) and then
// applied uniformly to all three systems.
#pragma once

#include <string>

#include "dataplane/dataplane_spec.h"
#include "rmt/resources.h"

namespace p4runpro::analysis {

/// Structural description of one system's provisioned data plane.
struct SystemProfile {
  std::string name;
  rmt::ChipBudget budget;
  rmt::ResourceUsage usage;     ///< absolute units (see ChipBudget)
  int ingress_stages = 0;       ///< MAU stages active in ingress
  int egress_stages = 0;
  double ingress_extra_cycles = 0;  ///< parser/deparser specifics
  double egress_extra_cycles = 0;
  double activity_power_w = 0;  ///< dynamic (per-packet work) component
  double fixed_power_w = 0;     ///< retained fixed-function blocks
};

/// Build the P4runpro profile from the provisioned geometry. All counts
/// are derived from the spec (RPB tables, stateful memory, hash units,
/// SALUs, key widths); see the .cpp for the formulas.
[[nodiscard]] SystemProfile profile_p4runpro(const dp::DataplaneSpec& spec);
/// ActiveRMT (20 memory stages, capsule processing on every stage).
[[nodiscard]] SystemProfile profile_activermt();
/// FlyMon (9 transformable measurement units, measurement-only scope).
[[nodiscard]] SystemProfile profile_flymon();

/// Table 2 outputs.
struct LatencyPower {
  double ingress_cycles = 0;
  double egress_cycles = 0;
  double total_cycles = 0;
  double ingress_power_w = 0;
  double egress_power_w = 0;
  double total_power_w = 0;
  int traffic_limit_load_pct = 100;  ///< forwarding-rate cap under the power budget
};

/// Apply the calibrated latency/power model. `power_budget_w` defaults to
/// the hardware's 40.00 W budget (§6.3).
[[nodiscard]] LatencyPower analyze(const SystemProfile& profile,
                                   double power_budget_w = 40.0);

}  // namespace p4runpro::analysis
