#include "analysis/throughput_model.h"

#include <algorithm>

namespace p4runpro::analysis {

double max_lossless_gbps(const RecirculationModel& model, int packet_bytes,
                         int iterations) {
  if (iterations <= 0) return model.port_gbps;
  // Offered rate T (Gbps of wire bytes) produces a packet rate of
  // T / (packet + overhead); each packet makes `iterations` extra passes of
  // (packet + header + overhead) bytes over the recirculation path.
  // Lossless requires demand <= recirc capacity:
  //   T * iterations * (pkt + hdr + ovh) / (pkt + ovh) <= recirc_gbps.
  const double in_bytes = static_cast<double>(packet_bytes + model.wire_overhead_bytes);
  const double recirc_bytes = static_cast<double>(
      packet_bytes + model.runpro_header_bytes + model.wire_overhead_bytes);
  const double cap =
      model.recirc_gbps * in_bytes / (static_cast<double>(iterations) * recirc_bytes);
  return std::min(model.port_gbps, cap);
}

double throughput_loss(const RecirculationModel& model, int packet_bytes,
                       int iterations) {
  const double base = max_lossless_gbps(model, packet_bytes, 0);
  const double with = max_lossless_gbps(model, packet_bytes, iterations);
  return base <= 0 ? 0.0 : (base - with) / base;
}

double normalized_rtt(const RecirculationModel& model, int iterations) {
  const double rtt =
      model.base_rtt_ms + model.per_pass_latency_ms * static_cast<double>(iterations);
  return rtt / model.base_rtt_ms;
}

}  // namespace p4runpro::analysis
