#include "analysis/metrics.h"

#include <algorithm>
#include <cmath>

namespace p4runpro::analysis {

double load_imbalance(double rx_port1, double rx_port2) {
  const double total = rx_port1 + rx_port2;
  if (total <= 0) return 0.0;
  return std::abs(rx_port1 - rx_port2) / total;
}

std::vector<double> moving_average(const std::vector<double>& series, int window) {
  std::vector<double> out(series.size(), 0.0);
  const int half = window / 2;
  for (int i = 0; i < static_cast<int>(series.size()); ++i) {
    const int lo = std::max(0, i - half);
    const int hi = std::min(static_cast<int>(series.size()) - 1, i + half);
    double sum = 0.0;
    for (int j = lo; j <= hi; ++j) sum += series[static_cast<std::size_t>(j)];
    out[static_cast<std::size_t>(i)] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

}  // namespace p4runpro::analysis
