// Sketch estimators over program memories dumped by the control plane:
// the offline halves of the measurement programs (CMS point queries,
// HyperLogLog cardinality). These operate on the raw 32-bit register
// values that `Controller::dump_memory` returns.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace p4runpro::analysis {

/// Count-Min Sketch point query: the minimum across the row counters the
/// flow hashes to. (The data-plane program already computes this online
/// into `har`; this is the control-plane query path.)
[[nodiscard]] Word cms_point_query(std::span<const Word> row1, std::span<const Word> row2,
                                   std::uint32_t index1, std::uint32_t index2);

/// HyperLogLog cardinality estimate from the rank registers the `hll`
/// program maintains (registers hold rank = leading zeros + 1, 0 = empty).
/// Standard HLL estimator with small-range (linear counting) correction.
[[nodiscard]] double hll_estimate(std::span<const Word> registers);

}  // namespace p4runpro::analysis
