#include "analysis/sketches.h"

#include <algorithm>
#include <cmath>

namespace p4runpro::analysis {

Word cms_point_query(std::span<const Word> row1, std::span<const Word> row2,
                     std::uint32_t index1, std::uint32_t index2) {
  const Word a = index1 < row1.size() ? row1[index1] : 0;
  const Word b = index2 < row2.size() ? row2[index2] : 0;
  return std::min(a, b);
}

double hll_estimate(std::span<const Word> registers) {
  const auto m = static_cast<double>(registers.size());
  if (registers.empty()) return 0.0;

  // Bias-correction constant alpha_m (Flajolet et al. 2007).
  double alpha;
  if (registers.size() <= 16) {
    alpha = 0.673;
  } else if (registers.size() <= 32) {
    alpha = 0.697;
  } else if (registers.size() <= 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }

  double harmonic = 0.0;
  int zeros = 0;
  for (Word rank : registers) {
    harmonic += std::pow(2.0, -static_cast<double>(rank));
    if (rank == 0) ++zeros;
  }
  double estimate = alpha * m * m / harmonic;

  // Small-range correction: linear counting while empty registers remain.
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

}  // namespace p4runpro::analysis
