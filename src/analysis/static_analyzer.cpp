#include "analysis/static_analyzer.h"

#include <algorithm>
#include <cmath>

namespace p4runpro::analysis {

namespace {

// --- calibration constants (documented in DESIGN.md §1) -------------------
// Latency: cycles = kCycleBase + kCyclesPerStage * stages + system extras.
// Fit once against the paper's FlyMon ingress (2 stages -> 54 cycles) and
// P4runpro ingress (12 stages -> 306 cycles).
constexpr double kCycleBase = 4.0;
constexpr double kCyclesPerStage = 25.2;

// Power: static component per resource unit plus per-system dynamic and
// fixed terms. Units follow ChipBudget (SRAM/TCAM blocks, SALU/hash units).
constexpr double kBasePowerW = 12.0;
constexpr double kPowerPerSramBlock = 0.030;
constexpr double kPowerPerTcamBlock = 0.020;
constexpr double kPowerPerSalu = 0.25;
constexpr double kPowerPerHashUnit = 0.080;

/// TCAM blocks (44b x 512) needed for a table of `entries` with `key_bits`
/// wide ternary keys.
[[nodiscard]] int tcam_blocks(int entries, int key_bits) {
  const int width_blocks = (key_bits + 43) / 44;
  const int depth_blocks = (entries + 511) / 512;
  return width_blocks * depth_blocks;
}

/// SRAM unit rams (16 KB) for `words` 32-bit registers.
[[nodiscard]] int sram_blocks_for_words(std::uint32_t words) {
  return static_cast<int>((words * 4 + 16383) / 16384);
}

}  // namespace

SystemProfile profile_p4runpro(const dp::DataplaneSpec& spec) {
  SystemProfile p;
  p.name = "P4runpro";
  const int rpbs = spec.total_rpbs();

  // PHV: parsed headers + intrinsic metadata + the P4runpro additions
  // (three registers, backup slot, physical address, control flags, parse
  // bitmap), counted in both gresses, with a container-fragmentation
  // factor of 1.35 (8/16/32-bit container rounding).
  const int header_bits = 112 /*eth*/ + 160 /*ipv4*/ + 160 /*tcp*/ + 64 /*udp*/ +
                          128 /*app*/ + 128 /*intrinsic*/;
  const int runpro_bits = 3 * 32 /*har,sar,mar*/ + 32 /*backup*/ + 32 /*phys addr*/ +
                          16 + 8 + 8 + 8 /*prog,branch,recirc,salu flags*/ +
                          8 /*parse bitmap*/;
  p.usage.set(rmt::Resource::Phv,
              static_cast<int>(1.35 * static_cast<double>(header_bits + runpro_bits) *
                               2.0 /*both gresses*/));

  // Hash units: every RPB configures two CRC engines (5-tuple and har
  // re-hash) plus one in the initialization stage for the parser bitmap.
  p.usage.set(rmt::Resource::Hash, 2 * rpbs + 1);

  // SRAM: the per-RPB stateful memory plus two unit rams per stage of
  // action/overhead data.
  p.usage.set(rmt::Resource::Sram,
              rpbs * sram_blocks_for_words(spec.memory_per_rpb) + 2 * 12);

  // TCAM: each RPB is one large ternary table keyed on
  // (program 16b, branch 8b, recirc 8b, har/sar/mar 3x32b) = 128 bits;
  // plus the five filtering tables and the recirculation table.
  const int rpb_key_bits = 16 + 8 + 8 + 3 * 32;
  int tcam = rpbs * tcam_blocks(static_cast<int>(spec.entries_per_rpb), rpb_key_bits);
  tcam += 5 * tcam_blocks(512, 7 * 32 / 2);  // filtering tables
  tcam += tcam_blocks(256, 24);              // recirculation block
  p.usage.set(rmt::Resource::Tcam, tcam);

  // VLIW: derived from the pre-installed atomic-operation variants every
  // RPB carries — header interaction (EXTRACT/MODIFY x registers x packed
  // field groups), hash (4 variants), SALU selectors (7), ALU
  // (6 ops x 3x2 register pairs), LOADI/offset/backup/restore and the
  // forwarding actions — packed into VLIW words at kVliwPacking ops/word,
  // clamped to the per-stage budget ("uses almost all the VLIW", §6.3).
  constexpr int kFieldGroups = 12;  // 23 fields packed into 32-bit lanes
  constexpr double kVliwPacking = 4.0;
  const int op_variants = 2 * 3 * kFieldGroups /*hdr interaction*/ +
                          4 /*hash*/ + 7 /*salu select*/ +
                          6 * 6 /*ALU reg pairs*/ + 3 /*loadi per reg*/ +
                          2 /*offset + salu flag*/ + 2 /*backup/restore*/ +
                          5 /*forwarding*/;
  const int vliw_words_per_stage =
      std::min(p.budget.vliw_slots_per_stage,
               static_cast<int>(std::ceil(op_variants / kVliwPacking)));
  p.usage.set(rmt::Resource::Vliw, vliw_words_per_stage * 12);

  // SALU: one per RPB plus one for recirculation bookkeeping.
  p.usage.set(rmt::Resource::Salu, rpbs + 1);

  // LTID: one logical table per RPB + 5 filtering + 1 recirculation —
  // P4runpro's single-big-table design keeps this low.
  p.usage.set(rmt::Resource::Ltid, rpbs + 6);

  p.ingress_stages = 12;  // init + 10 ingress RPBs + recirc block
  p.egress_stages = 12;   // 12 egress RPBs
  p.ingress_extra_cycles = 2;   // parse-bitmap maintenance
  p.egress_extra_cycles = 12;   // P4runpro header rewrite before recirculation
  p.activity_power_w = 3.5;
  p.fixed_power_w = 0.0;
  return p;
}

SystemProfile profile_activermt() {
  SystemProfile p;
  p.name = "ActiveRMT";
  // 20 memory-capable stages; capsule instructions decoded in every stage.
  p.usage.set(rmt::Resource::Phv, static_cast<int>(1.35 * (624 + 128 + 420) * 2.0));
  p.usage.set(rmt::Resource::Hash, 2 * 20);
  p.usage.set(rmt::Resource::Sram, 20 * sram_blocks_for_words(65536) + 2 * 12);
  p.usage.set(rmt::Resource::Tcam, 20 * tcam_blocks(512, 80) + 10);
  p.usage.set(rmt::Resource::Vliw, 26 * 12);
  p.usage.set(rmt::Resource::Salu, 20);
  p.usage.set(rmt::Resource::Ltid, 8 * 20);  // many small per-stage tables
  p.ingress_stages = 12;
  p.egress_stages = 12;
  p.ingress_extra_cycles = 8;  // capsule parsing
  p.egress_extra_cycles = 4;
  // Active packets perform a memory read-modify-write in every stage —
  // the dynamic component that pushes ActiveRMT past the power budget.
  p.activity_power_w = 13.6;
  p.fixed_power_w = 0.0;
  return p;
}

SystemProfile profile_flymon() {
  SystemProfile p;
  p.name = "FlyMon";
  // 9 transformable measurement units, egress-heavy placement.
  p.usage.set(rmt::Resource::Phv, static_cast<int>(1.35 * (624 + 128 + 96)));
  p.usage.set(rmt::Resource::Hash, 9);
  p.usage.set(rmt::Resource::Sram, 9 * sram_blocks_for_words(65536 / 2) + 12);
  p.usage.set(rmt::Resource::Tcam, 9 * tcam_blocks(256, 48));
  p.usage.set(rmt::Resource::Vliw, 8 * 12);
  p.usage.set(rmt::Resource::Salu, 12);
  p.usage.set(rmt::Resource::Ltid, 30);
  p.ingress_stages = 2;
  p.egress_stages = 11;
  p.ingress_extra_cycles = 0;
  p.egress_extra_cycles = 3;
  p.activity_power_w = 2.0;
  // Measurement pipeline blocks retained from the baseline image.
  p.fixed_power_w = 13.0;
  return p;
}

LatencyPower analyze(const SystemProfile& profile, double power_budget_w) {
  LatencyPower out;
  out.ingress_cycles = profile.ingress_stages == 0
                           ? 0.0
                           : kCycleBase + kCyclesPerStage * profile.ingress_stages +
                                 profile.ingress_extra_cycles;
  out.egress_cycles = profile.egress_stages == 0
                          ? 0.0
                          : kCycleBase + kCyclesPerStage * profile.egress_stages +
                                profile.egress_extra_cycles;
  out.total_cycles = out.ingress_cycles + out.egress_cycles;

  const double static_power =
      kBasePowerW +
      kPowerPerSramBlock * profile.usage.get(rmt::Resource::Sram) +
      kPowerPerTcamBlock * profile.usage.get(rmt::Resource::Tcam) +
      kPowerPerSalu * profile.usage.get(rmt::Resource::Salu) +
      kPowerPerHashUnit * profile.usage.get(rmt::Resource::Hash);
  out.total_power_w = static_power + profile.activity_power_w + profile.fixed_power_w;

  // Split by gress proportionally to active stages (FlyMon's power is
  // reported almost entirely in egress).
  const double stages_total =
      std::max(1, profile.ingress_stages + profile.egress_stages);
  out.ingress_power_w =
      out.total_power_w * static_cast<double>(profile.ingress_stages) / stages_total;
  out.egress_power_w = out.total_power_w - out.ingress_power_w;

  out.traffic_limit_load_pct = out.total_power_w <= power_budget_w
                                   ? 100
                                   : static_cast<int>(
                                         std::floor(100.0 * power_budget_w /
                                                    out.total_power_w + 0.5));
  return out;
}

}  // namespace p4runpro::analysis
