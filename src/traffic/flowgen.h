// Synthetic traffic generation: the stand-in for the paper's TRex +
// tcpreplay setup and the anonymized campus trace (~1.3 GB TCP/UDP, 4,096
// distinct 5-tuples, Zipf-ish flow sizes with occasional large TCP
// transfers — the spikes in Fig. 13a). Deterministic given a seed.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "rmt/packet.h"

namespace p4runpro::traffic {

struct TimedPacket {
  std::uint64_t t_ns = 0;
  rmt::Packet pkt;
};

struct Trace {
  std::vector<TimedPacket> packets;
  std::uint64_t duration_ns = 0;
  std::uint64_t total_bytes = 0;
};

/// Campus-like mixed TCP/UDP trace. Flows live in 10.0.0.0/16 on both
/// sides so the measurement programs' filters (hdr.ipv4.src/dst 10.0/16)
/// match.
struct CampusTraceConfig {
  int flows = 4096;
  double zipf_skew = 1.1;
  double rate_mbps = 100.0;
  double duration_s = 30.0;
  double tcp_fraction = 0.7;
  std::uint64_t seed = 1;
};
[[nodiscard]] Trace make_campus_trace(const CampusTraceConfig& config);

/// In-network cache workload: UDP packets with the application header
/// (cache reads over a Zipf key popularity), plus the set of keys that must
/// be cached to achieve the requested hit rate (Fig. 13b: 0.6).
struct CacheWorkloadConfig {
  int keys = 4096;
  double zipf_skew = 1.5;  // heavy-tailed key popularity: few keys cover 60%
  double target_hit_rate = 0.6;
  double rate_mbps = 100.0;
  double duration_s = 30.0;
  std::uint16_t udp_port = 7777;
  std::uint64_t seed = 2;
};
struct CacheWorkload {
  Trace trace;
  std::vector<Word> cached_keys;  ///< keys the switch must cache for the hit rate
  double expected_hit_rate = 0.0;
};
[[nodiscard]] CacheWorkload make_cache_workload(const CacheWorkloadConfig& config);

/// Per-flow packet counts of a trace (heavy-hitter ground truth, Fig. 13d).
[[nodiscard]] std::map<rmt::FiveTuple, std::uint64_t> flow_counts(const Trace& trace);

/// Flows whose packet count exceeds `threshold`.
[[nodiscard]] std::vector<rmt::FiveTuple> heavy_hitters(const Trace& trace,
                                                        std::uint64_t threshold);

}  // namespace p4runpro::traffic
