#include "traffic/flowgen.h"

#include <algorithm>
#include <cmath>

namespace p4runpro::traffic {

namespace {

/// Wire-time of a packet at a given rate, including Ethernet preamble+IPG.
[[nodiscard]] std::uint64_t wire_time_ns(std::uint32_t wire_len, double rate_mbps) {
  const double bits = static_cast<double>(wire_len + 20) * 8.0;
  return static_cast<std::uint64_t>(bits / (rate_mbps * 1e6) * 1e9);
}

struct FlowDef {
  rmt::FiveTuple tuple;
  bool tcp;
};

[[nodiscard]] std::vector<FlowDef> make_flows(int count, double tcp_fraction, Rng& rng) {
  std::vector<FlowDef> flows;
  flows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    FlowDef flow;
    flow.tcp = rng.uniform01() < tcp_fraction;
    flow.tuple.src_ip = 0x0a000000u | (static_cast<std::uint32_t>(i) & 0xffff);
    flow.tuple.dst_ip = 0x0a000000u | ((static_cast<std::uint32_t>(i * 2654435761u) >> 16) & 0xffff);
    flow.tuple.src_port = static_cast<std::uint16_t>(1024 + (i % 50000));
    flow.tuple.dst_port = flow.tcp ? 443 : 53;
    flow.tuple.proto = flow.tcp ? 6 : 17;
    flows.push_back(flow);
  }
  return flows;
}

[[nodiscard]] rmt::Packet make_packet(const FlowDef& flow, std::uint32_t payload) {
  rmt::Packet pkt;
  pkt.eth.dst_mac = 0xaa0000000000ull | flow.tuple.dst_ip;
  pkt.eth.src_mac = 0xbb0000000000ull | flow.tuple.src_ip;
  pkt.ipv4 = rmt::Ipv4Header{.src = flow.tuple.src_ip,
                             .dst = flow.tuple.dst_ip,
                             .proto = flow.tuple.proto,
                             .ttl = 64,
                             .dscp = 0,
                             .ecn = 0,
                             .total_len = static_cast<std::uint16_t>(20 + payload)};
  if (flow.tcp) {
    pkt.tcp = rmt::TcpHeader{flow.tuple.src_port, flow.tuple.dst_port, 0x10};
  } else {
    pkt.udp = rmt::UdpHeader{flow.tuple.src_port, flow.tuple.dst_port};
  }
  pkt.payload_len = payload;
  pkt.ingress_port = 1;
  return pkt;
}

}  // namespace

Trace make_campus_trace(const CampusTraceConfig& config) {
  Rng rng(config.seed);
  const auto flows = make_flows(config.flows, config.tcp_fraction, rng);
  const ZipfSampler sampler(static_cast<std::size_t>(config.flows), config.zipf_skew);

  Trace trace;
  trace.duration_ns = static_cast<std::uint64_t>(config.duration_s * 1e9);
  std::uint64_t t = 0;
  while (t < trace.duration_ns) {
    const FlowDef& flow = flows[sampler.sample(rng)];
    // Packet size mix: TCP flows occasionally burst MTU-sized transfers
    // (the spikes of Fig. 13a); otherwise a typical small/medium mix.
    std::uint32_t payload;
    const double roll = rng.uniform01();
    if (flow.tcp && roll < 0.18) {
      payload = 1400 + static_cast<std::uint32_t>(rng.uniform(60));
    } else if (roll < 0.55) {
      payload = 20 + static_cast<std::uint32_t>(rng.uniform(100));
    } else {
      payload = 200 + static_cast<std::uint32_t>(rng.uniform(400));
    }
    rmt::Packet pkt = make_packet(flow, payload);
    trace.packets.push_back(TimedPacket{t, pkt});
    trace.total_bytes += pkt.wire_len();
    t += wire_time_ns(pkt.wire_len(), config.rate_mbps);
  }
  return trace;
}

CacheWorkload make_cache_workload(const CacheWorkloadConfig& config) {
  Rng rng(config.seed);
  const ZipfSampler sampler(static_cast<std::size_t>(config.keys), config.zipf_skew);

  // Choose the cached key set: most popular keys until the probability
  // mass reaches the target hit rate (keys are Zipf-ranked, so key i has
  // probability ~ 1/(i+1)^s).
  std::vector<double> mass(static_cast<std::size_t>(config.keys));
  double total = 0;
  for (int i = 0; i < config.keys; ++i) {
    mass[static_cast<std::size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1), config.zipf_skew);
    total += mass[static_cast<std::size_t>(i)];
  }
  CacheWorkload out;
  double cum = 0.0;
  for (int i = 0; i < config.keys; ++i) {
    if (cum / total >= config.target_hit_rate) break;
    cum += mass[static_cast<std::size_t>(i)];
    out.cached_keys.push_back(0x8888u + static_cast<Word>(i));
  }
  out.expected_hit_rate = cum / total;

  out.trace.duration_ns = static_cast<std::uint64_t>(config.duration_s * 1e9);
  std::uint64_t t = 0;
  while (t < out.trace.duration_ns) {
    const std::size_t rank = sampler.sample(rng);
    rmt::Packet pkt;
    pkt.ipv4 = rmt::Ipv4Header{.src = 0x0a000000u | static_cast<std::uint32_t>(rank & 0xffff),
                               .dst = 0x0a010001u,
                               .proto = 17,
                               .ttl = 64,
                               .dscp = 0,
                               .ecn = 0,
                               .total_len = 64};
    pkt.udp = rmt::UdpHeader{static_cast<std::uint16_t>(2000 + (rank % 1000)),
                             config.udp_port};
    pkt.app = rmt::AppHeader{.op = 1,  // cache read
                             .key1 = 0x8888u + static_cast<Word>(rank),
                             .key2 = 0,
                             .value = 0};
    pkt.payload_len = 0;
    pkt.ingress_port = 1;
    out.trace.packets.push_back(TimedPacket{t, pkt});
    out.trace.total_bytes += pkt.wire_len();
    t += wire_time_ns(pkt.wire_len(), config.rate_mbps);
  }
  return out;
}

std::map<rmt::FiveTuple, std::uint64_t> flow_counts(const Trace& trace) {
  std::map<rmt::FiveTuple, std::uint64_t> counts;
  for (const auto& tp : trace.packets) ++counts[tp.pkt.five_tuple()];
  return counts;
}

std::vector<rmt::FiveTuple> heavy_hitters(const Trace& trace, std::uint64_t threshold) {
  std::vector<rmt::FiveTuple> out;
  for (const auto& [tuple, count] : flow_counts(trace)) {
    if (count > threshold) out.push_back(tuple);
  }
  return out;
}

}  // namespace p4runpro::traffic
