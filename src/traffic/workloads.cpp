#include "traffic/workloads.h"

namespace p4runpro::traffic {

WorkloadGenerator::WorkloadGenerator(std::vector<std::string> keys,
                                     std::uint32_t mem_buckets, int elastic_cases,
                                     std::uint64_t seed)
    : keys_(std::move(keys)),
      mem_buckets_(mem_buckets),
      elastic_cases_(elastic_cases),
      rng_(seed) {}

WorkloadGenerator WorkloadGenerator::single(const std::string& key,
                                            std::uint32_t mem_buckets,
                                            int elastic_cases, std::uint64_t seed) {
  return WorkloadGenerator({key}, mem_buckets, elastic_cases, seed);
}

WorkloadGenerator WorkloadGenerator::mixed(std::uint32_t mem_buckets, int elastic_cases,
                                           std::uint64_t seed) {
  return WorkloadGenerator({"cache", "lb", "hh"}, mem_buckets, elastic_cases, seed);
}

WorkloadGenerator WorkloadGenerator::all_mixed(std::uint32_t mem_buckets,
                                               int elastic_cases, std::uint64_t seed) {
  std::vector<std::string> keys;
  for (const auto& info : apps::program_catalog()) keys.push_back(info.key);
  return WorkloadGenerator(std::move(keys), mem_buckets, elastic_cases, seed);
}

DeployRequest WorkloadGenerator::next() {
  DeployRequest request;
  request.key = keys_[rng_.uniform(keys_.size())];
  request.config.instance_name = request.key + "_" + std::to_string(epoch_);
  request.config.mem_buckets = mem_buckets_;
  request.config.elastic_cases = elastic_cases_;
  // Give instances distinct traffic filters where the template supports an
  // override (UDP-port based programs get unique ports; prefix-based ones
  // cycle the second octet).
  if (request.key == "cache" || request.key == "nc" || request.key == "dqacc" ||
      request.key == "calculator") {
    request.config.filter_value = 10000u + static_cast<Word>(epoch_ % 50000);
  } else if (request.key == "lb" || request.key == "hh" || request.key == "cms" ||
             request.key == "bf" || request.key == "sumax" || request.key == "hll") {
    request.config.filter_value =
        (10u << 24) | (static_cast<Word>(epoch_ % 256) << 16);
  }
  request.source = apps::make_program_source(request.key, request.config);
  ++epoch_;
  return request;
}

}  // namespace p4runpro::traffic
