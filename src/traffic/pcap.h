// Classic pcap (libpcap) file I/O for traces — the stand-in for the
// paper's tcpreplay + libpcap tooling (§5). Traces written here open in
// tcpdump/Wireshark; traces captured elsewhere can be replayed through the
// simulated switch.
#pragma once

#include <string>

#include "common/result.h"
#include "rmt/parser.h"
#include "traffic/flowgen.h"

namespace p4runpro::traffic {

/// Write a trace as a classic little-endian pcap file (magic 0xa1b2c3d4,
/// LINKTYPE_ETHERNET). Timestamps come from the trace's virtual clock.
[[nodiscard]] Status write_pcap(const std::string& path, const Trace& trace);

/// Read a classic pcap file back into a trace. Non-IPv4 frames are kept as
/// L2-only packets; UDP payloads on `parser_config.app_udp_ports` parse as
/// the application header.
[[nodiscard]] Result<Trace> read_pcap(const std::string& path,
                                      const rmt::ParserConfig& parser_config);

}  // namespace p4runpro::traffic
