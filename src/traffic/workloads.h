// Deployment-workload generators for the allocation experiments (Figs.
// 7-9, 12, 18-19): streams of program-link requests drawn from the 15-
// program catalog with unique instance names and (where possible) distinct
// traffic filters.
#pragma once

#include <string>
#include <vector>

#include "apps/program_library.h"
#include "common/rng.h"

namespace p4runpro::traffic {

/// One program-deployment request of a workload epoch.
struct DeployRequest {
  std::string key;             ///< catalog key ("cache", "lb", ...)
  apps::ProgramConfig config;  ///< instance configuration
  std::string source;          ///< generated P4runpro source
};

/// The workloads of §6.2: single-program streams (cache / lb / hh / nc),
/// the 3-program mix, and the all-15 mix.
class WorkloadGenerator {
 public:
  /// `keys`: candidate program keys, one chosen uniformly per epoch.
  WorkloadGenerator(std::vector<std::string> keys, std::uint32_t mem_buckets,
                    int elastic_cases, std::uint64_t seed);

  [[nodiscard]] static WorkloadGenerator single(const std::string& key,
                                                std::uint32_t mem_buckets = 256,
                                                int elastic_cases = 2,
                                                std::uint64_t seed = 7);
  [[nodiscard]] static WorkloadGenerator mixed(std::uint32_t mem_buckets = 256,
                                               int elastic_cases = 2,
                                               std::uint64_t seed = 7);
  [[nodiscard]] static WorkloadGenerator all_mixed(std::uint32_t mem_buckets = 256,
                                                   int elastic_cases = 2,
                                                   std::uint64_t seed = 7);

  /// Produce the next deployment request (unique instance name/filter).
  [[nodiscard]] DeployRequest next();

 private:
  std::vector<std::string> keys_;
  std::uint32_t mem_buckets_;
  int elastic_cases_;
  Rng rng_;
  int epoch_ = 0;
};

}  // namespace p4runpro::traffic
