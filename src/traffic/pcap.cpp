#include "traffic/pcap.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "rmt/wire.h"

namespace p4runpro::traffic {

namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;  // microsecond timestamps
constexpr std::uint32_t kLinkTypeEthernet = 1;

struct PcapGlobalHeader {
  std::uint32_t magic;
  std::uint16_t version_major;
  std::uint16_t version_minor;
  std::int32_t thiszone;
  std::uint32_t sigfigs;
  std::uint32_t snaplen;
  std::uint32_t network;
};

struct PcapRecordHeader {
  std::uint32_t ts_sec;
  std::uint32_t ts_usec;
  std::uint32_t incl_len;
  std::uint32_t orig_len;
};

static_assert(sizeof(PcapGlobalHeader) == 24);
static_assert(sizeof(PcapRecordHeader) == 16);

}  // namespace

Status write_pcap(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Error{"cannot open '" + path + "' for writing", "pcap"};

  const PcapGlobalHeader global{kMagic, 2, 4, 0, 0, 65535, kLinkTypeEthernet};
  out.write(reinterpret_cast<const char*>(&global), sizeof global);

  for (const auto& tp : trace.packets) {
    const auto bytes = rmt::serialize(tp.pkt);
    PcapRecordHeader record;
    record.ts_sec = static_cast<std::uint32_t>(tp.t_ns / 1000000000ull);
    record.ts_usec = static_cast<std::uint32_t>((tp.t_ns / 1000ull) % 1000000ull);
    record.incl_len = static_cast<std::uint32_t>(bytes.size());
    record.orig_len = static_cast<std::uint32_t>(bytes.size());
    out.write(reinterpret_cast<const char*>(&record), sizeof record);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  if (!out) return Error{"write failed for '" + path + "'", "pcap"};
  return {};
}

Result<Trace> read_pcap(const std::string& path,
                        const rmt::ParserConfig& parser_config) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{"cannot open '" + path + "'", "pcap"};

  PcapGlobalHeader global{};
  in.read(reinterpret_cast<char*>(&global), sizeof global);
  if (!in || global.magic != kMagic) {
    return Error{"not a classic little-endian pcap file", "pcap"};
  }
  if (global.network != kLinkTypeEthernet) {
    return Error{"unsupported link type " + std::to_string(global.network), "pcap"};
  }

  std::vector<std::uint16_t> app_ports = parser_config.app_udp_ports;
  Trace trace;
  std::vector<std::uint8_t> buffer;
  for (;;) {
    PcapRecordHeader record{};
    in.read(reinterpret_cast<char*>(&record), sizeof record);
    if (!in) break;  // clean EOF
    if (record.incl_len > global.snaplen && record.incl_len > 1u << 20) {
      return Error{"corrupt record length", "pcap"};
    }
    buffer.resize(record.incl_len);
    in.read(reinterpret_cast<char*>(buffer.data()), record.incl_len);
    if (!in) return Error{"truncated packet record", "pcap"};

    auto parsed = rmt::parse_bytes(buffer, app_ports);
    if (!parsed.ok()) continue;  // skip frames we cannot model
    TimedPacket tp;
    tp.t_ns = static_cast<std::uint64_t>(record.ts_sec) * 1000000000ull +
              static_cast<std::uint64_t>(record.ts_usec) * 1000ull;
    tp.pkt = std::move(parsed).take();
    trace.total_bytes += tp.pkt.wire_len();
    trace.duration_ns = std::max(trace.duration_ns, tp.t_ns);
    trace.packets.push_back(std::move(tp));
  }
  return trace;
}

}  // namespace p4runpro::traffic
