#include "traffic/replay.h"

namespace p4runpro::traffic {

std::vector<RateSample> Replayer::run(const Trace& trace, const Options& options) {
  std::vector<RateSample> samples;
  const std::uint64_t t0 = clock_.now_ns();
  const auto bucket_ns = static_cast<std::uint64_t>(options.bucket_ms * 1e6);

  RateSample current;
  std::uint64_t bucket_start = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t fwd_bytes = 0;
  std::uint64_t ret_bytes = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t port_bytes[2] = {0, 0};

  auto flush_bucket = [&](std::uint64_t bucket_end) {
    const double seconds = static_cast<double>(bucket_end - bucket_start) / 1e9;
    if (seconds <= 0) return;
    current.t_s = static_cast<double>(bucket_start) / 1e9;
    current.rx_mbps = static_cast<double>(rx_bytes) * 8.0 / seconds / 1e6;
    current.fwd_mbps = static_cast<double>(fwd_bytes) * 8.0 / seconds / 1e6;
    current.ret_mbps = static_cast<double>(ret_bytes) * 8.0 / seconds / 1e6;
    current.tx_mbps = static_cast<double>(tx_bytes) * 8.0 / seconds / 1e6;
    current.port_mbps[0] = static_cast<double>(port_bytes[0]) * 8.0 / seconds / 1e6;
    current.port_mbps[1] = static_cast<double>(port_bytes[1]) * 8.0 / seconds / 1e6;
    samples.push_back(current);
    current = RateSample{};
    rx_bytes = fwd_bytes = ret_bytes = tx_bytes = 0;
    port_bytes[0] = port_bytes[1] = 0;
    bucket_start = bucket_end;
    if (options.on_bucket) options.on_bucket(static_cast<double>(bucket_end) / 1e9);
  };

  for (const auto& tp : trace.packets) {
    while (tp.t_ns >= bucket_start + bucket_ns) flush_bucket(bucket_start + bucket_ns);
    clock_.advance_to_ns(t0 + tp.t_ns);

    tx_bytes += tp.pkt.wire_len();
    const rmt::PipelineResult result = injector_(tp.pkt);
    switch (result.fate) {
      case rmt::PacketFate::Forwarded:
      case rmt::PacketFate::Returned:
        rx_bytes += result.packet.wire_len();
        if (result.fate == rmt::PacketFate::Forwarded) {
          fwd_bytes += result.packet.wire_len();
        } else {
          ret_bytes += result.packet.wire_len();
        }
        if (result.egress_port < 2) {
          port_bytes[result.egress_port] += result.packet.wire_len();
        }
        break;
      case rmt::PacketFate::Multicasted:
        for (Port port : result.multicast_ports) {
          rx_bytes += result.packet.wire_len();
          if (port < 2) port_bytes[port] += result.packet.wire_len();
        }
        break;
      case rmt::PacketFate::Reported:
        ++current.reported;
        if (options.collect_reports) {
          reported_flows_.insert(result.packet.five_tuple());
        }
        break;
      case rmt::PacketFate::Dropped:
      case rmt::PacketFate::RecircLimit:
        ++current.dropped;
        break;
    }
  }
  flush_bucket(trace.duration_ns);
  return samples;
}

}  // namespace p4runpro::traffic
