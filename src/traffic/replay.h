// Trace replay against a provisioned data plane with rate metering on the
// virtual clock: the stand-in for tcpreplay + libpcap capture (paper §5).
// Used by the Fig. 13 case studies: RX rate per 50 ms bucket, per-port
// rates (load-balancer imbalance) and reported-packet collection (heavy
// hitter F1).
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "common/clock.h"
#include "dataplane/runpro_dataplane.h"
#include "traffic/flowgen.h"

namespace p4runpro::traffic {

/// One metering bucket (default 50 ms, as in the case studies).
struct RateSample {
  double t_s = 0.0;
  double rx_mbps = 0.0;        ///< forwarded + returned wire bytes
  double fwd_mbps = 0.0;       ///< forwarded-only (e.g. cache misses to the server)
  double ret_mbps = 0.0;       ///< returned-only (e.g. cache read replies)
  double tx_mbps = 0.0;        ///< offered load
  double port_mbps[2] = {0, 0};///< per-port RX (lb imbalance)
  std::uint64_t reported = 0;  ///< packets punted to the CPU in this bucket
  std::uint64_t dropped = 0;
};

class Replayer {
 public:
  /// Anything that can process a packet: a P4runpro data plane, a
  /// SwitchChain, or a conventional fixed-function switch.
  using Injector = std::function<rmt::PipelineResult(const rmt::Packet&)>;

  Replayer(Injector injector, SimClock& clock)
      : injector_(std::move(injector)), clock_(clock) {}

  Replayer(dp::RunproDataplane& dataplane, SimClock& clock)
      : injector_([&dataplane](const rmt::Packet& pkt) { return dataplane.inject(pkt); }),
        clock_(clock) {}

  struct Options {
    double bucket_ms = 50.0;
    /// Invoked at every bucket boundary with the current virtual time (s);
    /// the case studies use this to deploy programs mid-replay.
    std::function<void(double)> on_bucket;
    /// Collect the 5-tuples of reported packets (heavy-hitter F1).
    bool collect_reports = false;
  };

  /// Replay the trace to completion; the virtual clock follows packet
  /// timestamps (offset by the clock's time at call).
  std::vector<RateSample> run(const Trace& trace, const Options& options);

  [[nodiscard]] const std::set<rmt::FiveTuple>& reported_flows() const noexcept {
    return reported_flows_;
  }

 private:
  Injector injector_;
  SimClock& clock_;
  std::set<rmt::FiveTuple> reported_flows_;
};

}  // namespace p4runpro::traffic
