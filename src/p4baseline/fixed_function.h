// Conventional-P4 baseline: compile-time, fixed-function switch programs.
// The paper's case studies (§6.4) run each P4runpro program side-by-side
// with a standalone P4 program of equivalent function; this module provides
// those standalone equivalents as native implementations, plus the
// conventional workflow's defining cost — reprovisioning the switch blacks
// out ALL traffic until the new image is loaded and ports re-enabled.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/clock.h"
#include "common/types.h"
#include "rmt/crc.h"
#include "rmt/pipeline.h"

namespace p4runpro::p4fix {

/// One compiled-in P4 program: the whole pipeline behavior of the switch.
class FixedProgram {
 public:
  virtual ~FixedProgram() = default;
  virtual rmt::PipelineResult process(const rmt::Packet& pkt) = 0;
};

/// Plain L2 pass-through (the "program with only a forwarding table" the
/// paper runs before the case studies start).
class FixedForward final : public FixedProgram {
 public:
  explicit FixedForward(Port port = 0) : port_(port) {}
  rmt::PipelineResult process(const rmt::Packet& pkt) override;

 private:
  Port port_;
};

/// The in-network cache as a standalone P4 program: exact-match key table
/// maintained by the control plane, value registers, read/write opcodes.
class FixedCache final : public FixedProgram {
 public:
  explicit FixedCache(Port server_port = 32) : server_port_(server_port) {}

  rmt::PipelineResult process(const rmt::Packet& pkt) override;

  // Control-plane API.
  void insert(Word key, Word value) { values_[key] = value; }
  void erase(Word key) { values_.erase(key); }
  [[nodiscard]] std::size_t entries() const noexcept { return values_.size(); }

 private:
  Port server_port_;
  std::map<Word, Word> values_;
};

/// Stateless L4 load balancer: CRC16 bucket -> (port, DIP).
class FixedLoadBalancer final : public FixedProgram {
 public:
  FixedLoadBalancer(std::uint32_t buckets, Word vip_prefix, Word vip_mask)
      : ports_(buckets, 0), dips_(buckets, 0), vip_prefix_(vip_prefix),
        vip_mask_(vip_mask) {}

  rmt::PipelineResult process(const rmt::Packet& pkt) override;

  void set_bucket(std::uint32_t bucket, Port port, Word dip) {
    ports_[bucket % ports_.size()] = port;
    dips_[bucket % dips_.size()] = dip;
  }

 private:
  std::vector<Port> ports_;
  std::vector<Word> dips_;
  Word vip_prefix_;
  Word vip_mask_;
};

/// Heavy hitter detector: 2-row CMS + 2-row BF, reporting each heavy flow
/// once (the P4 implementation of [52] the paper compares against).
class FixedHeavyHitter final : public FixedProgram {
 public:
  FixedHeavyHitter(std::uint32_t row_size, Word threshold)
      : cms_row1_(row_size, 0), cms_row2_(row_size, 0), bf_row1_(row_size, 0),
        bf_row2_(row_size, 0), threshold_(threshold) {}

  rmt::PipelineResult process(const rmt::Packet& pkt) override;

 private:
  std::vector<Word> cms_row1_, cms_row2_;
  std::vector<std::uint8_t> bf_row1_, bf_row2_;
  Word threshold_;
};

/// A switch running the conventional P4 workflow: exactly one compiled
/// program at a time; swapping it requires reprovisioning, which drops all
/// traffic until the switch is back up (the disruption P4runpro removes).
class ConventionalSwitch {
 public:
  explicit ConventionalSwitch(SimClock& clock) : clock_(clock) {}

  /// Load a new binary image. All traffic is dropped for
  /// `reprovision_seconds` of virtual time (image load + port re-enable;
  /// the preceding P4 compile takes minutes and happens offline, §6.2.1).
  void provision(std::unique_ptr<FixedProgram> program, double reprovision_seconds);

  rmt::PipelineResult inject(const rmt::Packet& pkt);

  [[nodiscard]] bool provisioning() const {
    return clock_.now_s() < ready_at_s_;
  }

 private:
  SimClock& clock_;
  std::unique_ptr<FixedProgram> program_;
  double ready_at_s_ = 0.0;
};

}  // namespace p4runpro::p4fix
