#include "p4baseline/fixed_function.h"

namespace p4runpro::p4fix {

namespace {
[[nodiscard]] rmt::PipelineResult forwarded(const rmt::Packet& pkt, Port port) {
  rmt::PipelineResult result;
  result.fate = rmt::PacketFate::Forwarded;
  result.egress_port = port;
  result.packet = pkt;
  return result;
}
}  // namespace

rmt::PipelineResult FixedForward::process(const rmt::Packet& pkt) {
  return forwarded(pkt, port_);
}

rmt::PipelineResult FixedCache::process(const rmt::Packet& pkt) {
  if (!pkt.app || !pkt.udp) return forwarded(pkt, 0);
  rmt::PipelineResult result;
  result.packet = pkt;
  const auto it = pkt.app->key2 == 0 ? values_.find(pkt.app->key1) : values_.end();
  if (it == values_.end()) {
    // Cache miss: to the storage server.
    result.fate = rmt::PacketFate::Forwarded;
    result.egress_port = server_port_;
    return result;
  }
  if (pkt.app->op == 1) {  // cache read
    result.packet.app->value = it->second;
    result.fate = rmt::PacketFate::Returned;
    result.egress_port = pkt.ingress_port;
    return result;
  }
  if (pkt.app->op == 2) {  // cache write
    it->second = pkt.app->value;
    result.fate = rmt::PacketFate::Dropped;
    return result;
  }
  result.fate = rmt::PacketFate::Forwarded;
  result.egress_port = server_port_;
  return result;
}

rmt::PipelineResult FixedLoadBalancer::process(const rmt::Packet& pkt) {
  if (!pkt.ipv4 || (pkt.ipv4->dst & vip_mask_) != (vip_prefix_ & vip_mask_)) {
    return forwarded(pkt, 0);
  }
  const auto bytes = pkt.five_tuple().bytes();
  const std::uint32_t bucket =
      rmt::crc16_buypass(bytes) & static_cast<std::uint32_t>(ports_.size() - 1);
  rmt::PipelineResult result;
  result.packet = pkt;
  result.packet.ipv4->dst = dips_[bucket];
  result.fate = rmt::PacketFate::Forwarded;
  result.egress_port = ports_[bucket];
  return result;
}

rmt::PipelineResult FixedHeavyHitter::process(const rmt::Packet& pkt) {
  if (!pkt.ipv4) return forwarded(pkt, 0);
  const auto bytes = pkt.five_tuple().bytes();
  const auto mask = static_cast<std::uint32_t>(cms_row1_.size() - 1);
  const std::uint32_t b1 = rmt::crc16_buypass(bytes) & mask;
  const std::uint32_t b2 = rmt::crc16_mcrf4xx(bytes) & mask;
  const Word count = std::min(++cms_row1_[b1], ++cms_row2_[b2]);
  if (count >= threshold_) {
    const std::uint32_t f1 = rmt::crc16_aug_ccitt(bytes) & mask;
    const std::uint32_t f2 = rmt::crc16_dds110(bytes) & mask;
    const bool seen = bf_row1_[f1] != 0 && bf_row2_[f2] != 0;
    bf_row1_[f1] = 1;
    bf_row2_[f2] = 1;
    if (!seen) {
      rmt::PipelineResult result;
      result.packet = pkt;
      result.fate = rmt::PacketFate::Reported;
      return result;
    }
  }
  return forwarded(pkt, 0);
}

void ConventionalSwitch::provision(std::unique_ptr<FixedProgram> program,
                                   double reprovision_seconds) {
  program_ = std::move(program);
  ready_at_s_ = clock_.now_s() + reprovision_seconds;
}

rmt::PipelineResult ConventionalSwitch::inject(const rmt::Packet& pkt) {
  rmt::PipelineResult result;
  if (provisioning() || program_ == nullptr) {
    // The switch is down: ports disabled, every packet lost.
    result.fate = rmt::PacketFate::Dropped;
    result.packet = pkt;
    return result;
  }
  return program_->process(pkt);
}

}  // namespace p4runpro::p4fix
