// Packet header vector: the stateless per-packet state travelling down the
// pipeline. Besides the parsed headers it carries the three P4runpro
// "registers", the control flags (program / branch / recirculation ids), the
// translated physical memory address, and the forwarding intrinsic metadata
// consumed by the traffic manager.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "rmt/packet.h"

namespace p4runpro::rmt {

/// One structured execution-trace event (the machine-readable counterpart
/// of the string trace lines): which block acted, at which stage / round /
/// branch, and what it executed. Tests and tools should match on these
/// fields instead of substrings of the rendered text.
struct TraceEvent {
  enum class Block : std::uint8_t { Parser, Init, Rpb, Recirc };
  Block block = Block::Parser;
  int stage = 0;    ///< physical RPB id (Rpb events only)
  int round = 0;    ///< recirculation id when the event fired
  int branch = 0;   ///< branch id (Rpb events only)
  std::string op;   ///< operation text, e.g. "EXTRACT(hdr.nc.op, har)"
  std::optional<int> next_branch;  ///< branch transition (Rpb events only)
  Word value = 0;   ///< parser: bitmap; init: program id; recirc: next round
};

/// Parse-state bitmap (paper §4.1.1): one bit per header recognized by the
/// compile-time parser. Bit layout follows the paper's example (ETH..UDP)
/// extended with the customized application header.
enum ParseBit : std::uint8_t {
  kParseUdp = 1u << 0,
  kParseTcp = 1u << 1,
  kParseIpv4 = 1u << 2,
  kParseEth = 1u << 3,
  kParseApp = 1u << 4,
};

/// Forwarding decision recorded in intrinsic metadata. Executed by the
/// traffic manager between ingress and egress (which is why forwarding
/// primitives are ingress-only).
enum class FwdDecision : std::uint8_t {
  None,       ///< no program decision; default L2 pass-through
  Forward,    ///< send to `egress_port`
  Return,     ///< reflect to the ingress port (RETURN)
  Drop,       ///< drop (DROP)
  Report,     ///< punt to CPU (REPORT)
  Multicast,  ///< replicate to the ports of `mcast_group` (MULTICAST)
};

struct Phv {
  Packet pkt;
  std::uint8_t parse_bitmap = 0;

  // --- P4runpro registers (§4.1.2) -------------------------------------
  std::array<Word, kNumRegs> regs{};  // indexed by Reg

  // --- control flags (RPB table keys) -----------------------------------
  ProgramId program_id = 0;
  BranchId branch_id = 0;
  RecircId recirc_id = 0;

  // --- address translation scratch --------------------------------------
  /// Physical memory address produced by the offset step; stored in a
  /// separate PHV field so `mar` keeps its virtual value (paper §4.1.2).
  MemAddr phys_addr = 0;
  /// Selects which of the paired SALU memory operations fires (set together
  /// with the offset step).
  std::uint8_t salu_flag = 0;

  /// Backup slot for the supportive register of pseudo-primitive
  /// translations (Fig. 4b).
  Word backup = 0;

  /// Queue-depth intrinsic metadata snapshot (read as meta.qdepth).
  Word qdepth = 0;

  // --- per-packet execution counters --------------------------------------
  /// Accumulated across every pass of this packet by the match-action
  /// stages; the pipeline folds them into the end-of-packet observation for
  /// per-program attribution (plain increments, cheap enough for hot paths).
  std::uint32_t pkt_table_hits = 0;
  std::uint32_t pkt_table_misses = 0;
  std::uint32_t pkt_salu_execs = 0;

  // --- intrinsic forwarding metadata -------------------------------------
  FwdDecision decision = FwdDecision::None;
  Port egress_port = 0;
  Word mcast_group = 0;  ///< multicast group id for FwdDecision::Multicast
  bool recirculate = false;  ///< set by the recirculation block

  /// Optional execution-trace sinks (debugging, see Pipeline::set_tracing):
  /// blocks append one rendered line and one structured event per executed
  /// operation. Both are set together by the pipeline.
  std::vector<std::string>* trace = nullptr;
  std::vector<TraceEvent>* trace_events = nullptr;

  [[nodiscard]] Word reg(Reg r) const noexcept {
    return regs[static_cast<std::size_t>(r)];
  }
  void set_reg(Reg r, Word v) noexcept {
    regs[static_cast<std::size_t>(r)] = v;
  }

  /// Canonical 13-byte five-tuple serialization of `pkt`, computed lazily
  /// and memoized: hash primitives may run several times per packet (one
  /// per sketch row) and the serialization is a pure function of the packet
  /// headers. Any primitive that writes a header field (MODIFY) must call
  /// invalidate_five_tuple().
  [[nodiscard]] const std::array<std::uint8_t, 13>& five_tuple_bytes() {
    if (!ft_valid_) {
      ft_bytes_ = pkt.five_tuple().bytes();
      ft_valid_ = true;
    }
    return ft_bytes_;
  }
  void invalidate_five_tuple() noexcept { ft_valid_ = false; }

 private:
  std::array<std::uint8_t, 13> ft_bytes_{};
  bool ft_valid_ = false;
};

}  // namespace p4runpro::rmt
