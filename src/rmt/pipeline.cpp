#include "rmt/pipeline.h"

#include <cstdio>

#include <cassert>

#include "obs/telemetry.h"

namespace p4runpro::rmt {

namespace {
constexpr std::size_t kNumPorts = 256;
}

Pipeline::Pipeline(ParserConfig parser_config, int max_recirculations)
    : parser_(std::move(parser_config)),
      max_recirculations_(max_recirculations),
      ports_(kNumPorts) {}

Pipeline::~Pipeline() {
  if (telemetry_ != nullptr) telemetry_->metrics.unregister_probes(this);
}

void Pipeline::attach_telemetry(obs::Telemetry* telemetry) {
  if (telemetry_ != nullptr) telemetry_->metrics.unregister_probes(this);
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  auto& m = telemetry_->metrics;
  const auto probe = [&](std::string_view name, const std::uint64_t* value) {
    m.register_probe(name, this,
                     [value] { return static_cast<double>(*value); });
  };
  probe("rmt.pipeline.packets_in", &packets_in_);
  probe("rmt.pipeline.packets_dropped", &packets_dropped_);
  probe("rmt.pipeline.packets_reported", &packets_reported_);
  probe("rmt.pipeline.recirc_passes", &recirc_passes_);
  probe("rmt.pipeline.cpu_queue_drops", &cpu_queue_drops_);
  probe("rmt.stage.table_hits", &stage_stats_.table_hits);
  probe("rmt.stage.table_misses", &stage_stats_.table_misses);
  probe("rmt.stage.salu_execs", &stage_stats_.salu_execs);
  probe("rmt.stage.match_cache_hits", &stage_stats_.match_cache_hits);
  m.register_probe("rmt.pipeline.cpu_queue_depth", this,
                   [this] { return static_cast<double>(cpu_queue_.size()); });
}

Phv Pipeline::parse_packet(const Packet& pkt) {
  ++packets_in_;
  Phv phv = parser_.parse(pkt);
  phv.qdepth = qdepth_;
  if (tracing_) {
    trace_.clear();
    trace_events_.clear();
    char line[64];
    std::snprintf(line, sizeof line, "parser: bitmap=0b%u%u%u%u%u",
                  (phv.parse_bitmap >> 4) & 1, (phv.parse_bitmap >> 3) & 1,
                  (phv.parse_bitmap >> 2) & 1, (phv.parse_bitmap >> 1) & 1,
                  phv.parse_bitmap & 1);
    trace_.push_back(line);
    TraceEvent event;
    event.block = TraceEvent::Block::Parser;
    event.op = "parse";
    event.value = phv.parse_bitmap;
    trace_events_.push_back(std::move(event));
    phv.trace = &trace_;
    phv.trace_events = &trace_events_;
  }
  return phv;
}

Pipeline::PassResult Pipeline::process_pass(Phv& phv) {
  phv.recirculate = false;
  for (auto& stage : ingress_) stage->process(phv);

  // Traffic manager: recirculation wins over the (possibly still pending)
  // forwarding decision; the decision travels with the packet in the
  // P4runpro header and is applied on the final pass.
  if (phv.recirculate) {
    ++recirc_passes_;
    // Egress pipeline still processes the pass on its way out (to the
    // recirculation port, or toward the next switch of a chain).
    for (auto& stage : egress_) stage->process(phv);
    phv.recirc_id = static_cast<RecircId>(phv.recirc_id + 1);
    PassResult recirc;
    recirc.outcome = PassOutcome::Recirculate;
    return recirc;
  }

  PassResult result;
  result.outcome = PassOutcome::Exit;
  switch (phv.decision) {
    case FwdDecision::Drop:
      ++packets_dropped_;
      result.fate = PacketFate::Dropped;
      return result;
    case FwdDecision::Report:
      ++packets_reported_;
      // Bounded CPU queue: the switch CPU PCIe channel drops under burst.
      if (cpu_queue_.size() < cpu_queue_capacity_) {
        cpu_queue_.push_back(phv.pkt);
      } else {
        ++cpu_queue_drops_;
      }
      result.fate = PacketFate::Reported;
      return result;
    case FwdDecision::Multicast: {
      result.fate = PacketFate::Multicasted;
      if (const auto* ports = multicast_group(phv.mcast_group)) {
        result.multicast_ports = *ports;
      }
      for (auto& stage : egress_) stage->process(phv);
      for (Port port : result.multicast_ports) {
        auto& ctr = ports_[port % kNumPorts];
        ++ctr.packets;
        ctr.bytes += phv.pkt.wire_len();
      }
      return result;
    }
    case FwdDecision::Return:
      result.fate = PacketFate::Returned;
      result.egress_port = phv.pkt.ingress_port;
      break;
    case FwdDecision::Forward:
      result.fate = PacketFate::Forwarded;
      result.egress_port = phv.egress_port;
      break;
    case FwdDecision::None:
      // No program claimed the packet: default pass-through behavior of
      // the provisioned data plane (egress port 0).
      result.fate = PacketFate::Forwarded;
      result.egress_port = 0;
      break;
  }

  for (auto& stage : egress_) stage->process(phv);

  auto& ctr = ports_[result.egress_port % kNumPorts];
  ++ctr.packets;
  ctr.bytes += phv.pkt.wire_len();
  return result;
}

PipelineResult Pipeline::inject(const Packet& pkt) {
  // Sampling decision before parsing: a sampled packet gets per-packet
  // tracing for exactly this injection so its journey can be recorded.
  const bool sampled = observer_ != nullptr && observer_->sample_packet();
  const bool saved_tracing = tracing_;
  if (sampled) tracing_ = true;
  const std::uint64_t seq = packets_in_;

  Phv phv = parse_packet(pkt);
  PipelineResult result;
  for (int pass = 0;; ++pass) {
    const PassResult step = process_pass(phv);
    if (step.outcome == PassOutcome::Recirculate) {
      ++result.recirc_passes;
      if (pass >= max_recirculations_) {
        ++packets_dropped_;
        result.fate = PacketFate::RecircLimit;
        result.packet = phv.pkt;
        break;
      }
      continue;
    }
    result.fate = step.fate;
    result.egress_port = step.egress_port;
    result.multicast_ports = step.multicast_ports;
    result.packet = phv.pkt;
    break;
  }

  if (observer_ != nullptr) {
    PacketObservation obs;
    obs.program = phv.program_id;
    obs.fate = result.fate;
    obs.ingress_port = pkt.ingress_port;
    obs.egress_port = result.egress_port;
    obs.seq = seq;
    obs.recirc_passes = result.recirc_passes;
    obs.table_hits = phv.pkt_table_hits;
    obs.table_misses = phv.pkt_table_misses;
    obs.salu_execs = phv.pkt_salu_execs;
    obs.events = tracing_ ? &trace_events_ : nullptr;
    obs.table_trace = table_trace_;
    obs.table_generation = table_generation_;
    observer_->on_packet(obs);
  }
  tracing_ = saved_tracing;
  return result;
}

Pipeline::BatchResult Pipeline::inject_batch(std::span<const Packet> pkts) {
  BatchResult out;
  out.packets = pkts.size();
  out.table_trace = table_trace_;
  out.table_generation = table_generation_;

  const auto fold = [&out](PacketFate fate) {
    switch (fate) {
      case PacketFate::Forwarded: ++out.forwarded; break;
      case PacketFate::Returned: ++out.returned; break;
      case PacketFate::Dropped: ++out.dropped; break;
      case PacketFate::Reported: ++out.reported; break;
      case PacketFate::Multicasted: ++out.multicasted; break;
      case PacketFate::RecircLimit: ++out.recirc_limited; break;
    }
  };

  // Observer attached or tracing on: per-packet semantics (sampling
  // decisions, journey capture, observation callbacks) must be preserved —
  // delegate to inject() and only aggregate.
  if (observer_ != nullptr || tracing_) {
    for (const Packet& pkt : pkts) {
      const PipelineResult result = inject(pkt);
      fold(result.fate);
      out.recirc_passes += static_cast<std::uint64_t>(result.recirc_passes);
    }
    return out;
  }

  // Lean path: no sampling query, no trace bookkeeping, no per-packet
  // PipelineResult (and its Packet copy).
  for (const Packet& pkt : pkts) {
    ++packets_in_;
    Phv phv = parser_.parse(pkt);
    phv.qdepth = qdepth_;
    for (int pass = 0;; ++pass) {
      const PassResult step = process_pass(phv);
      if (step.outcome == PassOutcome::Recirculate) {
        ++out.recirc_passes;
        if (pass >= max_recirculations_) {
          ++packets_dropped_;
          ++out.recirc_limited;
          break;
        }
        continue;
      }
      fold(step.fate);
      break;
    }
  }
  return out;
}

std::vector<Packet> Pipeline::drain_cpu_queue() {
  std::vector<Packet> out;
  out.swap(cpu_queue_);
  return out;
}

const PortCounters& Pipeline::port_counters(Port port) const {
  return ports_[port % kNumPorts];
}

void Pipeline::clear_counters() {
  for (auto& p : ports_) p = PortCounters{};
  cpu_queue_.clear();
  cpu_queue_drops_ = 0;
  recirc_passes_ = 0;
  packets_in_ = 0;
  packets_dropped_ = 0;
  packets_reported_ = 0;
  stage_stats_ = StageStats{};
}

}  // namespace p4runpro::rmt
