// The RMT pipeline frame: parser -> ingress stages -> traffic manager ->
// egress stages -> (out | recirculate). Stage contents are supplied by the
// P4runpro data plane (or any other program); the frame owns forwarding,
// recirculation and port accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "rmt/parser.h"
#include "rmt/phv.h"

namespace p4runpro::obs {
struct Telemetry;
}

namespace p4runpro::rmt {

/// One pipeline stage. Implementations are the P4runpro blocks (init block,
/// RPBs, recirculation block).
class PipelineStage {
 public:
  virtual ~PipelineStage() = default;
  virtual void process(Phv& phv) = 0;
};

/// Final fate of an injected packet.
enum class PacketFate : std::uint8_t {
  Forwarded,  ///< left through `egress_port`
  Returned,   ///< reflected to its ingress port
  Dropped,
  Reported,       ///< punted to the CPU
  RecircLimit,    ///< exceeded the hardware recirculation allowance (dropped)
  Multicasted,    ///< replicated to `multicast_ports` by the traffic manager
};

struct PipelineResult {
  PacketFate fate = PacketFate::Dropped;
  Port egress_port = 0;
  std::vector<Port> multicast_ports;  ///< copies emitted on Multicasted
  Packet packet;       ///< packet as it left the pipeline
  int recirc_passes = 0;
};

/// Per-port TX counters for rate measurement in the case studies.
struct PortCounters {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

/// Execution counters fed by the match-action stages (the RPBs): table
/// lookups by claimed packets and stateful-ALU executions. Owned by the
/// pipeline, incremented by the stages through a raw pointer (hot path).
struct StageStats {
  std::uint64_t table_hits = 0;
  std::uint64_t table_misses = 0;
  std::uint64_t salu_execs = 0;
  /// Lookups served from an RPB's (program, branch, recirc) match cache
  /// instead of a full table scan (hits and misses both count as their
  /// respective table_* outcome as well).
  std::uint64_t match_cache_hits = 0;
};

/// Summary of one completed packet (all recirculation passes included),
/// handed to the attached PacketObserver when inject() finishes. The
/// pointers are valid only for the duration of the callback.
struct PacketObservation {
  ProgramId program = 0;  ///< claiming program (0 = unclaimed)
  PacketFate fate = PacketFate::Dropped;
  Port ingress_port = 0;
  Port egress_port = 0;
  std::uint64_t seq = 0;  ///< arrival index (== packets_in at parse time)
  int recirc_passes = 0;
  std::uint32_t table_hits = 0;
  std::uint32_t table_misses = 0;
  std::uint32_t salu_execs = 0;
  /// Structured execution trace; non-null only when the packet was traced
  /// (global tracing on, or the observer sampled this packet).
  const std::vector<TraceEvent>* events = nullptr;
  /// Causal trace id of the control operation that last installed table
  /// state into this pipeline (0 = tables never touched by a traced op),
  /// and the monotonically increasing table generation it bumped. Together
  /// they tie a packet's journey to the exact control-plane write history
  /// it executed against.
  std::uint64_t table_trace = 0;
  std::uint64_t table_generation = 0;
};

/// Per-packet attribution hook (implemented by obs::ProgramHealthMonitor).
/// sample_packet() is consulted before parsing so the pipeline can enable
/// tracing for exactly the packets whose journey the observer wants; both
/// calls sit on the hot path and implementations must not do name lookups
/// or allocation on the common path.
class PacketObserver {
 public:
  virtual ~PacketObserver() = default;
  /// Return true to force per-packet tracing (journey capture) for the
  /// packet about to be injected.
  [[nodiscard]] virtual bool sample_packet() = 0;
  virtual void on_packet(const PacketObservation& obs) = 0;
};

class Pipeline {
 public:
  Pipeline(ParserConfig parser_config, int max_recirculations);

  // Stage wiring (done once by the data plane at provisioning time).
  void add_ingress_stage(std::shared_ptr<PipelineStage> stage) {
    ingress_.push_back(std::move(stage));
  }
  void add_egress_stage(std::shared_ptr<PipelineStage> stage) {
    egress_.push_back(std::move(stage));
  }

  /// Run one packet to completion (including recirculation passes).
  PipelineResult inject(const Packet& pkt);

  /// Aggregate outcome of an inject_batch() call: per-fate packet counts
  /// plus the recirculation passes the batch consumed.
  struct BatchResult {
    std::uint64_t packets = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t returned = 0;
    std::uint64_t dropped = 0;
    std::uint64_t reported = 0;
    std::uint64_t multicasted = 0;
    std::uint64_t recirc_limited = 0;
    std::uint64_t recirc_passes = 0;
    /// Table state the whole batch matched against. On the sharded path
    /// every packet of a batch sees exactly one published TableSnapshot:
    /// its epoch plus the trace/generation that travel inside it. On the
    /// serial path the epoch stays 0 and trace/generation mirror the
    /// pipeline's note_table_update state at batch start.
    std::uint64_t snapshot_epoch = 0;
    std::uint64_t table_trace = 0;
    std::uint64_t table_generation = 0;
  };

  /// Run a batch of packets to completion and return aggregate results.
  /// The observer/tracing/sampling checks are hoisted out of the per-packet
  /// loop: with no observer and tracing off, packets take a lean path that
  /// skips the per-packet sampling query, trace bookkeeping, and the
  /// PipelineResult packet copy. All pipeline counters (ports, stage stats,
  /// CPU queue) advance exactly as with per-packet inject().
  BatchResult inject_batch(std::span<const Packet> pkts);

  /// Outcome of a single pipeline pass (ingress + traffic manager +
  /// egress). Used by inject()'s recirculation loop and by multi-switch
  /// chains (§4.1.3: recirculation "can also be replaced by multiple
  /// switches deployed on the same path").
  enum class PassOutcome : std::uint8_t { Exit, Recirculate };
  struct PassResult {
    PassOutcome outcome = PassOutcome::Exit;
    PacketFate fate = PacketFate::Dropped;
    Port egress_port = 0;
    std::vector<Port> multicast_ports;
  };

  /// Parse a raw packet into a PHV (counts it as an arrival).
  [[nodiscard]] Phv parse_packet(const Packet& pkt);

  /// One full pass of an already-parsed PHV. On Recirculate the caller
  /// decides whether to loop (recirculation) or to hand the PHV to the
  /// next switch of a chain; the recirculation id is already incremented.
  PassResult process_pass(Phv& phv);

  /// Per-packet execution tracing (debugging): when enabled, every block
  /// appends one line per executed operation; read the last packet's trace
  /// with last_trace(), or its structured form with last_trace_events().
  void set_tracing(bool enabled) noexcept { tracing_ = enabled; }
  [[nodiscard]] const std::vector<std::string>& last_trace() const noexcept {
    return trace_;
  }
  /// Machine-readable trace of the last traced packet, parallel to
  /// last_trace(); prefer this over substring-matching the rendered lines.
  [[nodiscard]] const std::vector<TraceEvent>& last_trace_events() const noexcept {
    return trace_events_;
  }

  /// Configure a traffic-manager multicast group (the control plane's PRE
  /// programming; enables the SwitchML-style aggregation of §7).
  void set_multicast_group(Word group, std::vector<Port> ports) {
    mcast_groups_[group] = std::move(ports);
  }
  [[nodiscard]] const std::vector<Port>* multicast_group(Word group) const {
    const auto it = mcast_groups_.find(group);
    return it == mcast_groups_.end() ? nullptr : &it->second;
  }
  /// All configured groups (copied into shard pipelines at enable time).
  [[nodiscard]] const std::map<Word, std::vector<Port>>& multicast_groups()
      const noexcept {
    return mcast_groups_;
  }

  /// Queue-depth signal exposed to programs as meta.qdepth (the functional
  /// model does not simulate queuing; tests and workloads set it).
  void set_qdepth(Word qdepth) noexcept { qdepth_ = qdepth; }
  [[nodiscard]] Word qdepth() const noexcept { return qdepth_; }

  /// Packets punted to the switch CPU (REPORT) since the last drain; the
  /// control plane consumes them via Controller::drain_reports().
  [[nodiscard]] std::vector<Packet> drain_cpu_queue();
  [[nodiscard]] std::size_t cpu_queue_depth() const noexcept { return cpu_queue_.size(); }

  /// Bound of the CPU punt queue (the switch-CPU PCIe channel drops under
  /// burst). Reported packets arriving at a full queue still count as
  /// Reported but their payload is lost; see cpu_queue_drops().
  static constexpr std::size_t kDefaultCpuQueueCapacity = 65536;
  void set_cpu_queue_capacity(std::size_t capacity) noexcept {
    cpu_queue_capacity_ = capacity;
  }
  [[nodiscard]] std::size_t cpu_queue_capacity() const noexcept {
    return cpu_queue_capacity_;
  }
  /// REPORTed packets dropped because the CPU queue was full.
  [[nodiscard]] std::uint64_t cpu_queue_drops() const noexcept {
    return cpu_queue_drops_;
  }

  [[nodiscard]] const PortCounters& port_counters(Port port) const;
  [[nodiscard]] std::uint64_t total_recirc_passes() const noexcept { return recirc_passes_; }
  [[nodiscard]] std::uint64_t packets_in() const noexcept { return packets_in_; }
  [[nodiscard]] std::uint64_t packets_dropped() const noexcept { return packets_dropped_; }
  [[nodiscard]] std::uint64_t packets_reported() const noexcept { return packets_reported_; }
  void clear_counters();

  /// Match-action execution counters, incremented by the RPB stages.
  [[nodiscard]] StageStats& stage_stats() noexcept { return stage_stats_; }
  [[nodiscard]] const StageStats& stage_stats() const noexcept { return stage_stats_; }

  /// Per-packet attribution hook, invoked once per inject() with the
  /// packet's claiming program and execution counters. Null disables (the
  /// default). Packets driven through process_pass() directly (switch
  /// chains) bypass the observer.
  void set_observer(PacketObserver* observer) noexcept { observer_ = observer; }
  [[nodiscard]] PacketObserver* observer() const noexcept { return observer_; }

  /// Record that a control operation just mutated this pipeline's table
  /// state: bumps the table generation and remembers the operation's trace
  /// id. Called by the update engine after each successful install/remove
  /// batch; subsequent packet observations carry both values.
  void note_table_update(std::uint64_t trace) noexcept {
    ++table_generation_;
    table_trace_ = trace;
  }
  /// Overwrite the trace/generation pair wholesale. Shard pipelines are
  /// stamped from the bound TableSnapshot at every batch start so packet
  /// observations name the snapshot actually matched against — the
  /// authoritative values travel inside the snapshot, these members are
  /// just the per-shard mirror the observation path reads.
  void set_table_stamp(std::uint64_t trace, std::uint64_t generation) noexcept {
    table_trace_ = trace;
    table_generation_ = generation;
  }
  [[nodiscard]] std::uint64_t table_trace() const noexcept { return table_trace_; }
  [[nodiscard]] std::uint64_t table_generation() const noexcept {
    return table_generation_;
  }

  /// Route the pipeline counters through a telemetry registry as sampled
  /// probes under "rmt.pipeline.*" / "rmt.stage.*" (the members stay the
  /// source of truth). Re-attaching replaces the previous registration;
  /// the destructor unregisters.
  void attach_telemetry(obs::Telemetry* telemetry);

  [[nodiscard]] const Parser& parser() const noexcept { return parser_; }

  ~Pipeline();
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

 private:
  Parser parser_;
  int max_recirculations_;
  std::vector<std::shared_ptr<PipelineStage>> ingress_;
  std::vector<std::shared_ptr<PipelineStage>> egress_;
  Word qdepth_ = 0;

  bool tracing_ = false;
  std::vector<std::string> trace_;
  std::vector<TraceEvent> trace_events_;
  std::vector<PortCounters> ports_;
  std::vector<Packet> cpu_queue_;
  std::size_t cpu_queue_capacity_ = kDefaultCpuQueueCapacity;
  std::uint64_t cpu_queue_drops_ = 0;
  std::map<Word, std::vector<Port>> mcast_groups_;
  std::uint64_t recirc_passes_ = 0;
  std::uint64_t packets_in_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_reported_ = 0;
  StageStats stage_stats_;
  std::uint64_t table_trace_ = 0;       ///< see note_table_update()
  std::uint64_t table_generation_ = 0;  ///< bumped per control write batch
  obs::Telemetry* telemetry_ = nullptr;
  PacketObserver* observer_ = nullptr;
};

}  // namespace p4runpro::rmt
