#include "rmt/wire.h"

#include <algorithm>

namespace p4runpro::rmt {

namespace {

void put8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }
void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 16));
  put16(out, static_cast<std::uint16_t>(v));
}
void put48(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 32));
  put32(out, static_cast<std::uint32_t>(v));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool have(std::size_t n) const { return pos_ + n <= bytes_.size(); }
  std::uint8_t u8() { return bytes_[pos_++]; }
  std::uint16_t u16() {
    const std::uint16_t v = static_cast<std::uint16_t>(bytes_[pos_] << 8) |
                            bytes_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::uint64_t u48() {
    const std::uint64_t hi = u16();
    return (hi << 32) | u32();
  }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  void skip(std::size_t n) { pos_ += n; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::uint16_t ipv4_checksum(std::span<const std::uint8_t> header) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < header.size(); i += 2) {
    sum += static_cast<std::uint32_t>(header[i] << 8) | header[i + 1];
  }
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::vector<std::uint8_t> serialize(const Packet& pkt) {
  std::vector<std::uint8_t> out;
  out.reserve(pkt.wire_len());

  // Ethernet II.
  put48(out, pkt.eth.dst_mac);
  put48(out, pkt.eth.src_mac);
  put16(out, pkt.eth.ether_type);

  if (pkt.ipv4) {
    const std::size_t ip_start = out.size();
    std::uint16_t l4_len = 0;
    if (pkt.tcp) l4_len = 20;
    if (pkt.udp) l4_len = 8;
    if (pkt.app) l4_len = static_cast<std::uint16_t>(l4_len + 16);
    const auto total_len =
        static_cast<std::uint16_t>(20 + l4_len + pkt.payload_len);

    put8(out, 0x45);  // version 4, IHL 5
    put8(out, static_cast<std::uint8_t>((pkt.ipv4->dscp << 2) | pkt.ipv4->ecn));
    put16(out, total_len);
    put16(out, 0);       // identification
    put16(out, 0x4000);  // DF
    put8(out, pkt.ipv4->ttl);
    put8(out, pkt.ipv4->proto);
    put16(out, 0);  // checksum placeholder
    put32(out, pkt.ipv4->src);
    put32(out, pkt.ipv4->dst);
    const std::uint16_t csum =
        ipv4_checksum(std::span(out).subspan(ip_start, 20));
    out[ip_start + 10] = static_cast<std::uint8_t>(csum >> 8);
    out[ip_start + 11] = static_cast<std::uint8_t>(csum);

    if (pkt.tcp) {
      put16(out, pkt.tcp->src_port);
      put16(out, pkt.tcp->dst_port);
      put32(out, 0);  // seq
      put32(out, 0);  // ack
      put8(out, 0x50);  // data offset 5
      put8(out, pkt.tcp->flags);
      put16(out, 0xffff);  // window
      put16(out, 0);       // checksum (omitted)
      put16(out, 0);       // urgent
    } else if (pkt.udp) {
      put16(out, pkt.udp->src_port);
      put16(out, pkt.udp->dst_port);
      put16(out, static_cast<std::uint16_t>(8 + (pkt.app ? 16 : 0) + pkt.payload_len));
      put16(out, 0);  // checksum (optional in IPv4)
    }
    if (pkt.app) {
      put32(out, pkt.app->op);
      put32(out, pkt.app->key1);
      put32(out, pkt.app->key2);
      put32(out, pkt.app->value);
    }
  }

  out.insert(out.end(), pkt.payload_len, 0);  // anonymized payload
  return out;
}

Result<Packet> parse_bytes(std::span<const std::uint8_t> bytes,
                           std::span<const std::uint16_t> app_udp_ports) {
  Reader in(bytes);
  Packet pkt;
  if (!in.have(14)) return Error{"truncated Ethernet header", "wire"};
  pkt.eth.dst_mac = in.u48();
  pkt.eth.src_mac = in.u48();
  pkt.eth.ether_type = in.u16();
  if (pkt.eth.ether_type != 0x0800) {
    pkt.payload_len = static_cast<std::uint32_t>(in.remaining());
    return pkt;  // non-IP frame: L2 only
  }

  if (!in.have(20)) return Error{"truncated IPv4 header", "wire"};
  const std::uint8_t vihl = in.u8();
  if ((vihl >> 4) != 4) return Error{"not IPv4", "wire"};
  const std::size_t ihl_bytes = static_cast<std::size_t>(vihl & 0x0f) * 4;
  if (ihl_bytes < 20) return Error{"bad IPv4 IHL", "wire"};
  Ipv4Header ip;
  const std::uint8_t tos = in.u8();
  ip.dscp = tos >> 2;
  ip.ecn = tos & 0x3;
  ip.total_len = in.u16();
  in.skip(4);  // id + flags/fragment
  ip.ttl = in.u8();
  ip.proto = in.u8();
  in.skip(2);  // checksum (not validated: anonymized traces rewrite IPs)
  ip.src = in.u32();
  ip.dst = in.u32();
  if (ihl_bytes > 20) {
    if (!in.have(ihl_bytes - 20)) return Error{"truncated IPv4 options", "wire"};
    in.skip(ihl_bytes - 20);
  }
  pkt.ipv4 = ip;

  if (ip.proto == 6) {
    if (!in.have(20)) return Error{"truncated TCP header", "wire"};
    TcpHeader tcp;
    tcp.src_port = in.u16();
    tcp.dst_port = in.u16();
    in.skip(8);
    const std::uint8_t offset = in.u8();
    tcp.flags = in.u8();
    in.skip(6);
    const std::size_t hdr_bytes = static_cast<std::size_t>(offset >> 4) * 4;
    if (hdr_bytes < 20) return Error{"bad TCP data offset", "wire"};
    if (hdr_bytes > 20) {
      if (!in.have(hdr_bytes - 20)) return Error{"truncated TCP options", "wire"};
      in.skip(hdr_bytes - 20);
    }
    pkt.tcp = tcp;
  } else if (ip.proto == 17) {
    if (!in.have(8)) return Error{"truncated UDP header", "wire"};
    UdpHeader udp;
    udp.src_port = in.u16();
    udp.dst_port = in.u16();
    in.skip(4);
    pkt.udp = udp;
    const bool app_port = std::find(app_udp_ports.begin(), app_udp_ports.end(),
                                    udp.dst_port) != app_udp_ports.end();
    if (app_port && in.have(16)) {
      AppHeader app;
      app.op = in.u32();
      app.key1 = in.u32();
      app.key2 = in.u32();
      app.value = in.u32();
      pkt.app = app;
    }
  }

  pkt.payload_len = static_cast<std::uint32_t>(in.remaining());
  return pkt;
}

}  // namespace p4runpro::rmt
