// Compile-time parsing state machine. RMT parsers cannot be reconfigured at
// runtime (paper §7), so the set of recognized headers is fixed when the
// P4runpro data plane is provisioned; only the application-header trigger
// ports are a provisioning-time knob.
#pragma once

#include <cstdint>
#include <vector>

#include "rmt/phv.h"

namespace p4runpro::rmt {

/// Parser configuration chosen at provisioning time.
struct ParserConfig {
  /// UDP destination ports whose payload is parsed as the customized
  /// application header (in-network cache / calculator packets).
  std::vector<std::uint16_t> app_udp_ports;
};

/// Walks the parse graph for a packet and produces the initial PHV with the
/// parse-state bitmap set (paper §4.1.1: each new parser state sets the bit
/// that represents its header).
class Parser {
 public:
  explicit Parser(ParserConfig config) : config_(std::move(config)) {}

  [[nodiscard]] Phv parse(const Packet& pkt) const noexcept;

  /// Number of distinct parsing paths; the initialization block instantiates
  /// one filtering table per path (paper §5: "K tables").
  [[nodiscard]] int num_parse_paths() const noexcept { return 5; }

 private:
  ParserConfig config_;
};

}  // namespace p4runpro::rmt
