#include "rmt/crc.h"

namespace p4runpro::rmt {

namespace {
[[nodiscard]] std::uint32_t reflect_bits(std::uint32_t v, int width) noexcept {
  std::uint32_t r = 0;
  for (int i = 0; i < width; ++i) {
    if (v & (1u << i)) r |= 1u << (width - 1 - i);
  }
  return r;
}
}  // namespace

std::uint32_t crc_generic(const CrcParams& params,
                          std::span<const std::uint8_t> data) noexcept {
  const std::uint32_t top_bit = 1u << (params.width - 1);
  const std::uint32_t mask =
      params.width == 32 ? 0xffffffffu : ((1u << params.width) - 1u);
  std::uint32_t crc = params.init;
  for (std::uint8_t byte : data) {
    std::uint32_t b = byte;
    if (params.reflect_in) b = reflect_bits(b, 8);
    crc ^= b << (params.width - 8);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & top_bit) ? ((crc << 1) ^ params.poly) : (crc << 1);
      crc &= mask;
    }
  }
  if (params.reflect_out) crc = reflect_bits(crc, params.width);
  return (crc ^ params.xor_out) & mask;
}

std::uint16_t crc16_buypass(std::span<const std::uint8_t> data) noexcept {
  static constexpr CrcParams kParams{16, 0x8005, 0x0000, false, false, 0x0000};
  return static_cast<std::uint16_t>(crc_generic(kParams, data));
}

std::uint16_t crc16_mcrf4xx(std::span<const std::uint8_t> data) noexcept {
  // Reflected algorithm expressed through the straight engine: reflect in/out.
  static constexpr CrcParams kParams{16, 0x1021, 0xffff, true, true, 0x0000};
  return static_cast<std::uint16_t>(crc_generic(kParams, data));
}

std::uint16_t crc16_aug_ccitt(std::span<const std::uint8_t> data) noexcept {
  static constexpr CrcParams kParams{16, 0x1021, 0x1d0f, false, false, 0x0000};
  return static_cast<std::uint16_t>(crc_generic(kParams, data));
}

std::uint16_t crc16_dds110(std::span<const std::uint8_t> data) noexcept {
  static constexpr CrcParams kParams{16, 0x8005, 0x800d, false, false, 0x0000};
  return static_cast<std::uint16_t>(crc_generic(kParams, data));
}

std::uint32_t crc32_iso_hdlc(std::span<const std::uint8_t> data) noexcept {
  static constexpr CrcParams kParams{32, 0x04c11db7, 0xffffffffu, true, true,
                                     0xffffffffu};
  return crc_generic(kParams, data);
}

std::uint32_t run_hash(HashAlgo algo, std::span<const std::uint8_t> data) noexcept {
  switch (algo) {
    case HashAlgo::Crc16Buypass: return crc16_buypass(data);
    case HashAlgo::Crc16Mcrf4xx: return crc16_mcrf4xx(data);
    case HashAlgo::Crc16AugCcitt: return crc16_aug_ccitt(data);
    case HashAlgo::Crc16Dds110: return crc16_dds110(data);
    case HashAlgo::Crc32: return crc32_iso_hdlc(data);
  }
  return 0;
}

}  // namespace p4runpro::rmt
