#include "rmt/crc.h"

#include <array>

namespace p4runpro::rmt {

namespace {
[[nodiscard]] constexpr std::uint32_t reflect_bits(std::uint32_t v,
                                                   int width) noexcept {
  std::uint32_t r = 0;
  for (int i = 0; i < width; ++i) {
    if (v & (1u << i)) r |= 1u << (width - 1 - i);
  }
  return r;
}

// Byte-at-a-time CRC tables for the named hash units (the packet hot path:
// every hash primitive runs one of these per packet). Two engine shapes
// cover all five instances — straight (reflect neither) and reflected
// (reflect both); crc_generic below stays the reference implementation for
// arbitrary parameter combinations.
using CrcTable = std::array<std::uint32_t, 256>;

[[nodiscard]] constexpr CrcTable make_straight_table(std::uint32_t poly,
                                                     int width) noexcept {
  const std::uint32_t top_bit = 1u << (width - 1);
  const std::uint32_t mask =
      width == 32 ? 0xffffffffu : ((1u << width) - 1u);
  CrcTable table{};
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t crc = b << (width - 8);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & top_bit) ? ((crc << 1) ^ poly) : (crc << 1);
      crc &= mask;
    }
    table[b] = crc;
  }
  return table;
}

[[nodiscard]] constexpr CrcTable make_reflected_table(std::uint32_t poly,
                                                      int width) noexcept {
  const std::uint32_t poly_r = reflect_bits(poly, width);
  CrcTable table{};
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t crc = b;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? ((crc >> 1) ^ poly_r) : (crc >> 1);
    }
    table[b] = crc;
  }
  return table;
}

template <std::uint32_t Poly, int Width, std::uint32_t Init, std::uint32_t XorOut>
[[nodiscard]] std::uint32_t crc_straight(
    std::span<const std::uint8_t> data) noexcept {
  static constexpr CrcTable kTable = make_straight_table(Poly, Width);
  constexpr std::uint32_t kMask =
      Width == 32 ? 0xffffffffu : ((1u << Width) - 1u);
  std::uint32_t crc = Init;
  for (std::uint8_t byte : data) {
    crc = ((crc << 8) ^ kTable[((crc >> (Width - 8)) ^ byte) & 0xffu]) & kMask;
  }
  return (crc ^ XorOut) & kMask;
}

template <std::uint32_t Poly, int Width, std::uint32_t Init, std::uint32_t XorOut>
[[nodiscard]] std::uint32_t crc_reflected(
    std::span<const std::uint8_t> data) noexcept {
  static constexpr CrcTable kTable = make_reflected_table(Poly, Width);
  constexpr std::uint32_t kMask =
      Width == 32 ? 0xffffffffu : ((1u << Width) - 1u);
  // Reflected engine: init and output reflections fold into the table walk.
  std::uint32_t crc = reflect_bits(Init, Width);
  for (std::uint8_t byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ byte) & 0xffu];
  }
  return (crc ^ XorOut) & kMask;
}
}  // namespace

std::uint32_t crc_generic(const CrcParams& params,
                          std::span<const std::uint8_t> data) noexcept {
  const std::uint32_t top_bit = 1u << (params.width - 1);
  const std::uint32_t mask =
      params.width == 32 ? 0xffffffffu : ((1u << params.width) - 1u);
  std::uint32_t crc = params.init;
  for (std::uint8_t byte : data) {
    std::uint32_t b = byte;
    if (params.reflect_in) b = reflect_bits(b, 8);
    crc ^= b << (params.width - 8);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & top_bit) ? ((crc << 1) ^ params.poly) : (crc << 1);
      crc &= mask;
    }
  }
  if (params.reflect_out) crc = reflect_bits(crc, params.width);
  return (crc ^ params.xor_out) & mask;
}

std::uint16_t crc16_buypass(std::span<const std::uint8_t> data) noexcept {
  return static_cast<std::uint16_t>(crc_straight<0x8005, 16, 0x0000, 0x0000>(data));
}

std::uint16_t crc16_mcrf4xx(std::span<const std::uint8_t> data) noexcept {
  return static_cast<std::uint16_t>(crc_reflected<0x1021, 16, 0xffff, 0x0000>(data));
}

std::uint16_t crc16_aug_ccitt(std::span<const std::uint8_t> data) noexcept {
  return static_cast<std::uint16_t>(crc_straight<0x1021, 16, 0x1d0f, 0x0000>(data));
}

std::uint16_t crc16_dds110(std::span<const std::uint8_t> data) noexcept {
  return static_cast<std::uint16_t>(crc_straight<0x8005, 16, 0x800d, 0x0000>(data));
}

std::uint32_t crc32_iso_hdlc(std::span<const std::uint8_t> data) noexcept {
  return crc_reflected<0x04c11db7, 32, 0xffffffffu, 0xffffffffu>(data);
}

std::uint32_t run_hash(HashAlgo algo, std::span<const std::uint8_t> data) noexcept {
  switch (algo) {
    case HashAlgo::Crc16Buypass: return crc16_buypass(data);
    case HashAlgo::Crc16Mcrf4xx: return crc16_mcrf4xx(data);
    case HashAlgo::Crc16AugCcitt: return crc16_aug_ccitt(data);
    case HashAlgo::Crc16Dds110: return crc16_dds110(data);
    case HashAlgo::Crc32: return crc32_iso_hdlc(data);
  }
  return 0;
}

}  // namespace p4runpro::rmt
