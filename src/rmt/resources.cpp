#include "rmt/resources.h"

#include <algorithm>

namespace p4runpro::rmt {

int ChipBudget::total(Resource r) const noexcept {
  switch (r) {
    case Resource::Phv: return phv_bits;
    case Resource::Hash: return hash_units_per_stage * stages;
    case Resource::Sram: return sram_blocks_per_stage * stages;
    case Resource::Tcam: return tcam_blocks_per_stage * stages;
    case Resource::Vliw: return vliw_slots_per_stage * stages;
    case Resource::Salu: return salus_per_stage * stages;
    case Resource::Ltid: return ltids_per_stage * stages;
  }
  return 0;
}

double ResourceUsage::percent(Resource r, const ChipBudget& budget) const noexcept {
  const int total = budget.total(r);
  if (total <= 0) return 0.0;
  const double pct = 100.0 * static_cast<double>(get(r)) / static_cast<double>(total);
  return std::clamp(pct, 0.0, 100.0);
}

}  // namespace p4runpro::rmt
