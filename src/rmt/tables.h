// Ternary match-action table. All P4runpro tables use ternary match with
// (value, mask) keys and priorities (paper §7 "Entry Expansion"), backed by
// TCAM on the ASIC. The simulator models capacity and accelerates lookup
// with compiled buckets: entries are grouped by exact-match first key (the
// RPB tables key entries on the program id, which is always exact), stored
// with fixed-width inline key storage (no per-entry heap hop), and kept
// priority-sorted at insert time so a lookup can stop at the first match,
// mimicking the O(1) TCAM lookup without a full TCAM model.
//
// Concurrency: a table instance is NOT thread-safe for mutation. A frozen
// instance (no insert/erase, e.g. inside a published dp::TableSnapshot) may
// be read from many threads concurrently via the lookup overload that takes
// an explicit TernaryTableStats sink (nullptr or a shard-local struct); the
// default overload counts probes into a mutable member and must stay
// single-threaded (see docs/ARCHITECTURE.md "Snapshot data plane").
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace p4runpro::rmt {

/// One ternary key component: matches iff (packet_value & mask) == (value & mask).
struct TernaryKey {
  Word value = 0;
  Word mask = 0;

  [[nodiscard]] bool matches(Word field) const noexcept {
    return (field & mask) == (value & mask);
  }
  /// Wildcard component (matches anything).
  [[nodiscard]] static TernaryKey any() noexcept { return {0, 0}; }
  /// Exact-match component.
  [[nodiscard]] static TernaryKey exact(Word v) noexcept { return {v, 0xffffffffu}; }
};

using EntryHandle = std::uint64_t;

/// Widest key any provisioned table uses (the init-block filter tables,
/// kFilterKeyWidth = 7). The default inline key capacity of TernaryTable.
inline constexpr int kMaxTernaryKeyWidth = 8;

/// Hot-path instrumentation of a table: entries examined by lookups and by
/// erases. The erase counters are what the regression tests use to prove
/// that erase touches only the owning bucket (not every bucket).
struct TernaryTableStats {
  std::uint64_t lookup_probes = 0;  ///< entries examined across all lookups
  std::uint64_t erase_probes = 0;   ///< entries examined across all erases
  std::uint64_t erase_calls = 0;
};

/// Match-action table with ternary keys and an arbitrary action payload.
/// Width (number of key components) is fixed per table; capacity models the
/// TCAM budget of the stage. `MaxWidth` bounds the inline per-entry key
/// storage at compile time (the RPB instantiates with kRpbKeyWidth).
template <typename Action, int MaxWidth = kMaxTernaryKeyWidth>
class TernaryTable {
 public:
  static_assert(MaxWidth >= 1 && MaxWidth <= 32);

  TernaryTable(int key_width, std::size_t capacity)
      : key_width_(key_width), capacity_(capacity) {
    assert(key_width >= 1 && key_width <= MaxWidth);
  }

  /// Insert an entry; higher `priority` wins on overlap, ties resolve to
  /// the earlier insertion. Fails when the table is full (the allocator
  /// must prevent this; hitting it at runtime indicates an accounting bug).
  Result<EntryHandle> insert(std::span<const TernaryKey> keys, int priority,
                             Action action) {
    if (keys.size() != static_cast<std::size_t>(key_width_)) {
      return Error{"key width mismatch", "TernaryTable", ErrorCode::InvalidArgument};
    }
    if (size_ >= capacity_) {
      return Error{"table full", "TernaryTable", ErrorCode::AllocFailed};
    }
    const EntryHandle handle = next_handle_++;
    Entry entry;
    std::copy(keys.begin(), keys.end(), entry.keys.begin());
    entry.priority = priority;
    entry.handle = handle;
    entry.action = std::move(action);

    const bool indexed = keys[0].mask == 0xffffffffu;
    Bucket& bucket = indexed ? bucket_for_insert(keys[0].value) : unindexed_;
    // Keep the bucket sorted by (priority desc, handle asc): handles grow
    // monotonically, so inserting after every entry of priority >= p
    // preserves insertion order within a priority level.
    const auto pos = std::partition_point(
        bucket.entries.begin(), bucket.entries.end(),
        [priority](const Entry& e) { return e.priority >= priority; });
    bucket.entries.insert(pos, std::move(entry));
    for (int i = 0; i < key_width_; ++i) {
      if (keys[static_cast<std::size_t>(i)].mask != 0) {
        bucket.key_use |= 1u << i;
      }
    }
    locator_.emplace(handle, Locator{indexed, indexed ? keys[0].value : 0});
    ++size_;
    ++generation_;
    return handle;
  }

  Result<EntryHandle> insert(std::initializer_list<TernaryKey> keys, int priority,
                             Action action) {
    return insert(std::span<const TernaryKey>(keys.begin(), keys.size()), priority,
                  std::move(action));
  }

  /// Remove by handle; returns false if the handle is unknown. The
  /// handle->bucket locator makes this touch only the owning bucket.
  bool erase(EntryHandle handle) {
    const auto loc = locator_.find(handle);
    if (loc == locator_.end()) return false;
    ++stats_.erase_calls;
    if (loc->second.indexed) {
      const Word first_key = loc->second.first_key;
      if (first_key < kDenseFirstKeyLimit) {
        assert(first_key < dense_.size());
        erase_from(dense_[first_key], handle);
      } else {
        const auto it = indexed_.find(first_key);
        assert(it != indexed_.end());
        erase_from(it->second, handle);
        if (it->second.entries.empty()) indexed_.erase(it);
      }
    } else {
      erase_from(unindexed_, handle);
    }
    locator_.erase(loc);
    --size_;
    ++generation_;
    return true;
  }

  /// Highest-priority matching action, or nullptr on miss. The returned
  /// pointer stays valid until the next insert/erase (generation bump).
  [[nodiscard]] const Action* lookup(std::span<const Word> fields) const noexcept {
    return lookup(fields, &stats_);
  }

  /// Lookup with an explicit probe-counter sink. Concurrent readers of a
  /// frozen table (the snapshot data plane) pass their own shard-local
  /// stats or nullptr — the default overload's `mutable stats_` increment
  /// would be a data race across shards.
  [[nodiscard]] const Action* lookup(std::span<const Word> fields,
                                     TernaryTableStats* stats) const noexcept {
    const Entry* best = nullptr;
    if (const Bucket* bucket = find_bucket(fields[0])) {
      best = first_match(*bucket, fields, stats);
    }
    const Entry* wild = first_match(unindexed_, fields, stats);
    if (wild != nullptr &&
        (best == nullptr || wild->priority > best->priority ||
         (wild->priority == best->priority && wild->handle < best->handle))) {
      best = wild;
    }
    return best == nullptr ? nullptr : &best->action;
  }

  /// Monotonic counter bumped by every insert/erase; consumers caching
  /// lookup results (the RPB match cache) revalidate against it.
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

  /// Which key components are actually keyed on (nonzero mask) by any entry
  /// that could match a packet whose exact first key is `first_key`: the
  /// union over that bucket and all wildcard-first-key entries, as a bit per
  /// component index. Bit 0 set means some entry keys on component 0, etc.
  /// Conservative upper bound (not recomputed when erase removes the last
  /// user of a component — the generation bump already invalidates caches).
  [[nodiscard]] std::uint32_t key_use(Word first_key) const noexcept {
    std::uint32_t use = unindexed_.key_use;
    if (const Bucket* bucket = find_bucket(first_key)) use |= bucket->key_use;
    return use;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t free_entries() const noexcept { return capacity_ - size_; }
  [[nodiscard]] int key_width() const noexcept { return key_width_; }

  [[nodiscard]] const TernaryTableStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  struct Entry {
    std::array<TernaryKey, MaxWidth> keys;  // components [0, key_width)
    int priority = 0;
    EntryHandle handle = 0;
    Action action{};
  };

  /// Entries sharing one exact first key (or the wildcard-first-key pool),
  /// sorted by (priority desc, handle asc) so the first match wins.
  struct Bucket {
    std::vector<Entry> entries;
    std::uint32_t key_use = 0;  ///< OR of per-component mask!=0 over entries
  };

  struct Locator {
    bool indexed = false;
    Word first_key = 0;
  };

  /// Exact first keys below this bound live in a direct-indexed bucket
  /// array (program ids and ports are small dense integers — the common
  /// case — and a lookup then costs one bounds check instead of a hash
  /// probe); larger keys fall back to the hash map.
  static constexpr Word kDenseFirstKeyLimit = 4096;

  [[nodiscard]] const Bucket* find_bucket(Word first_key) const noexcept {
    if (first_key < dense_.size()) return &dense_[first_key];
    if (first_key < kDenseFirstKeyLimit) return nullptr;  // never populated
    const auto it = indexed_.find(first_key);
    return it == indexed_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] Bucket& bucket_for_insert(Word first_key) {
    if (first_key < kDenseFirstKeyLimit) {
      // Growing moves the Bucket objects but not their heap-allocated entry
      // storage, so cached Action pointers stay valid (and the generation
      // bump of this insert revalidates every cache anyway).
      if (dense_.size() <= first_key) dense_.resize(first_key + 1u);
      return dense_[first_key];
    }
    return indexed_[first_key];
  }

  void erase_from(Bucket& bucket, EntryHandle handle) {
    const auto it = std::find_if(
        bucket.entries.begin(), bucket.entries.end(), [&](const Entry& e) {
          ++stats_.erase_probes;
          return e.handle == handle;
        });
    assert(it != bucket.entries.end());
    bucket.entries.erase(it);
    // Recompute the component-use summary from the survivors (erase is the
    // control path; keeping the summary tight lets caches re-enable).
    bucket.key_use = 0;
    for (const Entry& e : bucket.entries) {
      for (int i = 0; i < key_width_; ++i) {
        if (e.keys[static_cast<std::size_t>(i)].mask != 0) bucket.key_use |= 1u << i;
      }
    }
  }

  [[nodiscard]] const Entry* first_match(const Bucket& bucket,
                                         std::span<const Word> fields,
                                         TernaryTableStats* stats) const noexcept {
    for (const Entry& entry : bucket.entries) {
      if (stats != nullptr) ++stats->lookup_probes;
      bool hit = true;
      for (int i = 0; i < key_width_; ++i) {
        if (!entry.keys[static_cast<std::size_t>(i)].matches(
                fields[static_cast<std::size_t>(i)])) {
          hit = false;
          break;
        }
      }
      // Entries are sorted (priority desc, handle asc): the first match is
      // the bucket's winner.
      if (hit) return &entry;
    }
    return nullptr;
  }

  int key_width_;
  std::size_t capacity_;
  std::size_t size_ = 0;
  std::uint64_t generation_ = 1;
  std::vector<Bucket> dense_;  ///< buckets for first keys < kDenseFirstKeyLimit
  std::unordered_map<Word, Bucket> indexed_;  ///< buckets for large first keys
  Bucket unindexed_;
  std::unordered_map<EntryHandle, Locator> locator_;
  EntryHandle next_handle_ = 1;
  mutable TernaryTableStats stats_;
};

}  // namespace p4runpro::rmt
