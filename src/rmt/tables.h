// Ternary match-action table. All P4runpro tables use ternary match with
// (value, mask) keys and priorities (paper §7 "Entry Expansion"), backed by
// TCAM on the ASIC. The simulator models capacity and accelerates lookup
// with an index on exact-match first-key entries (the RPB tables key
// entries on the program id, which is always exact), mimicking the O(1)
// TCAM lookup without a full TCAM model.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace p4runpro::rmt {

/// One ternary key component: matches iff (packet_value & mask) == (value & mask).
struct TernaryKey {
  Word value = 0;
  Word mask = 0;

  [[nodiscard]] bool matches(Word field) const noexcept {
    return (field & mask) == (value & mask);
  }
  /// Wildcard component (matches anything).
  [[nodiscard]] static TernaryKey any() noexcept { return {0, 0}; }
  /// Exact-match component.
  [[nodiscard]] static TernaryKey exact(Word v) noexcept { return {v, 0xffffffffu}; }
};

using EntryHandle = std::uint64_t;

/// Match-action table with ternary keys and an arbitrary action payload.
/// Width (number of key components) is fixed per table; capacity models the
/// TCAM budget of the stage.
template <typename Action>
class TernaryTable {
 public:
  TernaryTable(int key_width, std::size_t capacity)
      : key_width_(key_width), capacity_(capacity) {}

  /// Insert an entry; higher `priority` wins on overlap, ties resolve to
  /// the earlier insertion. Fails when the table is full (the allocator
  /// must prevent this; hitting it at runtime indicates an accounting bug).
  Result<EntryHandle> insert(std::vector<TernaryKey> keys, int priority, Action action) {
    if (keys.size() != static_cast<std::size_t>(key_width_)) {
      return Error{"key width mismatch", "TernaryTable"};
    }
    if (size_ >= capacity_) {
      return Error{"table full", "TernaryTable"};
    }
    const EntryHandle handle = next_handle_++;
    Entry entry{std::move(keys), priority, std::move(action), handle};
    if (entry.keys[0].mask == 0xffffffffu) {
      indexed_[entry.keys[0].value].push_back(std::move(entry));
    } else {
      unindexed_.push_back(std::move(entry));
    }
    ++size_;
    return handle;
  }

  /// Remove by handle; returns false if the handle is unknown.
  bool erase(EntryHandle handle) {
    for (auto it = indexed_.begin(); it != indexed_.end(); ++it) {
      if (erase_from(it->second, handle)) {
        if (it->second.empty()) indexed_.erase(it);
        --size_;
        return true;
      }
    }
    if (erase_from(unindexed_, handle)) {
      --size_;
      return true;
    }
    return false;
  }

  /// Highest-priority matching action, or nullptr on miss.
  [[nodiscard]] const Action* lookup(std::span<const Word> fields) const noexcept {
    const Entry* best = nullptr;
    const auto bucket = indexed_.find(fields[0]);
    if (bucket != indexed_.end()) scan(bucket->second, fields, best);
    scan(unindexed_, fields, best);
    return best == nullptr ? nullptr : &best->action;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t free_entries() const noexcept { return capacity_ - size_; }
  [[nodiscard]] int key_width() const noexcept { return key_width_; }

 private:
  struct Entry {
    std::vector<TernaryKey> keys;
    int priority;
    Action action;
    EntryHandle handle;
  };

  static bool erase_from(std::vector<Entry>& entries, EntryHandle handle) {
    const auto it = std::find_if(entries.begin(), entries.end(),
                                 [handle](const Entry& e) { return e.handle == handle; });
    if (it == entries.end()) return false;
    entries.erase(it);
    return true;
  }

  void scan(const std::vector<Entry>& entries, std::span<const Word> fields,
            const Entry*& best) const noexcept {
    for (const auto& entry : entries) {
      if (best != nullptr && (entry.priority < best->priority ||
                              (entry.priority == best->priority &&
                               entry.handle > best->handle))) {
        continue;
      }
      bool hit = true;
      for (int i = 0; i < key_width_; ++i) {
        if (!entry.keys[static_cast<std::size_t>(i)].matches(
                fields[static_cast<std::size_t>(i)])) {
          hit = false;
          break;
        }
      }
      if (hit) best = &entry;
    }
  }

  int key_width_;
  std::size_t capacity_;
  std::size_t size_ = 0;
  std::unordered_map<Word, std::vector<Entry>> indexed_;
  std::vector<Entry> unindexed_;
  EntryHandle next_handle_ = 1;
};

}  // namespace p4runpro::rmt
