// Per-stage stateful memory with SALU semantics. Each RMT stage owns a
// register array that only its own stage can touch (no cross-stage memory
// access — the constraint behind alignment and recirculation in §4.3), and
// a stateful ALU that performs one read-modify-write per packet, optionally
// guarded by a conditional comparison (used for MEMMAX, as in FlyMon).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace p4runpro::rmt {

/// The memory operations the pre-installed SALU programs implement
/// (Table 3). The `sar` result column encodes whether the SALU outputs the
/// old or the new bucket value (see DESIGN.md §2.2).
enum class SaluOp : std::uint8_t {
  Add,    ///< bucket += sar;          sar = new value
  Sub,    ///< bucket -= sar;          sar = new value
  And,    ///< bucket &= sar;          sar = new value
  Or,     ///< old = bucket; bucket |= sar; sar = old value
  Read,   ///< sar = bucket
  Write,  ///< bucket = sar;           sar unchanged
  Max,    ///< bucket = sar if sar > bucket; sar unchanged
};

/// Result of one SALU execution.
struct SaluResult {
  Word sar_out;   ///< value to write back into the sar register
  bool sar_set;   ///< whether sar is updated at all (Write/Max leave it)
};

/// A stage's register array + SALU.
///
/// Words are relaxed atomics: in the sharded data plane a control-plane
/// memory write (broadcast to every pipe, see RunproDataplane::apply) can
/// race a shard's SALU execution on the same bucket. The hardware resolves
/// that race per 32-bit word (last write wins); relaxed atomic load/store
/// models exactly that — no torn words, no cross-word ordering — and costs
/// a plain mov on x86, so the single-threaded master path is unaffected.
/// SALU read-modify-writes are NOT atomic RMWs on purpose: only the owning
/// shard executes packets against a given StageMemory, so the only
/// concurrent writer is the control plane, which wins the race wholesale.
class StageMemory {
 public:
  explicit StageMemory(std::size_t size) : buckets_(size) {}

  [[nodiscard]] std::size_t size() const noexcept { return buckets_.size(); }

  /// Raw control-plane access (the resource manager's register read/write
  /// path; bounds-checked).
  [[nodiscard]] Word read(MemAddr addr) const noexcept {
    return addr < buckets_.size() ? buckets_[addr].load(std::memory_order_relaxed)
                                  : 0;
  }
  void write(MemAddr addr, Word value) noexcept {
    if (addr < buckets_.size()) {
      buckets_[addr].store(value, std::memory_order_relaxed);
    }
  }

  /// Reset a contiguous range to zero (program-termination memory reset,
  /// Fig. 6 step 4).
  void reset_range(MemAddr base, std::size_t count) noexcept;

  /// Execute one SALU operation at `addr` with stateless input `sar_in`.
  /// Out-of-range addresses read as 0 and drop writes (the hardware would
  /// wrap; the P4runpro compiler's mask step guarantees in-range addresses,
  /// and the LOADI path makes validity the programmer's contract, §4.1.2).
  [[nodiscard]] SaluResult execute(SaluOp op, MemAddr addr, Word sar_in) noexcept;

 private:
  std::vector<std::atomic<Word>> buckets_;  // value-initialized to 0
};

}  // namespace p4runpro::rmt
