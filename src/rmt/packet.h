// Packet and header model. The simulator is header-structured rather than
// byte-oriented: the compile-time parser of the P4runpro data plane defines
// which headers exist (Ethernet / IPv4 / TCP / UDP plus the customized
// NetCache-style application header used by the in-network compute
// programs), and runtime programs may only touch parsed fields — exactly
// the limitation §7 ("Header Parsing") describes.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "common/types.h"

namespace p4runpro::rmt {

struct EthernetHeader {
  std::uint64_t dst_mac = 0;  // lower 48 bits significant
  std::uint64_t src_mac = 0;
  std::uint16_t ether_type = 0x0800;
};

struct Ipv4Header {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint8_t proto = 0;  // 6 TCP, 17 UDP
  std::uint8_t ttl = 64;
  std::uint8_t dscp = 0;
  std::uint8_t ecn = 0;
  std::uint16_t total_len = 0;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t flags = 0;  // FIN=1, SYN=2, RST=4, PSH=8, ACK=16
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
};

/// Customized application header carried over UDP (the parser recognizes it
/// on configured ports). Matches the in-network cache / calculator format of
/// Fig. 2: an opcode, a 64-bit key split into two words, and a value word.
struct AppHeader {
  Word op = 0;
  Word key1 = 0;
  Word key2 = 0;
  Word value = 0;
};

/// 5-tuple view used by the hardware hash units (HASH_5_TUPLE*).
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;

  /// Canonical byte serialization fed to the CRC engines (13 bytes,
  /// network order).
  [[nodiscard]] std::array<std::uint8_t, 13> bytes() const noexcept;
};

/// A packet traversing the pipeline. `payload_len` stands in for the actual
/// payload bytes (the case-study traces use duplicated payload anyway).
struct Packet {
  EthernetHeader eth;
  std::optional<Ipv4Header> ipv4;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<AppHeader> app;
  std::uint32_t payload_len = 0;
  Port ingress_port = 0;

  [[nodiscard]] FiveTuple five_tuple() const noexcept;
  /// Total wire length in bytes (structured headers + payload).
  [[nodiscard]] std::uint32_t wire_len() const noexcept;
};

/// Identifiers for every header / intrinsic-metadata field a P4runpro
/// program can name (the `FIELD` terminals of the grammar, Fig. 15).
enum class FieldId : std::uint8_t {
  EthDstHi,   // upper 32 bits of dst MAC
  EthDstLo,   // lower 16 bits of dst MAC
  EthSrcHi,
  EthSrcLo,
  EthType,
  Ipv4Src,
  Ipv4Dst,
  Ipv4Proto,
  Ipv4Ttl,
  Ipv4Dscp,
  Ipv4Ecn,
  Ipv4Len,
  TcpSrcPort,
  TcpDstPort,
  TcpFlags,
  UdpSrcPort,
  UdpDstPort,
  AppOp,
  AppKey1,
  AppKey2,
  AppValue,
  MetaIngressPort,
  MetaQdepth,  // queue depth from the traffic manager (ECN program)
};

/// Read a field as a 32-bit word; absent headers read as 0 (the hardware
/// reads PHV containers that are simply not valid — programs filter on the
/// parse bitmap precisely to avoid this).
[[nodiscard]] Word read_field(const Packet& pkt, FieldId field, Word qdepth) noexcept;

/// Write a field; writes to absent headers are dropped.
void write_field(Packet& pkt, FieldId field, Word value) noexcept;

/// Name table for diagnostics and the DSL front end.
[[nodiscard]] std::optional<FieldId> field_from_name(std::string_view name) noexcept;
[[nodiscard]] std::string_view field_name(FieldId field) noexcept;

}  // namespace p4runpro::rmt
