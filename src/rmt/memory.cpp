#include "rmt/memory.h"

#include <algorithm>

namespace p4runpro::rmt {

void StageMemory::reset_range(MemAddr base, std::size_t count) noexcept {
  if (base >= buckets_.size()) return;
  const std::size_t end = std::min(buckets_.size(), static_cast<std::size_t>(base) + count);
  std::fill(buckets_.begin() + base, buckets_.begin() + static_cast<std::ptrdiff_t>(end), 0u);
}

SaluResult StageMemory::execute(SaluOp op, MemAddr addr, Word sar_in) noexcept {
  if (addr >= buckets_.size()) {
    // Invalid physical address: reads see 0, writes are dropped.
    return {0, op != SaluOp::Write && op != SaluOp::Max};
  }
  Word& bucket = buckets_[addr];
  switch (op) {
    case SaluOp::Add:
      bucket += sar_in;
      return {bucket, true};
    case SaluOp::Sub:
      bucket -= sar_in;
      return {bucket, true};
    case SaluOp::And:
      bucket &= sar_in;
      return {bucket, true};
    case SaluOp::Or: {
      const Word old = bucket;
      bucket |= sar_in;
      return {old, true};
    }
    case SaluOp::Read:
      return {bucket, true};
    case SaluOp::Write:
      bucket = sar_in;
      return {sar_in, false};
    case SaluOp::Max:
      if (sar_in > bucket) bucket = sar_in;
      return {sar_in, false};
  }
  return {0, false};
}

}  // namespace p4runpro::rmt
