#include "rmt/memory.h"

#include <algorithm>

namespace p4runpro::rmt {

void StageMemory::reset_range(MemAddr base, std::size_t count) noexcept {
  if (base >= buckets_.size()) return;
  const std::size_t end =
      std::min(buckets_.size(), static_cast<std::size_t>(base) + count);
  for (std::size_t a = base; a < end; ++a) {
    buckets_[a].store(0, std::memory_order_relaxed);
  }
}

SaluResult StageMemory::execute(SaluOp op, MemAddr addr, Word sar_in) noexcept {
  if (addr >= buckets_.size()) {
    // Invalid physical address: reads see 0, writes are dropped.
    return {0, op != SaluOp::Write && op != SaluOp::Max};
  }
  std::atomic<Word>& bucket = buckets_[addr];
  // One load and at most one store per packet, matching the hardware's
  // single read-modify-write window (see the class comment for why these
  // are relaxed atomics rather than plain words or atomic RMWs).
  const Word old = bucket.load(std::memory_order_relaxed);
  switch (op) {
    case SaluOp::Add:
      bucket.store(old + sar_in, std::memory_order_relaxed);
      return {old + sar_in, true};
    case SaluOp::Sub:
      bucket.store(old - sar_in, std::memory_order_relaxed);
      return {old - sar_in, true};
    case SaluOp::And:
      bucket.store(old & sar_in, std::memory_order_relaxed);
      return {old & sar_in, true};
    case SaluOp::Or:
      bucket.store(old | sar_in, std::memory_order_relaxed);
      return {old, true};
    case SaluOp::Read:
      return {old, true};
    case SaluOp::Write:
      bucket.store(sar_in, std::memory_order_relaxed);
      return {sar_in, false};
    case SaluOp::Max:
      if (sar_in > old) bucket.store(sar_in, std::memory_order_relaxed);
      return {sar_in, false};
  }
  return {0, false};
}

}  // namespace p4runpro::rmt
