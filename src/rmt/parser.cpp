#include "rmt/parser.h"

#include <algorithm>

namespace p4runpro::rmt {

Phv Parser::parse(const Packet& pkt) const noexcept {
  Phv phv;
  phv.pkt = pkt;
  phv.parse_bitmap = kParseEth;  // every frame starts at the Ethernet state
  if (pkt.ipv4) {
    phv.parse_bitmap |= kParseIpv4;
    if (pkt.tcp) {
      phv.parse_bitmap |= kParseTcp;
    } else if (pkt.udp) {
      phv.parse_bitmap |= kParseUdp;
      const bool app_port =
          std::find(config_.app_udp_ports.begin(), config_.app_udp_ports.end(),
                    pkt.udp->dst_port) != config_.app_udp_ports.end();
      if (app_port && pkt.app) phv.parse_bitmap |= kParseApp;
    }
  }
  return phv;
}

}  // namespace p4runpro::rmt
