// Resource model of the RMT ASIC. The seven resource classes reported in
// the paper's Fig. 10 (PHV, hash unit, SRAM, TCAM, VLIW, SALU, LTID) are
// tracked against per-chip budgets patterned after a Tofino-class device
// (12 MAU stages per pipe; figures are simulator calibration constants, see
// DESIGN.md §1).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace p4runpro::rmt {

enum class Resource : std::uint8_t {
  Phv,   ///< packet header vector bits
  Hash,  ///< hash distribution / generation units
  Sram,  ///< SRAM unit rams (stateful memory + exact tables)
  Tcam,  ///< TCAM blocks (ternary tables)
  Vliw,  ///< VLIW action instruction slots
  Salu,  ///< stateful ALUs
  Ltid,  ///< logical table IDs
};

inline constexpr int kNumResources = 7;

[[nodiscard]] constexpr std::string_view resource_name(Resource r) noexcept {
  switch (r) {
    case Resource::Phv: return "PHV";
    case Resource::Hash: return "Hash";
    case Resource::Sram: return "SRAM";
    case Resource::Tcam: return "TCAM";
    case Resource::Vliw: return "VLIW";
    case Resource::Salu: return "SALU";
    case Resource::Ltid: return "LTID";
  }
  return "?";
}

/// Whole-chip budgets (single pipe).
struct ChipBudget {
  int stages = 12;
  int phv_bits = 4096;             // 64x8b + 96x16b + 64x32b containers
  int hash_units_per_stage = 6;    // hash distribution units
  int sram_blocks_per_stage = 80;  // 16 KB unit rams
  int tcam_blocks_per_stage = 24;  // 44b x 512 blocks
  int vliw_slots_per_stage = 32;   // action instruction words
  int salus_per_stage = 4;
  int ltids_per_stage = 16;

  [[nodiscard]] int total(Resource r) const noexcept;
};

/// Absolute usage counts in the same units as ChipBudget.
struct ResourceUsage {
  std::array<int, kNumResources> used{};

  [[nodiscard]] int get(Resource r) const noexcept {
    return used[static_cast<std::size_t>(r)];
  }
  void set(Resource r, int v) noexcept { used[static_cast<std::size_t>(r)] = v; }
  void add(Resource r, int v) noexcept { used[static_cast<std::size_t>(r)] += v; }

  /// Percentage of the budget consumed, clamped to [0, 100].
  [[nodiscard]] double percent(Resource r, const ChipBudget& budget) const noexcept;
};

}  // namespace p4runpro::rmt
