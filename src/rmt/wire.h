// Wire-format serialization: turns the structured Packet into the bytes a
// real NIC would see, and parses such bytes back. Used by the pcap-style
// tooling and by tests that validate the structured model against a real
// byte-level parse (what the Tofino parser actually consumes).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "rmt/packet.h"

namespace p4runpro::rmt {

/// Serialize to wire bytes (Ethernet II framing; IPv4 header checksum
/// computed; payload rendered as zero bytes of the recorded length, like
/// the anonymized campus trace whose payloads were replaced).
[[nodiscard]] std::vector<std::uint8_t> serialize(const Packet& pkt);

/// Parse wire bytes back into a structured Packet. `app_udp_ports` mirrors
/// the provisioning-time parser configuration: UDP payloads on these
/// destination ports are parsed as the application header.
[[nodiscard]] Result<Packet> parse_bytes(std::span<const std::uint8_t> bytes,
                                         std::span<const std::uint16_t> app_udp_ports);

/// The IPv4 header checksum (RFC 1071 over the 20-byte header).
[[nodiscard]] std::uint16_t ipv4_checksum(std::span<const std::uint8_t> header);

}  // namespace p4runpro::rmt
