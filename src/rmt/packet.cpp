#include "rmt/packet.h"

#include <unordered_map>

namespace p4runpro::rmt {

std::array<std::uint8_t, 13> FiveTuple::bytes() const noexcept {
  std::array<std::uint8_t, 13> out{};
  auto put32 = [&out](int at, std::uint32_t v) {
    out[at] = static_cast<std::uint8_t>(v >> 24);
    out[at + 1] = static_cast<std::uint8_t>(v >> 16);
    out[at + 2] = static_cast<std::uint8_t>(v >> 8);
    out[at + 3] = static_cast<std::uint8_t>(v);
  };
  auto put16 = [&out](int at, std::uint16_t v) {
    out[at] = static_cast<std::uint8_t>(v >> 8);
    out[at + 1] = static_cast<std::uint8_t>(v);
  };
  put32(0, src_ip);
  put32(4, dst_ip);
  put16(8, src_port);
  put16(10, dst_port);
  out[12] = proto;
  return out;
}

FiveTuple Packet::five_tuple() const noexcept {
  FiveTuple t;
  if (ipv4) {
    t.src_ip = ipv4->src;
    t.dst_ip = ipv4->dst;
    t.proto = ipv4->proto;
  }
  if (tcp) {
    t.src_port = tcp->src_port;
    t.dst_port = tcp->dst_port;
  } else if (udp) {
    t.src_port = udp->src_port;
    t.dst_port = udp->dst_port;
  }
  return t;
}

std::uint32_t Packet::wire_len() const noexcept {
  std::uint32_t len = 14;  // Ethernet
  if (ipv4) len += 20;
  if (tcp) len += 20;
  if (udp) len += 8;
  if (app) len += 16;
  return len + payload_len;
}

Word read_field(const Packet& pkt, FieldId field, Word qdepth) noexcept {
  switch (field) {
    case FieldId::EthDstHi: return static_cast<Word>(pkt.eth.dst_mac >> 16);
    case FieldId::EthDstLo: return static_cast<Word>(pkt.eth.dst_mac & 0xffff);
    case FieldId::EthSrcHi: return static_cast<Word>(pkt.eth.src_mac >> 16);
    case FieldId::EthSrcLo: return static_cast<Word>(pkt.eth.src_mac & 0xffff);
    case FieldId::EthType: return pkt.eth.ether_type;
    case FieldId::Ipv4Src: return pkt.ipv4 ? pkt.ipv4->src : 0;
    case FieldId::Ipv4Dst: return pkt.ipv4 ? pkt.ipv4->dst : 0;
    case FieldId::Ipv4Proto: return pkt.ipv4 ? pkt.ipv4->proto : 0;
    case FieldId::Ipv4Ttl: return pkt.ipv4 ? pkt.ipv4->ttl : 0;
    case FieldId::Ipv4Dscp: return pkt.ipv4 ? pkt.ipv4->dscp : 0;
    case FieldId::Ipv4Ecn: return pkt.ipv4 ? pkt.ipv4->ecn : 0;
    case FieldId::Ipv4Len: return pkt.ipv4 ? pkt.ipv4->total_len : 0;
    case FieldId::TcpSrcPort: return pkt.tcp ? pkt.tcp->src_port : 0;
    case FieldId::TcpDstPort: return pkt.tcp ? pkt.tcp->dst_port : 0;
    case FieldId::TcpFlags: return pkt.tcp ? pkt.tcp->flags : 0;
    case FieldId::UdpSrcPort: return pkt.udp ? pkt.udp->src_port : 0;
    case FieldId::UdpDstPort: return pkt.udp ? pkt.udp->dst_port : 0;
    case FieldId::AppOp: return pkt.app ? pkt.app->op : 0;
    case FieldId::AppKey1: return pkt.app ? pkt.app->key1 : 0;
    case FieldId::AppKey2: return pkt.app ? pkt.app->key2 : 0;
    case FieldId::AppValue: return pkt.app ? pkt.app->value : 0;
    case FieldId::MetaIngressPort: return pkt.ingress_port;
    case FieldId::MetaQdepth: return qdepth;
  }
  return 0;
}

void write_field(Packet& pkt, FieldId field, Word value) noexcept {
  switch (field) {
    case FieldId::EthDstHi:
      pkt.eth.dst_mac = (pkt.eth.dst_mac & 0xffffull) |
                        (static_cast<std::uint64_t>(value) << 16);
      return;
    case FieldId::EthDstLo:
      pkt.eth.dst_mac = (pkt.eth.dst_mac & ~0xffffull) | (value & 0xffff);
      return;
    case FieldId::EthSrcHi:
      pkt.eth.src_mac = (pkt.eth.src_mac & 0xffffull) |
                        (static_cast<std::uint64_t>(value) << 16);
      return;
    case FieldId::EthSrcLo:
      pkt.eth.src_mac = (pkt.eth.src_mac & ~0xffffull) | (value & 0xffff);
      return;
    case FieldId::EthType:
      pkt.eth.ether_type = static_cast<std::uint16_t>(value);
      return;
    case FieldId::Ipv4Src:
      if (pkt.ipv4) pkt.ipv4->src = value;
      return;
    case FieldId::Ipv4Dst:
      if (pkt.ipv4) pkt.ipv4->dst = value;
      return;
    case FieldId::Ipv4Proto:
      if (pkt.ipv4) pkt.ipv4->proto = static_cast<std::uint8_t>(value);
      return;
    case FieldId::Ipv4Ttl:
      if (pkt.ipv4) pkt.ipv4->ttl = static_cast<std::uint8_t>(value);
      return;
    case FieldId::Ipv4Dscp:
      if (pkt.ipv4) pkt.ipv4->dscp = static_cast<std::uint8_t>(value);
      return;
    case FieldId::Ipv4Ecn:
      if (pkt.ipv4) pkt.ipv4->ecn = static_cast<std::uint8_t>(value & 0x3);
      return;
    case FieldId::Ipv4Len:
      if (pkt.ipv4) pkt.ipv4->total_len = static_cast<std::uint16_t>(value);
      return;
    case FieldId::TcpSrcPort:
      if (pkt.tcp) pkt.tcp->src_port = static_cast<std::uint16_t>(value);
      return;
    case FieldId::TcpDstPort:
      if (pkt.tcp) pkt.tcp->dst_port = static_cast<std::uint16_t>(value);
      return;
    case FieldId::TcpFlags:
      if (pkt.tcp) pkt.tcp->flags = static_cast<std::uint8_t>(value);
      return;
    case FieldId::UdpSrcPort:
      if (pkt.udp) pkt.udp->src_port = static_cast<std::uint16_t>(value);
      return;
    case FieldId::UdpDstPort:
      if (pkt.udp) pkt.udp->dst_port = static_cast<std::uint16_t>(value);
      return;
    case FieldId::AppOp:
      if (pkt.app) pkt.app->op = value;
      return;
    case FieldId::AppKey1:
      if (pkt.app) pkt.app->key1 = value;
      return;
    case FieldId::AppKey2:
      if (pkt.app) pkt.app->key2 = value;
      return;
    case FieldId::AppValue:
      if (pkt.app) pkt.app->value = value;
      return;
    case FieldId::MetaIngressPort:
    case FieldId::MetaQdepth:
      return;  // intrinsic metadata is read-only from programs
  }
}

namespace {
struct FieldName {
  std::string_view name;
  FieldId id;
};

constexpr FieldName kFieldNames[] = {
    {"hdr.eth.dst_hi", FieldId::EthDstHi},
    {"hdr.eth.dst_lo", FieldId::EthDstLo},
    {"hdr.eth.src_hi", FieldId::EthSrcHi},
    {"hdr.eth.src_lo", FieldId::EthSrcLo},
    {"hdr.eth.type", FieldId::EthType},
    {"hdr.ipv4.src", FieldId::Ipv4Src},
    {"hdr.ipv4.dst", FieldId::Ipv4Dst},
    {"hdr.ipv4.proto", FieldId::Ipv4Proto},
    {"hdr.ipv4.ttl", FieldId::Ipv4Ttl},
    {"hdr.ipv4.dscp", FieldId::Ipv4Dscp},
    {"hdr.ipv4.ecn", FieldId::Ipv4Ecn},
    {"hdr.ipv4.len", FieldId::Ipv4Len},
    {"hdr.tcp.src_port", FieldId::TcpSrcPort},
    {"hdr.tcp.dst_port", FieldId::TcpDstPort},
    {"hdr.tcp.flags", FieldId::TcpFlags},
    {"hdr.udp.src_port", FieldId::UdpSrcPort},
    {"hdr.udp.dst_port", FieldId::UdpDstPort},
    {"hdr.nc.op", FieldId::AppOp},
    {"hdr.nc.key1", FieldId::AppKey1},
    {"hdr.nc.key2", FieldId::AppKey2},
    {"hdr.nc.val", FieldId::AppValue},
    {"hdr.nc.value", FieldId::AppValue},
    {"meta.ingress_port", FieldId::MetaIngressPort},
    {"meta.qdepth", FieldId::MetaQdepth},
};
}  // namespace

std::optional<FieldId> field_from_name(std::string_view name) noexcept {
  for (const auto& entry : kFieldNames) {
    if (entry.name == name) return entry.id;
  }
  return std::nullopt;
}

std::string_view field_name(FieldId field) noexcept {
  for (const auto& entry : kFieldNames) {
    if (entry.id == field) return entry.name;
  }
  return "<unknown-field>";
}

}  // namespace p4runpro::rmt
