#include "rmt/tables.h"

#include <cstdio>
#include <string>

namespace p4runpro::rmt {

/// Debug formatting of a ternary key, e.g. "0x00001e61/0xffff".
std::string to_string(const TernaryKey& key) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%08x/0x%08x", key.value, key.mask);
  return buf;
}

}  // namespace p4runpro::rmt
