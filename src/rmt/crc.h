// Hardware hash units of the RMT pipeline. Tofino exposes configurable CRC
// engines; the paper's heavy-hitter case study (Fig. 13d) uses the standard
// algorithms crc_16_buypass, crc_16_mcrf4xx, crc_aug_ccitt and
// crc_16_dds_110 for the CMS/BF rows. We implement the generic
// parameterized CRC plus those named instances and CRC-32.
#pragma once

#include <cstdint>
#include <span>

namespace p4runpro::rmt {

/// Rocksoft-style CRC parameterization (width <= 32).
struct CrcParams {
  int width;
  std::uint32_t poly;
  std::uint32_t init;
  bool reflect_in;
  bool reflect_out;
  std::uint32_t xor_out;
};

/// Compute a CRC over `data` with the given parameters. Bitwise reference
/// implementation for arbitrary parameters; the named instances below are
/// table-driven (they sit on the per-packet hash hot path) and bit-exact
/// against this engine.
[[nodiscard]] std::uint32_t crc_generic(const CrcParams& params,
                                        std::span<const std::uint8_t> data) noexcept;

// Named instances (check values over "123456789" in parentheses).
[[nodiscard]] std::uint16_t crc16_buypass(std::span<const std::uint8_t> data) noexcept;    // 0xFEE8
[[nodiscard]] std::uint16_t crc16_mcrf4xx(std::span<const std::uint8_t> data) noexcept;    // 0x6F91
[[nodiscard]] std::uint16_t crc16_aug_ccitt(std::span<const std::uint8_t> data) noexcept;  // 0xE5CC
[[nodiscard]] std::uint16_t crc16_dds110(std::span<const std::uint8_t> data) noexcept;     // 0x9ECF
[[nodiscard]] std::uint32_t crc32_iso_hdlc(std::span<const std::uint8_t> data) noexcept;   // 0xCBF43926

/// Identifier of the per-stage hash engine configuration. Each RPB owns a
/// hash unit; the prototype cycles through the four CRC-16 variants (as in
/// the case study) widened to 32 bits by a second CRC-32 pass.
enum class HashAlgo : std::uint8_t {
  Crc16Buypass,
  Crc16Mcrf4xx,
  Crc16AugCcitt,
  Crc16Dds110,
  Crc32,
};

/// Run the selected algorithm. 16-bit algorithms return their value in the
/// low 16 bits (the hardware hash output width before the mask step).
[[nodiscard]] std::uint32_t run_hash(HashAlgo algo, std::span<const std::uint8_t> data) noexcept;

}  // namespace p4runpro::rmt
