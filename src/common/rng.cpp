#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace p4runpro {

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64: seeds the xoshiro state from a single 64-bit seed.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint32_t Rng::next_u32() noexcept {
  return static_cast<std::uint32_t>(next_u64() >> 32);
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  const std::uint64_t limit = ~0ull - ~0ull % bound;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

ZipfSampler::ZipfSampler(std::size_t n, double skew) {
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace p4runpro
