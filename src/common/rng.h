// Deterministic random number generation for workload synthesis.
// All experiments seed their generators explicitly so every bench run is
// reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace p4runpro {

/// xoshiro256** — small, fast, high-quality PRNG. Deterministic across
/// platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  [[nodiscard]] std::uint64_t next_u64() noexcept;
  [[nodiscard]] std::uint32_t next_u32() noexcept;
  /// Uniform integer in [0, bound) with rejection to avoid modulo bias.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound) noexcept;
  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Zipf(s) sampler over {0, .., n-1} via precomputed CDF and binary search.
/// Used to synthesize heavy-tailed flow-size distributions (campus-like
/// traffic for the Fig. 13 case studies).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace p4runpro
