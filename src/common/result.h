// Minimal expected-like result type (the toolchain targets C++20, which
// lacks std::expected). Used for fallible operations that should not throw,
// e.g. compilation and resource allocation.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace p4runpro {

/// Error payload carried by Result. `where` is a coarse source location or
/// subsystem tag, `message` is human-readable.
struct Error {
  std::string message;
  std::string where;

  [[nodiscard]] std::string str() const {
    return where.empty() ? message : where + ": " + message;
  }
};

/// Either a value of type T or an Error. Intentionally tiny: just enough to
/// propagate compiler/allocator failures without exceptions.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : storage_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }
  [[nodiscard]] const Error& error() const& {
    assert(!ok());
    return std::get<Error>(storage_);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result specialization for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error err) : error_(std::move(err)), failed_(true) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] const Error& error() const& {
    assert(failed_);
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace p4runpro
