// Minimal expected-like result type (the toolchain targets C++20, which
// lacks std::expected). Used for fallible operations that should not throw,
// e.g. compilation and resource allocation.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace p4runpro {

/// Failure class carried on every Error. Lets callers (and tests) branch on
/// *what kind* of failure occurred instead of matching message substrings:
/// a rolled-back deploy transaction reports ChannelError, an infeasible
/// allocation AllocFailed, and so on. `Unknown` is the legacy default for
/// untagged sites and is never printed.
enum class ErrorCode : std::uint8_t {
  Unknown = 0,
  ParseError,       ///< lexer/parser rejected the source text
  SemanticError,    ///< semantic check / translation rejected the program
  AllocFailed,      ///< solver found no feasible allocation, or a resource
                    ///< commit (memory block, table entries) was exhausted
  ChannelError,     ///< simulated bfrt control-channel write failed
  NotFound,         ///< unknown program / memory / address target
  Conflict,         ///< name or resource clash with existing state
  OutOfRange,       ///< address or index outside the valid range
  InvalidArgument,  ///< malformed request (wrong arity, bad parameters)
  AdmissionShed,    ///< admission controller shed the session (queue full)
  QuotaExceeded,    ///< tenant quota would be exceeded by the request
};

[[nodiscard]] constexpr const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::Unknown: return "Unknown";
    case ErrorCode::ParseError: return "ParseError";
    case ErrorCode::SemanticError: return "SemanticError";
    case ErrorCode::AllocFailed: return "AllocFailed";
    case ErrorCode::ChannelError: return "ChannelError";
    case ErrorCode::NotFound: return "NotFound";
    case ErrorCode::Conflict: return "Conflict";
    case ErrorCode::OutOfRange: return "OutOfRange";
    case ErrorCode::InvalidArgument: return "InvalidArgument";
    case ErrorCode::AdmissionShed: return "AdmissionShed";
    case ErrorCode::QuotaExceeded: return "QuotaExceeded";
  }
  return "Unknown";
}

/// Error payload carried by Result. `where` is a coarse source location or
/// subsystem tag, `message` is human-readable, `code` is the failure class
/// (prefixed in str() so operators and tests can assert on it).
struct Error {
  std::string message;
  std::string where;
  ErrorCode code = ErrorCode::Unknown;

  [[nodiscard]] std::string str() const {
    std::string out;
    if (code != ErrorCode::Unknown) {
      out += '[';
      out += error_code_name(code);
      out += "] ";
    }
    if (!where.empty()) {
      out += where;
      out += ": ";
    }
    out += message;
    return out;
  }
};

/// Either a value of type T or an Error. Intentionally tiny: just enough to
/// propagate compiler/allocator failures without exceptions.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : storage_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }
  [[nodiscard]] const Error& error() const& {
    assert(!ok());
    return std::get<Error>(storage_);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result specialization for operations with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error err) : error_(std::move(err)), failed_(true) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] const Error& error() const& {
    assert(failed_);
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace p4runpro
