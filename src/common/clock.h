// Virtual time. The simulated control-plane channel (bfrt writes), traffic
// replay, and the case-study harnesses all charge time to a SimClock so that
// experiments are deterministic and run in milliseconds of wall time.
#pragma once

#include <cstdint>

namespace p4runpro {

/// Nanosecond-resolution virtual clock. Monotonic; advanced explicitly by
/// the components that model latency.
class SimClock {
 public:
  using Nanos = std::uint64_t;

  [[nodiscard]] Nanos now_ns() const noexcept { return now_; }
  [[nodiscard]] double now_ms() const noexcept { return static_cast<double>(now_) / 1e6; }
  [[nodiscard]] double now_s() const noexcept { return static_cast<double>(now_) / 1e9; }

  void advance_ns(Nanos delta) noexcept { now_ += delta; }
  void advance_us(double us) noexcept;
  void advance_ms(double ms) noexcept;

  /// Move the clock forward to an absolute instant; no-op if already past it.
  void advance_to_ns(Nanos t) noexcept {
    if (t > now_) now_ = t;
  }

  void reset() noexcept { now_ = 0; }

 private:
  Nanos now_ = 0;
};

/// RAII stopwatch over real (wall) time, used where the experiment measures
/// genuine computation cost (e.g. allocation-scheme solving, Fig. 7/12).
class WallTimer {
 public:
  WallTimer();
  /// Elapsed wall time in milliseconds since construction or last restart.
  [[nodiscard]] double elapsed_ms() const;
  void restart();

 private:
  std::uint64_t start_ns_ = 0;
};

}  // namespace p4runpro
