#include "common/thread_pool.h"

#include <algorithm>

namespace p4runpro::common {

unsigned ThreadPool::default_thread_count() noexcept {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace p4runpro::common
