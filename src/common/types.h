// Fundamental value types shared across the P4runpro reproduction.
#pragma once

#include <cstdint>
#include <string>

namespace p4runpro {

/// Machine word of the data plane. The prototype sets the PHV register and
/// memory bucket width to 32 bits, the maximum operable width of the
/// hardware ALUs (paper §5).
using Word = std::uint32_t;

/// Identifier of a linked runtime program, assigned by the controller.
/// Program id 0 is reserved for "no program" (plain forwarding).
using ProgramId = std::uint16_t;

/// Program-local conditional-branch identifier set by the BRANCH primitive.
/// Branch id 0 is the root branch of every program.
using BranchId = std::uint16_t;

/// Packet-local recirculation iteration counter (0 on first pass).
using RecircId = std::uint8_t;

/// Front-panel port number.
using Port = std::uint16_t;

/// Virtual/physical address into a stage's stateful memory.
using MemAddr = std::uint32_t;

/// The three PHV "registers" the data plane arranges for runtime programs
/// (paper §4.1.2): hash register, SALU register, and memory address register.
enum class Reg : std::uint8_t { Har = 0, Sar = 1, Mar = 2 };

inline constexpr int kNumRegs = 3;

[[nodiscard]] constexpr const char* to_string(Reg r) noexcept {
  switch (r) {
    case Reg::Har: return "har";
    case Reg::Sar: return "sar";
    case Reg::Mar: return "mar";
  }
  return "?";
}

/// Maximum representable register value; used by pseudo-primitive
/// translations (two's-complement tricks in Fig. 14).
inline constexpr Word kRegMax = 0xffffffffu;

}  // namespace p4runpro
