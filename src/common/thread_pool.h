// Minimal fixed-size thread pool for parallelizing INDEPENDENT work units:
// bench trials, workload shards over separate pipeline replicas, batched
// per-program solves. Pipelines / controllers / telemetry bundles are
// stateful and not thread-safe — shard by replica (one Testbed per task,
// each with its own obs::Telemetry), never share one across threads; see
// docs/PERFORMANCE.md for the threading rules.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace p4runpro::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned threads = default_thread_count());

  /// Drains nothing: outstanding tasks run to completion, then workers exit.
  ~ThreadPool();

  /// Schedule `fn` and get a future for its result. Exceptions propagate
  /// through the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task]() mutable { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Hardware concurrency, clamped to >= 1 (hardware_concurrency() may
  /// report 0).
  [[nodiscard]] static unsigned default_thread_count() noexcept;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  void worker();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace p4runpro::common
