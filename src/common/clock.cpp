#include "common/clock.h"

#include <chrono>
#include <cmath>

namespace p4runpro {

namespace {
[[nodiscard]] std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

void SimClock::advance_us(double us) noexcept {
  advance_ns(static_cast<Nanos>(std::llround(us * 1e3)));
}

void SimClock::advance_ms(double ms) noexcept {
  advance_ns(static_cast<Nanos>(std::llround(ms * 1e6)));
}

WallTimer::WallTimer() : start_ns_(steady_now_ns()) {}

double WallTimer::elapsed_ms() const {
  return static_cast<double>(steady_now_ns() - start_ns_) / 1e6;
}

void WallTimer::restart() { start_ns_ = steady_now_ns(); }

}  // namespace p4runpro
