#include "apps/program_library.h"

#include <cassert>
#include <sstream>

#include "lang/lexer.h"

namespace p4runpro::apps {

namespace {

/// Template-local helpers -------------------------------------------------


[[nodiscard]] std::string hex(Word v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

/// In-network cache (Fig. 2). Opcode 1 = cache read, 2 = cache write; the
/// elastic case blocks are the per-key read/write pairs.
[[nodiscard]] std::string make_cache(const ProgramConfig& c) {
  const Word port = c.filter_value != 0 ? c.filter_value : 7777;
  const int keys = std::max(1, c.elastic_cases / 2);
  std::ostringstream out;
  out << "@ mem1 " << c.mem_buckets << "\n";
  out << "program " << c.instance_name << "(\n";
  out << "    /*filtering traffic*/\n";
  out << "    <hdr.udp.dst_port, " << port << ", 0xffff>) {\n";
  out << "  EXTRACT(hdr.nc.op, har);   //get opcode\n";
  out << "  EXTRACT(hdr.nc.key1, sar); //get key[0:31]\n";
  out << "  EXTRACT(hdr.nc.key2, mar); //get key[32:63]\n";
  out << "  BRANCH:\n";
  for (int k = 0; k < keys; ++k) {
    const Word key = 0x8888 + static_cast<Word>(k);
    const Word addr = static_cast<Word>(k) % c.mem_buckets;
    out << "  /*cache hit and cache read*/\n";
    out << "  case(<har, 1, 0xff>,\n";
    out << "       <sar, " << hex(key) << ", 0xffffffff>,\n";
    out << "       <mar, 0, 0xffffffff>) {\n";
    out << "    RETURN;               //return to client\n";
    out << "    LOADI(mar, " << addr << ");  //load address\n";
    out << "    MEMREAD(mem1);        //read cache\n";
    out << "    MODIFY(hdr.nc.value, sar);\n";
    out << "  };\n";
    out << "  /*cache hit and cache write*/\n";
    out << "  case(<har, 2, 0xff>,\n";
    out << "       <sar, " << hex(key) << ", 0xffffffff>,\n";
    out << "       <mar, 0, 0xffffffff>) {\n";
    out << "    DROP;                 //drop the packet\n";
    out << "    LOADI(mar, " << addr << ");  //load address\n";
    out << "    EXTRACT(hdr.nc.val, sar); //get value\n";
    out << "    MEMWRITE(mem1);       //write cache\n";
    out << "  };\n";
  }
  out << "  FORWARD(32); //cache miss\n";
  out << "}\n";
  return out.str();
}

/// Stateless load balancer (Fig. 16): hash the 5-tuple to a bucket, read
/// the egress port and the DIP from two memory pools.
[[nodiscard]] std::string make_lb(const ProgramConfig& c) {
  const Word prefix = c.filter_value != 0 ? c.filter_value : 0x0a000000;  // 10.0.0.0
  std::ostringstream out;
  out << "@ dip_pool " << c.mem_buckets << "\n";
  out << "@ port_pool " << c.mem_buckets << "\n";
  out << "program " << c.instance_name << "(\n";
  out << "    /*filtering traffic*/\n";
  out << "    <hdr.ipv4.dst, " << hex(prefix) << ", 0xffff0000>) {\n";
  out << "  HASH_5_TUPLE_MEM(port_pool); //locate bucket\n";
  out << "  MEMREAD(port_pool);          //get egress port\n";
  out << "  BRANCH:\n";
  for (int p = 0; p < std::max(1, c.elastic_cases); ++p) {
    out << "  case(<sar, " << p << ", 0xffffffff>) {\n";
    out << "    FORWARD(" << (p % 64) << ");\n";
    out << "  };\n";
  }
  out << "  MEMREAD(dip_pool);           //get DIP\n";
  out << "  MODIFY(hdr.ipv4.dst, sar);   //write DIP\n";
  out << "}\n";
  return out.str();
}

/// Heavy hitter detector (Fig. 17): 2-row CMS frequency estimate guarded by
/// a 2-row Bloom filter that deduplicates reports.
[[nodiscard]] std::string make_hh(const ProgramConfig& c) {
  const Word prefix = c.filter_value != 0 ? c.filter_value : 0x0a000000;
  const Word t = c.threshold;
  std::ostringstream out;
  out << "@ mem_cms_row1 " << c.mem_buckets << " //CMS with two rows\n";
  out << "@ mem_cms_row2 " << c.mem_buckets << "\n";
  out << "@ mem_bf_row1 " << c.mem_buckets << "  //BF with two rows\n";
  out << "@ mem_bf_row2 " << c.mem_buckets << "\n";
  out << "program " << c.instance_name << "(\n";
  out << "    /*filtering traffic*/\n";
  out << "    <hdr.ipv4.src, " << hex(prefix) << ", 0xffff0000>) {\n";
  out << "  LOADI(sar, 1);\n";
  out << "  HASH_5_TUPLE_MEM(mem_cms_row1);\n";
  out << "  MEMADD(mem_cms_row1);  //count packet\n";
  out << "  LOADI(har, " << t << ");  //set threshold\n";
  out << "  MIN(har, sar);         //compare with threshold\n";
  out << "  LOADI(sar, 1);\n";
  out << "  HASH_5_TUPLE_MEM(mem_cms_row2);\n";
  out << "  MEMADD(mem_cms_row2);\n";
  out << "  MIN(har, sar);\n";
  out << "  BRANCH:\n";
  out << "  /*flow count exceeds the threshold*/\n";
  out << "  case(<har, " << t << ", 0xffffffff>) {\n";
  out << "    LOADI(sar, 1);\n";
  out << "    HASH_5_TUPLE_MEM(mem_bf_row1);\n";
  out << "    MEMOR(mem_bf_row1);  //check existence\n";
  out << "    BRANCH:\n";
  out << "    /*exists in row 1: check row 2 against hash collisions*/\n";
  out << "    case(<sar, 1, 0xffffffff>) {\n";
  out << "      LOADI(sar, 1);\n";
  out << "      HASH_5_TUPLE_MEM(mem_bf_row2);\n";
  out << "      MEMOR(mem_bf_row2); //check another\n";
  out << "      BRANCH:\n";
  out << "      case(<sar, 0, 0xffffffff>) {\n";
  out << "        REPORT; //report this packet\n";
  out << "      };\n";
  out << "    };\n";
  out << "    /*does not exist: first detection*/\n";
  out << "    case(<sar, 0, 0xffffffff>) {\n";
  out << "      LOADI(sar, 1);\n";
  out << "      HASH_5_TUPLE_MEM(mem_bf_row2);\n";
  out << "      MEMOR(mem_bf_row2); //update another\n";
  out << "      REPORT; //report this packet\n";
  out << "    };\n";
  out << "  };\n";
  out << "}\n";
  return out.str();
}

/// NetCache: the in-network cache composed with hot-key detection on the
/// cache-miss path (the paper's most complex program).
[[nodiscard]] std::string make_netcache(const ProgramConfig& c) {
  const Word port = c.filter_value != 0 ? c.filter_value : 7788;
  const int keys = std::max(1, c.elastic_cases / 2);
  const Word t = c.threshold;
  std::ostringstream out;
  out << "@ nc_values " << c.mem_buckets << "\n";
  out << "@ nc_cms_row1 " << c.mem_buckets << "\n";
  out << "@ nc_cms_row2 " << c.mem_buckets << "\n";
  out << "@ nc_bf " << c.mem_buckets << "\n";
  out << "program " << c.instance_name << "(\n";
  out << "    <hdr.udp.dst_port, " << port << ", 0xffff>) {\n";
  out << "  EXTRACT(hdr.nc.op, har);\n";
  out << "  EXTRACT(hdr.nc.key1, sar);\n";
  out << "  EXTRACT(hdr.nc.key2, mar);\n";
  out << "  BRANCH:\n";
  for (int k = 0; k < keys; ++k) {
    const Word key = 0x7000 + static_cast<Word>(k);
    const Word addr = static_cast<Word>(k) % c.mem_buckets;
    out << "  case(<har, 1, 0xff>, <sar, " << hex(key) << ", 0xffffffff>) {\n";
    out << "    RETURN;\n";
    out << "    LOADI(mar, " << addr << ");\n";
    out << "    MEMREAD(nc_values);\n";
    out << "    MODIFY(hdr.nc.value, sar);\n";
    out << "  };\n";
    out << "  case(<har, 2, 0xff>, <sar, " << hex(key) << ", 0xffffffff>) {\n";
    out << "    DROP;\n";
    out << "    LOADI(mar, " << addr << ");\n";
    out << "    EXTRACT(hdr.nc.val, sar);\n";
    out << "    MEMWRITE(nc_values);\n";
    out << "  };\n";
    out << "  /*cache delete: clear the value and ack the client*/\n";
    out << "  case(<har, 3, 0xff>, <sar, " << hex(key) << ", 0xffffffff>) {\n";
    out << "    RETURN;\n";
    out << "    LOADI(mar, " << addr << ");\n";
    out << "    LOADI(sar, 0);\n";
    out << "    MEMWRITE(nc_values);\n";
    out << "    MODIFY(hdr.nc.value, sar);\n";
    out << "  };\n";
  }
  out << "  /*cache miss: count key popularity and report hot keys*/\n";
  out << "  LOADI(sar, 1);\n";
  out << "  HASH_5_TUPLE_MEM(nc_cms_row1);\n";
  out << "  MEMADD(nc_cms_row1);\n";
  out << "  LOADI(har, " << t << ");\n";
  out << "  MIN(har, sar);\n";
  out << "  LOADI(sar, 1);\n";
  out << "  HASH_5_TUPLE_MEM(nc_cms_row2);\n";
  out << "  MEMADD(nc_cms_row2);\n";
  out << "  MIN(har, sar);\n";
  out << "  BRANCH:\n";
  out << "  /*hot key, not yet reported*/\n";
  out << "  case(<har, " << t << ", 0xffffffff>) {\n";
  out << "    LOADI(sar, 1);\n";
  out << "    HASH_5_TUPLE_MEM(nc_bf);\n";
  out << "    MEMOR(nc_bf);\n";
  out << "    BRANCH:\n";
  out << "    case(<sar, 0, 0xffffffff>) {\n";
  out << "      REPORT;\n";
  out << "    };\n";
  out << "  };\n";
  out << "  FORWARD(32); //to the storage server\n";
  out << "}\n";
  return out.str();
}

/// DQAcc: in-network distributed-query acceleration (ClickINC-style): the
/// switch folds partial aggregates into per-query buckets.
[[nodiscard]] std::string make_dqacc(const ProgramConfig& c) {
  const Word port = c.filter_value != 0 ? c.filter_value : 5555;
  std::ostringstream out;
  out << "@ agg_pool " << c.mem_buckets << "\n";
  out << "program " << c.instance_name << "(\n";
  out << "    <hdr.udp.dst_port, " << port << ", 0xffff>) {\n";
  std::uint32_t pow2 = 1;
  while (pow2 < c.mem_buckets) pow2 <<= 1;
  out << "  EXTRACT(hdr.nc.op, har);    //query opcode\n";
  out << "  EXTRACT(hdr.nc.key1, mar);  //aggregate bucket id\n";
  out << "  ANDI(mar, " << hex(pow2 - 1) << "); //clamp to the pool (valid-address contract)\n";
  out << "  EXTRACT(hdr.nc.val, sar);   //partial aggregate\n";
  out << "  BRANCH:\n";
  out << "  case(<har, 1, 0xff>) {      //fold partial value\n";
  out << "    RETURN;\n";
  out << "    MEMADD(agg_pool);\n";
  out << "    MODIFY(hdr.nc.val, sar);  //running total back to worker\n";
  out << "  };\n";
  out << "  case(<har, 2, 0xff>) {      //read aggregate\n";
  out << "    RETURN;\n";
  out << "    MEMREAD(agg_pool);\n";
  out << "    MODIFY(hdr.nc.val, sar);\n";
  out << "  };\n";
  out << "  FORWARD(1);\n";
  out << "}\n";
  return out.str();
}

/// Stateful firewall: outbound flows (internal prefix) insert themselves
/// into a Bloom filter; inbound packets are only admitted on a hit.
[[nodiscard]] std::string make_firewall(const ProgramConfig& c) {
  const Word prefix = c.filter_value != 0 ? c.filter_value : 0x0a000000;
  std::ostringstream out;
  out << "@ fw_bf " << c.mem_buckets << "\n";
  out << "program " << c.instance_name << "(\n";
  out << "    <hdr.ipv4.proto, 6, 0xff>) {\n";
  out << "  EXTRACT(hdr.ipv4.src, har);\n";
  out << "  ANDI(har, 0xffff0000);\n";
  out << "  BRANCH:\n";
  out << "  /*outbound: remember the connection*/\n";
  out << "  case(<har, " << hex(prefix) << ", 0xffffffff>) {\n";
  out << "    LOADI(sar, 1);\n";
  out << "    HASH_5_TUPLE_MEM(fw_bf);\n";
  out << "    MEMOR(fw_bf);\n";
  out << "    FORWARD(1);\n";
  out << "  };\n";
  out << "  /*inbound: admit only established connections*/\n";
  out << "  case(<har, 0, 0>) {\n";
  out << "    LOADI(sar, 0);\n";
  out << "    HASH_5_TUPLE_MEM(fw_bf);\n";
  out << "    MEMOR(fw_bf);  //query only (or with 0)\n";
  out << "    BRANCH:\n";
  out << "    case(<sar, 0, 0xffffffff>) {\n";
  out << "      DROP;\n";
  out << "    };\n";
  out << "    FORWARD(0);\n";
  out << "  };\n";
  out << "}\n";
  return out.str();
}

/// L2 forwarding: exact destination-MAC match, elastic per-host entries.
[[nodiscard]] std::string make_l2(const ProgramConfig& c) {
  std::ostringstream out;
  out << "program " << c.instance_name << "(\n";
  out << "    <hdr.eth.type, 0x0800, 0xffff>) {\n";
  out << "  EXTRACT(hdr.eth.dst_hi, har);\n";
  out << "  EXTRACT(hdr.eth.dst_lo, sar);\n";
  out << "  BRANCH:\n";
  for (int k = 0; k < std::max(1, c.elastic_cases); ++k) {
    const Word hi = 0xaa000000u + static_cast<Word>(k >> 16);
    const Word lo = static_cast<Word>(k & 0xffff);
    out << "  case(<har, " << hex(hi) << ", 0xffffffff>, <sar, " << hex(lo)
        << ", 0xffffffff>) {\n";
    out << "    FORWARD(" << (k % 64) << ");\n";
    out << "  };\n";
  }
  out << "  FORWARD(63); //flood port\n";
  out << "}\n";
  return out.str();
}

/// L3 routing: longest-prefix-style ternary match on the destination.
[[nodiscard]] std::string make_l3(const ProgramConfig& c) {
  std::ostringstream out;
  out << "program " << c.instance_name << "(\n";
  out << "    <hdr.eth.type, 0x0800, 0xffff>) {\n";
  out << "  EXTRACT(hdr.ipv4.dst, har);\n";
  out << "  BRANCH:\n";
  for (int k = 0; k < std::max(1, c.elastic_cases); ++k) {
    const Word net = (10u << 24) | (static_cast<Word>(k) << 16);
    out << "  case(<har, " << hex(net) << ", 0xffff0000>) {\n";
    out << "    FORWARD(" << (k % 64) << ");\n";
    out << "  };\n";
  }
  out << "  FORWARD(62); //default route\n";
  out << "}\n";
  return out.str();
}

/// Tunnel ingress: rewrite the destination to the tunnel endpoint.
[[nodiscard]] std::string make_tunnel(const ProgramConfig& c) {
  std::ostringstream out;
  out << "program " << c.instance_name << "(\n";
  out << "    <hdr.eth.type, 0x0800, 0xffff>) {\n";
  out << "  EXTRACT(hdr.ipv4.dst, har);\n";
  out << "  BRANCH:\n";
  for (int k = 0; k < std::max(1, c.elastic_cases); ++k) {
    const Word net = (192u << 24) | (168u << 16) | (static_cast<Word>(k) << 8);
    const Word endpoint = (172u << 24) | (16u << 16) | static_cast<Word>(k);
    out << "  case(<har, " << hex(net) << ", 0xffffff00>) {\n";
    out << "    LOADI(sar, " << hex(endpoint) << ");\n";
    out << "    MODIFY(hdr.ipv4.dst, sar);\n";
    out << "    FORWARD(" << (k % 64) << ");\n";
    out << "  };\n";
  }
  out << "}\n";
  return out.str();
}

/// Calculator: in-network compute on the application header
/// (op, a, b) -> result; exercises the arithmetic & logic primitive set.
[[nodiscard]] std::string make_calculator(const ProgramConfig& c) {
  const Word port = c.filter_value != 0 ? c.filter_value : 9999;
  std::ostringstream out;
  out << "program " << c.instance_name << "(\n";
  out << "    <hdr.udp.dst_port, " << port << ", 0xffff>) {\n";
  out << "  EXTRACT(hdr.nc.op, har);\n";
  out << "  EXTRACT(hdr.nc.key1, sar); //operand a\n";
  out << "  EXTRACT(hdr.nc.key2, mar); //operand b\n";
  out << "  BRANCH:\n";
  out << "  case(<har, 1, 0xff>) { ADD(sar, mar); };\n";
  out << "  case(<har, 2, 0xff>) { SUB(sar, mar); };\n";
  out << "  case(<har, 3, 0xff>) { AND(sar, mar); };\n";
  out << "  case(<har, 4, 0xff>) { OR(sar, mar); };\n";
  out << "  case(<har, 5, 0xff>) { XOR(sar, mar); };\n";
  out << "  case(<har, 6, 0xff>) { MAX(sar, mar); };\n";
  out << "  case(<har, 7, 0xff>) { MIN(sar, mar); };\n";
  out << "  case(<har, 8, 0xff>) { NOT(sar); };\n";
  out << "  /*comparisons: result 0 encodes true (Table 3)*/\n";
  out << "  case(<har, 9, 0xff>) { EQUAL(sar, mar); };\n";
  out << "  case(<har, 10, 0xff>) { SGT(sar, mar); };\n";
  out << "  case(<har, 11, 0xff>) { SLT(sar, mar); };\n";
  out << "  case(<har, 12, 0xff>) { MOVE(sar, mar); };\n";
  out << "  MODIFY(hdr.nc.val, sar); //result\n";
  out << "  RETURN;\n";
  out << "}\n";
  return out.str();
}

/// ECN marking: mark CE when the queue depth reaches the threshold.
[[nodiscard]] std::string make_ecn(const ProgramConfig& c) {
  const Word k = c.threshold != 0 ? c.threshold : 128;
  std::ostringstream out;
  out << "program " << c.instance_name << "(\n";
  out << "    <hdr.ipv4.proto, 6, 0xff>) {\n";
  out << "  EXTRACT(meta.qdepth, sar);\n";
  out << "  LOADI(har, " << k << ");\n";
  out << "  MIN(har, sar);  //har == threshold iff qdepth >= threshold\n";
  out << "  BRANCH:\n";
  out << "  case(<har, " << k << ", 0xffffffff>) {\n";
  out << "    LOADI(sar, 3);\n";
  out << "    MODIFY(hdr.ipv4.ecn, sar); //mark CE\n";
  out << "  };\n";
  out << "}\n";
  return out.str();
}

/// Count-Min Sketch: two rows + running minimum estimate in har.
[[nodiscard]] std::string make_cms(const ProgramConfig& c) {
  const Word prefix = c.filter_value != 0 ? c.filter_value : 0x0a000000;
  std::ostringstream out;
  out << "@ cms_row1 " << c.mem_buckets << "\n";
  out << "@ cms_row2 " << c.mem_buckets << "\n";
  out << "program " << c.instance_name << "(\n";
  out << "    <hdr.ipv4.src, " << hex(prefix) << ", 0xffff0000>) {\n";
  out << "  LOADI(sar, 1);\n";
  out << "  HASH_5_TUPLE_MEM(cms_row1);\n";
  out << "  MEMADD(cms_row1);\n";
  out << "  MOVE(har, sar);  //row-1 count\n";
  out << "  LOADI(sar, 1);\n";
  out << "  HASH_5_TUPLE_MEM(cms_row2);\n";
  out << "  MEMADD(cms_row2);\n";
  out << "  MIN(har, sar);   //CMS estimate\n";
  out << "  FORWARD(1);\n";
  out << "}\n";
  return out.str();
}

/// Bloom-filter blacklist packet filter: drop flows present in both rows.
[[nodiscard]] std::string make_bf(const ProgramConfig& c) {
  const Word prefix = c.filter_value != 0 ? c.filter_value : 0x0a000000;
  std::ostringstream out;
  out << "@ bf_row1 " << c.mem_buckets << "\n";
  out << "@ bf_row2 " << c.mem_buckets << "\n";
  out << "program " << c.instance_name << "(\n";
  out << "    <hdr.ipv4.src, " << hex(prefix) << ", 0xffff0000>) {\n";
  out << "  LOADI(sar, 0);\n";
  out << "  HASH_5_TUPLE_MEM(bf_row1);\n";
  out << "  MEMOR(bf_row1);  //query row 1\n";
  out << "  MOVE(har, sar);\n";
  out << "  LOADI(sar, 0);\n";
  out << "  HASH_5_TUPLE_MEM(bf_row2);\n";
  out << "  MEMOR(bf_row2);  //query row 2\n";
  out << "  MIN(har, sar);   //1 iff blacklisted in both rows\n";
  out << "  BRANCH:\n";
  out << "  case(<har, 1, 0xffffffff>) {\n";
  out << "    DROP;\n";
  out << "  };\n";
  out << "  FORWARD(1);\n";
  out << "}\n";
  return out.str();
}

/// SuMax sketchlet (LightGuardian): per-bucket maximum packet length plus a
/// packet counter.
[[nodiscard]] std::string make_sumax(const ProgramConfig& c) {
  const Word prefix = c.filter_value != 0 ? c.filter_value : 0x0a000000;
  std::ostringstream out;
  out << "@ sm_max1 " << c.mem_buckets << "\n";
  out << "@ sm_max2 " << c.mem_buckets << "\n";
  out << "@ sm_cnt " << c.mem_buckets << "\n";
  out << "program " << c.instance_name << "(\n";
  out << "    <hdr.ipv4.src, " << hex(prefix) << ", 0xffff0000>) {\n";
  out << "  EXTRACT(hdr.ipv4.len, sar);\n";
  out << "  HASH_5_TUPLE_MEM(sm_max1);\n";
  out << "  MEMMAX(sm_max1);\n";
  out << "  HASH_5_TUPLE_MEM(sm_max2);\n";
  out << "  MEMMAX(sm_max2);\n";
  out << "  LOADI(sar, 1);\n";
  out << "  HASH_5_TUPLE_MEM(sm_cnt);\n";
  out << "  MEMADD(sm_cnt);\n";
  out << "  FORWARD(1);\n";
  out << "}\n";
  return out.str();
}

/// HyperLogLog: bucket index from the per-stage 16-bit hash, rank (leading
/// zeros + 1 of the 32-bit hash) matched by 33 inelastic ternary case
/// blocks — this is why HLL has by far the largest update delay in Table 1.
[[nodiscard]] std::string make_hll(const ProgramConfig& c) {
  const Word prefix = c.filter_value != 0 ? c.filter_value : 0x0a000000;
  std::ostringstream out;
  out << "@ hll_regs " << c.mem_buckets << "\n";
  out << "program " << c.instance_name << "(\n";
  out << "    <hdr.ipv4.src, " << hex(prefix) << ", 0xffff0000>) {\n";
  out << "  HASH_5_TUPLE;            //32-bit hash in har\n";
  out << "  HASH_5_TUPLE_MEM(hll_regs); //bucket index in mar\n";
  out << "  BRANCH:\n";
  // Rank r: the top r-1 bits are zero and bit (32-r) is one.
  for (int r = 1; r <= 32; ++r) {
    const Word bit = 1u << (32 - r);
    const Word mask = r == 32 ? 0xffffffffu : ~(bit - 1);
    out << "  case(<har, " << hex(bit) << ", " << hex(mask) << ">) {\n";
    out << "    LOADI(sar, " << r << ");\n";
    out << "    MEMMAX(hll_regs);\n";
    out << "  };\n";
  }
  out << "  /*hash == 0: maximal rank*/\n";
  out << "  case(<har, 0, 0xffffffff>) {\n";
  out << "    LOADI(sar, 33);\n";
  out << "    MEMMAX(hll_regs);\n";
  out << "  };\n";
  out << "}\n";
  return out.str();
}

/// SwitchML-style in-network gradient aggregation (§7: "implementing the
/// simple aggregation logic in SwitchML requires only modifying P4runpro
/// to support multicast"). Workers send chunk updates; the switch folds
/// them into per-chunk accumulators and, when the last worker arrives,
/// multicasts the aggregated value back to the worker group. The control
/// plane resets the accumulators between training rounds.
[[nodiscard]] std::string make_agg(const ProgramConfig& c) {
  const Word port = c.filter_value != 0 ? c.filter_value : 4242;
  std::uint32_t pow2 = 1;
  while (pow2 < c.mem_buckets) pow2 <<= 1;
  std::ostringstream out;
  out << "@ agg_val " << c.mem_buckets << "\n";
  out << "@ agg_cnt " << c.mem_buckets << "\n";
  out << "program " << c.instance_name << "(\n";
  out << "    <hdr.udp.dst_port, " << port << ", 0xffff>) {\n";
  out << "  EXTRACT(hdr.nc.key1, mar);  //gradient chunk index\n";
  out << "  ANDI(mar, " << hex(pow2 - 1) << ");\n";
  out << "  EXTRACT(hdr.nc.val, sar);   //worker's gradient value\n";
  out << "  MEMADD(agg_val);            //fold; sar = running aggregate\n";
  out << "  MODIFY(hdr.nc.val, sar);    //carry the aggregate in the packet\n";
  out << "  LOADI(sar, 1);\n";
  out << "  MEMADD(agg_cnt);            //arrival count; sar = count\n";
  out << "  BRANCH:\n";
  out << "  /*last worker: broadcast the aggregated chunk*/\n";
  out << "  case(<sar, " << c.workers << ", 0xffffffff>) {\n";
  out << "    MULTICAST(" << c.mcast_group << ");\n";
  out << "  };\n";
  out << "  DROP; //absorb non-final updates\n";
  out << "}\n";
  return out.str();
}

struct TemplateEntry {
  ProgramInfo info;
  std::string (*make)(const ProgramConfig&);
};

const std::vector<TemplateEntry>& templates() {
  static const std::vector<TemplateEntry> kTemplates = {
      {{"cache", "In-network Cache", 26, 77, 11.47, "194.30 (ActiveRMT)", true, true}, make_cache},
      {{"lb", "Stateless Load Balancer", 15, 63, 10.63, "225.46 (ActiveRMT)", true, true}, make_lb},
      {{"hh", "Heavy Hitter Detector", 36, 109, 30.64, "228.70 (ActiveRMT)", false, true}, make_hh},
      {{"nc", "NetCache", 60, 152, 40.06, "", true, true}, make_netcache},
      {{"dqacc", "DQAcc", 16, 137, 15.45, "", false, true}, make_dqacc},
      {{"firewall", "Stateful Firewall", 22, 88, 19.70, "", false, true}, make_firewall},
      {{"l2", "L2 Forwarding", 10, 33, 2.98, "", true, false}, make_l2},
      {{"l3", "L3 Routing", 6, 34, 1.88, "", true, false}, make_l3},
      {{"tunnel", "Tunnel", 6, 51, 2.38, "", true, false}, make_tunnel},
      {{"calculator", "Calculator", 26, 53, 26.74, "", false, false}, make_calculator},
      {{"ecn", "ECN", 9, 18, 4.84, "", false, false}, make_ecn},
      {{"cms", "Count-Min Sketch (CMS)", 14, 78, 14.21, "27.46 (FlyMon)", false, true}, make_cms},
      {{"bf", "Bloom Filter (BF)", 14, 78, 12.51, "32.09 (FlyMon)", false, true}, make_bf},
      {{"sumax", "SuMax", 14, 80, 19.94, "22.88 (FlyMon)", false, true}, make_sumax},
      {{"hll", "HyperLogLog (HLL)", 167, 180, 166.90, "17.37 (FlyMon)", false, true}, make_hll},
      {{"agg", "In-network Aggregation (SwitchML-style)", 0, 0, 0.0, "", false, true,
        /*extension=*/true}, make_agg},
  };
  return kTemplates;
}

}  // namespace

const std::vector<ProgramInfo>& program_catalog() {
  static const std::vector<ProgramInfo> kCatalog = [] {
    std::vector<ProgramInfo> out;
    for (const auto& t : templates()) {
      if (!t.info.extension) out.push_back(t.info);
    }
    return out;
  }();
  return kCatalog;
}

const std::vector<ProgramInfo>& extension_catalog() {
  static const std::vector<ProgramInfo> kExtensions = [] {
    std::vector<ProgramInfo> out;
    for (const auto& t : templates()) {
      if (t.info.extension) out.push_back(t.info);
    }
    return out;
  }();
  return kExtensions;
}

const ProgramInfo* find_program(const std::string& key) {
  for (const auto& info : program_catalog()) {
    if (info.key == key) return &info;
  }
  return nullptr;
}

std::string make_program_source(const std::string& key, const ProgramConfig& config) {
  for (const auto& t : templates()) {
    if (t.info.key == key) {
      ProgramConfig c = config;
      if (c.instance_name.empty()) c.instance_name = key;
      return t.make(c);
    }
  }
  assert(false && "unknown program key");
  return {};
}

int template_loc(const std::string& key) {
  ProgramConfig config;
  config.instance_name = key;
  config.elastic_cases = 2;
  return lang::count_loc(make_program_source(key, config));
}

}  // namespace p4runpro::apps
