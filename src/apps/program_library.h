// The 15 example runtime programs of Table 1, expressed in the P4runpro
// DSL. Sources are generated from templates so that workloads can vary the
// requested memory size and the number of *elastic* case blocks (the case
// blocks that correspond to non-constant table entries in a conventional P4
// program — cache keys, load-balancer ports, L2/L3 entries; §6.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace p4runpro::apps {

/// Per-instance generation knobs.
struct ProgramConfig {
  std::string instance_name;       ///< program name in the source (must be unique per controller)
  std::uint32_t mem_buckets = 256; ///< per-structure memory request (256 x 32b = 1,024 B, §6.2)
  int elastic_cases = 2;           ///< elastic case blocks, where applicable
  Word threshold = 1024;           ///< heavy-hitter threshold
  Word filter_value = 0;           ///< optional override of the filter value (0 = template default)
  int workers = 4;                 ///< aggregation fan-in (agg extension)
  Word mcast_group = 1;            ///< multicast group broadcast target (agg extension)
};

/// Catalog entry: template key, paper-reported numbers for Table 1, and
/// structural traits.
struct ProgramInfo {
  std::string key;            // "cache", "lb", "hh", ...
  std::string display;        // "In-network Cache"
  int paper_loc_ours;         // Table 1 "LoC Ours"
  int paper_loc_p4;           // Table 1 "LoC P4"
  double paper_update_ms;     // Table 1 "Update Delay Ours"
  std::string others_update;  // Table 1 "Others" (* ActiveRMT, ** FlyMon)
  bool elastic;               // has elastic case blocks
  bool uses_memory;           // requests virtual memory
  bool extension = false;     // beyond Table 1 (§7 future-work features)
};

/// The 15 programs of Table 1, in table order (extensions excluded).
[[nodiscard]] const std::vector<ProgramInfo>& program_catalog();

/// Extension programs beyond Table 1 (e.g. the SwitchML-style in-network
/// aggregation enabled by the MULTICAST primitive, §7).
[[nodiscard]] const std::vector<ProgramInfo>& extension_catalog();

/// Find a catalog entry by key; returns nullptr if unknown.
[[nodiscard]] const ProgramInfo* find_program(const std::string& key);

/// Generate the P4runpro source for `key` with the given configuration.
/// Aborts on unknown keys (programmer error).
[[nodiscard]] std::string make_program_source(const std::string& key,
                                              const ProgramConfig& config);

/// LoC of the template instantiated with the paper's minimal configuration
/// (elastic case blocks excluded from the count, as in §6.1).
[[nodiscard]] int template_loc(const std::string& key);

}  // namespace p4runpro::apps
