#include "baselines/netvrm.h"

#include <algorithm>

namespace p4runpro::baselines {

void NetvrmManager::reallocate() {
  if (apps_.empty()) return;
  // Start from the minimum viable allocation.
  std::uint32_t used = 0;
  for (auto& app : apps_) {
    app.pages = app.min_pages;
    used += app.min_pages;
  }
  // Greedy water-filling: hand each remaining page to the application with
  // the highest marginal utility. Optimal for concave utilities.
  while (used < total_pages_) {
    NetvrmApp* best = nullptr;
    double best_gain = 0.0;
    for (auto& app : apps_) {
      const double gain = app.utility(app.pages + 1) - app.utility(app.pages);
      if (best == nullptr || gain > best_gain) {
        best = &app;
        best_gain = gain;
      }
    }
    if (best == nullptr || best_gain <= 0.0) break;  // utility saturated
    ++best->pages;
    ++used;
  }
}

void NetvrmManager::partition_statically() {
  if (apps_.empty()) return;
  const std::uint32_t share = total_pages_ / static_cast<std::uint32_t>(apps_.size());
  for (auto& app : apps_) {
    app.pages = std::max(app.min_pages, share);
  }
}

double NetvrmManager::total_utility() const {
  double sum = 0.0;
  for (const auto& app : apps_) sum += app.utility(app.pages);
  return sum;
}

}  // namespace p4runpro::baselines
