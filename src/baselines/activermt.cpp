#include "baselines/activermt.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <optional>

namespace p4runpro::baselines {

ActiveRmtAllocator::ActiveRmtAllocator(ActiveRmtConfig config) : config_(config) {
  const std::size_t granules = config_.mem_per_stage / config_.granularity;
  occupancy_.assign(static_cast<std::size_t>(config_.stages),
                    std::vector<std::uint8_t>(granules, 0));
}

std::uint32_t ActiveRmtAllocator::free_in_stage(int stage) const {
  const auto& row = occupancy_[static_cast<std::size_t>(stage)];
  const auto free_granules =
      static_cast<std::uint32_t>(std::count(row.begin(), row.end(), std::uint8_t{0}));
  return free_granules * config_.granularity;
}

Result<ActiveAllocation> ActiveRmtAllocator::allocate(const ActiveRequest& request) {
  const std::uint32_t needed =
      std::max(config_.granularity,
               (request.mem_buckets + config_.granularity - 1) / config_.granularity *
                   config_.granularity);

  // "Least constraint" candidate evaluation: every allocation re-scores
  // the candidate stages against the full current population (the O(P)
  // pass per allocation that makes ActiveRMT's delay grow with the number
  // of installed programs, Fig. 7a).
  auto constraint_scores = [&]() {
    std::vector<double> scores(static_cast<std::size_t>(config_.stages));
    for (int stage = 0; stage < config_.stages; ++stage) {
      scores[static_cast<std::size_t>(stage)] =
          static_cast<double>(free_in_stage(stage));
    }
    for (const auto& [id, prog] : programs_) {
      for (const auto& [s, share] : prog.shares) {
        scores[static_cast<std::size_t>(s)] -= 0.001 * static_cast<double>(share);
      }
    }
    return scores;
  };

  auto try_allocate = [&]() -> std::optional<ActiveAllocation> {
    // Worst-fit: stages ordered by constraint score (≈ free space).
    const std::vector<double> scores = constraint_scores();
    std::vector<int> order(static_cast<std::size_t>(config_.stages));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return scores[static_cast<std::size_t>(a)] > scores[static_cast<std::size_t>(b)];
    });

    std::uint32_t remaining = needed;
    ActiveAllocation alloc;
    alloc.id = next_id_;
    std::vector<std::pair<int, std::size_t>> claimed;  // (stage, granule)
    for (int stage : order) {
      if (remaining == 0) break;
      auto& row = occupancy_[static_cast<std::size_t>(stage)];
      std::uint32_t granted = 0;
      for (std::size_t g = 0; g < row.size() && remaining > 0; ++g) {
        if (row[g] != 0) continue;
        row[g] = 1;
        claimed.emplace_back(stage, g);
        granted += config_.granularity;
        remaining -= std::min(remaining, config_.granularity);
      }
      if (granted > 0) alloc.shares.emplace_back(stage, granted);
    }
    if (remaining > 0) {
      for (const auto& [stage, g] : claimed) {
        occupancy_[static_cast<std::size_t>(stage)][g] = 0;
      }
      return std::nullopt;
    }
    return alloc;
  };

  auto alloc = try_allocate();
  if (!alloc) {
    fair_remap(needed);
    alloc = try_allocate();
  }
  if (!alloc) {
    return Error{"ActiveRMT: memory exhausted", "activermt"};
  }

  Program prog;
  prog.request = request;
  prog.shares = alloc->shares;
  programs_.emplace(next_id_, std::move(prog));
  ++next_id_;
  return *alloc;
}

void ActiveRmtAllocator::fair_remap(std::uint32_t needed) {
  // Fair share per program once the newcomer joins.
  const std::uint64_t total =
      static_cast<std::uint64_t>(config_.stages) * config_.mem_per_stage;
  const std::uint64_t fair =
      total / static_cast<std::uint64_t>(programs_.size() + 1);

  std::uint32_t reclaimed = 0;
  for (auto& [id, prog] : programs_) {
    if (!prog.request.elastic) continue;
    std::uint64_t current = 0;
    for (const auto& [stage, share] : prog.shares) current += share;
    const std::uint64_t target =
        std::max<std::uint64_t>(config_.min_elastic, std::min<std::uint64_t>(current, fair));
    std::uint64_t to_release = current - target;
    if (to_release == 0) continue;
    // Release granules from the program's stages (remapping cost: a full
    // scan of the occupancy the program owns).
    for (auto& [stage, share] : prog.shares) {
      while (share > 0 && to_release >= config_.granularity) {
        auto& row = occupancy_[static_cast<std::size_t>(stage)];
        const auto it = std::find(row.begin(), row.end(), std::uint8_t{1});
        if (it == row.end()) break;
        *it = 0;
        share -= config_.granularity;
        to_release -= config_.granularity;
        reclaimed += config_.granularity;
      }
    }
    prog.shares.erase(std::remove_if(prog.shares.begin(), prog.shares.end(),
                                     [](const auto& s) { return s.second == 0; }),
                      prog.shares.end());
    if (reclaimed >= needed) break;
  }
}

void ActiveRmtAllocator::deallocate(int id) {
  const auto it = programs_.find(id);
  if (it == programs_.end()) return;
  // The simplified occupancy map does not track per-program granules, so
  // free the program's share counts from its stages.
  for (const auto& [stage, share] : it->second.shares) {
    auto& row = occupancy_[static_cast<std::size_t>(stage)];
    std::uint32_t to_free = share;
    for (auto& g : row) {
      if (to_free < config_.granularity) break;
      if (g == 1) {
        g = 0;
        to_free -= config_.granularity;
      }
    }
  }
  programs_.erase(it);
}

double ActiveRmtAllocator::memory_utilization() const {
  std::uint64_t used = 0;
  std::uint64_t total = 0;
  for (const auto& row : occupancy_) {
    used += static_cast<std::uint64_t>(std::count(row.begin(), row.end(), std::uint8_t{1}));
    total += row.size();
  }
  return total == 0 ? 0.0 : static_cast<double>(used) / static_cast<double>(total);
}

double ActiveRmtAllocator::goodput_fraction(int payload_bytes, int instructions) {
  // Capsule header: 12 B base + 4 B per active instruction attached to
  // every packet by the end host.
  const double overhead = 12.0 + 4.0 * static_cast<double>(instructions);
  return static_cast<double>(payload_bytes) /
         (static_cast<double>(payload_bytes) + overhead);
}

double ActiveRmtAllocator::update_delay_ms(const ActiveRequest& request) {
  // Dominated by rewriting the in-memory instruction store and syncing
  // memory: measured 194-229 ms in the paper for cache/lb/hh.
  return 180.0 + 1.2 * static_cast<double>(request.instructions) +
         2.0 * static_cast<double>(request.mem_buckets) * 4.0 / 1024.0;
}

}  // namespace p4runpro::baselines
