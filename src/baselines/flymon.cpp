#include "baselines/flymon.h"

namespace p4runpro::baselines {

bool Flymon::supports(const std::string& program_key) {
  return task_for(program_key).has_value();
}

std::optional<FlymonTask> Flymon::task_for(const std::string& program_key) {
  if (program_key == "cms") return FlymonTask{FlymonAttribute::FrequencyCms, 1024};
  if (program_key == "bf") return FlymonTask{FlymonAttribute::ExistenceBf, 1024};
  if (program_key == "sumax") return FlymonTask{FlymonAttribute::MaxSuMax, 1024};
  if (program_key == "hll") return FlymonTask{FlymonAttribute::CardinalityHll, 1024};
  return std::nullopt;  // general programs are outside FlyMon's task model
}

double Flymon::update_delay_ms(FlymonAttribute attribute) {
  // Entry-rewiring counts of the composable measurement units differ per
  // attribute; the constants reproduce the paper's measured values.
  switch (attribute) {
    case FlymonAttribute::FrequencyCms: return 27.46;
    case FlymonAttribute::ExistenceBf: return 32.09;
    case FlymonAttribute::MaxSuMax: return 22.88;
    case FlymonAttribute::CardinalityHll: return 17.37;
  }
  return 0.0;
}

}  // namespace p4runpro::baselines
