// FlyMon baseline (Zheng et al., SIGCOMM'22), modeled from the paper's
// description for the Table 1 / Fig. 10 / Table 2 comparisons. FlyMon
// reconfigures *network measurement* tasks only: a task is a (flow key,
// flow attribute) pair mapped onto pre-built composable measurement units —
// no general programs, hence no extra generality overhead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"

namespace p4runpro::baselines {

/// Measurement attributes FlyMon supports (fixed set; anything else is out
/// of scope — the generality gap §2.2 describes).
enum class FlymonAttribute : std::uint8_t {
  FrequencyCms,   ///< per-flow frequency (CMS)
  ExistenceBf,    ///< flow existence (Bloom filter)
  MaxSuMax,       ///< per-flow maximum (SuMax)
  CardinalityHll, ///< cardinality (HyperLogLog)
};

struct FlymonTask {
  FlymonAttribute attribute;
  std::uint32_t mem_buckets = 1024;
};

class Flymon {
 public:
  /// Can FlyMon express this task at all? General programs (forwarding,
  /// caching, compute) are rejected.
  [[nodiscard]] static bool supports(const std::string& program_key);

  /// Map a P4runpro catalog key onto a FlyMon task, if supported.
  [[nodiscard]] static std::optional<FlymonTask> task_for(const std::string& program_key);

  /// Task reconfiguration delay in ms (Table 1 "Others" **: CMS 27.46,
  /// BF 32.09, SuMax 22.88, HLL 17.37 — proportional to the number of
  /// transformable-measurement-unit entries each attribute rewires).
  [[nodiscard]] static double update_delay_ms(FlymonAttribute attribute);
};

}  // namespace p4runpro::baselines
