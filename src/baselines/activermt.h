// ActiveRMT baseline (Das & Snoeren, SIGCOMM'23), reimplemented from the
// paper's description for the comparative experiments (Figs. 7-10, Tables
// 1-2). ActiveRMT runs capsule-based *active programs*: every packet
// carries an active header with memory-centric instructions; the allocator
// uses a fair worst-fit scheme that REMAPS the memory of elastic programs
// on every allocation, so its allocation delay grows with the number of
// installed programs — the scaling the paper contrasts with P4runpro's
// per-program constraint model.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"

namespace p4runpro::baselines {

/// Workload description of one active program.
struct ActiveRequest {
  int instructions = 10;          ///< active instruction count (capsule length)
  std::uint32_t mem_buckets = 256;///< requested memory (32-bit buckets)
  bool elastic = false;           ///< memory may be shrunk for newcomers
};

struct ActiveAllocation {
  int id = 0;
  std::vector<std::pair<int, std::uint32_t>> shares;  ///< (stage, buckets)
};

/// Geometry of the ActiveRMT prototype, set to the paper's comparison
/// configuration (§6.2: "memory size of 65,536" per stage, least-constraint
/// allocation model).
struct ActiveRmtConfig {
  int stages = 20;                     ///< memory-capable stages on Tofino
  std::uint32_t mem_per_stage = 65536;
  std::uint32_t granularity = 256;     ///< fixed allocation granularity (buckets)
  std::uint32_t min_elastic = 256;     ///< smallest share an elastic program keeps
};

class ActiveRmtAllocator {
 public:
  explicit ActiveRmtAllocator(ActiveRmtConfig config = {});

  /// Allocate a new active program; measures (real) computation of the fair
  /// worst-fit remap. Fails when memory cannot be found even after
  /// shrinking elastic programs.
  Result<ActiveAllocation> allocate(const ActiveRequest& request);
  void deallocate(int id);

  [[nodiscard]] std::size_t program_count() const noexcept { return programs_.size(); }
  [[nodiscard]] double memory_utilization() const;
  [[nodiscard]] const ActiveRmtConfig& config() const noexcept { return config_; }

  /// Capsule/active-header throughput overhead: goodput fraction for a
  /// given packet size (the active header steals wire bytes; §2.2).
  [[nodiscard]] static double goodput_fraction(int payload_bytes, int instructions);

  /// Update delay model (ms) for installing a program of this complexity
  /// (Table 1 "Others" column: 194.30 / 225.46 / 228.70 for cache/lb/hh).
  [[nodiscard]] static double update_delay_ms(const ActiveRequest& request);

 private:
  struct Program {
    ActiveRequest request;
    std::vector<std::pair<int, std::uint32_t>> shares;
  };

  /// Fair remap pass: recompute every elastic program's share against the
  /// current population (this is the work that grows with program count).
  void fair_remap(std::uint32_t needed);

  [[nodiscard]] std::uint32_t free_in_stage(int stage) const;

  ActiveRmtConfig config_;
  std::vector<std::vector<std::uint8_t>> occupancy_;  ///< per stage, per granule
  std::map<int, Program> programs_;
  int next_id_ = 1;
};

}  // namespace p4runpro::baselines
