// NetVRM baseline (Zhu et al., NSDI'22), modeled from the paper's §2.2
// description: a dynamic *memory* management system where the register
// memory of applications that are fixed at compile time is periodically
// reallocated according to per-application utility functions. NetVRM
// cannot add new application types at runtime — the generality gap
// P4runpro fills — but it beats static partitioning on memory efficiency
// for its predefined applications.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace p4runpro::baselines {

/// One predefined NetVRM application with a measured utility curve:
/// utility(pages) is concave non-decreasing (e.g. sketch accuracy vs
/// memory).
struct NetvrmApp {
  std::string name;
  /// Utility at a given number of memory pages.
  std::function<double(std::uint32_t)> utility;
  std::uint32_t min_pages = 1;
  std::uint32_t pages = 0;  ///< current allocation (managed)
};

class NetvrmManager {
 public:
  /// `total_pages`: the register memory pool shared by all applications.
  explicit NetvrmManager(std::uint32_t total_pages) : total_pages_(total_pages) {}

  /// Register a compile-time application. Fails (returns false) once the
  /// reallocation epoch has started only in spirit — NetVRM has no runtime
  /// program addition at all, so this models provisioning time.
  void add_app(NetvrmApp app) { apps_.push_back(std::move(app)); }

  /// One reallocation epoch: greedy marginal-utility water-filling of the
  /// page pool (the utility-function-driven allocation of §2.2).
  void reallocate();

  [[nodiscard]] double total_utility() const;
  [[nodiscard]] const std::vector<NetvrmApp>& apps() const noexcept { return apps_; }
  [[nodiscard]] std::uint32_t total_pages() const noexcept { return total_pages_; }

  /// Static equal-share partitioning, for comparison.
  void partition_statically();

 private:
  std::uint32_t total_pages_;
  std::vector<NetvrmApp> apps_;
};

}  // namespace p4runpro::baselines
