// Translation pass (paper §4.3 "Primitive Translation"): lowers a checked
// program AST into the IR DAG. This performs
//   * pseudo-primitive expansion (Fig. 14) with supportive-register
//     backup/restore elided via register liveness,
//   * offset-step insertion before every memory primitive (Fig. 5b),
//   * branch-id assignment and trailing-primitive replication into
//     non-terminal case branches (DESIGN.md §2.3),
//   * memory alignment across branches (same virtual memory, same depth;
//     nop padding is implicit in the depth numbering), and
//   * final AST-depth assignment.
#pragma once

#include "common/result.h"
#include "compiler/ir.h"
#include "lang/ast.h"

namespace p4runpro::rp {

/// Translate one (already semantically checked) program of a unit.
[[nodiscard]] Result<TranslatedProgram> translate(const lang::Unit& unit,
                                                  const lang::ProgramDecl& program);

/// Round a virtual memory request up to the next power of two (internal
/// fragmentation of the mask-based address translation, §7).
[[nodiscard]] std::uint32_t round_pow2(std::uint32_t size) noexcept;

}  // namespace p4runpro::rp
