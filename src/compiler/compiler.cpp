#include "compiler/compiler.h"

#include "compiler/semcheck.h"
#include "compiler/translate.h"
#include "lang/parser.h"
#include "obs/telemetry.h"

namespace p4runpro::rp {

Result<std::vector<TranslatedProgram>> compile_source(std::string_view source,
                                                      obs::Telemetry* telemetry) {
  auto parse_span = obs::span(telemetry, "parse", "compiler");
  parse_span.arg("source_bytes", static_cast<std::uint64_t>(source.size()));
  auto unit = lang::parse(source);
  if (!unit.ok()) {
    if (telemetry != nullptr) telemetry->metrics.counter("compiler.parse_errors").inc();
    return unit.error();
  }
  if (auto s = check_unit(unit.value()); !s.ok()) {
    if (telemetry != nullptr) telemetry->metrics.counter("compiler.check_errors").inc();
    return s.error();
  }
  parse_span.arg("programs", static_cast<std::uint64_t>(unit.value().programs.size()));
  parse_span.end();

  auto translate_span = obs::span(telemetry, "translate", "compiler");
  std::vector<TranslatedProgram> out;
  out.reserve(unit.value().programs.size());
  for (const auto& decl : unit.value().programs) {
    auto translated = translate(unit.value(), decl);
    if (!translated.ok()) {
      if (telemetry != nullptr) {
        telemetry->metrics.counter("compiler.translate_errors").inc();
      }
      return translated.error();
    }
    out.push_back(std::move(translated).take());
  }
  translate_span.end();
  if (telemetry != nullptr) {
    telemetry->metrics.counter("compiler.programs_compiled").inc(out.size());
  }
  return out;
}

Result<TranslatedProgram> compile_single(std::string_view source) {
  auto programs = compile_source(source);
  if (!programs.ok()) return programs.error();
  if (programs.value().size() != 1) {
    return Error{"expected exactly one program in source unit", "compiler",
                 ErrorCode::InvalidArgument};
  }
  return std::move(programs.value().front());
}

}  // namespace p4runpro::rp
