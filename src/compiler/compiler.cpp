#include "compiler/compiler.h"

#include "compiler/semcheck.h"
#include "compiler/translate.h"
#include "lang/parser.h"

namespace p4runpro::rp {

Result<std::vector<TranslatedProgram>> compile_source(std::string_view source) {
  auto unit = lang::parse(source);
  if (!unit.ok()) return unit.error();
  if (auto s = check_unit(unit.value()); !s.ok()) return s.error();

  std::vector<TranslatedProgram> out;
  out.reserve(unit.value().programs.size());
  for (const auto& decl : unit.value().programs) {
    auto translated = translate(unit.value(), decl);
    if (!translated.ok()) return translated.error();
    out.push_back(std::move(translated).take());
  }
  return out;
}

Result<TranslatedProgram> compile_single(std::string_view source) {
  auto programs = compile_source(source);
  if (!programs.ok()) return programs.error();
  if (programs.value().size() != 1) {
    return Error{"expected exactly one program in source unit", "compiler"};
  }
  return std::move(programs.value().front());
}

}  // namespace p4runpro::rp
