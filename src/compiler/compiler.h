// Compiler facade: source text -> checked, translated programs. The
// allocation step is separate (solver.h) because it depends on the live
// resource snapshot; the controller drives the full pipeline
// parse -> check -> translate -> allocate -> generate entries -> update.
#pragma once

#include <string_view>
#include <vector>

#include "common/result.h"
#include "compiler/ir.h"

namespace p4runpro::obs {
struct Telemetry;
}

namespace p4runpro::rp {

/// Parse, check and translate every program in a source unit. With a
/// telemetry bundle, emits "parse" and "translate" phase spans (nested
/// under whatever span the caller holds open) and compiler counters.
[[nodiscard]] Result<std::vector<TranslatedProgram>> compile_source(
    std::string_view source, obs::Telemetry* telemetry = nullptr);

/// Convenience: compile a unit expected to contain exactly one program.
[[nodiscard]] Result<TranslatedProgram> compile_single(std::string_view source);

}  // namespace p4runpro::rp
