// Compiler facade: source text -> checked, translated programs. The
// allocation step is separate (solver.h) because it depends on the live
// resource snapshot; the controller drives the full pipeline
// parse -> check -> translate -> allocate -> generate entries -> update.
#pragma once

#include <string_view>
#include <vector>

#include "common/result.h"
#include "compiler/ir.h"

namespace p4runpro::rp {

/// Parse, check and translate every program in a source unit.
[[nodiscard]] Result<std::vector<TranslatedProgram>> compile_source(std::string_view source);

/// Convenience: compile a unit expected to contain exactly one program.
[[nodiscard]] Result<TranslatedProgram> compile_single(std::string_view source);

}  // namespace p4runpro::rp
