#include "compiler/entrygen.h"

#include <cassert>

namespace p4runpro::rp {

namespace {

[[nodiscard]] dp::AtomicOp bind_op(const IrOp& ir,
                                   const std::map<std::string, ctrl::VmemPlacement>& placements,
                                   const TranslatedProgram& program) {
  dp::AtomicOp op;
  op.kind = ir.kind;
  op.field = ir.field;
  op.reg0 = ir.reg0;
  op.reg1 = ir.reg1;
  op.imm = ir.imm;
  op.salu = ir.salu;
  switch (ir.kind) {
    case dp::OpKind::Offset: {
      const auto it = placements.find(ir.vmem);
      assert(it != placements.end() && "memory op without placement");
      op.imm = it->second.block.base;
      break;
    }
    case dp::OpKind::Hash5TupleMem:
    case dp::OpKind::HashHarMem: {
      // Mask step: adjust the 16-bit hash output to the virtual size.
      const std::uint32_t size = program.vmem_sizes.at(ir.vmem);
      op.mask = size - 1;
      break;
    }
    default:
      break;
  }
  return op;
}

}  // namespace

EntryPlan generate_entries(const TranslatedProgram& program,
                           const AllocationResult& alloc, ProgramId id,
                           const std::map<std::string, ctrl::VmemPlacement>& placements,
                           const dp::DataplaneSpec& spec) {
  EntryPlan plan;
  plan.program = id;
  plan.filters = program.filters;
  plan.rounds = alloc.rounds;

  const int total_rpbs = spec.total_rpbs();
  for (const auto& node : program.nodes) {
    const int logical = alloc.x[static_cast<std::size_t>(node.depth - 1)];
    const int phys = dp::physical_rpb(logical, total_rpbs);
    const int round = dp::recirc_round(logical, total_rpbs);

    // Common control-flag keys.
    std::vector<rmt::TernaryKey> base_keys(dp::kRpbKeyWidth, rmt::TernaryKey::any());
    base_keys[dp::kKeyProgram] = rmt::TernaryKey::exact(id);
    base_keys[dp::kKeyBranch] = rmt::TernaryKey::exact(node.branch);
    base_keys[dp::kKeyRecirc] = rmt::TernaryKey::exact(static_cast<Word>(round));

    if (node.op.kind == dp::OpKind::Branch) {
      // One entry per case; earlier cases take higher priority.
      const int cases = static_cast<int>(node.op.cases.size());
      for (int c = 0; c < cases; ++c) {
        const CaseRule& rule = node.op.cases[static_cast<std::size_t>(c)];
        RpbEntrySpec spec_entry;
        spec_entry.rpb = phys;
        spec_entry.keys = base_keys;
        for (const auto& cond : rule.conditions) {
          const int slot = cond.reg == Reg::Har   ? dp::kKeyHar
                           : cond.reg == Reg::Sar ? dp::kKeySar
                                                  : dp::kKeyMar;
          spec_entry.keys[static_cast<std::size_t>(slot)] =
              rmt::TernaryKey{cond.value, cond.mask};
        }
        spec_entry.priority = cases - c;
        spec_entry.action = dp::RpbAction{dp::AtomicOp::branch(), rule.target, id};
        plan.rpb_entries.push_back(std::move(spec_entry));
      }
      continue;
    }

    RpbEntrySpec spec_entry;
    spec_entry.rpb = phys;
    spec_entry.keys = std::move(base_keys);
    spec_entry.priority = 0;
    spec_entry.action =
        dp::RpbAction{bind_op(node.op, placements, program), std::nullopt, id};
    plan.rpb_entries.push_back(std::move(spec_entry));
  }
  return plan;
}

void stage_install(const EntryPlan& plan, dp::WriteBatch& batch) {
  // Step 1: recirculation entries (invisible without a program id). Always
  // staged, even for single-pass programs: the channel still syncs one
  // (empty) recirculation batch, matching the bfrt cost model.
  batch.add_recirc(plan.program, plan.rounds);
  // Step 2: RPB entries, in plan order.
  for (const auto& spec : plan.rpb_entries) {
    dp::RpbEntryWrite entry;
    entry.rpb = spec.rpb;
    entry.keys = spec.keys;
    entry.priority = spec.priority;
    entry.action = spec.action;
    batch.add_rpb_entry(plan.program, std::move(entry));
  }
  // Step 3: init filters last — this atomically activates the program.
  batch.add_filters(plan.program, plan.filters, plan.filter_priority);
}

void stage_remove(
    const EntryPlan& plan,
    const std::vector<dp::InitBlock::InstalledFilter>& filter_handles,
    const std::vector<std::pair<int, rmt::EntryHandle>>& rpb_handles,
    const std::vector<rmt::EntryHandle>& recirc_handles,
    const std::map<std::string, ctrl::VmemPlacement>& placements,
    dp::WriteBatch& batch) {
  assert(rpb_handles.size() == plan.rpb_entries.size() &&
         "handles must align with the plan's entry order");
  // Step 1: delete the init filters first; without a program id every later
  // component of the program stops matching at once.
  batch.del_filters(plan.program, filter_handles, plan.filters,
                    plan.filter_priority);
  // Step 2: the remaining entries.
  for (std::size_t i = 0; i < rpb_handles.size(); ++i) {
    const auto& spec = plan.rpb_entries[i];
    dp::RpbEntryWrite entry;
    entry.rpb = spec.rpb;
    entry.keys = spec.keys;
    entry.priority = spec.priority;
    entry.action = spec.action;
    batch.del_rpb_entry(plan.program, std::move(entry), rpb_handles[i].second);
  }
  batch.del_recirc(plan.program, recirc_handles, plan.rounds);
  // Step 3: lock, reset and release the program's memory (Fig. 6 step 4).
  for (const auto& [vmem, placement] : placements) {
    batch.reset_mem_range(placement.rpb, placement.block.base,
                          placement.block.size, vmem);
  }
}

}  // namespace p4runpro::rp
