#include "compiler/p4lite.h"

#include <cctype>
#include <set>
#include <sstream>
#include <vector>

namespace p4runpro::rp {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer: identifiers (dotted), integers / IPv4 literals, punctuation
// and the compound assignment operators.
// ---------------------------------------------------------------------------

struct Tok {
  enum Kind {
    kIdent,
    kInt,
    kPunct,  // single char in text[0]
    kOp,     // "==", "+=", "-=", "&=", "|=", "^="
    kEnd,
  } kind = kEnd;
  std::string text;
  std::uint32_t value = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Tok>> run() {
    std::vector<Tok> out;
    while (true) {
      skip_ws();
      if (pos_ >= src_.size()) break;
      Tok tok;
      tok.line = line_;
      const char c = src_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tok.kind = Tok::kIdent;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '_' || src_[pos_] == '.')) {
          tok.text += src_[pos_++];
        }
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        tok.kind = Tok::kInt;
        std::string text;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                src_[pos_] == '.')) {
          text += src_[pos_++];
        }
        tok.text = text;
        if (!parse_number(text, tok.value)) {
          return Error{"bad numeric literal '" + text + "'",
                       "p4lite line " + std::to_string(tok.line)};
        }
      } else if (std::string("+-&|^").find(c) != std::string::npos &&
                 pos_ + 1 < src_.size() && src_[pos_ + 1] == '=') {
        tok.kind = Tok::kOp;
        tok.text = std::string(1, c) + "=";
        pos_ += 2;
      } else if (c == '=') {
        tok.kind = Tok::kOp;
        if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '=') {
          tok.text = "==";
          pos_ += 2;
        } else {
          tok.text = "=";
          ++pos_;
        }
      } else if (std::string("(){}[];,").find(c) != std::string::npos) {
        tok.kind = Tok::kPunct;
        tok.text = std::string(1, c);
        ++pos_;
      } else {
        return Error{std::string("unexpected character '") + c + "'",
                     "p4lite line " + std::to_string(line_)};
      }
      out.push_back(std::move(tok));
    }
    out.push_back(Tok{});
    out.back().line = line_;
    return out;
  }

 private:
  void skip_ws() {
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      } else if (src_[pos_] == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  static bool parse_number(const std::string& text, std::uint32_t& out) {
    if (text.find('.') != std::string::npos) {
      // dotted-quad IPv4
      std::uint32_t value = 0;
      int octets = 0;
      std::size_t i = 0;
      while (i < text.size()) {
        std::uint32_t octet = 0;
        std::size_t digits = 0;
        while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
          octet = octet * 10 + static_cast<std::uint32_t>(text[i] - '0');
          ++digits;
          ++i;
        }
        if (digits == 0 || octet > 255) return false;
        value = (value << 8) | octet;
        ++octets;
        if (i < text.size() && text[i] == '.') ++i;
      }
      if (octets != 4) return false;
      out = value;
      return true;
    }
    try {
      out = static_cast<std::uint32_t>(std::stoul(text, nullptr, 0));
    } catch (...) {
      return false;
    }
    return true;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// ---------------------------------------------------------------------------
// Parser + code generator (source-to-source, emits P4runpro DSL).
// ---------------------------------------------------------------------------

[[nodiscard]] bool is_reg(const std::string& name) {
  return name == "har" || name == "sar" || name == "mar";
}

class Translator {
 public:
  explicit Translator(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<std::string> run() {
    while (at_ident("memory")) {
      if (auto s = parse_memory(); !s.ok()) return s.error();
    }
    bool any = false;
    while (at_ident("program")) {
      if (auto s = parse_program(); !s.ok()) return s.error();
      any = true;
    }
    if (!any) return fail("expected at least one program");
    if (peek().kind != Tok::kEnd) return fail("trailing tokens after last program");
    return header_.str() + body_.str();
  }

 private:
  const Tok& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Tok& take() {
    const Tok& t = peek();
    if (pos_ + 1 < toks_.size()) ++pos_;
    return t;
  }
  bool at_ident(const char* name) const {
    return peek().kind == Tok::kIdent && peek().text == name;
  }
  bool at_punct(char c) const {
    return peek().kind == Tok::kPunct && peek().text[0] == c;
  }
  bool eat_punct(char c) {
    if (!at_punct(c)) return false;
    take();
    return true;
  }
  Error fail(const std::string& message) const {
    return Error{message, "p4lite line " + std::to_string(peek().line)};
  }
  Status expect_punct(char c) {
    if (eat_punct(c)) return {};
    return fail(std::string("expected '") + c + "'");
  }

  Status parse_memory() {
    take();  // 'memory'
    if (peek().kind != Tok::kIdent) return fail("expected memory name");
    const std::string name = take().text;
    if (!mems_.insert(name).second) return fail("duplicate memory '" + name + "'");
    if (auto s = expect_punct('['); !s.ok()) return s;
    if (peek().kind != Tok::kInt) return fail("expected memory size");
    const std::uint32_t size = take().value;
    if (auto s = expect_punct(']'); !s.ok()) return s;
    if (auto s = expect_punct(';'); !s.ok()) return s;
    header_ << "@ " << name << " " << size << "\n";
    return {};
  }

  Status parse_program() {
    take();  // 'program'
    if (peek().kind != Tok::kIdent) return fail("expected program name");
    const std::string name = take().text;
    if (!at_ident("on")) return fail("expected 'on' after the program name");
    take();
    body_ << "program " << name << "(";
    bool first = true;
    do {
      if (peek().kind != Tok::kIdent) return fail("expected filter field");
      const std::string field = take().text;
      if (peek().kind != Tok::kOp || peek().text != "==") {
        return fail("expected '==' in the filter");
      }
      take();
      if (peek().kind != Tok::kInt) return fail("expected filter value");
      const std::uint32_t value = take().value;
      std::uint32_t mask = 0xffffffffu;
      if (at_ident("mask")) {
        take();
        if (peek().kind != Tok::kInt) return fail("expected mask value");
        mask = take().value;
      }
      body_ << (first ? "" : ", ") << "<" << qualify_field(field) << ", " << value
            << ", 0x" << std::hex << mask << std::dec << ">";
      first = false;
    } while (at_ident("and") && (take(), true));
    body_ << ") {\n";
    if (auto s = expect_punct('{'); !s.ok()) return s;
    if (auto s = parse_block_body(1); !s.ok()) return s;
    body_ << "}\n";
    return {};
  }

  void emit(int depth, const std::string& text) {
    for (int i = 0; i < depth; ++i) body_ << "  ";
    body_ << text << "\n";
  }

  /// Statements until the closing '}' (consumed).
  Status parse_block_body(int depth) {
    while (!at_punct('}')) {
      if (peek().kind == Tok::kEnd) return fail("unterminated block");
      if (auto s = parse_statement(depth); !s.ok()) return s;
    }
    take();  // '}'
    return {};
  }

  Status parse_statement(int depth) {
    if (at_ident("if")) return parse_if(depth);

    // Zero-argument / action calls.
    for (const auto& [name, prim] :
         {std::pair<const char*, const char*>{"drop", "DROP;"},
          {"return_packet", "RETURN;"},
          {"report", "REPORT;"}}) {
      if (at_ident(name)) {
        take();
        if (auto s = expect_punct('('); !s.ok()) return s;
        if (auto s = expect_punct(')'); !s.ok()) return s;
        if (auto s = expect_punct(';'); !s.ok()) return s;
        emit(depth, prim);
        return {};
      }
    }
    if (at_ident("forward") || at_ident("multicast")) {
      const std::string prim = take().text == "forward" ? "FORWARD" : "MULTICAST";
      if (auto s = expect_punct('('); !s.ok()) return s;
      if (peek().kind != Tok::kInt) return fail("expected an integer argument");
      const std::uint32_t arg = take().value;
      if (auto s = expect_punct(')'); !s.ok()) return s;
      if (auto s = expect_punct(';'); !s.ok()) return s;
      emit(depth, prim + "(" + std::to_string(arg) + ");");
      return {};
    }

    if (peek().kind != Tok::kIdent) return fail("expected a statement");
    const std::string target = take().text;

    if (is_reg(target)) return parse_register_statement(depth, target);
    if (mems_.count(target) != 0) return parse_memory_statement(depth, target);
    // A header field assignment: field = reg;
    if (peek().kind == Tok::kOp && peek().text == "==") {
      return fail("comparisons are only valid inside 'if (...)'");
    }
    if (auto s = expect_assign(); !s.ok()) return s;
    if (peek().kind != Tok::kIdent || !is_reg(peek().text)) {
      return fail("a header field can only be assigned from a register");
    }
    const std::string reg = take().text;
    if (auto s = expect_punct(';'); !s.ok()) return s;
    emit(depth, "MODIFY(" + qualify_field(target) + ", " + reg + ");");
    return {};
  }

  /// Consume a single '=' (lexed as kOp "==" only when doubled; a single
  /// '=' appears as kOp "=" via the '+='-family path with c=='=').
  Status expect_assign() {
    if (peek().kind == Tok::kOp && (peek().text == "=" || peek().text == "==")) {
      if (peek().text == "==") return fail("'==' is only valid inside 'if (...)'");
      take();
      return {};
    }
    return fail("expected '='");
  }

  static std::string qualify_field(const std::string& field) {
    if (field.rfind("meta.", 0) == 0 || field.rfind("hdr.", 0) == 0) return field;
    return "hdr." + field;
  }

  Status parse_register_statement(int depth, const std::string& reg) {
    if (peek().kind == Tok::kOp && peek().text != "=" && peek().text != "==") {
      // Compound assignment: reg op= (reg | int)
      const std::string op = take().text;
      const bool imm = peek().kind == Tok::kInt;
      std::string rhs;
      std::uint32_t value = 0;
      if (imm) {
        value = take().value;
      } else if (peek().kind == Tok::kIdent && is_reg(peek().text)) {
        rhs = take().text;
      } else {
        return fail("expected a register or integer operand");
      }
      if (auto s = expect_punct(';'); !s.ok()) return s;
      static const std::pair<const char*, std::pair<const char*, const char*>> kOps[] = {
          {"+=", {"ADD", "ADDI"}}, {"-=", {"SUB", "SUBI"}}, {"&=", {"AND", "ANDI"}},
          {"|=", {"OR", "ORI"}},   {"^=", {"XOR", "XORI"}},
      };
      for (const auto& [text, prims] : kOps) {
        if (op == text) {
          if (imm) {
            if (op == "|=") return fail("no ORI pseudo primitive; use a register");
            emit(depth, std::string(prims.second) + "(" + reg + ", " +
                            std::to_string(value) + ");");
          } else {
            emit(depth, std::string(prims.first) + "(" + reg + ", " + rhs + ");");
          }
          return {};
        }
      }
      return fail("unsupported operator '" + op + "'");
    }

    if (auto s = expect_assign(); !s.ok()) return s;

    if (peek().kind == Tok::kInt) {
      const std::uint32_t value = take().value;
      if (auto s = expect_punct(';'); !s.ok()) return s;
      emit(depth, "LOADI(" + reg + ", " + std::to_string(value) + ");");
      return {};
    }
    if (peek().kind != Tok::kIdent) return fail("expected an expression");
    const std::string rhs = take().text;

    if (rhs == "hash5" || rhs == "hash") {
      if (auto s = expect_punct('('); !s.ok()) return s;
      std::string mem;
      if (peek().kind == Tok::kIdent) mem = take().text;
      if (auto s = expect_punct(')'); !s.ok()) return s;
      if (auto s = expect_punct(';'); !s.ok()) return s;
      if (!mem.empty() && mems_.count(mem) == 0) {
        return fail("unknown memory '" + mem + "'");
      }
      if (rhs == "hash5") {
        emit(depth, mem.empty() ? "HASH_5_TUPLE;" : "HASH_5_TUPLE_MEM(" + mem + ");");
      } else {
        emit(depth, mem.empty() ? "HASH;" : "HASH_MEM(" + mem + ");");
      }
      return {};
    }
    if (rhs == "max" || rhs == "min") {
      if (auto s = expect_punct('('); !s.ok()) return s;
      if (peek().kind != Tok::kIdent || peek().text != reg) {
        return fail("first operand of max/min must be the destination register");
      }
      take();
      if (auto s = expect_punct(','); !s.ok()) return s;
      if (peek().kind != Tok::kIdent || !is_reg(peek().text)) {
        return fail("expected a register operand");
      }
      const std::string other = take().text;
      if (auto s = expect_punct(')'); !s.ok()) return s;
      if (auto s = expect_punct(';'); !s.ok()) return s;
      emit(depth, std::string(rhs == "max" ? "MAX" : "MIN") + "(" + reg + ", " +
                      other + ");");
      return {};
    }
    if (is_reg(rhs)) {
      if (auto s = expect_punct(';'); !s.ok()) return s;
      emit(depth, "MOVE(" + reg + ", " + rhs + ");");
      return {};
    }
    if (mems_.count(rhs) != 0) {
      // sar = mem[mar];
      if (reg != "sar") return fail("memory reads land in sar");
      if (auto s = expect_punct('['); !s.ok()) return s;
      if (!(peek().kind == Tok::kIdent && peek().text == "mar")) {
        return fail("memory is addressed by mar");
      }
      take();
      if (auto s = expect_punct(']'); !s.ok()) return s;
      if (auto s = expect_punct(';'); !s.ok()) return s;
      emit(depth, "MEMREAD(" + rhs + ");");
      return {};
    }
    // reg = field;
    if (auto s = expect_punct(';'); !s.ok()) return s;
    emit(depth, "EXTRACT(" + qualify_field(rhs) + ", " + reg + ");");
    return {};
  }

  Status parse_memory_statement(int depth, const std::string& mem) {
    if (auto s = expect_punct('['); !s.ok()) return s;
    if (!(peek().kind == Tok::kIdent && peek().text == "mar")) {
      return fail("memory is addressed by mar");
    }
    take();
    if (auto s = expect_punct(']'); !s.ok()) return s;

    if (peek().kind == Tok::kOp && peek().text != "=" && peek().text != "==") {
      const std::string op = take().text;
      if (!(peek().kind == Tok::kIdent && peek().text == "sar")) {
        return fail("memory operations use sar as the operand");
      }
      take();
      if (auto s = expect_punct(';'); !s.ok()) return s;
      const char* prim = op == "+="   ? "MEMADD"
                         : op == "-=" ? "MEMSUB"
                         : op == "&=" ? "MEMAND"
                         : op == "|=" ? "MEMOR"
                                      : nullptr;
      if (prim == nullptr) return fail("unsupported memory operator '" + op + "'");
      emit(depth, std::string(prim) + "(" + mem + ");");
      return {};
    }

    if (auto s = expect_assign(); !s.ok()) return s;
    if (peek().kind == Tok::kIdent && peek().text == "sar") {
      take();
      if (auto s = expect_punct(';'); !s.ok()) return s;
      emit(depth, "MEMWRITE(" + mem + ");");
      return {};
    }
    if (peek().kind == Tok::kIdent && peek().text == "max") {
      take();
      if (auto s = expect_punct('('); !s.ok()) return s;
      if (!(peek().kind == Tok::kIdent && take().text == mem)) {
        return fail("MEMMAX operand must be the same memory bucket");
      }
      if (auto s = expect_punct('['); !s.ok()) return s;
      take();  // mar
      if (auto s = expect_punct(']'); !s.ok()) return s;
      if (auto s = expect_punct(','); !s.ok()) return s;
      if (!(peek().kind == Tok::kIdent && take().text == "sar")) {
        return fail("MEMMAX compares against sar");
      }
      if (auto s = expect_punct(')'); !s.ok()) return s;
      if (auto s = expect_punct(';'); !s.ok()) return s;
      emit(depth, "MEMMAX(" + mem + ");");
      return {};
    }
    return fail("unsupported memory assignment");
  }

  Status parse_if(int depth) {
    emit(depth, "BRANCH:");
    bool saw_else = false;
    while (true) {
      take();  // 'if' (the caller/loop guarantees it)
      if (auto s = expect_punct('('); !s.ok()) return s;
      if (peek().kind != Tok::kIdent || !is_reg(peek().text)) {
        return fail("conditions test a register");
      }
      const std::string reg = take().text;
      if (!(peek().kind == Tok::kOp && peek().text == "==")) {
        return fail("only '==' conditions are supported (use SGT/SLT encodings)");
      }
      take();
      if (peek().kind != Tok::kInt) return fail("expected comparison value");
      const std::uint32_t value = take().value;
      std::uint32_t mask = 0xffffffffu;
      if (at_ident("mask")) {
        take();
        if (peek().kind != Tok::kInt) return fail("expected mask value");
        mask = take().value;
      }
      if (auto s = expect_punct(')'); !s.ok()) return s;
      if (auto s = expect_punct('{'); !s.ok()) return s;
      std::ostringstream cond;
      cond << "case(<" << reg << ", " << value << ", 0x" << std::hex << mask
           << std::dec << ">) {";
      emit(depth, cond.str());
      if (auto s = parse_block_body(depth + 1); !s.ok()) return s;
      emit(depth, "};");

      if (!at_ident("else")) break;
      take();
      if (at_ident("if")) continue;  // else if -> next case
      // final else: a wildcard case.
      if (auto s = expect_punct('{'); !s.ok()) return s;
      emit(depth, "case(<har, 0, 0>) {");
      if (auto s = parse_block_body(depth + 1); !s.ok()) return s;
      emit(depth, "};");
      saw_else = true;
      break;
    }
    (void)saw_else;
    return {};
  }

  std::vector<Tok> toks_;
  std::size_t pos_ = 0;
  std::set<std::string> mems_;
  std::ostringstream header_;
  std::ostringstream body_;
};

}  // namespace

Result<std::string> compile_p4lite(std::string_view source) {
  auto toks = Lexer(source).run();
  if (!toks.ok()) return toks.error();
  return Translator(std::move(toks).take()).run();
}

}  // namespace p4runpro::rp
