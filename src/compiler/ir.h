// Translated intermediate representation. After semantic checking, pseudo-
// primitive translation, offset-step insertion and memory alignment, a
// program is a DAG of IR nodes; every node carries its final AST depth
// (§4.3: "the depth of the AST node refers to the primitive execution
// dependency") and its branch id. Nodes at the same depth execute in the
// same logical RPB.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "dataplane/atomic_op.h"
#include "dataplane/init_block.h"
#include "lang/ast.h"

namespace p4runpro::rp {

/// One case rule of a translated BRANCH node.
struct CaseRule {
  std::vector<lang::Condition> conditions;
  BranchId target = 0;
};

/// A translated operation. For memory-touching kinds (Mem / Offset /
/// Hash*Mem) `vmem` names the virtual memory block; physical base and mask
/// are bound at entry generation after allocation.
struct IrOp {
  dp::OpKind kind = dp::OpKind::Nop;
  rmt::FieldId field = rmt::FieldId::Ipv4Src;
  Reg reg0 = Reg::Har;
  Reg reg1 = Reg::Sar;
  Word imm = 0;
  rmt::SaluOp salu = rmt::SaluOp::Read;
  std::string vmem;
  std::vector<CaseRule> cases;  // Branch kind only

  /// Table entries this op consumes in its RPB.
  [[nodiscard]] int entry_count() const noexcept {
    return kind == dp::OpKind::Branch ? static_cast<int>(cases.size()) : 1;
  }
};

/// DAG node: op + branch id + dependency edges + resolved depth.
struct IrNode {
  int id = 0;
  BranchId branch = 0;
  IrOp op;
  std::vector<int> preds;
  int depth = 0;  // 1-based; assigned by the depth/alignment pass
};

/// Aggregated per-depth requirements consumed by the allocation solver.
struct DepthRequirement {
  int entries = 0;                  // te_req
  std::vector<std::string> vmems;   // virtual memory blocks accessed here
  bool forwarding = false;          // contains a forwarding primitive (F set)
  bool memory = false;              // contains a Mem op
};

/// Fully translated program, ready for allocation.
struct TranslatedProgram {
  std::string name;
  std::vector<dp::FilterTuple> filters;
  std::map<std::string, std::uint32_t> vmem_sizes;  // rounded to powers of 2
  std::vector<IrNode> nodes;
  int depth = 0;  // L
  int num_branches = 1;

  /// depths[d-1] = requirement of depth d.
  std::vector<DepthRequirement> depth_reqs;
  /// For each vmem, the ordered list of depths that access it (aligned
  /// levels). Consecutive levels form the B pairs of constraint (5).
  std::map<std::string, std::vector<int>> vmem_depths;

  [[nodiscard]] int total_entries() const noexcept {
    int n = 0;
    for (const auto& node : nodes) n += node.op.entry_count();
    return n;
  }
};

}  // namespace p4runpro::rp
