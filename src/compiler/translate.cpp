#include "compiler/translate.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "rmt/packet.h"

namespace p4runpro::rp {

namespace {

using lang::Primitive;
using lang::PrimKind;

/// Register read/write sets of a *surface* primitive, used by the liveness
/// query that decides whether a supportive register needs backup (Fig. 4b).
struct RegUse {
  std::set<Reg> reads;
  std::set<Reg> writes;
};

[[nodiscard]] RegUse reg_use(const Primitive& prim) {
  RegUse use;
  auto arg_reg = [&prim](std::size_t i) { return prim.args[i].reg; };
  switch (prim.kind) {
    case PrimKind::Extract:
      use.writes.insert(arg_reg(1));
      break;
    case PrimKind::Modify:
      use.reads.insert(arg_reg(1));
      break;
    case PrimKind::Hash5Tuple:
      use.writes.insert(Reg::Har);
      break;
    case PrimKind::Hash:
      use.reads.insert(Reg::Har);
      use.writes.insert(Reg::Har);
      break;
    case PrimKind::Hash5TupleMem:
      use.writes.insert(Reg::Mar);
      break;
    case PrimKind::HashMem:
      use.reads.insert(Reg::Har);
      use.writes.insert(Reg::Mar);
      break;
    case PrimKind::Branch:
      // The BRANCH key inspects all three registers.
      use.reads = {Reg::Har, Reg::Sar, Reg::Mar};
      break;
    case PrimKind::MemAdd:
    case PrimKind::MemSub:
    case PrimKind::MemAnd:
    case PrimKind::MemOr:
      use.reads = {Reg::Mar, Reg::Sar};
      use.writes.insert(Reg::Sar);
      break;
    case PrimKind::MemRead:
      use.reads.insert(Reg::Mar);
      use.writes.insert(Reg::Sar);
      break;
    case PrimKind::MemWrite:
    case PrimKind::MemMax:
      use.reads = {Reg::Mar, Reg::Sar};
      break;
    case PrimKind::Loadi:
      use.writes.insert(arg_reg(0));
      break;
    case PrimKind::Add:
    case PrimKind::And:
    case PrimKind::Or:
    case PrimKind::Max:
    case PrimKind::Min:
    case PrimKind::Xor:
    case PrimKind::Sub:
    case PrimKind::Equal:
    case PrimKind::Sgt:
    case PrimKind::Slt:
      use.reads = {arg_reg(0), arg_reg(1)};
      use.writes.insert(arg_reg(0));
      break;
    case PrimKind::Move:
      use.reads.insert(arg_reg(1));
      use.writes.insert(arg_reg(0));
      break;
    case PrimKind::Not:
      use.reads.insert(arg_reg(0));
      use.writes.insert(arg_reg(0));
      break;
    case PrimKind::Addi:
    case PrimKind::Andi:
    case PrimKind::Xori:
    case PrimKind::Subi:
      use.reads.insert(arg_reg(0));
      use.writes.insert(arg_reg(0));
      break;
    case PrimKind::Forward:
    case PrimKind::Drop:
    case PrimKind::Return:
    case PrimKind::Report:
    case PrimKind::Multicast:
      break;
  }
  return use;
}

/// Does this subtree contain a terminal forwarding op (RETURN/DROP/REPORT)?
/// Such case branches end the packet's processing and do not receive the
/// trailing-primitive replica (DESIGN.md §2.3).
[[nodiscard]] bool contains_terminal(const std::vector<Primitive>& body) {
  for (const auto& prim : body) {
    if (prim.kind == PrimKind::Drop || prim.kind == PrimKind::Return ||
        prim.kind == PrimKind::Report || prim.kind == PrimKind::Multicast) {
      return true;
    }
    for (const auto& c : prim.cases) {
      if (contains_terminal(c.body)) return true;
    }
  }
  return false;
}

[[nodiscard]] rmt::SaluOp salu_of(PrimKind kind) {
  switch (kind) {
    case PrimKind::MemAdd: return rmt::SaluOp::Add;
    case PrimKind::MemSub: return rmt::SaluOp::Sub;
    case PrimKind::MemAnd: return rmt::SaluOp::And;
    case PrimKind::MemOr: return rmt::SaluOp::Or;
    case PrimKind::MemRead: return rmt::SaluOp::Read;
    case PrimKind::MemWrite: return rmt::SaluOp::Write;
    case PrimKind::MemMax: return rmt::SaluOp::Max;
    default: assert(false); return rmt::SaluOp::Read;
  }
}

class Translator {
 public:
  Translator(const lang::Unit& unit, const lang::ProgramDecl& program)
      : program_(program) {
    for (const auto& ann : unit.annotations) {
      mem_sizes_[ann.name] = round_pow2(ann.size);
    }
  }

  Result<TranslatedProgram> run() {
    TranslatedProgram out;
    out.name = program_.name;
    for (const auto& f : program_.filters) {
      const auto field = rmt::field_from_name(f.field);
      assert(field && "semcheck guarantees resolvable filter fields");
      out.filters.push_back(dp::FilterTuple{*field, f.value, f.mask});
    }

    walk_seq(program_.body, /*bid=*/0, /*preds=*/{}, /*tail_live=*/false);
    if (failed_) return error_;

    assign_depths();
    if (failed_) return error_;

    out.nodes = std::move(nodes_);
    out.num_branches = next_branch_;
    finalize(out);
    return out;
  }

 private:
  // --- node construction -------------------------------------------------

  int emit(IrOp op, BranchId bid, const std::vector<int>& preds) {
    IrNode node;
    node.id = static_cast<int>(nodes_.size());
    node.branch = bid;
    node.op = std::move(op);
    node.preds = preds;
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
  }

  void fail(int line, std::string message) {
    if (failed_) return;
    failed_ = true;
    error_ = Error{std::move(message), "line " + std::to_string(line),
                   ErrorCode::SemanticError};
  }

  /// Walk a primitive sequence under branch `bid`, chaining dependencies
  /// from `preds`. `tail_live` tells the liveness query whether registers
  /// can still be read after this sequence ends (i.e. it is a case body
  /// whose enclosing context continues).
  void walk_seq(const std::vector<Primitive>& prims, BranchId bid,
                std::vector<int> preds, bool tail_live) {
    for (std::size_t i = 0; i < prims.size(); ++i) {
      if (failed_) return;
      const Primitive& prim = prims[i];

      if (prim.kind == PrimKind::Branch) {
        walk_branch(prim, prims, i, bid, std::move(preds), tail_live);
        return;  // the branch consumed the remainder of the sequence
      }

      for (IrOp& op : lower(prim, prims, i, tail_live)) {
        const int id = emit(std::move(op), bid, preds);
        preds = {id};
      }
    }
  }

  void walk_branch(const Primitive& branch, const std::vector<Primitive>& prims,
                   std::size_t index, BranchId bid, std::vector<int> preds,
                   bool tail_live) {
    IrOp op;
    op.kind = dp::OpKind::Branch;
    std::vector<BranchId> case_bids;
    for (const auto& c : branch.cases) {
      if (next_branch_ > 65535) {
        fail(branch.line, "too many conditional branches (branch id overflow)");
        return;
      }
      const auto target = static_cast<BranchId>(next_branch_++);
      case_bids.push_back(target);
      op.cases.push_back(CaseRule{c.conditions, target});
    }
    const int branch_node = emit(std::move(op), bid, preds);

    const std::vector<Primitive> rest(prims.begin() + static_cast<std::ptrdiff_t>(index) + 1,
                                      prims.end());

    for (std::size_t c = 0; c < branch.cases.size(); ++c) {
      const auto& case_block = branch.cases[c];
      // Non-terminal case branches continue into the trailing primitives
      // (replication); terminal branches end the packet's processing.
      if (!rest.empty() && !contains_terminal(case_block.body)) {
        std::vector<Primitive> merged = case_block.body;
        merged.insert(merged.end(), rest.begin(), rest.end());
        walk_seq(merged, case_bids[c], {branch_node}, tail_live);
      } else {
        walk_seq(case_block.body, case_bids[c], {branch_node},
                 tail_live || !rest.empty());
      }
    }

    // Miss path: no case matched, the packet keeps the enclosing branch id
    // and executes the trailing primitives (Fig. 2's cache-miss FORWARD).
    if (!rest.empty()) {
      walk_seq(rest, bid, {branch_node}, tail_live);
    }
  }

  // --- primitive lowering ------------------------------------------------

  /// Lower one non-branch surface primitive into IR ops. `prims`/`index`
  /// give the context for the supportive-register liveness query.
  std::vector<IrOp> lower(const Primitive& prim, const std::vector<Primitive>& prims,
                          std::size_t index, bool tail_live) {
    std::vector<IrOp> ops;
    auto reg_arg = [&prim](std::size_t i) { return prim.args[i].reg; };
    auto int_arg = [&prim](std::size_t i) { return prim.args[i].value; };

    switch (prim.kind) {
      case PrimKind::Extract: {
        const auto field = rmt::field_from_name(prim.args[0].text);
        assert(field);
        ops.push_back(make(dp::AtomicOp::extract(*field, reg_arg(1))));
        break;
      }
      case PrimKind::Modify: {
        const auto field = rmt::field_from_name(prim.args[0].text);
        assert(field);
        ops.push_back(make(dp::AtomicOp::modify(*field, reg_arg(1))));
        break;
      }
      case PrimKind::Hash5Tuple:
        ops.push_back(make(dp::AtomicOp::hash_5_tuple()));
        break;
      case PrimKind::Hash:
        ops.push_back(make(dp::AtomicOp::hash_har()));
        break;
      case PrimKind::Hash5TupleMem:
      case PrimKind::HashMem: {
        const std::string& mem = prim.args[0].text;
        IrOp op = make(prim.kind == PrimKind::Hash5TupleMem
                           ? dp::AtomicOp::hash_5_tuple_mem(0)
                           : dp::AtomicOp::hash_har_mem(0));
        op.vmem = mem;  // mask = size - 1 bound at entry generation
        ops.push_back(std::move(op));
        break;
      }
      case PrimKind::MemAdd:
      case PrimKind::MemSub:
      case PrimKind::MemAnd:
      case PrimKind::MemOr:
      case PrimKind::MemRead:
      case PrimKind::MemWrite:
      case PrimKind::MemMax: {
        const std::string& mem = prim.args[0].text;
        // Offset step first (separate AST node / depth, Fig. 5b), then the
        // SALU operation.
        IrOp offset = make(dp::AtomicOp::offset(0));
        offset.vmem = mem;
        ops.push_back(std::move(offset));
        IrOp memop = make(dp::AtomicOp::mem(salu_of(prim.kind)));
        memop.vmem = mem;
        ops.push_back(std::move(memop));
        break;
      }
      case PrimKind::Loadi:
        ops.push_back(make(dp::AtomicOp::loadi(reg_arg(0), int_arg(1))));
        break;
      case PrimKind::Add:
      case PrimKind::And:
      case PrimKind::Or:
      case PrimKind::Max:
      case PrimKind::Min:
      case PrimKind::Xor:
        ops.push_back(make(dp::AtomicOp::alu(alu_kind(prim.kind), reg_arg(0), reg_arg(1))));
        break;

      // ---- pseudo primitives (Fig. 14) ---------------------------------
      case PrimKind::Move:
        // MOVE(A, B) = LOADI(A, 0); ADD(A, B)
        ops.push_back(make(dp::AtomicOp::loadi(reg_arg(0), 0)));
        ops.push_back(make(dp::AtomicOp::alu(dp::OpKind::Add, reg_arg(0), reg_arg(1))));
        break;
      case PrimKind::Equal:
        // EQUAL(A, B) = XOR(A, B): A == 0 iff equal
        ops.push_back(make(dp::AtomicOp::alu(dp::OpKind::Xor, reg_arg(0), reg_arg(1))));
        break;
      case PrimKind::Sgt:
        // SGT(A, B) = MIN(A, B); XOR(A, B): A == 0 iff A >= B
        ops.push_back(make(dp::AtomicOp::alu(dp::OpKind::Min, reg_arg(0), reg_arg(1))));
        ops.push_back(make(dp::AtomicOp::alu(dp::OpKind::Xor, reg_arg(0), reg_arg(1))));
        break;
      case PrimKind::Slt:
        ops.push_back(make(dp::AtomicOp::alu(dp::OpKind::Max, reg_arg(0), reg_arg(1))));
        ops.push_back(make(dp::AtomicOp::alu(dp::OpKind::Xor, reg_arg(0), reg_arg(1))));
        break;
      case PrimKind::Not: {
        // NOT(A) = LOADI(C, 0xffffffff); XOR(A, C)
        with_support(prim, prims, index, tail_live, {reg_arg(0)}, ops,
                     [&](Reg c, std::vector<IrOp>& seq) {
                       seq.push_back(make(dp::AtomicOp::loadi(c, kRegMax)));
                       seq.push_back(make(dp::AtomicOp::alu(dp::OpKind::Xor, reg_arg(0), c)));
                     });
        break;
      }
      case PrimKind::Addi:
      case PrimKind::Andi:
      case PrimKind::Xori: {
        const dp::OpKind alu = prim.kind == PrimKind::Addi   ? dp::OpKind::Add
                               : prim.kind == PrimKind::Andi ? dp::OpKind::And
                                                             : dp::OpKind::Xor;
        with_support(prim, prims, index, tail_live, {reg_arg(0)}, ops,
                     [&](Reg c, std::vector<IrOp>& seq) {
                       seq.push_back(make(dp::AtomicOp::loadi(c, int_arg(1))));
                       seq.push_back(make(dp::AtomicOp::alu(alu, reg_arg(0), c)));
                     });
        break;
      }
      case PrimKind::Subi: {
        // SUBI(A, i) = LOADI(C, 2^32 - i); ADD(A, C)
        with_support(prim, prims, index, tail_live, {reg_arg(0)}, ops,
                     [&](Reg c, std::vector<IrOp>& seq) {
                       seq.push_back(make(dp::AtomicOp::loadi(c, 0u - int_arg(1))));
                       seq.push_back(make(dp::AtomicOp::alu(dp::OpKind::Add, reg_arg(0), c)));
                     });
        break;
      }
      case PrimKind::Sub: {
        // SUB(A, B) = A + ~B + 1 via the supportive register. The paper's
        // Fig. 14 listing omits the final +1 correction; we emit the
        // corrected 6-op sequence (see DESIGN.md §2).
        with_support(prim, prims, index, tail_live, {reg_arg(0), reg_arg(1)}, ops,
                     [&](Reg c, std::vector<IrOp>& seq) {
                       const Reg a = reg_arg(0);
                       const Reg b = reg_arg(1);
                       seq.push_back(make(dp::AtomicOp::loadi(c, kRegMax)));
                       seq.push_back(make(dp::AtomicOp::alu(dp::OpKind::Xor, b, c)));  // b = ~b
                       seq.push_back(make(dp::AtomicOp::alu(dp::OpKind::Add, a, b)));  // a += ~b
                       seq.push_back(make(dp::AtomicOp::alu(dp::OpKind::Xor, b, c)));  // restore b
                       seq.push_back(make(dp::AtomicOp::loadi(c, 1)));
                       seq.push_back(make(dp::AtomicOp::alu(dp::OpKind::Add, a, c)));  // a += 1
                     });
        break;
      }

      // ---- forwarding ---------------------------------------------------
      case PrimKind::Forward:
        ops.push_back(make(dp::AtomicOp::forward(static_cast<Port>(int_arg(0)))));
        break;
      case PrimKind::Multicast:
        ops.push_back(make(dp::AtomicOp::multicast(int_arg(0))));
        break;
      case PrimKind::Drop:
        ops.push_back(make(dp::AtomicOp::drop()));
        break;
      case PrimKind::Return:
        ops.push_back(make(dp::AtomicOp::ret()));
        break;
      case PrimKind::Report:
        ops.push_back(make(dp::AtomicOp::report()));
        break;

      case PrimKind::Branch:
        assert(false && "handled in walk_branch");
        break;
    }
    return ops;
  }

  [[nodiscard]] static dp::OpKind alu_kind(PrimKind kind) {
    switch (kind) {
      case PrimKind::Add: return dp::OpKind::Add;
      case PrimKind::And: return dp::OpKind::And;
      case PrimKind::Or: return dp::OpKind::Or;
      case PrimKind::Max: return dp::OpKind::Max;
      case PrimKind::Min: return dp::OpKind::Min;
      case PrimKind::Xor: return dp::OpKind::Xor;
      default: assert(false); return dp::OpKind::Nop;
    }
  }

  [[nodiscard]] static IrOp make(const dp::AtomicOp& op) {
    IrOp ir;
    ir.kind = op.kind;
    ir.field = op.field;
    ir.reg0 = op.reg0;
    ir.reg1 = op.reg1;
    ir.imm = op.imm;
    ir.salu = op.salu;
    return ir;
  }

  /// Run `body(C, seq)` with a supportive register C not in `used`,
  /// wrapping with BACKUP/RESTORE unless C is dead after this primitive
  /// (register-lifetime optimization, §4.2).
  template <typename Body>
  void with_support(const Primitive&, const std::vector<Primitive>& prims,
                    std::size_t index, bool tail_live, std::set<Reg> used,
                    std::vector<IrOp>& ops, Body body) {
    // Candidate supportive registers: prefer a dead one.
    Reg support = Reg::Har;
    bool found_dead = false;
    for (Reg r : {Reg::Har, Reg::Sar, Reg::Mar}) {
      if (used.count(r) != 0) continue;
      if (!live_after(r, prims, index, tail_live)) {
        support = r;
        found_dead = true;
        break;
      }
      support = r;  // fall back to any unused register
    }
    if (!found_dead) ops.push_back(make(dp::AtomicOp::backup(support)));
    body(support, ops);
    if (!found_dead) ops.push_back(make(dp::AtomicOp::restore(support)));
  }

  /// Is register `r` live after primitive `index` of `prims`? Scans the
  /// remaining primitives in order; a read before a write keeps it live,
  /// a write first kills it. Falling off the end defers to `tail_live`.
  [[nodiscard]] bool live_after(Reg r, const std::vector<Primitive>& prims,
                                std::size_t index, bool tail_live) const {
    for (std::size_t i = index + 1; i < prims.size(); ++i) {
      // A BRANCH reads all three registers (key match), so any later
      // conditional keeps the register live.
      const RegUse use = reg_use(prims[i]);
      if (use.reads.count(r) != 0) return true;
      if (use.writes.count(r) != 0) return false;
    }
    return tail_live;
  }

  // --- depth assignment and alignment ------------------------------------

  void assign_depths() {
    const std::size_t n = nodes_.size();
    // Successor lists for reachability.
    std::vector<std::vector<int>> succs(n);
    for (const auto& node : nodes_) {
      for (int p : node.preds) succs[static_cast<std::size_t>(p)].push_back(node.id);
    }

    // Memory alignment classes: for each vmem, partition its Mem nodes into
    // levels by DAG reachability; nodes in the same level (parallel
    // branches) must share a depth (same physical stage, Fig. 5b).
    std::map<std::string, std::vector<int>> mem_nodes;
    for (const auto& node : nodes_) {
      if (node.op.kind == dp::OpKind::Mem) mem_nodes[node.op.vmem].push_back(node.id);
    }
    // Reachability via DFS (node counts are small).
    auto reaches = [&](int from, int to) {
      std::vector<int> stack{from};
      std::vector<bool> seen(n, false);
      while (!stack.empty()) {
        const int cur = stack.back();
        stack.pop_back();
        if (cur == to) return true;
        if (seen[static_cast<std::size_t>(cur)]) continue;
        seen[static_cast<std::size_t>(cur)] = true;
        for (int s : succs[static_cast<std::size_t>(cur)]) stack.push_back(s);
      }
      return false;
    };

    align_classes_.clear();
    for (auto& [vmem, ids] : mem_nodes) {
      // level[i] = 1 + max level of same-vmem ancestors.
      std::vector<int> level(ids.size(), 1);
      for (std::size_t i = 0; i < ids.size(); ++i) {
        for (std::size_t j = 0; j < ids.size(); ++j) {
          if (i == j) continue;
          if (reaches(ids[j], ids[i])) level[i] = std::max(level[i], level[j] + 1);
        }
      }
      const int max_level = *std::max_element(level.begin(), level.end());
      for (int lv = 1; lv <= max_level; ++lv) {
        std::vector<int> cls;
        for (std::size_t i = 0; i < ids.size(); ++i) {
          if (level[i] == lv) cls.push_back(ids[i]);
        }
        if (cls.size() > 1) align_classes_.push_back(cls);
      }
    }

    // Fixpoint: longest-path depths, then raise alignment classes.
    for (auto& node : nodes_) node.depth = 0;
    bool changed = true;
    int iterations = 0;
    while (changed) {
      changed = false;
      if (++iterations > static_cast<int>(n) + 8) {
        fail(program_.line, "internal: depth assignment did not converge");
        return;
      }
      for (auto& node : nodes_) {  // nodes_ is already in topological order
        int d = 1;
        for (int p : node.preds) {
          d = std::max(d, nodes_[static_cast<std::size_t>(p)].depth + 1);
        }
        if (d > node.depth) {
          node.depth = d;
          changed = true;
        }
      }
      for (const auto& cls : align_classes_) {
        int dmax = 0;
        for (int id : cls) dmax = std::max(dmax, nodes_[static_cast<std::size_t>(id)].depth);
        for (int id : cls) {
          if (nodes_[static_cast<std::size_t>(id)].depth < dmax) {
            nodes_[static_cast<std::size_t>(id)].depth = dmax;
            changed = true;
          }
        }
      }
    }
  }

  void finalize(TranslatedProgram& out) {
    out.depth = 0;
    for (const auto& node : out.nodes) out.depth = std::max(out.depth, node.depth);
    out.depth_reqs.assign(static_cast<std::size_t>(out.depth), DepthRequirement{});
    std::map<std::string, std::set<int>> vmem_depth_sets;
    for (const auto& node : out.nodes) {
      auto& req = out.depth_reqs[static_cast<std::size_t>(node.depth - 1)];
      req.entries += node.op.entry_count();
      if (dp::is_forwarding(node.op.kind)) req.forwarding = true;
      if (node.op.kind == dp::OpKind::Mem) {
        req.memory = true;
        if (std::find(req.vmems.begin(), req.vmems.end(), node.op.vmem) == req.vmems.end()) {
          req.vmems.push_back(node.op.vmem);
        }
        vmem_depth_sets[node.op.vmem].insert(node.depth);
      }
      if (!node.op.vmem.empty()) {
        // Record the sizes of every referenced vmem (hash/offset included).
        out.vmem_sizes[node.op.vmem] = mem_sizes_.at(node.op.vmem);
      }
    }
    for (auto& [vmem, depths] : vmem_depth_sets) {
      out.vmem_depths[vmem] = std::vector<int>(depths.begin(), depths.end());
    }
  }

  const lang::ProgramDecl& program_;
  std::map<std::string, std::uint32_t> mem_sizes_;
  std::vector<IrNode> nodes_;
  std::vector<std::vector<int>> align_classes_;
  int next_branch_ = 1;
  bool failed_ = false;
  Error error_;
};

}  // namespace

std::uint32_t round_pow2(std::uint32_t size) noexcept {
  std::uint32_t p = 1;
  while (p < size) p <<= 1;
  return p;
}

Result<TranslatedProgram> translate(const lang::Unit& unit,
                                    const lang::ProgramDecl& program) {
  return Translator(unit, program).run();
}

}  // namespace p4runpro::rp
