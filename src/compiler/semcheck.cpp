#include "compiler/semcheck.h"

#include <algorithm>
#include <set>
#include <string>

#include "dataplane/init_block.h"
#include "rmt/packet.h"

namespace p4runpro::rp {

namespace {

using lang::Argument;
using lang::Primitive;
using lang::PrimKind;

[[nodiscard]] Error at_line(int line, std::string message) {
  return Error{std::move(message), "line " + std::to_string(line),
               ErrorCode::SemanticError};
}

/// Expected argument shapes. R = register, F = field, M = memory
/// identifier, I = integer.
[[nodiscard]] const char* signature(PrimKind kind) noexcept {
  switch (kind) {
    case PrimKind::Extract: return "FR";
    case PrimKind::Modify: return "FR";
    case PrimKind::Hash5Tuple: return "";
    case PrimKind::Hash: return "";
    case PrimKind::Hash5TupleMem: return "M";
    case PrimKind::HashMem: return "M";
    case PrimKind::Branch: return "";
    case PrimKind::MemAdd:
    case PrimKind::MemSub:
    case PrimKind::MemAnd:
    case PrimKind::MemOr:
    case PrimKind::MemRead:
    case PrimKind::MemWrite:
    case PrimKind::MemMax:
      return "M";
    case PrimKind::Loadi: return "RI";
    case PrimKind::Add:
    case PrimKind::And:
    case PrimKind::Or:
    case PrimKind::Max:
    case PrimKind::Min:
    case PrimKind::Xor:
    case PrimKind::Move:
    case PrimKind::Sub:
    case PrimKind::Equal:
    case PrimKind::Sgt:
    case PrimKind::Slt:
      return "RR";
    case PrimKind::Not: return "R";
    case PrimKind::Addi:
    case PrimKind::Andi:
    case PrimKind::Xori:
    case PrimKind::Subi:
      return "RI";
    case PrimKind::Forward: return "I";
    case PrimKind::Multicast: return "I";
    case PrimKind::Drop:
    case PrimKind::Return:
    case PrimKind::Report:
      return "";
  }
  return "";
}

class Checker {
 public:
  Checker(const lang::Unit& unit, const lang::ProgramDecl& program)
      : program_(program) {
    for (const auto& ann : unit.annotations) declared_mems_.insert(ann.name);
  }

  Status run() {
    if (program_.filters.empty()) {
      return at_line(program_.line, "program '" + program_.name + "' needs a traffic filter");
    }
    for (const auto& filter : program_.filters) {
      const auto field = rmt::field_from_name(filter.field);
      if (!field) {
        return at_line(filter.line, "unknown field '" + filter.field + "' in filter");
      }
      if (!dp::filter_key_slot(*field)) {
        return at_line(filter.line,
                       "field '" + filter.field + "' cannot be used in a flow filter");
      }
    }
    return check_body(program_.body);
  }

 private:
  Status check_body(const std::vector<Primitive>& body) {
    for (const auto& prim : body) {
      if (auto s = check_primitive(prim); !s.ok()) return s;
    }
    return {};
  }

  Status check_primitive(const Primitive& prim) {
    if (prim.kind == PrimKind::Branch) return check_branch(prim);

    const std::string sig = signature(prim.kind);
    if (prim.args.size() != sig.size()) {
      return at_line(prim.line, std::string(lang::prim_name(prim.kind)) + " expects " +
                                    std::to_string(sig.size()) + " argument(s), got " +
                                    std::to_string(prim.args.size()));
    }
    for (std::size_t i = 0; i < sig.size(); ++i) {
      if (auto s = check_argument(prim, prim.args[i], sig[i]); !s.ok()) return s;
    }
    // Kind-specific extras.
    if (prim.kind == PrimKind::Modify) {
      const auto field = rmt::field_from_name(prim.args[0].text);
      if (field == rmt::FieldId::MetaIngressPort || field == rmt::FieldId::MetaQdepth) {
        return at_line(prim.line, "intrinsic metadata field '" + prim.args[0].text +
                                      "' is read-only");
      }
    }
    if (prim.kind == PrimKind::Forward && prim.args[0].value > 255) {
      return at_line(prim.line, "egress port out of range");
    }
    return {};
  }

  Status check_branch(const Primitive& prim) {
    if (prim.cases.empty()) {
      return at_line(prim.line, "BRANCH needs at least one case");
    }
    for (const auto& c : prim.cases) {
      if (c.conditions.empty()) {
        return at_line(c.line, "case needs at least one condition");
      }
      std::set<Reg> seen;
      for (const auto& cond : c.conditions) {
        if (!seen.insert(cond.reg).second) {
          return at_line(cond.line, std::string("duplicate condition on register ") +
                                        to_string(cond.reg));
        }
      }
      if (auto s = check_body(c.body); !s.ok()) return s;
    }
    return {};
  }

  Status check_argument(const Primitive& prim, const Argument& arg, char expected) {
    const char* prim_str = lang::prim_name(prim.kind);
    switch (expected) {
      case 'R':
        if (arg.kind != Argument::Kind::Register) {
          return at_line(arg.line, std::string(prim_str) + ": expected a register argument");
        }
        return {};
      case 'I':
        if (arg.kind != Argument::Kind::Integer) {
          return at_line(arg.line, std::string(prim_str) + ": expected an integer argument");
        }
        return {};
      case 'F': {
        if (arg.kind != Argument::Kind::Field) {
          return at_line(arg.line, std::string(prim_str) + ": expected a header/metadata field");
        }
        if (!rmt::field_from_name(arg.text)) {
          return at_line(arg.line, "unknown field '" + arg.text + "'");
        }
        return {};
      }
      case 'M':
        if (arg.kind != Argument::Kind::Identifier) {
          return at_line(arg.line, std::string(prim_str) + ": expected a memory identifier");
        }
        if (declared_mems_.find(arg.text) == declared_mems_.end()) {
          return at_line(arg.line, "memory '" + arg.text + "' was not declared with '@'");
        }
        return {};
      default:
        return at_line(arg.line, "internal: bad signature");
    }
  }

  const lang::ProgramDecl& program_;
  std::set<std::string> declared_mems_;
};

}  // namespace

Status check_program(const lang::Unit& unit, const lang::ProgramDecl& program) {
  return Checker(unit, program).run();
}

Status check_unit(const lang::Unit& unit) {
  std::set<std::string> names;
  for (const auto& ann : unit.annotations) {
    // Sizes are rounded up to powers of two by the translator (mask-based
    // address translation; the round-up is the internal fragmentation §7
    // mentions — e.g. `@ port_pool 10` in the paper's lb program).
    if (ann.size == 0) {
      return Error{"memory '" + ann.name + "' must have a non-zero size",
                   "line " + std::to_string(ann.line), ErrorCode::SemanticError};
    }
    if (!names.insert(ann.name).second) {
      return Error{"duplicate memory declaration '" + ann.name + "'",
                   "line " + std::to_string(ann.line), ErrorCode::SemanticError};
    }
  }
  std::set<std::string> prog_names;
  for (const auto& prog : unit.programs) {
    if (!prog_names.insert(prog.name).second) {
      return Error{"duplicate program name '" + prog.name + "'",
                   "line " + std::to_string(prog.line), ErrorCode::SemanticError};
    }
    if (auto s = check_program(unit, prog); !s.ok()) return s;
  }
  return {};
}

}  // namespace p4runpro::rp
