// Entry generation: the final compilation step (Fig. 5c -> "generates table
// entries"). Maps every IR node to a concrete RPB table entry with ternary
// keys over (program id, branch id, recirculation id, har, sar, mar),
// binding physical memory bases (offset step), hash masks (mask step) and
// SALU selectors from the allocation result.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "compiler/ir.h"
#include "compiler/solver.h"
#include "control/resource_manager.h"
#include "dataplane/rpb.h"
#include "dataplane/write_op.h"

namespace p4runpro::rp {

/// One planned RPB entry.
struct RpbEntrySpec {
  int rpb = 0;  // physical RPB id
  std::vector<rmt::TernaryKey> keys;
  int priority = 0;
  dp::RpbAction action;
};

/// Everything the update engine needs to (consistently) install or remove
/// one program.
struct EntryPlan {
  ProgramId program = 0;
  std::vector<RpbEntrySpec> rpb_entries;
  std::vector<dp::FilterTuple> filters;
  /// Filtering-table priority; the controller assigns a fresh generation
  /// per install so that an incremental update's new version outranks the
  /// old one while both are briefly present.
  int filter_priority = 0;
  int rounds = 1;  // recirculation entries: rounds - 1
};

/// Build the plan for a translated+allocated program. `placements` gives
/// the physical base of each virtual memory block (from the resource
/// manager commit).
[[nodiscard]] EntryPlan generate_entries(
    const TranslatedProgram& program, const AllocationResult& alloc,
    ProgramId id, const std::map<std::string, ctrl::VmemPlacement>& placements,
    const dp::DataplaneSpec& spec);

/// Stage a plan's install into a declarative op-log, in consistent-update
/// order (§4.3, Fig. 6): recirculation entries first, then the RPB entries,
/// then the init filters last — the program stays invisible until the final
/// filter write. The update engine executes the batch; nothing here touches
/// the dataplane.
void stage_install(const EntryPlan& plan, dp::WriteBatch& batch);

/// Stage the removal of an installed plan (handles from the live program):
/// filters first (atomically deactivates the program), then RPB entries,
/// recirculation entries, and finally the lock-and-reset of each virtual
/// memory (Fig. 6 step 4). `rpb_handles`/`recirc_handles`/`filter_handles`
/// must be the handles the install execution returned, aligned with the
/// plan's entry order.
void stage_remove(
    const EntryPlan& plan,
    const std::vector<dp::InitBlock::InstalledFilter>& filter_handles,
    const std::vector<std::pair<int, rmt::EntryHandle>>& rpb_handles,
    const std::vector<rmt::EntryHandle>& recirc_handles,
    const std::map<std::string, ctrl::VmemPlacement>& placements,
    dp::WriteBatch& batch);

}  // namespace p4runpro::rp
