// Entry generation: the final compilation step (Fig. 5c -> "generates table
// entries"). Maps every IR node to a concrete RPB table entry with ternary
// keys over (program id, branch id, recirculation id, har, sar, mar),
// binding physical memory bases (offset step), hash masks (mask step) and
// SALU selectors from the allocation result.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "compiler/ir.h"
#include "compiler/solver.h"
#include "control/resource_manager.h"
#include "dataplane/rpb.h"

namespace p4runpro::rp {

/// One planned RPB entry.
struct RpbEntrySpec {
  int rpb = 0;  // physical RPB id
  std::vector<rmt::TernaryKey> keys;
  int priority = 0;
  dp::RpbAction action;
};

/// Everything the update engine needs to (consistently) install or remove
/// one program.
struct EntryPlan {
  ProgramId program = 0;
  std::vector<RpbEntrySpec> rpb_entries;
  std::vector<dp::FilterTuple> filters;
  /// Filtering-table priority; the controller assigns a fresh generation
  /// per install so that an incremental update's new version outranks the
  /// old one while both are briefly present.
  int filter_priority = 0;
  int rounds = 1;  // recirculation entries: rounds - 1
};

/// Build the plan for a translated+allocated program. `placements` gives
/// the physical base of each virtual memory block (from the resource
/// manager commit).
[[nodiscard]] EntryPlan generate_entries(
    const TranslatedProgram& program, const AllocationResult& alloc,
    ProgramId id, const std::map<std::string, ctrl::VmemPlacement>& placements,
    const dp::DataplaneSpec& spec);

}  // namespace p4runpro::rp
