// Runtime resource-allocation solver (paper §4.3 "Program Allocation").
// Finds the allocation vector x in {1..M*(R+1)}^L mapping each AST depth to
// a logical RPB, subject to
//   (1) strict dependency ordering        x_i + 1 <= x_{i+1}
//   (2) table-entry availability          te_req <= te_free  (aggregated
//       per physical RPB across recirculation rounds)
//   (3) memory availability               mem_req <= mem_free (first-fit on
//       the free partitions of the pinned stage)
//   (4) forwarding primitives only in ingress RPBs of any round
//   (5) sequential accesses to one virtual memory land on the same
//       physical RPB in later rounds      x_j = x_i + M*k
// and optimizes one of the paper's objective functions (§6.2.4). The paper
// uses Z3; this is a purpose-built branch-and-bound search over the same
// model (the domain is tiny: M*(R+1) <= 44). The relative cost ordering of
// the objectives (f2 < f1 < hierarchical < f3) is preserved because the
// linear objectives admit strong bound pruning while the ratio f3 forces a
// full scan of the start positions.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "compiler/ir.h"
#include "control/resource_manager.h"
#include "dataplane/dataplane_spec.h"

namespace p4runpro::obs {
struct Telemetry;
}

namespace p4runpro::rp {

/// Objective function selection (Fig. 12).
enum class ObjectiveKind : std::uint8_t {
  F1,            ///< alpha * x_L - beta * x_1 (the prototype's default)
  F2,            ///< x_L
  F3,            ///< x_L / x_1
  Hierarchical,  ///< min x_L, then max x_1
};

struct Objective {
  ObjectiveKind kind = ObjectiveKind::F1;
  double alpha = 0.7;
  double beta = 0.3;
};

[[nodiscard]] const char* objective_name(ObjectiveKind kind) noexcept;

struct AllocationResult {
  std::vector<int> x;                    ///< logical RPB per depth (1-based depths)
  std::map<std::string, int> vmem_rpb;   ///< physical RPB pinned per virtual memory
  int rounds = 1;                        ///< total passes (1 = no recirculation)
  double objective = 0.0;
  std::uint64_t nodes_explored = 0;      ///< search effort (micro-benchmarks)
};

/// Solve the allocation for `program` against the free-resource snapshot.
/// Fails when no feasible assignment exists (allocation failure, the
/// stopping condition of Figs. 8/9/12). With a telemetry bundle, records
/// "compiler.solver.*" counters and the search-effort histogram.
[[nodiscard]] Result<AllocationResult> solve_allocation(
    const TranslatedProgram& program, const dp::DataplaneSpec& spec,
    const ctrl::ResourceManager::Snapshot& snapshot, const Objective& objective,
    obs::Telemetry* telemetry = nullptr);

}  // namespace p4runpro::rp
