#include "compiler/solver.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/telemetry.h"

namespace p4runpro::rp {

namespace {

/// DFS feasibility search for a fixed start RPB and an upper bound on x_L.
class Search {
 public:
  Search(const TranslatedProgram& program, const dp::DataplaneSpec& spec,
         const ctrl::ResourceManager::Snapshot& snapshot)
      : program_(program),
        spec_(spec),
        snapshot_(snapshot),
        total_rpbs_(spec.total_rpbs()),
        logical_rpbs_(spec.logical_rpbs()),
        entry_delta_(static_cast<std::size_t>(total_rpbs_), 0) {
    precompute_candidates();
    precompute_suffix();
  }

  /// Are all per-depth candidate sets non-empty and chainable into a
  /// strictly increasing sequence at all? Cheap necessary condition used
  /// to reject hopeless instances without search.
  [[nodiscard]] bool globally_plausible() const {
    return suffix_[0][0] <= logical_rpbs_;
  }

  /// Smallest x_L any assignment could reach when the previous depth sits
  /// at slot `prev` and depths `d..L-1` are still open (candidate-list
  /// greedy chain; ignores aggregation/pinning, so it is a lower bound).
  [[nodiscard]] int suffix_min_last(int d, int prev) const {
    return suffix_[static_cast<std::size_t>(d)][static_cast<std::size_t>(prev)];
  }

  /// Try to place depths 1..L with x_1 = start and x_L <= last_bound.
  /// On success fills `out` (x vector and vmem pins).
  [[nodiscard]] bool feasible(int start, int last_bound, AllocationResult& out) {
    const int depth_count = program_.depth;
    if (start + depth_count - 1 > last_bound) return false;
    if (!candidate(0, start)) return false;
    x_.assign(static_cast<std::size_t>(depth_count), 0);
    std::fill(entry_delta_.begin(), entry_delta_.end(), 0u);
    pins_.clear();
    if (!try_place(0, start, last_bound)) return false;
    out.x = x_;
    out.vmem_rpb = pins_;
    return true;
  }

  [[nodiscard]] bool budget_exhausted() const noexcept { return nodes_ >= kNodeBudget; }

  [[nodiscard]] std::uint64_t nodes_explored() const noexcept { return nodes_; }

 private:
  /// Place depth index `d` (0-based) at logical RPB `x` if constraints
  /// allow, then recurse. Explores candidates for the next depth in
  /// ascending order, so the first complete solution has the smallest
  /// feasible x_L for the given start.
  bool try_place(int d, int x, int last_bound) {
    ++nodes_;
    const auto& req = program_.depth_reqs[static_cast<std::size_t>(d)];
    const int phys = dp::physical_rpb(x, total_rpbs_);
    const std::size_t phys_idx = static_cast<std::size_t>(phys - 1);

    // Constraint (4): forwarding primitives only in ingress RPBs.
    if (req.forwarding && !dp::is_ingress_rpb(phys, spec_.ingress_rpbs)) return false;

    // Constraint (2): table entries, aggregated across rounds that share
    // this physical RPB.
    const auto entries = static_cast<std::uint32_t>(req.entries);
    if (entry_delta_[phys_idx] + entries > snapshot_.free_entries[phys_idx]) return false;

    // Constraints (3)/(5): memory pinning and availability.
    std::vector<std::string> newly_pinned;
    for (const auto& vmem : req.vmems) {
      const auto it = pins_.find(vmem);
      if (it != pins_.end()) {
        if (it->second != phys) return false;  // same vmem must stay on one stage
      } else {
        // Look-ahead for constraint (5): every later access to this vmem
        // must land on the same physical RPB (x' = x + k*M) while staying
        // strictly ordered and under the bound — reject the pin here
        // rather than deep in the subtree.
        if (!pair_slots_exist(vmem, d + 1, x, last_bound)) {
          for (const auto& undo : newly_pinned) pins_.erase(undo);
          return false;
        }
        pins_.emplace(vmem, phys);
        newly_pinned.push_back(vmem);
      }
    }
    if (!newly_pinned.empty() && !stage_memory_fits(phys)) {
      for (const auto& vmem : newly_pinned) pins_.erase(vmem);
      return false;
    }

    entry_delta_[phys_idx] += entries;
    x_[static_cast<std::size_t>(d)] = x;

    const int depth_count = program_.depth;
    if (d + 1 == depth_count) return true;

    // Constraint (1): strictly increasing; leave room for remaining depths.
    // Only iterate slots that pass the per-depth standalone checks, and
    // stop searching entirely once the node budget is spent (the solver
    // equivalent of an SMT timeout; hopeless instances fail fast).
    // Lower-bound prune: even the unconstrained greedy completion of the
    // remaining depths overshoots the bound.
    if (suffix_[static_cast<std::size_t>(d + 1)][static_cast<std::size_t>(x)] > last_bound) {
      entry_delta_[phys_idx] -= entries;
      for (const auto& vmem : newly_pinned) pins_.erase(vmem);
      return false;
    }

    const int remaining = depth_count - (d + 2);
    const int hi = last_bound - remaining;
    // Constraint (5) look-ahead: if the next depth touches an
    // already-pinned virtual memory, only logical RPBs on that physical
    // stage qualify (x' = pin + k*M) — jump straight to them instead of
    // scanning the whole range.
    const int required = required_phys(d + 1);
    if (required > 0) {
      int next = x + 1;
      const int next_phys = (next - 1) % total_rpbs_ + 1;
      const int offset = next_phys <= required ? required - next_phys
                                               : total_rpbs_ - next_phys + required;
      for (next += offset; next <= hi; next += total_rpbs_) {
        if (nodes_ >= kNodeBudget) break;
        if (!candidate(d + 1, next)) continue;
        if (try_place(d + 1, next, last_bound)) return true;
      }
    } else if (required == 0) {
      for (int next = x + 1; next <= hi; ++next) {
        if (nodes_ >= kNodeBudget) break;
        if (!candidate(d + 1, next)) continue;
        if (try_place(d + 1, next, last_bound)) return true;
      }
    }  // required == -1: conflicting pins, no slot can work

    // Backtrack.
    entry_delta_[phys_idx] -= entries;
    for (const auto& vmem : newly_pinned) pins_.erase(vmem);
    return false;
  }

  /// Can all later depths accessing `vmem` (pinned at depth `depth`
  /// [1-based] on logical slot `x`) still find slots x + k*M within the
  /// ordering and bound constraints?
  [[nodiscard]] bool pair_slots_exist(const std::string& vmem, int depth, int x,
                                      int last_bound) const {
    const auto it = program_.vmem_depths.find(vmem);
    if (it == program_.vmem_depths.end()) return true;
    for (int later : it->second) {
      if (later <= depth) continue;
      // x' = x + k*M, k >= 1, with x' >= x + (later - depth) and
      // x' <= last_bound - (L - later).
      const int lo = x + (later - depth);
      const int hi = last_bound - (program_.depth - later);
      int k = (lo - x + total_rpbs_ - 1) / total_rpbs_;
      if (k < 1) k = 1;
      if (x + k * total_rpbs_ > hi) return false;
    }
    return true;
  }

  /// Physical RPB a depth is forced onto by an already-pinned virtual
  /// memory, or 0 when unconstrained (-1 when two pins conflict).
  [[nodiscard]] int required_phys(int d) const {
    int required = 0;
    for (const auto& vmem : program_.depth_reqs[static_cast<std::size_t>(d)].vmems) {
      const auto it = pins_.find(vmem);
      if (it == pins_.end()) continue;
      if (required != 0 && required != it->second) return -1;
      required = it->second;
    }
    return required;
  }

  /// Do all virtual memories currently pinned to `phys` fit its free
  /// partitions (first-fit simulation)?
  [[nodiscard]] bool stage_memory_fits(int phys) const {
    std::vector<std::uint32_t> sizes;
    for (const auto& [vmem, p] : pins_) {
      if (p == phys) sizes.push_back(program_.vmem_sizes.at(vmem));
    }
    return snapshot_.can_allocate(phys, sizes);
  }

  /// Per-depth standalone feasibility: slots where the depth's entries
  /// fit, forwarding lands in ingress, and its memories fit the stage in
  /// isolation. Necessary (not sufficient) conditions; the DFS enforces
  /// the aggregate and pinning constraints.
  void precompute_candidates() {
    candidates_.assign(static_cast<std::size_t>(program_.depth), {});
    for (int d = 0; d < program_.depth; ++d) {
      const auto& req = program_.depth_reqs[static_cast<std::size_t>(d)];
      for (int x = 1; x <= logical_rpbs_; ++x) {
        const int phys = dp::physical_rpb(x, total_rpbs_);
        if (req.forwarding && !dp::is_ingress_rpb(phys, spec_.ingress_rpbs)) continue;
        if (static_cast<std::uint32_t>(req.entries) >
            snapshot_.free_entries[static_cast<std::size_t>(phys - 1)]) {
          continue;
        }
        if (!req.vmems.empty()) {
          std::vector<std::uint32_t> sizes;
          for (const auto& vmem : req.vmems) sizes.push_back(program_.vmem_sizes.at(vmem));
          if (!snapshot_.can_allocate(phys, sizes)) continue;
        }
        candidates_[static_cast<std::size_t>(d)].push_back(x);
      }
    }
  }

  [[nodiscard]] bool candidate(int d, int x) const {
    const auto& slots = candidates_[static_cast<std::size_t>(d)];
    return std::binary_search(slots.begin(), slots.end(), x);
  }

  /// suffix_[d][prev] = minimal x_L of a strictly increasing chain through
  /// the candidate lists of depths d..L-1 with every slot > prev
  /// (kInfeasible when none exists). Greedy-minimal is optimal because
  /// suffix_[d+1] is non-decreasing in prev.
  void precompute_suffix() {
    const auto L = static_cast<std::size_t>(program_.depth);
    const auto slots = static_cast<std::size_t>(logical_rpbs_) + 1;
    suffix_.assign(L + 1, std::vector<int>(slots, kInfeasible));
    for (std::size_t prev = 0; prev < slots; ++prev) {
      // Depth L (virtual): already done -> the previous slot is the last.
      suffix_[L][prev] = static_cast<int>(prev);
    }
    for (std::size_t d = L; d-- > 0;) {
      for (std::size_t prev = 0; prev < slots; ++prev) {
        const auto& cand = candidates_[d];
        const auto it = std::upper_bound(cand.begin(), cand.end(), static_cast<int>(prev));
        if (it == cand.end()) continue;  // stays kInfeasible
        const auto next = static_cast<std::size_t>(*it);
        suffix_[d][prev] = suffix_[d + 1][next];
      }
    }
  }

  static constexpr int kInfeasible = 1 << 20;

  static constexpr std::uint64_t kNodeBudget = 100000;

  const TranslatedProgram& program_;
  const dp::DataplaneSpec& spec_;
  const ctrl::ResourceManager::Snapshot& snapshot_;
  const int total_rpbs_;
  const int logical_rpbs_;
  std::vector<std::uint32_t> entry_delta_;
  std::vector<std::vector<int>> candidates_;
  std::vector<std::vector<int>> suffix_;
  std::vector<int> x_;
  std::map<std::string, int> pins_;
  std::uint64_t nodes_ = 0;
};

/// Smallest feasible x_L for a fixed x_1 (iterative deepening on the
/// bound), or 0 when infeasible.
int min_last(Search& search, const TranslatedProgram& program, int start,
             int logical_rpbs, AllocationResult& out) {
  (void)program;
  // The candidate-chain lower bound lets us skip hopeless bounds outright.
  const int lower = search.suffix_min_last(1, start);
  for (int bound = std::max(lower, start); bound <= logical_rpbs; ++bound) {
    if (search.feasible(start, bound, out)) return out.x.back();
  }
  return 0;
}

}  // namespace

const char* objective_name(ObjectiveKind kind) noexcept {
  switch (kind) {
    case ObjectiveKind::F1: return "f1 = a*xL - b*x1";
    case ObjectiveKind::F2: return "f2 = xL";
    case ObjectiveKind::F3: return "f3 = xL / x1";
    case ObjectiveKind::Hierarchical: return "hierarchical (min xL, max x1)";
  }
  return "?";
}

namespace {

Result<AllocationResult> solve_allocation_impl(
    const TranslatedProgram& program, const dp::DataplaneSpec& spec,
    const ctrl::ResourceManager::Snapshot& snapshot, const Objective& objective) {
  if (program.depth == 0) return Error{"empty program", "solver", ErrorCode::SemanticError};
  const int logical = spec.logical_rpbs();
  if (program.depth > logical) {
    return Error{"program too deep: needs " + std::to_string(program.depth) +
                     " RPBs, data plane offers " + std::to_string(logical),
                 "solver", ErrorCode::SemanticError};
  }

  Search search(program, spec, snapshot);
  if (!search.globally_plausible()) {
    return Error{"no feasible allocation for program '" + program.name + "'", "solver",
                 ErrorCode::AllocFailed};
  }
  const int max_start = logical - program.depth + 1;

  AllocationResult best;
  bool found = false;
  double best_obj = std::numeric_limits<double>::infinity();

  auto consider = [&](int start, double obj, const AllocationResult& candidate) {
    if (!found || obj < best_obj) {
      best = candidate;
      best_obj = obj;
      found = true;
    }
    (void)start;
  };

  switch (objective.kind) {
    case ObjectiveKind::F2: {
      for (int start = 1; start <= max_start; ++start) {
        if (search.budget_exhausted()) break;
        // The best conceivable x_L for this start is start + L - 1.
        if (found && start + program.depth - 1 >= static_cast<int>(best_obj)) break;
        AllocationResult candidate;
        const int last = min_last(search, program, start, logical, candidate);
        if (last > 0) consider(start, static_cast<double>(last), candidate);
      }
      break;
    }
    case ObjectiveKind::F1: {
      const double a = objective.alpha;
      const double b = objective.beta;
      for (int start = 1; start <= max_start; ++start) {
        if (search.budget_exhausted()) break;
        // Lower bound of the objective for this start (x_L >= start+L-1);
        // increasing in start when a > b, enabling early termination.
        const double bound = a * (start + program.depth - 1) - b * start;
        if (found && a > b && bound >= best_obj) break;
        AllocationResult candidate;
        const int last = min_last(search, program, start, logical, candidate);
        if (last > 0) consider(start, a * last - b * start, candidate);
      }
      break;
    }
    case ObjectiveKind::F3: {
      // Non-linear ratio objective: no useful monotone bound over start, so
      // every start position is evaluated (this is what makes f3 an order
      // of magnitude slower in Fig. 12).
      for (int start = 1; start <= max_start; ++start) {
        if (search.budget_exhausted()) break;
        AllocationResult candidate;
        const int last = min_last(search, program, start, logical, candidate);
        if (last > 0) {
          consider(start, static_cast<double>(last) / static_cast<double>(start), candidate);
        }
      }
      break;
    }
    case ObjectiveKind::Hierarchical: {
      // Phase 1: minimize x_L (same as F2).
      int best_last = 0;
      for (int start = 1; start <= max_start; ++start) {
        if (search.budget_exhausted()) break;
        if (best_last != 0 && start + program.depth - 1 >= best_last) break;
        AllocationResult candidate;
        const int last = min_last(search, program, start, logical, candidate);
        if (last > 0 && (best_last == 0 || last < best_last)) {
          best_last = last;
          best = candidate;
          found = true;
        }
      }
      if (!found) break;
      // Phase 2: maximize x_1 subject to x_L <= best_last.
      for (int start = best_last - program.depth + 1; start >= 1; --start) {
        if (search.budget_exhausted()) break;
        AllocationResult candidate;
        if (search.feasible(start, best_last, candidate)) {
          best = candidate;
          break;
        }
      }
      best_obj = static_cast<double>(best.x.back());
      break;
    }
  }

  if (!found) {
    return Error{"no feasible allocation for program '" + program.name + "'", "solver",
                 ErrorCode::AllocFailed};
  }
  best.rounds = dp::recirc_round(best.x.back(), spec.total_rpbs()) + 1;
  best.objective = best_obj;
  best.nodes_explored = search.nodes_explored();
  return best;
}

}  // namespace

Result<AllocationResult> solve_allocation(
    const TranslatedProgram& program, const dp::DataplaneSpec& spec,
    const ctrl::ResourceManager::Snapshot& snapshot, const Objective& objective,
    obs::Telemetry* telemetry) {
  auto result = solve_allocation_impl(program, spec, snapshot, objective);
  if (telemetry != nullptr) {
    auto& m = telemetry->metrics;
    m.counter("compiler.solver.calls").inc();
    if (result.ok()) {
      const auto bounds = obs::Histogram::count_bounds();
      m.histogram("compiler.solver.nodes_explored", bounds)
          .observe(static_cast<double>(result.value().nodes_explored));
      m.histogram("compiler.solver.rounds", bounds)
          .observe(static_cast<double>(result.value().rounds));
    } else {
      m.counter("compiler.solver.infeasible").inc();
    }
  }
  return result;
}

}  // namespace p4runpro::rp
