// P4lite: an imperative, P4-flavoured front end that compiles into the
// P4runpro DSL — a working sketch of the paper's stated future work of
// "making the P4runpro compiler a back end of P4C, directly updating P4
// programs to the data plane at runtime" (§8). Operators write familiar
// assignment / if-else code; the front end lowers it source-to-source into
// primitives, which then flow through the normal link pipeline.
//
// Grammar (EBNF):
//   unit      ::= memory* program+
//   memory    ::= 'memory' NAME '[' INT ']' ';'
//   program   ::= 'program' NAME 'on' cond ('and' cond)* '{' stmt* '}'
//   cond      ::= FIELD '==' VALUE ('mask' MASK)?
//   stmt      ::= REG '=' FIELD ';'                  -> EXTRACT
//               | FIELD '=' REG ';'                  -> MODIFY
//               | REG '=' INT ';'                    -> LOADI
//               | REG '=' 'hash5' '(' NAME? ')' ';'  -> HASH_5_TUPLE[_MEM]
//               | REG '=' 'hash' '(' NAME? ')' ';'   -> HASH / HASH_MEM
//               | REG op= REG ';'                    -> ADD/AND/OR/XOR/SUB
//               | REG op= INT ';'                    -> ADDI/ANDI/XORI/SUBI
//               | REG '=' ('max'|'min') '(' REG ',' REG ')' ';' -> MAX/MIN
//               | NAME '[' 'mar' ']' op= 'sar' ';'   -> MEMADD/SUB/AND/OR
//               | 'sar' '=' NAME '[' 'mar' ']' ';'   -> MEMREAD
//               | NAME '[' 'mar' ']' '=' 'sar' ';'   -> MEMWRITE
//               | NAME '[' 'mar' ']' '=' 'max' '(' NAME '[' 'mar' ']' ',' 'sar' ')' ';' -> MEMMAX
//               | 'if' '(' REG '==' VALUE ('mask' MASK)? ')' block
//                 ('else' 'if' ...)* ('else' block)?  -> BRANCH + cases
//               | 'forward' '(' INT ')' ';' | 'drop' '(' ')' ';'
//               | 'return_packet' '(' ')' ';' | 'report' '(' ')' ';'
//               | 'multicast' '(' INT ')' ';'
//   with op= one of += -= &= |= ^= .
//
// if/else compiles each arm (including `else`) to a BRANCH case; `else`
// becomes a wildcard case, so the join statements after the conditional
// run for every arm (the trailing-replication rule does the rest). One
// inherited wrinkle: an arm containing a terminal action ANYWHERE in its
// subtree (drop/return_packet/report/multicast, even under a nested if)
// is treated as terminal and skips the join — put shared continuations
// before the conditional when an arm reports conditionally.
#pragma once

#include <string>
#include <string_view>

#include "common/result.h"

namespace p4runpro::rp {

/// Translate P4lite source into P4runpro DSL source (annotations +
/// programs), ready for Controller::link.
[[nodiscard]] Result<std::string> compile_p4lite(std::string_view source);

}  // namespace p4runpro::rp
