// Semantic checking of a parsed P4runpro unit: primitive argument typing
// (the semantics of the DSL are simple enough that a type check suffices,
// §4.3), field-name resolution, virtual-memory declaration checks, and
// filter validation.
#pragma once

#include "common/result.h"
#include "lang/ast.h"

namespace p4runpro::rp {

/// Check one program declaration against the unit's annotations. On
/// success, translation may assume all names resolve and all arguments are
/// well-typed.
[[nodiscard]] Status check_program(const lang::Unit& unit, const lang::ProgramDecl& program);

/// Check every program in the unit.
[[nodiscard]] Status check_unit(const lang::Unit& unit);

}  // namespace p4runpro::rp
