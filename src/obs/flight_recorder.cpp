#include "obs/flight_recorder.h"

#include "obs/json.h"
#include "obs/trace_context.h"

namespace p4runpro::obs {

namespace {

[[nodiscard]] std::string_view block_name(rmt::TraceEvent::Block block) noexcept {
  switch (block) {
    case rmt::TraceEvent::Block::Parser: return "parser";
    case rmt::TraceEvent::Block::Init: return "init";
    case rmt::TraceEvent::Block::Rpb: return "rpb";
    case rmt::TraceEvent::Block::Recirc: return "recirc";
  }
  return "?";
}

}  // namespace

std::string_view fate_name(rmt::PacketFate fate) noexcept {
  switch (fate) {
    case rmt::PacketFate::Forwarded: return "forwarded";
    case rmt::PacketFate::Returned: return "returned";
    case rmt::PacketFate::Dropped: return "dropped";
    case rmt::PacketFate::Reported: return "reported";
    case rmt::PacketFate::RecircLimit: return "recirc_limit";
    case rmt::PacketFate::Multicasted: return "multicasted";
  }
  return "?";
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  while (journeys_.size() > capacity_) journeys_.pop_front();
}

void FlightRecorder::record(PacketJourney journey) {
  if (frozen_ || capacity_ == 0) return;
  if (journeys_.size() >= capacity_) journeys_.pop_front();
  journeys_.push_back(std::move(journey));
  ++recorded_;
}

void FlightRecorder::freeze(std::string reason, double t_ms) {
  if (frozen_) return;
  frozen_ = true;
  freeze_reason_ = std::move(reason);
  frozen_at_ms_ = t_ms;
}

void FlightRecorder::clear() {
  journeys_.clear();
  seen_ = 0;
  recorded_ = 0;
  frozen_ = false;
  freeze_reason_.clear();
  frozen_at_ms_ = 0.0;
}

void export_flight_jsonl(const FlightRecorder& recorder, std::ostream& out) {
  out << "{\"type\":\"flight_recorder\",\"frozen\":"
      << (recorder.frozen() ? "true" : "false");
  if (recorder.frozen()) {
    out << ",\"reason\":\"" << json_escape(recorder.freeze_reason())
        << "\",\"frozen_at_ms\":" << json_number(recorder.frozen_at_ms());
  }
  out << ",\"journeys\":" << recorder.journeys().size()
      << ",\"recorded\":" << recorder.recorded() << "}\n";

  for (const auto& j : recorder.journeys()) {
    out << "{\"type\":\"journey\",\"seq\":" << j.seq
        << ",\"t_ms\":" << json_number(j.t_ms) << ",\"program\":" << j.program
        << ",\"name\":\"" << json_escape(j.program_name) << "\",\"fate\":\""
        << fate_name(j.fate) << "\",\"ingress_port\":" << j.ingress_port
        << ",\"egress_port\":" << j.egress_port
        << ",\"recirc_passes\":" << j.recirc_passes
        << ",\"table_hits\":" << j.table_hits << ",\"salu_execs\":" << j.salu_execs;
    if (j.table_trace != 0) {
      out << ",\"table_trace\":\"" << format_trace_id(j.table_trace)
          << "\",\"table_generation\":" << j.table_generation;
    }
    out << ",\"events\":[";
    bool first = true;
    for (const auto& e : j.events) {
      if (!first) out << ",";
      first = false;
      out << "{\"block\":\"" << block_name(e.block) << "\"";
      if (e.block == rmt::TraceEvent::Block::Rpb) {
        out << ",\"stage\":" << e.stage << ",\"branch\":" << e.branch;
      }
      out << ",\"round\":" << e.round << ",\"op\":\"" << json_escape(e.op) << "\"";
      if (e.next_branch) out << ",\"next_branch\":" << *e.next_branch;
      if (e.block != rmt::TraceEvent::Block::Rpb) out << ",\"value\":" << e.value;
      out << "}";
    }
    out << "]}\n";
  }
}

}  // namespace p4runpro::obs
