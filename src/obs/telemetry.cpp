#include "obs/telemetry.h"

namespace p4runpro::obs {

Telemetry& default_telemetry() {
  static Telemetry instance;
  return instance;
}

}  // namespace p4runpro::obs
