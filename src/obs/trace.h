// Phase-span tracer: nested, named spans timed in SimClock virtual time
// (primary, deterministic) and wall time (secondary, for real computation
// cost such as the allocation solver). Completed spans form a tree; the
// Chrome trace_event exporter writes a file that about://tracing and
// Perfetto load directly.
//
// Span naming convention (docs/OBSERVABILITY.md): dotted lowercase phases,
// e.g. the controller's link tree is
//   link -> parse, translate, solve, entrygen, install -> bfrt.batch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "obs/trace_context.h"

namespace p4runpro::obs {

/// One completed (or still open) span.
struct SpanRecord {
  std::string name;
  std::string cat;              ///< layer tag: "ctrl", "compiler", "bfrt", ...
  std::ptrdiff_t parent = -1;   ///< index into SpanTracer::spans(), -1 = root
  int depth = 0;                ///< nesting level (0 = root)
  /// Causal trace id of the control operation this span belongs to
  /// (0 = opened outside any traced entry point).
  std::uint64_t trace = 0;
  SimClock::Nanos start_vns = 0;  ///< virtual start
  SimClock::Nanos end_vns = 0;    ///< virtual end (== start while open)
  double start_wall_ms = 0.0;   ///< wall-clock start, relative to tracer birth
  double wall_ms = 0.0;         ///< wall-clock duration
  bool open = true;
  std::vector<std::pair<std::string, std::string>> args;

  [[nodiscard]] SimClock::Nanos virtual_ns() const noexcept {
    return end_vns - start_vns;
  }
  [[nodiscard]] double virtual_ms() const noexcept {
    return static_cast<double>(virtual_ns()) / 1e6;
  }
};

class SpanTracer {
 public:
  static constexpr std::size_t kNoSpan = static_cast<std::size_t>(-1);

  /// RAII handle; ends the span on destruction (or explicitly). Inert when
  /// default-constructed or when the tracer dropped the span (cap reached).
  class Scope {
   public:
    Scope() = default;
    Scope(SpanTracer* tracer, std::size_t index, std::uint64_t generation)
        : tracer_(tracer), index_(index), generation_(generation) {}
    Scope(Scope&& other) noexcept { *this = std::move(other); }
    Scope& operator=(Scope&& other) noexcept {
      end();
      tracer_ = other.tracer_;
      index_ = other.index_;
      generation_ = other.generation_;
      other.tracer_ = nullptr;
      other.index_ = kNoSpan;
      return *this;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { end(); }

    /// Attach a key/value annotation (rendered into trace_event args).
    void arg(std::string_view key, std::string_view value);
    void arg(std::string_view key, std::uint64_t value);

    void end();
    [[nodiscard]] bool active() const noexcept { return tracer_ != nullptr; }

   private:
    SpanTracer* tracer_ = nullptr;
    std::size_t index_ = kNoSpan;
    std::uint64_t generation_ = 0;  ///< must match the tracer (clear() bumps it)
  };

  SpanTracer();

  /// Virtual-time source. Unset, spans record virtual time 0 (wall time
  /// still measured).
  void set_clock(const SimClock* clock) noexcept { clock_ = clock; }

  /// Active trace context (owned by the Telemetry bundle; obs::TraceScope
  /// swaps it at controller entry points). New spans are stamped with its
  /// trace id; the first span opened under a fresh context becomes the
  /// context's root (parent_span). Null disables stamping.
  void set_trace_context(TraceContext* context) noexcept { trace_ctx_ = context; }

  /// Open a nested span. Scope ends it; out-of-order ends close any still
  /// open descendants at the same instant.
  [[nodiscard]] Scope span(std::string_view name, std::string_view cat = "");

  /// Record an already-completed span with explicit virtual start/end times
  /// and an explicit trace id. Used by the async control channel: the
  /// writer thread charges batches off-thread, and the caller replays them
  /// into the tracer at completion time, stamped with the trace id captured
  /// at submission (not whatever context is active at finish). The record
  /// parents under the currently open span and never anchors the active
  /// trace context. Subject to the same capacity cap as span().
  void record_span(std::string_view name, std::string_view cat,
                   SimClock::Nanos start_vns, SimClock::Nanos end_vns,
                   std::uint64_t trace,
                   std::vector<std::pair<std::string, std::string>> args = {});

  [[nodiscard]] const std::vector<SpanRecord>& spans() const noexcept { return spans_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Children of span `index`, in recording order.
  [[nodiscard]] std::vector<std::size_t> children_of(std::size_t index) const;
  /// First span with this name, or kNoSpan.
  [[nodiscard]] std::size_t find(std::string_view name) const;

  /// Drop all recorded spans (open scopes become inert).
  void clear();

  /// Upper bound on retained spans; beyond it new spans are counted as
  /// dropped instead of recorded (long bench runs stay bounded).
  void set_capacity(std::size_t max_spans) noexcept { max_spans_ = max_spans; }

 private:
  friend class Scope;
  void end_span(std::size_t index, std::uint64_t generation);
  [[nodiscard]] SpanRecord* live_span(std::size_t index, std::uint64_t generation);

  const SimClock* clock_ = nullptr;
  TraceContext* trace_ctx_ = nullptr;
  std::vector<SpanRecord> spans_;
  std::vector<std::size_t> open_stack_;
  std::size_t max_spans_ = 1u << 20;
  std::uint64_t dropped_ = 0;
  std::uint64_t generation_ = 0;  ///< bumped by clear(); stale scopes no-op
  WallTimer wall_;
};

/// Chrome trace_event export ("traceEvents" JSON, complete events ph:"X",
/// timestamps in microseconds of *virtual* time). With `include_wall` the
/// wall-clock duration is added to each event's args — leave it off for
/// deterministic byte-identical exports of identical runs.
void export_chrome_trace(const SpanTracer& tracer, std::ostream& out,
                         bool include_wall = false);

}  // namespace p4runpro::obs
