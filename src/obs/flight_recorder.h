// Packet flight recorder: a bounded ring of sampled per-packet journeys
// (structured rmt::TraceEvent sequences plus the packet's final fate and
// attribution). While unfrozen the ring overwrites its oldest journey;
// when the health monitor trips an alert it freezes the recorder, so the
// last N journeys leading up to the anomaly survive for post-mortem
// inspection and can be dumped as JSONL.
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"
#include "rmt/phv.h"
#include "rmt/pipeline.h"

namespace p4runpro::obs {

/// One recorded packet journey: everything needed to replay "which
/// program's entries did this packet touch, and what did they do to it".
struct PacketJourney {
  std::uint64_t seq = 0;       ///< pipeline arrival index of the packet
  double t_ms = 0.0;           ///< virtual time at completion
  ProgramId program = 0;       ///< claiming program (0 = unclaimed)
  std::string program_name;    ///< name at record time ("" when unknown)
  rmt::PacketFate fate = rmt::PacketFate::Dropped;
  Port ingress_port = 0;
  Port egress_port = 0;
  int recirc_passes = 0;
  std::uint32_t table_hits = 0;
  std::uint32_t salu_execs = 0;
  /// Causal trace id + generation of the table state this packet ran
  /// against (see rmt::Pipeline::note_table_update; 0 = untraced tables).
  std::uint64_t table_trace = 0;
  std::uint64_t table_generation = 0;
  std::vector<rmt::TraceEvent> events;  ///< per-operation execution trace
};

/// Render a PacketFate as the lowercase token used in the JSONL dump.
[[nodiscard]] std::string_view fate_name(rmt::PacketFate fate) noexcept;

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 128) : capacity_(capacity) {}

  /// Ring size: how many journeys survive a freeze.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Record every Nth injected packet (1 = every packet); 0 disables
  /// sampling entirely (the default — journey capture forces per-packet
  /// tracing, which is too expensive to leave on unconditionally).
  void set_sample_every(std::uint32_t n) noexcept { sample_every_ = n; }
  [[nodiscard]] std::uint32_t sample_every() const noexcept { return sample_every_; }

  /// Pre-parse sampling decision for the next packet. Counts every call;
  /// returns true when this packet's journey should be captured (sampling
  /// enabled, its turn in the 1-in-N rotation, and the ring not frozen).
  [[nodiscard]] bool want_sample() noexcept {
    const std::uint64_t n = seen_++;
    return sample_every_ != 0 && !frozen_ && n % sample_every_ == 0;
  }

  /// Append a journey, evicting the oldest once the ring is full. Ignored
  /// while frozen.
  void record(PacketJourney journey);

  /// Stop recording and keep the current ring contents (alert post-mortem).
  /// Only the first freeze sticks; later ones are ignored so the dump
  /// reflects the *first* anomaly.
  void freeze(std::string reason, double t_ms);
  /// Resume recording after a freeze (the ring contents are kept).
  void thaw() noexcept { frozen_ = false; }

  [[nodiscard]] bool frozen() const noexcept { return frozen_; }
  [[nodiscard]] const std::string& freeze_reason() const noexcept { return freeze_reason_; }
  [[nodiscard]] double frozen_at_ms() const noexcept { return frozen_at_ms_; }

  [[nodiscard]] const std::deque<PacketJourney>& journeys() const noexcept {
    return journeys_;
  }
  /// Total journeys ever recorded (including evicted ones).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }

  void clear();

 private:
  std::size_t capacity_;
  std::uint32_t sample_every_ = 0;
  std::uint64_t seen_ = 0;
  std::uint64_t recorded_ = 0;
  bool frozen_ = false;
  std::string freeze_reason_;
  double frozen_at_ms_ = 0.0;
  std::deque<PacketJourney> journeys_;
};

/// JSONL dump: one object per retained journey, oldest first, each with its
/// structured event list. A leading meta line records the freeze state.
/// Deterministic: identical recorder contents produce identical bytes.
void export_flight_jsonl(const FlightRecorder& recorder, std::ostream& out);

}  // namespace p4runpro::obs
