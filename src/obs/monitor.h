// Per-program data-plane health monitor. Implements rmt::PacketObserver:
// the pipeline reports every completed packet once, and the monitor
// attributes it — packets, table hits/misses, SALU updates, recirculation
// passes, drops — to the deployed program that claimed it (slot 0 collects
// unclaimed traffic). On top of the lifetime counters sit rolling-window
// rate estimators driven by SimClock virtual time, and configurable
// threshold alert rules; a tripped alert freezes the attached
// FlightRecorder so the packet journeys leading up to the anomaly survive.
//
// Hot-path discipline: attribution is a direct vector index by program id,
// rule evaluation touches only the claiming program's windows, and every
// metrics-registry handle is resolved once at attach time — no name lookup
// ever happens per packet.
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/types.h"
#include "obs/flight_recorder.h"
#include "obs/trace_context.h"
#include "rmt/pipeline.h"

namespace p4runpro::obs {

class MetricsRegistry;
class Counter;
class TimeSeriesStore;

/// Fixed-bucket rolling window over SimClock virtual time. Events land in
/// the bucket of their timestamp; queries sum the buckets that fall inside
/// the window ending at `now`. Deterministic, O(buckets) per query, O(1)
/// per add.
class RateWindow {
 public:
  RateWindow(SimClock::Nanos bucket_ns, int buckets)
      : bucket_ns_(bucket_ns), counts_(static_cast<std::size_t>(buckets), 0),
        bucket_of_(static_cast<std::size_t>(buckets), kNever) {}

  void add(SimClock::Nanos now, std::uint64_t n = 1) noexcept {
    const std::uint64_t b = now / bucket_ns_;
    const std::size_t slot = b % counts_.size();
    if (bucket_of_[slot] != b) {
      bucket_of_[slot] = b;
      counts_[slot] = 0;
    }
    counts_[slot] += n;
  }

  /// Events inside the window [now - span, now].
  [[nodiscard]] std::uint64_t sum(SimClock::Nanos now) const noexcept {
    const std::uint64_t b = now / bucket_ns_;
    const std::uint64_t oldest = b >= counts_.size() - 1 ? b - (counts_.size() - 1) : 0;
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < counts_.size(); ++s) {
      if (bucket_of_[s] != kNever && bucket_of_[s] >= oldest && bucket_of_[s] <= b) {
        total += counts_[s];
      }
    }
    return total;
  }

  /// sum(now) scaled to events per second of virtual time.
  [[nodiscard]] double per_second(SimClock::Nanos now) const noexcept {
    const double span_s = static_cast<double>(bucket_ns_) *
                          static_cast<double>(counts_.size()) / 1e9;
    return span_s == 0.0 ? 0.0 : static_cast<double>(sum(now)) / span_s;
  }

  [[nodiscard]] SimClock::Nanos span_ns() const noexcept {
    return bucket_ns_ * counts_.size();
  }

 private:
  static constexpr std::uint64_t kNever = static_cast<std::uint64_t>(-1);
  SimClock::Nanos bucket_ns_;
  std::vector<std::uint64_t> counts_;
  std::vector<std::uint64_t> bucket_of_;  ///< absolute bucket index per slot
};

/// What an alert rule thresholds on. Rates are per second of virtual time
/// over the monitor's rolling window; ratios are window-local fractions.
enum class AlertKind : std::uint8_t {
  PacketRate,       ///< claimed packets / s
  RecircRate,       ///< recirculation passes / s
  DropRate,         ///< dropped packets / s
  RecircPerPacket,  ///< recirculation passes per claimed packet
  DropFraction,     ///< dropped / claimed packets
  StageOccupancy,   ///< fraction of an RPB's table entries in use
};

[[nodiscard]] std::string_view alert_kind_name(AlertKind kind) noexcept;

/// One configured threshold rule. Fires edge-triggered per program: when
/// the observed value first reaches `threshold`, one alert is emitted and
/// the rule disarms for that program until the value falls below again.
struct AlertRule {
  std::string name;
  AlertKind kind = AlertKind::RecircPerPacket;
  double threshold = 0.0;
  /// Restrict to one program id; 0 = any program. Ignored for
  /// StageOccupancy (which is per stage, not per program).
  ProgramId program = 0;
  /// Restrict StageOccupancy to one physical RPB; 0 = any stage.
  int rpb = 0;
};

/// One entry of the monitor's event stream: program lifecycle (deploy /
/// revoke, emitted by the update engine), deploy-transaction outcomes
/// (commit / rollback, emitted by the controller) and fired alerts share
/// the stream so a dump shows alerts in deployment context.
struct MonitorEvent {
  enum class Kind : std::uint8_t {
    Deploy, Revoke, Alert, TxnCommit, TxnRollback, ChainTxnCommit,
    ChainTxnRollback, AdmissionShed, DefragMove
  } kind = Kind::Deploy;
  std::uint64_t seq = 0;  ///< monotonically increasing stream position
  double t_ms = 0.0;      ///< virtual time
  ProgramId program = 0;
  std::string program_name;
  std::string rule;          ///< alert only: rule name
  std::string detail;        ///< txn rollback only: the error that aborted it
  double value = 0.0;        ///< alert only: observed value
  double threshold = 0.0;    ///< alert only: rule threshold
  int rpb = 0;               ///< occupancy alerts: the stage
  std::uint64_t entries = 0; ///< deploy only: installed RPB+filter entries
  int hops = 0;              ///< chain txn only: chain length of the deploy
  int faulted_hop = -1;      ///< chain rollback only: hop whose write faulted
                             ///< (-1: aborted before any write, e.g. reserve)
  /// Causal trace id: the control operation this event belongs to (deploy /
  /// revoke / txn events), or — for alerts fired from the packet path — the
  /// operation that installed the table state the alerting traffic ran
  /// against. 0 when no trace is known.
  std::uint64_t trace = 0;
  std::string series;        ///< anomaly alerts only: the offending series
  std::uint32_t tenant = 0;  ///< admission sheds: the shed session's tenant
  ProgramId old_program = 0; ///< defrag moves: the retired copy's id
  std::uint64_t gain = 0;    ///< defrag moves: fragmentation words reclaimed
};

/// Lifetime per-program attribution counters.
struct ProgramHealth {
  std::string name;
  bool active = false;       ///< currently deployed
  bool known = false;        ///< ever seen (deployed or attributed traffic)
  double deployed_at_ms = 0.0;
  double revoked_at_ms = 0.0;
  std::uint64_t entries = 0;  ///< installed table entries (RPB + filters)
  std::uint64_t packets = 0;
  std::uint64_t table_hits = 0;
  std::uint64_t table_misses = 0;
  std::uint64_t salu_updates = 0;
  std::uint64_t recirc_passes = 0;
  std::uint64_t drops = 0;
};

class ProgramHealthMonitor final : public rmt::PacketObserver {
 public:
  struct Config {
    SimClock::Nanos window_bucket_ns = 10'000'000;  ///< 10 ms buckets
    int window_buckets = 10;                        ///< 100 ms rolling window
    std::size_t max_events = 4096;                  ///< event-stream bound
  };

  ProgramHealthMonitor() : ProgramHealthMonitor(Config{}) {}
  explicit ProgramHealthMonitor(Config config) : config_(config) {}
  ~ProgramHealthMonitor() override;

  /// Virtual-time source for event timestamps and window bucketing; unset,
  /// everything lands at t=0 (still deterministic).
  void set_clock(const SimClock* clock) noexcept { clock_ = clock; }
  /// Ring buffer frozen when an alert fires; null disables journey capture.
  void set_flight_recorder(FlightRecorder* recorder) noexcept { flight_ = recorder; }
  [[nodiscard]] FlightRecorder* flight_recorder() const noexcept { return flight_; }
  /// Pre-resolve the monitor's own registry handles (hot-path rule: no
  /// name lookups per packet). Null detaches.
  void attach_metrics(MetricsRegistry* registry);
  /// Active trace context (the Telemetry bundle's; see obs::TraceScope).
  /// Events emitted while it is valid carry its trace id.
  void set_trace_context(const TraceContext* context) noexcept {
    trace_ctx_ = context;
  }
  /// Time-series store to tick from the packet hot path (cadence-gated;
  /// needs attach_metrics for the registry to sample). Null disables.
  void set_series_store(TimeSeriesStore* store) noexcept { series_ = store; }
  /// Account wall nanoseconds spent inside on_packet (the telemetry
  /// self-overhead the obs_overhead bench measures). Off by default — the
  /// two clock reads per packet are themselves overhead.
  void set_overhead_accounting(bool enabled) noexcept { account_overhead_ = enabled; }
  [[nodiscard]] std::uint64_t hook_ns() const noexcept { return hook_ns_; }
  [[nodiscard]] std::uint64_t hook_calls() const noexcept { return hook_calls_; }

  // --- lifecycle feed (update engine) ------------------------------------
  void program_deployed(ProgramId id, std::string_view name, std::uint64_t entries);
  void program_revoked(ProgramId id);

  // --- transaction feed (controller) --------------------------------------
  /// A deploy transaction committed (program fully visible) / rolled back
  /// (journal unwound; `reason` is the aborting error). Health slots are
  /// untouched — a rollback leaves no trace in per-program state, by design.
  void txn_committed(ProgramId id, std::string_view name);
  void txn_rolled_back(ProgramId id, std::string_view name, std::string_view reason);

  /// A chain transaction committed on every hop of an N-hop switch chain /
  /// rolled back chain-wide. `faulted_hop` is the hop whose control-channel
  /// write (or reservation) aborted the transaction, or -1 when the abort
  /// happened before any hop was named (e.g. compile failure).
  void chain_txn_committed(ProgramId id, std::string_view name, int hops);
  void chain_txn_rolled_back(ProgramId id, std::string_view name, int hops,
                             int faulted_hop, std::string_view reason);

  // --- admission / defrag feed (controller) -------------------------------
  /// The admission controller shed a session for `tenant` (queue at its
  /// bound): the session returned AdmissionShed instead of queuing.
  void admission_shed(std::uint32_t tenant, std::string_view name,
                      std::string_view reason);
  /// The defrag pass migrated a program: the copy `new_id` committed and the
  /// old copy `old_id` was retired, reclaiming `frag_before - frag_after`
  /// fragmentation words.
  void defrag_moved(ProgramId old_id, ProgramId new_id, std::string_view name,
                    std::uint64_t frag_before, std::uint64_t frag_after);

  // --- occupancy feed (resource manager) ---------------------------------
  /// Report one stage's table-entry occupancy after it changed; evaluates
  /// the StageOccupancy rules.
  void on_stage_occupancy(int rpb, std::uint32_t used, std::uint32_t capacity);

  // --- anomaly feed (time-series detector) --------------------------------
  /// An anomaly detector tripped on `series` (TimeSeriesStore's EWMA /
  /// z-score watches): emit one Alert event carrying the series name and
  /// freeze the flight recorder. Edge triggering is the detector's job —
  /// every call here produces exactly one event.
  void series_alert(std::string_view series, std::string_view rule, double value,
                    double threshold);

  // --- alert rules --------------------------------------------------------
  void add_rule(AlertRule rule);
  void clear_rules();
  [[nodiscard]] const std::vector<AlertRule>& rules() const noexcept { return rules_; }

  // --- rmt::PacketObserver ------------------------------------------------
  [[nodiscard]] bool sample_packet() override {
    return flight_ != nullptr && flight_->want_sample();
  }
  void on_packet(const rmt::PacketObservation& obs) override;

  // --- queries ------------------------------------------------------------
  /// Health of one program; null when the id was never seen. Slot 0 is the
  /// unclaimed-traffic bucket.
  [[nodiscard]] const ProgramHealth* health(ProgramId id) const;
  /// Ids with any recorded state (deployed and/or attributed traffic),
  /// ascending; includes 0 when unclaimed traffic was seen.
  [[nodiscard]] std::vector<ProgramId> known_programs() const;

  /// Rolling-window estimators for one program at the current virtual time.
  [[nodiscard]] double packet_rate(ProgramId id) const;
  [[nodiscard]] double recirc_rate(ProgramId id) const;
  [[nodiscard]] double drop_rate(ProgramId id) const;
  [[nodiscard]] double recirc_per_packet(ProgramId id) const;
  [[nodiscard]] double drop_fraction(ProgramId id) const;

  [[nodiscard]] const std::deque<MonitorEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::uint64_t events_dropped() const noexcept { return events_dropped_; }
  [[nodiscard]] std::uint64_t alerts_fired() const noexcept { return alerts_fired_; }
  [[nodiscard]] std::uint64_t packets_observed() const noexcept { return packets_observed_; }
  [[nodiscard]] double now_ms() const noexcept {
    return clock_ != nullptr ? clock_->now_ms() : 0.0;
  }

  /// Drop all state (programs, rules, events); keeps clock, recorder and
  /// registry attachments.
  void clear();

 private:
  struct Slot {
    ProgramHealth health;
    RateWindow packets_w;
    RateWindow recirc_w;
    RateWindow drops_w;
    std::vector<bool> fired;  ///< per-rule disarm state (edge triggering)

    explicit Slot(const Config& config)
        : packets_w(config.window_bucket_ns, config.window_buckets),
          recirc_w(config.window_bucket_ns, config.window_buckets),
          drops_w(config.window_bucket_ns, config.window_buckets) {}
  };

  [[nodiscard]] Slot& slot(ProgramId id);
  [[nodiscard]] const Slot* find_slot(ProgramId id) const;
  [[nodiscard]] SimClock::Nanos now_ns() const noexcept {
    return clock_ != nullptr ? clock_->now_ns() : 0;
  }
  [[nodiscard]] double rule_value(const AlertRule& rule, const Slot& s,
                                  SimClock::Nanos now) const;
  void evaluate_rules(ProgramId id, Slot& s);
  void fire_alert(const AlertRule& rule, std::size_t rule_index, ProgramId id,
                  std::string_view name, double value, int rpb);
  void push_event(MonitorEvent event);

  Config config_;
  const SimClock* clock_ = nullptr;
  FlightRecorder* flight_ = nullptr;
  const TraceContext* trace_ctx_ = nullptr;
  TimeSeriesStore* series_ = nullptr;
  MetricsRegistry* registry_ = nullptr;
  bool account_overhead_ = false;
  std::uint64_t hook_ns_ = 0;
  std::uint64_t hook_calls_ = 0;
  /// Trace id of the table state the most recent packet executed against
  /// (alerts fired from the packet path inherit it).
  std::uint64_t last_table_trace_ = 0;
  std::vector<Slot> slots_;  ///< indexed by ProgramId (dense, ids are small)
  std::vector<AlertRule> rules_;
  struct StageState {
    std::uint32_t used = 0;
    std::uint32_t capacity = 0;
    std::vector<bool> fired;
  };
  std::vector<StageState> stages_;  ///< indexed by physical RPB id
  std::deque<MonitorEvent> events_;
  std::uint64_t next_event_seq_ = 0;
  std::uint64_t events_dropped_ = 0;
  std::uint64_t alerts_fired_ = 0;
  std::uint64_t packets_observed_ = 0;
  // Cached registry handles (resolved once in attach_metrics).
  Counter* packets_counter_ = nullptr;
  Counter* alerts_counter_ = nullptr;
};

/// JSONL export of the monitor's event stream (lifecycle + alerts), oldest
/// first. Deterministic for identical monitor contents.
void export_alerts_jsonl(const ProgramHealthMonitor& monitor, std::ostream& out);

}  // namespace p4runpro::obs
