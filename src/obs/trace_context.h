// Causal trace contexts: a 64-bit trace id (plus the root span that
// anchors it) minted at every Controller / ChainController public entry
// point and propagated through the whole stack — deploy/chain transactions,
// per-hop update-engine op-log writes, the data-plane table-state bump and
// the packet observer — so every span, monitor event, alert and
// flight-recorder journey carries the id of the control operation that
// caused the table state it executed against. ctrl::trace_report() joins
// the pieces back into one cross-tier causal story.
//
// Ids are minted from a per-Telemetry monotonic counter (1, 2, 3, ...):
// deterministic for identical runs, never 0 (0 = "no trace"). After
// Telemetry::clear() the counter restarts, so ids can recur across clears —
// trace_report() always describes the *current* contents under an id.
#pragma once

#include <cstdint>
#include <string>

namespace p4runpro::obs {

/// The causal identity of one in-flight control operation.
struct TraceContext {
  std::uint64_t trace_id = 0;   ///< 0 = no active trace
  /// 1-based index (into SpanTracer::spans()) of the operation's root span,
  /// 0 while none has opened yet. The tracer fills it in when the first
  /// span opens under a freshly minted context.
  std::uint64_t parent_span = 0;

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
};

/// Canonical rendering of a trace id for exports and reports: 16 lowercase
/// hex digits, zero-padded (sorts and greps uniformly across artifacts).
[[nodiscard]] inline std::string format_trace_id(std::uint64_t trace_id) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[trace_id & 0xF];
    trace_id >>= 4;
  }
  return out;
}

}  // namespace p4runpro::obs
