#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"

namespace p4runpro::obs {

namespace {

/// Nanoseconds rendered as microseconds with fixed 3 decimals, computed in
/// integer arithmetic so the output is bit-for-bit deterministic.
[[nodiscard]] std::string micros_fixed(SimClock::Nanos ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

[[nodiscard]] std::string wall_ms_fixed(double ms) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", ms);
  return buf;
}

}  // namespace

void SpanTracer::Scope::arg(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  if (SpanRecord* span = tracer_->live_span(index_, generation_)) {
    span->args.emplace_back(std::string(key), std::string(value));
  }
}

void SpanTracer::Scope::arg(std::string_view key, std::uint64_t value) {
  arg(key, std::string_view(std::to_string(value)));
}

void SpanTracer::Scope::end() {
  if (tracer_ == nullptr) return;
  tracer_->end_span(index_, generation_);
  tracer_ = nullptr;
  index_ = kNoSpan;
}

SpanTracer::SpanTracer() = default;

SpanTracer::Scope SpanTracer::span(std::string_view name, std::string_view cat) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return Scope{};
  }
  SpanRecord record;
  record.name = std::string(name);
  record.cat = std::string(cat);
  record.parent = open_stack_.empty()
                      ? -1
                      : static_cast<std::ptrdiff_t>(open_stack_.back());
  record.depth = static_cast<int>(open_stack_.size());
  record.start_vns = clock_ != nullptr ? clock_->now_ns() : 0;
  record.end_vns = record.start_vns;
  record.start_wall_ms = wall_.elapsed_ms();
  if (trace_ctx_ != nullptr && trace_ctx_->valid()) {
    record.trace = trace_ctx_->trace_id;
    if (trace_ctx_->parent_span == 0) {
      // First span under a fresh context: it anchors the whole operation.
      trace_ctx_->parent_span = spans_.size() + 1;
    }
  }
  const std::size_t index = spans_.size();
  spans_.push_back(std::move(record));
  open_stack_.push_back(index);
  return Scope{this, index, generation_};
}

void SpanTracer::record_span(std::string_view name, std::string_view cat,
                             SimClock::Nanos start_vns, SimClock::Nanos end_vns,
                             std::uint64_t trace,
                             std::vector<std::pair<std::string, std::string>> args) {
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  SpanRecord record;
  record.name = std::string(name);
  record.cat = std::string(cat);
  record.parent = open_stack_.empty()
                      ? -1
                      : static_cast<std::ptrdiff_t>(open_stack_.back());
  record.depth = static_cast<int>(open_stack_.size());
  record.trace = trace;
  record.start_vns = start_vns;
  record.end_vns = end_vns;
  record.start_wall_ms = wall_.elapsed_ms();
  record.wall_ms = 0.0;  // retrospective record: no wall duration to report
  record.open = false;
  record.args = std::move(args);
  spans_.push_back(std::move(record));
}

SpanRecord* SpanTracer::live_span(std::size_t index, std::uint64_t generation) {
  if (generation != generation_ || index >= spans_.size()) return nullptr;
  return spans_[index].open ? &spans_[index] : nullptr;
}

void SpanTracer::end_span(std::size_t index, std::uint64_t generation) {
  SpanRecord* span = live_span(index, generation);
  if (span == nullptr) return;
  const SimClock::Nanos now_vns = clock_ != nullptr ? clock_->now_ns() : span->start_vns;
  const double now_wall = wall_.elapsed_ms();
  // Close any still-open descendants first (out-of-order end).
  while (!open_stack_.empty() && open_stack_.back() != index) {
    SpanRecord& inner = spans_[open_stack_.back()];
    if (inner.open) {
      inner.end_vns = now_vns;
      inner.wall_ms = now_wall - inner.start_wall_ms;
      inner.open = false;
    }
    open_stack_.pop_back();
  }
  if (!open_stack_.empty()) open_stack_.pop_back();
  span->end_vns = now_vns;
  span->wall_ms = now_wall - span->start_wall_ms;
  span->open = false;
}

std::vector<std::size_t> SpanTracer::children_of(std::size_t index) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent == static_cast<std::ptrdiff_t>(index)) out.push_back(i);
  }
  return out;
}

std::size_t SpanTracer::find(std::string_view name) const {
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].name == name) return i;
  }
  return kNoSpan;
}

void SpanTracer::clear() {
  spans_.clear();
  open_stack_.clear();
  dropped_ = 0;
  ++generation_;
}

void export_chrome_trace(const SpanTracer& tracer, std::ostream& out,
                         bool include_wall) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& span : tracer.spans()) {
    if (span.open) continue;  // unfinished spans are not exported
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
        << json_escape(span.cat.empty() ? "default" : span.cat)
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":" << micros_fixed(span.start_vns)
        << ",\"dur\":" << micros_fixed(span.virtual_ns());
    if (include_wall || !span.args.empty() || span.trace != 0) {
      out << ",\"args\":{";
      bool first_arg = true;
      if (span.trace != 0) {
        out << "\"trace\":\"" << format_trace_id(span.trace) << "\"";
        first_arg = false;
      }
      for (const auto& [key, value] : span.args) {
        if (!first_arg) out << ",";
        first_arg = false;
        out << "\"" << json_escape(key) << "\":\"" << json_escape(value) << "\"";
      }
      if (include_wall) {
        if (!first_arg) out << ",";
        out << "\"wall_ms\":\"" << wall_ms_fixed(span.wall_ms) << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
}

}  // namespace p4runpro::obs
